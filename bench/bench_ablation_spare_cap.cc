// Prescriptive ablation of Section 7.1's production follow-up: "there has
// been work ongoing to reduce the maximum number for spare tokens as a
// multiplier of the number of allocated tokens. We observed that the jobs
// with fewer spare tokens run slower but with less variance."
//
// This bench sweeps the spare multiplier cap in the simulator and reports
// the runtime/variance tradeoff for the spare-riding population.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/normalization.h"
#include "stats/descriptive.h"

int main() {
  using namespace rvar;
  bench::PrintHeader(
      "Ablation: spare-token multiplier cap (Section 7.1 follow-up)");

  TextTable table;
  table.SetHeader({"spare cap", "spare-rider median (s)",
                   "spare-rider IQR (ratio)", "spare-rider p95 (ratio)",
                   "fleet IQR (ratio)"});

  for (double cap : {0.0, 1.0, 2.0, 4.0}) {
    sim::SuiteConfig config = bench::DefaultSuiteConfig();
    config.scheduler.spare_multiplier_cap = cap;
    config.scheduler.enable_spare_tokens = cap > 0.0;
    auto suite = sim::BuildStudySuite(config);
    RVAR_CHECK(suite.ok()) << suite.status().ToString();

    core::GroupMedians medians =
        core::GroupMedians::FromTelemetry(suite->d1.telemetry);
    // Spare-riding population: under-allocated groups that use spare.
    std::vector<double> rider_ratios, rider_runtimes, fleet_ratios;
    for (const sim::JobRun& run : suite->d3.telemetry.runs()) {
      if (!medians.Has(run.group_id)) continue;
      const double median = *medians.Of(run.group_id);
      if (median <= 0.0) continue;
      const double ratio = run.runtime_seconds / median;
      fleet_ratios.push_back(ratio);
      const sim::JobGroupSpec& group = suite->group(run.group_id);
      if (group.archetype == sim::JobArchetype::kSpareHungry &&
          group.uses_spare_tokens) {
        rider_ratios.push_back(ratio);
        rider_runtimes.push_back(run.runtime_seconds);
      }
    }
    RVAR_CHECK(!rider_ratios.empty());
    std::sort(rider_ratios.begin(), rider_ratios.end());
    table.AddRow({FormatDouble(cap, 1),
                  FormatDouble(Median(rider_runtimes), 0),
                  FormatDouble(QuantileSorted(rider_ratios, 0.75) -
                                   QuantileSorted(rider_ratios, 0.25),
                               3),
                  FormatDouble(QuantileSorted(rider_ratios, 0.95), 3),
                  FormatDouble(InterquartileRange(fleet_ratios), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n(expected: lower caps make spare-riding jobs SLOWER (higher\n"
      " median runtime) but MORE CONSISTENT (lower ratio IQR/p95) —\n"
      " the production observation of Section 7.1.)\n");
  return 0;
}
