// Ablation study of the clustering design choices called out in Section
// 4.2: bin count (50/100/200/500), the smoothing step, the number of
// clusters (inertia elbow), and k-means vs agglomerative clustering
// (cluster balance).

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/table.h"
#include "ml/agglomerative.h"
#include "ml/kmeans.h"
#include "stats/distance.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  core::GroupMedians medians =
      core::GroupMedians::FromTelemetry(suite.d1.telemetry);

  auto build = [&](int bins, int radius, int k) {
    core::ShapeLibraryConfig config;
    config.normalization = core::Normalization::kRatio;
    config.num_bins = bins;
    config.smoothing_radius = radius;
    config.num_clusters = k;
    config.min_support = 20;
    config.kmeans.num_restarts = 5;
    auto lib = core::ShapeLibrary::Build(suite.d1.telemetry, medians, config);
    RVAR_CHECK(lib.ok()) << lib.status().ToString();
    return std::move(*lib);
  };

  // --- Bin count sweep ---
  bench::PrintHeader("Ablation: bin count (paper evaluated 50/100/200/500)");
  TextTable bins_table;
  bins_table.SetHeader({"bins", "inertia", "min group share",
                        "max group share"});
  for (int bins : {50, 100, 200, 500}) {
    if (bins > 256) {
      // BinGrid supports any bin count; only the tree binner caps at 256.
    }
    core::ShapeLibrary lib = build(bins, 2, 8);
    // Cluster balance from group counts.
    int mn = 1 << 30, mx = 0, total = 0;
    for (int c = 0; c < lib.num_clusters(); ++c) {
      mn = std::min(mn, lib.stats(c).num_groups);
      mx = std::max(mx, lib.stats(c).num_groups);
      total += lib.stats(c).num_groups;
    }
    bins_table.AddRow({StrCat(bins), FormatDouble(lib.inertia(), 4),
                       FormatPercent(static_cast<double>(mn) / total),
                       FormatPercent(static_cast<double>(mx) / total)});
  }
  std::printf("%s", bins_table.ToString().c_str());

  // --- Smoothing on/off ---
  bench::PrintHeader("Ablation: smoothing step");
  for (int radius : {0, 2}) {
    core::ShapeLibrary lib = build(200, radius, 8);
    std::printf("radius=%d: inertia %.4f\n", radius, lib.inertia());
  }
  std::printf(
      "(smoothing correlates adjacent bins so near-identical shapes with\n"
      " shifted spikes cluster together; Section 4.2.)\n");

  // --- Inertia elbow over k ---
  bench::PrintHeader("Ablation: number of clusters (inertia elbow)");
  {
    // Reuse the library's PMF pipeline at k=1 to get the point set.
    std::vector<std::vector<double>> pmfs;
    core::ShapeLibrary probe = build(200, 2, 1);
    for (int gid : probe.reference_groups()) {
      auto normalized = core::NormalizedGroupRuntimes(
          suite.d1.telemetry, gid, medians, core::Normalization::kRatio);
      RVAR_CHECK(normalized.ok());
      pmfs.push_back(probe.ObservationPmf(*normalized));
    }
    ml::KMeansConfig kconfig;
    kconfig.num_restarts = 5;
    auto curve = ml::InertiaSweep(pmfs, 1, 12, kconfig);
    RVAR_CHECK(curve.ok());
    double prev = 0.0;
    for (const ml::InertiaPoint& p : *curve) {
      std::printf("k=%-3d inertia %.4f%s\n", p.k, p.inertia,
                  p.k > 1 ? StrCat("  (drop ",
                                   FormatDouble(prev - p.inertia, 4), ")")
                                .c_str()
                          : "");
      prev = p.inertia;
    }
  }

  // --- K-means vs agglomerative balance ---
  bench::PrintHeader(
      "Ablation: k-means vs agglomerative (cluster balance)");
  {
    core::ShapeLibrary lib = build(200, 2, 8);
    std::vector<std::vector<double>> pmfs;
    for (int gid : lib.reference_groups()) {
      auto normalized = core::NormalizedGroupRuntimes(
          suite.d1.telemetry, gid, medians, core::Normalization::kRatio);
      RVAR_CHECK(normalized.ok());
      pmfs.push_back(lib.ObservationPmf(*normalized));
    }
    int kmax = 0;
    for (int c = 0; c < lib.num_clusters(); ++c) {
      kmax = std::max(kmax, lib.stats(c).num_groups);
    }
    std::printf("k-means:       largest cluster %.1f%% of groups\n",
                100.0 * kmax / pmfs.size());
    for (auto [linkage, name] :
         {std::pair{ml::Linkage::kSingle, "single"},
          std::pair{ml::Linkage::kComplete, "complete"},
          std::pair{ml::Linkage::kAverage, "average"}}) {
      auto agg = ml::AgglomerativeCluster(pmfs, 8, linkage);
      RVAR_CHECK(agg.ok());
      std::printf("agglomerative (%s): largest cluster %.1f%% of groups\n",
                  name, 100.0 * agg->LargestClusterFraction());
    }
  }
  std::printf(
      "\n(paper: hierarchy/agglomerative clustering produced imbalanced\n"
      " clusters — some with >90%% of the data — so k-means was chosen.)\n");
  return 0;
}
