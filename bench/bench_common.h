// Copyright 2026 The rvar Authors.
//
// Shared setup for the paper-reproduction bench binaries: a standard
// simulated study suite (scaled-down Table 1 datasets) and standard
// predictor configurations, so every table/figure binary measures the same
// workload.

#ifndef RVAR_BENCH_BENCH_COMMON_H_
#define RVAR_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "core/predictor.h"
#include "sim/datasets.h"

namespace rvar {
namespace bench {

/// The standard bench workload: 150 recurring groups over 20+8+3 simulated
/// days (the paper's 6mo/15d/5d at laptop scale).
sim::SuiteConfig DefaultSuiteConfig();

/// Standard predictor training configuration for a normalization.
core::PredictorConfig DefaultPredictorConfig(core::Normalization norm);

/// Builds the standard suite, printing progress to stdout.
sim::StudySuite BuildSuiteOrDie();

/// Trains the standard predictor on `suite`.
std::unique_ptr<core::VariationPredictor> TrainPredictorOrDie(
    const sim::StudySuite& suite, core::Normalization norm);

/// Prints a section header.
void PrintHeader(const std::string& title);

/// A 1-line ASCII sparkline of a PMF (downsampled to `width` columns).
std::string Sparkline(const std::vector<double>& pmf, int width = 60);

}  // namespace bench
}  // namespace rvar

#endif  // RVAR_BENCH_BENCH_COMMON_H_
