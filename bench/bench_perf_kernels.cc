// Performance microbenchmarks (google-benchmark) of the library's hot
// kernels: PMF building/smoothing, posterior likelihoods, k-means, GBDT
// training and prediction, TreeSHAP, simulated job execution, and the
// checkpoint/restore path (snapshot save/load, WAL append/replay). The io
// kernels also emit a machine-readable summary to BENCH_io.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <filesystem>
#include <functional>
#include <numeric>
#include <string_view>

#include "common/parallel.h"
#include "common/simd.h"
#include "core/assigner.h"
#include "core/model_lifecycle.h"
#include "core/shape_library.h"
#include "io/model_registry.h"
#include "io/recovery.h"
#include "io/serialize.h"
#include "io/snapshot.h"
#include "io/wal.h"
#include "ml/gbdt.h"
#include "ml/kmeans.h"
#include "ml/shap.h"
#include "ml/simd_kernels.h"
#include "sim/scheduler.h"
#include "stats/histogram.h"
#include "stats/kll_sketch.h"

namespace {

using namespace rvar;

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.LogNormal(0.0, 0.8);
  return xs;
}

void BM_HistogramBuild(benchmark::State& state) {
  const auto xs = RandomValues(static_cast<size_t>(state.range(0)), 1);
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  for (auto _ : state) {
    Histogram h = Histogram::FromValues(grid, xs);
    benchmark::DoNotOptimize(h.total_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramBuild)->Arg(1000)->Arg(100000);

void BM_SmoothPmf(benchmark::State& state) {
  const auto xs = RandomValues(10000, 2);
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  const auto pmf = Histogram::FromValues(grid, xs).Probabilities();
  for (auto _ : state) {
    auto smoothed = SmoothPmf(pmf, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(smoothed.data());
  }
}
BENCHMARK(BM_SmoothPmf)->Arg(2)->Arg(8);

void BM_KMeansPmfs(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<double>> points;
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  for (int g = 0; g < state.range(0); ++g) {
    std::vector<double> xs;
    const double mode = rng.Uniform(0.8, 3.0);
    for (int i = 0; i < 50; ++i) xs.push_back(rng.Normal(mode, 0.2));
    points.push_back(
        SmoothPmf(Histogram::FromValues(grid, xs).Probabilities(), 2));
  }
  ml::KMeansConfig config;
  config.k = 8;
  config.num_restarts = 1;
  for (auto _ : state) {
    auto model = ml::KMeans(points, config);
    benchmark::DoNotOptimize(model->inertia);
  }
}
BENCHMARK(BM_KMeansPmfs)->Arg(100)->Arg(400);

ml::Dataset MakeTabular(int rows, int features, int classes, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset d;
  for (int i = 0; i < rows; ++i) {
    std::vector<double> row(static_cast<size_t>(features));
    for (double& v : row) v = rng.Normal(0.0, 1.0);
    const double score = row[0] + 0.5 * row[1];
    d.y.push_back(score > 0.5 ? 2 : (score > -0.5 ? 1 : 0) % classes);
    d.x.push_back(std::move(row));
  }
  return d;
}

void BM_GbdtTrain(benchmark::State& state) {
  const ml::Dataset d =
      MakeTabular(static_cast<int>(state.range(0)), 30, 3, 4);
  for (auto _ : state) {
    ml::GbdtClassifier model({.num_rounds = 10});
    benchmark::DoNotOptimize(model.Fit(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbdtTrain)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_GbdtPredict(benchmark::State& state) {
  const ml::Dataset d = MakeTabular(3000, 30, 3, 5);
  ml::GbdtClassifier model({.num_rounds = 30});
  benchmark::DoNotOptimize(model.Fit(d).ok());
  size_t i = 0;
  for (auto _ : state) {
    auto proba = model.PredictProba(d.x[i++ % d.NumRows()]);
    benchmark::DoNotOptimize(proba.data());
  }
}
BENCHMARK(BM_GbdtPredict);

void BM_TreeShap(benchmark::State& state) {
  const ml::Dataset d = MakeTabular(3000, 30, 3, 6);
  ml::GbdtClassifier model({.num_rounds = 20});
  benchmark::DoNotOptimize(model.Fit(d).ok());
  size_t i = 0;
  for (auto _ : state) {
    auto shap = ml::ShapForGbdt(model, d.x[i++ % d.NumRows()], 30);
    benchmark::DoNotOptimize(shap.ok());
  }
  state.SetLabel("exact TreeSHAP, 3 classes x 20 rounds");
}
BENCHMARK(BM_TreeShap)->Unit(benchmark::kMillisecond);

void BM_PosteriorAssign(benchmark::State& state) {
  // Shape library over synthetic telemetry.
  sim::TelemetryStore store;
  core::GroupMedians medians;
  Rng rng(7);
  for (int g = 0; g < 40; ++g) {
    const double median = rng.Uniform(50.0, 500.0);
    for (int i = 0; i < 40; ++i) {
      sim::JobRun run;
      run.group_id = g;
      run.runtime_seconds =
          median * std::max(0.1, rng.Normal(1.0, 0.1 + 0.05 * (g % 4)));
      store.Add(run);
    }
    medians.Set(g, median);
  }
  core::ShapeLibraryConfig config;
  config.num_clusters = 8;
  config.min_support = 20;
  config.kmeans.num_restarts = 2;
  auto lib = core::ShapeLibrary::Build(store, medians, config);
  core::PosteriorAssigner assigner(&*lib);
  const auto obs = RandomValues(30, 8);
  for (auto _ : state) {
    auto cluster = assigner.Assign(obs);
    benchmark::DoNotOptimize(cluster.ok());
  }
}
BENCHMARK(BM_PosteriorAssign);

void BM_SchedulerExecute(benchmark::State& state) {
  sim::ClusterConfig cc;
  auto cluster = sim::Cluster::Make(sim::SkuCatalog::Default(), cc);
  sim::TokenScheduler scheduler(&*cluster, {});
  Rng rng(9);
  sim::JobGroupSpec group;
  group.group_id = 0;
  group.plan = sim::GeneratePlan({}, &rng);
  group.allocated_tokens = 50;
  sim::JobInstanceSpec inst;
  inst.input_gb = 100.0;
  inst.submit_time = 3600.0;
  Rng exec_rng(10);
  for (auto _ : state) {
    auto run = scheduler.Execute(group, inst, &exec_rng);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_SchedulerExecute);


// --- Quantile-sketch kernels (stats/kll_sketch.h) -------------------------

void BM_SketchUpdate(benchmark::State& state) {
  const auto xs = RandomValues(static_cast<size_t>(state.range(0)), 51);
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  for (auto _ : state) {
    KllSketch sketch = *KllSketch::Make(200);
    for (double x : xs) sketch.UpdateClamped(grid, x);
    benchmark::DoNotOptimize(sketch.n());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SketchUpdate)->Arg(100000);

void BM_SketchMerge(benchmark::State& state) {
  // 64 shard-local sketches of 8192 observations each, folded in fixed
  // operand order the way a shard-count-independent aggregate must be.
  std::vector<KllSketch> parts;
  for (int p = 0; p < 64; ++p) {
    KllSketch s = *KllSketch::Make(200);
    for (double x : RandomValues(8192, 100 + static_cast<uint64_t>(p))) {
      s.Update(x);
    }
    parts.push_back(std::move(s));
  }
  for (auto _ : state) {
    KllSketch acc = parts[0];
    for (size_t p = 1; p < parts.size(); ++p) {
      benchmark::DoNotOptimize(acc.Merge(parts[p]).ok());
    }
    benchmark::DoNotOptimize(acc.n());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(parts.size() - 1));
}
BENCHMARK(BM_SketchMerge);

void BM_SketchReconstruct(benchmark::State& state) {
  KllSketch sketch = *KllSketch::Make(200);
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  for (double x : RandomValues(100000, 52)) sketch.UpdateClamped(grid, x);
  std::vector<double> counts;
  for (auto _ : state) {
    sketch.BinCountsInto(grid, &counts);
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_SketchReconstruct);


// --- Checkpoint/restore kernels (io/) ------------------------------------

core::ShapeLibrary MakeServingLibrary() {
  sim::TelemetryStore store;
  core::GroupMedians medians;
  Rng rng(21);
  for (int g = 0; g < 60; ++g) {
    const double median = rng.Uniform(50.0, 500.0);
    for (int i = 0; i < 40; ++i) {
      sim::JobRun run;
      run.group_id = g;
      run.runtime_seconds =
          median * std::max(0.1, rng.Normal(1.0, 0.1 + 0.05 * (g % 4)));
      store.Add(run);
    }
    medians.Set(g, median);
  }
  core::ShapeLibraryConfig config;
  config.num_clusters = 8;
  config.min_support = 20;
  config.kmeans.num_restarts = 2;
  return *core::ShapeLibrary::Build(store, medians, config);
}

std::string BenchTempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("rvar_bench_io_") + name))
      .string();
}

void BM_SnapshotEncodeLibrary(benchmark::State& state) {
  const core::ShapeLibrary library = MakeServingLibrary();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string image = io::EncodeShapeLibrary(library);
    bytes = image.size();
    benchmark::DoNotOptimize(image.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_SnapshotEncodeLibrary);

void BM_SnapshotDecodeLibrary(benchmark::State& state) {
  const std::string image = io::EncodeShapeLibrary(MakeServingLibrary());
  for (auto _ : state) {
    auto library = io::DecodeShapeLibrary(image);
    benchmark::DoNotOptimize(library.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_SnapshotDecodeLibrary);

void BM_SnapshotSaveFile(benchmark::State& state) {
  const core::ShapeLibrary library = MakeServingLibrary();
  const std::string path = BenchTempPath("snapshot");
  size_t bytes = io::EncodeShapeLibrary(library).size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::SaveShapeLibrary(library, path).ok());
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_SnapshotSaveFile);

void BM_SnapshotLoadFile(benchmark::State& state) {
  const std::string path = BenchTempPath("snapshot_load");
  (void)io::SaveShapeLibrary(MakeServingLibrary(), path);
  const auto size = std::filesystem::file_size(path);
  for (auto _ : state) {
    auto library = io::LoadShapeLibrary(path);
    benchmark::DoNotOptimize(library.ok());
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_SnapshotLoadFile);

// WAL append throughput, with and without per-record fsync (the sync cost
// dominates; both matter for sizing checkpoint intervals).
void BM_WalAppend(benchmark::State& state) {
  const bool sync = state.range(0) != 0;
  const std::string path = BenchTempPath("wal_append");
  std::filesystem::remove(path);
  auto writer = io::WalWriter::Create(path, 1, sync);
  const std::string record(24, 'r');  // observation-record sized
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer->Append(record).ok());
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->ArgNames({"fsync"});

void BM_WalReplay(benchmark::State& state) {
  const int num_records = static_cast<int>(state.range(0));
  const std::string path = BenchTempPath("wal_replay");
  std::filesystem::remove(path);
  {
    auto writer =
        io::WalWriter::Create(path, 1, /*sync_each_append=*/false);
    const std::string record(24, 'r');
    for (int i = 0; i < num_records; ++i) (void)writer->Append(record);
  }
  for (auto _ : state) {
    auto scan = io::ScanWalFile(path);
    benchmark::DoNotOptimize(scan.ok());
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(state.iterations() * num_records);
}
BENCHMARK(BM_WalReplay)->Arg(10000)->Arg(100000);

// Direct timed run of the io kernels; written to BENCH_io.json so the
// throughput numbers land next to the figure/table outputs.
double SecondsOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void WriteBenchIoJson() {
  const core::ShapeLibrary library = MakeServingLibrary();
  const std::string image = io::EncodeShapeLibrary(library);
  const std::string snap_path = BenchTempPath("json_snapshot");
  const std::string wal_path = BenchTempPath("json_wal");

  constexpr int kSaveReps = 50;
  const double save_s = SecondsOf([&] {
    for (int i = 0; i < kSaveReps; ++i) {
      (void)io::SaveShapeLibrary(library, snap_path);
    }
  });
  const double load_s = SecondsOf([&] {
    for (int i = 0; i < kSaveReps; ++i) {
      (void)io::LoadShapeLibrary(snap_path);
    }
  });

  constexpr int kWalRecords = 200000;
  std::filesystem::remove(wal_path);
  const std::string record(24, 'r');
  double append_s = 0.0;
  {
    auto writer =
        io::WalWriter::Create(wal_path, 1, /*sync_each_append=*/false);
    append_s = SecondsOf([&] {
      for (int i = 0; i < kWalRecords; ++i) (void)writer->Append(record);
    });
  }
  const double replay_s =
      SecondsOf([&] { (void)io::ScanWalFile(wal_path); });

  const double mb = static_cast<double>(image.size()) / 1e6;
  std::FILE* out = std::fopen("BENCH_io.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"snapshot_bytes\": %zu,\n"
                 "  \"snapshot_save_mb_per_s\": %.2f,\n"
                 "  \"snapshot_load_mb_per_s\": %.2f,\n"
                 "  \"wal_append_records_per_s\": %.0f,\n"
                 "  \"wal_replay_records_per_s\": %.0f\n"
                 "}\n",
                 image.size(), kSaveReps * mb / save_s,
                 kSaveReps * mb / load_s, kWalRecords / append_s,
                 kWalRecords / replay_s);
    std::fclose(out);
    std::printf("io throughput summary written to BENCH_io.json\n");
  }
  std::filesystem::remove(snap_path);
  std::filesystem::remove(wal_path);
}

// Thread-scaling sweep over the parallelized kernels (GBDT training and
// shape-library builds), written to BENCH_parallel.json. The results are
// bit-identical across thread counts by construction (common/parallel.h),
// so the sweep measures pure wall-clock scaling; on a single-core host
// every point degenerates to ~1x, which is why the detected hardware
// concurrency is recorded alongside.
void WriteBenchParallelJson() {
  const int threads[] = {1, 2, 4, 8};
  const ml::Dataset gbdt_data = MakeTabular(4000, 30, 3, 11);

  double gbdt_s[4] = {0.0};
  double library_s[4] = {0.0};
  for (int t = 0; t < 4; ++t) {
    SetParallelThreads(threads[t]);
    gbdt_s[t] = SecondsOf([&] {
      ml::GbdtClassifier model({.num_rounds = 10});
      benchmark::DoNotOptimize(model.Fit(gbdt_data).ok());
    });
    library_s[t] = SecondsOf([&] {
      core::ShapeLibrary library = MakeServingLibrary();
      benchmark::DoNotOptimize(library.num_clusters());
    });
  }
  SetParallelThreads(0);

  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"gbdt_train_seconds\": "
                 "{\"1\": %.4f, \"2\": %.4f, \"4\": %.4f, \"8\": %.4f},\n"
                 "  \"shape_library_build_seconds\": "
                 "{\"1\": %.4f, \"2\": %.4f, \"4\": %.4f, \"8\": %.4f},\n"
                 "  \"gbdt_speedup_at_4_threads\": %.2f,\n"
                 "  \"shape_library_speedup_at_4_threads\": %.2f\n"
                 "}\n",
                 std::thread::hardware_concurrency(), gbdt_s[0], gbdt_s[1],
                 gbdt_s[2], gbdt_s[3], library_s[0], library_s[1],
                 library_s[2], library_s[3], gbdt_s[0] / gbdt_s[2],
                 library_s[0] / library_s[2]);
    std::fclose(out);
    std::printf("thread-scaling summary written to BENCH_parallel.json\n");
  }
}

// --- Kernel summary for the CI bench-regression gate ----------------------

// Best-of-3 wall clock: the minimum discards scheduler hiccups, which on a
// shared CI runner otherwise dominate single-shot timings.
double BestSecondsOf(const std::function<void()>& fn) {
  double best = SecondsOf(fn);
  for (int rep = 0; rep < 2; ++rep) best = std::min(best, SecondsOf(fn));
  return best;
}

// Fixed deterministic spin work whose wall clock calibrates the host's
// scalar speed. bench/check_regression.py divides every kernel time by
// this, so a uniformly slower (or faster) CI machine does not read as a
// regression (or mask one).
double CalibrationSeconds() {
  return BestSecondsOf([] {
    uint64_t h = 1469598103934665603ULL;
    for (int i = 0; i < 20000000; ++i) {
      h ^= static_cast<uint64_t>(i);
      h *= 1099511628211ULL;
    }
    benchmark::DoNotOptimize(h);
  });
}

// Direct timed runs of the CPU-bound kernels, written to
// BENCH_kernels.json for the CI regression gate. The filesystem-bound
// kernels stay out of the gated set (their CI variance is tens of
// percent); they still land in BENCH_io.json for eyeballing.
void WriteBenchKernelsJson() {
  // Fixtures are built outside the timed regions.
  const auto values = RandomValues(100000, 31);
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  const auto pmf =
      Histogram::FromValues(grid, RandomValues(10000, 32)).Probabilities();

  Rng kmeans_rng(33);
  std::vector<std::vector<double>> kmeans_points;
  for (int g = 0; g < 100; ++g) {
    std::vector<double> xs;
    const double mode = kmeans_rng.Uniform(0.8, 3.0);
    for (int i = 0; i < 50; ++i) xs.push_back(kmeans_rng.Normal(mode, 0.2));
    kmeans_points.push_back(
        SmoothPmf(Histogram::FromValues(grid, xs).Probabilities(), 2));
  }

  const ml::Dataset train_data = MakeTabular(2000, 30, 3, 34);
  const ml::Dataset predict_data = MakeTabular(3000, 30, 3, 35);
  ml::GbdtClassifier predict_model({.num_rounds = 30});
  benchmark::DoNotOptimize(predict_model.Fit(predict_data).ok());

  const core::ShapeLibrary library = MakeServingLibrary();
  core::PosteriorAssigner assigner(&library);
  const auto assign_obs = RandomValues(30, 36);
  const std::string image = io::EncodeShapeLibrary(library);

  sim::ClusterConfig cluster_config;
  auto cluster =
      sim::Cluster::Make(sim::SkuCatalog::Default(), cluster_config);
  sim::TokenScheduler scheduler(&*cluster, {});
  Rng plan_rng(37);
  sim::JobGroupSpec group;
  group.group_id = 0;
  group.plan = sim::GeneratePlan({}, &plan_rng);
  group.allocated_tokens = 50;
  sim::JobInstanceSpec instance;
  instance.input_gb = 100.0;
  instance.submit_time = 3600.0;

  struct Kernel {
    const char* name;
    std::function<void()> fn;
  };
  const std::vector<Kernel> kernels = {
      {"histogram_build",
       [&] {
         for (int r = 0; r < 200; ++r) {
           Histogram h = Histogram::FromValues(grid, values);
           benchmark::DoNotOptimize(h.total_count());
         }
       }},
      {"smooth_pmf",
       [&] {
         for (int r = 0; r < 20000; ++r) {
           auto smoothed = SmoothPmf(pmf, 8);
           benchmark::DoNotOptimize(smoothed.data());
         }
       }},
      {"kmeans_pmfs",
       [&] {
         ml::KMeansConfig config;
         config.k = 8;
         config.num_restarts = 1;
         for (int r = 0; r < 30; ++r) {
           auto model = ml::KMeans(kmeans_points, config);
           benchmark::DoNotOptimize(model->inertia);
         }
       }},
      {"gbdt_train",
       [&] {
         ml::GbdtClassifier model({.num_rounds = 10});
         benchmark::DoNotOptimize(model.Fit(train_data).ok());
       }},
      {"gbdt_predict",
       [&] {
         for (size_t i = 0; i < 20000; ++i) {
           auto proba = predict_model.PredictProba(
               predict_data.x[i % predict_data.NumRows()]);
           benchmark::DoNotOptimize(proba.data());
         }
       }},
      {"treeshap",
       [&] {
         for (size_t i = 0; i < 200; ++i) {
           auto shap = ml::ShapForGbdt(
               predict_model, predict_data.x[i % predict_data.NumRows()],
               30);
           benchmark::DoNotOptimize(shap.ok());
         }
       }},
      {"posterior_assign",
       [&] {
         for (int r = 0; r < 20000; ++r) {
           auto cluster_id = assigner.Assign(assign_obs);
           benchmark::DoNotOptimize(cluster_id.ok());
         }
       }},
      {"scheduler_execute",
       [&] {
         Rng exec_rng(38);
         for (int r = 0; r < 2000; ++r) {
           auto run = scheduler.Execute(group, instance, &exec_rng);
           benchmark::DoNotOptimize(run.ok());
         }
       }},
      {"snapshot_encode",
       [&] {
         for (int r = 0; r < 500; ++r) {
           std::string encoded = io::EncodeShapeLibrary(library);
           benchmark::DoNotOptimize(encoded.data());
         }
       }},
      {"snapshot_decode",
       [&] {
         for (int r = 0; r < 500; ++r) {
           auto decoded = io::DecodeShapeLibrary(image);
           benchmark::DoNotOptimize(decoded.ok());
         }
       }},
  };

  const double calibration = CalibrationSeconds();
  std::FILE* out = std::fopen("BENCH_kernels.json", "w");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\n"
               "  \"calibration_seconds\": %.6f,\n"
               "  \"kernels\": {\n",
               calibration);
  for (size_t i = 0; i < kernels.size(); ++i) {
    const double seconds = BestSecondsOf(kernels[i].fn);
    std::fprintf(out, "    \"%s\": %.6f%s\n", kernels[i].name, seconds,
                 i + 1 == kernels.size() ? "" : ",");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("kernel timing summary written to BENCH_kernels.json\n");
}

// Resident-set size of this process right now, from /proc/self/status.
// Returns 0 where that interface does not exist; the sweep then reports
// only the accounted (capacity-derived) bytes.
size_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || parsed == 0) return fallback;
  return static_cast<size_t>(parsed);
}

// Quantile-sketch summary (DESIGN.md §15), written to BENCH_sketch.json.
// Three CPU-bound kernels (update, fixed-order shard merge, 200-bin PMF
// reconstruction) land in the gated `kernels` map; alongside them the
// file records the steady-state sketch footprint per group at growing
// support, and a large-cardinality dense-vs-sketch sweep: the per-group
// state the sketch replaced — a dense 200-bin double PMF plus the raw
// sample buffer a dense design needs to merge shards and answer
// quantiles — materialized for every synthetic group next to the sketch
// fleet, with both accounted bytes and measured RSS deltas. The group
// count (default 1M) and per-group support are overridable via
// RVAR_SKETCH_SWEEP_GROUPS / RVAR_SKETCH_SWEEP_OBS so memory-constrained
// CI runners can run a proportionally smaller sweep; the per-group ratio
// is independent of the group count.
void WriteBenchSketchJson() {
  constexpr int kSketchK = 200;
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);

  // Steady-state footprint per group as support grows (the README table).
  const int64_t support[] = {100, 1000, 10000, 100000};
  size_t footprint[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    KllSketch sketch = *KllSketch::Make(kSketchK);
    for (double x :
         RandomValues(static_cast<size_t>(support[i]), 61)) {
      sketch.UpdateClamped(grid, x);
    }
    footprint[i] = sketch.MemoryBytes();
  }

  // Gated kernels. Fixtures outside the timed regions.
  const auto update_values = RandomValues(2000000, 62);
  const double update_s = BestSecondsOf([&] {
    KllSketch sketch = *KllSketch::Make(kSketchK);
    for (double x : update_values) sketch.UpdateClamped(grid, x);
    benchmark::DoNotOptimize(sketch.n());
  });

  std::vector<KllSketch> parts;
  for (int p = 0; p < 64; ++p) {
    KllSketch s = *KllSketch::Make(kSketchK);
    for (double x : RandomValues(8192, 200 + static_cast<uint64_t>(p))) {
      s.Update(x);
    }
    parts.push_back(std::move(s));
  }
  constexpr int kMergeReps = 200;
  const double merge_s = BestSecondsOf([&] {
    for (int rep = 0; rep < kMergeReps; ++rep) {
      KllSketch acc = parts[0];
      for (size_t p = 1; p < parts.size(); ++p) {
        benchmark::DoNotOptimize(acc.Merge(parts[p]).ok());
      }
      benchmark::DoNotOptimize(acc.n());
    }
  });
  const double merges_per_rep = static_cast<double>(parts.size() - 1);

  KllSketch reconstruct_sketch = *KllSketch::Make(kSketchK);
  for (double x : RandomValues(100000, 63)) {
    reconstruct_sketch.UpdateClamped(grid, x);
  }
  constexpr int kReconstructReps = 20000;
  std::vector<double> counts;
  const double reconstruct_s = BestSecondsOf([&] {
    for (int rep = 0; rep < kReconstructReps; ++rep) {
      reconstruct_sketch.BinCountsInto(grid, &counts);
      benchmark::DoNotOptimize(counts.data());
    }
  });

  // Dense-vs-sketch sweep. One prototype per representation, built from
  // the same stream, then copied per group: copies have the same
  // footprint, and building a million independent streams would time the
  // RNG, not the memory. The sketch fleet is built first and kept live
  // while the dense fleet allocates, so each RSS delta measures fresh
  // pages rather than arena reuse.
  struct DenseGroupState {
    std::vector<double> pmf;      // dense 200-bin PMF
    std::vector<double> samples;  // raw buffer for merges/quantiles
  };
  const size_t groups = EnvSizeOr("RVAR_SKETCH_SWEEP_GROUPS", 1000000);
  const size_t obs_per_group = EnvSizeOr("RVAR_SKETCH_SWEEP_OBS", 4096);

  const auto stream = RandomValues(obs_per_group, 64);
  KllSketch sketch_proto = *KllSketch::Make(kSketchK);
  for (double x : stream) sketch_proto.UpdateClamped(grid, x);
  DenseGroupState dense_proto;
  dense_proto.pmf = Histogram::FromValues(grid, stream).Probabilities();
  dense_proto.samples = stream;

  const size_t sketch_accounted = sketch_proto.MemoryBytes();
  const size_t dense_accounted =
      sizeof(DenseGroupState) + dense_proto.pmf.capacity() * sizeof(double) +
      dense_proto.samples.capacity() * sizeof(double);

  const size_t rss_start = CurrentRssBytes();
  std::vector<KllSketch> sketch_fleet;
  sketch_fleet.reserve(groups);
  for (size_t g = 0; g < groups; ++g) sketch_fleet.push_back(sketch_proto);
  const size_t rss_after_sketch = CurrentRssBytes();
  std::vector<DenseGroupState> dense_fleet;
  dense_fleet.reserve(groups);
  for (size_t g = 0; g < groups; ++g) dense_fleet.push_back(dense_proto);
  const size_t rss_after_dense = CurrentRssBytes();
  benchmark::DoNotOptimize(sketch_fleet.data());
  benchmark::DoNotOptimize(dense_fleet.data());

  const double sketch_rss =
      static_cast<double>(rss_after_sketch - rss_start);
  const double dense_rss =
      static_cast<double>(rss_after_dense - rss_after_sketch);
  const double accounted_ratio = static_cast<double>(dense_accounted) /
                                 static_cast<double>(sketch_accounted);
  const double rss_ratio = sketch_rss > 0 ? dense_rss / sketch_rss : 0.0;
  dense_fleet.clear();
  dense_fleet.shrink_to_fit();
  sketch_fleet.clear();
  sketch_fleet.shrink_to_fit();

  const double calibration = CalibrationSeconds();
  std::FILE* out = std::fopen("BENCH_sketch.json", "w");
  if (out == nullptr) return;
  std::fprintf(
      out,
      "{\n"
      "  \"calibration_seconds\": %.6f,\n"
      "  \"kernels\": {\n"
      "    \"sketch_update\": %.6f,\n"
      "    \"sketch_merge\": %.6f,\n"
      "    \"sketch_reconstruct\": %.6f\n"
      "  },\n"
      "  \"sketch_k\": %d,\n"
      "  \"update_m_items_per_s\": %.2f,\n"
      "  \"merge_sketches_per_s\": %.0f,\n"
      "  \"reconstruct_us\": %.2f,\n"
      "  \"memory_bytes_per_group\": "
      "{\"100\": %zu, \"1000\": %zu, \"10000\": %zu, \"100000\": %zu},\n"
      "  \"sweep\": {\n"
      "    \"groups\": %zu,\n"
      "    \"obs_per_group\": %zu,\n"
      "    \"dense_bytes_per_group\": %zu,\n"
      "    \"sketch_bytes_per_group\": %zu,\n"
      "    \"dense_rss_bytes\": %.0f,\n"
      "    \"sketch_rss_bytes\": %.0f,\n"
      "    \"accounted_reduction_ratio\": %.1f,\n"
      "    \"rss_reduction_ratio\": %.1f\n"
      "  }\n"
      "}\n",
      calibration, update_s, merge_s, reconstruct_s, kSketchK,
      static_cast<double>(update_values.size()) / update_s / 1e6,
      kMergeReps * merges_per_rep / merge_s,
      reconstruct_s / kReconstructReps * 1e6, footprint[0], footprint[1],
      footprint[2], footprint[3], groups, obs_per_group, dense_accounted,
      sketch_accounted, dense_rss, sketch_rss, accounted_ratio, rss_ratio);
  std::fclose(out);
  std::printf(
      "sketch summary written to BENCH_sketch.json "
      "(%zu groups x %zu obs: dense %zu B/group vs sketch %zu B/group, "
      "%.1fx accounted, %.1fx RSS)\n",
      groups, obs_per_group, dense_accounted, sketch_accounted,
      accounted_ratio, rss_ratio);
}

// GBDT engine kernels (histogram-cache training and flattened batch
// inference), written to BENCH_gbdt.json for the CI regression gate.
// Training is timed at 1 and 4 configured threads over the same workload
// as the BENCH_parallel.json sweep, so the two reports stay comparable;
// the batch-predict kernel reuses one scratch buffer across all rows the
// way the serving paths (PredictShapeBatch, what-if) do. The SIMD-sensitive
// kernels (histogram accumulate, single-thread training, flattened batch
// traversal) are additionally timed with the dispatch pinned to the scalar
// row: the *_scalar entries keep the reference path gated against
// regression, and the simd/scalar pair makes the vectorization win visible
// in the CI table (baseline.json pins the SIMD-sensitive baselines to
// scalar timings, so the SIMD build reads as an improvement, never a
// regression, on any runner generation).
void WriteBenchGbdtJson() {
  const ml::Dataset train_data = MakeTabular(4000, 30, 3, 11);
  const ml::Dataset predict_data = MakeTabular(3000, 30, 3, 35);
  ml::GbdtClassifier predict_model({.num_rounds = 30});
  benchmark::DoNotOptimize(predict_model.Fit(predict_data).ok());
  const SimdLevel active_level = ActiveSimdLevel();

  // Histogram accumulate, straight off the dispatch table: dense-node
  // regime (node rows >> bins), the exact call BuildHistogram makes. The
  // node is sized like a real training node (a few thousand rows) so the
  // gh pairs and the lane scratch stay cache-resident — a node streamed
  // from DRAM would time the memory bus, not the kernel.
  constexpr size_t kHistRows = 4096;
  constexpr size_t kHistBins = 64;
  Rng hist_rng(39);
  std::vector<size_t> hist_idx(kHistRows);
  std::iota(hist_idx.begin(), hist_idx.end(), size_t{0});
  std::vector<uint8_t> hist_col(kHistRows);
  for (uint8_t& b : hist_col) {
    b = static_cast<uint8_t>(
        hist_rng.UniformInt(0, static_cast<int64_t>(kHistBins) - 1));
  }
  std::vector<double> hist_gh(2 * kHistRows);
  for (double& v : hist_gh) v = hist_rng.Normal(0.0, 1.0);
  std::vector<double> hist_region(ml::kHistCellStride * kHistBins);
  std::vector<double> hist_scratch(ml::HistScratchDoubles(kHistBins));
  const auto time_hist = [&](const ml::SimdKernels& kern) {
    return BestSecondsOf([&] {
      for (int r = 0; r < 2000; ++r) {
        kern.hist_accumulate(hist_idx.data(), kHistRows, hist_col.data(),
                             hist_gh.data(), kHistBins, hist_region.data(),
                             hist_scratch.data());
        benchmark::DoNotOptimize(hist_region.data());
      }
    });
  };
  const double hist_simd = time_hist(ml::ActiveSimdKernels());
  const double hist_scalar =
      time_hist(ml::kSimdKernels[static_cast<int>(SimdLevel::kScalar)]);

  SetParallelThreads(1);
  const double train_1t = BestSecondsOf([&] {
    ml::GbdtClassifier model({.num_rounds = 10});
    benchmark::DoNotOptimize(model.Fit(train_data).ok());
  });
  const auto time_forest = [&] {
    return BestSecondsOf([&] {
      std::vector<double> proba;
      for (int r = 0; r < 8; ++r) {
        predict_model.PredictProbaBatchInto(predict_data.x, &proba);
        benchmark::DoNotOptimize(proba.data());
      }
    });
  };
  const double forest_1t = time_forest();
  SetSimdLevel(SimdLevel::kScalar);
  const double train_1t_scalar = BestSecondsOf([&] {
    ml::GbdtClassifier model({.num_rounds = 10});
    benchmark::DoNotOptimize(model.Fit(train_data).ok());
  });
  const double forest_1t_scalar = time_forest();
  SetSimdLevel(active_level);
  SetParallelThreads(4);
  const double train_4t = BestSecondsOf([&] {
    ml::GbdtClassifier model({.num_rounds = 10});
    benchmark::DoNotOptimize(model.Fit(train_data).ok());
  });
  SetParallelThreads(0);

  const double predict_batch = BestSecondsOf([&] {
    std::vector<double> proba;
    for (size_t i = 0; i < 20000; ++i) {
      predict_model.PredictProbaInto(
          predict_data.x[i % predict_data.NumRows()], &proba);
      benchmark::DoNotOptimize(proba.data());
    }
  });

  const double calibration = CalibrationSeconds();
  std::FILE* out = std::fopen("BENCH_gbdt.json", "w");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\n"
               "  \"calibration_seconds\": %.6f,\n"
               "  \"simd_level\": \"%s\",\n"
               "  \"kernels\": {\n"
               "    \"gbdt_train_1t\": %.6f,\n"
               "    \"gbdt_train_1t_scalar\": %.6f,\n"
               "    \"gbdt_train_4t\": %.6f,\n"
               "    \"gbdt_predict_batch\": %.6f,\n"
               "    \"gbdt_hist_accumulate\": %.6f,\n"
               "    \"gbdt_hist_accumulate_scalar\": %.6f,\n"
               "    \"flatforest_predict_1t\": %.6f,\n"
               "    \"flatforest_predict_1t_scalar\": %.6f\n"
               "  }\n}\n",
               calibration, SimdLevelName(active_level), train_1t,
               train_1t_scalar, train_4t, predict_batch, hist_simd,
               hist_scalar, forest_1t, forest_1t_scalar);
  std::fclose(out);
  std::printf("gbdt engine summary written to BENCH_gbdt.json\n");
}

// Online model lifecycle timings (cold + warm retrain wall-time, the
// gate-and-swap phase, rollback), written to BENCH_lifecycle.json and
// uploaded by the CI bench job next to the other summaries. These are
// informational (filesystem-bound, not regression-gated): the number that
// matters operationally is the swap/rollback latency the serving path
// observes, not the training time.
void WriteBenchLifecycleJson() {
  const std::string dir = BenchTempPath("lifecycle_registry");
  std::filesystem::remove_all(dir);
  core::ModelLifecycleOptions options;
  options.dir = dir;
  options.gbdt.num_rounds = 10;
  options.seed = 17;
  auto lifecycle = core::ModelLifecycle::Open(options);
  if (!lifecycle.ok()) return;

  const ml::Dataset window_a = MakeTabular(2000, 20, 3, 41);
  const ml::Dataset window_b = MakeTabular(2000, 20, 3, 42);

  // Cold cycle (no parent), then a warm cycle (warm-started from v1).
  const double cold_s = SecondsOf([&] {
    benchmark::DoNotOptimize(
        (*lifecycle)->RetrainAndSwap(window_a, 0, 2000).ok());
  });
  const double warm_s = SecondsOf([&] {
    benchmark::DoNotOptimize(
        (*lifecycle)->RetrainAndSwap(window_b, 2000, 4000).ok());
  });

  // Gate + swap alone: train phase 1 outside the timer.
  auto version = (*lifecycle)->TrainCandidate(window_a, 4000, 6000);
  double swap_s = 0.0;
  if (version.ok()) {
    swap_s = SecondsOf([&] {
      benchmark::DoNotOptimize(
          (*lifecycle)->ValidateAndSwap(*version, window_a).ok());
    });
  }

  // Rollback latency: alternate between the two newest retained versions.
  const std::vector<int64_t> versions = (*lifecycle)->registry().Versions();
  double rollback_s = 0.0;
  if (versions.size() >= 2) {
    constexpr int kReps = 10;
    const int64_t live = (*lifecycle)->live_version();
    int64_t other = -1;
    for (int64_t v : versions) {
      auto manifest = (*lifecycle)->registry().Manifest(v);
      if (manifest.ok() && manifest->state == io::ModelState::kRetired) {
        other = v;
      }
    }
    if (other >= 0) {
      rollback_s = SecondsOf([&] {
                     for (int i = 0; i < kReps; ++i) {
                       benchmark::DoNotOptimize(
                           (*lifecycle)
                               ->Rollback(i % 2 == 0 ? other : live)
                               .ok());
                     }
                   }) /
                   kReps;
    }
  }

  std::FILE* out = std::fopen("BENCH_lifecycle.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"retrain_cold_seconds\": %.6f,\n"
                 "  \"retrain_warm_seconds\": %.6f,\n"
                 "  \"validate_and_swap_seconds\": %.6f,\n"
                 "  \"rollback_seconds\": %.6f,\n"
                 "  \"window_rows\": %zu\n"
                 "}\n",
                 cold_s, warm_s, swap_s, rollback_s, window_a.NumRows());
    std::fclose(out);
    std::printf("lifecycle summary written to BENCH_lifecycle.json\n");
  }
  std::filesystem::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  // --summaries_only: skip the google-benchmark sweep and emit only the
  // BENCH_*.json summaries (what the CI thread-scaling and regression
  // steps consume). Stripped before benchmark::Initialize sees it.
  bool summaries_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--summaries_only") {
      summaries_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!summaries_only) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteBenchIoJson();
  WriteBenchParallelJson();
  WriteBenchKernelsJson();
  WriteBenchGbdtJson();
  WriteBenchSketchJson();
  WriteBenchLifecycleJson();
  return 0;
}
