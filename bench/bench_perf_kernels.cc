// Performance microbenchmarks (google-benchmark) of the library's hot
// kernels: PMF building/smoothing, posterior likelihoods, k-means, GBDT
// training and prediction, TreeSHAP, and simulated job execution.

#include <benchmark/benchmark.h>

#include <numeric>

#include "core/assigner.h"
#include "core/shape_library.h"
#include "ml/gbdt.h"
#include "ml/kmeans.h"
#include "ml/shap.h"
#include "sim/scheduler.h"
#include "stats/histogram.h"

namespace {

using namespace rvar;

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.LogNormal(0.0, 0.8);
  return xs;
}

void BM_HistogramBuild(benchmark::State& state) {
  const auto xs = RandomValues(static_cast<size_t>(state.range(0)), 1);
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  for (auto _ : state) {
    Histogram h = Histogram::FromValues(grid, xs);
    benchmark::DoNotOptimize(h.total_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramBuild)->Arg(1000)->Arg(100000);

void BM_SmoothPmf(benchmark::State& state) {
  const auto xs = RandomValues(10000, 2);
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  const auto pmf = Histogram::FromValues(grid, xs).Probabilities();
  for (auto _ : state) {
    auto smoothed = SmoothPmf(pmf, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(smoothed.data());
  }
}
BENCHMARK(BM_SmoothPmf)->Arg(2)->Arg(8);

void BM_KMeansPmfs(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<double>> points;
  const BinGrid grid = *BinGrid::Make(0.0, 10.0, 200);
  for (int g = 0; g < state.range(0); ++g) {
    std::vector<double> xs;
    const double mode = rng.Uniform(0.8, 3.0);
    for (int i = 0; i < 50; ++i) xs.push_back(rng.Normal(mode, 0.2));
    points.push_back(
        SmoothPmf(Histogram::FromValues(grid, xs).Probabilities(), 2));
  }
  ml::KMeansConfig config;
  config.k = 8;
  config.num_restarts = 1;
  for (auto _ : state) {
    auto model = ml::KMeans(points, config);
    benchmark::DoNotOptimize(model->inertia);
  }
}
BENCHMARK(BM_KMeansPmfs)->Arg(100)->Arg(400);

ml::Dataset MakeTabular(int rows, int features, int classes, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset d;
  for (int i = 0; i < rows; ++i) {
    std::vector<double> row(static_cast<size_t>(features));
    for (double& v : row) v = rng.Normal(0.0, 1.0);
    const double score = row[0] + 0.5 * row[1];
    d.y.push_back(score > 0.5 ? 2 : (score > -0.5 ? 1 : 0) % classes);
    d.x.push_back(std::move(row));
  }
  return d;
}

void BM_GbdtTrain(benchmark::State& state) {
  const ml::Dataset d =
      MakeTabular(static_cast<int>(state.range(0)), 30, 3, 4);
  for (auto _ : state) {
    ml::GbdtClassifier model({.num_rounds = 10});
    benchmark::DoNotOptimize(model.Fit(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbdtTrain)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_GbdtPredict(benchmark::State& state) {
  const ml::Dataset d = MakeTabular(3000, 30, 3, 5);
  ml::GbdtClassifier model({.num_rounds = 30});
  benchmark::DoNotOptimize(model.Fit(d).ok());
  size_t i = 0;
  for (auto _ : state) {
    auto proba = model.PredictProba(d.x[i++ % d.NumRows()]);
    benchmark::DoNotOptimize(proba.data());
  }
}
BENCHMARK(BM_GbdtPredict);

void BM_TreeShap(benchmark::State& state) {
  const ml::Dataset d = MakeTabular(3000, 30, 3, 6);
  ml::GbdtClassifier model({.num_rounds = 20});
  benchmark::DoNotOptimize(model.Fit(d).ok());
  size_t i = 0;
  for (auto _ : state) {
    auto shap = ml::ShapForGbdt(model, d.x[i++ % d.NumRows()], 30);
    benchmark::DoNotOptimize(shap.ok());
  }
  state.SetLabel("exact TreeSHAP, 3 classes x 20 rounds");
}
BENCHMARK(BM_TreeShap)->Unit(benchmark::kMillisecond);

void BM_PosteriorAssign(benchmark::State& state) {
  // Shape library over synthetic telemetry.
  sim::TelemetryStore store;
  core::GroupMedians medians;
  Rng rng(7);
  for (int g = 0; g < 40; ++g) {
    const double median = rng.Uniform(50.0, 500.0);
    for (int i = 0; i < 40; ++i) {
      sim::JobRun run;
      run.group_id = g;
      run.runtime_seconds =
          median * std::max(0.1, rng.Normal(1.0, 0.1 + 0.05 * (g % 4)));
      store.Add(run);
    }
    medians.Set(g, median);
  }
  core::ShapeLibraryConfig config;
  config.num_clusters = 8;
  config.min_support = 20;
  config.kmeans.num_restarts = 2;
  auto lib = core::ShapeLibrary::Build(store, medians, config);
  core::PosteriorAssigner assigner(&*lib);
  const auto obs = RandomValues(30, 8);
  for (auto _ : state) {
    auto cluster = assigner.Assign(obs);
    benchmark::DoNotOptimize(cluster.ok());
  }
}
BENCHMARK(BM_PosteriorAssign);

void BM_SchedulerExecute(benchmark::State& state) {
  sim::ClusterConfig cc;
  auto cluster = sim::Cluster::Make(sim::SkuCatalog::Default(), cc);
  sim::TokenScheduler scheduler(&*cluster, {});
  Rng rng(9);
  sim::JobGroupSpec group;
  group.group_id = 0;
  group.plan = sim::GeneratePlan({}, &rng);
  group.allocated_tokens = 50;
  sim::JobInstanceSpec inst;
  inst.input_gb = 100.0;
  inst.submit_time = 3600.0;
  Rng exec_rng(10);
  for (auto _ : state) {
    auto run = scheduler.Execute(group, inst, &exec_rng);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_SchedulerExecute);

}  // namespace

BENCHMARK_MAIN();
