// Reproduces Figure 8: distribution-reconstruction quality of the proposed
// 2-step classifier vs a Griffon-style random-forest regression baseline,
// compared by QQ-plot mean absolute error and Kolmogorov-Smirnov distance
// on the test dataset D3.

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  auto predictor =
      bench::TrainPredictorOrDie(suite, core::Normalization::kRatio);

  ml::ForestConfig forest;
  forest.num_trees = 60;
  auto baseline = core::RegressionBaseline::Train(suite, *predictor, forest);
  RVAR_CHECK(baseline.ok()) << baseline.status().ToString();

  Rng rng(99);
  auto cmp = core::CompareReconstruction(suite.d3.telemetry, *predictor,
                                         **baseline, &rng);
  RVAR_CHECK(cmp.ok()) << cmp.status().ToString();

  bench::PrintHeader("Figure 8: QQ comparison vs regression baseline");
  std::printf("%s\n", core::RenderReconstruction(*cmp).c_str());

  // The QQ series itself (downsampled): actual vs predicted quantiles of
  // the Ratio-normalized runtime distribution.
  std::printf("%-6s %-10s %-18s %-18s\n", "q", "actual", "regression",
              "proposed");
  for (size_t i = 4; i < cmp->proposed_qq.size(); i += 10) {
    std::printf("%-6.2f %-10.3f %-18.3f %-18.3f\n", cmp->proposed_qq[i].q,
                cmp->proposed_qq[i].actual,
                cmp->regression_qq[i].predicted,
                cmp->proposed_qq[i].predicted);
  }
  std::printf(
      "\n(paper: the classification approach tracks the actual quantiles\n"
      " better, especially at high percentiles (outliers); KS distance\n"
      " reduced by 9.2%%.)\n");
  return 0;
}
