// Reproduces Figure 1: runtimes of recurring jobs submitted at different
// frequencies, some with stable runtimes and some with sporadic,
// non-regular slowdowns.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "stats/descriptive.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  bench::PrintHeader("Figure 1: Recurring jobs with runtime variation");

  // Pick 4 groups spanning the stability spectrum: rank D1 groups by
  // p95/median of runtime and take representatives.
  struct Candidate {
    int gid;
    double median;
    double tail_ratio;
    int support;
  };
  std::vector<Candidate> candidates;
  for (int gid : suite.d1.telemetry.GroupsWithSupport(30)) {
    std::vector<double> runtimes = suite.d1.telemetry.GroupRuntimes(gid);
    std::sort(runtimes.begin(), runtimes.end());
    const double median = QuantileSorted(runtimes, 0.5);
    candidates.push_back({gid, median,
                          QuantileSorted(runtimes, 0.95) / median,
                          static_cast<int>(runtimes.size())});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.tail_ratio < b.tail_ratio;
            });
  std::vector<Candidate> picks;
  for (double q : {0.05, 0.4, 0.75, 0.98}) {
    picks.push_back(
        candidates[static_cast<size_t>(q * (candidates.size() - 1))]);
  }

  for (const Candidate& c : picks) {
    std::vector<double> runtimes = suite.d1.telemetry.GroupRuntimes(c.gid);
    std::printf(
        "\njob_group_%d: %d runs, median %.0fs, p95/median %.2fx\n  ",
        c.gid, c.support, c.median, c.tail_ratio);
    // Series of normalized runtimes as a character strip: '.' near median,
    // 'o' mild slowdown, 'X' severe.
    const size_t stride = std::max<size_t>(1, runtimes.size() / 72);
    for (size_t i = 0; i < runtimes.size(); i += stride) {
      const double r = runtimes[i] / c.median;
      std::printf("%c", r > 3.0 ? 'X' : (r > 1.5 ? 'o' : '.'));
    }
    std::printf("\n  ('.' <1.5x median, 'o' 1.5-3x, 'X' >3x)\n");
  }
  std::printf(
      "\n(paper: some recurring jobs have stable runtimes, others show\n"
      " occasional slowdowns with non-regular patterns.)\n");
  return 0;
}
