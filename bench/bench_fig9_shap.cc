// Reproduces Figure 9: SHAP value analysis of the trained predictor —
// (a) how feature values (e.g. total input data read) push jobs toward
// the high-variance cluster, and (b) the operator-count features'
// contributions, for Delta-normalization as in the paper.

#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/explainer.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  auto predictor =
      bench::TrainPredictorOrDie(suite, core::Normalization::kDelta);
  core::Explainer explainer(predictor.get());

  auto explanations = explainer.ExplainSlice(suite.d3.telemetry, 150);
  RVAR_CHECK(explanations.ok()) << explanations.status().ToString();

  // The paper's Figure 9 targets Cluster 6 (high variance, high outlier
  // probability) under Delta-normalization; we use the highest-variance
  // non-extreme cluster of our library: second-to-last by IQR rank.
  const int target = predictor->shapes().num_clusters() - 2;
  const core::ShapeStats& ts = predictor->shapes().stats(target);
  bench::PrintHeader(
      StrCat("Figure 9: SHAP values for Cluster ", target,
             " (Delta-normalization; IQR ", FormatDouble(ts.iqr, 1),
             "s, outlier ", FormatPercent(ts.outlier_probability), ")"));

  auto summary = explainer.SummarizeForShape(*explanations, target);
  RVAR_CHECK(summary.ok()) << summary.status().ToString();

  TextTable table;
  table.SetHeader({"feature", "mean |SHAP|", "corr(value, SHAP)",
                   "SHAP @low value", "SHAP @high value"});
  int rows = 0;
  for (const core::FeatureShapSummary& s : *summary) {
    if (rows++ >= 12) break;
    table.AddRow({s.feature, FormatDouble(s.mean_abs_shap, 3),
                  FormatDouble(s.value_shap_correlation, 2),
                  FormatDouble(s.mean_shap_low_value, 3),
                  FormatDouble(s.mean_shap_high_value, 3)});
  }
  std::printf("%s", table.ToString().c_str());

  // Call out the paper's headline features explicitly.
  bench::PrintHeader("Figure 9a focus: input size and tokens");
  for (const char* name :
       {"hist_input_gb_mean", "hist_avg_tokens_mean", "allocated_tokens",
        "hist_spare_tokens_mean", "cpu_util_std"}) {
    for (const core::FeatureShapSummary& s : *summary) {
      if (s.feature == name) {
        std::printf(
            "%-24s SHAP@low=%.3f SHAP@high=%.3f  (%s pushes toward C%d)\n",
            name, s.mean_shap_low_value, s.mean_shap_high_value,
            s.mean_shap_high_value > s.mean_shap_low_value ? "high value"
                                                           : "low value",
            target);
      }
    }
  }
  std::printf(
      "\n(paper: jobs with larger inputs and fewer tokens are more likely\n"
      " to land in the high-variance cluster; operator counts such as\n"
      " Index-Lookup/Window/Range increase variation.)\n");
  return 0;
}
