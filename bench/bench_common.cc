#include "bench_common.h"

#include <chrono>
#include <cstdio>

#include "common/check.h"

namespace rvar {
namespace bench {

sim::SuiteConfig DefaultSuiteConfig() {
  sim::SuiteConfig config;
  config.num_groups = 150;
  config.d1_days = 20.0;
  config.d2_days = 15.0;
  config.d3_days = 5.0;
  config.d1_support = 20;
  config.d2_support = 3;
  config.d3_support = 3;
  config.workload.min_period_seconds = 900.0;
  config.workload.max_period_seconds = 6.0 * 3600.0;
  config.seed = 20230407;  // the paper's arXiv date
  return config;
}

core::PredictorConfig DefaultPredictorConfig(core::Normalization norm) {
  core::PredictorConfig config;
  config.shape.normalization = norm;
  config.shape.num_clusters = 8;
  config.shape.min_support = 20;
  config.shape.kmeans.num_restarts = 16;
  config.gbdt.num_rounds = 50;
  config.gbdt.feature_fraction = 0.7;
  config.gbdt.max_leaves = 31;
  return config;
}

sim::StudySuite BuildSuiteOrDie() {
  const auto start = std::chrono::steady_clock::now();
  auto suite = sim::BuildStudySuite(DefaultSuiteConfig());
  RVAR_CHECK(suite.ok()) << suite.status().ToString();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "[setup] simulated %zu + %zu + %zu runs (D1/D2/D3) in %.1fs\n",
      suite->d1.telemetry.NumRuns(), suite->d2.telemetry.NumRuns(),
      suite->d3.telemetry.NumRuns(), secs);
  return std::move(*suite);
}

std::unique_ptr<core::VariationPredictor> TrainPredictorOrDie(
    const sim::StudySuite& suite, core::Normalization norm) {
  const auto start = std::chrono::steady_clock::now();
  auto predictor =
      core::VariationPredictor::Train(suite, DefaultPredictorConfig(norm));
  RVAR_CHECK(predictor.ok()) << predictor.status().ToString();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("[setup] trained %s-normalization predictor in %.1fs\n",
              core::NormalizationName(norm), secs);
  return std::move(*predictor);
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::string Sparkline(const std::vector<double>& pmf, int width) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  const size_t n = pmf.size();
  const size_t w = std::min<size_t>(static_cast<size_t>(width), n);
  // Aggregate bins into `w` columns, then scale by the max column.
  std::vector<double> cols(w, 0.0);
  for (size_t i = 0; i < n; ++i) {
    cols[i * w / n] += pmf[i];
  }
  double mx = 0.0;
  for (double c : cols) mx = std::max(mx, c);
  std::string out;
  for (double c : cols) {
    const int level =
        mx > 0.0 ? static_cast<int>(7.999 * c / mx) : 0;
    out += kLevels[level];
  }
  return out;
}

}  // namespace bench
}  // namespace rvar
