// Reproduces Figure 7: (a) the confusion matrix of the shape predictor on
// the test dataset D3 with overall accuracy, and (b) accuracy bucketed by
// the number of historic occurrences of the job group, for both
// normalizations.

#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "core/report.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();

  for (core::Normalization norm :
       {core::Normalization::kRatio, core::Normalization::kDelta}) {
    auto predictor = bench::TrainPredictorOrDie(suite, norm);
    auto eval = predictor->Evaluate(suite.d3.telemetry);
    RVAR_CHECK(eval.ok()) << eval.status().ToString();

    bench::PrintHeader(StrCat("Figure 7a: confusion matrix (",
                              core::NormalizationName(norm),
                              "-normalization)"));
    std::printf("overall accuracy: %s\n\n",
                FormatPercent(eval->accuracy).c_str());
    std::printf("%s", eval->confusion.ToString().c_str());

    bench::PrintHeader(StrCat("Figure 7b: accuracy vs historic occurrences (",
                              core::NormalizationName(norm),
                              "-normalization)"));
    std::printf("%s", core::RenderSupportBuckets(*eval).c_str());
  }
  std::printf(
      "\n(paper: >96%% accuracy for both normalizations; accuracy grows\n"
      " with the number of historic occurrences.)\n");
  return 0;
}
