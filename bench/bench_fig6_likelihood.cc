// Reproduces Figure 6: posterior log-likelihood examples — a job group
// with ~10 observations is compared against every canonical shape; the
// best-matching and worst-matching cluster PMFs are shown with their
// log-likelihood values.

#include <algorithm>
#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "core/assigner.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  core::GroupMedians medians =
      core::GroupMedians::FromTelemetry(suite.d1.telemetry);

  core::ShapeLibraryConfig config;
  config.normalization = core::Normalization::kDelta;  // as in the paper
  config.num_clusters = 8;
  config.min_support = 20;
  config.kmeans.num_restarts = 8;
  auto lib = core::ShapeLibrary::Build(suite.d1.telemetry, medians, config);
  RVAR_CHECK(lib.ok()) << lib.status().ToString();
  core::PosteriorAssigner assigner(&*lib);

  // A job group with about 10 observations (Figure 6 uses 10
  // occurrences): take the first 10 D3 runs of a qualifying group.
  int chosen = -1;
  for (int gid : suite.d3.telemetry.GroupsWithSupport(10)) {
    if (medians.Has(gid)) {
      chosen = gid;
      break;
    }
  }
  RVAR_CHECK(chosen >= 0) << "no qualifying group in D3";
  auto all_normalized = core::NormalizedGroupRuntimes(
      suite.d3.telemetry, chosen, medians, config.normalization);
  RVAR_CHECK(all_normalized.ok());
  auto normalized = std::make_optional(std::vector<double>(
      all_normalized->begin(), all_normalized->begin() + 10));

  auto lls = assigner.LogLikelihoods(*normalized);
  RVAR_CHECK(lls.ok());
  std::vector<core::ClusterLikelihood> sorted = *lls;
  std::sort(sorted.begin(), sorted.end(),
            [](const core::ClusterLikelihood& a,
               const core::ClusterLikelihood& b) {
              return a.log_likelihood > b.log_likelihood;
            });

  bench::PrintHeader("Figure 6: posterior log-likelihood example");
  std::printf("job_group_%d with %zu observations (Delta-normalized)\n\n",
              chosen, normalized->size());
  std::printf("observations PMF:\n  |%s|\n\n",
              bench::Sparkline(lib->ObservationPmf(*normalized)).c_str());
  std::printf("%-8s %-14s\n", "cluster", "log-likelihood");
  for (const core::ClusterLikelihood& cl : sorted) {
    std::printf("C%-7d %-14.1f%s\n", cl.cluster, cl.log_likelihood,
                cl.cluster == sorted.front().cluster
                    ? "  <- best match"
                    : (cl.cluster == sorted.back().cluster
                           ? "  <- worst match"
                           : ""));
  }
  std::printf("\nbest-match shape  C%d:\n  |%s|\n", sorted.front().cluster,
              bench::Sparkline(lib->shape(sorted.front().cluster)).c_str());
  std::printf("worst-match shape C%d:\n  |%s|\n", sorted.back().cluster,
              bench::Sparkline(lib->shape(sorted.back().cluster)).c_str());
  std::printf(
      "\n(paper: the cluster with the highest log-likelihood (-422.9 in\n"
      " the example) has the most similar shape; the lowest, the least.)\n");
  return 0;
}
