// Reproduces Section 7.2 (Scenario 2): shift all vertices from Gen3.5 to
// Gen5.2 machines and re-predict. The paper finds the dominant migration
// is Cluster 2 -> Cluster 0 for 20.95% of jobs (Ratio), with a significant
// drop in the 25-75th gap; for Delta, Cluster 1 -> 0 (gap 11s -> 4s).

#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "core/rebalance.h"
#include "core/report.h"
#include "core/whatif.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();

  for (core::Normalization norm :
       {core::Normalization::kRatio, core::Normalization::kDelta}) {
    auto predictor = bench::TrainPredictorOrDie(suite, norm);
    core::WhatIfEngine engine(predictor.get());
    auto result = engine.Run(
        suite.d3.telemetry,
        StrCat("shift vertices Gen3.5 -> Gen5.2 (",
               core::NormalizationName(norm), ")"),
        core::WhatIfEngine::ShiftSkuVertices("Gen3.5", "Gen5.2"));
    RVAR_CHECK(result.ok()) << result.status().ToString();
    bench::PrintHeader(StrCat("Scenario 2 (", core::NormalizationName(norm),
                              "-normalization)"));
    std::printf("%s",
                core::RenderScenario(*result, predictor->shapes()).c_str());
  }
  // The paper's stated extension: integrate a KEA-style model that
  // predicts utilization changes under workload rebalancing, making the
  // shift "dynamic" (Section 7.2's closing paragraph).
  {
    auto predictor =
        bench::TrainPredictorOrDie(suite, core::Normalization::kRatio);
    auto model = core::RebalanceModel::Estimate(
        suite.d2.telemetry, suite.cluster->catalog(),
        suite.config.d2_days * 86400.0);
    RVAR_CHECK(model.ok()) << model.status().ToString();
    auto transform = model->DynamicSkuShift("Gen3.5", "Gen5.2");
    RVAR_CHECK(transform.ok());
    core::WhatIfEngine engine(predictor.get());
    auto result = engine.Run(suite.d3.telemetry,
                             "shift Gen3.5 -> Gen5.2 with KEA-style "
                             "utilization rebalancing (Ratio)",
                             *transform);
    RVAR_CHECK(result.ok());
    bench::PrintHeader("Scenario 2 + rebalancing feedback");
    std::printf("Gen3.5 job-driven load share: %s; Gen5.2: %s\n",
                FormatPercent(model->SkuLoad(1)).c_str(),
                FormatPercent(model->SkuLoad(5)).c_str());
    std::printf("%s",
                core::RenderScenario(*result, predictor->shapes()).c_str());
  }
  std::printf(
      "\n(paper: running more vertices on later-generation SKUs shifts\n"
      " jobs toward the low-variance clusters; the rebalancing-aware\n"
      " variant additionally accounts for the utilization shift.)\n");
  return 0;
}
