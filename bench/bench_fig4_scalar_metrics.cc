// Reproduces Figure 4: why scalar metrics fail.
//  (a) instance runtimes vs the group's historic median — a diagonal mass
//      plus a slower "stalagmite" of rare outliers that the median cannot
//      anticipate;
//  (b) historic COV vs the COV of new observations — unstable, with the
//      same historic COV mapping to many different outcomes.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/scalar_metrics.h"
#include "ml/feature_select.h"
#include "stats/descriptive.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  core::GroupMedians medians =
      core::GroupMedians::FromTelemetry(suite.d1.telemetry);

  bench::PrintHeader("Figure 4a: Median vs instance runtimes (D2)");
  auto stalagmite = core::AnalyzeStalagmite(suite.d2.telemetry, medians);
  RVAR_CHECK(stalagmite.ok()) << stalagmite.status().ToString();
  TextTable t4a;
  t4a.SetHeader({"regime", "runs", "share"});
  t4a.AddRow({"diagonal (<1.5x median)", FormatCount(stalagmite->diagonal_runs),
              FormatPercent(stalagmite->DiagonalShare())});
  t4a.AddRow({"mild slowdown (1.5-3x)", FormatCount(stalagmite->mild_runs),
              FormatPercent(static_cast<double>(stalagmite->mild_runs) /
                            stalagmite->total_runs)});
  t4a.AddRow({"stalagmite (>3x median)",
              FormatCount(stalagmite->stalagmite_runs),
              FormatPercent(stalagmite->StalagmiteShare())});
  std::printf("%s", t4a.ToString().c_str());
  std::printf("log-log correlation(median, runtime) = %.3f\n",
              stalagmite->log_correlation);
  std::printf(
      "(paper: most runs track the diagonal; <5%% form a slower\n"
      " stalagmite that the median cannot predict.)\n");

  bench::PrintHeader("Figure 4b: Historic COV vs COV of new observations");
  auto stability =
      core::AnalyzeCovStability(suite.d2.telemetry, suite.d3.telemetry, 3);
  RVAR_CHECK(stability.ok()) << stability.status().ToString();
  std::printf("groups compared: %d\n", stability->num_groups);
  std::printf("correlation(historic COV, new COV) = %.3f\n",
              stability->correlation);
  // Dispersion of new COV within historic-COV buckets: if historic COV
  // were predictive, each bucket would be tight.
  TextTable t4b;
  t4b.SetHeader({"historic COV", "groups", "new COV p10", "new COV median",
                 "new COV p90"});
  for (const auto& b : stability->buckets) {
    t4b.AddRow({StrCat(FormatDouble(b.lo, 1), "-",
                       b.hi > 100 ? std::string("inf")
                                  : FormatDouble(b.hi, 1)),
                StrCat(b.num_groups), FormatDouble(b.new_cov_p10, 3),
                FormatDouble(b.new_cov_median, 3),
                FormatDouble(b.new_cov_p90, 3)});
  }
  std::printf("%s", t4b.ToString().c_str());
  std::printf(
      "(paper: the same historic COV maps to widely different observed\n"
      " COVs — scalar metrics are insufficient for prediction.)\n");
  return 0;
}
