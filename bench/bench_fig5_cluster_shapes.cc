// Reproduces Figure 5: the typical distributions of normalized runtime —
// 8 canonical shapes for Ratio-normalization and 8 for Delta-normalization,
// discovered by clustering smoothed group PMFs from D1.

#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "core/shape_library.h"

namespace {

void PrintLibrary(const rvar::core::ShapeLibrary& lib) {
  using namespace rvar;
  const BinGrid& grid = lib.grid();
  std::printf("grid [%g, %g], %d bins, inertia %.4f\n", grid.lo(),
              grid.hi(), grid.num_bins(), lib.inertia());
  for (int c = 0; c < lib.num_clusters(); ++c) {
    const core::ShapeStats& s = lib.stats(c);
    std::printf("C%d |%s| groups=%d\n", c,
                bench::Sparkline(lib.shape(c)).c_str(), s.num_groups);
  }
  std::printf("   %-60s\n",
              lib.normalization() == core::Normalization::kRatio
                  ? "0x        (runtime / median)                       10x"
                  : "-900s     (runtime - median)                     +900s");
}

}  // namespace

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  core::GroupMedians medians =
      core::GroupMedians::FromTelemetry(suite.d1.telemetry);

  for (core::Normalization norm :
       {core::Normalization::kRatio, core::Normalization::kDelta}) {
    core::ShapeLibraryConfig config;
    config.normalization = norm;
    config.num_clusters = 8;
    config.min_support = 20;
    config.kmeans.num_restarts = 8;
    auto lib = core::ShapeLibrary::Build(suite.d1.telemetry, medians, config);
    RVAR_CHECK(lib.ok()) << lib.status().ToString();
    bench::PrintHeader(
        StrCat("Figure 5: typical distributions (",
               core::NormalizationName(norm), "-normalization)"));
    PrintLibrary(*lib);
  }
  std::printf(
      "\n(paper: 8 shapes per normalization; some bimodal, with different\n"
      " variances and outlier masses.)\n");
  return 0;
}
