#!/usr/bin/env python3
"""CI bench-regression gate over the BENCH_*.json kernel summaries.

Compares freshly measured kernel summaries (BENCH_kernels.json,
BENCH_gbdt.json, ...) against the checked-in bench/baseline.json. Raw
wall-clock is not comparable across runner generations, so every kernel
time is first normalized by its own file's calibration_seconds (a fixed
deterministic spin measured on the same machine, same build); the gate
then fires on the *normalized* ratio:

    ratio = (current_kernel / current_calibration)
          / (baseline_kernel / baseline_calibration)

A kernel whose ratio exceeds 1 + tolerance fails the job. Kernels only
present on one side are reported but never fail the gate (they appear when
the kernel set evolves; refresh the baseline in the same PR).

--current may repeat; each file carries its own calibration, and their
kernel maps are merged (duplicate kernel names across files are an error).
The baseline is a single file: refreshing it merges the current summaries
by hand or via the cp below when only one file changed.

Usage:
    check_regression.py --baseline bench/baseline.json \
        --current BENCH_kernels.json --current BENCH_gbdt.json \
        [--tolerance 0.25]

Refreshing the baseline after an intentional perf change: re-run
    ./bench/bench_perf_kernels --summaries_only
and fold the new kernel times (renormalized to the baseline's calibration)
into bench/baseline.json; with a single summary file a plain
    cp BENCH_kernels.json bench/baseline.json
still works.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    calibration = doc.get("calibration_seconds")
    kernels = doc.get("kernels")
    if not isinstance(calibration, (int, float)) or calibration <= 0:
        sys.exit(f"{path}: missing or non-positive calibration_seconds")
    if not isinstance(kernels, dict) or not kernels:
        sys.exit(f"{path}: missing or empty kernels map")
    for name, seconds in kernels.items():
        if not isinstance(seconds, (int, float)) or seconds <= 0:
            sys.exit(f"{path}: kernel {name!r} has non-positive time")
    return calibration, kernels


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True, action="append",
                        help="kernel summary JSON; may repeat, each file "
                             "is normalized by its own calibration")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalized slowdown (0.25 = +25%%)")
    args = parser.parse_args()

    base_cal, base = load(args.baseline)
    # cur maps kernel -> (seconds, calibration of the file it came from).
    cur = {}
    for path in args.current:
        cur_cal, kernels = load(path)
        speed = cur_cal / base_cal
        print(f"calibration: baseline {base_cal:.4f}s, {path} "
              f"{cur_cal:.4f}s (machine speed factor {speed:.2f}x)")
        for name, seconds in kernels.items():
            if name in cur:
                sys.exit(f"{path}: kernel {name!r} appears in more than "
                         "one --current file")
            cur[name] = (seconds, cur_cal)
    print(f"{'kernel':<24} {'baseline':>10} {'current':>10} "
          f"{'norm ratio':>10}  verdict")

    regressions = []
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            print(f"{name:<24} {base[name]:>10.4f} {'-':>10} {'-':>10}  "
                  "missing in current (not gated)")
            continue
        seconds, cur_cal = cur[name]
        if name not in base:
            print(f"{name:<24} {'-':>10} {seconds:>10.4f} {'-':>10}  "
                  "new kernel (not gated)")
            continue
        ratio = (seconds / cur_cal) / (base[name] / base_cal)
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = f"REGRESSION (> +{args.tolerance:.0%})"
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.tolerance:
            verdict = "improvement (consider refreshing baseline)"
        print(f"{name:<24} {base[name]:>10.4f} {seconds:>10.4f} "
              f"{ratio:>10.2f}  {verdict}")

    if regressions:
        print()
        for name, ratio in regressions:
            print(f"FAIL: {name} is {ratio:.2f}x its normalized baseline")
        sys.exit(1)
    print("\nbench-regression gate passed")


if __name__ == "__main__":
    main()
