// Reproduces Section 7.3 (Scenario 3): perfectly balanced machine load
// (the stddev of CPU utilization reduced to 0). The paper finds the
// dominant migration is Cluster 2 -> Cluster 0 for 29.78% of jobs (Ratio),
// with the 25-75th gap reduced from 0.16 to 0.06.

#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "core/report.h"
#include "stats/descriptive.h"
#include "core/whatif.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();

  for (core::Normalization norm :
       {core::Normalization::kRatio, core::Normalization::kDelta}) {
    auto predictor = bench::TrainPredictorOrDie(suite, norm);
    core::WhatIfEngine engine(predictor.get());
    auto result = engine.Run(suite.d3.telemetry,
                             StrCat("equalize machine load (",
                                    core::NormalizationName(norm), ")"),
                             core::WhatIfEngine::EqualizeLoad());
    RVAR_CHECK(result.ok()) << result.status().ToString();
    bench::PrintHeader(StrCat("Scenario 3 (", core::NormalizationName(norm),
                              "-normalization)"));
    std::printf("%s",
                core::RenderScenario(*result, predictor->shapes()).c_str());
  }

  // Simulator cross-check: rebuild with load_imbalance = 0.
  bench::PrintHeader("Simulator cross-check: balanced load");
  sim::SuiteConfig config = bench::DefaultSuiteConfig();
  config.cluster.load_imbalance = 0.0;
  config.cluster.noise_amplitude = 0.0;
  config.cluster.sku_heat_coupling = 0.0;  // no hot pockets anywhere
  auto balanced = sim::BuildStudySuite(config);
  RVAR_CHECK(balanced.ok());
  auto dispersion = [](const sim::StudySuite& s) {
    core::GroupMedians medians =
        core::GroupMedians::FromTelemetry(s.d1.telemetry);
    std::vector<double> ratios;
    for (const sim::JobRun& run : s.d3.telemetry.runs()) {
      if (!medians.Has(run.group_id)) continue;
      ratios.push_back(run.runtime_seconds / *medians.Of(run.group_id));
    }
    return InterquartileRange(ratios);
  };
  sim::StudySuite base_suite = bench::BuildSuiteOrDie();
  std::printf("pooled runtime/median IQR: imbalanced %.3f, balanced %.3f\n",
              dispersion(base_suite), dispersion(*balanced));
  std::printf(
      "(paper: equalized load moves jobs into the lowest-variance\n"
      " cluster — significant monetary value for a better scheduler.)\n");
  return 0;
}
