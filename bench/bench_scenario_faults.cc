// Fault-injection scenario: how machine-failure and telemetry-corruption
// rates shift cluster-shape membership. For each fault rate the study
// suite is rebuilt under an identically seeded FaultPlan and every D3
// group is re-assigned against the clean run's shape library; the
// migration column is the share of groups whose cluster changed relative
// to the clean study. Retries on/off contrasts bounded re-execution
// (lost work + backoff appears as extra runtime) with abandoning jobs at
// the first fault (telemetry loss).

#include <cstdio>
#include <unordered_map>

#include "bench_common.h"
#include "core/assigner.h"
#include "core/normalization.h"
#include "core/shape_library.h"

namespace {

using namespace rvar;

sim::SuiteConfig FaultSuiteConfig() {
  sim::SuiteConfig config;
  config.num_groups = 80;
  config.d1_days = 8.0;
  config.d2_days = 3.0;
  config.d3_days = 1.5;
  config.d1_support = 15;
  config.workload.min_period_seconds = 900.0;
  config.workload.max_period_seconds = 4.0 * 3600.0;
  config.seed = 7;
  return config;
}

sim::FaultPlanConfig FaultsAtRate(double rate) {
  sim::FaultPlanConfig faults;
  faults.seed = 404;
  faults.machine_fault_rate = rate;
  faults.token_revocation_rate = rate / 2.0;
  // Telemetry corruption scales with the machine-fault rate: a flaky
  // fleet also produces flaky logs.
  faults.drop_run_rate = rate / 5.0;
  faults.duplicate_run_rate = rate / 5.0;
  faults.nan_runtime_rate = rate / 5.0;
  faults.negative_runtime_rate = rate / 5.0;
  faults.missing_columns_rate = rate / 5.0;
  faults.reorder_window = rate > 0.0 ? 20 : 0;
  return faults;
}

// Per-group D3 cluster assignment against a fixed (clean) library.
std::unordered_map<int, int> AssignGroups(const sim::StudySuite& suite,
                                          const core::GroupMedians& medians,
                                          const core::ShapeLibrary& library,
                                          const core::PosteriorAssigner& assigner) {
  std::unordered_map<int, int> assignment;
  for (int gid : suite.d3.telemetry.GroupIds()) {
    auto normalized =
        core::NormalizedGroupRuntimes(suite.d3.telemetry, gid, medians,
                                      library.normalization());
    if (!normalized.ok()) continue;
    auto cluster = assigner.Assign(*normalized);
    if (!cluster.ok()) continue;
    assignment[gid] = *cluster;
  }
  return assignment;
}

double MeanRuntime(const sim::TelemetryStore& store) {
  if (store.NumRuns() == 0) return 0.0;
  double total = 0.0;
  for (const sim::JobRun& run : store.runs()) total += run.runtime_seconds;
  return total / static_cast<double>(store.NumRuns());
}

}  // namespace

int main() {
  using namespace rvar;

  bench::PrintHeader("Fault sweep: cluster-shape migration vs fault rate");
  sim::SuiteConfig clean_config = FaultSuiteConfig();
  auto clean = sim::BuildStudySuite(clean_config);
  RVAR_CHECK(clean.ok()) << clean.status().ToString();

  const core::GroupMedians medians =
      core::GroupMedians::FromTelemetry(clean->d1.telemetry);
  core::ShapeLibraryConfig sc;
  sc.num_clusters = 5;
  sc.min_support = 15;
  sc.kmeans.num_restarts = 4;
  auto library =
      core::ShapeLibrary::Build(clean->d1.telemetry, medians, sc);
  RVAR_CHECK(library.ok()) << library.status().ToString();
  const core::PosteriorAssigner assigner(&*library);

  const std::unordered_map<int, int> baseline =
      AssignGroups(*clean, medians, *library, assigner);
  const double clean_mean = MeanRuntime(clean->d3.telemetry);
  std::printf("clean study: %zu D3 runs, %zu assigned groups, "
              "mean runtime %.0f s\n\n",
              clean->d3.telemetry.NumRuns(), baseline.size(), clean_mean);

  std::printf("%7s %8s %10s %9s %8s %11s %11s %9s\n", "fault%", "retries",
              "migrated%", "faults", "failed", "quarantined", "d3 runs",
              "runtime");
  for (const double rate : {0.0, 0.05, 0.10, 0.20}) {
    for (const int retries : {3, 0}) {
      sim::SuiteConfig config = FaultSuiteConfig();
      config.faults = FaultsAtRate(rate);
      config.scheduler.max_vertex_retries = retries;
      auto suite = sim::BuildStudySuite(config);
      RVAR_CHECK(suite.ok()) << suite.status().ToString();

      // Membership under faults, measured against the clean library and
      // this study's own D1 history (the production setting: history and
      // live traffic degrade together).
      const core::GroupMedians fault_medians =
          core::GroupMedians::FromTelemetry(suite->d1.telemetry);
      const std::unordered_map<int, int> assignment =
          AssignGroups(*suite, fault_medians, *library, assigner);
      int comparable = 0, migrated = 0;
      for (const auto& [gid, cluster] : assignment) {
        const auto it = baseline.find(gid);
        if (it == baseline.end()) continue;
        ++comparable;
        migrated += (cluster != it->second);
      }
      const double migrated_pct =
          comparable > 0 ? 100.0 * migrated / comparable : 0.0;
      const double mean = MeanRuntime(suite->d3.telemetry);
      const double inflation =
          clean_mean > 0.0 ? 100.0 * (mean / clean_mean - 1.0) : 0.0;
      std::printf(
          "%6.0f%% %8d %9.1f%% %9lld %8lld %11lld %11zu %+7.1f%%\n",
          100.0 * rate, retries, migrated_pct,
          static_cast<long long>(suite->faults.machine_faults),
          static_cast<long long>(suite->faults.failed_jobs),
          static_cast<long long>(suite->faults.quarantined_runs),
          suite->d3.telemetry.NumRuns(), inflation);
    }
  }
  std::printf(
      "\n(migrated%% = D3 groups whose posterior shape differs from the\n"
      " clean study; retries=0 abandons jobs at the first machine fault,\n"
      " trading runtime inflation for telemetry loss.)\n");
  return 0;
}
