// Reproduces Table 1: the dataset summary (interval, job groups, job
// instances, support threshold) for the simulated D1/D2/D3 slices.

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  bench::PrintHeader("Table 1: Datasets used for this study");
  std::printf("%s", core::RenderDatasetSummary(suite).c_str());
  std::printf(
      "\n(paper: D1 = 6 months, >9K groups, >3M instances, support 20;\n"
      " D2 = 15 days, >11K groups, >700K instances, support 3;\n"
      " D3 = 5 days, >11K groups, >200K instances, support 3 —\n"
      " simulated at laptop scale with the same support thresholds and\n"
      " role split.)\n");
  return 0;
}
