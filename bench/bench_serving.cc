// Copyright 2026 The rvar Authors.
//
// Load generator for the overload-resilient serving front-end
// (src/serve/, DESIGN.md §12), emitting BENCH_serving.json for the CI
// bench-regression gate.
//
// Two traffic shapes:
//   * closed loop — a fixed client pool issues one request at a time and
//     waits for each answer; measures serving capacity (QPS) and the
//     request latency distribution (p50/p99/p999 read back from the obs
//     latency histogram the front-end itself populates).
//   * open loop — clients fire a 10x burst without waiting, against a
//     deliberately small queue and token budget; measures how much the
//     admission controller sheds and that every future still resolves.
//
// The gated `kernels` map carries the two CPU-bound timings (batch predict
// and the closed-loop drain) normalized by the same calibration spin the
// other BENCH_*.json summaries use; the throughput/shedding numbers land
// in an ungated top-level "serving" section (check_regression.py ignores
// unknown top-level keys) because shed rate is a policy outcome, not a
// performance regression signal.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "core/shape_service.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "sim/datasets.h"

namespace {

using namespace rvar;

// Keep-alive sink standing in for benchmark::DoNotOptimize (this binary
// does not link google-benchmark).
volatile uint64_t g_sink = 0;

double SecondsOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Best-of-3 wall clock, same rationale as bench_perf_kernels.cc: the
// minimum discards scheduler hiccups on shared CI runners.
double BestSecondsOf(const std::function<void()>& fn) {
  double best = SecondsOf(fn);
  for (int rep = 0; rep < 2; ++rep) best = std::min(best, SecondsOf(fn));
  return best;
}

// The identical deterministic spin bench_perf_kernels.cc uses, so the
// normalized ratios in check_regression.py are comparable across files.
double CalibrationSeconds() {
  return BestSecondsOf([] {
    uint64_t h = 1469598103934665603ULL;
    for (int i = 0; i < 20000000; ++i) {
      h ^= static_cast<uint64_t>(i);
      h *= 1099511628211ULL;
    }
    g_sink = h;
  });
}

struct SpikeStats {
  int64_t served = 0;
  int64_t shed = 0;
  int64_t degraded = 0;  // served below kFullModel
  std::vector<int64_t> shed_by_reason =
      std::vector<int64_t>(serve::kNumShedReasons, 0);
};

}  // namespace

int main() {
  // Fixture: the same study-suite shape the serve tests train against.
  sim::SuiteConfig suite_config;
  suite_config.num_groups = 40;
  suite_config.d1_days = 3.0;
  suite_config.d2_days = 1.5;
  suite_config.d3_days = 0.5;
  suite_config.d1_support = 12;
  suite_config.seed = 311;
  auto suite = sim::BuildStudySuite(suite_config);
  if (!suite.ok()) {
    std::fprintf(stderr, "suite: %s\n", suite.status().ToString().c_str());
    return 1;
  }

  core::PredictorConfig predictor_config;
  predictor_config.shape.num_clusters = 3;
  predictor_config.shape.min_support = 12;
  predictor_config.shape.kmeans.num_restarts = 3;
  predictor_config.gbdt.num_rounds = 15;
  auto predictor = core::VariationPredictor::Train(*suite, predictor_config);
  if (!predictor.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 predictor.status().ToString().c_str());
    return 1;
  }

  auto service = core::ShapeService::Make(&(*predictor)->shapes());
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  (*service)->SwapModel((*predictor)->ModelSnapshot());

  const std::vector<sim::JobRun>& runs = suite->d3.telemetry.runs();
  if (runs.empty()) {
    std::fprintf(stderr, "no d3 runs to serve\n");
    return 1;
  }

  // --- Gated kernel 1: the epoch-pinned batch scoring the workers use ----
  std::vector<const sim::JobRun*> batch;
  for (size_t i = 0; i < 256; ++i) batch.push_back(&runs[i % runs.size()]);
  const auto model = (*service)->ModelSnapshot();
  std::vector<int> shapes;
  std::vector<Status> run_status;
  // Untimed warmup: the first ParallelFor call spawns the worker pool.
  (void)(*predictor)
      ->PredictShapeBatchInto(*model, batch, &shapes, &run_status);
  const double batch_predict_s = BestSecondsOf([&] {
    uint64_t acc = 0;
    for (int rep = 0; rep < 200; ++rep) {
      (void)(*predictor)
          ->PredictShapeBatchInto(*model, batch, &shapes, &run_status);
      acc += static_cast<uint64_t>(shapes.empty() ? 0 : shapes[0] + 1);
    }
    g_sink = acc;
  });

  // --- Gated kernel 2 + QPS/latency: closed-loop through the front-end ---
  constexpr int kClosedClients = 4;
  constexpr int kClosedPerClient = 1500;
  constexpr int kClosedTotal = kClosedClients * kClosedPerClient;
  serve::FrontendOptions closed_options;
  closed_options.max_batch = 32;
  closed_options.batch_linger = std::chrono::microseconds(0);
  closed_options.default_deadline = std::chrono::milliseconds(2000);
  closed_options.num_workers = 2;
  auto closed_frontend = serve::ServingFrontend::Make(
      service->get(), predictor->get(), closed_options);
  if (!closed_frontend.ok()) {
    std::fprintf(stderr, "frontend: %s\n",
                 closed_frontend.status().ToString().c_str());
    return 1;
  }
  const double closed_loop_s = BestSecondsOf([&] {
    std::vector<std::thread> clients;
    std::atomic<uint64_t> acc{0};
    for (int c = 0; c < kClosedClients; ++c) {
      clients.emplace_back([&, c] {
        uint64_t local = 0;
        for (int i = 0; i < kClosedPerClient; ++i) {
          const sim::JobRun& run =
              runs[(static_cast<size_t>(c) * kClosedPerClient + i) %
                   runs.size()];
          const serve::PredictResponse response =
              (*closed_frontend)
                  ->Predict(run, serve::Priority::kInteractive,
                            std::chrono::seconds(5));
          local += static_cast<uint64_t>(response.shape + 2);
        }
        acc.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : clients) t.join();
    g_sink = acc.load();
  });
  const double closed_loop_qps = kClosedTotal / closed_loop_s;

  // Latency quantiles straight off the obs histogram the front-end
  // populates (all three best-of reps accumulate into it, which only
  // tightens the tails).
  obs::Histogram* latency = obs::Registry::Default().GetHistogram(
      "serve_request_latency_seconds");
  const double p50 = latency->Quantile(0.50);
  const double p99 = latency->Quantile(0.99);
  const double p999 = latency->Quantile(0.999);
  (*closed_frontend)->Shutdown();

  // --- Open-loop 10x spike against a deliberately small admission box ----
  constexpr int kSpikeClients = 8;
  constexpr int kSpikePerClient = 2000;
  constexpr int kSpikeTotal = kSpikeClients * kSpikePerClient;
  serve::FrontendOptions spike_options = closed_options;
  spike_options.default_deadline = std::chrono::milliseconds(50);
  spike_options.admission.queue_capacity = 256;
  spike_options.admission.best_effort_watermark = 64;
  spike_options.admission.standard_watermark = 192;
  spike_options.admission.bucket.rate_per_second = 20000.0;
  spike_options.admission.bucket.burst = 500.0;
  auto spike_frontend = serve::ServingFrontend::Make(
      service->get(), predictor->get(), spike_options);
  if (!spike_frontend.ok()) {
    std::fprintf(stderr, "spike frontend: %s\n",
                 spike_frontend.status().ToString().c_str());
    return 1;
  }

  SpikeStats stats;
  double spike_s = 0.0;
  {
    std::vector<std::vector<std::future<serve::PredictResponse>>> futures(
        kSpikeClients);
    std::atomic<bool> go{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < kSpikeClients; ++c) {
      futures[c].reserve(kSpikePerClient);
      clients.emplace_back([&, c] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < kSpikePerClient; ++i) {
          serve::PredictRequest request;
          request.run = &runs[(static_cast<size_t>(c) * kSpikePerClient + i) %
                              runs.size()];
          request.priority = static_cast<serve::Priority>(i % 3);
          request.deadline = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(50);
          futures[c].push_back((*spike_frontend)->Submit(std::move(request)));
        }
      });
    }
    const auto spike_start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread& t : clients) t.join();
    for (auto& per_client : futures) {
      for (auto& f : per_client) {
        const serve::PredictResponse response = f.get();
        if (response.served()) {
          ++stats.served;
          if (response.level != serve::DegradationLevel::kFullModel) {
            ++stats.degraded;
          }
        } else {
          ++stats.shed;
          ++stats.shed_by_reason[static_cast<int>(response.shed)];
        }
      }
    }
    spike_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            spike_start)
                  .count();
  }
  (*spike_frontend)->Shutdown();

  // --- Mixed-group Observe throughput: 1 shard vs 4 shards --------------
  // The acceptance bar for the share-nothing refactor: concurrent writers
  // spraying observations across many groups must get strictly more
  // throughput once the tracker maps stop sharing a lock. Ungated (lands
  // in the "serving" section) because the absolute numbers are
  // machine-dependent; the 4-shard-vs-1-shard ratio is the signal.
  constexpr int kObserveThreads = 4;
  constexpr int kObservePerThread = 30000;
  constexpr int kObserveGroups = 64;
  auto observe_qps = [&](int num_shards) -> double {
    core::ShapeService::Options options;
    options.num_shards = num_shards;
    auto contended = core::ShapeService::Make(&(*predictor)->shapes(), options);
    if (!contended.ok()) return 0.0;
    const double seconds = BestSecondsOf([&] {
      std::vector<std::thread> writers;
      for (int t = 0; t < kObserveThreads; ++t) {
        writers.emplace_back([&, t] {
          for (int i = 0; i < kObservePerThread; ++i) {
            const int gid = (t * kObservePerThread + i * 7) % kObserveGroups;
            (void)(*contended)->Observe(gid, 1.0 + 0.001 * (i % 9));
          }
        });
      }
      for (std::thread& t : writers) t.join();
      g_sink = static_cast<uint64_t>((*contended)->TotalObservations());
    });
    return kObserveThreads * kObservePerThread / seconds;
  };
  const double observe_qps_1shard = observe_qps(1);
  const double observe_qps_4shard = observe_qps(4);

  const double calibration = CalibrationSeconds();
  std::FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"calibration_seconds\": %.6f,\n"
      "  \"kernels\": {\n"
      "    \"serving_batch_predict\": %.6f,\n"
      "    \"serving_closed_loop\": %.6f\n"
      "  },\n"
      "  \"serving\": {\n"
      "    \"closed_loop_requests\": %d,\n"
      "    \"closed_loop_qps\": %.0f,\n"
      "    \"latency_p50_seconds\": %.6f,\n"
      "    \"latency_p99_seconds\": %.6f,\n"
      "    \"latency_p999_seconds\": %.6f,\n"
      "    \"open_loop_requests\": %d,\n"
      "    \"open_loop_seconds\": %.3f,\n"
      "    \"open_loop_served\": %lld,\n"
      "    \"open_loop_degraded\": %lld,\n"
      "    \"open_loop_shed\": %lld,\n"
      "    \"open_loop_shed_rate\": %.4f,\n"
      "    \"shed_queue_full\": %lld,\n"
      "    \"shed_watermark\": %lld,\n"
      "    \"shed_tokens\": %lld,\n"
      "    \"shed_deadline\": %lld,\n"
      "    \"observe_qps_1shard\": %.0f,\n"
      "    \"observe_qps_4shard\": %.0f,\n"
      "    \"observe_shard_speedup\": %.3f\n"
      "  }\n"
      "}\n",
      calibration, batch_predict_s, closed_loop_s, kClosedTotal,
      closed_loop_qps, p50, p99, p999, kSpikeTotal, spike_s,
      static_cast<long long>(stats.served),
      static_cast<long long>(stats.degraded),
      static_cast<long long>(stats.shed),
      static_cast<double>(stats.shed) / kSpikeTotal,
      static_cast<long long>(
          stats.shed_by_reason[static_cast<int>(serve::ShedReason::kQueueFull)]),
      static_cast<long long>(
          stats.shed_by_reason[static_cast<int>(serve::ShedReason::kWatermark)]),
      static_cast<long long>(
          stats.shed_by_reason[static_cast<int>(serve::ShedReason::kTokens)]),
      static_cast<long long>(
          stats.shed_by_reason[static_cast<int>(serve::ShedReason::kDeadline)]),
      observe_qps_1shard, observe_qps_4shard,
      observe_qps_1shard > 0.0 ? observe_qps_4shard / observe_qps_1shard
                               : 0.0);
  std::fclose(out);
  std::printf(
      "serving summary written to BENCH_serving.json "
      "(closed-loop %.0f qps, p99 %.4fs, spike shed rate %.2f%%, "
      "observe 4-shard/1-shard %.2fx)\n",
      closed_loop_qps, p99,
      100.0 * static_cast<double>(stats.shed) / kSpikeTotal,
      observe_qps_1shard > 0.0 ? observe_qps_4shard / observe_qps_1shard
                               : 0.0);
  return 0;
}
