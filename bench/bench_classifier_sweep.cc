// Reproduces the classifier sweep of Section 5.2: the paper fits
// RandomForestClassifier, LightGBMClassifier, and an EnsembledClassifier
// (soft-voting over RandomForest, LightGBM, GradientBoosting, GaussianNB,
// XGB) with hyper-parameter sweeping, and reports that LightGBMClassifier
// has the highest accuracy. We run the same family comparison on the
// shape-prediction task plus a hyper-parameter grid for the winner.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/predictor.h"
#include "ml/ensemble.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/gradient_boosting.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/tuning.h"

rvar::ml::ForestConfig ForestWithTrees(int num_trees) {
  rvar::ml::ForestConfig config;
  config.num_trees = num_trees;
  return config;
}

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();

  // The training problem exactly as the 2-step predictor sees it: D2 rows
  // labeled by posterior likelihood, D3 rows as the test set.
  auto predictor =
      bench::TrainPredictorOrDie(suite, core::Normalization::kRatio);
  auto train_labels = predictor->LabelGroups(suite.d2.telemetry, 3);
  auto test_labels = predictor->LabelGroups(suite.d3.telemetry, 3);
  RVAR_CHECK(train_labels.ok() && test_labels.ok());
  auto train = predictor->featurizer().BuildDataset(suite.d2.telemetry,
                                                    *train_labels);
  auto test = predictor->featurizer().BuildDataset(suite.d3.telemetry,
                                                   *test_labels);
  RVAR_CHECK(train.ok() && test.ok());
  std::printf("train rows: %zu, test rows: %zu, classes: %d\n",
              train->NumRows(), test->NumRows(), train->NumClasses());

  auto make_voting = [] {
    auto voting = std::make_unique<ml::VotingClassifier>();
    voting->AddModel(std::make_unique<ml::RandomForestClassifier>(
        ForestWithTrees(40)));
    voting->AddModel(
        std::make_unique<ml::GbdtClassifier>(ml::GbdtConfig{
            .num_rounds = 30, .feature_fraction = 0.7}));
    voting->AddModel(std::make_unique<ml::GradientBoostingClassifier>(
        ml::GradientBoostingConfig{.num_rounds = 30, .max_depth = 4}));
    voting->AddModel(std::make_unique<ml::GaussianNaiveBayes>());
    return voting;
  };

  struct Candidate {
    const char* name;
    std::unique_ptr<ml::Classifier> model;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"RandomForestClassifier",
                        std::make_unique<ml::RandomForestClassifier>(
                            ForestWithTrees(80))});
  candidates.push_back(
      {"GbdtClassifier (LightGBM-style)",
       std::make_unique<ml::GbdtClassifier>(ml::GbdtConfig{
           .num_rounds = 50, .feature_fraction = 0.7})});
  candidates.push_back({"GradientBoostingClassifier",
                        std::make_unique<ml::GradientBoostingClassifier>(
                            ml::GradientBoostingConfig{.num_rounds = 50,
                                                       .max_depth = 4})});
  candidates.push_back(
      {"GaussianNB", std::make_unique<ml::GaussianNaiveBayes>()});
  candidates.push_back({"VotingClassifier (soft)", make_voting()});

  bench::PrintHeader("Section 5.2: classifier family comparison");
  TextTable table;
  table.SetHeader({"model", "test accuracy", "logloss", "fit (s)"});
  for (Candidate& c : candidates) {
    const auto start = std::chrono::steady_clock::now();
    Status st = c.model->Fit(*train);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    RVAR_CHECK(st.ok()) << c.name << ": " << st.ToString();
    auto acc = ml::Accuracy(test->y, c.model->PredictAll(*test));
    std::vector<std::vector<double>> proba;
    proba.reserve(test->NumRows());
    for (const auto& row : test->x) {
      proba.push_back(c.model->PredictProba(row));
    }
    auto ll = ml::LogLoss(test->y, proba);
    RVAR_CHECK(acc.ok() && ll.ok());
    table.AddRow({c.name, FormatPercent(*acc), FormatDouble(*ll, 4),
                  FormatDouble(secs, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "(paper: LightGBMClassifier had the highest accuracy among the\n"
      " swept families and is used for the rest of the paper.)\n");

  // Hyper-parameter sweep for the GBDT (3-fold CV on a training sample).
  bench::PrintHeader("Section 5.2: hyper-parameter sweep (GBDT, 3-fold CV)");
  ml::Dataset sample = *train;
  if (sample.NumRows() > 6000) {
    Rng rng(5);
    std::vector<size_t> idx;
    for (size_t i : rng.Permutation(sample.NumRows())) {
      idx.push_back(i);
      if (idx.size() == 6000) break;
    }
    sample = sample.Subset(idx);
  }
  std::vector<std::pair<std::string, ml::ClassifierFactory>> grid;
  for (int rounds : {20, 50}) {
    for (int leaves : {15, 31}) {
      grid.emplace_back(
          StrCat("rounds=", rounds, " leaves=", leaves), [rounds, leaves] {
            return std::make_unique<ml::GbdtClassifier>(ml::GbdtConfig{
                .num_rounds = rounds,
                .max_leaves = leaves,
                .feature_fraction = 0.7});
          });
    }
  }
  auto sweep = ml::GridSearch(sample, 3, grid);
  RVAR_CHECK(sweep.ok()) << sweep.status().ToString();
  TextTable sweep_table;
  sweep_table.SetHeader({"candidate", "CV accuracy", "std"});
  for (const ml::GridPoint& p : *sweep) {
    sweep_table.AddRow({p.name, FormatPercent(p.cv.mean_accuracy),
                        FormatDouble(p.cv.std_accuracy, 4)});
  }
  std::printf("%s", sweep_table.ToString().c_str());
  return 0;
}
