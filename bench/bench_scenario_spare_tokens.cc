// Reproduces Section 7.1 (Scenario 1): what happens to predicted runtime
// distributions if spare tokens are disabled. The paper finds 15% of
// Cluster-2 jobs migrate to Cluster 1 (lower outlier probability and
// 25-75th gap), with jobs running slower but more consistently.

#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "core/report.h"
#include "stats/descriptive.h"
#include "core/whatif.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();

  for (core::Normalization norm :
       {core::Normalization::kRatio, core::Normalization::kDelta}) {
    auto predictor = bench::TrainPredictorOrDie(suite, norm);
    core::WhatIfEngine engine(predictor.get());
    auto result =
        engine.Run(suite.d3.telemetry,
                   StrCat("disable spare tokens (",
                          core::NormalizationName(norm), ")"),
                   core::WhatIfEngine::DisableSpareTokens());
    RVAR_CHECK(result.ok()) << result.status().ToString();
    bench::PrintHeader(StrCat("Scenario 1 (", core::NormalizationName(norm),
                              "-normalization)"));
    std::printf("%s",
                core::RenderScenario(*result, predictor->shapes()).c_str());
  }

  // Cross-check against the simulator itself: re-run D3 with spare tokens
  // globally disabled and compare runtime medians/IQRs.
  bench::PrintHeader("Simulator cross-check: spare tokens off");
  sim::SuiteConfig config = bench::DefaultSuiteConfig();
  config.scheduler.enable_spare_tokens = false;
  auto no_spare = sim::BuildStudySuite(config);
  RVAR_CHECK(no_spare.ok());
  // Compare pooled ratio-to-median dispersion.
  auto dispersion = [](const sim::StudySuite& s) {
    core::GroupMedians medians =
        core::GroupMedians::FromTelemetry(s.d1.telemetry);
    std::vector<double> ratios;
    for (const sim::JobRun& run : s.d3.telemetry.runs()) {
      if (!medians.Has(run.group_id)) continue;
      ratios.push_back(run.runtime_seconds / *medians.Of(run.group_id));
    }
    return InterquartileRange(ratios);
  };
  sim::StudySuite base_suite = std::move(suite);
  std::printf("pooled runtime/median IQR: with spare %.3f, without %.3f\n",
              dispersion(base_suite), dispersion(*no_spare));
  std::printf(
      "(paper: jobs with fewer spare tokens run slower but with less\n"
      " variance, agreeing with the model's prediction.)\n");
  return 0;
}
