// Reproduces Figure 3: the token-usage skyline of one job — allocated
// tokens as a flat guarantee, with spare tokens pushing actual usage above
// the allocation during wide stages. (The paper's example: 66 allocated,
// up to 198 consumed.)

#include <cstdio>

#include "bench_common.h"
#include "sim/scheduler.h"

int main() {
  using namespace rvar;
  sim::ClusterConfig cc;
  cc.seed = 11;
  auto cluster = sim::Cluster::Make(sim::SkuCatalog::Default(), cc);
  RVAR_CHECK(cluster.ok());
  sim::TokenScheduler scheduler(&*cluster, {});

  // A wide job with a modest guarantee, heavy spare usage.
  Rng rng(3);
  sim::JobGroupSpec group;
  group.group_id = 0;
  group.name = "skyline_example";
  group.plan = sim::GeneratePlan({.min_operators = 20, .max_operators = 30},
                                 &rng);
  group.base_input_gb = 1500.0;  // sizes the plan's vertex counts
  group.allocated_tokens = 66;
  group.uses_spare_tokens = true;
  group.rare_event_prob = 0.0;

  sim::JobInstanceSpec inst;
  inst.group_id = 0;
  inst.instance_id = 0;
  inst.submit_time = 6.0 * 3600.0;  // early morning: plenty of spare
  inst.input_gb = 1500.0;

  Rng exec_rng(17);
  auto run = scheduler.Execute(group, inst, &exec_rng);
  RVAR_CHECK(run.ok()) << run.status().ToString();

  bench::PrintHeader("Figure 3: Token usage for an example job");
  std::printf("allocated: %d tokens (dashed line in the paper)\n",
              run->allocated_tokens);
  std::printf("max used:  %d tokens  (avg %.1f, avg spare %.1f)\n",
              run->max_tokens_used, run->avg_tokens_used,
              run->avg_spare_tokens);
  std::printf("runtime:   %.0fs over %d stages, %d vertices\n\n",
              run->runtime_seconds, run->num_stages, run->total_vertices);

  std::printf("%-12s %-8s %s\n", "t (s)", "tokens", "");
  for (const auto& [start, tokens] : run->skyline) {
    std::string bar(static_cast<size_t>(tokens / 2), '#');
    const char* marker = tokens > run->allocated_tokens ? "  <- spare" : "";
    std::printf("%-12.0f %-8d %s%s\n", start, tokens, bar.c_str(), marker);
  }
  std::printf(
      "\n(paper: job allocated 66 tokens consumed up to 198 including\n"
      " preemptible spare tokens.)\n");
  return 0;
}
