// Reproduces Table 2: per-cluster statistics of the runtime-distribution
// shapes — outlier probability, 25-75th percentile gap, 95th percentile,
// and standard deviation — for both normalizations, ranked by the 25-75th
// gap as in the paper.

#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "core/report.h"

int main() {
  using namespace rvar;
  sim::StudySuite suite = bench::BuildSuiteOrDie();
  core::GroupMedians medians =
      core::GroupMedians::FromTelemetry(suite.d1.telemetry);

  for (core::Normalization norm :
       {core::Normalization::kRatio, core::Normalization::kDelta}) {
    core::ShapeLibraryConfig config;
    config.normalization = norm;
    config.num_clusters = 8;
    config.min_support = 20;
    config.kmeans.num_restarts = 8;
    auto lib = core::ShapeLibrary::Build(suite.d1.telemetry, medians, config);
    RVAR_CHECK(lib.ok()) << lib.status().ToString();
    bench::PrintHeader(StrCat("Table 2 (", core::NormalizationName(norm),
                              "-normalization)"));
    std::printf("%s", core::RenderShapeStats(*lib).c_str());
  }
  std::printf(
      "\n(paper, Ratio: outlier%% 0.06-1.66, 25-75th 0.06-0.29, 95th\n"
      " 1.2-1.46, std 0.55-2.46; Delta: 25-75th 4-936s. Clusters ranked by\n"
      " increasing 25-75th gap. Absolute values differ on the simulated\n"
      " substrate; the ordering and spread structure should match.)\n");
  return 0;
}
