// What-if planner: a capacity engineer evaluates operational changes
// before rolling them out — disabling spare tokens for SLO-critical jobs,
// or migrating a workload from old to new machine generations — by
// re-running the trained shape predictor on counterfactual features
// (Section 7 of the paper).
//
// Build & run:  ./build/examples/whatif_planner

#include <cstdio>

#include "core/report.h"
#include "core/whatif.h"
#include "sim/datasets.h"

using namespace rvar;

int main() {
  sim::SuiteConfig suite_config;
  suite_config.num_groups = 120;
  suite_config.d1_days = 14.0;
  suite_config.d2_days = 8.0;
  suite_config.d3_days = 3.0;
  suite_config.seed = 33;
  auto suite = sim::BuildStudySuite(suite_config);
  if (!suite.ok()) return 1;

  core::PredictorConfig config;
  config.shape.min_support = 20;
  config.gbdt.feature_fraction = 0.7;
  auto predictor = core::VariationPredictor::Train(*suite, config);
  if (!predictor.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 predictor.status().ToString().c_str());
    return 1;
  }
  core::WhatIfEngine engine(predictor->get());

  struct Plan {
    const char* title;
    core::FeatureTransform transform;
  };
  const Plan plans[] = {
      {"disable spare tokens fleet-wide",
       core::WhatIfEngine::DisableSpareTokens()},
      {"migrate Gen3.5 vertices to Gen5.2",
       core::WhatIfEngine::ShiftSkuVertices("Gen3.5", "Gen5.2")},
      {"perfectly balanced machine load",
       core::WhatIfEngine::EqualizeLoad()},
  };

  for (const Plan& plan : plans) {
    auto result = engine.Run(suite->d3.telemetry, plan.title, plan.transform);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", plan.title,
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("\n%s\n",
                core::RenderScenario(*result, (*predictor)->shapes())
                    .c_str());
  }

  // A custom, user-authored scenario: cut every allocation in half.
  auto halve = [](const core::Featurizer& featurizer,
                  std::vector<double>* x) {
    const int idx = featurizer.IndexOf("allocated_tokens");
    if (idx >= 0) (*x)[static_cast<size_t>(idx)] *= 0.5;
  };
  auto result =
      engine.Run(suite->d3.telemetry, "halve all token allocations", halve);
  if (result.ok()) {
    std::printf("\n%s\n",
                core::RenderScenario(*result, (*predictor)->shapes())
                    .c_str());
  }
  return 0;
}
