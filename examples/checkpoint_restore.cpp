// Checkpoint/restore walkthrough: a serving process tracks per-group
// runtime drift with OnlineShapeTrackers, persists every observation to a
// checksummed write-ahead log, and checkpoints periodically. The example
// then simulates the unglamorous part — a crash that tears the WAL tail
// and corrupts the newest snapshot — and shows Recover() rebuilding the
// exact pre-crash state while reporting everything it had to repair.
//
// Build & run:  ./build/examples/checkpoint_restore

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "core/normalization.h"
#include "core/shape_library.h"
#include "io/recovery.h"
#include "io/snapshot.h"
#include "sim/faults.h"
#include "sim/telemetry.h"

using namespace rvar;

namespace {

// A small shape library learned from synthetic telemetry (three distinct
// variation families, as in the paper's Figure 5).
core::ShapeLibrary LearnLibrary() {
  sim::TelemetryStore store;
  core::GroupMedians medians;
  Rng rng(4);
  int gid = 0;
  for (int g = 0; g < 6; ++g) {
    for (int family = 0; family < 3; ++family) {
      const double median = rng.Uniform(60.0, 600.0);
      for (int i = 0; i < 40; ++i) {
        const double sigma = family == 0 ? 0.05 : (family == 1 ? 0.4 : 0.15);
        sim::JobRun run;
        run.group_id = gid;
        run.runtime_seconds =
            median * std::max(0.1, rng.Normal(1.0, sigma));
        store.Add(run);
      }
      medians.Set(gid, median);
      ++gid;
    }
  }
  core::ShapeLibraryConfig config;
  config.num_clusters = 3;
  config.min_support = 10;
  return *core::ShapeLibrary::Build(store, medians, config);
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rvar_checkpoint_demo")
          .string();
  std::filesystem::remove_all(dir);

  // --- Normal operation: bootstrap, observe, checkpoint. ------------------
  {
    auto manager = io::RecoveryManager::Open(dir);
    if (!manager.ok()) return 1;
    if (!manager->Bootstrap(LearnLibrary()).ok()) return 1;

    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
      // Normalized runtime of one finished job instance.
      const int group = static_cast<int>(rng.UniformInt(0, 9));
      (void)manager->Observe(group, rng.LogNormal(0.0, 0.4));
      if ((i + 1) % 100 == 0) {
        if (!manager->Checkpoint().ok()) return 1;
        std::printf("checkpointed generation %lld after %d observations\n",
                    static_cast<long long>(manager->generation()), i + 1);
      }
    }
    std::printf("serving state: %zu trackers, last sequence %llu\n",
                manager->state().trackers.size(),
                static_cast<unsigned long long>(manager->last_sequence()));
    // The manager goes out of scope without any clean shutdown — every
    // observation already hit fsync, which is the only durability needed.
  }

  // --- The crash does damage on the way down. -----------------------------
  const sim::StorageFaultPlan faults(7);
  {
    // A half-written record at the WAL tail...
    std::ofstream wal(dir + "/wal-000003",
                      std::ios::binary | std::ios::app);
    wal << std::string("\x40\x00\x00\x00oops", 8);
  }
  {
    // ...and a bit flip in the newest snapshot generation.
    const std::string snap = dir + "/snapshot-000003";
    auto bytes = io::ReadFileToString(snap);
    if (!bytes.ok()) return 1;
    if (!io::AtomicWriteFile(snap, faults.FlipBits(*bytes, 2)).ok()) {
      return 1;
    }
  }
  std::printf("\ncrash! tore the WAL tail and flipped bits in the newest "
              "snapshot\n\n");

  // --- Restart: recover and inspect the repair report. --------------------
  auto revived = io::RecoveryManager::Open(dir);
  if (!revived.ok()) return 1;
  auto report = revived->Recover();
  if (!report.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());
  std::printf("recovered: %zu trackers, last sequence %llu\n",
              revived->state().trackers.size(),
              static_cast<unsigned long long>(revived->last_sequence()));

  // The revived process continues exactly where the dead one stopped.
  (void)revived->Observe(0, 1.0);
  if (!revived->Checkpoint().ok()) return 1;
  std::printf("back in business: generation %lld\n",
              static_cast<long long>(revived->generation()));

  std::filesystem::remove_all(dir);
  return 0;
}
