// SLA monitor: an on-call engineer watches recurring jobs and wants an
// *early* signal that a job group's runtime behavior has changed — not
// after an SLA breach, but as soon as its recent runs stop looking like
// the shape history assigned to it.
//
// The example uses the posterior-likelihood assigner (Section 5.2) as a
// drift detector: each group's recent runs are re-assigned to a canonical
// shape and compared against its historic shape. It also demonstrates
// SHAP-based triage for one drifted group (Section 6).
//
// Build & run:  ./build/examples/sla_monitor

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/explainer.h"
#include "core/predictor.h"
#include "sim/datasets.h"

using namespace rvar;

int main() {
  sim::SuiteConfig suite_config;
  suite_config.num_groups = 100;
  suite_config.d1_days = 12.0;
  suite_config.d2_days = 6.0;
  suite_config.d3_days = 3.0;
  suite_config.seed = 55;
  auto suite = sim::BuildStudySuite(suite_config);
  if (!suite.ok()) return 1;

  core::PredictorConfig config;
  config.shape.min_support = 20;
  auto predictor = core::VariationPredictor::Train(*suite, config);
  if (!predictor.ok()) return 1;

  // Historic shape per group (from the D2 window)...
  auto historic = (*predictor)->LabelGroups(suite->d2.telemetry, 5);
  // ...vs the shape of the most recent runs (the D3 window).
  auto recent = (*predictor)->LabelGroups(suite->d3.telemetry, 5);
  if (!historic.ok() || !recent.ok()) return 1;

  std::printf("%-14s %-10s %-10s %-28s\n", "group", "historic", "recent",
              "verdict");
  int drifted = 0, watched = 0;
  std::vector<int> drifted_groups;
  for (const auto& [gid, hist_shape] : *historic) {
    const auto it = recent->find(gid);
    if (it == recent->end()) continue;
    ++watched;
    const bool moved = it->second != hist_shape;
    if (!moved) continue;
    ++drifted;
    drifted_groups.push_back(gid);
    const core::ShapeStats& from = (*predictor)->shapes().stats(hist_shape);
    const core::ShapeStats& to = (*predictor)->shapes().stats(it->second);
    const char* verdict =
        to.iqr > from.iqr ? "DEGRADED (wider runtimes)" : "improved";
    std::printf("job_group_%-4d C%-9d C%-9d %-28s\n", gid, hist_shape,
                it->second, verdict);
  }
  std::printf("\n%d of %d watched groups changed shape this window\n",
              drifted, watched);

  // Triage one drifted group with SHAP: which features drive its current
  // shape prediction?
  if (!drifted_groups.empty()) {
    const int gid = drifted_groups[0];
    const sim::JobRun* latest = nullptr;
    for (const sim::JobRun& run : suite->d3.telemetry.runs()) {
      if (run.group_id == gid) latest = &run;
    }
    if (latest != nullptr) {
      core::Explainer explainer(predictor->get());
      auto explanation = explainer.Explain(*latest);
      auto shape = (*predictor)->PredictShape(*latest);
      if (explanation.ok() && shape.ok()) {
        // Rank features by their contribution to the predicted shape.
        const auto& phi =
            explanation->phi[static_cast<size_t>(*shape)];
        const auto& names = (*predictor)->featurizer().FeatureNames();
        std::vector<size_t> order(phi.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return phi[a] > phi[b];
        });
        std::printf(
            "\ntriage for job_group_%d (predicted shape C%d) — top "
            "contributors:\n",
            gid, *shape);
        for (int i = 0; i < 5; ++i) {
          std::printf("  %-28s SHAP %+0.3f (value %.3f)\n",
                      names[order[static_cast<size_t>(i)]].c_str(),
                      phi[order[static_cast<size_t>(i)]],
                      explanation->feature_values
                          [order[static_cast<size_t>(i)]]);
        }
      }
    }
  }
  return 0;
}
