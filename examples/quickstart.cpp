// Quickstart: simulate a workload, learn canonical runtime-distribution
// shapes, train the 2-step variation predictor, and predict the runtime
// distribution of new job runs.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/strings.h"
#include "core/predictor.h"
#include "core/report.h"
#include "sim/datasets.h"

using namespace rvar;

int main() {
  // 1. Simulate a study: a cluster, 80 recurring job groups, and three
  //    dataset slices (D1 history, D2 train, D3 test).
  sim::SuiteConfig suite_config;
  suite_config.num_groups = 80;
  suite_config.d1_days = 14.0;
  suite_config.d2_days = 8.0;
  suite_config.d3_days = 2.0;
  suite_config.seed = 7;
  auto suite = sim::BuildStudySuite(suite_config);
  if (!suite.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 suite.status().ToString().c_str());
    return 1;
  }
  std::printf("simulated %zu historic runs across %zu job groups\n",
              suite->d1.telemetry.NumRuns(), suite->groups.size());

  // 2. Train the 2-step predictor: shapes from D1, classifier from D2.
  core::PredictorConfig config;
  config.shape.num_clusters = 8;
  config.shape.min_support = 20;
  auto predictor = core::VariationPredictor::Train(*suite, config);
  if (!predictor.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 predictor.status().ToString().c_str());
    return 1;
  }

  // 3. The canonical shapes (Table 2 statistics).
  std::printf("\ncanonical runtime-distribution shapes:\n%s",
              core::RenderShapeStats((*predictor)->shapes()).c_str());

  // 4. Predict the shape of fresh runs from the test slice and read off
  //    distributional answers a point estimate cannot give.
  const sim::JobRun& run = suite->d3.telemetry.run(0);
  auto shape = (*predictor)->PredictShape(run);
  if (!shape.ok()) return 1;
  const core::ShapeStats& stats = (*predictor)->shapes().stats(*shape);
  auto median = (*predictor)->medians().Of(run.group_id);
  std::printf(
      "\njob_group_%d (historic median %.0fs) -> predicted shape C%d:\n"
      "  P(runtime >= 10x median) = %.2f%%\n"
      "  95th percentile of runtime/median = %.2f\n"
      "  25-75th percentile gap = %.2f\n",
      run.group_id, median.ValueOr(0.0), *shape,
      100.0 * stats.outlier_probability, stats.p95, stats.iqr);

  // 5. Evaluate on the whole test slice (Figure 7).
  auto eval = (*predictor)->Evaluate(suite->d3.telemetry);
  if (eval.ok()) {
    std::printf("\ntest accuracy over %s\n",
                FormatCount(static_cast<int64_t>(
                    suite->d3.telemetry.NumRuns()))
                    .c_str());
    std::printf("  shape prediction accuracy: %s\n",
                FormatPercent(eval->accuracy).c_str());
  }
  return 0;
}
