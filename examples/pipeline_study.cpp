// Pipeline reliability study: a data-engineering team runs a nightly
// pipeline of dependent jobs and wants to know the probability the whole
// chain finishes within its SLO — something only runtime *distributions*
// (not point estimates) can answer.
//
// The example trains the variation predictor, picks a chain of recurring
// jobs, predicts each stage's runtime distribution, and convolves them by
// Monte Carlo to get the pipeline-level completion distribution.
//
// Build & run:  ./build/examples/pipeline_study

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/predictor.h"
#include "sim/datasets.h"
#include "stats/descriptive.h"

using namespace rvar;

int main() {
  sim::SuiteConfig suite_config;
  suite_config.num_groups = 100;
  suite_config.d1_days = 12.0;
  suite_config.d2_days = 6.0;
  suite_config.d3_days = 2.0;
  suite_config.seed = 21;
  auto suite = sim::BuildStudySuite(suite_config);
  if (!suite.ok()) return 1;

  core::PredictorConfig config;
  config.shape.min_support = 20;
  auto predictor = core::VariationPredictor::Train(*suite, config);
  if (!predictor.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 predictor.status().ToString().c_str());
    return 1;
  }

  // Assemble a pipeline from 4 recurring jobs that have fresh runs in the
  // test slice (their latest run stands in for "tonight's run").
  std::vector<const sim::JobRun*> stages;
  std::vector<int> seen;
  for (const sim::JobRun& run : suite->d3.telemetry.runs()) {
    if (std::find(seen.begin(), seen.end(), run.group_id) != seen.end()) {
      continue;
    }
    if (!(*predictor)->medians().Has(run.group_id)) continue;
    seen.push_back(run.group_id);
    stages.push_back(&run);
    if (stages.size() == 4) break;
  }
  if (stages.size() < 4) {
    std::fprintf(stderr, "not enough recurring jobs in the test slice\n");
    return 1;
  }

  std::printf("pipeline stages (runtime medians from history):\n");
  double median_total = 0.0;
  for (const sim::JobRun* run : stages) {
    const double median =
        (*predictor)->medians().Of(run->group_id).ValueOr(0.0);
    median_total += median;
    auto shape = (*predictor)->PredictShape(*run);
    std::printf("  job_group_%-4d median %6.0fs -> predicted shape C%d\n",
                run->group_id, median, shape.ValueOr(-1));
  }

  // Monte Carlo over the predicted shapes: draw each stage's normalized
  // runtime, denormalize with the stage's median, and sum.
  Rng rng(99);
  const int kTrials = 20000;
  std::vector<double> totals;
  totals.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    double total = 0.0;
    for (const sim::JobRun* run : stages) {
      const double median =
          (*predictor)->medians().Of(run->group_id).ValueOr(0.0);
      const int shape = (*predictor)->PredictShape(*run).ValueOr(0);
      const std::vector<double> draw =
          (*predictor)->SampleNormalized(shape, 1, &rng);
      const double ratio = draw.empty() ? 1.0 : draw[0];
      total += median * ratio;
    }
    totals.push_back(total);
  }
  std::sort(totals.begin(), totals.end());

  std::printf("\npipeline completion time (sum of stages):\n");
  std::printf("  sum of medians:          %8.0fs\n", median_total);
  std::printf("  median of the pipeline:  %8.0fs\n",
              QuantileSorted(totals, 0.5));
  std::printf("  90th percentile:         %8.0fs\n",
              QuantileSorted(totals, 0.9));
  std::printf("  99th percentile:         %8.0fs\n",
              QuantileSorted(totals, 0.99));
  for (double slo_factor : {1.2, 1.5, 2.0}) {
    const double slo = median_total * slo_factor;
    const double p =
        static_cast<double>(std::lower_bound(totals.begin(), totals.end(),
                                             slo) -
                            totals.begin()) /
        totals.size();
    std::printf("  P(finish within %.1fx the median plan) = %5.1f%%\n",
                slo_factor, 100.0 * p);
  }
  std::printf(
      "\n(the gap between the 99th percentile and the sum of medians is\n"
      " the tail risk a point-estimate planner never sees.)\n");
  return 0;
}
