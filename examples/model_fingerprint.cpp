// Trains a small GBDT on a fixed synthetic dataset and writes the
// serialized model bytes to a file. CI's simd-equivalence job runs this
// binary from builds with RVAR_SIMD on and off (and under forced
// RVAR_SIMD_LEVEL values) and byte-compares the outputs: the dispatch
// table's bit-identity contract (DESIGN.md §14) means every level must
// produce the same trees, and therefore the same file.
//
// The run is fully deterministic: fixed RNG seed, single thread, and no
// time- or environment-dependent inputs besides the SIMD level itself —
// which is exactly the variable under test.
//
// Usage:  ./build/examples/model_fingerprint [output-path]

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "io/serialize.h"
#include "ml/gbdt.h"

using namespace rvar;

namespace {

ml::Dataset MakeTabular(int rows, int features, int classes, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset d;
  for (int i = 0; i < rows; ++i) {
    std::vector<double> row(static_cast<size_t>(features));
    for (double& v : row) v = rng.Normal(0.0, 1.0);
    const double score = row[0] + 0.5 * row[1];
    d.y.push_back(score > 0.5 ? 2 : (score > -0.5 ? 1 : 0) % classes);
    d.x.push_back(std::move(row));
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "model_fingerprint.bin";
  SetParallelThreads(1);

  const ml::Dataset train = MakeTabular(2000, 20, 3, 29);
  ml::GbdtClassifier model({.num_rounds = 20});
  if (const Status s = model.Fit(train); !s.ok()) {
    std::fprintf(stderr, "training failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const std::string bytes = io::EncodeGbdtClassifier(model);
  if (const Status s = io::SaveGbdtClassifier(model, path); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("simd_level=%s bytes=%zu path=%s\n",
              SimdLevelName(ActiveSimdLevel()), bytes.size(), path);
  return 0;
}
