// Metrics dashboard: what an operator scraping the serving stack sees.
//
// The example drives the instrumented pipeline the way production would:
// corrupt telemetry flows through TelemetryStore::Ingest (quarantine
// counters), a shape library is built and served by ShapeService from
// several client threads at once (latency histograms, per-shard
// observe and contention counters), and a predictor trains over a
// simulated study (phase trace
// spans). It then prints the three export surfaces:
//
//   1. Prometheus text exposition — what a scrape of /metrics returns,
//   2. the JSON snapshot — counters/gauges/histograms with quantiles,
//   3. the span buffer — the predictor's phase timing tree.
//
// A model-lifecycle loop (retrain → gate → hot swap, an injected
// corrupt candidate, a rollback) runs as well, so the lifecycle_* swap,
// quarantine-by-reason, and rollback counters land on all surfaces.
//
// Build & run:  ./build/examples/metrics_dashboard

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/model_lifecycle.h"
#include "core/predictor.h"
#include "core/shape_library.h"
#include "core/shape_service.h"
#include "io/model_registry.h"
#include "ml/dataset.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "sim/datasets.h"
#include "sim/faults.h"
#include "sim/telemetry.h"

using namespace rvar;

int main() {
  // --- 1. Corrupt telemetry through the quarantining ingest path. ---------
  sim::FaultPlanConfig fault_config;
  fault_config.drop_run_rate = 0.02;
  fault_config.duplicate_run_rate = 0.04;
  fault_config.nan_runtime_rate = 0.03;
  fault_config.negative_runtime_rate = 0.02;
  fault_config.missing_columns_rate = 0.03;
  auto plan = sim::FaultPlan::Make(fault_config);
  if (!plan.ok()) return 1;

  Rng rng(77);
  std::vector<sim::JobRun> raw;
  int64_t next_instance = 0;
  for (int g = 0; g < 24; ++g) {
    const double median = rng.Uniform(100.0, 400.0);
    for (int i = 0; i < 50; ++i) {
      const double factor = rng.Bernoulli(0.3) ? rng.Normal(3.0, 0.15)
                                               : rng.Normal(1.0, 0.06);
      sim::JobRun run;
      run.group_id = g;
      run.instance_id = next_instance++;
      run.input_gb = rng.Uniform(5.0, 50.0);
      run.runtime_seconds = median * std::max(0.05, factor);
      run.sku_vertex_fraction = {0.6, 0.4};
      run.sku_cpu_util = {rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
      raw.push_back(run);
    }
  }
  sim::TelemetryStore store;
  core::GroupMedians medians;
  for (sim::JobRun& run : plan->CorruptTelemetry(std::move(raw), nullptr)) {
    (void)store.Ingest(std::move(run));
  }
  for (int g = 0; g < 24; ++g) {
    std::vector<double> runtimes = store.GroupRuntimes(g);
    if (runtimes.empty()) continue;
    std::sort(runtimes.begin(), runtimes.end());
    medians.Set(g, runtimes[runtimes.size() / 2]);
  }
  std::printf("ingested %zu runs, quarantined %zu\n", store.NumRuns(),
              store.NumQuarantined());

  // --- 2. Serve the shape library from several client threads. ------------
  core::ShapeLibraryConfig library_config;
  library_config.num_clusters = 2;
  library_config.min_support = 20;
  auto library = core::ShapeLibrary::Build(store, medians, library_config);
  if (!library.ok()) return 1;
  auto service = core::ShapeService::Make(&*library);
  if (!service.ok()) return 1;

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&service, t] {
      Rng client_rng(900 + static_cast<uint64_t>(t));
      for (int i = 0; i < 5000; ++i) {
        // Overlapping group sets across threads, so shards contend.
        const int group = (t * 5 + i) % 24;
        (void)(*service)->Observe(group, client_rng.Uniform(0.5, 3.5));
        if (i % 8 == 0) (void)(*service)->Posterior(group);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::printf("served %lld observations across %zu groups\n\n",
              static_cast<long long>((*service)->TotalObservations()),
              (*service)->NumGroups());

  // --- 3. Train a predictor so the phase spans populate. -------------------
  sim::SuiteConfig suite_config;
  suite_config.num_groups = 60;
  suite_config.d1_days = 8.0;
  suite_config.d2_days = 4.0;
  suite_config.d3_days = 2.0;
  suite_config.seed = 78;
  auto suite = sim::BuildStudySuite(suite_config);
  if (!suite.ok()) return 1;
  core::PredictorConfig predictor_config;
  predictor_config.shape.min_support = 20;
  auto predictor = core::VariationPredictor::Train(*suite, predictor_config);
  if (!predictor.ok()) return 1;

  // --- 4. Model lifecycle: swap, quarantine, and rollback counters. --------
  {
    const std::string registry_dir =
        (std::filesystem::temp_directory_path() / "rvar_dashboard_registry")
            .string();
    std::filesystem::remove_all(registry_dir);
    core::ModelLifecycleOptions lifecycle_options;
    lifecycle_options.dir = registry_dir;
    lifecycle_options.gbdt.num_rounds = 6;
    auto lifecycle = core::ModelLifecycle::Open(lifecycle_options);
    if (!lifecycle.ok()) return 1;
    // The lifecycle mirrors every published epoch into the shape
    // service's model slot, bumping its swap counter too.
    (*lifecycle)->AttachShapeService(service->get());

    auto window = [&](uint64_t seed) {
      ml::Dataset d;
      d.feature_names = {"x0", "x1"};
      Rng wrng(seed);
      for (int c = 0; c < 2; ++c) {
        for (int i = 0; i < 50; ++i) {
          d.x.push_back({wrng.Normal(c * 3.0, 0.6),
                         wrng.Normal(c * 3.0 + 1.0, 0.6)});
          d.y.push_back(c);
          d.target.push_back(0.0);
        }
      }
      return d;
    };
    // Two clean cycles (cold, then warm-started), one candidate hit by
    // injected bit rot between training and the gate, then a rollback.
    (void)(*lifecycle)->RetrainAndSwap(window(1), 0, 100);
    (void)(*lifecycle)->RetrainAndSwap(window(2), 100, 200);
    auto candidate = (*lifecycle)->TrainCandidate(window(3), 200, 300);
    if (candidate.ok()) {
      const sim::StorageFaultPlan storage_faults(91);
      (void)storage_faults.CorruptFile(
          (*lifecycle)->registry().ModelPath(*candidate), 4, 0.0);
      (void)(*lifecycle)->ValidateAndSwap(*candidate, window(3));
    }
    (void)(*lifecycle)->Rollback(1);
    std::printf(
        "lifecycle: serving v%lld of %zu registered versions\n\n",
        static_cast<long long>((*lifecycle)->live_version()),
        (*lifecycle)->registry().Versions().size());
    std::filesystem::remove_all(registry_dir);
  }

  // --- The three export surfaces. ------------------------------------------
  std::printf("================ Prometheus text exposition ================\n");
  std::printf("%s\n", obs::DumpPrometheusText().c_str());
  std::printf("===================== JSON snapshot ========================\n");
  std::printf("%s\n", obs::DumpJson().c_str());
  std::printf("==================== trace spans (JSON) ====================\n");
  std::printf("%s", obs::DumpSpansJson().c_str());
  return 0;
}
