# Empty dependencies file for bench_table2_cluster_stats.
# This may be replaced when dependencies are built.
