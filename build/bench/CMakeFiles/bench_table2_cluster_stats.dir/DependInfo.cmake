
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_cluster_stats.cc" "bench/CMakeFiles/bench_table2_cluster_stats.dir/bench_table2_cluster_stats.cc.o" "gcc" "bench/CMakeFiles/bench_table2_cluster_stats.dir/bench_table2_cluster_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rvar_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rvar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rvar_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rvar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
