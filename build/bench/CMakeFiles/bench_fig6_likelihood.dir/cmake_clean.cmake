file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_likelihood.dir/bench_fig6_likelihood.cc.o"
  "CMakeFiles/bench_fig6_likelihood.dir/bench_fig6_likelihood.cc.o.d"
  "bench_fig6_likelihood"
  "bench_fig6_likelihood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
