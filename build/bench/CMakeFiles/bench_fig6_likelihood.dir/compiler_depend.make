# Empty compiler generated dependencies file for bench_fig6_likelihood.
# This may be replaced when dependencies are built.
