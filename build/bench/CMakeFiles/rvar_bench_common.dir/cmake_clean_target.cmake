file(REMOVE_RECURSE
  "librvar_bench_common.a"
)
