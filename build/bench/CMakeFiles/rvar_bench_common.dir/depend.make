# Empty dependencies file for rvar_bench_common.
# This may be replaced when dependencies are built.
