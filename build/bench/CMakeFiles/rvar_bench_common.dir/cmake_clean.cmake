file(REMOVE_RECURSE
  "CMakeFiles/rvar_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/rvar_bench_common.dir/bench_common.cc.o.d"
  "librvar_bench_common.a"
  "librvar_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvar_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
