# Empty dependencies file for bench_fig8_qq_baseline.
# This may be replaced when dependencies are built.
