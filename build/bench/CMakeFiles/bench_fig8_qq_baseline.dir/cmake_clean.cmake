file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_qq_baseline.dir/bench_fig8_qq_baseline.cc.o"
  "CMakeFiles/bench_fig8_qq_baseline.dir/bench_fig8_qq_baseline.cc.o.d"
  "bench_fig8_qq_baseline"
  "bench_fig8_qq_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_qq_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
