file(REMOVE_RECURSE
  "CMakeFiles/bench_classifier_sweep.dir/bench_classifier_sweep.cc.o"
  "CMakeFiles/bench_classifier_sweep.dir/bench_classifier_sweep.cc.o.d"
  "bench_classifier_sweep"
  "bench_classifier_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classifier_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
