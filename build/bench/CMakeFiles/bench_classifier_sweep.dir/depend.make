# Empty dependencies file for bench_classifier_sweep.
# This may be replaced when dependencies are built.
