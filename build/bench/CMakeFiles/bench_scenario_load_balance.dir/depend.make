# Empty dependencies file for bench_scenario_load_balance.
# This may be replaced when dependencies are built.
