# Empty compiler generated dependencies file for bench_fig5_cluster_shapes.
# This may be replaced when dependencies are built.
