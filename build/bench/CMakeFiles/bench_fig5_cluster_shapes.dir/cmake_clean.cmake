file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cluster_shapes.dir/bench_fig5_cluster_shapes.cc.o"
  "CMakeFiles/bench_fig5_cluster_shapes.dir/bench_fig5_cluster_shapes.cc.o.d"
  "bench_fig5_cluster_shapes"
  "bench_fig5_cluster_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cluster_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
