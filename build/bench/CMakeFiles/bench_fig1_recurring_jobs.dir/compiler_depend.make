# Empty compiler generated dependencies file for bench_fig1_recurring_jobs.
# This may be replaced when dependencies are built.
