file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_sku_shift.dir/bench_scenario_sku_shift.cc.o"
  "CMakeFiles/bench_scenario_sku_shift.dir/bench_scenario_sku_shift.cc.o.d"
  "bench_scenario_sku_shift"
  "bench_scenario_sku_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_sku_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
