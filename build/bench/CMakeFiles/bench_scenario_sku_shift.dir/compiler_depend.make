# Empty compiler generated dependencies file for bench_scenario_sku_shift.
# This may be replaced when dependencies are built.
