file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_scalar_metrics.dir/bench_fig4_scalar_metrics.cc.o"
  "CMakeFiles/bench_fig4_scalar_metrics.dir/bench_fig4_scalar_metrics.cc.o.d"
  "bench_fig4_scalar_metrics"
  "bench_fig4_scalar_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scalar_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
