# Empty compiler generated dependencies file for bench_fig4_scalar_metrics.
# This may be replaced when dependencies are built.
