file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_shap.dir/bench_fig9_shap.cc.o"
  "CMakeFiles/bench_fig9_shap.dir/bench_fig9_shap.cc.o.d"
  "bench_fig9_shap"
  "bench_fig9_shap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
