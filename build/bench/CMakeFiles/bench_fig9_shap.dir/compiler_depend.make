# Empty compiler generated dependencies file for bench_fig9_shap.
# This may be replaced when dependencies are built.
