file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_spare_tokens.dir/bench_scenario_spare_tokens.cc.o"
  "CMakeFiles/bench_scenario_spare_tokens.dir/bench_scenario_spare_tokens.cc.o.d"
  "bench_scenario_spare_tokens"
  "bench_scenario_spare_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_spare_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
