# Empty compiler generated dependencies file for bench_scenario_spare_tokens.
# This may be replaced when dependencies are built.
