file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_token_skyline.dir/bench_fig3_token_skyline.cc.o"
  "CMakeFiles/bench_fig3_token_skyline.dir/bench_fig3_token_skyline.cc.o.d"
  "bench_fig3_token_skyline"
  "bench_fig3_token_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_token_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
