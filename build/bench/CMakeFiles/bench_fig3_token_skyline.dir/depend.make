# Empty dependencies file for bench_fig3_token_skyline.
# This may be replaced when dependencies are built.
