file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/classifier_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/classifier_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/clustering_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/clustering_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/dataset_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/dataset_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/shap_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/shap_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/tree_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/tree_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/tuning_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/tuning_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
