file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/baseline_test.cc.o"
  "CMakeFiles/core_test.dir/core/baseline_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/distribution_test.cc.o"
  "CMakeFiles/core_test.dir/core/distribution_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/featurizer_test.cc.o"
  "CMakeFiles/core_test.dir/core/featurizer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/normalization_test.cc.o"
  "CMakeFiles/core_test.dir/core/normalization_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rebalance_test.cc.o"
  "CMakeFiles/core_test.dir/core/rebalance_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/scalar_metrics_test.cc.o"
  "CMakeFiles/core_test.dir/core/scalar_metrics_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/shape_library_test.cc.o"
  "CMakeFiles/core_test.dir/core/shape_library_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/whatif_test.cc.o"
  "CMakeFiles/core_test.dir/core/whatif_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
