
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baseline_test.cc" "tests/CMakeFiles/core_test.dir/core/baseline_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/baseline_test.cc.o.d"
  "/root/repo/tests/core/distribution_test.cc" "tests/CMakeFiles/core_test.dir/core/distribution_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/distribution_test.cc.o.d"
  "/root/repo/tests/core/featurizer_test.cc" "tests/CMakeFiles/core_test.dir/core/featurizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/featurizer_test.cc.o.d"
  "/root/repo/tests/core/normalization_test.cc" "tests/CMakeFiles/core_test.dir/core/normalization_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/normalization_test.cc.o.d"
  "/root/repo/tests/core/pipeline_test.cc" "tests/CMakeFiles/core_test.dir/core/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pipeline_test.cc.o.d"
  "/root/repo/tests/core/rebalance_test.cc" "tests/CMakeFiles/core_test.dir/core/rebalance_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rebalance_test.cc.o.d"
  "/root/repo/tests/core/scalar_metrics_test.cc" "tests/CMakeFiles/core_test.dir/core/scalar_metrics_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/scalar_metrics_test.cc.o.d"
  "/root/repo/tests/core/shape_library_test.cc" "tests/CMakeFiles/core_test.dir/core/shape_library_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/shape_library_test.cc.o.d"
  "/root/repo/tests/core/whatif_test.cc" "tests/CMakeFiles/core_test.dir/core/whatif_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/whatif_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rvar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rvar_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rvar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
