
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assigner.cc" "src/core/CMakeFiles/rvar_core.dir/assigner.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/assigner.cc.o.d"
  "/root/repo/src/core/baseline.cc" "src/core/CMakeFiles/rvar_core.dir/baseline.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/baseline.cc.o.d"
  "/root/repo/src/core/distribution.cc" "src/core/CMakeFiles/rvar_core.dir/distribution.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/distribution.cc.o.d"
  "/root/repo/src/core/explainer.cc" "src/core/CMakeFiles/rvar_core.dir/explainer.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/explainer.cc.o.d"
  "/root/repo/src/core/featurizer.cc" "src/core/CMakeFiles/rvar_core.dir/featurizer.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/featurizer.cc.o.d"
  "/root/repo/src/core/normalization.cc" "src/core/CMakeFiles/rvar_core.dir/normalization.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/normalization.cc.o.d"
  "/root/repo/src/core/online.cc" "src/core/CMakeFiles/rvar_core.dir/online.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/online.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/rvar_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/rebalance.cc" "src/core/CMakeFiles/rvar_core.dir/rebalance.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/rebalance.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/rvar_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/report.cc.o.d"
  "/root/repo/src/core/scalar_metrics.cc" "src/core/CMakeFiles/rvar_core.dir/scalar_metrics.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/scalar_metrics.cc.o.d"
  "/root/repo/src/core/shape_library.cc" "src/core/CMakeFiles/rvar_core.dir/shape_library.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/shape_library.cc.o.d"
  "/root/repo/src/core/whatif.cc" "src/core/CMakeFiles/rvar_core.dir/whatif.cc.o" "gcc" "src/core/CMakeFiles/rvar_core.dir/whatif.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rvar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rvar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rvar_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
