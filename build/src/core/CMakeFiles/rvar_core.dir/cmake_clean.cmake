file(REMOVE_RECURSE
  "CMakeFiles/rvar_core.dir/assigner.cc.o"
  "CMakeFiles/rvar_core.dir/assigner.cc.o.d"
  "CMakeFiles/rvar_core.dir/baseline.cc.o"
  "CMakeFiles/rvar_core.dir/baseline.cc.o.d"
  "CMakeFiles/rvar_core.dir/distribution.cc.o"
  "CMakeFiles/rvar_core.dir/distribution.cc.o.d"
  "CMakeFiles/rvar_core.dir/explainer.cc.o"
  "CMakeFiles/rvar_core.dir/explainer.cc.o.d"
  "CMakeFiles/rvar_core.dir/featurizer.cc.o"
  "CMakeFiles/rvar_core.dir/featurizer.cc.o.d"
  "CMakeFiles/rvar_core.dir/normalization.cc.o"
  "CMakeFiles/rvar_core.dir/normalization.cc.o.d"
  "CMakeFiles/rvar_core.dir/online.cc.o"
  "CMakeFiles/rvar_core.dir/online.cc.o.d"
  "CMakeFiles/rvar_core.dir/predictor.cc.o"
  "CMakeFiles/rvar_core.dir/predictor.cc.o.d"
  "CMakeFiles/rvar_core.dir/rebalance.cc.o"
  "CMakeFiles/rvar_core.dir/rebalance.cc.o.d"
  "CMakeFiles/rvar_core.dir/report.cc.o"
  "CMakeFiles/rvar_core.dir/report.cc.o.d"
  "CMakeFiles/rvar_core.dir/scalar_metrics.cc.o"
  "CMakeFiles/rvar_core.dir/scalar_metrics.cc.o.d"
  "CMakeFiles/rvar_core.dir/shape_library.cc.o"
  "CMakeFiles/rvar_core.dir/shape_library.cc.o.d"
  "CMakeFiles/rvar_core.dir/whatif.cc.o"
  "CMakeFiles/rvar_core.dir/whatif.cc.o.d"
  "librvar_core.a"
  "librvar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
