# Empty compiler generated dependencies file for rvar_core.
# This may be replaced when dependencies are built.
