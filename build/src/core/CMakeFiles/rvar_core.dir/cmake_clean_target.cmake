file(REMOVE_RECURSE
  "librvar_core.a"
)
