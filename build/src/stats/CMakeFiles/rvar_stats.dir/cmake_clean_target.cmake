file(REMOVE_RECURSE
  "librvar_stats.a"
)
