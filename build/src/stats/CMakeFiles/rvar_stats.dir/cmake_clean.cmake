file(REMOVE_RECURSE
  "CMakeFiles/rvar_stats.dir/descriptive.cc.o"
  "CMakeFiles/rvar_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/rvar_stats.dir/distance.cc.o"
  "CMakeFiles/rvar_stats.dir/distance.cc.o.d"
  "CMakeFiles/rvar_stats.dir/histogram.cc.o"
  "CMakeFiles/rvar_stats.dir/histogram.cc.o.d"
  "librvar_stats.a"
  "librvar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
