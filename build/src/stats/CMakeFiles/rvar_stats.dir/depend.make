# Empty dependencies file for rvar_stats.
# This may be replaced when dependencies are built.
