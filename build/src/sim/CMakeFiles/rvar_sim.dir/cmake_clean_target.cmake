file(REMOVE_RECURSE
  "librvar_sim.a"
)
