
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/rvar_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/rvar_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/datasets.cc" "src/sim/CMakeFiles/rvar_sim.dir/datasets.cc.o" "gcc" "src/sim/CMakeFiles/rvar_sim.dir/datasets.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/rvar_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/rvar_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/plan.cc" "src/sim/CMakeFiles/rvar_sim.dir/plan.cc.o" "gcc" "src/sim/CMakeFiles/rvar_sim.dir/plan.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/rvar_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/rvar_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/sku.cc" "src/sim/CMakeFiles/rvar_sim.dir/sku.cc.o" "gcc" "src/sim/CMakeFiles/rvar_sim.dir/sku.cc.o.d"
  "/root/repo/src/sim/telemetry.cc" "src/sim/CMakeFiles/rvar_sim.dir/telemetry.cc.o" "gcc" "src/sim/CMakeFiles/rvar_sim.dir/telemetry.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/rvar_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/rvar_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rvar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rvar_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
