file(REMOVE_RECURSE
  "CMakeFiles/rvar_sim.dir/cluster.cc.o"
  "CMakeFiles/rvar_sim.dir/cluster.cc.o.d"
  "CMakeFiles/rvar_sim.dir/datasets.cc.o"
  "CMakeFiles/rvar_sim.dir/datasets.cc.o.d"
  "CMakeFiles/rvar_sim.dir/machine.cc.o"
  "CMakeFiles/rvar_sim.dir/machine.cc.o.d"
  "CMakeFiles/rvar_sim.dir/plan.cc.o"
  "CMakeFiles/rvar_sim.dir/plan.cc.o.d"
  "CMakeFiles/rvar_sim.dir/scheduler.cc.o"
  "CMakeFiles/rvar_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/rvar_sim.dir/sku.cc.o"
  "CMakeFiles/rvar_sim.dir/sku.cc.o.d"
  "CMakeFiles/rvar_sim.dir/telemetry.cc.o"
  "CMakeFiles/rvar_sim.dir/telemetry.cc.o.d"
  "CMakeFiles/rvar_sim.dir/workload.cc.o"
  "CMakeFiles/rvar_sim.dir/workload.cc.o.d"
  "librvar_sim.a"
  "librvar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
