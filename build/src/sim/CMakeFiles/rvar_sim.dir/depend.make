# Empty dependencies file for rvar_sim.
# This may be replaced when dependencies are built.
