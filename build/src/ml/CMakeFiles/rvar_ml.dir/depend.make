# Empty dependencies file for rvar_ml.
# This may be replaced when dependencies are built.
