file(REMOVE_RECURSE
  "librvar_ml.a"
)
