
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/agglomerative.cc" "src/ml/CMakeFiles/rvar_ml.dir/agglomerative.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/agglomerative.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/rvar_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/ensemble.cc" "src/ml/CMakeFiles/rvar_ml.dir/ensemble.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/ensemble.cc.o.d"
  "/root/repo/src/ml/feature_select.cc" "src/ml/CMakeFiles/rvar_ml.dir/feature_select.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/feature_select.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/ml/CMakeFiles/rvar_ml.dir/forest.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/forest.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/rvar_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/gradient_boosting.cc" "src/ml/CMakeFiles/rvar_ml.dir/gradient_boosting.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/rvar_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/rvar_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/rvar_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/shap.cc" "src/ml/CMakeFiles/rvar_ml.dir/shap.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/shap.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/rvar_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/tree.cc.o.d"
  "/root/repo/src/ml/tuning.cc" "src/ml/CMakeFiles/rvar_ml.dir/tuning.cc.o" "gcc" "src/ml/CMakeFiles/rvar_ml.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rvar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rvar_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
