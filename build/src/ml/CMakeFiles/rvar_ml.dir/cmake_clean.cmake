file(REMOVE_RECURSE
  "CMakeFiles/rvar_ml.dir/agglomerative.cc.o"
  "CMakeFiles/rvar_ml.dir/agglomerative.cc.o.d"
  "CMakeFiles/rvar_ml.dir/dataset.cc.o"
  "CMakeFiles/rvar_ml.dir/dataset.cc.o.d"
  "CMakeFiles/rvar_ml.dir/ensemble.cc.o"
  "CMakeFiles/rvar_ml.dir/ensemble.cc.o.d"
  "CMakeFiles/rvar_ml.dir/feature_select.cc.o"
  "CMakeFiles/rvar_ml.dir/feature_select.cc.o.d"
  "CMakeFiles/rvar_ml.dir/forest.cc.o"
  "CMakeFiles/rvar_ml.dir/forest.cc.o.d"
  "CMakeFiles/rvar_ml.dir/gbdt.cc.o"
  "CMakeFiles/rvar_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/rvar_ml.dir/gradient_boosting.cc.o"
  "CMakeFiles/rvar_ml.dir/gradient_boosting.cc.o.d"
  "CMakeFiles/rvar_ml.dir/kmeans.cc.o"
  "CMakeFiles/rvar_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/rvar_ml.dir/metrics.cc.o"
  "CMakeFiles/rvar_ml.dir/metrics.cc.o.d"
  "CMakeFiles/rvar_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/rvar_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/rvar_ml.dir/shap.cc.o"
  "CMakeFiles/rvar_ml.dir/shap.cc.o.d"
  "CMakeFiles/rvar_ml.dir/tree.cc.o"
  "CMakeFiles/rvar_ml.dir/tree.cc.o.d"
  "CMakeFiles/rvar_ml.dir/tuning.cc.o"
  "CMakeFiles/rvar_ml.dir/tuning.cc.o.d"
  "librvar_ml.a"
  "librvar_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvar_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
