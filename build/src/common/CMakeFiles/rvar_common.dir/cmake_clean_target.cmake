file(REMOVE_RECURSE
  "librvar_common.a"
)
