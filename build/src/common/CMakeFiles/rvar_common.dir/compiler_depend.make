# Empty compiler generated dependencies file for rvar_common.
# This may be replaced when dependencies are built.
