file(REMOVE_RECURSE
  "CMakeFiles/rvar_common.dir/csv.cc.o"
  "CMakeFiles/rvar_common.dir/csv.cc.o.d"
  "CMakeFiles/rvar_common.dir/rng.cc.o"
  "CMakeFiles/rvar_common.dir/rng.cc.o.d"
  "CMakeFiles/rvar_common.dir/status.cc.o"
  "CMakeFiles/rvar_common.dir/status.cc.o.d"
  "CMakeFiles/rvar_common.dir/strings.cc.o"
  "CMakeFiles/rvar_common.dir/strings.cc.o.d"
  "CMakeFiles/rvar_common.dir/table.cc.o"
  "CMakeFiles/rvar_common.dir/table.cc.o.d"
  "librvar_common.a"
  "librvar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
