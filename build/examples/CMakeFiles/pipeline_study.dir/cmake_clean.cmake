file(REMOVE_RECURSE
  "CMakeFiles/pipeline_study.dir/pipeline_study.cpp.o"
  "CMakeFiles/pipeline_study.dir/pipeline_study.cpp.o.d"
  "pipeline_study"
  "pipeline_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
