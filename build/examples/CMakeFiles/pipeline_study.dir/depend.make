# Empty dependencies file for pipeline_study.
# This may be replaced when dependencies are built.
