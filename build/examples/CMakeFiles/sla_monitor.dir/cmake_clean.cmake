file(REMOVE_RECURSE
  "CMakeFiles/sla_monitor.dir/sla_monitor.cpp.o"
  "CMakeFiles/sla_monitor.dir/sla_monitor.cpp.o.d"
  "sla_monitor"
  "sla_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
