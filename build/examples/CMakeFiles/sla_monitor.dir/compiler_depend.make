# Empty compiler generated dependencies file for sla_monitor.
# This may be replaced when dependencies are built.
