// Tests for the classical GradientBoostingClassifier and the
// cross-validation / grid-search tooling.

#include "ml/tuning.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.h"
#include "ml/gradient_boosting.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"

namespace rvar {
namespace ml {
namespace {

Dataset Blobs(int n_per_class, double spread, Rng* rng) {
  const double centers[3][2] = {{0.0, 0.0}, {4.0, 0.0}, {2.0, 4.0}};
  Dataset d;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < n_per_class; ++i) {
      d.x.push_back({rng->Normal(centers[c][0], spread),
                     rng->Normal(centers[c][1], spread)});
      d.y.push_back(c);
    }
  }
  return d;
}

Dataset Xor(int n, Rng* rng) {
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double a = rng->Uniform(-1.0, 1.0);
    const double b = rng->Uniform(-1.0, 1.0);
    d.x.push_back({a, b});
    d.y.push_back((a > 0.0) != (b > 0.0) ? 1 : 0);
  }
  return d;
}

TEST(GradientBoostingTest, SeparatesBlobs) {
  Rng rng(81);
  Dataset train = Blobs(120, 0.6, &rng);
  Dataset test = Blobs(40, 0.6, &rng);
  GradientBoostingClassifier model({.num_rounds = 40});
  ASSERT_TRUE(model.Fit(train).ok());
  auto acc = Accuracy(test.y, model.PredictAll(test));
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
  EXPECT_EQ(model.num_classes(), 3);
}

TEST(GradientBoostingTest, SolvesXorWithDepth3) {
  Rng rng(82);
  Dataset train = Xor(1000, &rng);
  Dataset test = Xor(300, &rng);
  GradientBoostingClassifier model({.num_rounds = 80, .max_depth = 3});
  ASSERT_TRUE(model.Fit(train).ok());
  auto acc = Accuracy(test.y, model.PredictAll(test));
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.93);
}

TEST(GradientBoostingTest, SubsampleStillLearns) {
  Rng rng(83);
  Dataset train = Blobs(100, 0.7, &rng);
  Dataset test = Blobs(30, 0.7, &rng);
  GradientBoostingClassifier model(
      {.num_rounds = 40, .subsample = 0.6});
  ASSERT_TRUE(model.Fit(train).ok());
  auto acc = Accuracy(test.y, model.PredictAll(test));
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.9);
}

TEST(GradientBoostingTest, ProbabilitiesSumToOne) {
  Rng rng(84);
  Dataset train = Blobs(40, 0.6, &rng);
  GradientBoostingClassifier model({.num_rounds = 10});
  ASSERT_TRUE(model.Fit(train).ok());
  const auto p = model.PredictProba({1.0, 2.0});
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GradientBoostingTest, ImportanceNormalized) {
  Rng rng(85);
  Dataset train = Xor(600, &rng);
  GradientBoostingClassifier model({.num_rounds = 20});
  ASSERT_TRUE(model.Fit(train).ok());
  const auto& imp = model.feature_importance();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GradientBoostingTest, RejectsBadConfig) {
  Rng rng(86);
  Dataset train = Blobs(20, 0.5, &rng);
  GradientBoostingClassifier zero({.num_rounds = 0});
  EXPECT_FALSE(zero.Fit(train).ok());
  GradientBoostingClassifier bad_sub({.num_rounds = 5, .subsample = 0.0});
  EXPECT_FALSE(bad_sub.Fit(train).ok());
  Dataset no_labels = train;
  no_labels.y.clear();
  GradientBoostingClassifier model;
  EXPECT_FALSE(model.Fit(no_labels).ok());
}

TEST(CrossValidateTest, HighAccuracyOnEasyProblem) {
  Rng rng(87);
  Dataset d = Blobs(60, 0.5, &rng);
  auto cv = CrossValidate(d, 5, [] {
    return std::make_unique<GaussianNaiveBayes>();
  });
  ASSERT_TRUE(cv.ok()) << cv.status().ToString();
  EXPECT_EQ(cv->folds, 5);
  EXPECT_EQ(cv->fold_accuracy.size(), 5u);
  EXPECT_GT(cv->mean_accuracy, 0.95);
  EXPECT_LT(cv->std_accuracy, 0.1);
  for (double a : cv->fold_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(CrossValidateTest, NearChanceOnNoise) {
  Rng rng(88);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    d.x.push_back({rng.Uniform(), rng.Uniform()});
    d.y.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  auto cv = CrossValidate(d, 4, [] {
    return std::make_unique<GaussianNaiveBayes>();
  });
  ASSERT_TRUE(cv.ok());
  EXPECT_NEAR(cv->mean_accuracy, 0.5, 0.12);
}

TEST(CrossValidateTest, RejectsBadInput) {
  Rng rng(89);
  Dataset d = Blobs(10, 0.5, &rng);
  auto factory = [] { return std::make_unique<GaussianNaiveBayes>(); };
  EXPECT_FALSE(CrossValidate(d, 1, factory).ok());
  Dataset tiny = d.Subset({0, 1});
  EXPECT_FALSE(CrossValidate(tiny, 5, factory).ok());
  Dataset no_labels = d;
  no_labels.y.clear();
  EXPECT_FALSE(CrossValidate(no_labels, 3, factory).ok());
  EXPECT_FALSE(CrossValidate(d, 3, ClassifierFactory{}).ok());
}

TEST(CrossValidateTest, DeterministicGivenSeed) {
  Rng rng(90);
  Dataset d = Blobs(40, 0.8, &rng);
  auto factory = [] { return std::make_unique<GaussianNaiveBayes>(); };
  auto a = CrossValidate(d, 4, factory, 123);
  auto b = CrossValidate(d, 4, factory, 123);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->fold_accuracy, b->fold_accuracy);
}

TEST(GridSearchTest, RanksCandidatesByAccuracy) {
  Rng rng(91);
  Dataset d = Xor(600, &rng);
  std::vector<std::pair<std::string, ClassifierFactory>> grid = {
      {"gbm depth 1 (too shallow for XOR)",
       [] {
         return std::make_unique<GradientBoostingClassifier>(
             GradientBoostingConfig{.num_rounds = 10, .max_depth = 1});
       }},
      {"gbm depth 3",
       [] {
         return std::make_unique<GradientBoostingClassifier>(
             GradientBoostingConfig{.num_rounds = 40, .max_depth = 3});
       }},
  };
  auto result = GridSearch(d, 3, grid);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  // Depth-1 stumps cannot express XOR; depth-3 must win.
  EXPECT_EQ((*result)[0].name, "gbm depth 3");
  EXPECT_GT((*result)[0].cv.mean_accuracy,
            (*result)[1].cv.mean_accuracy + 0.2);
}

TEST(GridSearchTest, RejectsEmptyGrid) {
  Rng rng(92);
  Dataset d = Blobs(10, 0.5, &rng);
  EXPECT_FALSE(GridSearch(d, 2, {}).ok());
}

}  // namespace
}  // namespace ml
}  // namespace rvar
