// Sibling-subtraction equivalence: training with the derived (parent minus
// smaller child) histograms must choose exactly the same splits as building
// every child histogram directly from rows, because the count plane is
// integer-exact and the grad/hess planes drift only by FP cancellation
// noise. The trees must match structurally node for node; leaf values and
// covers (both derived from histogram sums) must agree to 1e-9.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/gbdt.h"

namespace rvar {
namespace ml {
namespace {

Dataset MakeTabular(int rows, int features, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < rows; ++i) {
    std::vector<double> row(static_cast<size_t>(features));
    for (double& v : row) v = rng.Normal(0.0, 1.0);
    const double score = row[0] + 0.5 * row[1] - 0.25 * row[2];
    d.y.push_back(score > 0.5 ? 2 : (score > -0.5 ? 1 : 0));
    d.x.push_back(std::move(row));
  }
  return d;
}

GbdtClassifier TrainWith(const Dataset& d, GbdtConfig config,
                         bool subtraction) {
  config.use_hist_subtraction = subtraction;
  GbdtClassifier model(config);
  EXPECT_TRUE(model.Fit(d).ok());
  return model;
}

void ExpectEquivalentModels(const GbdtClassifier& derived,
                            const GbdtClassifier& direct) {
  ASSERT_EQ(derived.num_classes(), direct.num_classes());
  ASSERT_EQ(derived.rounds_used(), direct.rounds_used());
  for (int k = 0; k < derived.num_classes(); ++k) {
    const std::vector<Tree>& a = derived.trees_for_class(k);
    const std::vector<Tree>& b = direct.trees_for_class(k);
    ASSERT_EQ(a.size(), b.size());
    for (size_t r = 0; r < a.size(); ++r) {
      ASSERT_EQ(a[r].nodes.size(), b[r].nodes.size())
          << "class " << k << " round " << r;
      for (size_t n = 0; n < a[r].nodes.size(); ++n) {
        const TreeNode& na = a[r].nodes[n];
        const TreeNode& nb = b[r].nodes[n];
        // Split decisions are exact: same feature, same bin (hence the
        // same threshold double), same children.
        EXPECT_EQ(na.feature, nb.feature) << "node " << n;
        EXPECT_EQ(na.threshold, nb.threshold) << "node " << n;
        EXPECT_EQ(na.left, nb.left) << "node " << n;
        EXPECT_EQ(na.right, nb.right) << "node " << n;
        // Values and covers come from histogram grad/hess sums, where the
        // subtraction path picks up bounded cancellation noise.
        ASSERT_EQ(na.value.size(), nb.value.size());
        for (size_t v = 0; v < na.value.size(); ++v) {
          EXPECT_NEAR(na.value[v], nb.value[v], 1e-9) << "node " << n;
        }
        EXPECT_NEAR(na.cover, nb.cover, 1e-9) << "node " << n;
      }
    }
  }
}

TEST(GbdtHistSubtractionTest, MatchesDirectBuildOnSeededData) {
  const Dataset d = MakeTabular(800, 12, 41);
  GbdtConfig config;
  config.num_rounds = 15;
  const GbdtClassifier derived = TrainWith(d, config, true);
  const GbdtClassifier direct = TrainWith(d, config, false);
  ExpectEquivalentModels(derived, direct);
}

TEST(GbdtHistSubtractionTest, MatchesDirectBuildUnderSubsampling) {
  // Bagging makes partitions uneven and feature subsampling leaves masked
  // (all-zero) histogram regions; the subtraction must stay consistent
  // over both.
  const Dataset d = MakeTabular(600, 10, 42);
  GbdtConfig config;
  config.num_rounds = 12;
  config.bagging_fraction = 0.7;
  config.feature_fraction = 0.6;
  const GbdtClassifier derived = TrainWith(d, config, true);
  const GbdtClassifier direct = TrainWith(d, config, false);
  ExpectEquivalentModels(derived, direct);
}

TEST(GbdtHistSubtractionTest, PredictionsAgreeWithinTolerance) {
  const Dataset d = MakeTabular(500, 8, 43);
  GbdtConfig config;
  config.num_rounds = 10;
  const GbdtClassifier derived = TrainWith(d, config, true);
  const GbdtClassifier direct = TrainWith(d, config, false);
  for (size_t i = 0; i < d.NumRows(); i += 17) {
    const std::vector<double> pa = derived.PredictRaw(d.x[i]);
    const std::vector<double> pb = direct.PredictRaw(d.x[i]);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t k = 0; k < pa.size(); ++k) {
      EXPECT_NEAR(pa[k], pb[k], 1e-7) << "row " << i;
    }
  }
}

}  // namespace
}  // namespace ml
}  // namespace rvar
