// FlatForest (the SoA inference layout compiled from trained Trees) must
// be a pure re-layout: every prediction routed through it is bit-identical
// to walking the original Tree node structs, across the tier-1 model
// families (GBDT classifier, random forest classifier/regressor) and
// across the serialize/restore path.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "io/serialize.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/tree.h"

namespace rvar {
namespace ml {
namespace {

Dataset MakeTabular(int rows, int features, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < rows; ++i) {
    std::vector<double> row(static_cast<size_t>(features));
    for (double& v : row) v = rng.Normal(0.0, 1.0);
    const double score = row[0] + 0.5 * row[1];
    d.y.push_back(score > 0.5 ? 2 : (score > -0.5 ? 1 : 0));
    d.target.push_back(score + rng.Normal(0.0, 0.1));
    d.x.push_back(std::move(row));
  }
  return d;
}

TEST(FlatForestTest, HandBuiltTreeRoutesIdentically) {
  // x0 <= 0.5 ? (x1 <= -1 ? 1.0 : 2.0) : 3.0, values on every node as
  // trained trees have them.
  Tree tree;
  tree.nodes.resize(5);
  tree.nodes[0] = {0, 0.5, 1, 2, {0.0}, 4.0};
  tree.nodes[1] = {1, -1.0, 3, 4, {1.5}, 2.0};
  tree.nodes[2] = {-1, 0.0, -1, -1, {3.0}, 2.0};
  tree.nodes[3] = {-1, 0.0, -1, -1, {1.0}, 1.0};
  tree.nodes[4] = {-1, 0.0, -1, -1, {2.0}, 1.0};

  FlatForest flat;
  flat.Add(tree);
  ASSERT_EQ(flat.num_trees(), 1u);
  EXPECT_EQ(flat.value_stride(), 1u);
  EXPECT_EQ(flat.num_features(), 2u);

  Rng rng(51);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> row = {rng.Normal(0.0, 1.0),
                                     rng.Normal(0.0, 1.0)};
    EXPECT_EQ(flat.PredictScalar(0, row.data()), tree.PredictScalar(row));
  }
  // Boundary rows exercise the <= comparisons exactly.
  const std::vector<double> on_split = {0.5, -1.0};
  EXPECT_EQ(flat.PredictScalar(0, on_split.data()),
            tree.PredictScalar(on_split));
}

TEST(FlatForestTest, GbdtRawScoresMatchTreeWalk) {
  const Dataset d = MakeTabular(400, 8, 52);
  GbdtClassifier model({.num_rounds = 12});
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < d.NumRows(); i += 7) {
    // PredictRaw runs over the compiled FlatForest; re-derive the same
    // scores by walking the Tree structs.
    const std::vector<double> fast = model.PredictRaw(d.x[i]);
    ASSERT_EQ(fast.size(), static_cast<size_t>(model.num_classes()));
    for (int k = 0; k < model.num_classes(); ++k) {
      double expected = model.base_score(k);
      for (const Tree& tree : model.trees_for_class(k)) {
        expected += tree.PredictScalar(d.x[i]);
      }
      EXPECT_EQ(fast[static_cast<size_t>(k)], expected) << "row " << i;
    }
  }
}

TEST(FlatForestTest, GbdtPredictIntoMatchesPredictProba) {
  const Dataset d = MakeTabular(300, 6, 53);
  GbdtClassifier model({.num_rounds = 10});
  ASSERT_TRUE(model.Fit(d).ok());
  std::vector<double> scratch;
  for (size_t i = 0; i < d.NumRows(); i += 11) {
    model.PredictProbaInto(d.x[i], &scratch);
    EXPECT_EQ(scratch, model.PredictProba(d.x[i])) << "row " << i;
  }
}

TEST(FlatForestTest, GbdtSurvivesSerializeRestore) {
  const Dataset d = MakeTabular(300, 6, 54);
  GbdtClassifier model({.num_rounds = 10});
  ASSERT_TRUE(model.Fit(d).ok());
  const std::string image = io::EncodeGbdtClassifier(model);
  auto restored = io::DecodeGbdtClassifier(image);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < d.NumRows(); i += 13) {
    EXPECT_EQ(restored->PredictRaw(d.x[i]), model.PredictRaw(d.x[i]));
  }
}

TEST(FlatForestTest, ForestClassifierMatchesTreeWalk) {
  const Dataset d = MakeTabular(300, 6, 55);
  ForestConfig config;
  config.num_trees = 20;
  RandomForestClassifier model(config);
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < d.NumRows(); i += 7) {
    const std::vector<double> fast = model.PredictProba(d.x[i]);
    std::vector<double> expected(fast.size(), 0.0);
    for (const Tree& tree : model.trees()) {
      const std::vector<double>& leaf = tree.PredictValue(d.x[i]);
      for (size_t k = 0; k < expected.size(); ++k) expected[k] += leaf[k];
    }
    const double inv = 1.0 / static_cast<double>(model.trees().size());
    for (double& p : expected) p *= inv;
    EXPECT_EQ(fast, expected) << "row " << i;
  }
}

TEST(FlatForestTest, ForestRegressorMatchesTreeWalk) {
  const Dataset d = MakeTabular(300, 6, 56);
  ForestConfig config;
  config.num_trees = 20;
  RandomForestRegressor model(config);
  ASSERT_TRUE(model.Fit(d).ok());
  for (size_t i = 0; i < d.NumRows(); i += 7) {
    double expected = 0.0;
    for (const Tree& tree : model.trees()) {
      expected += tree.PredictScalar(d.x[i]);
    }
    expected /= static_cast<double>(model.trees().size());
    EXPECT_EQ(model.Predict(d.x[i]), expected) << "row " << i;
  }
}

}  // namespace
}  // namespace ml
}  // namespace rvar
