// Tests for the classifier family: random forest, GBDT, naive Bayes, and
// the soft-voting ensemble, on shared synthetic problems.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.h"
#include "ml/ensemble.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"

namespace rvar {
namespace ml {
namespace {

ForestConfig ForestWithTrees(int num_trees) {
  ForestConfig config;
  config.num_trees = num_trees;
  return config;
}

// Three Gaussian blobs in 2D (easily separable, slight overlap).
Dataset Blobs(int n_per_class, double spread, Rng* rng) {
  const double centers[3][2] = {{0.0, 0.0}, {4.0, 0.0}, {2.0, 4.0}};
  Dataset d;
  d.feature_names = {"x0", "x1"};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < n_per_class; ++i) {
      d.x.push_back({rng->Normal(centers[c][0], spread),
                     rng->Normal(centers[c][1], spread)});
      d.y.push_back(c);
    }
  }
  return d;
}

// XOR-style problem: not linearly separable, needs interactions.
Dataset Xor(int n, Rng* rng) {
  Dataset d;
  d.feature_names = {"x0", "x1", "noise"};
  for (int i = 0; i < n; ++i) {
    const double a = rng->Uniform(-1.0, 1.0);
    const double b = rng->Uniform(-1.0, 1.0);
    d.x.push_back({a, b, rng->Uniform()});
    d.y.push_back((a > 0.0) != (b > 0.0) ? 1 : 0);
  }
  return d;
}

double EvalAccuracy(const Classifier& model, const Dataset& test) {
  auto acc = Accuracy(test.y, model.PredictAll(test));
  EXPECT_TRUE(acc.ok());
  return acc.ValueOr(0.0);
}

TEST(RandomForestClassifierTest, SeparatesBlobs) {
  Rng rng(21);
  Dataset train = Blobs(150, 0.6, &rng);
  Dataset test = Blobs(50, 0.6, &rng);
  ForestConfig config;
  config.num_trees = 30;
  RandomForestClassifier rf(config);
  ASSERT_TRUE(rf.Fit(train).ok());
  EXPECT_GT(EvalAccuracy(rf, test), 0.95);
  EXPECT_EQ(rf.num_classes(), 3);
}

TEST(RandomForestClassifierTest, SolvesXor) {
  Rng rng(22);
  Dataset train = Xor(1000, &rng);
  Dataset test = Xor(300, &rng);
  ForestConfig config;
  config.num_trees = 40;
  RandomForestClassifier rf(config);
  ASSERT_TRUE(rf.Fit(train).ok());
  EXPECT_GT(EvalAccuracy(rf, test), 0.93);
}

TEST(RandomForestClassifierTest, ImportanceIgnoresNoiseFeature) {
  Rng rng(23);
  Dataset train = Xor(1200, &rng);
  ForestConfig config;
  config.num_trees = 30;
  config.max_features = 3;
  RandomForestClassifier rf(config);
  ASSERT_TRUE(rf.Fit(train).ok());
  const auto& imp = rf.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[2] * 3.0);
  EXPECT_GT(imp[1], imp[2] * 3.0);
  EXPECT_NEAR(imp[0] + imp[1] + imp[2], 1.0, 1e-9);
}

TEST(RandomForestClassifierTest, ProbabilitiesSumToOne) {
  Rng rng(24);
  Dataset train = Blobs(60, 0.8, &rng);
  RandomForestClassifier rf(ForestWithTrees(10));
  ASSERT_TRUE(rf.Fit(train).ok());
  const auto p = rf.PredictProba({2.0, 1.5});
  ASSERT_EQ(p.size(), 3u);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RandomForestClassifierTest, RejectsBadConfigAndData) {
  Rng rng(25);
  Dataset train = Blobs(20, 0.5, &rng);
  RandomForestClassifier bad_trees(ForestWithTrees(0));
  EXPECT_FALSE(bad_trees.Fit(train).ok());
  RandomForestClassifier rf;
  Dataset no_labels = train;
  no_labels.y.clear();
  EXPECT_FALSE(rf.Fit(no_labels).ok());
  Dataset empty;
  EXPECT_FALSE(rf.Fit(empty).ok());
}

TEST(RandomForestClassifierTest, DeterministicGivenSeed) {
  Rng rng(26);
  Dataset train = Blobs(50, 0.7, &rng);
  ForestConfig config;
  config.num_trees = 5;
  config.seed = 99;
  RandomForestClassifier a(config), b(config);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  for (double x = -1.0; x < 5.0; x += 0.5) {
    EXPECT_EQ(a.PredictProba({x, x}), b.PredictProba({x, x}));
  }
}

TEST(RandomForestRegressorTest, FitsLinearFunction) {
  Rng rng(27);
  Dataset d;
  for (int i = 0; i < 3000; ++i) {
    const double a = rng.Uniform(0.0, 1.0);
    const double b = rng.Uniform(0.0, 1.0);
    d.x.push_back({a, b});
    d.target.push_back(3.0 * a + b);
  }
  ForestConfig config;
  config.num_trees = 30;
  config.tree.max_depth = 10;
  RandomForestRegressor rf(config);
  ASSERT_TRUE(rf.Fit(d).ok());
  double max_err = 0.0;
  for (double a = 0.1; a < 0.95; a += 0.1) {
    for (double b = 0.1; b < 0.95; b += 0.1) {
      max_err = std::max(max_err,
                         std::fabs(rf.Predict({a, b}) - (3.0 * a + b)));
    }
  }
  EXPECT_LT(max_err, 0.4);
}

TEST(GbdtClassifierTest, SeparatesBlobs) {
  Rng rng(28);
  Dataset train = Blobs(150, 0.6, &rng);
  Dataset test = Blobs(50, 0.6, &rng);
  GbdtConfig config;
  config.num_rounds = 30;
  GbdtClassifier gbdt(config);
  ASSERT_TRUE(gbdt.Fit(train).ok());
  EXPECT_GT(EvalAccuracy(gbdt, test), 0.95);
  EXPECT_EQ(gbdt.num_classes(), 3);
  EXPECT_EQ(gbdt.rounds_used(), 30);
}

TEST(GbdtClassifierTest, SolvesXor) {
  Rng rng(29);
  Dataset train = Xor(1000, &rng);
  Dataset test = Xor(300, &rng);
  GbdtConfig config;
  config.num_rounds = 60;
  GbdtClassifier gbdt(config);
  ASSERT_TRUE(gbdt.Fit(train).ok());
  EXPECT_GT(EvalAccuracy(gbdt, test), 0.95);
}

TEST(GbdtClassifierTest, RawScoresMatchProbaThroughSoftmax) {
  Rng rng(30);
  Dataset train = Blobs(40, 0.7, &rng);
  GbdtClassifier gbdt({.num_rounds = 10});
  ASSERT_TRUE(gbdt.Fit(train).ok());
  const std::vector<double> row = {1.0, 1.0};
  const auto raw = gbdt.PredictRaw(row);
  const auto proba = gbdt.PredictProba(row);
  double mx = *std::max_element(raw.begin(), raw.end());
  double denom = 0.0;
  for (double s : raw) denom += std::exp(s - mx);
  for (size_t k = 0; k < raw.size(); ++k) {
    EXPECT_NEAR(proba[k], std::exp(raw[k] - mx) / denom, 1e-9);
  }
}

TEST(GbdtClassifierTest, EarlyStoppingTruncatesRounds) {
  Rng rng(31);
  Dataset train = Blobs(100, 0.5, &rng);
  Dataset valid = Blobs(40, 0.5, &rng);
  GbdtConfig config;
  config.num_rounds = 200;
  config.early_stopping_rounds = 5;
  GbdtClassifier gbdt(config);
  ASSERT_TRUE(gbdt.FitWithValidation(train, valid).ok());
  // An easy problem converges long before 200 rounds.
  EXPECT_LT(gbdt.rounds_used(), 200);
  EXPECT_GT(gbdt.rounds_used(), 0);
}

TEST(GbdtClassifierTest, BaggingAndFeatureFraction) {
  Rng rng(32);
  Dataset train = Xor(800, &rng);
  Dataset test = Xor(200, &rng);
  GbdtConfig config;
  config.num_rounds = 60;
  config.bagging_fraction = 0.7;
  config.feature_fraction = 0.67;
  GbdtClassifier gbdt(config);
  ASSERT_TRUE(gbdt.Fit(train).ok());
  EXPECT_GT(EvalAccuracy(gbdt, test), 0.9);
}

TEST(GbdtClassifierTest, ImportanceConcentratesOnSignal) {
  Rng rng(33);
  Dataset train = Xor(1000, &rng);
  GbdtClassifier gbdt({.num_rounds = 40});
  ASSERT_TRUE(gbdt.Fit(train).ok());
  const auto& imp = gbdt.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0] + imp[1], 0.9);
}

TEST(GbdtClassifierTest, RejectsBadConfig) {
  Rng rng(34);
  Dataset train = Blobs(20, 0.5, &rng);
  GbdtClassifier zero_rounds({.num_rounds = 0});
  EXPECT_FALSE(zero_rounds.Fit(train).ok());
  GbdtConfig bad_frac;
  bad_frac.feature_fraction = 0.0;
  GbdtClassifier bf(bad_frac);
  EXPECT_FALSE(bf.Fit(train).ok());
}

TEST(GaussianNaiveBayesTest, SeparatesBlobs) {
  Rng rng(35);
  Dataset train = Blobs(150, 0.6, &rng);
  Dataset test = Blobs(50, 0.6, &rng);
  GaussianNaiveBayes nb;
  ASSERT_TRUE(nb.Fit(train).ok());
  EXPECT_GT(EvalAccuracy(nb, test), 0.95);
}

TEST(GaussianNaiveBayesTest, ProbabilitiesValid) {
  Rng rng(36);
  Dataset train = Blobs(60, 0.8, &rng);
  GaussianNaiveBayes nb;
  ASSERT_TRUE(nb.Fit(train).ok());
  const auto p = nb.PredictProba({100.0, -50.0});  // far outlier
  double sum = 0.0;
  for (double v : p) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GaussianNaiveBayesTest, HandlesUnseenClassGap) {
  // Labels {0, 2} with class 1 absent.
  Dataset d;
  Rng rng(37);
  for (int i = 0; i < 40; ++i) {
    const bool hi = rng.Bernoulli(0.5);
    d.x.push_back({hi ? 5.0 + rng.Normal(0.0, 0.3) : rng.Normal(0.0, 0.3)});
    d.y.push_back(hi ? 2 : 0);
  }
  GaussianNaiveBayes nb;
  ASSERT_TRUE(nb.Fit(d).ok());
  const auto p = nb.PredictProba({5.0});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_GT(p[2], 0.9);
}

TEST(VotingClassifierTest, CombinesModels) {
  Rng rng(38);
  Dataset train = Blobs(120, 0.7, &rng);
  Dataset test = Blobs(40, 0.7, &rng);
  VotingClassifier voting;
  voting.AddModel(std::make_unique<RandomForestClassifier>(
      ForestWithTrees(15)));
  voting.AddModel(std::make_unique<GbdtClassifier>(
      GbdtConfig{.num_rounds = 15}));
  voting.AddModel(std::make_unique<GaussianNaiveBayes>());
  ASSERT_TRUE(voting.Fit(train).ok());
  EXPECT_EQ(voting.num_models(), 3u);
  EXPECT_GT(EvalAccuracy(voting, test), 0.95);
  const auto p = voting.PredictProba({0.0, 0.0});
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(VotingClassifierTest, FailsWithoutModels) {
  Rng rng(39);
  Dataset train = Blobs(10, 0.5, &rng);
  VotingClassifier voting;
  EXPECT_TRUE(voting.Fit(train).IsFailedPrecondition());
}

TEST(VotingClassifierTest, WeightsShiftTheVote) {
  // Two dummy models via NB trained on contradictory labelings would be
  // convoluted; instead check that a heavily weighted model dominates.
  Rng rng(40);
  Dataset train = Blobs(100, 0.6, &rng);
  VotingClassifier voting;
  voting.AddModel(std::make_unique<GaussianNaiveBayes>(), 100.0);
  voting.AddModel(std::make_unique<RandomForestClassifier>(
                      ForestWithTrees(5)),
                  0.01);
  ASSERT_TRUE(voting.Fit(train).ok());
  GaussianNaiveBayes solo;
  ASSERT_TRUE(solo.Fit(train).ok());
  const std::vector<double> row = {1.7, 2.2};
  const auto pv = voting.PredictProba(row);
  const auto ps = solo.PredictProba(row);
  for (size_t k = 0; k < pv.size(); ++k) EXPECT_NEAR(pv[k], ps[k], 0.01);
}

// --- GBDT warm start (the lifecycle retrain path) ------------------------

TEST(GbdtWarmStartTest, ExtendsParentForestAndStaysAccurate) {
  Rng rng(50);
  Dataset history = Blobs(120, 0.6, &rng);
  Dataset window = Blobs(80, 0.6, &rng);
  Dataset test = Blobs(50, 0.6, &rng);

  GbdtConfig parent_config;
  parent_config.num_rounds = 10;
  GbdtClassifier parent(parent_config);
  ASSERT_TRUE(parent.Fit(history).ok());

  GbdtConfig child_config;
  child_config.num_rounds = 5;
  GbdtClassifier child(child_config);
  ASSERT_TRUE(child.FitWarmStart(window, parent).ok());
  // The child keeps the parent's forest and appends its own rounds.
  EXPECT_EQ(child.rounds_used(), 15);
  EXPECT_EQ(child.num_classes(), parent.num_classes());
  EXPECT_GT(EvalAccuracy(child, test), 0.9);
}

TEST(GbdtWarmStartTest, DeterministicGivenParentWindowAndSeed) {
  Rng rng(51);
  Dataset history = Blobs(100, 0.6, &rng);
  Dataset window = Blobs(60, 0.6, &rng);
  GbdtClassifier parent({.num_rounds = 8});
  ASSERT_TRUE(parent.Fit(history).ok());

  GbdtConfig config;
  config.num_rounds = 6;
  config.seed = 99;
  GbdtClassifier a(config), b(config);
  ASSERT_TRUE(a.FitWarmStart(window, parent).ok());
  ASSERT_TRUE(b.FitWarmStart(window, parent).ok());
  for (const auto& row : window.x) {
    EXPECT_EQ(a.PredictRaw(row), b.PredictRaw(row));
  }
  EXPECT_EQ(a.feature_importance(), b.feature_importance());
}

TEST(GbdtWarmStartTest, KeepsParentClassesWhenWindowMissesSome) {
  Rng rng(52);
  Dataset history = Blobs(100, 0.6, &rng);  // 3 classes
  GbdtClassifier parent({.num_rounds = 8});
  ASSERT_TRUE(parent.Fit(history).ok());

  // The retrain window only observed classes 0 and 1; the warm-started
  // model must keep predicting over the parent's full class space.
  Dataset window = Blobs(60, 0.6, &rng);
  std::vector<size_t> keep;
  for (size_t i = 0; i < window.NumRows(); ++i) {
    if (window.y[i] < 2) keep.push_back(i);
  }
  window = window.Subset(keep);
  GbdtClassifier child({.num_rounds = 4});
  ASSERT_TRUE(child.FitWarmStart(window, parent).ok());
  EXPECT_EQ(child.num_classes(), 3);
  EXPECT_EQ(child.PredictProba(window.x[0]).size(), 3u);
}

TEST(GbdtWarmStartTest, RejectsUnfittedParentAndMismatchedWindows) {
  Rng rng(53);
  Dataset history = Blobs(80, 0.6, &rng);
  GbdtClassifier parent({.num_rounds = 6});
  GbdtClassifier child({.num_rounds = 4});

  // Unfitted parent.
  EXPECT_FALSE(child.FitWarmStart(history, parent).ok());
  ASSERT_TRUE(parent.Fit(history).ok());

  // Feature-count mismatch.
  Dataset wrong_features = history;
  wrong_features.feature_names = {"x0", "x1", "extra"};
  for (auto& row : wrong_features.x) row.push_back(0.0);
  EXPECT_FALSE(child.FitWarmStart(wrong_features, parent).ok());

  // Window with labels outside the parent's class space.
  Dataset wrong_labels = history;
  wrong_labels.y[0] = 7;
  EXPECT_FALSE(child.FitWarmStart(wrong_labels, parent).ok());
}

}  // namespace
}  // namespace ml
}  // namespace rvar
