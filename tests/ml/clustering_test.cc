#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "ml/agglomerative.h"
#include "ml/kmeans.h"

namespace rvar {
namespace ml {
namespace {

// Three tight, well-separated blobs in `dim` dimensions.
std::vector<std::vector<double>> ThreeBlobs(int per_blob, size_t dim,
                                            double spread, Rng* rng,
                                            std::vector<int>* truth) {
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_blob; ++i) {
      std::vector<double> p(dim, 0.0);
      for (size_t d = 0; d < dim; ++d) {
        p[d] = 10.0 * c + rng->Normal(0.0, spread);
      }
      points.push_back(std::move(p));
      if (truth) truth->push_back(c);
    }
  }
  return points;
}

// Checks that the clustering exactly recovers a ground-truth partition
// (up to label permutation).
void ExpectPartitionMatch(const std::vector<int>& truth,
                          const std::vector<int>& assigned) {
  ASSERT_EQ(truth.size(), assigned.size());
  std::map<int, int> mapping;
  for (size_t i = 0; i < truth.size(); ++i) {
    auto [it, inserted] = mapping.emplace(truth[i], assigned[i]);
    EXPECT_EQ(it->second, assigned[i]) << "row " << i;
  }
  std::set<int> distinct;
  for (auto& [t, a] : mapping) distinct.insert(a);
  EXPECT_EQ(distinct.size(), mapping.size());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(51);
  std::vector<int> truth;
  auto points = ThreeBlobs(60, 4, 0.5, &rng, &truth);
  KMeansConfig config;
  config.k = 3;
  auto model = KMeans(points, config);
  ASSERT_TRUE(model.ok());
  ExpectPartitionMatch(truth, model->assignments);
  EXPECT_EQ(model->ClusterSizes(),
            (std::vector<int>{60, 60, 60}));
}

TEST(KMeansTest, InertiaIsSumOfSquaredResiduals) {
  std::vector<std::vector<double>> points = {{0.0}, {2.0}, {10.0}, {12.0}};
  KMeansConfig config;
  config.k = 2;
  auto model = KMeans(points, config);
  ASSERT_TRUE(model.ok());
  // Optimal: centroids 1 and 11, inertia = 4 * 1^2 = 4.
  EXPECT_NEAR(model->inertia, 4.0, 1e-9);
}

TEST(KMeansTest, PredictMatchesAssignments) {
  Rng rng(52);
  std::vector<int> truth;
  auto points = ThreeBlobs(40, 3, 0.4, &rng, &truth);
  auto model = KMeans(points, {.k = 3});
  ASSERT_TRUE(model.ok());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(model->Predict(points[i]), model->assignments[i]);
  }
}

TEST(KMeansTest, KEqualsNPutsEachPointAlone) {
  std::vector<std::vector<double>> points = {{0.0}, {5.0}, {9.0}};
  auto model = KMeans(points, {.k = 3});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->inertia, 0.0, 1e-12);
  std::set<int> distinct(model->assignments.begin(),
                         model->assignments.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(KMeansTest, RejectsBadArguments) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  EXPECT_FALSE(KMeans({}, {.k = 1}).ok());
  EXPECT_FALSE(KMeans(points, {.k = 0}).ok());
  EXPECT_FALSE(KMeans(points, {.k = 3}).ok());
  std::vector<std::vector<double>> ragged = {{0.0}, {1.0, 2.0}};
  EXPECT_FALSE(KMeans(ragged, {.k = 1}).ok());
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng rng(53);
  auto points = ThreeBlobs(30, 2, 1.0, &rng, nullptr);
  KMeansConfig config;
  config.k = 3;
  config.seed = 7;
  auto a = KMeans(points, config);
  auto b = KMeans(points, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  std::vector<std::vector<double>> points(10, std::vector<double>{1.0, 2.0});
  auto model = KMeans(points, {.k = 3});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->inertia, 0.0, 1e-12);
}

// Regression: two clusters emptying in the same Lloyd step must reseed to
// DISTINCT points. The old reseed picked "the farthest point" for each
// empty cluster independently, so simultaneous empties collapsed onto one
// point and the duplicate centroid could never separate again.
TEST(KMeansTest, SimultaneouslyEmptiedClustersReseedToDistinctPoints) {
  // All four points assign to the first centroid on iteration one, so the
  // other two clusters both empty in the same step.
  const std::vector<std::vector<double>> points = {
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  std::vector<std::vector<double>> init = {
      {0.0, 0.0}, {100.0, 0.0}, {200.0, 0.0}};
  KMeansConfig config;
  config.max_iterations = 50;
  auto model = KMeansWithInitialCentroids(points, std::move(init), config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_EQ(model->centroids.size(), 3u);
  for (size_t a = 0; a < model->centroids.size(); ++a) {
    for (size_t b = a + 1; b < model->centroids.size(); ++b) {
      EXPECT_NE(model->centroids[a], model->centroids[b])
          << "clusters " << a << " and " << b
          << " share a centroid after reseeding";
    }
  }
  // Every cluster ends up owning at least one point.
  const std::vector<int> sizes = model->ClusterSizes();
  for (size_t c = 0; c < sizes.size(); ++c) {
    EXPECT_GT(sizes[c], 0) << "cluster " << c << " is empty";
  }
  EXPECT_TRUE(std::isfinite(model->inertia));
}

TEST(KMeansTest, ReseedUsesUpdatedCentroidsNotStaleOnes) {
  // One cluster empties; the reseed distance must be measured against the
  // freshly updated centroid of the surviving cluster, not its stale
  // pre-update position. All points land in cluster 0, whose centroid
  // moves from 6 to 3; the farthest point from 3 is 9 (giving the optimal
  // {0,1,2}/{9} split, inertia 2), while the farthest from the stale 6 is
  // 0 (which converges to the much worse {0,1}/{2,9} split, inertia 25).
  const std::vector<std::vector<double>> points = {
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {9.0, 0.0}};
  std::vector<std::vector<double>> init = {{6.0, 0.0}, {50.0, 0.0}};
  auto model = KMeansWithInitialCentroids(points, std::move(init), {});
  ASSERT_TRUE(model.ok());
  EXPECT_NE(model->centroids[0], model->centroids[1]);
  const std::vector<int> sizes = model->ClusterSizes();
  EXPECT_GT(sizes[0], 0);
  EXPECT_GT(sizes[1], 0);
  EXPECT_NEAR(model->inertia, 2.0, 1e-9);  // {0,1,2} vs {9}
}

TEST(KMeansTest, WithInitialCentroidsRejectsBadArguments) {
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  EXPECT_FALSE(KMeansWithInitialCentroids({}, {{0.0}}, {}).ok());
  EXPECT_FALSE(KMeansWithInitialCentroids(points, {}, {}).ok());
  // More centroids than points.
  EXPECT_FALSE(
      KMeansWithInitialCentroids(points, {{0.0}, {0.5}, {1.0}}, {}).ok());
  // Centroid dimension mismatch.
  EXPECT_FALSE(KMeansWithInitialCentroids(points, {{0.0, 1.0}}, {}).ok());
}

TEST(InertiaSweepTest, MonotoneNonIncreasingWithElbow) {
  Rng rng(54);
  std::vector<int> truth;
  auto points = ThreeBlobs(50, 3, 0.5, &rng, &truth);
  KMeansConfig config;
  config.num_restarts = 5;
  auto curve = InertiaSweep(points, 1, 6, config);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 6u);
  for (size_t i = 1; i < curve->size(); ++i) {
    EXPECT_LE((*curve)[i].inertia, (*curve)[i - 1].inertia * 1.001);
  }
  // Elbow at k=3: drop from 2->3 is much larger than 3->4.
  const double drop_23 = (*curve)[1].inertia - (*curve)[2].inertia;
  const double drop_34 = (*curve)[2].inertia - (*curve)[3].inertia;
  EXPECT_GT(drop_23, 5.0 * std::max(drop_34, 1e-9));
}

TEST(InertiaSweepTest, RejectsBadRange) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  EXPECT_FALSE(InertiaSweep(points, 0, 2, {}).ok());
  EXPECT_FALSE(InertiaSweep(points, 3, 2, {}).ok());
}

class AgglomerativeLinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(AgglomerativeLinkageTest, RecoversBlobs) {
  Rng rng(55);
  std::vector<int> truth;
  auto points = ThreeBlobs(25, 2, 0.4, &rng, &truth);
  auto model = AgglomerativeCluster(points, 3, GetParam());
  ASSERT_TRUE(model.ok());
  ExpectPartitionMatch(truth, model->assignments);
}

INSTANTIATE_TEST_SUITE_P(Linkages, AgglomerativeLinkageTest,
                         ::testing::Values(Linkage::kSingle,
                                           Linkage::kComplete,
                                           Linkage::kAverage));

TEST(AgglomerativeTest, OneClusterAndNClusters) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}, {5.0}};
  auto one = AgglomerativeCluster(points, 1, Linkage::kAverage);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->ClusterSizes(), (std::vector<int>{3}));
  EXPECT_DOUBLE_EQ(one->LargestClusterFraction(), 1.0);
  auto all = AgglomerativeCluster(points, 3, Linkage::kAverage);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->ClusterSizes(), (std::vector<int>{1, 1, 1}));
}

TEST(AgglomerativeTest, RejectsBadArguments) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  EXPECT_FALSE(AgglomerativeCluster({}, 1, Linkage::kSingle).ok());
  EXPECT_FALSE(AgglomerativeCluster(points, 0, Linkage::kSingle).ok());
  EXPECT_FALSE(AgglomerativeCluster(points, 3, Linkage::kSingle).ok());
}

TEST(AgglomerativeTest, SingleLinkageChains) {
  // A chain of close points plus one distant point: single linkage merges
  // the chain first, producing the imbalance the paper observed.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 20; ++i) points.push_back({static_cast<double>(i)});
  points.push_back({1000.0});
  auto model = AgglomerativeCluster(points, 2, Linkage::kSingle);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->LargestClusterFraction(), 0.9);
}

}  // namespace
}  // namespace ml
}  // namespace rvar
