#include "ml/shap.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace rvar {
namespace ml {
namespace {

// Hand-built stump: x0 <= 0.5 -> 1.0 (cover 30), else 3.0 (cover 70).
Tree Stump() {
  Tree t;
  t.nodes.resize(3);
  t.nodes[0].feature = 0;
  t.nodes[0].threshold = 0.5;
  t.nodes[0].left = 1;
  t.nodes[0].right = 2;
  t.nodes[0].cover = 100.0;
  t.nodes[0].value = {0.0};
  t.nodes[1].value = {1.0};
  t.nodes[1].cover = 30.0;
  t.nodes[2].value = {3.0};
  t.nodes[2].cover = 70.0;
  return t;
}

TEST(TreeShapTest, StumpExactValues) {
  Tree t = Stump();
  // E[f] = 0.3*1 + 0.7*3 = 2.4.
  double base = 0.0;
  auto phi = TreeShap(t, 0, {0.2, 9.9}, 2, &base);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR(base, 2.4, 1e-12);
  // Single feature: phi0 = f(x) - E[f] = 1 - 2.4 = -1.4; phi1 = 0.
  EXPECT_NEAR((*phi)[0], -1.4, 1e-12);
  EXPECT_NEAR((*phi)[1], 0.0, 1e-12);

  auto phi_hi = TreeShap(t, 0, {0.9, 0.0}, 2, &base);
  ASSERT_TRUE(phi_hi.ok());
  EXPECT_NEAR((*phi_hi)[0], 0.6, 1e-12);
}

TEST(TreeShapTest, TwoFeatureTreeMatchesBruteForceShapley) {
  // Depth-2 tree over features 0 and 1 with uniform covers: SHAP values can
  // be computed by hand from the 2-player Shapley formula.
  Tree t;
  t.nodes.resize(7);
  t.nodes[0] = {0, 0.5, 1, 2, {0.0}, 4.0};
  t.nodes[1] = {1, 0.5, 3, 4, {0.0}, 2.0};
  t.nodes[2] = {1, 0.5, 5, 6, {0.0}, 2.0};
  t.nodes[3] = {-1, 0.0, -1, -1, {0.0}, 1.0};   // x0<=.5, x1<=.5
  t.nodes[4] = {-1, 0.0, -1, -1, {10.0}, 1.0};  // x0<=.5, x1>.5
  t.nodes[5] = {-1, 0.0, -1, -1, {20.0}, 1.0};  // x0>.5, x1<=.5
  t.nodes[6] = {-1, 0.0, -1, -1, {30.0}, 1.0};  // x0>.5, x1>.5

  // Instance (0.9, 0.9) -> f = 30. Expectations:
  // E[] = 15. E[x0 fixed hi] = 25. E[x1 fixed hi] = 20. E[both] = 30.
  // phi0 = 1/2[(25-15) + (30-20)] = 10. phi1 = 1/2[(20-15) + (30-25)] = 5.
  double base = 0.0;
  auto phi = TreeShap(t, 0, {0.9, 0.9}, 2, &base);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR(base, 15.0, 1e-9);
  EXPECT_NEAR((*phi)[0], 10.0, 1e-9);
  EXPECT_NEAR((*phi)[1], 5.0, 1e-9);
}

TEST(TreeShapTest, LocalAccuracyOnTrainedTree) {
  // Additivity: sum(phi) + base == prediction, for every instance.
  Rng rng(71);
  Dataset d;
  for (int i = 0; i < 600; ++i) {
    std::vector<double> row = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    d.target.push_back(2.0 * row[0] + row[1] * row[1] - row[2] +
                       rng.Normal(0.0, 0.05));
    d.x.push_back(std::move(row));
  }
  auto binner = FeatureBinner::Fit(d, 32);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  config.max_depth = 6;
  std::vector<size_t> idx(600);
  std::iota(idx.begin(), idx.end(), 0);
  Rng tree_rng(72);
  auto tree =
      TrainRegressionTree(*binned, d.target, idx, config, &tree_rng, nullptr);
  ASSERT_TRUE(tree.ok());

  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> x = {rng.Uniform(), rng.Uniform(),
                                   rng.Uniform()};
    double base = 0.0;
    auto phi = TreeShap(*tree, 0, x, 3, &base);
    ASSERT_TRUE(phi.ok());
    const double reconstructed =
        base + std::accumulate(phi->begin(), phi->end(), 0.0);
    EXPECT_NEAR(reconstructed, tree->PredictScalar(x), 1e-6) << "trial "
                                                             << trial;
  }
}

TEST(TreeShapTest, RepeatedFeatureOnPath) {
  // Tree splitting twice on feature 0 exercises the unwind path.
  Tree t;
  t.nodes.resize(5);
  t.nodes[0] = {0, 0.5, 1, 2, {0.0}, 10.0};
  t.nodes[1] = {-1, 0.0, -1, -1, {1.0}, 5.0};
  t.nodes[2] = {0, 0.8, 3, 4, {0.0}, 5.0};
  t.nodes[3] = {-1, 0.0, -1, -1, {2.0}, 3.0};
  t.nodes[4] = {-1, 0.0, -1, -1, {4.0}, 2.0};

  // E[f] = (5*1 + 3*2 + 2*4)/10 = 1.9.
  for (double x0 : {0.2, 0.6, 0.95}) {
    double base = 0.0;
    auto phi = TreeShap(t, 0, {x0}, 1, &base);
    ASSERT_TRUE(phi.ok());
    EXPECT_NEAR(base, 1.9, 1e-12);
    EXPECT_NEAR(base + (*phi)[0], t.PredictScalar({x0}), 1e-9) << x0;
  }
}

TEST(TreeShapTest, RejectsBadInput) {
  Tree t = Stump();
  EXPECT_FALSE(TreeShap(Tree{}, 0, {0.1}, 1, nullptr).ok());
  EXPECT_FALSE(TreeShap(t, 5, {0.1, 0.2}, 2, nullptr).ok());
  EXPECT_FALSE(TreeShap(t, 0, {0.1, 0.2}, 0, nullptr).ok());  // f0 out of range
  EXPECT_FALSE(TreeShap(t, 0, {}, 2, nullptr).ok());
}

TEST(ShapForGbdtTest, LocalAccuracyInRawScoreSpace) {
  Rng rng(73);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    const double b = rng.Uniform(-1.0, 1.0);
    d.x.push_back({a, b});
    d.y.push_back(a + b > 0.0 ? 1 : (a > b ? 2 : 0));
  }
  GbdtClassifier model({.num_rounds = 15});
  ASSERT_TRUE(model.Fit(d).ok());
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> x = {rng.Uniform(-1.0, 1.0),
                                   rng.Uniform(-1.0, 1.0)};
    auto exp = ShapForGbdt(model, x, 2);
    ASSERT_TRUE(exp.ok());
    const auto raw = model.PredictRaw(x);
    for (int k = 0; k < 3; ++k) {
      EXPECT_NEAR(exp->ReconstructedScore(k), raw[static_cast<size_t>(k)],
                  1e-6)
          << "class " << k;
    }
  }
}

TEST(ShapForForestTest, LocalAccuracyInProbabilitySpace) {
  Rng rng(74);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    d.x.push_back({a, rng.Uniform(-1.0, 1.0)});
    d.y.push_back(a > 0.0 ? 1 : 0);
  }
  ForestConfig forest_config;
  forest_config.num_trees = 12;
  RandomForestClassifier model(forest_config);
  ASSERT_TRUE(model.Fit(d).ok());
  for (int trial = 0; trial < 15; ++trial) {
    const std::vector<double> x = {rng.Uniform(-1.0, 1.0),
                                   rng.Uniform(-1.0, 1.0)};
    auto exp = ShapForForest(model, x, 2);
    ASSERT_TRUE(exp.ok());
    const auto proba = model.PredictProba(x);
    for (int k = 0; k < 2; ++k) {
      EXPECT_NEAR(exp->ReconstructedScore(k), proba[static_cast<size_t>(k)],
                  1e-6);
    }
  }
}

TEST(ShapTest, SignalFeatureDominatesAttribution) {
  Rng rng(75);
  Dataset d;
  for (int i = 0; i < 600; ++i) {
    const double signal = rng.Uniform(-1.0, 1.0);
    d.x.push_back({signal, rng.Uniform(-1.0, 1.0)});
    d.y.push_back(signal > 0.0 ? 1 : 0);
  }
  GbdtClassifier model({.num_rounds = 20});
  ASSERT_TRUE(model.Fit(d).ok());
  std::vector<ShapExplanation> exps;
  for (int i = 0; i < 40; ++i) {
    auto e = ShapForGbdt(model, d.x[static_cast<size_t>(i * 10)], 2);
    ASSERT_TRUE(e.ok());
    exps.push_back(*e);
  }
  const auto mean_abs = MeanAbsoluteShap(exps, 1);
  ASSERT_EQ(mean_abs.size(), 2u);
  EXPECT_GT(mean_abs[0], 10.0 * std::max(mean_abs[1], 1e-9));
}

TEST(ShapTest, MeanAbsoluteShapEmptyInput) {
  EXPECT_TRUE(MeanAbsoluteShap({}, 0).empty());
}

}  // namespace
}  // namespace ml
}  // namespace rvar
