#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

namespace rvar {
namespace ml {
namespace {

Dataset MakeToy() {
  Dataset d;
  d.feature_names = {"a", "b"};
  d.x = {{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}, {4.0, 40.0}};
  d.y = {0, 1, 0, 1};
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeToy();
  EXPECT_EQ(d.NumRows(), 4u);
  EXPECT_EQ(d.NumFeatures(), 2u);
  EXPECT_EQ(d.NumClasses(), 2);
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.Column(1), (std::vector<double>{10.0, 20.0, 30.0, 40.0}));
}

TEST(DatasetTest, ValidateCatchesRaggedRows) {
  Dataset d = MakeToy();
  d.x[2].push_back(99.0);
  EXPECT_TRUE(d.Validate().IsInvalidArgument());
}

TEST(DatasetTest, ValidateCatchesNonFinite) {
  Dataset d = MakeToy();
  d.x[1][0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(d.Validate().IsInvalidArgument());
}

TEST(DatasetTest, ValidateCatchesLabelMismatch) {
  Dataset d = MakeToy();
  d.y.pop_back();
  EXPECT_TRUE(d.Validate().IsInvalidArgument());
  d = MakeToy();
  d.y[0] = -1;
  EXPECT_TRUE(d.Validate().IsInvalidArgument());
}

TEST(DatasetTest, ValidateCatchesBadFeatureNames) {
  Dataset d = MakeToy();
  d.feature_names.push_back("extra");
  EXPECT_TRUE(d.Validate().IsInvalidArgument());
}

TEST(DatasetTest, SubsetPreservesAlignment) {
  Dataset d = MakeToy();
  d.target = {0.1, 0.2, 0.3, 0.4};
  Dataset s = d.Subset({3, 1});
  EXPECT_EQ(s.NumRows(), 2u);
  EXPECT_EQ(s.x[0][0], 4.0);
  EXPECT_EQ(s.y[0], 1);
  EXPECT_EQ(s.target[1], 0.2);
  EXPECT_EQ(s.feature_names, d.feature_names);
}

TEST(TrainTestSplitTest, SplitsAndPreservesRows) {
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.x.push_back({static_cast<double>(i)});
    d.y.push_back(i % 3);
  }
  Rng rng(5);
  auto split = TrainTestSplit(d, 0.25, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test.NumRows(), 25u);
  EXPECT_EQ(split->train.NumRows(), 75u);
  // All original rows present exactly once.
  std::multiset<double> seen;
  for (const auto& r : split->train.x) seen.insert(r[0]);
  for (const auto& r : split->test.x) seen.insert(r[0]);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0.0);
  EXPECT_EQ(*seen.rbegin(), 99.0);
}

TEST(TrainTestSplitTest, RejectsBadFraction) {
  Dataset d = MakeToy();
  Rng rng(1);
  EXPECT_FALSE(TrainTestSplit(d, 0.0, &rng).ok());
  EXPECT_FALSE(TrainTestSplit(d, 1.0, &rng).ok());
  Dataset tiny;
  tiny.x = {{1.0}};
  EXPECT_FALSE(TrainTestSplit(tiny, 0.5, &rng).ok());
}

TEST(FeatureBinnerTest, RejectsBadArgs) {
  Dataset d = MakeToy();
  EXPECT_FALSE(FeatureBinner::Fit(d, 1).ok());
  EXPECT_FALSE(FeatureBinner::Fit(d, 257).ok());
  Dataset empty;
  EXPECT_FALSE(FeatureBinner::Fit(empty, 16).ok());
}

TEST(FeatureBinnerTest, LowCardinalityGetsExactBins) {
  Dataset d;
  d.x = {{1.0}, {2.0}, {2.0}, {5.0}};
  auto binner = FeatureBinner::Fit(d, 16);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->NumBins(0), 3);  // values {1, 2, 5}
  EXPECT_EQ(binner->Bin(0, 1.0), 0);
  EXPECT_EQ(binner->Bin(0, 2.0), 1);
  EXPECT_EQ(binner->Bin(0, 5.0), 2);
  // Between-value queries resolve consistently with edges.
  EXPECT_EQ(binner->Bin(0, 1.4), 0);
  EXPECT_EQ(binner->Bin(0, 1.6), 1);
  EXPECT_EQ(binner->Bin(0, 100.0), 2);
  EXPECT_EQ(binner->Bin(0, -100.0), 0);
}

TEST(FeatureBinnerTest, ConstantFeatureSingleBin) {
  Dataset d;
  d.x = {{7.0}, {7.0}, {7.0}};
  auto binner = FeatureBinner::Fit(d, 8);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->NumBins(0), 1);
  EXPECT_EQ(binner->Bin(0, 7.0), 0);
  EXPECT_EQ(binner->Bin(0, 123.0), 0);
}

TEST(FeatureBinnerTest, QuantileBinsRoughlyBalanced) {
  Dataset d;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) d.x.push_back({rng.Normal(0.0, 1.0)});
  auto binner = FeatureBinner::Fit(d, 32);
  ASSERT_TRUE(binner.ok());
  EXPECT_GE(binner->NumBins(0), 30);
  auto cols = binner->BinColumns(d);
  std::vector<int> counts(static_cast<size_t>(binner->NumBins(0)), 0);
  for (uint8_t b : cols[0]) counts[b]++;
  // Quantile bins: every bin within ~3x of the expected uniform share.
  for (int c : counts) {
    EXPECT_GT(c, 0);
    EXPECT_LT(c, 3 * 5000 / 30);
  }
}

TEST(FeatureBinnerTest, BinEdgeConsistency) {
  // Bin(v) <= Bin(w) for v <= w, and UpperEdge separates bins.
  Dataset d;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) d.x.push_back({rng.Uniform(-5.0, 5.0)});
  auto binner = FeatureBinner::Fit(d, 16);
  ASSERT_TRUE(binner.ok());
  for (double v = -6.0; v < 6.0; v += 0.1) {
    EXPECT_LE(binner->Bin(0, v), binner->Bin(0, v + 0.1));
  }
  for (int b = 0; b + 1 < binner->NumBins(0); ++b) {
    const double edge = binner->UpperEdge(0, b);
    EXPECT_LE(binner->Bin(0, edge), b);
    EXPECT_GT(binner->Bin(0, edge + 1e-9), b);
  }
  EXPECT_TRUE(std::isinf(binner->UpperEdge(0, binner->NumBins(0) - 1)));
}

}  // namespace
}  // namespace ml
}  // namespace rvar
