#include "ml/tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace rvar {
namespace ml {
namespace {

// A dataset that is perfectly separable on feature 0 at x=0.5.
Dataset Separable(int n, Rng* rng) {
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const bool cls = rng->Bernoulli(0.5);
    d.x.push_back({cls ? rng->Uniform(0.6, 1.0) : rng->Uniform(0.0, 0.4),
                   rng->Uniform(0.0, 1.0)});
    d.y.push_back(cls ? 1 : 0);
  }
  return d;
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

TEST(ClassificationTreeTest, LearnsSeparableSplit) {
  Rng rng(1);
  Dataset d = Separable(400, &rng);
  auto binner = FeatureBinner::Fit(d, 64);
  ASSERT_TRUE(binner.ok());
  auto binned = BinnedDataset::Make(*binner, d);
  ASSERT_TRUE(binned.ok());
  TreeConfig config;
  std::vector<double> gain;
  Rng tree_rng(2);
  auto tree = TrainClassificationTree(*binned, d.y, 2, AllRows(400), config,
                                      &tree_rng, &gain);
  ASSERT_TRUE(tree.ok());
  // Perfect separation achievable with one split.
  for (size_t i = 0; i < d.NumRows(); ++i) {
    const auto& p = tree->PredictValue(d.x[i]);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_GT(p[static_cast<size_t>(d.y[i])], 0.99);
  }
  // Importance concentrated on feature 0.
  EXPECT_GT(gain[0], gain[1] * 10.0);
  EXPECT_EQ(tree->nodes[0].feature, 0);
  EXPECT_NEAR(tree->nodes[0].threshold, 0.5, 0.15);
}

TEST(ClassificationTreeTest, RespectsMaxDepth) {
  Rng rng(3);
  Dataset d;
  for (int i = 0; i < 500; ++i) {
    d.x.push_back({rng.Uniform(), rng.Uniform()});
    d.y.push_back(rng.Bernoulli(0.5) ? 1 : 0);  // pure noise
  }
  auto binner = FeatureBinner::Fit(d, 64);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  config.max_depth = 3;
  Rng tree_rng(4);
  auto tree = TrainClassificationTree(*binned, d.y, 2, AllRows(500), config,
                                      &tree_rng, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->Depth(), 3);
  EXPECT_LE(tree->NumLeaves(), 8);
}

TEST(ClassificationTreeTest, MinSamplesLeafHonored) {
  Rng rng(5);
  Dataset d = Separable(200, &rng);
  auto binner = FeatureBinner::Fit(d, 64);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  config.min_samples_leaf = 50;
  Rng tree_rng(6);
  auto tree = TrainClassificationTree(*binned, d.y, 2, AllRows(200), config,
                                      &tree_rng, nullptr);
  ASSERT_TRUE(tree.ok());
  for (const TreeNode& node : tree->nodes) {
    if (node.feature < 0) {
      EXPECT_GE(node.cover, 50.0);
    }
  }
}

TEST(ClassificationTreeTest, PureNodeBecomesLeaf) {
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    d.x.push_back({static_cast<double>(i)});
    d.y.push_back(0);  // single class observed, declared 2 classes
  }
  auto binner = FeatureBinner::Fit(d, 16);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  Rng rng(7);
  auto tree = TrainClassificationTree(*binned, d.y, 2, AllRows(50), config,
                                      &rng, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumLeaves(), 1);
  EXPECT_DOUBLE_EQ(tree->PredictValue({3.0})[0], 1.0);
}

TEST(ClassificationTreeTest, RejectsBadInput) {
  Rng rng(8);
  Dataset d = Separable(20, &rng);
  auto binner = FeatureBinner::Fit(d, 16);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  EXPECT_FALSE(
      TrainClassificationTree(*binned, d.y, 1, AllRows(20), config, &rng,
                              nullptr)
          .ok());
  EXPECT_FALSE(
      TrainClassificationTree(*binned, d.y, 2, {}, config, &rng, nullptr)
          .ok());
  EXPECT_FALSE(TrainClassificationTree(*binned, d.y, 2, {999}, config, &rng,
                                       nullptr)
                   .ok());
  std::vector<int> bad_labels = d.y;
  bad_labels[0] = 7;
  EXPECT_FALSE(TrainClassificationTree(*binned, bad_labels, 2, AllRows(20),
                                       config, &rng, nullptr)
                   .ok());
}

TEST(RegressionTreeTest, FitsStepFunction) {
  Rng rng(9);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    const double x0 = rng.Uniform();
    d.x.push_back({x0, rng.Uniform()});
    d.target.push_back(x0 < 0.5 ? 1.0 : 5.0);
  }
  auto binner = FeatureBinner::Fit(d, 64);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  Rng tree_rng(10);
  auto tree = TrainRegressionTree(*binned, d.target, AllRows(400), config,
                                  &tree_rng, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_NEAR(tree->PredictScalar({0.1, 0.5}), 1.0, 1e-9);
  EXPECT_NEAR(tree->PredictScalar({0.9, 0.5}), 5.0, 1e-9);
}

TEST(RegressionTreeTest, ApproximatesSmoothFunction) {
  Rng rng(11);
  Dataset d;
  for (int i = 0; i < 2000; ++i) {
    const double x0 = rng.Uniform(0.0, 3.0);
    d.x.push_back({x0});
    d.target.push_back(x0 * x0);
  }
  auto binner = FeatureBinner::Fit(d, 128);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  config.max_depth = 8;
  Rng tree_rng(12);
  auto tree = TrainRegressionTree(*binned, d.target, AllRows(2000), config,
                                  &tree_rng, nullptr);
  ASSERT_TRUE(tree.ok());
  double max_err = 0.0;
  for (double x0 = 0.1; x0 < 2.9; x0 += 0.05) {
    max_err = std::max(max_err,
                       std::fabs(tree->PredictScalar({x0}) - x0 * x0));
  }
  EXPECT_LT(max_err, 0.5);
}

TEST(RegressionTreeTest, ConstantTargetSingleLeaf) {
  Dataset d;
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    d.x.push_back({rng.Uniform()});
    d.target.push_back(3.5);
  }
  auto binner = FeatureBinner::Fit(d, 16);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  auto tree = TrainRegressionTree(*binned, d.target, AllRows(100), config,
                                  &rng, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumLeaves(), 1);
  EXPECT_DOUBLE_EQ(tree->PredictScalar({0.3}), 3.5);
}

TEST(TreeStructTest, CoverAndValuesOnInternalNodes) {
  Rng rng(14);
  Dataset d = Separable(300, &rng);
  auto binner = FeatureBinner::Fit(d, 64);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  auto tree = TrainClassificationTree(*binned, d.y, 2, AllRows(300), config,
                                      &rng, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(tree->nodes[0].cover, 300.0);
  for (const TreeNode& n : tree->nodes) {
    ASSERT_EQ(n.value.size(), 2u);
    EXPECT_NEAR(n.value[0] + n.value[1], 1.0, 1e-9);
    if (n.feature >= 0) {
      // Children covers sum to the parent cover.
      EXPECT_DOUBLE_EQ(
          tree->nodes[static_cast<size_t>(n.left)].cover +
              tree->nodes[static_cast<size_t>(n.right)].cover,
          n.cover);
    }
  }
}

TEST(TreeStructTest, BootstrapDuplicatesAccepted) {
  Rng rng(15);
  Dataset d = Separable(50, &rng);
  auto binner = FeatureBinner::Fit(d, 16);
  auto binned = BinnedDataset::Make(*binner, d);
  TreeConfig config;
  std::vector<size_t> idx(120, 0);
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i % 50;
  auto tree = TrainClassificationTree(*binned, d.y, 2, idx, config, &rng,
                                      nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(tree->nodes[0].cover, 120.0);
}

}  // namespace
}  // namespace ml
}  // namespace rvar
