// Scalar-vs-SIMD equivalence matrix for the dispatched kernels
// (DESIGN.md §14). Every dispatch row must produce byte-identical
// results: the histogram kernel because its four-lane fixed-order
// reduction is the defined semantics at every level, the others because
// they are elementwise or exact-predicate computations. The suite drives
// each row of kSimdKernels directly (no environment dependence) and then
// proves the end-to-end guarantee: serialized models trained at every
// supported level are byte-for-byte identical.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"
#include "io/serialize.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/simd_kernels.h"

namespace rvar {
namespace ml {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Restores the process-wide SIMD level on scope exit so a failing test
// cannot leak a pinned level into later tests.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(ActiveSimdLevel()) {}
  ~SimdLevelGuard() { SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels;
  for (int l = 0; l <= static_cast<int>(MaxSupportedSimdLevel()); ++l) {
    levels.push_back(static_cast<SimdLevel>(l));
  }
  return levels;
}

TEST(SimdDispatchTest, LevelParsingRoundTrips) {
  for (SimdLevel l : {SimdLevel::kScalar, SimdLevel::kSse42,
                      SimdLevel::kAvx2}) {
    const Result<SimdLevel> parsed = ParseSimdLevel(SimdLevelName(l));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, l);
  }
  EXPECT_FALSE(ParseSimdLevel("avx512").ok());
  EXPECT_FALSE(ParseSimdLevel("").ok());
}

TEST(SimdDispatchTest, SetSimdLevelClampsToSupport) {
  SimdLevelGuard guard;
  const SimdLevel max = MaxSupportedSimdLevel();
  EXPECT_EQ(SetSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_LE(static_cast<int>(SetSimdLevel(SimdLevel::kAvx2)),
            static_cast<int>(max));
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()), static_cast<int>(max));
}

// The histogram contract, written as differently-shaped code than any
// dispatch row: four explicit partial histograms filled round-robin,
// reduced per cell as ((l0 + l1) + l2) + l3. Every row must match this
// bit-for-bit — including the scalar reference, which is NOT a plain
// sequential sum.
std::vector<double> ReferenceLaneHistogram(const std::vector<size_t>& idx,
                                           const std::vector<uint8_t>& col,
                                           const std::vector<double>& gh,
                                           size_t nb) {
  std::vector<std::vector<double>> lanes(
      kHistLanes, std::vector<double>(kHistCellStride * nb, 0.0));
  for (size_t i = 0; i < idx.size(); ++i) {
    const size_t row = idx[i];
    double* cell =
        lanes[i % kHistLanes].data() + kHistCellStride * col[row];
    cell[0] += gh[2 * row];
    cell[1] += gh[2 * row + 1];
    cell[2] += 1.0;
  }
  std::vector<double> region(kHistCellStride * nb);
  for (size_t c = 0; c < region.size(); ++c) {
    region[c] = ((lanes[0][c] + lanes[1][c]) + lanes[2][c]) + lanes[3][c];
  }
  return region;
}

struct HistFixture {
  std::vector<size_t> idx;
  std::vector<uint8_t> col;
  std::vector<double> gh;
};

// Gradients mix tiny and huge magnitudes so any reordering of the
// additions would change bits; the bin assignment optionally piles every
// sample into one bin (the worst case for reduction-order drift).
HistFixture MakeHistFixture(size_t n, size_t nb, bool one_bin,
                            uint64_t seed) {
  Rng rng(seed);
  HistFixture fx;
  fx.idx = rng.Permutation(n);
  fx.col.resize(n);
  fx.gh.resize(2 * n);
  for (size_t r = 0; r < n; ++r) {
    fx.col[r] = one_bin ? static_cast<uint8_t>(nb / 2)
                        : static_cast<uint8_t>(static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(nb) - 1)));
    const double scale = (r % 7 == 0) ? 1e12 : ((r % 3 == 0) ? 1e-9 : 1.0);
    fx.gh[2 * r] = (rng.Uniform() - 0.5) * scale;
    fx.gh[2 * r + 1] = rng.Uniform() * scale;
  }
  return fx;
}

TEST(SimdHistogramTest, FixedOrderReductionMatchesContract) {
  for (const size_t nb : {2u, 7u, 64u, 256u}) {
    for (const bool one_bin : {false, true}) {
      const HistFixture fx = MakeHistFixture(5000, nb, one_bin, 17 + nb);
      const std::vector<double> want =
          ReferenceLaneHistogram(fx.idx, fx.col, fx.gh, nb);
      std::vector<double> scratch(HistScratchDoubles(nb));
      for (SimdLevel level : SupportedLevels()) {
        std::vector<double> region(kHistCellStride * nb,
                                   std::numeric_limits<double>::lowest());
        kSimdKernels[static_cast<int>(level)].hist_accumulate(
            fx.idx.data(), fx.idx.size(), fx.col.data(), fx.gh.data(), nb,
            region.data(), scratch.data());
        ASSERT_EQ(0, std::memcmp(region.data(), want.data(),
                                 region.size() * sizeof(double)))
            << "level=" << SimdLevelName(level) << " nb=" << nb
            << " one_bin=" << one_bin;
      }
    }
  }
}

// Tail handling: every n mod 4 residue must keep the lane mapping
// (sample i -> lane i mod 4), not restart lanes at the tail.
TEST(SimdHistogramTest, TailLanesKeepTheirMapping) {
  for (size_t n = 1; n <= 9; ++n) {
    const HistFixture fx = MakeHistFixture(n, 5, false, 100 + n);
    const std::vector<double> want =
        ReferenceLaneHistogram(fx.idx, fx.col, fx.gh, 5);
    std::vector<double> scratch(HistScratchDoubles(5));
    for (SimdLevel level : SupportedLevels()) {
      std::vector<double> region(kHistCellStride * 5, -1.0);
      kSimdKernels[static_cast<int>(level)].hist_accumulate(
          fx.idx.data(), n, fx.col.data(), fx.gh.data(), 5, region.data(),
          scratch.data());
      ASSERT_EQ(0, std::memcmp(region.data(), want.data(),
                               region.size() * sizeof(double)))
          << "level=" << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdSubSpanTest, BitIdenticalAcrossLevels) {
  Rng rng(23);
  for (const size_t n : {1u, 2u, 3u, 4u, 7u, 256u, 1000u}) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = (rng.Uniform() - 0.5) * 1e10;
      b[i] = (rng.Uniform() - 0.5) * ((i % 2) ? 1e-8 : 1e10);
    }
    std::vector<double> want = a;
    kSimdKernels[0].sub_span(want.data(), b.data(), n);
    for (SimdLevel level : SupportedLevels()) {
      std::vector<double> got = a;
      kSimdKernels[static_cast<int>(level)].sub_span(got.data(), b.data(), n);
      ASSERT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(double)))
          << "level=" << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdLowerBoundTest, AdversarialValuesMatchStdLowerBound) {
  // Edges with boundary-hostile spacing, including equal-magnitude
  // opposite signs, zero and subnormals.
  const std::vector<double> edges = {-1e30, -5.0, -0.0, 5e-324, 1e-9,
                                     1.0,   1.0 + 1e-15, 7.5, 1e30};
  std::vector<double> values = {kNaN, -kInf, kInf, 0.0, -0.0};
  for (double e : edges) {
    values.push_back(e);  // exact boundary values
    values.push_back(std::nextafter(e, -kInf));
    values.push_back(std::nextafter(e, kInf));
  }
  Rng rng(31);
  for (int i = 0; i < 64; ++i) {
    values.push_back((rng.Uniform() - 0.5) * 2e31);
  }
  for (size_t ne = 1; ne <= edges.size(); ++ne) {
    for (SimdLevel level : SupportedLevels()) {
      std::vector<uint8_t> got(values.size(), 0xAB);
      kSimdKernels[static_cast<int>(level)].lower_bound_u8(
          edges.data(), ne, values.data(), values.size(), got.data());
      for (size_t i = 0; i < values.size(); ++i) {
        const auto want = static_cast<uint8_t>(
            std::lower_bound(edges.begin(), edges.begin() + ne, values[i]) -
            edges.begin());
        ASSERT_EQ(got[i], want)
            << "level=" << SimdLevelName(level) << " ne=" << ne
            << " value=" << values[i];
      }
    }
  }
}

Dataset MakeTrainingData(size_t rows, size_t nf, int classes,
                         uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.x.resize(rows);
  d.y.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    d.x[i].resize(nf);
    for (size_t f = 0; f < nf; ++f) {
      d.x[i][f] = rng.Uniform() * 10.0 - 5.0;
    }
    const double s = d.x[i][0] + 0.5 * d.x[i][nf / 2] + rng.Uniform();
    d.y[i] = std::min(classes - 1, std::max(0, static_cast<int>(s + 2.0)));
  }
  return d;
}

// Bin()/BinColumns agreement on adversarial inputs: exact bin-boundary
// values, their ulp neighbours, NaN, +/-inf, and an all-identical column
// (zero edges). BinColumns routes through the dispatched kernel, Bin
// through std::lower_bound; they must agree at every level, and the
// columns must be identical across levels.
TEST(SimdBinColumnsTest, AdversarialInputsAgreeWithBinAtEveryLevel) {
  SimdLevelGuard guard;
  const Dataset train = MakeTrainingData(400, 6, 3, 7);
  const Result<FeatureBinner> binner = FeatureBinner::Fit(train, 64);
  ASSERT_TRUE(binner.ok());

  // Adversarial probe set; built per feature from that feature's own
  // edges. Column 5 of `probe` is all-identical (and feature 5 of a
  // constant dataset would have zero edges; here it exercises identical
  // values landing in one bin).
  Dataset probe;
  const size_t nf = 6;
  std::vector<std::vector<double>> per_feature(nf);
  for (size_t f = 0; f < nf; ++f) {
    std::vector<double>& vals = per_feature[f];
    vals = {kNaN, -kInf, kInf, 0.0, -0.0, 3.25};
    for (int b = 0; b < binner->NumBins(f) - 1; ++b) {
      const double e = binner->UpperEdge(f, b);
      vals.push_back(e);
      vals.push_back(std::nextafter(e, -kInf));
      vals.push_back(std::nextafter(e, kInf));
    }
  }
  size_t rows = 0;
  for (const auto& v : per_feature) rows = std::max(rows, v.size());
  probe.x.assign(rows, std::vector<double>(nf, 0.0));
  for (size_t i = 0; i < rows; ++i) {
    for (size_t f = 0; f < nf; ++f) {
      if (f == 5) continue;  // all-identical column
      probe.x[i][f] = per_feature[f][i % per_feature[f].size()];
    }
  }

  std::vector<std::vector<std::vector<uint8_t>>> per_level;
  for (SimdLevel level : SupportedLevels()) {
    ASSERT_EQ(SetSimdLevel(level), level);
    per_level.push_back(binner->BinColumns(probe));
    const auto& cols = per_level.back();
    for (size_t f = 0; f < nf; ++f) {
      for (size_t i = 0; i < rows; ++i) {
        ASSERT_EQ(cols[f][i], binner->Bin(f, probe.x[i][f]))
            << "level=" << SimdLevelName(level) << " f=" << f << " i=" << i
            << " v=" << probe.x[i][f];
      }
    }
  }
  for (size_t l = 1; l < per_level.size(); ++l) {
    ASSERT_EQ(per_level[l], per_level[0]);
  }
}

// The end-to-end guarantee the CI simd-equivalence job enforces across
// builds, proven here across dispatch levels in one process: training the
// same data at every supported level serializes to byte-identical models.
TEST(SimdModelEquivalenceTest, SerializedModelsByteIdenticalAcrossLevels) {
  SimdLevelGuard guard;
  const Dataset train = MakeTrainingData(900, 10, 3, 99);
  GbdtConfig config;
  config.num_rounds = 12;
  config.max_leaves = 15;
  config.feature_fraction = 0.8;
  config.bagging_fraction = 0.7;

  std::vector<std::string> encoded;
  for (SimdLevel level : SupportedLevels()) {
    ASSERT_EQ(SetSimdLevel(level), level);
    GbdtClassifier model(config);
    ASSERT_TRUE(model.Fit(train).ok());
    encoded.push_back(io::EncodeGbdtClassifier(model));
  }
  ASSERT_GE(encoded.size(), 1u);
  for (size_t l = 1; l < encoded.size(); ++l) {
    EXPECT_EQ(encoded[l], encoded[0])
        << "model trained at " << SimdLevelName(SupportedLevels()[l])
        << " differs from scalar";
  }
}

// Batch prediction must be bit-identical to the per-row path at every
// level — same traversals, same per-(row, class) accumulation order.
TEST(SimdModelEquivalenceTest, BatchPredictBitIdenticalToPerRow) {
  SimdLevelGuard guard;
  const Dataset train = MakeTrainingData(600, 8, 3, 41);
  const Dataset test = MakeTrainingData(257, 8, 3, 42);  // odd row count
  GbdtConfig config;
  config.num_rounds = 8;
  GbdtClassifier model(config);
  ASSERT_TRUE(model.Fit(train).ok());

  std::vector<double> want_raw;
  {
    std::vector<double> row_out;
    for (const auto& row : test.x) {
      model.PredictRawInto(row, &row_out);
      want_raw.insert(want_raw.end(), row_out.begin(), row_out.end());
    }
  }
  for (SimdLevel level : SupportedLevels()) {
    ASSERT_EQ(SetSimdLevel(level), level);
    std::vector<double> raw, proba;
    model.PredictRawBatchInto(test.x, &raw);
    ASSERT_EQ(raw.size(), want_raw.size());
    ASSERT_EQ(0, std::memcmp(raw.data(), want_raw.data(),
                             raw.size() * sizeof(double)))
        << "level=" << SimdLevelName(level);
    model.PredictProbaBatchInto(test.x, &proba);
    std::vector<double> row_proba;
    for (size_t i = 0; i < test.x.size(); ++i) {
      model.PredictProbaInto(test.x[i], &row_proba);
      ASSERT_EQ(0, std::memcmp(proba.data() + i * row_proba.size(),
                               row_proba.data(),
                               row_proba.size() * sizeof(double)))
          << "level=" << SimdLevelName(level) << " row=" << i;
    }
  }
}

}  // namespace
}  // namespace ml
}  // namespace rvar
