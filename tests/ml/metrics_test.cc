#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/feature_select.h"

namespace rvar {
namespace ml {
namespace {

TEST(AccuracyTest, Basics) {
  auto full = Accuracy({0, 1, 2}, {0, 1, 2});
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(*full, 1.0);
  auto half = Accuracy({0, 1, 0, 1}, {0, 0, 0, 0});
  ASSERT_TRUE(half.ok());
  EXPECT_DOUBLE_EQ(*half, 0.5);
  EXPECT_FALSE(Accuracy({0}, {0, 1}).ok());
  EXPECT_FALSE(Accuracy({}, {}).ok());
}

TEST(ConfusionMatrixTest, RowNormalization) {
  //          predicted
  // actual 0: 2 correct, 1 as class 1
  // actual 1: 1 correct
  auto cm = BuildConfusionMatrix({0, 0, 0, 1}, {0, 0, 1, 1}, 2);
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->counts[0][0], 2);
  EXPECT_EQ(cm->counts[0][1], 1);
  EXPECT_EQ(cm->counts[1][1], 1);
  EXPECT_NEAR(cm->fractions[0][0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm->fractions[0][1], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm->fractions[1][1], 1.0);
  EXPECT_DOUBLE_EQ(cm->DiagonalMass(), 0.75);
  EXPECT_FALSE(cm->ToString().empty());
}

TEST(ConfusionMatrixTest, EmptyClassRowStaysZero) {
  auto cm = BuildConfusionMatrix({0, 0}, {0, 0}, 3);
  ASSERT_TRUE(cm.ok());
  for (int p = 0; p < 3; ++p) EXPECT_EQ(cm->fractions[2][static_cast<size_t>(p)], 0.0);
}

TEST(ConfusionMatrixTest, RejectsOutOfRangeLabels) {
  EXPECT_FALSE(BuildConfusionMatrix({0, 5}, {0, 1}, 2).ok());
  EXPECT_FALSE(BuildConfusionMatrix({0, 1}, {0, -1}, 2).ok());
  EXPECT_FALSE(BuildConfusionMatrix({0}, {0}, 1).ok());
}

TEST(ClassificationReportTest, PrecisionRecallF1) {
  // class 0: tp=2 fp=1 fn=0 -> p=2/3, r=1
  // class 1: tp=1 fp=0 fn=1 -> p=1, r=1/2
  auto rep = ClassificationReport({0, 0, 1, 1}, {0, 0, 0, 1}, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_NEAR((*rep)[0].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ((*rep)[0].recall, 1.0);
  EXPECT_DOUBLE_EQ((*rep)[1].precision, 1.0);
  EXPECT_DOUBLE_EQ((*rep)[1].recall, 0.5);
  EXPECT_NEAR((*rep)[1].f1, 2.0 / 3.0, 1e-12);
  EXPECT_EQ((*rep)[0].support, 2);
}

TEST(RegressionMetricsTest, MaeAndRmse) {
  auto mae = MeanAbsoluteError({1.0, 2.0, 3.0}, {2.0, 2.0, 1.0});
  ASSERT_TRUE(mae.ok());
  EXPECT_DOUBLE_EQ(*mae, 1.0);
  auto rmse = RootMeanSquaredError({0.0, 0.0}, {3.0, 4.0});
  ASSERT_TRUE(rmse.ok());
  EXPECT_NEAR(*rmse, std::sqrt(12.5), 1e-12);
  EXPECT_FALSE(MeanAbsoluteError({1.0}, {}).ok());
}

TEST(LogLossTest, PerfectAndUncertain) {
  auto perfect = LogLoss({0, 1}, {{1.0, 0.0}, {0.0, 1.0}});
  ASSERT_TRUE(perfect.ok());
  EXPECT_NEAR(*perfect, 0.0, 1e-9);
  auto uniform = LogLoss({0, 1}, {{0.5, 0.5}, {0.5, 0.5}});
  ASSERT_TRUE(uniform.ok());
  EXPECT_NEAR(*uniform, std::log(2.0), 1e-12);
  EXPECT_FALSE(LogLoss({3}, {{0.5, 0.5}}).ok());
}

TEST(PearsonTest, KnownValues) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  std::vector<double> constant = {5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(PearsonCorrelation(a, constant), 0.0);
}

TEST(FeatureSelectTest, DropsCorrelatedKeepsImportant) {
  Rng rng(61);
  Dataset d;
  d.feature_names = {"signal", "copy_of_signal", "independent"};
  for (int i = 0; i < 500; ++i) {
    const double s = rng.Normal(0.0, 1.0);
    d.x.push_back({s, s * 2.0 + rng.Normal(0.0, 0.01), rng.Normal(0.0, 1.0)});
  }
  // Importance favors feature 0 over its near-copy feature 1.
  auto sel = SelectUncorrelatedFeatures(d, {0.5, 0.3, 0.2}, 0.9);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->kept, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(sel->dropped, (std::vector<size_t>{1}));
}

TEST(FeatureSelectTest, ImportanceOrderDeterminesSurvivor) {
  Rng rng(62);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double s = rng.Normal(0.0, 1.0);
    d.x.push_back({s, s});
  }
  auto sel = SelectUncorrelatedFeatures(d, {0.1, 0.9}, 0.95);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->kept, (std::vector<size_t>{1}));
}

TEST(FeatureSelectTest, NoImportanceFallsBackToInputOrder) {
  Rng rng(63);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double s = rng.Normal(0.0, 1.0);
    d.x.push_back({s, s});
  }
  auto sel = SelectUncorrelatedFeatures(d, {}, 0.95);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->kept, (std::vector<size_t>{0}));
}

TEST(FeatureSelectTest, RejectsBadArgs) {
  Dataset d;
  d.x = {{1.0, 2.0}};
  EXPECT_FALSE(SelectUncorrelatedFeatures(d, {0.1}, 0.9).ok());
  EXPECT_FALSE(SelectUncorrelatedFeatures(d, {}, 0.0).ok());
  EXPECT_FALSE(SelectUncorrelatedFeatures(d, {}, 1.5).ok());
  Dataset empty;
  EXPECT_FALSE(SelectUncorrelatedFeatures(empty, {}, 0.9).ok());
}

TEST(ProjectFeaturesTest, KeepsSelectedColumnsAndLabels) {
  Dataset d;
  d.feature_names = {"a", "b", "c"};
  d.x = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  d.y = {0, 1};
  Dataset p = ProjectFeatures(d, {2, 0});
  EXPECT_EQ(p.feature_names, (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(p.x[0], (std::vector<double>{3.0, 1.0}));
  EXPECT_EQ(p.x[1], (std::vector<double>{6.0, 4.0}));
  EXPECT_EQ(p.y, d.y);
}

}  // namespace
}  // namespace ml
}  // namespace rvar
