#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/descriptive.h"

namespace rvar {
namespace sim {
namespace {

Cluster MakeDefaultCluster(uint64_t seed = 1) {
  ClusterConfig config;
  config.seed = seed;
  auto c = Cluster::Make(SkuCatalog::Default(), config);
  EXPECT_TRUE(c.ok());
  return *c;
}

TEST(SkuCatalogTest, DefaultIsWellFormed) {
  SkuCatalog catalog = SkuCatalog::Default();
  EXPECT_EQ(catalog.NumSkus(), 7u);
  EXPECT_GT(catalog.TotalMachines(), 1000);
  EXPECT_GT(catalog.TotalTokens(), 10000);
  // Newer generations are faster.
  EXPECT_LT(catalog.sku(0).speed, catalog.sku(catalog.NumSkus() - 1).speed);
  EXPECT_EQ(catalog.IndexOf("Gen5.2"), 5);
  EXPECT_EQ(catalog.IndexOf("nope"), -1);
}

TEST(SkuCatalogTest, MakeRejectsBadSpecs) {
  EXPECT_FALSE(SkuCatalog::Make({}).ok());
  EXPECT_FALSE(SkuCatalog::Make({{"A", 0.0, 10, 8}}).ok());
  EXPECT_FALSE(SkuCatalog::Make({{"A", 1.0, 0, 8}}).ok());
  EXPECT_FALSE(
      SkuCatalog::Make({{"A", 1.0, 10, 8}, {"A", 1.2, 10, 8}}).ok());
}

TEST(ClusterTest, MakeRejectsBadConfig) {
  SkuCatalog catalog = SkuCatalog::Default();
  ClusterConfig config;
  config.mean_utilization = 0.0;
  EXPECT_FALSE(Cluster::Make(catalog, config).ok());
  config = {};
  config.spare_exposure = 1.5;
  EXPECT_FALSE(Cluster::Make(catalog, config).ok());
  config = {};
  config.noise_period_seconds = 0.0;
  EXPECT_FALSE(Cluster::Make(catalog, config).ok());
}

TEST(ClusterTest, FleetMatchesCatalog) {
  Cluster cluster = MakeDefaultCluster();
  EXPECT_EQ(static_cast<int>(cluster.machines().size()),
            cluster.catalog().TotalMachines());
  for (size_t s = 0; s < cluster.catalog().NumSkus(); ++s) {
    EXPECT_EQ(static_cast<int>(cluster.MachinesOfSku(static_cast<int>(s)).size()),
              cluster.catalog().sku(s).machine_count);
  }
}

TEST(ClusterTest, DiurnalCycleHasPeakAndTrough) {
  Cluster cluster = MakeDefaultCluster();
  double lo = 1.0, hi = 0.0;
  for (double t = 0.0; t < 86400.0; t += 3600.0) {
    const double u = cluster.BaselineUtilization(t);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_GT(hi - lo, 0.2);  // amplitude 0.15 => swing ~0.3
  // 24h periodicity.
  EXPECT_NEAR(cluster.BaselineUtilization(1000.0),
              cluster.BaselineUtilization(1000.0 + 86400.0), 1e-9);
}

TEST(ClusterTest, MachineUtilizationDeterministicAndBounded) {
  Cluster cluster = MakeDefaultCluster();
  for (int id : {0, 100, 500}) {
    for (double t : {0.0, 5000.0, 80000.0}) {
      const double u1 = cluster.MachineUtilization(id, t);
      const double u2 = cluster.MachineUtilization(id, t);
      EXPECT_EQ(u1, u2);
      EXPECT_GE(u1, 0.02);
      EXPECT_LE(u1, 0.98);
    }
  }
}

TEST(ClusterTest, LoadImbalanceSpreadsUtilization) {
  ClusterConfig balanced;
  balanced.load_imbalance = 0.0;
  balanced.noise_amplitude = 0.0;
  auto flat = Cluster::Make(SkuCatalog::Default(), balanced);
  ASSERT_TRUE(flat.ok());
  ClusterConfig skewed = balanced;
  skewed.load_imbalance = 0.15;
  auto bumpy = Cluster::Make(SkuCatalog::Default(), skewed);
  ASSERT_TRUE(bumpy.ok());

  double flat_std = 0.0, bumpy_std = 0.0;
  flat->SkuUtilization(0, 1000.0, nullptr, &flat_std);
  bumpy->SkuUtilization(0, 1000.0, nullptr, &bumpy_std);
  EXPECT_NEAR(flat_std, 0.0, 1e-9);
  EXPECT_GT(bumpy_std, 0.05);
}

TEST(ClusterTest, SpareAvailabilityAntiCorrelatedWithLoad) {
  Cluster cluster = MakeDefaultCluster();
  // Collect (baseline load, spare) over a day; correlation must be < 0.
  std::vector<double> load, spare;
  for (double t = 0.0; t < 86400.0; t += 1800.0) {
    load.push_back(cluster.BaselineUtilization(t));
    spare.push_back(cluster.SpareAvailability(t));
  }
  double lm = Mean(load), sm = Mean(spare), cov = 0.0;
  for (size_t i = 0; i < load.size(); ++i) {
    cov += (load[i] - lm) * (spare[i] - sm);
  }
  EXPECT_LT(cov, 0.0);
  for (double s : spare) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(ClusterTest, PlacementPrefersIdleMachines) {
  Cluster cluster = MakeDefaultCluster();
  Rng rng(11);
  const std::vector<int> greedy =
      cluster.SamplePlacement(400, 1000.0, 3.0, -1, 0.0, &rng);
  const std::vector<int> random =
      cluster.SamplePlacement(400, 1000.0, 0.0, -1, 0.0, &rng);
  RunningStats g, r;
  for (int id : greedy) g.Add(cluster.MachineUtilization(id, 1000.0));
  for (int id : random) r.Add(cluster.MachineUtilization(id, 1000.0));
  EXPECT_LT(g.mean(), r.mean());
}

TEST(ClusterTest, PlacementHonorsSkuPreference) {
  Cluster cluster = MakeDefaultCluster();
  Rng rng(12);
  const int sku = cluster.catalog().IndexOf("Gen6");
  const std::vector<int> placed =
      cluster.SamplePlacement(300, 0.0, 1.0, sku, 1.0, &rng);
  for (int id : placed) {
    EXPECT_EQ(cluster.machines()[static_cast<size_t>(id)].sku_index, sku);
  }
  // With preference 0, machines come from many SKUs.
  const std::vector<int> spread =
      cluster.SamplePlacement(300, 0.0, 1.0, sku, 0.0, &rng);
  std::set<int> skus;
  for (int id : spread) {
    skus.insert(cluster.machines()[static_cast<size_t>(id)].sku_index);
  }
  EXPECT_GT(skus.size(), 3u);
}

TEST(MachineNoiseTest, DeterministicAndBounded) {
  for (int m = 0; m < 50; ++m) {
    for (int64_t b = 0; b < 20; ++b) {
      const double n1 = MachineNoise(77, m, b);
      EXPECT_EQ(n1, MachineNoise(77, m, b));
      EXPECT_GE(n1, -1.0);
      EXPECT_LE(n1, 1.0);
    }
  }
  // Different machines / buckets give different noise.
  EXPECT_NE(MachineNoise(77, 1, 5), MachineNoise(77, 2, 5));
  EXPECT_NE(MachineNoise(77, 1, 5), MachineNoise(77, 1, 6));
}

}  // namespace
}  // namespace sim
}  // namespace rvar
