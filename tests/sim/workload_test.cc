#include "sim/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/plan.h"
#include "stats/descriptive.h"

namespace rvar {
namespace sim {
namespace {

TEST(PlanTest, GeneratedPlansAreWellFormed) {
  Rng rng(1);
  PlanGeneratorConfig config;
  for (int trial = 0; trial < 50; ++trial) {
    JobPlan plan = GeneratePlan(config, &rng);
    ASSERT_GE(static_cast<int>(plan.nodes.size()), config.min_operators);
    ASSERT_LE(static_cast<int>(plan.nodes.size()), config.max_operators + 1);
    // Topological: inputs always precede.
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
      for (int in : plan.nodes[i].inputs) {
        EXPECT_LT(in, static_cast<int>(i));
        EXPECT_GE(in, 0);
      }
    }
    // First node is an Extract, last is the Output sink.
    EXPECT_EQ(plan.nodes.front().op, OperatorType::kExtract);
    EXPECT_EQ(plan.nodes.back().op, OperatorType::kOutput);
    EXPECT_GE(plan.num_stages, 1);
    EXPECT_GT(plan.estimated_cardinality, 0.0);
    EXPECT_GT(plan.estimated_cost, 0.0);
    // Stage ids are consistent with DAG order.
    for (const PlanNode& n : plan.nodes) {
      for (int in : n.inputs) {
        EXPECT_LE(plan.nodes[static_cast<size_t>(in)].stage, n.stage);
      }
      EXPECT_LT(n.stage, plan.num_stages);
    }
  }
}

TEST(PlanTest, OperatorCountsSumToNodes) {
  Rng rng(2);
  JobPlan plan = GeneratePlan({}, &rng);
  const std::vector<int> counts = plan.OperatorCounts();
  ASSERT_EQ(counts.size(), static_cast<size_t>(kNumOperatorTypes));
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, static_cast<int>(plan.nodes.size()));
}

TEST(PlanTest, SignatureIsStructural) {
  Rng rng(3);
  JobPlan plan = GeneratePlan({}, &rng);
  JobPlan copy = plan;
  // Estimates are not part of the signature.
  copy.estimated_cardinality *= 10.0;
  copy.estimated_cost *= 10.0;
  EXPECT_EQ(plan.Signature(), copy.Signature());
  // Changing an operator changes the signature.
  for (PlanNode& n : copy.nodes) {
    if (n.op == OperatorType::kFilter) {
      n.op = OperatorType::kProject;
      break;
    }
  }
  // (Only guaranteed to differ if a Filter existed; find a robust mutation.)
  copy.nodes[0].op = OperatorType::kUdf;
  EXPECT_NE(plan.Signature(), copy.Signature());
}

TEST(PlanTest, DistinctPlansGetDistinctSignatures) {
  Rng rng(4);
  std::set<uint64_t> signatures;
  for (int i = 0; i < 200; ++i) {
    signatures.insert(GeneratePlan({}, &rng).Signature());
  }
  // Random plans should essentially never collide.
  EXPECT_GT(signatures.size(), 195u);
}

TEST(PlanTest, OperatorNamesAndCosts) {
  for (int i = 0; i < kNumOperatorTypes; ++i) {
    const OperatorType op = static_cast<OperatorType>(i);
    EXPECT_STRNE(OperatorTypeName(op), "Unknown");
    EXPECT_GT(OperatorCostFactor(op), 0.0);
  }
}

TEST(WorkloadTest, GroupsHavePlausibleProperties) {
  WorkloadConfig config;
  config.num_groups = 100;
  WorkloadGenerator generator(config);
  const auto groups = generator.GenerateGroups(7);
  ASSERT_EQ(groups.size(), 100u);
  std::set<uint64_t> signatures;
  for (const JobGroupSpec& g : groups) {
    EXPECT_GT(g.base_input_gb, 0.0);
    EXPECT_GT(g.allocated_tokens, 0);
    // Spare-hungry groups are deliberately under-allocated; everyone else
    // over-allocates.
    if (g.archetype == JobArchetype::kSpareHungry) {
      EXPECT_LT(g.overallocation, 1.0);
    } else {
      EXPECT_GE(g.overallocation, 1.0);
    }
    EXPECT_GE(g.period_seconds, config.min_period_seconds);
    EXPECT_LE(g.period_seconds, config.max_period_seconds * 1.001);
    EXPECT_GE(g.rare_event_prob, 0.0);
    EXPECT_LE(g.rare_event_prob, 0.3);
    EXPECT_GT(g.contention_sensitivity, 0.0);
    EXPECT_LT(g.preferred_sku, 7);
    signatures.insert(g.plan.Signature());
  }
  // Groups are distinct templates.
  EXPECT_GT(signatures.size(), 95u);
}

TEST(WorkloadTest, InstancesSortedAndWithinHorizon) {
  WorkloadConfig config;
  config.num_groups = 20;
  config.interval_days = 3.0;
  WorkloadGenerator generator(config);
  const auto groups = generator.GenerateGroups(7);
  const auto instances = generator.GenerateInstances(groups);
  ASSERT_FALSE(instances.empty());
  for (size_t i = 1; i < instances.size(); ++i) {
    EXPECT_LE(instances[i - 1].submit_time, instances[i].submit_time);
  }
  for (const JobInstanceSpec& inst : instances) {
    EXPECT_GE(inst.submit_time, 0.0);
    EXPECT_LT(inst.submit_time, 3.0 * 86400.0);
    EXPECT_GT(inst.input_gb, 0.0);
    EXPECT_GE(inst.group_id, 0);
    EXPECT_LT(inst.group_id, 20);
  }
}

TEST(WorkloadTest, FrequentGroupsRecurMore) {
  WorkloadConfig config;
  config.num_groups = 60;
  config.interval_days = 10.0;
  WorkloadGenerator generator(config);
  const auto groups = generator.GenerateGroups(7);
  const auto instances = generator.GenerateInstances(groups);
  std::vector<int> counts(groups.size(), 0);
  for (const auto& inst : instances) {
    counts[static_cast<size_t>(inst.group_id)]++;
  }
  for (const JobGroupSpec& g : groups) {
    const double expected = 10.0 * 86400.0 / g.period_seconds;
    const int got = counts[static_cast<size_t>(g.group_id)];
    EXPECT_GT(got, expected * 0.4) << g.group_id;
    EXPECT_LT(got, expected * 2.5 + 5) << g.group_id;
  }
}

TEST(WorkloadTest, InputDriftMatchesSigma) {
  WorkloadConfig config;
  config.num_groups = 200;
  config.interval_days = 8.0;
  WorkloadGenerator generator(config);
  auto groups = generator.GenerateGroups(7);
  // Force one highly-drifting group and one stable group.
  groups[0].input_drift_sigma = 1.2;
  groups[0].period_seconds = 1000.0;
  groups[1].input_drift_sigma = 0.05;
  groups[1].period_seconds = 1000.0;
  const auto instances = generator.GenerateInstances(groups);
  std::vector<double> drifty, stable;
  for (const auto& inst : instances) {
    if (inst.group_id == 0) drifty.push_back(inst.input_gb);
    if (inst.group_id == 1) stable.push_back(inst.input_gb);
  }
  ASSERT_GT(drifty.size(), 100u);
  ASSERT_GT(stable.size(), 100u);
  // Max/min spread: heavy drift should exceed an order of magnitude; the
  // paper reports up to ~50x input spread within a group.
  const double drift_ratio =
      *std::max_element(drifty.begin(), drifty.end()) /
      *std::min_element(drifty.begin(), drifty.end());
  const double stable_ratio =
      *std::max_element(stable.begin(), stable.end()) /
      *std::min_element(stable.begin(), stable.end());
  EXPECT_GT(drift_ratio, 10.0);
  EXPECT_LT(stable_ratio, 2.0);
}

}  // namespace
}  // namespace sim
}  // namespace rvar
