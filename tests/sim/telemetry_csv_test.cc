// TelemetryStore CSV round trip: ToCsv() output re-imports losslessly, and
// hostile documents (wrong header, ragged rows, non-numeric cells) are
// rejected with a clear Status instead of a misparse. Rows that parse but
// violate telemetry invariants go through the normal Ingest quarantine.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/telemetry.h"

namespace rvar {
namespace sim {
namespace {

const std::vector<std::string> kSkus = {"old_gen", "new_gen"};

TelemetryStore MakeStore(int num_runs, uint64_t seed) {
  TelemetryStore store;
  Rng rng(seed);
  for (int i = 0; i < num_runs; ++i) {
    JobRun run;
    run.group_id = i % 7;
    run.instance_id = i;
    run.submit_time = 100.0 * i;
    run.runtime_seconds = rng.Uniform(10.0, 1000.0);
    run.rare_event = (i % 11 == 0);
    run.allocated_tokens = 40 + i % 5;
    run.max_tokens_used = 50 + i;
    run.avg_tokens_used = 30.0 + 0.5 * i;
    run.avg_spare_tokens = rng.Uniform(0.0, 5.0);
    run.input_gb = rng.Uniform(1.0, 300.0);
    run.temp_data_gb = rng.Uniform(0.0, 50.0);
    run.total_vertices = 100 + 3 * i;
    run.num_stages = 4 + i % 6;
    run.cpu_util_mean = rng.Uniform(0.2, 0.9);
    run.cpu_util_std = rng.Uniform(0.0, 0.2);
    run.cluster_baseline_util = rng.Uniform(0.2, 0.9);
    run.spare_availability = rng.Uniform(0.0, 1.0);
    run.machine_faults = i % 3;
    run.vertex_retries = i % 4;
    run.spare_revoked = (i % 13 == 0);
    run.sku_vertex_fraction = {0.25, 0.75};
    run.sku_cpu_util = {rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
    EXPECT_TRUE(store.Ingest(run).ok()) << "run " << i;
  }
  return store;
}

TEST(TelemetryCsvTest, RoundTripsLosslessly) {
  TelemetryStore store = MakeStore(40, 5);
  auto restored = TelemetryStore::FromCsv(store.ToCsv(kSkus), kSkus);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->NumRuns(), store.NumRuns());
  for (size_t i = 0; i < store.NumRuns(); ++i) {
    const JobRun& a = store.run(i);
    const JobRun& b = restored->run(i);
    EXPECT_EQ(a.group_id, b.group_id);
    EXPECT_EQ(a.instance_id, b.instance_id);
    EXPECT_EQ(a.rare_event, b.rare_event);
    EXPECT_EQ(a.machine_faults, b.machine_faults);
    EXPECT_EQ(a.vertex_retries, b.vertex_retries);
    EXPECT_EQ(a.spare_revoked, b.spare_revoked);
    EXPECT_EQ(a.sku_vertex_fraction.size(), b.sku_vertex_fraction.size());
    // The export is fixed-precision (3-4 decimals per column), so the
    // round trip is exact only to the printed precision.
    EXPECT_NEAR(a.runtime_seconds, b.runtime_seconds, 5e-4);
    EXPECT_NEAR(a.cpu_util_mean, b.cpu_util_mean, 5e-5);
    EXPECT_NEAR(a.input_gb, b.input_gb, 5e-4);
    for (size_t s = 0; s < a.sku_cpu_util.size(); ++s) {
      EXPECT_NEAR(a.sku_cpu_util[s], b.sku_cpu_util[s], 5e-5);
    }
  }
  EXPECT_EQ(restored->GroupIds(), store.GroupIds());
  // And a second hop is byte-stable.
  EXPECT_EQ(restored->ToCsv(kSkus), store.ToCsv(kSkus));
}

TEST(TelemetryCsvTest, FileExportImportRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rvar_telemetry.csv")
          .string();
  TelemetryStore store = MakeStore(10, 6);
  ASSERT_TRUE(store.ExportCsv(path, kSkus).ok());
  auto restored = TelemetryStore::ImportCsv(path, kSkus);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumRuns(), store.NumRuns());
  std::filesystem::remove(path);
  EXPECT_FALSE(TelemetryStore::ImportCsv(path, kSkus).ok());
}

TEST(TelemetryCsvTest, RejectsWrongHeader) {
  TelemetryStore store = MakeStore(3, 7);
  std::string csv = store.ToCsv(kSkus);
  // Rename one header column.
  const size_t pos = csv.find("runtime_s");
  ASSERT_NE(pos, std::string::npos);
  csv.replace(pos, 9, "runtime_x");
  auto restored = TelemetryStore::FromCsv(csv, kSkus);
  EXPECT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument())
      << restored.status().ToString();

  // Mismatched SKU naming is also a header mismatch.
  EXPECT_FALSE(
      TelemetryStore::FromCsv(store.ToCsv(kSkus), {"only_one"}).ok());
}

TEST(TelemetryCsvTest, RejectsRaggedRow) {
  TelemetryStore store = MakeStore(3, 8);
  std::string csv = store.ToCsv(kSkus);
  // Chop the last cell (and its comma) off the final data row.
  ASSERT_EQ(csv.back(), '\n');
  const size_t last_comma = csv.find_last_of(',');
  csv = csv.substr(0, last_comma) + "\n";
  auto restored = TelemetryStore::FromCsv(csv, kSkus);
  EXPECT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("ragged"), std::string::npos)
      << restored.status().ToString();
}

TEST(TelemetryCsvTest, RejectsNonNumericCell) {
  TelemetryStore store = MakeStore(3, 9);
  std::string csv = store.ToCsv(kSkus);
  // Replace the first data row's runtime with text of the same length.
  const size_t header_end = csv.find('\n');
  size_t cell = header_end;
  for (int i = 0; i < 3; ++i) cell = csv.find(',', cell + 1);
  const size_t cell_end = csv.find(',', cell + 1);
  csv.replace(cell + 1, cell_end - cell - 1, "fast");
  auto restored = TelemetryStore::FromCsv(csv, kSkus);
  EXPECT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument())
      << restored.status().ToString();
  EXPECT_NE(restored.status().message().find("fast"), std::string::npos);
}

TEST(TelemetryCsvTest, InvalidValuesQuarantineInsteadOfFailing) {
  TelemetryStore store = MakeStore(5, 10);
  std::string csv = store.ToCsv(kSkus);
  // Negate the first data row's runtime: parses fine, violates the
  // telemetry invariant, so it must land in quarantine like any other
  // hostile ingest.
  const size_t header_end = csv.find('\n');
  size_t cell = header_end;
  for (int i = 0; i < 3; ++i) cell = csv.find(',', cell + 1);
  csv.insert(cell + 1, "-");
  auto restored = TelemetryStore::FromCsv(csv, kSkus);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumRuns(), store.NumRuns() - 1);
  EXPECT_EQ(restored->NumQuarantined(), 1u);
  EXPECT_EQ(restored->QuarantineCount(QuarantineReason::kNegativeRuntime),
            1);
}

}  // namespace
}  // namespace sim
}  // namespace rvar
