// Parameterized property tests over the execution model: monotonicities
// and conservation laws that must hold for any seed.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/scheduler.h"
#include "stats/descriptive.h"

namespace rvar {
namespace sim {
namespace {

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ClusterConfig cc;
    cc.seed = GetParam();
    auto c = Cluster::Make(SkuCatalog::Default(), cc);
    ASSERT_TRUE(c.ok());
    cluster_ = std::make_unique<Cluster>(*c);
  }

  JobGroupSpec MakeGroup(uint64_t seed, double input_gb, int tokens) {
    Rng rng(seed);
    JobGroupSpec g;
    g.group_id = 0;
    g.plan = GeneratePlan({}, &rng);
    g.base_input_gb = input_gb;
    g.allocated_tokens = tokens;
    g.uses_spare_tokens = false;
    g.rare_event_prob = 0.0;
    return g;
  }

  double MeanRuntime(const JobGroupSpec& group, double input_gb,
                     int repeats) {
    TokenScheduler scheduler(cluster_.get(), {});
    double total = 0.0;
    for (int i = 0; i < repeats; ++i) {
      JobInstanceSpec inst;
      inst.group_id = 0;
      inst.instance_id = i;
      inst.submit_time = 20000.0 + 1000.0 * i;
      inst.input_gb = input_gb;
      Rng rng(GetParam() * 1000 + static_cast<uint64_t>(i));
      auto run = scheduler.Execute(group, inst, &rng);
      EXPECT_TRUE(run.ok());
      total += run->runtime_seconds;
    }
    return total / repeats;
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_P(SchedulerPropertyTest, RuntimeMonotoneInInputSize) {
  JobGroupSpec group = MakeGroup(GetParam(), 200.0, 60);
  const double small = MeanRuntime(group, 100.0, 6);
  const double medium = MeanRuntime(group, 200.0, 6);
  const double large = MeanRuntime(group, 400.0, 6);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
}

TEST_P(SchedulerPropertyTest, RuntimeMonotoneInTokensWhenStarved) {
  // Same big job, increasing allocations: runtime must not grow.
  const double input = 600.0;
  double prev = 1e18;
  for (int tokens : {10, 40, 160}) {
    JobGroupSpec group = MakeGroup(GetParam(), input, tokens);
    const double t = MeanRuntime(group, input, 6);
    EXPECT_LT(t, prev * 1.05) << tokens;  // small noise slack
    prev = t;
  }
}

TEST_P(SchedulerPropertyTest, FasterSkusRunFaster) {
  JobGroupSpec old_gen = MakeGroup(GetParam(), 300.0, 80);
  old_gen.preferred_sku = 0;  // Gen3: slow and hot
  old_gen.sku_preference = 0.95;
  JobGroupSpec new_gen = old_gen;
  new_gen.preferred_sku =
      static_cast<int>(cluster_->catalog().NumSkus()) - 1;  // Gen6
  EXPECT_GT(MeanRuntime(old_gen, 300.0, 8),
            MeanRuntime(new_gen, 300.0, 8) * 1.2);
}

TEST_P(SchedulerPropertyTest, TokenAccountingConsistent) {
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec group = MakeGroup(GetParam(), 400.0, 50);
  group.uses_spare_tokens = true;
  JobInstanceSpec inst;
  inst.group_id = 0;
  inst.input_gb = 400.0;
  inst.submit_time = 30000.0;
  Rng rng(GetParam() + 5);
  auto run = scheduler.Execute(group, inst, &rng);
  ASSERT_TRUE(run.ok());
  // Average usage cannot exceed the peak; spare cannot exceed usage.
  EXPECT_LE(run->avg_tokens_used, run->max_tokens_used + 1e-9);
  EXPECT_LE(run->avg_spare_tokens, run->avg_tokens_used + 1e-9);
  // Peak bounded by allocation + spare cap.
  const SchedulerConfig config;
  EXPECT_LE(run->max_tokens_used,
            group.allocated_tokens *
                static_cast<int>(1.0 + config.spare_multiplier_cap) +
                1);
  // Temp data is bounded by total input through the shrink chain.
  EXPECT_LT(run->temp_data_gb, run->input_gb * 2.0);
  EXPECT_GE(run->num_stages, 1);
}

TEST_P(SchedulerPropertyTest, HotterClusterIsSlower) {
  // The same job at the diurnal trough vs peak.
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec group = MakeGroup(GetParam(), 300.0, 80);
  group.contention_sensitivity = 1.5;
  auto mean_at = [&](double t0) {
    double total = 0.0;
    for (int i = 0; i < 8; ++i) {
      JobInstanceSpec inst;
      inst.group_id = 0;
      inst.input_gb = 300.0;
      inst.submit_time = t0 + i * 86400.0;  // same phase, several days
      Rng rng(GetParam() * 77 + static_cast<uint64_t>(i));
      total += scheduler.Execute(group, inst, &rng)->runtime_seconds;
    }
    return total / 8.0;
  };
  const double trough = mean_at(0.5 * 3600.0);   // ~00:30 (trough)
  const double peak = mean_at(12.0 * 3600.0);    // ~12:00 (peak)
  EXPECT_GT(peak, trough);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace sim
}  // namespace rvar
