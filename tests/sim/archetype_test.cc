// Property tests over the workload archetypes: each archetype's defining
// mechanism must be visible in the simulated telemetry. These are the
// invariants the paper's phenomenology rests on (Section 3.2 sources of
// variation).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "sim/datasets.h"
#include "stats/descriptive.h"

namespace rvar {
namespace sim {
namespace {

// One shared mid-sized study for all archetype properties.
class ArchetypeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SuiteConfig config;
    config.num_groups = 120;
    config.d1_days = 8.0;
    config.d2_days = 1.0;
    config.d3_days = 1.0;
    config.d1_support = 20;
    config.workload.min_period_seconds = 600.0;
    config.workload.max_period_seconds = 3.0 * 3600.0;
    config.seed = 777;
    auto suite = BuildStudySuite(config);
    ASSERT_TRUE(suite.ok()) << suite.status().ToString();
    suite_ = new StudySuite(std::move(*suite));
  }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }

  // Ratio-normalized IQR of a group's D1 runs.
  static double GroupIqr(int gid) {
    std::vector<double> runtimes = suite_->d1.telemetry.GroupRuntimes(gid);
    const double median = Median(runtimes);
    for (double& r : runtimes) r /= median;
    return InterquartileRange(runtimes);
  }

  // Mean of a statistic over the D1 groups of one archetype (with at
  // least 20 runs).
  template <typename F>
  static double ArchetypeMean(JobArchetype a, F stat, int* count = nullptr) {
    double total = 0.0;
    int n = 0;
    for (int gid : suite_->d1.telemetry.GroupsWithSupport(20)) {
      if (suite_->group(gid).archetype != a) continue;
      total += stat(gid);
      ++n;
    }
    if (count != nullptr) *count = n;
    return n > 0 ? total / n : 0.0;
  }

  static StudySuite* suite_;
};

StudySuite* ArchetypeTest::suite_ = nullptr;

TEST_F(ArchetypeTest, AllArchetypesPresent) {
  std::map<JobArchetype, int> counts;
  for (const JobGroupSpec& g : suite_->groups) counts[g.archetype]++;
  EXPECT_EQ(counts.size(), static_cast<size_t>(kNumJobArchetypes));
  for (const auto& [a, n] : counts) {
    EXPECT_GE(n, 3) << JobArchetypeName(a);
  }
}

TEST_F(ArchetypeTest, ArchetypeNamesDistinct) {
  std::set<std::string> names;
  for (int a = 0; a < kNumJobArchetypes; ++a) {
    names.insert(JobArchetypeName(static_cast<JobArchetype>(a)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumJobArchetypes));
}

TEST_F(ArchetypeTest, WidthOrderingMatchesDesign) {
  // Rock-solid < stable < mild-drifty < heavy-drifty in normalized IQR.
  int n = 0;
  const double rock =
      ArchetypeMean(JobArchetype::kRockSolid, GroupIqr, &n);
  ASSERT_GT(n, 0);
  const double stable = ArchetypeMean(JobArchetype::kStable, GroupIqr);
  const double mild = ArchetypeMean(JobArchetype::kMildDrifty, GroupIqr);
  const double heavy = ArchetypeMean(JobArchetype::kHeavyDrifty, GroupIqr);
  EXPECT_LT(rock, stable);
  EXPECT_LT(stable, mild);
  EXPECT_LT(mild, heavy);
}

TEST_F(ArchetypeTest, StragglersHaveOutlierTails) {
  auto outlier_rate = [&](int gid) {
    std::vector<double> runtimes = suite_->d1.telemetry.GroupRuntimes(gid);
    const double median = Median(runtimes);
    int64_t outliers = 0;
    for (double r : runtimes) outliers += (r >= 3.0 * median);
    return static_cast<double>(outliers) / runtimes.size();
  };
  const double calm = ArchetypeMean(JobArchetype::kStable, outlier_rate);
  const double mild =
      ArchetypeMean(JobArchetype::kMildStraggler, outlier_rate);
  const double severe =
      ArchetypeMean(JobArchetype::kSevereStraggler, outlier_rate);
  EXPECT_LT(calm, 0.01);
  EXPECT_GT(mild, 0.02);
  EXPECT_GT(severe, mild * 1.5);
}

TEST_F(ArchetypeTest, SpareHungryGroupsRideSpareTokens) {
  auto spare_share = [&](int gid) {
    double spare = 0.0, total = 0.0;
    for (size_t i : suite_->d1.telemetry.RunsOfGroup(gid)) {
      const JobRun& run = suite_->d1.telemetry.run(i);
      spare += run.avg_spare_tokens;
      total += run.avg_tokens_used;
    }
    return total > 0.0 ? spare / total : 0.0;
  };
  // Spare-using under-allocated groups draw a large share of their tokens
  // from the spare pool; rock-solid groups draw none.
  double hungry_max = 0.0;
  for (int gid : suite_->d1.telemetry.GroupsWithSupport(20)) {
    const JobGroupSpec& g = suite_->group(gid);
    if (g.archetype == JobArchetype::kSpareHungry && g.uses_spare_tokens) {
      hungry_max = std::max(hungry_max, spare_share(gid));
    }
    if (g.archetype == JobArchetype::kRockSolid) {
      EXPECT_EQ(spare_share(gid), 0.0) << gid;
    }
  }
  EXPECT_GT(hungry_max, 0.2);
}

TEST_F(ArchetypeTest, LoadSensitivePinnedGroupsSeeTheirSku) {
  for (int gid : suite_->d1.telemetry.GroupsWithSupport(20)) {
    const JobGroupSpec& g = suite_->group(gid);
    if (g.archetype != JobArchetype::kLoadSensitive) continue;
    ASSERT_GE(g.preferred_sku, 0);
    double frac = 0.0;
    int n = 0;
    for (size_t i : suite_->d1.telemetry.RunsOfGroup(gid)) {
      const JobRun& run = suite_->d1.telemetry.run(i);
      frac += run.sku_vertex_fraction[static_cast<size_t>(g.preferred_sku)];
      ++n;
    }
    EXPECT_GT(frac / n, 0.6) << gid;
  }
}

TEST_F(ArchetypeTest, OldSkusRunHotter) {
  const Cluster& cluster = *suite_->cluster;
  double gen3 = 0.0, gen6 = 0.0;
  cluster.SkuUtilization(cluster.catalog().IndexOf("Gen3"), 40000.0, &gen3,
                         nullptr);
  cluster.SkuUtilization(cluster.catalog().IndexOf("Gen6"), 40000.0, &gen6,
                         nullptr);
  EXPECT_GT(gen3, gen6 + 0.1);
}

TEST_F(ArchetypeTest, HotPinnedLoadSensitiveWiderThanCoolPinned) {
  std::vector<double> hot, cool;
  for (int gid : suite_->d1.telemetry.GroupsWithSupport(20)) {
    const JobGroupSpec& g = suite_->group(gid);
    if (g.archetype != JobArchetype::kLoadSensitive) continue;
    (g.preferred_sku <= 1 ? hot : cool).push_back(GroupIqr(gid));
  }
  ASSERT_FALSE(hot.empty());
  ASSERT_FALSE(cool.empty());
  EXPECT_GT(Mean(hot), Mean(cool) * 1.3);
}

}  // namespace
}  // namespace sim
}  // namespace rvar
