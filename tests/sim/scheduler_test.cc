#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/datasets.h"
#include "stats/descriptive.h"

namespace rvar {
namespace sim {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cc;
    cc.seed = 5;
    auto c = Cluster::Make(SkuCatalog::Default(), cc);
    ASSERT_TRUE(c.ok());
    cluster_ = std::make_unique<Cluster>(*c);
  }

  JobGroupSpec MakeGroup(double input_gb = 50.0, int tokens = 40) {
    Rng rng(9);
    JobGroupSpec g;
    g.group_id = 0;
    g.name = "test_group";
    g.plan = GeneratePlan({}, &rng);
    g.base_input_gb = input_gb;
    g.allocated_tokens = tokens;
    g.rare_event_prob = 0.0;
    return g;
  }

  JobInstanceSpec MakeInstance(double input_gb, double t = 10000.0) {
    JobInstanceSpec inst;
    inst.group_id = 0;
    inst.instance_id = 1;
    inst.submit_time = t;
    inst.input_gb = input_gb;
    return inst;
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(SchedulerTest, ProducesCompleteTelemetry) {
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec group = MakeGroup();
  Rng rng(1);
  auto run = scheduler.Execute(group, MakeInstance(50.0), &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->runtime_seconds, 0.0);
  EXPECT_GT(run->total_vertices, 0);
  EXPECT_EQ(run->num_stages, group.plan.num_stages);
  EXPECT_EQ(run->allocated_tokens, 40);
  EXPECT_GT(run->max_tokens_used, 0);
  EXPECT_GT(run->avg_tokens_used, 0.0);
  EXPECT_EQ(run->skyline.size(), static_cast<size_t>(group.plan.num_stages));
  EXPECT_EQ(run->sku_vertex_fraction.size(), 7u);
  double frac = 0.0;
  for (double f : run->sku_vertex_fraction) frac += f;
  EXPECT_NEAR(frac, 1.0, 1e-9);
  EXPECT_GT(run->cpu_util_mean, 0.0);
  EXPECT_LT(run->cpu_util_mean, 1.0);
  EXPECT_GE(run->spare_availability, 0.0);
  EXPECT_GT(run->input_gb, 0.0);
}

TEST_F(SchedulerTest, LargerInputsRunLonger) {
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec group = MakeGroup();
  // Average over repetitions to wash out placement noise.
  double small = 0.0, large = 0.0;
  for (int i = 0; i < 10; ++i) {
    Rng rng(100 + static_cast<uint64_t>(i));
    small += scheduler.Execute(group, MakeInstance(10.0), &rng)
                 ->runtime_seconds;
    Rng rng2(200 + static_cast<uint64_t>(i));
    large += scheduler.Execute(group, MakeInstance(500.0), &rng2)
                 ->runtime_seconds;
  }
  EXPECT_GT(large, small * 2.0);
}

TEST_F(SchedulerTest, MoreTokensShortenBigJobs) {
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec few = MakeGroup(800.0, 10);
  few.uses_spare_tokens = false;
  JobGroupSpec many = MakeGroup(800.0, 200);
  many.uses_spare_tokens = false;
  double t_few = 0.0, t_many = 0.0;
  for (int i = 0; i < 8; ++i) {
    Rng a(300 + static_cast<uint64_t>(i)), b(300 + static_cast<uint64_t>(i));
    t_few += scheduler.Execute(few, MakeInstance(800.0), &a)->runtime_seconds;
    t_many +=
        scheduler.Execute(many, MakeInstance(800.0), &b)->runtime_seconds;
  }
  EXPECT_GT(t_few, t_many * 2.0);
}

TEST_F(SchedulerTest, SpareTokensRaisePeakUsage) {
  SchedulerConfig config;
  TokenScheduler scheduler(cluster_.get(), config);
  JobGroupSpec with_spare = MakeGroup(2000.0, 20);
  with_spare.uses_spare_tokens = true;
  JobGroupSpec no_spare = MakeGroup(2000.0, 20);
  no_spare.uses_spare_tokens = false;

  int with_peak = 0, without_peak = 0;
  double with_spare_avg = 0.0;
  for (int i = 0; i < 10; ++i) {
    Rng a(400 + static_cast<uint64_t>(i)), b(400 + static_cast<uint64_t>(i));
    auto rw = scheduler.Execute(with_spare, MakeInstance(2000.0), &a);
    auto ro = scheduler.Execute(no_spare, MakeInstance(2000.0), &b);
    with_peak = std::max(with_peak, rw->max_tokens_used);
    without_peak = std::max(without_peak, ro->max_tokens_used);
    with_spare_avg += rw->avg_spare_tokens;
    EXPECT_DOUBLE_EQ(ro->avg_spare_tokens, 0.0);
    EXPECT_LE(rw->max_tokens_used,
              20 + static_cast<int>(config.spare_multiplier_cap * 20));
  }
  EXPECT_GT(with_peak, without_peak);
  EXPECT_GT(with_spare_avg, 0.0);
  EXPECT_EQ(without_peak, 20);
}

TEST_F(SchedulerTest, DisablingSpareGloballyMatchesGroupOptOut) {
  SchedulerConfig config;
  config.enable_spare_tokens = false;
  TokenScheduler scheduler(cluster_.get(), config);
  JobGroupSpec group = MakeGroup(2000.0, 20);
  group.uses_spare_tokens = true;
  Rng rng(7);
  auto run = scheduler.Execute(group, MakeInstance(2000.0), &rng);
  EXPECT_EQ(run->max_tokens_used, 20);
  EXPECT_DOUBLE_EQ(run->avg_spare_tokens, 0.0);
}

TEST_F(SchedulerTest, RareEventsCreateOutliers) {
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec calm = MakeGroup();
  calm.rare_event_prob = 0.0;
  JobGroupSpec risky = MakeGroup();
  risky.rare_event_prob = 1.0;  // force events

  Rng rng(8);
  std::vector<double> calm_times, risky_times;
  bool saw_event = false;
  for (int i = 0; i < 40; ++i) {
    auto rc = scheduler.Execute(calm, MakeInstance(50.0), &rng);
    auto rr = scheduler.Execute(risky, MakeInstance(50.0), &rng);
    calm_times.push_back(rc->runtime_seconds);
    risky_times.push_back(rr->runtime_seconds);
    EXPECT_FALSE(rc->rare_event);
    saw_event |= rr->rare_event;
  }
  EXPECT_TRUE(saw_event);
  // The risky group's tail is much longer.
  EXPECT_GT(Quantile(risky_times, 0.9), Quantile(calm_times, 0.9) * 1.5);
}

TEST_F(SchedulerTest, SkuPreferenceShowsInVertexFractions) {
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec group = MakeGroup();
  group.preferred_sku = cluster_->catalog().IndexOf("Gen6");
  group.sku_preference = 0.9;
  Rng rng(9);
  auto run = scheduler.Execute(group, MakeInstance(200.0), &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->sku_vertex_fraction[static_cast<size_t>(group.preferred_sku)],
            0.5);
}

TEST_F(SchedulerTest, RejectsInvalidInputs) {
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec group = MakeGroup();
  Rng rng(10);
  JobGroupSpec bad_tokens = group;
  bad_tokens.allocated_tokens = 0;
  EXPECT_FALSE(
      scheduler.Execute(bad_tokens, MakeInstance(10.0), &rng).ok());
  EXPECT_FALSE(scheduler.Execute(group, MakeInstance(0.0), &rng).ok());
  JobGroupSpec empty_plan = group;
  empty_plan.plan = JobPlan{};
  EXPECT_FALSE(
      scheduler.Execute(empty_plan, MakeInstance(10.0), &rng).ok());
}

TEST_F(SchedulerTest, SkylineStartsAtQueueEndAndIsOrdered) {
  TokenScheduler scheduler(cluster_.get(), {});
  JobGroupSpec group = MakeGroup();
  Rng rng(11);
  auto run = scheduler.Execute(group, MakeInstance(100.0), &rng);
  ASSERT_TRUE(run.ok());
  double prev = -1.0;
  for (const auto& [start, tokens] : run->skyline) {
    EXPECT_GT(start, prev);
    EXPECT_GT(tokens, 0);
    EXPECT_LE(start, run->runtime_seconds);
    prev = start;
  }
}

TEST(TelemetryStoreTest, GroupIndexing) {
  TelemetryStore store;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i <= g; ++i) {
      JobRun run;
      run.group_id = g;
      run.runtime_seconds = 10.0 * g + i;
      store.Add(run);
    }
  }
  EXPECT_EQ(store.NumRuns(), 6u);
  EXPECT_EQ(store.GroupIds(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(store.Support(2), 3);
  EXPECT_EQ(store.Support(99), 0);
  EXPECT_TRUE(store.RunsOfGroup(99).empty());
  EXPECT_EQ(store.GroupsWithSupport(2), (std::vector<int>{1, 2}));
  EXPECT_EQ(store.GroupRuntimes(1), (std::vector<double>{10.0, 11.0}));
}

TEST(StudySuiteTest, BuildsThreeConsistentSlices) {
  SuiteConfig config;
  config.num_groups = 25;
  config.d1_days = 2.0;
  config.d2_days = 1.0;
  config.d3_days = 0.5;
  config.d1_support = 5;
  config.workload.min_period_seconds = 600.0;
  config.workload.max_period_seconds = 7200.0;
  auto suite = BuildStudySuite(config);
  ASSERT_TRUE(suite.ok());
  EXPECT_EQ(suite->groups.size(), 25u);
  EXPECT_GT(suite->d1.telemetry.NumRuns(), 0u);
  EXPECT_GT(suite->d2.telemetry.NumRuns(), 0u);
  EXPECT_GT(suite->d3.telemetry.NumRuns(), 0u);
  // D1 covers twice D2's days, so roughly twice the runs.
  EXPECT_GT(suite->d1.telemetry.NumRuns(), suite->d2.telemetry.NumRuns());
  // Submit times partition correctly.
  const double d1_end = 2.0 * 86400.0;
  const double d2_end = 3.0 * 86400.0;
  for (const JobRun& r : suite->d1.telemetry.runs()) {
    EXPECT_LT(r.submit_time, d1_end);
  }
  for (const JobRun& r : suite->d2.telemetry.runs()) {
    EXPECT_GE(r.submit_time, d1_end);
    EXPECT_LT(r.submit_time, d2_end);
  }
  for (const JobRun& r : suite->d3.telemetry.runs()) {
    EXPECT_GE(r.submit_time, d2_end);
  }
  EXPECT_GT(suite->d1.NumQualifyingGroups(), 0);
  EXPECT_GT(suite->d1.NumQualifyingInstances(), 0);
}

TEST(StudySuiteTest, RejectsBadConfig) {
  SuiteConfig config;
  config.num_groups = 0;
  EXPECT_FALSE(BuildStudySuite(config).ok());
  config = {};
  config.d2_days = 0.0;
  EXPECT_FALSE(BuildStudySuite(config).ok());
}

TEST(StudySuiteTest, DeterministicGivenSeed) {
  SuiteConfig config;
  config.num_groups = 10;
  config.d1_days = 0.5;
  config.d2_days = 0.25;
  config.d3_days = 0.25;
  config.seed = 77;
  auto a = BuildStudySuite(config);
  auto b = BuildStudySuite(config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->d2.telemetry.NumRuns(), b->d2.telemetry.NumRuns());
  for (size_t i = 0; i < a->d2.telemetry.NumRuns(); ++i) {
    EXPECT_DOUBLE_EQ(a->d2.telemetry.run(i).runtime_seconds,
                     b->d2.telemetry.run(i).runtime_seconds);
  }
}

}  // namespace
}  // namespace sim
}  // namespace rvar
