#include "sim/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <memory>
#include <utility>
#include <vector>

#include "sim/cluster.h"
#include "sim/plan.h"
#include "sim/scheduler.h"
#include "sim/telemetry.h"

namespace rvar {
namespace sim {
namespace {

JobRun MakeRun(int group_id, int64_t instance_id,
               double runtime = 100.0) {
  JobRun run;
  run.group_id = group_id;
  run.instance_id = instance_id;
  run.runtime_seconds = runtime;
  run.input_gb = 10.0;
  run.sku_vertex_fraction = {0.5, 0.5};
  run.sku_cpu_util = {0.3, 0.4};
  return run;
}

TEST(FaultPlanConfigTest, DefaultIsInert) {
  FaultPlanConfig config;
  EXPECT_FALSE(config.AnyActive());
  config.machine_fault_rate = 0.01;
  EXPECT_TRUE(config.AnyActive());
  config = {};
  config.reorder_window = 5;
  EXPECT_TRUE(config.AnyActive());
}

TEST(FaultPlanTest, MakeRejectsBadRates) {
  FaultPlanConfig config;
  config.machine_fault_rate = 1.5;
  EXPECT_TRUE(FaultPlan::Make(config).status().IsInvalidArgument());
  config = {};
  config.drop_run_rate = -0.1;
  EXPECT_TRUE(FaultPlan::Make(config).status().IsInvalidArgument());
  config = {};
  config.nan_runtime_rate = std::nan("");
  EXPECT_TRUE(FaultPlan::Make(config).status().IsInvalidArgument());
  config = {};
  config.reorder_window = -1;
  EXPECT_TRUE(FaultPlan::Make(config).status().IsInvalidArgument());
  // Telemetry rates individually valid but jointly over 1.
  config = {};
  config.drop_run_rate = 0.5;
  config.duplicate_run_rate = 0.4;
  config.nan_runtime_rate = 0.3;
  EXPECT_TRUE(FaultPlan::Make(config).status().IsInvalidArgument());
}

TEST(FaultPlanTest, MachineFaultsAreDeterministicAndSeedSensitive) {
  FaultPlanConfig config;
  config.seed = 11;
  config.machine_fault_rate = 0.3;
  FaultPlan a = *FaultPlan::Make(config);
  FaultPlan b = *FaultPlan::Make(config);
  config.seed = 12;
  FaultPlan c = *FaultPlan::Make(config);
  int differs = 0;
  for (int64_t id = 0; id < 200; ++id) {
    for (int stage = 0; stage < 4; ++stage) {
      EXPECT_EQ(a.MachineFault(id, stage, 0), b.MachineFault(id, stage, 0));
      EXPECT_DOUBLE_EQ(a.FaultFraction(id, stage, 0),
                       b.FaultFraction(id, stage, 0));
      differs += (a.MachineFault(id, stage, 0) != c.MachineFault(id, stage, 0));
    }
  }
  EXPECT_GT(differs, 0) << "different seeds must give different faults";
}

TEST(FaultPlanTest, MachineFaultFrequencyMatchesRate) {
  FaultPlanConfig config;
  config.machine_fault_rate = 0.2;
  FaultPlan plan = *FaultPlan::Make(config);
  int hits = 0;
  const int n = 20000;
  for (int64_t id = 0; id < n; ++id) {
    hits += plan.MachineFault(id, 0, 0);
    const double frac = plan.FaultFraction(id, 0, 0);
    EXPECT_GE(frac, 0.0);
    EXPECT_LT(frac, 1.0);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.02);
}

TEST(FaultPlanTest, ZeroRatesNeverFire) {
  FaultPlan plan = *FaultPlan::Make(FaultPlanConfig{});
  for (int64_t id = 0; id < 500; ++id) {
    EXPECT_FALSE(plan.MachineFault(id, 0, 0));
    EXPECT_FALSE(plan.SpareRevocation(id, 0));
    EXPECT_EQ(plan.RunFault(0, id), FaultPlan::TelemetryFault::kNone);
  }
}

TEST(FaultPlanTest, RunFaultPartitionCoversAllKinds) {
  FaultPlanConfig config;
  config.drop_run_rate = 0.1;
  config.duplicate_run_rate = 0.1;
  config.nan_runtime_rate = 0.1;
  config.negative_runtime_rate = 0.1;
  config.missing_columns_rate = 0.1;
  FaultPlan plan = *FaultPlan::Make(config);
  std::map<FaultPlan::TelemetryFault, int> counts;
  const int n = 10000;
  for (int64_t id = 0; id < n; ++id) counts[plan.RunFault(7, id)]++;
  for (auto kind :
       {FaultPlan::TelemetryFault::kDrop, FaultPlan::TelemetryFault::kDuplicate,
        FaultPlan::TelemetryFault::kNanRuntime,
        FaultPlan::TelemetryFault::kNegativeRuntime,
        FaultPlan::TelemetryFault::kMissingColumns}) {
    EXPECT_NEAR(static_cast<double>(counts[kind]) / n, 0.1, 0.02);
  }
  EXPECT_NEAR(static_cast<double>(counts[FaultPlan::TelemetryFault::kNone]) / n,
              0.5, 0.03);
}

TEST(FaultPlanTest, CorruptTelemetryStatsAreExact) {
  FaultPlanConfig config;
  config.drop_run_rate = 0.05;
  config.duplicate_run_rate = 0.05;
  config.nan_runtime_rate = 0.05;
  config.negative_runtime_rate = 0.05;
  config.missing_columns_rate = 0.05;
  FaultPlan plan = *FaultPlan::Make(config);

  std::vector<JobRun> runs;
  const int n = 4000;
  for (int64_t id = 0; id < n; ++id) runs.push_back(MakeRun(id % 13, id));

  TelemetryFaultStats stats;
  std::vector<JobRun> out = plan.CorruptTelemetry(runs, &stats);

  // The per-run partition is exhaustive.
  EXPECT_EQ(stats.dropped + stats.duplicated + stats.nan_runtime +
                stats.negative_runtime + stats.missing_columns + stats.clean,
            n);
  EXPECT_GT(stats.NumCorrupt(), 0);
  EXPECT_EQ(static_cast<int64_t>(out.size()),
            n - stats.dropped + stats.duplicated);

  // Verify the injected defects are really present.
  int64_t nan_seen = 0, negative_seen = 0, missing_seen = 0;
  std::map<std::pair<int, int64_t>, int> copies;
  for (const JobRun& run : out) {
    copies[{run.group_id, run.instance_id}]++;
    if (std::isnan(run.runtime_seconds)) ++nan_seen;
    if (run.runtime_seconds < 0.0) ++negative_seen;
    if (run.sku_vertex_fraction.empty()) ++missing_seen;
  }
  EXPECT_EQ(nan_seen, stats.nan_runtime);
  EXPECT_EQ(negative_seen, stats.negative_runtime);
  EXPECT_EQ(missing_seen, stats.missing_columns);
  int64_t dupes = 0;
  for (const auto& [key, count] : copies) dupes += (count == 2);
  EXPECT_EQ(dupes, stats.duplicated);

  // Determinism: a second application gives identical results.
  TelemetryFaultStats stats2;
  std::vector<JobRun> out2 = plan.CorruptTelemetry(runs, &stats2);
  ASSERT_EQ(out.size(), out2.size());
  EXPECT_EQ(stats.NumCorrupt(), stats2.NumCorrupt());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].instance_id, out2[i].instance_id);
  }
}

TEST(FaultPlanTest, ReorderingPermutesButPreservesRuns) {
  FaultPlanConfig config;
  config.reorder_window = 10;
  FaultPlan plan = *FaultPlan::Make(config);
  std::vector<JobRun> runs;
  for (int64_t id = 0; id < 300; ++id) runs.push_back(MakeRun(0, id));
  TelemetryFaultStats stats;
  std::vector<JobRun> out = plan.CorruptTelemetry(runs, &stats);
  ASSERT_EQ(out.size(), runs.size());
  EXPECT_GT(stats.reordered, 0);
  EXPECT_EQ(stats.NumCorrupt(), 0);
  // Same multiset of instances; displacement bounded by the window.
  bool any_moved = false;
  std::vector<bool> present(runs.size(), false);
  for (size_t pos = 0; pos < out.size(); ++pos) {
    const auto id = static_cast<size_t>(out[pos].instance_id);
    ASSERT_LT(id, present.size());
    present[id] = true;
    any_moved |= (id != pos);
    EXPECT_LE(std::abs(static_cast<long>(pos) - static_cast<long>(id)),
              config.reorder_window + 1);
  }
  EXPECT_TRUE(any_moved);
  for (bool p : present) EXPECT_TRUE(p);
}

TEST(TelemetryIngestTest, QuarantinesExactlyTheCorruptRuns) {
  FaultPlanConfig config;
  config.duplicate_run_rate = 0.08;
  config.nan_runtime_rate = 0.05;
  config.negative_runtime_rate = 0.05;
  config.missing_columns_rate = 0.05;
  config.reorder_window = 7;
  FaultPlan plan = *FaultPlan::Make(config);
  std::vector<JobRun> runs;
  for (int64_t id = 0; id < 1500; ++id) runs.push_back(MakeRun(id % 9, id));

  TelemetryFaultStats stats;
  std::vector<JobRun> stream = plan.CorruptTelemetry(std::move(runs), &stats);
  TelemetryStore store;
  int64_t rejected = 0;
  for (JobRun& run : stream) {
    rejected += !store.Ingest(std::move(run)).ok();
  }
  EXPECT_EQ(rejected, stats.NumCorrupt());
  EXPECT_EQ(static_cast<int64_t>(store.NumQuarantined()), stats.NumCorrupt());
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kNonFiniteRuntime),
            stats.nan_runtime);
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kNegativeRuntime),
            stats.negative_runtime);
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kDuplicate),
            stats.duplicated);
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kMissingFeatures),
            stats.missing_columns);
  // The stored view is clean.
  for (const JobRun& run : store.runs()) {
    EXPECT_TRUE(std::isfinite(run.runtime_seconds));
    EXPECT_GE(run.runtime_seconds, 0.0);
    EXPECT_FALSE(run.sku_vertex_fraction.empty());
  }
}

TEST(TelemetryIngestTest, ReportsReasonPerFault) {
  TelemetryStore store;
  EXPECT_TRUE(store.Ingest(MakeRun(0, 0)).ok());

  JobRun dupe = MakeRun(0, 0);
  Status s = store.Ingest(dupe);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);

  JobRun nan_run = MakeRun(0, 1, std::nan(""));
  EXPECT_TRUE(store.Ingest(nan_run).IsInvalidArgument());

  JobRun neg = MakeRun(0, 2, -5.0);
  EXPECT_TRUE(store.Ingest(neg).IsInvalidArgument());

  JobRun missing = MakeRun(0, 3);
  missing.sku_vertex_fraction.clear();
  missing.sku_cpu_util.clear();
  EXPECT_TRUE(store.Ingest(missing).IsInvalidArgument());

  JobRun bad_meta = MakeRun(0, 4);
  bad_meta.input_gb = std::nan("");
  EXPECT_TRUE(store.Ingest(bad_meta).IsInvalidArgument());

  EXPECT_EQ(store.NumRuns(), 1u);
  EXPECT_EQ(store.NumQuarantined(), 5u);
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kDuplicate), 1);
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kNonFiniteRuntime), 1);
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kNegativeRuntime), 1);
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kMissingFeatures), 1);
  EXPECT_EQ(store.QuarantineCount(QuarantineReason::kBadMetadata), 1);
}

class FaultySchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cc;
    cc.seed = 5;
    auto c = Cluster::Make(SkuCatalog::Default(), cc);
    ASSERT_TRUE(c.ok());
    cluster_ = std::make_unique<Cluster>(*c);
    Rng rng(9);
    group_.group_id = 0;
    group_.name = "faulty_group";
    group_.plan = GeneratePlan({}, &rng);
    group_.base_input_gb = 50.0;
    group_.allocated_tokens = 40;
    group_.rare_event_prob = 0.0;
  }

  JobInstanceSpec MakeInstance(int64_t id) {
    JobInstanceSpec inst;
    inst.group_id = 0;
    inst.instance_id = id;
    inst.submit_time = 10000.0;
    inst.input_gb = 50.0;
    return inst;
  }

  std::unique_ptr<Cluster> cluster_;
  JobGroupSpec group_;
};

TEST_F(FaultySchedulerTest, RetriesRecordFaultsAndInflateRuntime) {
  FaultPlanConfig fc;
  fc.machine_fault_rate = 0.25;
  FaultPlan plan = *FaultPlan::Make(fc);
  SchedulerConfig config;
  TokenScheduler clean(cluster_.get(), config);
  TokenScheduler faulty(cluster_.get(), config, &plan);

  int64_t faults = 0, retries = 0, failed = 0;
  double clean_total = 0.0, faulty_total = 0.0;
  for (int64_t id = 0; id < 60; ++id) {
    Rng a(1000 + static_cast<uint64_t>(id));
    Rng b(1000 + static_cast<uint64_t>(id));
    auto rc = clean.Execute(group_, MakeInstance(id), &a);
    auto rf = faulty.Execute(group_, MakeInstance(id), &b);
    ASSERT_TRUE(rc.ok());
    EXPECT_EQ(rc->machine_faults, 0);
    EXPECT_EQ(rc->vertex_retries, 0);
    clean_total += rc->runtime_seconds;
    if (!rf.ok()) {
      EXPECT_EQ(rf.status().code(), StatusCode::kResourceExhausted);
      ++failed;
      continue;
    }
    faults += rf->machine_faults;
    retries += rf->vertex_retries;
    faulty_total += rf->runtime_seconds;
    if (rf->machine_faults > 0) {
      EXPECT_EQ(rf->vertex_retries, rf->machine_faults);
    }
  }
  EXPECT_GT(faults, 0);
  EXPECT_EQ(retries, faults);
  // Lost work plus backoff makes the faulty population strictly slower
  // even though fewer jobs finished.
  EXPECT_GT(faulty_total, clean_total * 0.9);
  // At a 25% per-stage-attempt rate and 3 retries, a multi-stage job
  // only rarely fails outright.
  EXPECT_LT(failed, 30);
}

TEST_F(FaultySchedulerTest, RetryBackoffJitterIsSeededAndDecorrelated) {
  FaultPlanConfig fc;
  fc.machine_fault_rate = 0.25;
  FaultPlan plan = *FaultPlan::Make(fc);

  SchedulerConfig jittered;  // default retry_jitter
  SchedulerConfig flat;
  flat.retry_jitter = 0.0;
  TokenScheduler sched_jittered(cluster_.get(), jittered, &plan);
  TokenScheduler sched_jittered2(cluster_.get(), jittered, &plan);
  TokenScheduler sched_flat(cluster_.get(), flat, &plan);

  std::vector<double> deltas;
  int faulted = 0, clean = 0;
  for (int64_t id = 0; id < 60; ++id) {
    Rng a(2000 + static_cast<uint64_t>(id));
    Rng b(2000 + static_cast<uint64_t>(id));
    Rng c(2000 + static_cast<uint64_t>(id));
    auto rj = sched_jittered.Execute(group_, MakeInstance(id), &a);
    auto rj2 = sched_jittered2.Execute(group_, MakeInstance(id), &b);
    auto rf = sched_flat.Execute(group_, MakeInstance(id), &c);
    if (!rj.ok() || !rf.ok()) continue;
    ASSERT_TRUE(rj2.ok());
    // Replay is bit-identical: the jitter comes from a dedicated Rng keyed
    // by (instance, group, stage, attempt), not from wall clock or the
    // simulation stream's draw order.
    EXPECT_EQ(rj->runtime_seconds, rj2->runtime_seconds);
    EXPECT_EQ(rj->machine_faults, rf->machine_faults);
    if (rf->machine_faults == 0) {
      // Fault-free paths draw no jitter at all: byte-identical to a
      // jitter-free build.
      EXPECT_EQ(rj->runtime_seconds, rf->runtime_seconds);
      ++clean;
    } else {
      deltas.push_back(rj->runtime_seconds - rf->runtime_seconds);
      ++faulted;
    }
  }
  ASSERT_GT(clean, 0);
  ASSERT_GT(faulted, 1);
  // Different retries draw different multipliers — the whole point is that
  // simultaneous victims decorrelate instead of re-dispatching in
  // lockstep, so the per-run backoff shifts must not collapse to one
  // value.
  std::sort(deltas.begin(), deltas.end());
  EXPECT_NE(deltas.front(), deltas.back());
}

TEST_F(FaultySchedulerTest, ZeroRetriesMakesFirstFaultFatal) {
  FaultPlanConfig fc;
  fc.machine_fault_rate = 0.4;
  FaultPlan plan = *FaultPlan::Make(fc);
  SchedulerConfig config;
  config.max_vertex_retries = 0;
  TokenScheduler scheduler(cluster_.get(), config, &plan);
  int64_t failed = 0;
  for (int64_t id = 0; id < 40; ++id) {
    Rng rng(2000 + static_cast<uint64_t>(id));
    auto run = scheduler.Execute(group_, MakeInstance(id), &rng);
    if (!run.ok()) {
      EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
      ++failed;
    } else {
      EXPECT_EQ(run->machine_faults, 0);
      EXPECT_EQ(run->vertex_retries, 0);
    }
  }
  EXPECT_GT(failed, 0);
}

TEST_F(FaultySchedulerTest, RevocationCapsTokensAtAllocation) {
  FaultPlanConfig fc;
  fc.token_revocation_rate = 1.0;  // revoke in every stage
  FaultPlan plan = *FaultPlan::Make(fc);
  group_.uses_spare_tokens = true;
  TokenScheduler scheduler(cluster_.get(), {}, &plan);
  Rng rng(3);
  auto run = scheduler.Execute(group_, MakeInstance(1), &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->spare_revoked);
  EXPECT_LE(run->max_tokens_used, group_.allocated_tokens);
}

TEST_F(FaultySchedulerTest, NullFaultPlanMatchesCleanScheduler) {
  TokenScheduler with_null(cluster_.get(), {}, nullptr);
  TokenScheduler clean(cluster_.get(), {});
  Rng a(4), b(4);
  auto ra = with_null.Execute(group_, MakeInstance(1), &a);
  auto rb = clean.Execute(group_, MakeInstance(1), &b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_DOUBLE_EQ(ra->runtime_seconds, rb->runtime_seconds);
}

// --- StorageFaultPlan ----------------------------------------------------

TEST(StorageFaultPlanTest, IsDeterministicPerSeedAndSalt) {
  const std::string bytes(256, 'a');
  StorageFaultPlan plan(7);
  EXPECT_EQ(plan.FlipBits(bytes, 3, 1), plan.FlipBits(bytes, 3, 1));
  EXPECT_NE(plan.FlipBits(bytes, 3, 1), plan.FlipBits(bytes, 3, 2));
  EXPECT_NE(plan.FlipBits(bytes, 3, 1),
            StorageFaultPlan(8).FlipBits(bytes, 3, 1));
  EXPECT_EQ(plan.TruncateTail(bytes, 0.5, 4),
            plan.TruncateTail(bytes, 0.5, 4));
}

TEST(StorageFaultPlanTest, FlippingTwiceRestoresTheOriginal) {
  const std::string bytes = "snapshot payload with structure";
  StorageFaultPlan plan(11);
  const std::string once = plan.FlipBits(bytes, 5, 9);
  EXPECT_NE(once, bytes);
  EXPECT_EQ(plan.FlipBits(once, 5, 9), bytes);
  // Zero flips is the identity.
  EXPECT_EQ(plan.FlipBits(bytes, 0), bytes);
  EXPECT_EQ(plan.FlipBits("", 3), "");
}

TEST(StorageFaultPlanTest, TruncateAlwaysCutsSomething) {
  const std::string bytes(100, 'x');
  StorageFaultPlan plan(13);
  for (int salt = 0; salt < 32; ++salt) {
    const std::string torn = plan.TruncateTail(bytes, 0.3, salt);
    EXPECT_LT(torn.size(), bytes.size());
    EXPECT_GE(torn.size(), 69u);  // at most 30% + the guaranteed byte
    EXPECT_EQ(torn, bytes.substr(0, torn.size()));  // prefix, not rewrite
  }
  EXPECT_EQ(plan.TruncateTail("", 0.5), "");
  EXPECT_EQ(plan.TruncateTail(bytes, 0.0), bytes);
}

TEST(StorageFaultPlanTest, DeliveryScheduleIsAtLeastOnce) {
  StorageFaultPlan plan(17);
  const auto schedule =
      plan.DeliverySchedule(50, /*duplicate_rate=*/0.2, /*reorder_window=*/3);
  EXPECT_GE(schedule.size(), 50u);
  std::vector<bool> seen(50, false);
  for (size_t index : schedule) {
    ASSERT_LT(index, 50u);
    seen[index] = true;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "record " << i << " was never delivered";
  }
}

TEST(StorageFaultPlanTest, CleanScheduleIsTheIdentity) {
  StorageFaultPlan plan(19);
  const auto schedule = plan.DeliverySchedule(20, 0.0, 0);
  ASSERT_EQ(schedule.size(), 20u);
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i], i);
  }
}

TEST(StorageFaultPlanTest, ScheduleWithWindowStaysNearHome) {
  StorageFaultPlan plan(23);
  const int window = 4;
  const auto schedule = plan.DeliverySchedule(100, 0.0, window);
  ASSERT_EQ(schedule.size(), 100u);
  for (size_t pos = 0; pos < schedule.size(); ++pos) {
    const double drift =
        static_cast<double>(pos) - static_cast<double>(schedule[pos]);
    EXPECT_LE(std::abs(drift), 2.0 * window) << "position " << pos;
  }
}

}  // namespace
}  // namespace sim
}  // namespace rvar
