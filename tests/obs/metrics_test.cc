// Unit tests for the obs metrics primitives: counters, gauges, histogram
// bucket boundaries and quantile extraction, and registry key semantics.

#include "obs/metrics.h"

#include <cmath>

#include "gtest/gtest.h"

namespace rvar {
namespace obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Registry registry;
  Counter* c = registry.GetCounter("c_total");
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42);
}

TEST(Gauge, SetAndAdd) {
  Registry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
  g->Add(-0.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.0);
}

TEST(Registry, SameKeySameHandle) {
  Registry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
  // A label makes a distinct series under the same family name.
  Counter* plain = registry.GetCounter("fam");
  Counter* labeled = registry.GetCounter("fam", "reason", "x");
  EXPECT_NE(plain, labeled);
  EXPECT_EQ(labeled, registry.GetCounter("fam", "reason", "x"));
  EXPECT_NE(labeled, registry.GetCounter("fam", "reason", "y"));
}

TEST(Histogram, BucketBoundariesAreLogSpaced) {
  Registry registry;
  // One bucket per decade over [1e-3, 1e3]: bounds 1e-2 ... 1e3.
  Histogram* h =
      registry.GetHistogram("lat", HistogramOptions{1e-3, 1e3, 6});
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(h->BucketUpperBound(i), std::pow(10.0, -2 + i),
                1e-9 * h->BucketUpperBound(i));
  }
}

TEST(Histogram, ObservationsLandInTheRightBuckets) {
  Registry registry;
  Histogram* h =
      registry.GetHistogram("lat", HistogramOptions{1e-3, 1e3, 6});
  h->Observe(5e-3);   // bucket 0: (1e-3, 1e-2]
  h->Observe(0.5);    // bucket 2: (0.1, 1]
  h->Observe(0.2);    // bucket 2
  h->Observe(700.0);  // bucket 5: (100, 1000]
  const std::vector<int64_t> counts = h->BucketCounts();
  EXPECT_EQ(counts, (std::vector<int64_t>{1, 0, 2, 0, 0, 1}));
  EXPECT_EQ(h->Count(), 4);
  EXPECT_NEAR(h->Sum(), 5e-3 + 0.5 + 0.2 + 700.0, 1e-12);
}

TEST(Histogram, OutOfRangeClipsIntoEdgeBuckets) {
  Registry registry;
  Histogram* h =
      registry.GetHistogram("lat", HistogramOptions{1e-3, 1e3, 6});
  h->Observe(1e-9);    // below range -> first bucket
  h->Observe(0.0);     // log10 -> -inf -> first bucket
  h->Observe(-1.0);    // log10 -> NaN -> first bucket (counted, not UB)
  h->Observe(1e9);     // above range -> last bucket
  const std::vector<int64_t> counts = h->BucketCounts();
  EXPECT_EQ(counts.front(), 3);
  EXPECT_EQ(counts.back(), 1);
  EXPECT_EQ(h->Count(), 4);
}

TEST(Histogram, QuantileInterpolatesWithinOccupiedBucket) {
  Registry registry;
  Histogram* h =
      registry.GetHistogram("lat", HistogramOptions{1e-3, 1e3, 6});
  // All mass in bucket 2 = (0.1, 1]; every quantile must stay inside it.
  for (int i = 0; i < 100; ++i) h->Observe(0.5);
  for (double q : {0.0, 0.5, 0.9, 1.0}) {
    const double v = h->Quantile(q);
    EXPECT_GE(v, 0.1) << "q=" << q;
    EXPECT_LE(v, 1.0 + 1e-9) << "q=" << q;
  }
  // Mass splits over two buckets: the median sits at their boundary.
  Histogram* h2 =
      registry.GetHistogram("lat2", HistogramOptions{1e-3, 1e3, 6});
  for (int i = 0; i < 50; ++i) h2->Observe(0.5);    // bucket 2
  for (int i = 0; i < 50; ++i) h2->Observe(50.0);   // bucket 4
  EXPECT_NEAR(h2->Quantile(0.5), 1.0, 1e-6);
  EXPECT_GT(h2->Quantile(0.9), 10.0);
  EXPECT_LT(h2->Quantile(0.1), 1.0);
}

TEST(Histogram, EmptyQuantileIsMinValue) {
  Registry registry;
  Histogram* h =
      registry.GetHistogram("lat", HistogramOptions{1e-3, 1e3, 6});
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 1e-3);
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  Registry registry;
  registry.GetCounter("b_total")->Increment(2);
  registry.GetCounter("a_total")->Increment(1);
  registry.GetGauge("util")->Set(0.25);
  registry.GetHistogram("lat", HistogramOptions{1e-3, 1e3, 6})->Observe(0.5);
  const Registry::Snapshot snap = registry.Snap();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].key, "a_total");
  EXPECT_EQ(snap.counters[0].value, 1);
  EXPECT_EQ(snap.counters[1].key, "b_total");
  EXPECT_EQ(snap.counters[1].value, 2);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_EQ(snap.histograms[0].counts.size(), 6u);
  EXPECT_EQ(snap.histograms[0].upper_bounds.size(), 6u);
}

TEST(Registry, ResetForTestZeroesEverything) {
  Registry registry;
  Counter* c = registry.GetCounter("c_total");
  Histogram* h = registry.GetHistogram("lat");
  c->Increment(7);
  h->Observe(0.1);
  registry.ResetForTest();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(h->Count(), 0);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.0);
  for (int64_t n : h->BucketCounts()) EXPECT_EQ(n, 0);
}

TEST(Sampling, TimerSkipsWhenOff) {
  Registry registry;
  Histogram* h = registry.GetHistogram("lat");
  SetSampling(false);
  { ScopedLatencyTimer timer(h); }
  EXPECT_EQ(h->Count(), 0);
  SetSampling(true);
  { ScopedLatencyTimer timer(h); }
  EXPECT_EQ(h->Count(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace rvar
