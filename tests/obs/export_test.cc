// Golden-output tests for the exporters: the exact Prometheus text and
// JSON a fixed registry renders to, plus span JSON. The goldens pin the
// wire format — a diff here means scrapers/CI artifact parsers break.

#include "obs/export.h"

#include <string>

#include "gtest/gtest.h"

namespace rvar {
namespace obs {
namespace {

/// A small fixed registry: two counter series in one family, a gauge, and
/// a one-decade-per-bucket histogram whose bounds render exactly.
Registry& GoldenRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->GetCounter("ingest_total")->Increment(7);
    r->GetCounter("quarantined_total", "reason", "duplicate")->Increment(2);
    r->GetCounter("quarantined_total", "reason", "nan")->Increment(1);
    r->GetGauge("queue_depth")->Set(3);
    Histogram* h =
        r->GetHistogram("latency_seconds", HistogramOptions{1e-3, 1e3, 6});
    h->Observe(0.5);
    h->Observe(0.25);
    h->Observe(50.0);
    return r;
  }();
  return *registry;
}

TEST(PrometheusExport, GoldenOutput) {
  const std::string expected =
      "# TYPE ingest_total counter\n"
      "ingest_total 7\n"
      "# TYPE quarantined_total counter\n"
      "quarantined_total{reason=\"duplicate\"} 2\n"
      "quarantined_total{reason=\"nan\"} 1\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 3\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{le=\"0.01\"} 0\n"
      "latency_seconds_bucket{le=\"0.1\"} 0\n"
      "latency_seconds_bucket{le=\"1\"} 2\n"
      "latency_seconds_bucket{le=\"10\"} 2\n"
      "latency_seconds_bucket{le=\"100\"} 3\n"
      "latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "latency_seconds_sum 50.75\n"
      "latency_seconds_count 3\n";
  EXPECT_EQ(ToPrometheusText(GoldenRegistry().Snap()), expected);
}

TEST(JsonExport, GoldenOutput) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"ingest_total\": 7,\n"
      "    \"quarantined_total{reason=\\\"duplicate\\\"}\": 2,\n"
      "    \"quarantined_total{reason=\\\"nan\\\"}\": 1\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"queue_depth\": 3\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"latency_seconds\": {\"count\": 3, \"sum\": 50.75, "
      "\"p50\": 0.562341325, \"p90\": 50.1187234, \"p99\": 93.3254301, "
      "\"buckets\": [{\"le\": 1, \"count\": 2}, "
      "{\"le\": 100, \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(ToJson(GoldenRegistry().Snap()), expected);
}

TEST(JsonExport, EmptyRegistry) {
  Registry registry;
  EXPECT_EQ(ToJson(registry.Snap()),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
  EXPECT_EQ(ToPrometheusText(registry.Snap()), "");
}

TEST(SpanExport, GoldenShape) {
  SpanRecord span;
  span.name = "predictor/train";
  span.span_id = 3;
  span.parent_id = 1;
  span.depth = 1;
  span.start_seconds = 0.5;
  span.duration_seconds = 0.25;
  const std::string expected =
      "[\n"
      "  {\"name\": \"predictor/train\", \"span_id\": 3, \"parent_id\": 1, "
      "\"depth\": 1, \"start_seconds\": 0.5, \"duration_seconds\": 0.25}\n"
      "]\n";
  EXPECT_EQ(SpansToJson({span}), expected);
  EXPECT_EQ(SpansToJson({}), "[]\n");
}

TEST(PrometheusExport, HistogramWithLabelSplicesLe) {
  Registry registry;
  registry.GetHistogram("lat", "op", "observe", HistogramOptions{1e-3, 1e3, 6})
      ->Observe(0.5);
  const std::string text = ToPrometheusText(registry.Snap());
  EXPECT_NE(text.find("lat_bucket{op=\"observe\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_sum{op=\"observe\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_count{op=\"observe\"} 1"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace rvar
