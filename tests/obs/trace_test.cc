// Tests for trace spans: RAII timing, parent/child nesting through the
// thread-local span stack, ring-buffer bounding, and the sampling switch.

#include "obs/trace.h"

#include <string>

#include "gtest/gtest.h"

namespace rvar {
namespace obs {
namespace {

TEST(ScopedSpan, RecordsNameAndDuration) {
  Tracer tracer;
  { ScopedSpan span("work", &tracer); }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name), "work");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_GE(spans[0].duration_seconds, 0.0);
  EXPECT_GE(spans[0].start_seconds, 0.0);
}

TEST(ScopedSpan, ChildrenNestUnderParents) {
  Tracer tracer;
  {
    ScopedSpan outer("outer", &tracer);
    {
      ScopedSpan inner("inner", &tracer);
      { ScopedSpan leaf("leaf", &tracer); }
    }
  }
  // Completion order: leaf, inner, outer.
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(std::string(spans[0].name), "leaf");
  EXPECT_EQ(std::string(spans[1].name), "inner");
  EXPECT_EQ(std::string(spans[2].name), "outer");
  EXPECT_EQ(spans[1].parent_id, spans[2].span_id);  // inner under outer
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);  // leaf under inner
  EXPECT_EQ(spans[2].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[0].depth, 2);
  // A child's interval lies inside its parent's.
  EXPECT_GE(spans[0].start_seconds, spans[1].start_seconds);
  EXPECT_LE(spans[0].duration_seconds, spans[1].duration_seconds);
}

TEST(ScopedSpan, SequentialSpansAreSiblings) {
  Tracer tracer;
  { ScopedSpan a("a", &tracer); }
  { ScopedSpan b("b", &tracer); }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
}

TEST(Tracer, RingKeepsNewestAndCountsDropped) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("s", &tracer);
  }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.TotalRecorded(), 10);
  EXPECT_EQ(tracer.Dropped(), 6);
  // The survivors are the last four, oldest first.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].span_id, spans[i - 1].span_id);
  }
}

TEST(Tracer, ClearEmptiesTheRing) {
  Tracer tracer(4);
  { ScopedSpan span("s", &tracer); }
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.TotalRecorded(), 0);
}

TEST(Sampling, SpansSkipWhenOff) {
  Tracer tracer;
  SetSampling(false);
  {
    ScopedSpan span("invisible", &tracer);
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  SetSampling(true);
  { ScopedSpan span("visible", &tracer); }
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(Sampling, InactiveParentMakesChildrenRoots) {
  // A span opened while sampling is off never lands on the stack, so a
  // child opened after re-enabling becomes a root — not a dangling child.
  Tracer tracer;
  SetSampling(false);
  {
    ScopedSpan outer("off", &tracer);
    SetSampling(true);
    { ScopedSpan inner("on", &tracer); }
  }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name), "on");
  EXPECT_EQ(spans[0].parent_id, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace rvar
