// Concurrency tests for the obs primitives: N threads hammering the same
// counter/histogram/tracer must lose no updates and exhibit no data races.
// Runs in the `concurrency`-labeled binary so the TSan preset
// (-DRVAR_SANITIZE=thread) exercises it via `ctest -L concurrency`.

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rvar {
namespace obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20000;

TEST(ObsConcurrency, CounterLosesNoIncrements) {
  Registry registry;
  Counter* counter = registry.GetCounter("c_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kOpsPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrency, RegistrationRacesYieldOneSeriesPerKey) {
  Registry registry;
  std::atomic<Counter*> seen[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("raced_total", "thread", "any");
      seen[t].store(c);
      c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  Counter* first = seen[0].load();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t].load(), first);
  EXPECT_EQ(first->Value(), kThreads);
}

TEST(ObsConcurrency, HistogramObservationsAllLand) {
  Registry registry;
  Histogram* h = registry.GetHistogram("lat");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        h->Observe(1e-4 * (1 + t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h->Count(), static_cast<int64_t>(kThreads) * kOpsPerThread);
  int64_t bucket_total = 0;
  for (int64_t n : h->BucketCounts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h->Count());
  // Sum accumulates via CAS; every observation's value must be in it.
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += kOpsPerThread * 1e-4 * (1 + t);
  }
  EXPECT_NEAR(h->Sum(), expected_sum, 1e-6 * expected_sum);
}

TEST(ObsConcurrency, TracerRingUnderContention) {
  Tracer tracer(/*capacity=*/64);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 500; ++i) {
        ScopedSpan outer("outer", &tracer);
        ScopedSpan inner("inner", &tracer);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.TotalRecorded(), kThreads * 500 * 2);
  const auto spans = tracer.Snapshot();
  EXPECT_EQ(spans.size(), 64u);
  EXPECT_EQ(tracer.Dropped(), kThreads * 500 * 2 - 64);
}

TEST(ObsConcurrency, SnapshotWhileWriting) {
  Registry registry;
  Counter* counter = registry.GetCounter("c_total");
  Histogram* h = registry.GetHistogram("lat");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      counter->Increment();
      h->Observe(0.01);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const Registry::Snapshot snap = registry.Snap();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_GE(snap.counters[0].value, 0);
    // New series may register concurrently elsewhere in real code; here
    // the set is fixed, only values move.
    ASSERT_EQ(snap.histograms.size(), 1u);
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(counter->Value(), h->Count());
}

}  // namespace
}  // namespace obs
}  // namespace rvar
