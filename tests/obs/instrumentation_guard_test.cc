// Instrumentation guard: the obs layer must be write-only — toggling
// sampling on or off cannot change any computed result. The whole
// instrumented pipeline (corrupt-telemetry ingest, shape library build,
// canonical snapshot encoding, concurrent serving) runs once per sampling
// setting and every artifact is compared byte-for-byte / bit-for-bit.
// Lives in the `concurrency`-labeled binary so TSan sees the instrumented
// multi-threaded serving path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/shape_library.h"
#include "core/shape_service.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "sim/faults.h"
#include "sim/telemetry.h"

namespace rvar {
namespace core {
namespace {

// Deterministic corrupt run stream: clean bimodal runs plus injected
// NaN/negative/duplicate faults, all derived from fixed seeds.
std::vector<sim::JobRun> MakeRuns() {
  Rng rng(91);
  std::vector<sim::JobRun> runs;
  int64_t next_instance = 0;
  for (int g = 0; g < 12; ++g) {
    const double median = rng.Uniform(100.0, 300.0);
    for (int i = 0; i < 50; ++i) {
      const double factor = rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                               : rng.Normal(1.0, 0.05);
      sim::JobRun run;
      run.group_id = g;
      run.instance_id = next_instance++;
      run.input_gb = 10.0;
      run.runtime_seconds = median * std::max(0.05, factor);
      // Feature columns must be present and finite to pass Ingest.
      run.sku_vertex_fraction = {0.7, 0.3};
      run.sku_cpu_util = {rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
      runs.push_back(run);
    }
  }
  return runs;
}

struct PipelineArtifacts {
  std::string library_bytes;
  std::vector<std::vector<double>> posteriors;
  int64_t quarantined = 0;
};

// One full instrumented pipeline pass under the current sampling setting.
PipelineArtifacts RunPipeline() {
  PipelineArtifacts artifacts;

  sim::FaultPlanConfig fault_config;
  fault_config.nan_runtime_rate = 0.05;
  fault_config.negative_runtime_rate = 0.05;
  fault_config.duplicate_run_rate = 0.05;
  auto plan = sim::FaultPlan::Make(fault_config);
  EXPECT_TRUE(plan.ok());

  sim::TelemetryStore store;
  GroupMedians medians;
  for (sim::JobRun& run : plan->CorruptTelemetry(MakeRuns(), nullptr)) {
    (void)store.Ingest(std::move(run));  // corrupt runs quarantine here
  }
  artifacts.quarantined = static_cast<int64_t>(store.NumQuarantined());
  for (int g = 0; g < 12; ++g) {
    const std::vector<double> runtimes = store.GroupRuntimes(g);
    std::vector<double> sorted = runtimes;
    std::sort(sorted.begin(), sorted.end());
    medians.Set(g, sorted[sorted.size() / 2]);
  }

  ShapeLibraryConfig config;
  config.num_clusters = 2;
  config.min_support = 20;
  auto library = ShapeLibrary::Build(store, medians, config);
  EXPECT_TRUE(library.ok());
  artifacts.library_bytes = io::EncodeShapeLibrary(*library);

  // Concurrent serving over the library: per-group streams from multiple
  // threads, then single-threaded posterior reads (per-group order is
  // deterministic because each thread owns its groups).
  auto service = ShapeService::Make(&*library);
  EXPECT_TRUE(service.ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&service, t] {
      for (int g = t * 3; g < t * 3 + 3; ++g) {
        Rng rng(500 + static_cast<uint64_t>(g));
        for (int i = 0; i < 200; ++i) {
          EXPECT_TRUE(
              (*service)->Observe(g, rng.Uniform(0.5, 3.5)).ok());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int g = 0; g < 12; ++g) {
    artifacts.posteriors.push_back((*service)->Posterior(g));
  }
  return artifacts;
}

TEST(InstrumentationGuard, SamplingDoesNotChangeResults) {
  obs::SetSampling(true);
  const PipelineArtifacts with_sampling = RunPipeline();
  obs::SetSampling(false);
  const PipelineArtifacts without_sampling = RunPipeline();
  obs::SetSampling(true);

  ASSERT_FALSE(with_sampling.library_bytes.empty());
  EXPECT_EQ(with_sampling.library_bytes, without_sampling.library_bytes)
      << "instrumentation changed the canonical snapshot bytes";
  EXPECT_EQ(with_sampling.quarantined, without_sampling.quarantined);
  ASSERT_EQ(with_sampling.posteriors.size(),
            without_sampling.posteriors.size());
  for (size_t g = 0; g < with_sampling.posteriors.size(); ++g) {
    ASSERT_EQ(with_sampling.posteriors[g].size(),
              without_sampling.posteriors[g].size());
    for (size_t k = 0; k < with_sampling.posteriors[g].size(); ++k) {
      // Bit-for-bit, not approximately: instrumentation must not perturb
      // a single operation in the serving math.
      EXPECT_EQ(with_sampling.posteriors[g][k],
                without_sampling.posteriors[g][k])
          << "group " << g << " component " << k;
    }
  }
}

TEST(InstrumentationGuard, MetricsDoMoveWhileResultsDoNot) {
  // Sanity check on the guard itself: the pipeline genuinely exercises the
  // instrumented paths (counters advance), so the byte-equality above is
  // a real statement and not a vacuous one.
  obs::Registry& r = obs::Registry::Default();
  const int64_t ingest_before =
      r.GetCounter("telemetry_ingest_total")->Value();
  const int64_t observe_before =
      r.GetCounter("shape_service_observe_total")->Value();
  obs::SetSampling(true);
  (void)RunPipeline();
  EXPECT_GT(r.GetCounter("telemetry_ingest_total")->Value(), ingest_before);
  EXPECT_GT(r.GetCounter("shape_service_observe_total")->Value(),
            observe_before);
}

}  // namespace
}  // namespace core
}  // namespace rvar
