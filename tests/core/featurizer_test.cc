// Unit tests for the featurizer: exact history aggregates, cold-start
// fallback, and dataset assembly.

#include "core/featurizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/strings.h"

namespace rvar {
namespace core {
namespace {

class FeaturizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = sim::SkuCatalog::Default();
    Rng rng(1);
    sim::JobGroupSpec group;
    group.group_id = 0;
    group.name = "g0";
    group.plan = sim::GeneratePlan({}, &rng);
    group.allocated_tokens = 40;
    group.plan.estimated_cardinality = 1000.0;
    group.plan.estimated_cost = 5000.0;
    groups_.push_back(group);
    featurizer_ = std::make_unique<Featurizer>(&groups_, &catalog_);
  }

  sim::JobRun RunWith(double input, double runtime, int max_tokens,
                      double spare) {
    sim::JobRun run;
    run.group_id = 0;
    run.input_gb = input;
    run.runtime_seconds = runtime;
    run.max_tokens_used = max_tokens;
    run.avg_tokens_used = max_tokens * 0.8;
    run.avg_spare_tokens = spare;
    run.temp_data_gb = input * 0.5;
    run.total_vertices = 10;
    run.allocated_tokens = 40;
    run.sku_vertex_fraction.assign(catalog_.NumSkus(), 0.0);
    run.sku_vertex_fraction[2] = 1.0;
    run.sku_cpu_util.assign(catalog_.NumSkus(), 0.5);
    return run;
  }

  double Feature(const std::vector<double>& x, const char* name) {
    const int idx = featurizer_->IndexOf(name);
    EXPECT_GE(idx, 0) << name;
    return x[static_cast<size_t>(idx)];
  }

  sim::SkuCatalog catalog_;
  std::vector<sim::JobGroupSpec> groups_;
  std::unique_ptr<Featurizer> featurizer_;
};

TEST_F(FeaturizerTest, HistoryAggregatesAreExact) {
  sim::TelemetryStore history;
  history.Add(RunWith(10.0, 100.0, 50, 5.0));
  history.Add(RunWith(20.0, 200.0, 70, 15.0));
  history.Add(RunWith(30.0, 600.0, 90, 10.0));
  featurizer_->SetHistory(history);

  auto x = featurizer_->FeaturesFor(RunWith(99.0, 1.0, 1, 0.0));
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_input_gb_mean"), 20.0);
  EXPECT_NEAR(Feature(*x, "hist_input_gb_std"), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_temp_gb_mean"), 10.0);
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_max_tokens_mean"), 70.0);
  EXPECT_NEAR(Feature(*x, "hist_max_tokens_std"), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_spare_tokens_mean"), 10.0);
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_runtime_median"), 200.0);
  // SKU fraction history: everything on SKU 2.
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_sku_frac_Gen4"), 1.0);
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_sku_frac_Gen3"), 0.0);
}

TEST_F(FeaturizerTest, ColdStartFallsBackToRunTelemetry) {
  // No history set: the run's own values stand in.
  sim::JobRun run = RunWith(42.0, 123.0, 60, 7.0);
  auto x = featurizer_->FeaturesFor(run);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_input_gb_mean"), 42.0);
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_input_gb_std"), 0.0);
  EXPECT_DOUBLE_EQ(Feature(*x, "hist_max_tokens_mean"), 60.0);
}

TEST_F(FeaturizerTest, IntrinsicPlanFeatures) {
  auto x = featurizer_->FeaturesFor(RunWith(10.0, 10.0, 40, 0.0));
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(Feature(*x, "log_est_cardinality"), std::log(1000.0), 1e-12);
  EXPECT_NEAR(Feature(*x, "log_est_cost"), std::log(5000.0), 1e-12);
  EXPECT_DOUBLE_EQ(Feature(*x, "num_operators"),
                   static_cast<double>(groups_[0].plan.nodes.size()));
  EXPECT_DOUBLE_EQ(Feature(*x, "allocated_tokens"), 40.0);
  // Operator counts sum to the node count.
  double op_total = 0.0;
  for (int op = 0; op < sim::kNumOperatorTypes; ++op) {
    op_total += Feature(
        *x, StrCat("op_", sim::OperatorTypeName(
                              static_cast<sim::OperatorType>(op)))
                .c_str());
  }
  EXPECT_DOUBLE_EQ(op_total,
                   static_cast<double>(groups_[0].plan.nodes.size()));
}

TEST_F(FeaturizerTest, TimeOfDayEncodingIsOnUnitCircle) {
  sim::JobRun run = RunWith(10.0, 10.0, 40, 0.0);
  run.submit_time = 86400.0 * 3 + 6.0 * 3600.0;  // 06:00 on day 3
  auto x = featurizer_->FeaturesFor(run);
  ASSERT_TRUE(x.ok());
  const double s = Feature(*x, "tod_sin");
  const double c = Feature(*x, "tod_cos");
  EXPECT_NEAR(s * s + c * c, 1.0, 1e-9);
  EXPECT_NEAR(s, 1.0, 1e-9);  // sin(2pi * 0.25)
}

TEST_F(FeaturizerTest, UnknownGroupRejected) {
  sim::JobRun run = RunWith(10.0, 10.0, 40, 0.0);
  run.group_id = 7;  // not in groups_
  EXPECT_TRUE(featurizer_->FeaturesFor(run).status().IsOutOfRange());
}

TEST_F(FeaturizerTest, BuildDatasetSkipsUnlabeledGroups) {
  sim::TelemetryStore slice;
  slice.Add(RunWith(10.0, 100.0, 50, 0.0));
  slice.Add(RunWith(20.0, 120.0, 50, 0.0));
  std::unordered_map<int, int> labels;  // empty: nothing labeled
  auto d = featurizer_->BuildDataset(slice, labels);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumRows(), 0u);
  labels[0] = 3;
  d = featurizer_->BuildDataset(slice, labels);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumRows(), 2u);
  EXPECT_EQ(d->y, (std::vector<int>{3, 3}));
  EXPECT_EQ(d->feature_names.size(), d->NumFeatures());
}

TEST_F(FeaturizerTest, RegressionDatasetTargetsRuntime) {
  sim::TelemetryStore slice;
  slice.Add(RunWith(10.0, 111.0, 50, 0.0));
  slice.Add(RunWith(20.0, 222.0, 50, 0.0));
  auto d = featurizer_->BuildRegressionDataset(slice);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->target, (std::vector<double>{111.0, 222.0}));
  EXPECT_TRUE(d->y.empty());
}

}  // namespace
}  // namespace core
}  // namespace rvar
