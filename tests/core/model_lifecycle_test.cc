// ModelLifecycle tests: option validation, the train → gate → swap loop,
// warm-start provenance, gate rejection semantics, rollback, the
// background retrainer, ShapeService mirroring, and the determinism
// contract (same window + seed ⇒ byte-identical candidate at any thread
// count).

#include "core/model_lifecycle.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "io/model_registry.h"
#include "io/serialize.h"
#include "ml/dataset.h"

namespace rvar {
namespace core {
namespace {

// Two-class blobs whose distribution drifts with `phase`, so consecutive
// retrain windows differ but stay learnable.
ml::Dataset Window(int phase, int n_per_class, uint64_t seed) {
  ml::Dataset d;
  d.feature_names = {"x0", "x1"};
  Rng rng(seed);
  const double shift = 0.2 * phase;
  const double centers[2][2] = {{0.0 + shift, 0.0}, {3.0 + shift, 3.0}};
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < n_per_class; ++i) {
      d.x.push_back({rng.Normal(centers[c][0], 0.6),
                     rng.Normal(centers[c][1], 0.6)});
      d.y.push_back(c);
      d.target.push_back(0.0);
    }
  }
  return d;
}

class ModelLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("rvar_lifecycle_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    SetParallelThreads(0);
    std::filesystem::remove_all(dir_);
  }

  ModelLifecycleOptions Options() const {
    ModelLifecycleOptions options;
    options.dir = dir_;
    options.gbdt.num_rounds = 6;
    options.gbdt.max_leaves = 4;
    options.seed = 21;
    return options;
  }

  std::string dir_;
};

TEST_F(ModelLifecycleTest, OpenRejectsBadOptions) {
  {
    ModelLifecycleOptions options = Options();
    options.dir.clear();
    EXPECT_FALSE(ModelLifecycle::Open(options).ok());
  }
  for (double fraction : {0.0, -0.1, 1.0, 1.5}) {
    ModelLifecycleOptions options = Options();
    options.holdout_fraction = fraction;
    EXPECT_FALSE(ModelLifecycle::Open(options).ok()) << fraction;
  }
  {
    ModelLifecycleOptions options = Options();
    options.max_holdout_logloss =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(ModelLifecycle::Open(options).ok());
  }
  for (double agreement : {-0.1, 1.1}) {
    ModelLifecycleOptions options = Options();
    options.min_agreement = agreement;
    EXPECT_FALSE(ModelLifecycle::Open(options).ok()) << agreement;
  }
  {
    ModelLifecycleOptions options = Options();
    options.keep_retired = -1;
    EXPECT_FALSE(ModelLifecycle::Open(options).ok());
  }
}

TEST_F(ModelLifecycleTest, FirstCycleTrainsGatesAndServes) {
  auto lifecycle = ModelLifecycle::Open(Options());
  ASSERT_TRUE(lifecycle.ok()) << lifecycle.status().ToString();
  EXPECT_EQ((*lifecycle)->live_version(), -1);
  EXPECT_EQ((*lifecycle)->LiveModel(), nullptr);

  const ml::Dataset window = Window(0, 60, 5);
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(window, 0, 120).ok());
  EXPECT_EQ((*lifecycle)->live_version(), 1);
  ASSERT_NE((*lifecycle)->LiveModel(), nullptr);
  EXPECT_EQ((*lifecycle)->LiveModel()->num_classes(), 2);

  auto manifest = (*lifecycle)->registry().Manifest(1);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->state, io::ModelState::kActive);
  EXPECT_EQ(manifest->parent_version, -1);
  EXPECT_EQ(manifest->window_begin, 0u);
  EXPECT_EQ(manifest->window_end, 120u);
  EXPECT_EQ(manifest->num_rows, window.NumRows());
  EXPECT_GT(manifest->holdout_logloss, 0.0);
  EXPECT_DOUBLE_EQ(manifest->agreement, 1.0);  // no live model to disagree
}

TEST_F(ModelLifecycleTest, SecondCycleWarmStartsFromLive) {
  auto lifecycle = ModelLifecycle::Open(Options());
  ASSERT_TRUE(lifecycle.ok());
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
  ASSERT_TRUE(
      (*lifecycle)->RetrainAndSwap(Window(1, 60, 6), 120, 240).ok());

  EXPECT_EQ((*lifecycle)->live_version(), 2);
  auto m2 = (*lifecycle)->registry().Manifest(2);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->state, io::ModelState::kActive);
  EXPECT_EQ(m2->parent_version, 1);
  EXPECT_GE(m2->agreement, 0.0);
  EXPECT_LE(m2->agreement, 1.0);
  EXPECT_EQ((*lifecycle)->registry().Manifest(1)->state,
            io::ModelState::kRetired);
}

TEST_F(ModelLifecycleTest, GateRejectionLeavesServingUntouched) {
  ModelLifecycleOptions options = Options();
  // An impossible regression budget: every candidate after the first must
  // beat the live model by 1000 nats of logloss.
  options.max_logloss_regression = -1000.0;
  auto lifecycle = ModelLifecycle::Open(options);
  ASSERT_TRUE(lifecycle.ok());
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
  const auto live_before = (*lifecycle)->LiveModel();

  const Status rejected =
      (*lifecycle)->RetrainAndSwap(Window(1, 60, 6), 120, 240);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.message().find("logloss-regression"),
            std::string::npos)
      << rejected.ToString();

  // Serving never moved; the candidate is quarantined with the gate as
  // its reason and keeps its artifact for forensics.
  EXPECT_EQ((*lifecycle)->live_version(), 1);
  EXPECT_EQ((*lifecycle)->LiveModel(), live_before);
  auto m2 = (*lifecycle)->registry().Manifest(2);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->state, io::ModelState::kQuarantined);
  EXPECT_EQ(m2->reason.rfind("logloss-regression:", 0), 0u) << m2->reason;
  EXPECT_TRUE(
      std::filesystem::exists((*lifecycle)->registry().ModelPath(2)));

  // The quarantined version never serves again, but retraining continues
  // with a fresh id.
  EXPECT_FALSE((*lifecycle)->Rollback(2).ok());
  EXPECT_EQ((*lifecycle)->registry().next_version(), 3);
}

TEST_F(ModelLifecycleTest, RollbackReactivatesRetainedVersion) {
  auto lifecycle = ModelLifecycle::Open(Options());
  ASSERT_TRUE(lifecycle.ok());
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
  ASSERT_TRUE(
      (*lifecycle)->RetrainAndSwap(Window(1, 60, 6), 120, 240).ok());
  ASSERT_EQ((*lifecycle)->live_version(), 2);

  ASSERT_TRUE((*lifecycle)->Rollback(1).ok());
  EXPECT_EQ((*lifecycle)->live_version(), 1);
  ASSERT_NE((*lifecycle)->LiveModel(), nullptr);
  EXPECT_EQ((*lifecycle)->registry().Manifest(1)->state,
            io::ModelState::kActive);
  // The displaced version is retired, not quarantined: rolling forward
  // again stays possible.
  EXPECT_EQ((*lifecycle)->registry().Manifest(2)->state,
            io::ModelState::kRetired);
  ASSERT_TRUE((*lifecycle)->Rollback(2).ok());
  EXPECT_EQ((*lifecycle)->live_version(), 2);

  // Rolling back to the live version is a no-op; unknown versions fail.
  EXPECT_TRUE((*lifecycle)->Rollback(2).ok());
  EXPECT_FALSE((*lifecycle)->Rollback(99).ok());
}

TEST_F(ModelLifecycleTest, QuarantineLiveFallsBackToNewestRetired) {
  auto lifecycle = ModelLifecycle::Open(Options());
  ASSERT_TRUE(lifecycle.ok());
  // Nothing live yet: the kill switch has nothing to kill.
  EXPECT_TRUE((*lifecycle)->QuarantineLive("nothing").IsFailedPrecondition());

  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
  ASSERT_TRUE(
      (*lifecycle)->RetrainAndSwap(Window(1, 60, 6), 120, 240).ok());
  ASSERT_EQ((*lifecycle)->live_version(), 2);

  // v1 is retired, so killing v2 rolls serving back one epoch.
  ASSERT_TRUE((*lifecycle)->QuarantineLive("operator: bad output").ok());
  EXPECT_EQ((*lifecycle)->live_version(), 1);
  ASSERT_NE((*lifecycle)->LiveModel(), nullptr);
  EXPECT_EQ((*lifecycle)->registry().Manifest(2)->state,
            io::ModelState::kQuarantined);
  EXPECT_NE((*lifecycle)->registry().Manifest(2)->reason.find("bad output"),
            std::string::npos);
  EXPECT_EQ((*lifecycle)->registry().Manifest(1)->state,
            io::ModelState::kActive);
  // The quarantined version can never serve again.
  EXPECT_FALSE((*lifecycle)->Rollback(2).ok());
}

TEST_F(ModelLifecycleTest, QuarantineLiveWithNoFallbackClearsServing) {
  auto lifecycle = ModelLifecycle::Open(Options());
  ASSERT_TRUE(lifecycle.ok());
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
  ASSERT_EQ((*lifecycle)->live_version(), 1);

  // The only version on disk is the live one: the kill switch must still
  // work, leaving nothing serving rather than a sick model.
  ASSERT_TRUE((*lifecycle)->QuarantineLive("chaos").ok());
  EXPECT_EQ((*lifecycle)->live_version(), -1);
  EXPECT_EQ((*lifecycle)->LiveModel(), nullptr);
  EXPECT_EQ((*lifecycle)->registry().active_version(), -1);
  EXPECT_EQ((*lifecycle)->registry().Manifest(1)->state,
            io::ModelState::kQuarantined);
  // Nothing live -> a second kill is refused.
  EXPECT_TRUE((*lifecycle)->QuarantineLive("again").IsFailedPrecondition());

  // The cleared state survives a crash-and-reopen, and retraining resumes
  // with a fresh id.
  auto reopened = ModelLifecycle::Open(Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_version(), -1);
  EXPECT_EQ((*reopened)->LiveModel(), nullptr);
  ASSERT_TRUE((*reopened)->RetrainAndSwap(Window(1, 60, 6), 120, 240).ok());
  EXPECT_EQ((*reopened)->live_version(), 2);
}

TEST_F(ModelLifecycleTest, CandidateBytesIdenticalAtAnyThreadCount) {
  const ml::Dataset window = Window(0, 80, 9);
  std::vector<std::string> images;
  for (int threads : {1, 8}) {
    SetParallelThreads(threads);
    const std::string dir = dir_ + "_t" + std::to_string(threads);
    std::filesystem::remove_all(dir);
    ModelLifecycleOptions options = Options();
    options.dir = dir;
    auto lifecycle = ModelLifecycle::Open(options);
    ASSERT_TRUE(lifecycle.ok());
    auto version = (*lifecycle)->TrainCandidate(window, 0, 160);
    ASSERT_TRUE(version.ok()) << version.status().ToString();
    auto bytes = (*lifecycle)->registry().LoadModelBytes(*version);
    ASSERT_TRUE(bytes.ok());
    images.push_back(*std::move(bytes));
    std::filesystem::remove_all(dir);
  }
  SetParallelThreads(0);
  ASSERT_EQ(images.size(), 2u);
  EXPECT_EQ(images[0], images[1]) << "candidate bytes depend on threads";
}

TEST_F(ModelLifecycleTest, WarmStartedCandidateIdenticalAtAnyThreadCount) {
  const ml::Dataset first = Window(0, 60, 5);
  const ml::Dataset second = Window(1, 60, 6);
  std::vector<std::string> images;
  for (int threads : {1, 8}) {
    SetParallelThreads(threads);
    const std::string dir = dir_ + "_t" + std::to_string(threads);
    std::filesystem::remove_all(dir);
    ModelLifecycleOptions options = Options();
    options.dir = dir;
    auto lifecycle = ModelLifecycle::Open(options);
    ASSERT_TRUE(lifecycle.ok());
    ASSERT_TRUE((*lifecycle)->RetrainAndSwap(first, 0, 120).ok());
    auto version = (*lifecycle)->TrainCandidate(second, 120, 240);
    ASSERT_TRUE(version.ok()) << version.status().ToString();
    auto bytes = (*lifecycle)->registry().LoadModelBytes(*version);
    ASSERT_TRUE(bytes.ok());
    images.push_back(*std::move(bytes));
    std::filesystem::remove_all(dir);
  }
  SetParallelThreads(0);
  ASSERT_EQ(images.size(), 2u);
  EXPECT_EQ(images[0], images[1]);
}

TEST_F(ModelLifecycleTest, BackgroundRetrainerRunsCyclesOffThread) {
  auto lifecycle = ModelLifecycle::Open(Options());
  ASSERT_TRUE(lifecycle.ok());
  BackgroundRetrainer retrainer(lifecycle->get());

  ASSERT_TRUE(retrainer.StartCycle(Window(0, 60, 5), 0, 120));
  Status first = retrainer.Wait();
  ASSERT_TRUE(first.ok()) << first.ToString();
  EXPECT_FALSE(retrainer.busy());
  EXPECT_EQ((*lifecycle)->live_version(), 1);

  // The serving path stays readable while the next cycle runs.
  ASSERT_TRUE(retrainer.StartCycle(Window(1, 60, 6), 120, 240));
  while (retrainer.busy()) {
    ASSERT_NE((*lifecycle)->LiveModel(), nullptr);
  }
  ASSERT_TRUE(retrainer.Wait().ok());
  EXPECT_EQ((*lifecycle)->live_version(), 2);

  // Wait with no cycle in flight reports OK.
  EXPECT_TRUE(retrainer.Wait().ok());
}

TEST_F(ModelLifecycleTest, ReopenResumesFromActiveVersionBitIdentically) {
  const ml::Dataset window = Window(0, 60, 5);
  std::string active_bytes;
  {
    auto lifecycle = ModelLifecycle::Open(Options());
    ASSERT_TRUE(lifecycle.ok());
    ASSERT_TRUE((*lifecycle)->RetrainAndSwap(window, 0, 120).ok());
    auto bytes = (*lifecycle)->registry().LoadModelBytes(1);
    ASSERT_TRUE(bytes.ok());
    active_bytes = *std::move(bytes);
  }
  auto reopened = ModelLifecycle::Open(Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_version(), 1);
  ASSERT_NE((*reopened)->LiveModel(), nullptr);
  // The restored epoch re-encodes to the exact artifact bytes: restart
  // resumes on the same model, bit for bit.
  EXPECT_EQ(io::EncodeGbdtClassifier(*(*reopened)->LiveModel()),
            active_bytes);
  // Predictions survive the restart unchanged.
  for (const auto& row : window.x) {
    EXPECT_EQ((*reopened)->LiveModel()->PredictRaw(row).size(), 2u);
  }
}

}  // namespace
}  // namespace core
}  // namespace rvar
