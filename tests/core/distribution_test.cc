// Tests for RuntimeDistribution and OnlineShapeTracker, built over a
// synthetic shape library with known distributions.

#include "core/distribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/online.h"
#include "stats/descriptive.h"

namespace rvar {
namespace core {
namespace {

// Library with three clearly distinct Ratio shapes: tight around 1,
// bimodal {1, 3}, and heavy-tailed.
class DistributionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TelemetryStore store;
    GroupMedians medians;
    Rng rng(5);
    int gid = 0;
    auto add_family = [&](int family, int groups) {
      for (int g = 0; g < groups; ++g) {
        const double median = rng.Uniform(100.0, 300.0);
        for (int i = 0; i < 80; ++i) {
          double factor = 1.0;
          if (family == 0) {
            factor = std::max(0.2, rng.Normal(1.0, 0.04));
          } else if (family == 1) {
            factor = rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                        : rng.Normal(1.0, 0.05);
          } else {
            factor = rng.Bernoulli(0.1) ? rng.Uniform(8.0, 20.0)
                                        : std::max(0.2, rng.Normal(1.0, 0.2));
          }
          sim::JobRun run;
          run.group_id = gid;
          run.runtime_seconds = median * std::max(0.05, factor);
          store.Add(run);
        }
        medians.Set(gid, median);
        ++gid;
      }
    };
    add_family(0, 8);
    add_family(1, 8);
    add_family(2, 8);

    ShapeLibraryConfig config;
    config.num_clusters = 3;
    config.min_support = 20;
    config.kmeans.num_restarts = 6;
    auto lib = ShapeLibrary::Build(store, medians, config);
    ASSERT_TRUE(lib.ok()) << lib.status().ToString();
    library_ = new ShapeLibrary(std::move(*lib));

    // Identify the families' clusters via assignment of fresh samples.
    PosteriorAssigner assigner(library_);
    std::vector<double> tight(30, 1.0);
    tight_ = *assigner.Assign(tight);
    std::vector<double> bimodal;
    for (int i = 0; i < 30; ++i) bimodal.push_back(i % 2 ? 1.0 : 3.0);
    bimodal_ = *assigner.Assign(bimodal);
    std::vector<double> tailed;
    for (int i = 0; i < 30; ++i) tailed.push_back(i % 10 == 0 ? 12.0 : 1.0);
    tailed_ = *assigner.Assign(tailed);
  }
  static void TearDownTestSuite() {
    delete library_;
    library_ = nullptr;
  }

  static ShapeLibrary* library_;
  static int tight_, bimodal_, tailed_;
};

ShapeLibrary* DistributionTest::library_ = nullptr;
int DistributionTest::tight_ = -1;
int DistributionTest::bimodal_ = -1;
int DistributionTest::tailed_ = -1;

TEST_F(DistributionTest, FamiliesGetDistinctClusters) {
  EXPECT_NE(tight_, bimodal_);
  EXPECT_NE(tight_, tailed_);
  EXPECT_NE(bimodal_, tailed_);
}

TEST_F(DistributionTest, QuantilesInSeconds) {
  auto dist = RuntimeDistribution::Make(*library_, tight_, 200.0);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->cluster(), tight_);
  // Tight shape around ratio 1 => median ~200s, narrow spread.
  EXPECT_NEAR(dist->QuantileSeconds(0.5), 200.0, 20.0);
  EXPECT_LT(dist->QuantileSeconds(0.9) - dist->QuantileSeconds(0.1), 80.0);
  // Quantiles are monotone.
  double prev = 0.0;
  for (double q = 0.05; q <= 0.95; q += 0.05) {
    const double v = dist->QuantileSeconds(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_F(DistributionTest, BimodalShapeHasWideQuantileGap) {
  auto dist = RuntimeDistribution::Make(*library_, bimodal_, 100.0);
  ASSERT_TRUE(dist.ok());
  // Modes at ~100s and ~300s: the 90th percentile sits at the slow mode.
  EXPECT_GT(dist->QuantileSeconds(0.9), 250.0);
  EXPECT_LT(dist->QuantileSeconds(0.2), 150.0);
}

TEST_F(DistributionTest, ExceedanceProbability) {
  auto dist = RuntimeDistribution::Make(*library_, bimodal_, 100.0);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->ExceedanceProbability(1.0), 1.0, 1e-9);
  // ~40% of mass at the 3x mode.
  EXPECT_NEAR(dist->ExceedanceProbability(200.0), 0.4, 0.1);
  EXPECT_LT(dist->ExceedanceProbability(500.0), 0.05);
  // Monotone non-increasing in t.
  double prev = 1.0;
  for (double t = 50.0; t < 1200.0; t += 50.0) {
    const double p = dist->ExceedanceProbability(t);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST_F(DistributionTest, OutlierProbabilityMatchesTailedFamily) {
  auto tailed = RuntimeDistribution::Make(*library_, tailed_, 100.0);
  auto tight = RuntimeDistribution::Make(*library_, tight_, 100.0);
  ASSERT_TRUE(tailed.ok() && tight.ok());
  // The tailed family puts ~10% of runs at >= 8x; roughly the mass beyond
  // the 10x clip (some of it lands below 10).
  EXPECT_GT(tailed->OutlierProbability(), 0.02);
  EXPECT_LT(tight->OutlierProbability(), 0.01);
}

TEST_F(DistributionTest, SamplingMatchesQuantiles) {
  auto dist = RuntimeDistribution::Make(*library_, bimodal_, 100.0);
  ASSERT_TRUE(dist.ok());
  Rng rng(9);
  std::vector<double> xs = dist->Sample(20000, &rng);
  ASSERT_EQ(xs.size(), 20000u);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[static_cast<size_t>(0.9 * xs.size())],
              dist->QuantileSeconds(0.9), 25.0);
  EXPECT_NEAR(Mean(xs), dist->MeanSeconds(), 15.0);
}

TEST_F(DistributionTest, MakeRejectsBadArguments) {
  EXPECT_FALSE(RuntimeDistribution::Make(*library_, -1, 100.0).ok());
  EXPECT_FALSE(RuntimeDistribution::Make(*library_, 99, 100.0).ok());
  EXPECT_FALSE(RuntimeDistribution::Make(*library_, 0, 0.0).ok());
}

TEST_F(DistributionTest, OnlineTrackerConvergesToTrueShape) {
  auto tracker = OnlineShapeTracker::Make(library_);
  ASSERT_TRUE(tracker.ok());
  EXPECT_EQ(tracker->MostLikely(), -1);
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    tracker->Observe(rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                        : rng.Normal(1.0, 0.05));
  }
  EXPECT_EQ(tracker->MostLikely(), bimodal_);
  EXPECT_GT(tracker->ProbabilityOf(bimodal_), 0.95);
  EXPECT_EQ(tracker->count(), 50);
}

TEST_F(DistributionTest, OnlineTrackerWithDecayFollowsDrift) {
  auto tracker = OnlineShapeTracker::Make(library_, 0.9);
  ASSERT_TRUE(tracker.ok());
  Rng rng(12);
  // First behave tight, then drift to bimodal.
  for (int i = 0; i < 60; ++i) {
    tracker->Observe(std::max(0.2, rng.Normal(1.0, 0.04)));
  }
  EXPECT_EQ(tracker->MostLikely(), tight_);
  for (int i = 0; i < 60; ++i) {
    tracker->Observe(rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                        : rng.Normal(1.0, 0.05));
  }
  EXPECT_EQ(tracker->MostLikely(), bimodal_);
}

TEST_F(DistributionTest, OnlineTrackerMatchesBatchAssignerWithoutDecay) {
  auto tracker = OnlineShapeTracker::Make(library_, 1.0);
  ASSERT_TRUE(tracker.ok());
  PosteriorAssigner assigner(library_);
  Rng rng(13);
  std::vector<double> obs;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.Bernoulli(0.1) ? 12.0 : rng.Normal(1.0, 0.2);
    obs.push_back(x);
    tracker->Observe(x);
  }
  auto batch = assigner.Assign(obs);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(tracker->MostLikely(), *batch);
  // Log-likelihood sums agree with the batch computation.
  auto lls = assigner.LogLikelihoods(obs);
  ASSERT_TRUE(lls.ok());
  for (size_t c = 0; c < lls->size(); ++c) {
    EXPECT_NEAR(tracker->log_likelihood()[c], (*lls)[c].log_likelihood,
                1e-9);
  }
}

TEST_F(DistributionTest, OnlineTrackerResets) {
  auto tracker = OnlineShapeTracker::Make(library_);
  ASSERT_TRUE(tracker.ok());
  tracker->Observe(1.0);
  tracker->Reset();
  EXPECT_EQ(tracker->count(), 0);
  EXPECT_EQ(tracker->MostLikely(), -1);
  const auto p = tracker->Posterior();
  for (double v : p) EXPECT_NEAR(v, 1.0 / p.size(), 1e-12);
}

TEST_F(DistributionTest, TrackerMakeRejectsBadArgs) {
  EXPECT_FALSE(OnlineShapeTracker::Make(nullptr).ok());
  EXPECT_FALSE(OnlineShapeTracker::Make(library_, 0.0).ok());
  EXPECT_FALSE(OnlineShapeTracker::Make(library_, 1.5).ok());
  EXPECT_FALSE(OnlineShapeTracker::Make(library_, 1.0, 0.0).ok());
}

}  // namespace
}  // namespace core
}  // namespace rvar
