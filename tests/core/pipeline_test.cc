// End-to-end integration tests: simulate a study suite, train the 2-step
// predictor, evaluate it, run the baseline comparison, explanations, and
// what-if scenarios — the full Figure 2 framework in one flow.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/baseline.h"
#include "core/explainer.h"
#include "core/predictor.h"
#include "core/report.h"
#include "core/whatif.h"

namespace rvar {
namespace core {
namespace {

// One shared suite + predictor across tests (expensive to build).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SuiteConfig config;
    config.num_groups = 60;
    config.d1_days = 4.0;
    config.d2_days = 2.0;
    config.d3_days = 1.0;
    config.d1_support = 15;
    config.workload.min_period_seconds = 600.0;
    config.workload.max_period_seconds = 4.0 * 3600.0;
    config.seed = 2024;
    auto suite = sim::BuildStudySuite(config);
    ASSERT_TRUE(suite.ok()) << suite.status().ToString();
    suite_ = new sim::StudySuite(std::move(*suite));

    PredictorConfig pc;
    pc.shape.num_clusters = 5;
    pc.shape.min_support = 15;
    pc.shape.kmeans.num_restarts = 4;
    pc.gbdt.num_rounds = 40;
    auto predictor = VariationPredictor::Train(*suite_, pc);
    ASSERT_TRUE(predictor.ok()) << predictor.status().ToString();
    predictor_ = predictor->release();
  }

  static void TearDownTestSuite() {
    delete predictor_;
    delete suite_;
    predictor_ = nullptr;
    suite_ = nullptr;
  }

  static sim::StudySuite* suite_;
  static VariationPredictor* predictor_;
};

sim::StudySuite* PipelineTest::suite_ = nullptr;
VariationPredictor* PipelineTest::predictor_ = nullptr;

TEST_F(PipelineTest, ShapesDiscovered) {
  const ShapeLibrary& shapes = predictor_->shapes();
  EXPECT_EQ(shapes.num_clusters(), 5);
  EXPECT_GT(shapes.reference_groups().size(), 5u);
  EXPECT_GT(shapes.inertia(), 0.0);
  // IQR ordering.
  for (int c = 1; c < shapes.num_clusters(); ++c) {
    EXPECT_GE(shapes.stats(c).iqr, shapes.stats(c - 1).iqr);
  }
}

TEST_F(PipelineTest, PredictionAccuracyBeatsChance) {
  auto eval = predictor_->Evaluate(suite_->d3.telemetry);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  // 5 classes: chance ~20-40% (majority class). The 2-step model should be
  // far above; the paper reports >96% at production scale.
  EXPECT_GT(eval->accuracy, 0.7) << "accuracy " << eval->accuracy;
  EXPECT_EQ(eval->confusion.num_classes, 5);
  EXPECT_NEAR(eval->confusion.DiagonalMass(), eval->accuracy, 1e-9);
  // Support buckets exist and cover all evaluated runs.
  int64_t bucket_runs = 0;
  for (const auto& b : eval->by_support) bucket_runs += b.num_runs;
  EXPECT_GT(bucket_runs, 0);
}

TEST_F(PipelineTest, LabelsAgreeBetweenStepsOnTrainingSlice) {
  // The classifier should reproduce the posterior labels on D2 (it was
  // trained on them).
  auto labels = predictor_->LabelGroups(suite_->d2.telemetry, 3);
  ASSERT_TRUE(labels.ok());
  ASSERT_FALSE(labels->empty());
  int hits = 0, total = 0;
  for (const sim::JobRun& run : suite_->d2.telemetry.runs()) {
    const auto it = labels->find(run.group_id);
    if (it == labels->end()) continue;
    auto predicted = predictor_->PredictShape(run);
    ASSERT_TRUE(predicted.ok());
    hits += (*predicted == it->second);
    ++total;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.8);
}

TEST_F(PipelineTest, FeatureImportanceMapsBackToFullSpace) {
  const std::vector<double> imp = predictor_->FullFeatureImportance();
  EXPECT_EQ(imp.size(), predictor_->featurizer().FeatureNames().size());
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Dropped features carry zero importance.
  std::vector<bool> kept(imp.size(), false);
  for (size_t f : predictor_->kept_features()) kept[f] = true;
  for (size_t f = 0; f < imp.size(); ++f) {
    if (!kept[f]) {
      EXPECT_EQ(imp[f], 0.0);
    }
  }
}

TEST_F(PipelineTest, BaselineComparisonFavorsProposedOnKs) {
  ml::ForestConfig forest_config;
  forest_config.num_trees = 40;
  auto baseline =
      RegressionBaseline::Train(*suite_, *predictor_, forest_config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  Rng rng(5);
  auto cmp = CompareReconstruction(suite_->d3.telemetry, *predictor_,
                                   **baseline, &rng);
  ASSERT_TRUE(cmp.ok()) << cmp.status().ToString();
  EXPECT_GT(cmp->num_runs, 100);
  EXPECT_GT(cmp->regression_ks, 0.0);
  EXPECT_GT(cmp->proposed_ks, 0.0);
  // The paper's headline: the proposed method reconstructs the runtime
  // distribution better (KS reduced by ~9%).
  EXPECT_LT(cmp->proposed_ks, cmp->regression_ks);
  EXPECT_LT(cmp->proposed_qq_mae, cmp->regression_qq_mae);
  EXPECT_EQ(cmp->regression_qq.size(), 99u);
  EXPECT_GT(cmp->KsReductionPercent(), 0.0);
}

TEST_F(PipelineTest, ExplainerSatisfiesLocalAccuracy) {
  Explainer explainer(predictor_);
  auto explanations = explainer.ExplainSlice(suite_->d3.telemetry, 10);
  ASSERT_TRUE(explanations.ok()) << explanations.status().ToString();
  ASSERT_EQ(explanations->size(), 10u);
  // Each explanation reconstructs the model's raw score per class.
  const size_t i = 0;
  const RunExplanation& e = (*explanations)[i];
  EXPECT_EQ(e.phi.size(),
            static_cast<size_t>(predictor_->model().num_classes()));
  EXPECT_EQ(e.phi[0].size(),
            predictor_->featurizer().FeatureNames().size());
}

TEST_F(PipelineTest, ExplainerSummaryRanksFeatures) {
  Explainer explainer(predictor_);
  auto explanations = explainer.ExplainSlice(suite_->d3.telemetry, 30);
  ASSERT_TRUE(explanations.ok());
  auto summary = explainer.SummarizeForShape(*explanations, 2);
  ASSERT_TRUE(summary.ok());
  ASSERT_FALSE(summary->empty());
  for (size_t i = 1; i < summary->size(); ++i) {
    EXPECT_GE((*summary)[i - 1].mean_abs_shap, (*summary)[i].mean_abs_shap);
  }
  EXPECT_TRUE(explainer.SummarizeForShape(*explanations, 99)
                  .status()
                  .IsOutOfRange());
  EXPECT_FALSE(explainer.SummarizeForShape({}, 0).ok());
}

TEST_F(PipelineTest, WhatIfScenariosRunAndConserveRuns) {
  WhatIfEngine engine(predictor_);
  for (const auto& [name, transform] :
       std::vector<std::pair<std::string, FeatureTransform>>{
           {"spare", WhatIfEngine::DisableSpareTokens()},
           {"sku", WhatIfEngine::ShiftSkuVertices("Gen3.5", "Gen5.2")},
           {"load", WhatIfEngine::EqualizeLoad()}}) {
    auto result = engine.Run(suite_->d3.telemetry, name, transform);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_EQ(result->num_runs,
              static_cast<int>(suite_->d3.telemetry.NumRuns()));
    // Transition counts conserve the total.
    int total = 0;
    for (const auto& row : result->transition_counts) {
      for (int c : row) total += c;
    }
    EXPECT_EQ(total, result->num_runs);
    // Migrations are sorted by count.
    for (size_t i = 1; i < result->top_migrations.size(); ++i) {
      EXPECT_GE(result->top_migrations[i - 1].count,
                result->top_migrations[i].count);
    }
  }
}

TEST_F(PipelineTest, IdentityTransformChangesNothing) {
  WhatIfEngine engine(predictor_);
  auto result = engine.Run(suite_->d3.telemetry, "identity",
                           [](const Featurizer&, std::vector<double>*) {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_changed, 0);
  EXPECT_TRUE(result->top_migrations.empty());
  EXPECT_EQ(result->ChangedFraction(), 0.0);
}

TEST_F(PipelineTest, ReportsRenderNonEmpty) {
  EXPECT_FALSE(RenderDatasetSummary(*suite_).empty());
  EXPECT_FALSE(RenderShapeStats(predictor_->shapes()).empty());
  auto eval = predictor_->Evaluate(suite_->d3.telemetry);
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(RenderSupportBuckets(*eval).empty());
  WhatIfEngine engine(predictor_);
  auto scenario = engine.Run(suite_->d3.telemetry, "spare",
                             WhatIfEngine::DisableSpareTokens());
  ASSERT_TRUE(scenario.ok());
  const std::string rendered =
      RenderScenario(*scenario, predictor_->shapes());
  EXPECT_NE(rendered.find("Scenario: spare"), std::string::npos);
}

TEST_F(PipelineTest, FeaturizerBuildsConsistentVectors) {
  const Featurizer& featurizer = predictor_->featurizer();
  const auto& names = featurizer.FeatureNames();
  EXPECT_GT(names.size(), 30u);
  EXPECT_GE(featurizer.IndexOf("hist_spare_tokens_mean"), 0);
  EXPECT_GE(featurizer.IndexOf("sku_util_Gen5.2"), 0);
  EXPECT_EQ(featurizer.IndexOf("not_a_feature"), -1);
  const sim::JobRun& run = suite_->d3.telemetry.run(0);
  auto x = featurizer.FeaturesFor(run);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->size(), names.size());
  for (double v : *x) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(PipelineTest, PredictorRejectsWrongSizeFeatureVector) {
  EXPECT_TRUE(predictor_->PredictFromFeatures({1.0, 2.0})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PipelineTest, SampleNormalizedDrawsFromShapeSupport) {
  Rng rng(3);
  const auto xs = predictor_->SampleNormalized(0, 500, &rng);
  ASSERT_EQ(xs.size(), 500u);
  const BinGrid& grid = predictor_->shapes().grid();
  for (double x : xs) {
    EXPECT_GE(x, grid.lo());
    EXPECT_LE(x, grid.hi());
  }
}

}  // namespace
}  // namespace core
}  // namespace rvar
