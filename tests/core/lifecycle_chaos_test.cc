// Lifecycle chaos suite (ctest -L chaos): every crash window and
// corruption the fail-safe design claims to survive, proven by
// kill-and-reopen. The invariant under test is single: whatever happens
// to a candidate — crash before validation, bit rot, torn write, gate
// rejection — serving stays on the last good version, and a restart
// resumes it bit-identically.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/model_lifecycle.h"
#include "io/model_registry.h"
#include "io/serialize.h"
#include "ml/dataset.h"
#include "sim/faults.h"

namespace rvar {
namespace core {
namespace {

ml::Dataset Window(int phase, int n_per_class, uint64_t seed) {
  ml::Dataset d;
  d.feature_names = {"x0", "x1"};
  Rng rng(seed);
  const double shift = 0.2 * phase;
  const double centers[2][2] = {{0.0 + shift, 0.0}, {3.0 + shift, 3.0}};
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < n_per_class; ++i) {
      d.x.push_back({rng.Normal(centers[c][0], 0.6),
                     rng.Normal(centers[c][1], 0.6)});
      d.y.push_back(c);
      d.target.push_back(0.0);
    }
  }
  return d;
}

class LifecycleChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("rvar_lifecycle_chaos_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ModelLifecycleOptions Options() const {
    ModelLifecycleOptions options;
    options.dir = dir_;
    options.gbdt.num_rounds = 6;
    options.gbdt.max_leaves = 4;
    options.seed = 21;
    return options;
  }

  std::string dir_;
};

// Crash between TrainCandidate and ValidateAndSwap: the process dies with
// an unvalidated candidate on disk. Reopen must quarantine it — it never
// passed a gate, so it must never serve — while the last good version
// keeps serving.
TEST_F(LifecycleChaosTest, KillDuringRetrainQuarantinesOrphan) {
  std::string good_bytes;
  {
    auto lifecycle = ModelLifecycle::Open(Options());
    ASSERT_TRUE(lifecycle.ok());
    ASSERT_TRUE(
        (*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
    auto bytes = (*lifecycle)->registry().LoadModelBytes(1);
    ASSERT_TRUE(bytes.ok());
    good_bytes = *std::move(bytes);
    // Phase 1 only — then "kill" the process by dropping the lifecycle.
    auto version = (*lifecycle)->TrainCandidate(Window(1, 60, 6), 120, 240);
    ASSERT_TRUE(version.ok());
    ASSERT_EQ(*version, 2);
  }

  auto reopened = ModelLifecycle::Open(Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_version(), 1);
  ASSERT_NE((*reopened)->LiveModel(), nullptr);
  EXPECT_EQ(io::EncodeGbdtClassifier(*(*reopened)->LiveModel()),
            good_bytes);

  auto m2 = (*reopened)->registry().Manifest(2);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->state, io::ModelState::kQuarantined);
  EXPECT_EQ(m2->reason.rfind("orphaned:", 0), 0u) << m2->reason;
  // The orphan can never be validated or served later.
  EXPECT_FALSE((*reopened)->ValidateAndSwap(2, Window(1, 60, 6)).ok());
  EXPECT_FALSE((*reopened)->Rollback(2).ok());
  // Its id is burned: the next candidate gets a fresh version.
  EXPECT_EQ((*reopened)->registry().next_version(), 3);
}

// Bit rot lands on the candidate artifact between the two phases (the
// StorageFaultPlan injects it). The CRC re-read inside ValidateAndSwap
// must catch it, quarantine the candidate, and leave serving untouched.
TEST_F(LifecycleChaosTest, CorruptedCandidateIsCaughtByGate) {
  auto lifecycle = ModelLifecycle::Open(Options());
  ASSERT_TRUE(lifecycle.ok());
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
  const auto live_before = (*lifecycle)->LiveModel();

  const ml::Dataset window = Window(1, 60, 6);
  auto version = (*lifecycle)->TrainCandidate(window, 120, 240);
  ASSERT_TRUE(version.ok());

  const sim::StorageFaultPlan faults(71);
  ASSERT_TRUE(faults
                  .CorruptFile((*lifecycle)->registry().ModelPath(*version),
                               /*num_flips=*/5, /*truncate_fraction=*/0.0)
                  .ok());

  const Status rejected = (*lifecycle)->ValidateAndSwap(*version, window);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.message().find("artifact-corrupt"), std::string::npos)
      << rejected.ToString();
  EXPECT_EQ((*lifecycle)->live_version(), 1);
  EXPECT_EQ((*lifecycle)->LiveModel(), live_before);
  EXPECT_EQ((*lifecycle)->registry().Manifest(*version)->state,
            io::ModelState::kQuarantined);
}

// A torn write (truncated tail) is caught the same way as bit rot.
TEST_F(LifecycleChaosTest, TornCandidateWriteIsCaughtByGate) {
  auto lifecycle = ModelLifecycle::Open(Options());
  ASSERT_TRUE(lifecycle.ok());
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());

  const ml::Dataset window = Window(1, 60, 6);
  auto version = (*lifecycle)->TrainCandidate(window, 120, 240);
  ASSERT_TRUE(version.ok());
  const sim::StorageFaultPlan faults(72);
  ASSERT_TRUE(faults
                  .CorruptFile((*lifecycle)->registry().ModelPath(*version),
                               /*num_flips=*/0, /*truncate_fraction=*/0.5)
                  .ok());

  EXPECT_FALSE((*lifecycle)->ValidateAndSwap(*version, window).ok());
  EXPECT_EQ((*lifecycle)->live_version(), 1);
}

// The active artifact itself rots while the process is down. Reopen must
// fall back to the newest loadable retired version and quarantine the
// corrupt one — serving resumes on the last good version, not on garbage
// and not on nothing.
TEST_F(LifecycleChaosTest, CorruptActiveFallsBackToRetiredOnReopen) {
  std::string v1_bytes;
  {
    auto lifecycle = ModelLifecycle::Open(Options());
    ASSERT_TRUE(lifecycle.ok());
    ASSERT_TRUE(
        (*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
    ASSERT_TRUE(
        (*lifecycle)->RetrainAndSwap(Window(1, 60, 6), 120, 240).ok());
    ASSERT_EQ((*lifecycle)->live_version(), 2);
    auto bytes = (*lifecycle)->registry().LoadModelBytes(1);
    ASSERT_TRUE(bytes.ok());
    v1_bytes = *std::move(bytes);
    const sim::StorageFaultPlan faults(73);
    ASSERT_TRUE(
        faults.CorruptFile((*lifecycle)->registry().ModelPath(2), 5, 0.0)
            .ok());
  }

  auto reopened = ModelLifecycle::Open(Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_version(), 1);
  ASSERT_NE((*reopened)->LiveModel(), nullptr);
  EXPECT_EQ(io::EncodeGbdtClassifier(*(*reopened)->LiveModel()), v1_bytes);
  auto m2 = (*reopened)->registry().Manifest(2);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->state, io::ModelState::kQuarantined);
  EXPECT_EQ(m2->reason.rfind("artifact-corrupt:", 0), 0u) << m2->reason;
  // The fallback is durable: a second reopen lands in the same state.
  auto again = ModelLifecycle::Open(Options());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->live_version(), 1);
}

// Every artifact rots: nothing is loadable. The lifecycle must open
// cleanly with nothing serving rather than serve garbage or fail.
TEST_F(LifecycleChaosTest, AllArtifactsCorruptMeansNothingServes) {
  {
    auto lifecycle = ModelLifecycle::Open(Options());
    ASSERT_TRUE(lifecycle.ok());
    ASSERT_TRUE(
        (*lifecycle)->RetrainAndSwap(Window(0, 60, 5), 0, 120).ok());
    const sim::StorageFaultPlan faults(74);
    ASSERT_TRUE(
        faults.CorruptFile((*lifecycle)->registry().ModelPath(1), 5, 0.0)
            .ok());
  }
  auto reopened = ModelLifecycle::Open(Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_version(), -1);
  EXPECT_EQ((*reopened)->LiveModel(), nullptr);
  // The registry still works: a fresh cycle recovers the deployment.
  ASSERT_TRUE((*reopened)->RetrainAndSwap(Window(2, 60, 7), 240, 360).ok());
  EXPECT_GT((*reopened)->live_version(), 1);
}

// Repeated kill-and-reopen at every phase boundary: after each crash the
// survivor keeps serving a gate-approved version whose bytes round-trip
// exactly, and version ids never regress or repeat.
TEST_F(LifecycleChaosTest, RepeatedCrashReopenNeverRegresses) {
  int64_t last_live = -1;
  int64_t last_next = 1;
  std::string last_live_bytes;
  const sim::StorageFaultPlan faults(75);
  for (int round = 0; round < 6; ++round) {
    auto lifecycle = ModelLifecycle::Open(Options());
    ASSERT_TRUE(lifecycle.ok()) << "round " << round << ": "
                                << lifecycle.status().ToString();
    // Crash recovery invariants vs the previous round.
    EXPECT_GE((*lifecycle)->registry().next_version(), last_next);
    if (last_live >= 0) {
      ASSERT_EQ((*lifecycle)->live_version(), last_live);
      EXPECT_EQ(io::EncodeGbdtClassifier(*(*lifecycle)->LiveModel()),
                last_live_bytes);
    }

    const ml::Dataset window = Window(round, 50, 100 + round);
    const uint64_t begin = 100u * round;
    switch (round % 3) {
      case 0:  // clean full cycle
        ASSERT_TRUE(
            (*lifecycle)->RetrainAndSwap(window, begin, begin + 100).ok());
        break;
      case 1: {  // crash after phase 1
        ASSERT_TRUE(
            (*lifecycle)->TrainCandidate(window, begin, begin + 100).ok());
        break;
      }
      case 2: {  // corrupted candidate caught at the gate
        auto version =
            (*lifecycle)->TrainCandidate(window, begin, begin + 100);
        ASSERT_TRUE(version.ok());
        ASSERT_TRUE(
            faults
                .CorruptFile((*lifecycle)->registry().ModelPath(*version),
                             3, 0.0, /*salt=*/round)
                .ok());
        EXPECT_FALSE((*lifecycle)->ValidateAndSwap(*version, window).ok());
        break;
      }
    }
    last_live = (*lifecycle)->live_version();
    last_next = (*lifecycle)->registry().next_version();
    if (last_live >= 0) {
      auto bytes = (*lifecycle)->registry().LoadModelBytes(last_live);
      ASSERT_TRUE(bytes.ok());
      last_live_bytes = *std::move(bytes);
    }
  }
  // At least the round-0 and round-3 cycles must have produced a live
  // model that survived everything since.
  EXPECT_GE(last_live, 1);
}

}  // namespace
}  // namespace core
}  // namespace rvar
