// Tests for the Griffon-style regression baseline and the Figure 8
// reconstruction comparison machinery.

#include "core/baseline.h"

#include <gtest/gtest.h>

#include "core/report.h"

namespace rvar {
namespace core {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SuiteConfig config;
    config.num_groups = 40;
    config.d1_days = 4.0;
    config.d2_days = 2.0;
    config.d3_days = 1.0;
    config.d1_support = 15;
    config.workload.min_period_seconds = 600.0;
    config.workload.max_period_seconds = 2.0 * 3600.0;
    config.seed = 31337;
    auto suite = sim::BuildStudySuite(config);
    ASSERT_TRUE(suite.ok());
    suite_ = new sim::StudySuite(std::move(*suite));

    PredictorConfig pc;
    pc.shape.num_clusters = 5;
    pc.shape.min_support = 15;
    pc.shape.kmeans.num_restarts = 4;
    pc.gbdt.num_rounds = 25;
    auto predictor = VariationPredictor::Train(*suite_, pc);
    ASSERT_TRUE(predictor.ok()) << predictor.status().ToString();
    predictor_ = predictor->release();
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete suite_;
    predictor_ = nullptr;
    suite_ = nullptr;
  }

  static sim::StudySuite* suite_;
  static VariationPredictor* predictor_;
};

sim::StudySuite* BaselineTest::suite_ = nullptr;
VariationPredictor* BaselineTest::predictor_ = nullptr;

TEST_F(BaselineTest, PredictsPositiveRuntimesOfRightScale) {
  ml::ForestConfig forest_config;
  forest_config.num_trees = 25;
  auto baseline =
      RegressionBaseline::Train(*suite_, *predictor_, forest_config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  // Point predictions should land within a factor of ~3 of the truth for
  // most runs (log-space regression on strongly informative features).
  int within = 0, total = 0;
  for (size_t i = 0; i < suite_->d3.telemetry.NumRuns(); i += 7) {
    const sim::JobRun& run = suite_->d3.telemetry.run(i);
    auto predicted = (*baseline)->PredictRuntime(run);
    ASSERT_TRUE(predicted.ok());
    EXPECT_GT(*predicted, 0.0);
    const double ratio = *predicted / run.runtime_seconds;
    within += (ratio > 1.0 / 3.0 && ratio < 3.0);
    ++total;
  }
  EXPECT_GT(static_cast<double>(within) / total, 0.8);
}

TEST_F(BaselineTest, ComparisonProducesCompleteArtifacts) {
  ml::ForestConfig forest_config;
  forest_config.num_trees = 25;
  auto baseline =
      RegressionBaseline::Train(*suite_, *predictor_, forest_config);
  ASSERT_TRUE(baseline.ok());
  Rng rng(1);
  auto cmp = CompareReconstruction(suite_->d3.telemetry, *predictor_,
                                   **baseline, &rng, 49);
  ASSERT_TRUE(cmp.ok()) << cmp.status().ToString();
  EXPECT_GT(cmp->num_runs, 0);
  EXPECT_EQ(cmp->regression_qq.size(), 49u);
  EXPECT_EQ(cmp->proposed_qq.size(), 49u);
  EXPECT_GE(cmp->regression_qq_mae, 0.0);
  EXPECT_GE(cmp->proposed_qq_mae, 0.0);
  EXPECT_GT(cmp->regression_ks, 0.0);
  EXPECT_LE(cmp->regression_ks, 1.0);
  // QQ actual quantiles are shared between the two series.
  for (size_t i = 0; i < cmp->regression_qq.size(); ++i) {
    EXPECT_DOUBLE_EQ(cmp->regression_qq[i].actual,
                     cmp->proposed_qq[i].actual);
  }
  // The rendered report mentions both methods.
  const std::string report = RenderReconstruction(*cmp);
  EXPECT_NE(report.find("regression"), std::string::npos);
  EXPECT_NE(report.find("proposed"), std::string::npos);
}

TEST_F(BaselineTest, KsReductionPercentDefinition) {
  ReconstructionComparison cmp;
  cmp.regression_ks = 0.5;
  cmp.proposed_ks = 0.4;
  EXPECT_NEAR(cmp.KsReductionPercent(), 20.0, 1e-12);
  cmp.regression_ks = 0.0;
  EXPECT_EQ(cmp.KsReductionPercent(), 0.0);
}

TEST_F(BaselineTest, ReportsRenderDatasetAndBuckets) {
  EXPECT_NE(RenderDatasetSummary(*suite_).find("D1"), std::string::npos);
  auto eval = predictor_->Evaluate(suite_->d3.telemetry);
  ASSERT_TRUE(eval.ok());
  const std::string buckets = RenderSupportBuckets(*eval);
  EXPECT_NE(buckets.find("occurrences"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace rvar
