#include "core/scalar_metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rvar {
namespace core {
namespace {

sim::JobRun RunOf(int group, double runtime) {
  sim::JobRun run;
  run.group_id = group;
  run.runtime_seconds = runtime;
  return run;
}

TEST(StalagmiteTest, ClassifiesRegimes) {
  sim::TelemetryStore store;
  GroupMedians medians;
  medians.Set(0, 100.0);
  // 6 diagonal, 2 mild, 2 stalagmite runs.
  for (double r : {90.0, 95.0, 100.0, 105.0, 110.0, 140.0}) {
    store.Add(RunOf(0, r));
  }
  store.Add(RunOf(0, 200.0));
  store.Add(RunOf(0, 250.0));
  store.Add(RunOf(0, 400.0));
  store.Add(RunOf(0, 1500.0));
  // A run of an unknown group is skipped.
  store.Add(RunOf(9, 100.0));

  auto analysis = AnalyzeStalagmite(store, medians, 1.5, 3.0);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->total_runs, 10);
  EXPECT_EQ(analysis->diagonal_runs, 6);
  EXPECT_EQ(analysis->mild_runs, 2);
  EXPECT_EQ(analysis->stalagmite_runs, 2);
  EXPECT_DOUBLE_EQ(analysis->DiagonalShare(), 0.6);
  EXPECT_DOUBLE_EQ(analysis->StalagmiteShare(), 0.2);
}

TEST(StalagmiteTest, CorrelationHighAcrossScales) {
  sim::TelemetryStore store;
  GroupMedians medians;
  Rng rng(3);
  for (int g = 0; g < 40; ++g) {
    const double median = rng.LogNormal(4.0, 1.5);
    medians.Set(g, median);
    for (int i = 0; i < 10; ++i) {
      store.Add(RunOf(g, median * std::max(0.2, rng.Normal(1.0, 0.1))));
    }
  }
  auto analysis = AnalyzeStalagmite(store, medians);
  ASSERT_TRUE(analysis.ok());
  // Cross-group scale dominates: the log-log correlation is high even
  // though it says nothing about the within-group tail.
  EXPECT_GT(analysis->log_correlation, 0.95);
}

TEST(StalagmiteTest, RejectsBadInput) {
  sim::TelemetryStore store;
  GroupMedians medians;
  EXPECT_TRUE(AnalyzeStalagmite(store, medians).status()
                  .IsFailedPrecondition());
  store.Add(RunOf(0, 1.0));
  medians.Set(0, 1.0);
  EXPECT_TRUE(AnalyzeStalagmite(store, medians, 3.0, 1.5)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AnalyzeStalagmite(store, medians, 0.5, 3.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(CovStabilityTest, StableGroupsCorrelatedWindows) {
  sim::TelemetryStore historic, recent;
  Rng rng(5);
  // Groups with persistent, distinct COV levels.
  for (int g = 0; g < 30; ++g) {
    const double sigma = 0.05 + 0.02 * g;  // increasing variability
    for (int i = 0; i < 40; ++i) {
      historic.Add(RunOf(g, std::max(1.0, rng.Normal(100.0, 100.0 * sigma))));
      recent.Add(RunOf(g, std::max(1.0, rng.Normal(100.0, 100.0 * sigma))));
    }
  }
  auto stability = AnalyzeCovStability(historic, recent, 10);
  ASSERT_TRUE(stability.ok());
  EXPECT_EQ(stability->num_groups, 30);
  EXPECT_GT(stability->correlation, 0.8);
  EXPECT_FALSE(stability->buckets.empty());
  for (const auto& b : stability->buckets) {
    EXPECT_LE(b.new_cov_p10, b.new_cov_median);
    EXPECT_LE(b.new_cov_median, b.new_cov_p90);
  }
}

TEST(CovStabilityTest, RegimeSwitchingGroupsDecorrelate) {
  sim::TelemetryStore historic, recent;
  Rng rng(6);
  // Each group is quiet in one window and turbulent in the other (rare
  // events present only in one window) — historic COV misleads.
  for (int g = 0; g < 30; ++g) {
    const bool quiet_first = g % 2 == 0;
    for (int i = 0; i < 40; ++i) {
      const double quiet = std::max(1.0, rng.Normal(100.0, 3.0));
      const double loud =
          rng.Bernoulli(0.15) ? rng.Uniform(300.0, 1500.0) : quiet;
      historic.Add(RunOf(g, quiet_first ? quiet : loud));
      recent.Add(RunOf(g, quiet_first ? loud : quiet));
    }
  }
  auto stability = AnalyzeCovStability(historic, recent, 10);
  ASSERT_TRUE(stability.ok());
  EXPECT_LT(stability->correlation, 0.0);
}

TEST(CovStabilityTest, RequiresTwoQualifyingGroups) {
  sim::TelemetryStore historic, recent;
  for (int i = 0; i < 5; ++i) {
    historic.Add(RunOf(0, 10.0 + i));
    recent.Add(RunOf(0, 10.0 + i));
  }
  EXPECT_TRUE(AnalyzeCovStability(historic, recent, 3)
                  .status()
                  .IsFailedPrecondition());
}

TEST(TelemetryCsvTest, ExportsHeaderAndRows) {
  sim::TelemetryStore store;
  sim::JobRun run;
  run.group_id = 3;
  run.instance_id = 17;
  run.runtime_seconds = 12.5;
  run.sku_vertex_fraction = {0.25, 0.75};
  run.sku_cpu_util = {0.5, 0.6};
  store.Add(run);
  const std::string csv = store.ToCsv({"GenA", "GenB"});
  EXPECT_NE(csv.find("group_id,instance_id"), std::string::npos);
  EXPECT_NE(csv.find("sku_frac_GenA"), std::string::npos);
  EXPECT_NE(csv.find("sku_util_GenB"), std::string::npos);
  EXPECT_NE(csv.find("3,17,"), std::string::npos);
  EXPECT_NE(csv.find("12.500"), std::string::npos);
  // Exactly header + 1 data row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  // File round trip.
  const std::string path = testing::TempDir() + "/rvar_telemetry.csv";
  EXPECT_TRUE(store.ExportCsv(path, {"GenA", "GenB"}).ok());
}

}  // namespace
}  // namespace core
}  // namespace rvar
