#include "core/normalization.h"

#include <gtest/gtest.h>

namespace rvar {
namespace core {
namespace {

sim::JobRun RunOf(int group, double runtime) {
  sim::JobRun run;
  run.group_id = group;
  run.runtime_seconds = runtime;
  return run;
}

TEST(NormalizationTest, RatioAndDelta) {
  EXPECT_DOUBLE_EQ(
      NormalizeRuntime(Normalization::kRatio, 150.0, 100.0), 1.5);
  EXPECT_DOUBLE_EQ(
      NormalizeRuntime(Normalization::kDelta, 150.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(
      NormalizeRuntime(Normalization::kDelta, 80.0, 100.0), -20.0);
}

TEST(NormalizationTest, CanonicalGridsMatchPaper) {
  const BinGrid ratio = CanonicalGrid(Normalization::kRatio);
  EXPECT_EQ(ratio.num_bins(), 200);
  EXPECT_DOUBLE_EQ(ratio.lo(), 0.0);
  EXPECT_DOUBLE_EQ(ratio.hi(), 10.0);
  const BinGrid delta = CanonicalGrid(Normalization::kDelta);
  EXPECT_DOUBLE_EQ(delta.lo(), -900.0);
  EXPECT_DOUBLE_EQ(delta.hi(), 900.0);
  EXPECT_DOUBLE_EQ(OutlierThreshold(Normalization::kRatio), 10.0);
  EXPECT_DOUBLE_EQ(OutlierThreshold(Normalization::kDelta), 900.0);
  EXPECT_STREQ(NormalizationName(Normalization::kRatio), "Ratio");
  EXPECT_STREQ(NormalizationName(Normalization::kDelta), "Delta");
}

TEST(GroupMediansTest, FromTelemetry) {
  sim::TelemetryStore store;
  for (double t : {10.0, 20.0, 30.0}) store.Add(RunOf(0, t));
  for (double t : {5.0, 100.0}) store.Add(RunOf(7, t));
  GroupMedians medians = GroupMedians::FromTelemetry(store);
  EXPECT_EQ(medians.size(), 2u);
  ASSERT_TRUE(medians.Has(0));
  EXPECT_DOUBLE_EQ(*medians.Of(0), 20.0);
  EXPECT_DOUBLE_EQ(*medians.Of(7), 52.5);
  EXPECT_FALSE(medians.Has(3));
  EXPECT_TRUE(medians.Of(3).status().IsNotFound());
}

TEST(GroupMediansTest, SetOverrides) {
  GroupMedians medians;
  medians.Set(5, 42.0);
  EXPECT_DOUBLE_EQ(*medians.Of(5), 42.0);
  medians.Set(5, 50.0);
  EXPECT_DOUBLE_EQ(*medians.Of(5), 50.0);
}

TEST(NormalizedGroupRuntimesTest, RatioAndDeltaAgainstMedian) {
  sim::TelemetryStore store;
  for (double t : {50.0, 100.0, 200.0}) store.Add(RunOf(1, t));
  GroupMedians medians;
  medians.Set(1, 100.0);
  auto ratio = NormalizedGroupRuntimes(store, 1, medians,
                                       Normalization::kRatio);
  ASSERT_TRUE(ratio.ok());
  EXPECT_EQ(*ratio, (std::vector<double>{0.5, 1.0, 2.0}));
  auto delta = NormalizedGroupRuntimes(store, 1, medians,
                                       Normalization::kDelta);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*delta, (std::vector<double>{-50.0, 0.0, 100.0}));
}

TEST(NormalizedGroupRuntimesTest, FailsWithoutMedianOrBadMedian) {
  sim::TelemetryStore store;
  store.Add(RunOf(1, 10.0));
  GroupMedians medians;
  EXPECT_TRUE(NormalizedGroupRuntimes(store, 1, medians,
                                      Normalization::kRatio)
                  .status()
                  .IsNotFound());
  medians.Set(1, 0.0);
  EXPECT_TRUE(NormalizedGroupRuntimes(store, 1, medians,
                                      Normalization::kRatio)
                  .status()
                  .IsFailedPrecondition());
  // Delta works even with zero median.
  EXPECT_TRUE(NormalizedGroupRuntimes(store, 1, medians,
                                      Normalization::kDelta)
                  .ok());
}

}  // namespace
}  // namespace core
}  // namespace rvar
