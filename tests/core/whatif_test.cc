// Unit tests for the what-if transforms themselves (the engine-level
// integration is covered in pipeline_test.cc). A featurizer with a real
// catalog resolves the names; the transforms must rewrite consistent
// counterfactual vectors.

#include "core/whatif.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "sim/datasets.h"

namespace rvar {
namespace core {
namespace {

class WhatIfTransformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = sim::SkuCatalog::Default();
    groups_.clear();
    featurizer_ = std::make_unique<Featurizer>(&groups_, &catalog_);
    x_.assign(featurizer_->FeatureNames().size(), 0.0);
  }

  void Set(const std::string& name, double v) {
    const int idx = featurizer_->IndexOf(name);
    ASSERT_GE(idx, 0) << name;
    x_[static_cast<size_t>(idx)] = v;
  }
  double Get(const std::string& name) const {
    const int idx = featurizer_->IndexOf(name);
    EXPECT_GE(idx, 0) << name;
    return idx >= 0 ? x_[static_cast<size_t>(idx)] : -1.0;
  }

  sim::SkuCatalog catalog_;
  std::vector<sim::JobGroupSpec> groups_;
  std::unique_ptr<Featurizer> featurizer_;
  std::vector<double> x_;
};

TEST_F(WhatIfTransformTest, DisableSpareTokensCollapsesTokenStats) {
  Set("allocated_tokens", 50.0);
  Set("hist_spare_tokens_mean", 30.0);
  Set("spare_availability", 0.4);
  Set("hist_max_tokens_mean", 120.0);  // peak above allocation
  Set("hist_avg_tokens_mean", 80.0);
  Set("hist_max_tokens_std", 25.0);
  auto transform = WhatIfEngine::DisableSpareTokens();
  transform(*featurizer_, &x_);
  EXPECT_EQ(Get("hist_spare_tokens_mean"), 0.0);
  EXPECT_EQ(Get("spare_availability"), 0.0);
  EXPECT_EQ(Get("hist_max_tokens_mean"), 50.0);
  EXPECT_EQ(Get("hist_avg_tokens_mean"), 50.0);
  EXPECT_EQ(Get("hist_max_tokens_std"), 0.0);
  EXPECT_EQ(Get("allocated_tokens"), 50.0);
}

TEST_F(WhatIfTransformTest, DisableSpareLeavesProvisionedJobsAlone) {
  // A job whose usage never exceeded its allocation keeps its stats.
  Set("allocated_tokens", 100.0);
  Set("hist_max_tokens_mean", 60.0);
  Set("hist_avg_tokens_mean", 40.0);
  Set("hist_max_tokens_std", 5.0);
  auto transform = WhatIfEngine::DisableSpareTokens();
  transform(*featurizer_, &x_);
  EXPECT_EQ(Get("hist_max_tokens_mean"), 60.0);
  EXPECT_EQ(Get("hist_avg_tokens_mean"), 40.0);
  EXPECT_EQ(Get("hist_max_tokens_std"), 5.0);
}

TEST_F(WhatIfTransformTest, ShiftSkuMovesFractionAndUtilization) {
  Set("hist_sku_frac_Gen3.5", 0.8);
  Set("hist_sku_frac_Gen5.2", 0.1);
  Set("sku_util_Gen3.5", 0.7);
  Set("sku_util_Gen5.2", 0.4);
  Set("cpu_util_mean", 0.65);
  auto transform = WhatIfEngine::ShiftSkuVertices("Gen3.5", "Gen5.2");
  transform(*featurizer_, &x_);
  EXPECT_DOUBLE_EQ(Get("hist_sku_frac_Gen3.5"), 0.0);
  EXPECT_DOUBLE_EQ(Get("hist_sku_frac_Gen5.2"), 0.9);
  // The moved 0.8 of vertices now see Gen5.2's utilization.
  EXPECT_NEAR(Get("cpu_util_mean"), 0.65 + 0.8 * (0.4 - 0.7), 1e-12);
  // The SKU utilizations themselves (cluster facts) do not change.
  EXPECT_DOUBLE_EQ(Get("sku_util_Gen3.5"), 0.7);
}

TEST_F(WhatIfTransformTest, ShiftSkuNoopWithoutPresence) {
  Set("hist_sku_frac_Gen5.2", 0.5);
  Set("cpu_util_mean", 0.5);
  auto transform = WhatIfEngine::ShiftSkuVertices("Gen3.5", "Gen5.2");
  transform(*featurizer_, &x_);
  EXPECT_DOUBLE_EQ(Get("hist_sku_frac_Gen5.2"), 0.5);
  EXPECT_DOUBLE_EQ(Get("cpu_util_mean"), 0.5);
}

TEST_F(WhatIfTransformTest, EqualizeLoadFlattensUtilization) {
  // Per-SKU utils spread 0.3..0.9; job's own machines hot.
  const auto& names = featurizer_->FeatureNames();
  double expected_mean = 0.0;
  int n = 0;
  for (size_t f = 0; f < names.size(); ++f) {
    if (StartsWith(names[f], "sku_util_")) {
      const double v = 0.3 + 0.1 * n;
      x_[f] = v;
      expected_mean += v;
      ++n;
    }
  }
  expected_mean /= n;
  Set("cpu_util_std", 0.2);
  Set("cpu_util_mean", 0.85);
  auto transform = WhatIfEngine::EqualizeLoad();
  transform(*featurizer_, &x_);
  EXPECT_DOUBLE_EQ(Get("cpu_util_std"), 0.0);
  EXPECT_NEAR(Get("cpu_util_mean"), expected_mean, 1e-12);
  for (size_t f = 0; f < names.size(); ++f) {
    if (StartsWith(names[f], "sku_util_")) {
      EXPECT_NEAR(x_[f], expected_mean, 1e-12);
    }
  }
}

TEST_F(WhatIfTransformTest, TransformsIgnoreUnknownFeatureNames) {
  // A transform referencing a SKU that does not exist must be a no-op
  // rather than a crash.
  auto transform = WhatIfEngine::ShiftSkuVertices("Gen99", "Gen100");
  std::vector<double> before = x_;
  transform(*featurizer_, &x_);
  EXPECT_EQ(x_, before);
}

}  // namespace
}  // namespace core
}  // namespace rvar
