// End-to-end chaos test: the full analysis pipeline driven by a hostile
// FaultPlan — machines failing mid-stage, spare tokens revoked, telemetry
// dropped, duplicated, corrupted, and reordered — must degrade gracefully:
// no crashes, no non-finite outputs, exact quarantine accounting, and
// bit-identical results when replayed with the same seed.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/assigner.h"
#include "core/normalization.h"
#include "core/online.h"
#include "core/shape_library.h"
#include "sim/datasets.h"

namespace rvar {
namespace core {
namespace {

sim::SuiteConfig ChaosConfig() {
  sim::SuiteConfig config;
  config.num_groups = 40;
  config.d1_days = 3.0;
  config.d2_days = 1.0;
  config.d3_days = 0.5;
  config.d1_support = 10;
  config.workload.min_period_seconds = 600.0;
  config.workload.max_period_seconds = 4.0 * 3600.0;
  config.seed = 1337;
  // >= 10% machine-fault rate, >= 5% telemetry corruption (the defect
  // kinds that reach ingest), plus drops and heavy reordering.
  config.faults.seed = 99;
  config.faults.machine_fault_rate = 0.10;
  config.faults.token_revocation_rate = 0.05;
  config.faults.drop_run_rate = 0.02;
  config.faults.duplicate_run_rate = 0.02;
  config.faults.nan_runtime_rate = 0.02;
  config.faults.negative_runtime_rate = 0.02;
  config.faults.missing_columns_rate = 0.02;
  config.faults.reorder_window = 25;
  return config;
}

class ChaosPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto suite = sim::BuildStudySuite(ChaosConfig());
    ASSERT_TRUE(suite.ok()) << suite.status().ToString();
    suite_ = new sim::StudySuite(std::move(*suite));
  }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static sim::StudySuite* suite_;
};

sim::StudySuite* ChaosPipelineTest::suite_ = nullptr;

TEST_F(ChaosPipelineTest, FaultsActuallyFired) {
  const sim::FaultReport& report = suite_->faults;
  EXPECT_GT(report.machine_faults, 0);
  EXPECT_GT(report.vertex_retries, 0);
  EXPECT_GT(report.dropped_runs, 0);
  EXPECT_GT(report.corrupted_runs, 0);
  EXPECT_GT(report.reordered_runs, 0);
  EXPECT_GT(suite_->d1.telemetry.NumRuns(), 0u);
}

TEST_F(ChaosPipelineTest, QuarantineAccountingIsExact) {
  const int64_t quarantined =
      static_cast<int64_t>(suite_->d1.telemetry.NumQuarantined()) +
      static_cast<int64_t>(suite_->d2.telemetry.NumQuarantined()) +
      static_cast<int64_t>(suite_->d3.telemetry.NumQuarantined());
  // Every run that reached ingest carrying an injected defect — and no
  // other — must have been quarantined.
  EXPECT_EQ(quarantined, suite_->faults.corrupted_runs);
  EXPECT_EQ(quarantined, suite_->faults.quarantined_runs);
}

TEST_F(ChaosPipelineTest, StoredTelemetryIsClean) {
  for (const sim::DatasetSlice* slice :
       {&suite_->d1, &suite_->d2, &suite_->d3}) {
    for (const sim::JobRun& run : slice->telemetry.runs()) {
      EXPECT_TRUE(std::isfinite(run.runtime_seconds));
      EXPECT_GE(run.runtime_seconds, 0.0);
      EXPECT_FALSE(run.sku_vertex_fraction.empty());
      EXPECT_GE(run.machine_faults, 0);
      EXPECT_EQ(run.vertex_retries, run.machine_faults);
    }
  }
}

TEST_F(ChaosPipelineTest, PipelineSurvivesEndToEnd) {
  const GroupMedians medians =
      GroupMedians::FromTelemetry(suite_->d1.telemetry);

  ShapeLibraryConfig sc;
  sc.num_clusters = 4;
  sc.min_support = 10;
  sc.kmeans.num_restarts = 3;
  auto library = ShapeLibrary::Build(suite_->d1.telemetry, medians, sc);
  ASSERT_TRUE(library.ok()) << library.status().ToString();
  EXPECT_EQ(library->num_clusters(), 4);
  for (int c = 0; c < library->num_clusters(); ++c) {
    double mass = 0.0;
    for (double p : library->shape(c)) {
      EXPECT_TRUE(std::isfinite(p));
      EXPECT_GE(p, 0.0);
      mass += p;
    }
    EXPECT_NEAR(mass, 1.0, 1e-9);
    EXPECT_TRUE(std::isfinite(library->stats(c).iqr));
    EXPECT_TRUE(std::isfinite(library->stats(c).p95));
  }

  // Posterior assignment of every D3 group with usable history.
  PosteriorAssigner assigner(&*library);
  int assigned = 0;
  for (int gid : suite_->d3.telemetry.GroupIds()) {
    auto normalized = NormalizedGroupRuntimes(
        suite_->d3.telemetry, gid, medians, sc.normalization);
    if (!normalized.ok()) continue;  // no D1 history for this group
    auto cluster = assigner.Assign(*normalized);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    EXPECT_GE(*cluster, 0);
    EXPECT_LT(*cluster, library->num_clusters());
    ++assigned;
  }
  EXPECT_GT(assigned, 0);

  // Streaming tracker over the D3 runs of one assigned group.
  auto tracker = OnlineShapeTracker::Make(&*library, 0.99);
  ASSERT_TRUE(tracker.ok());
  for (int gid : suite_->d3.telemetry.GroupIds()) {
    auto normalized = NormalizedGroupRuntimes(
        suite_->d3.telemetry, gid, medians, sc.normalization);
    if (!normalized.ok()) continue;
    for (double x : *normalized) tracker->Observe(x);
  }
  ASSERT_GT(tracker->count(), 0);
  EXPECT_GE(tracker->MostLikely(), 0);
  double total = 0.0;
  for (double p : tracker->Posterior()) {
    EXPECT_TRUE(std::isfinite(p));
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ChaosPipelineTest, SameSeedReplaysIdentically) {
  auto replay = sim::BuildStudySuite(ChaosConfig());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->faults.machine_faults, suite_->faults.machine_faults);
  EXPECT_EQ(replay->faults.failed_jobs, suite_->faults.failed_jobs);
  EXPECT_EQ(replay->faults.dropped_runs, suite_->faults.dropped_runs);
  EXPECT_EQ(replay->faults.quarantined_runs,
            suite_->faults.quarantined_runs);
  ASSERT_EQ(replay->d3.telemetry.NumRuns(), suite_->d3.telemetry.NumRuns());
  for (size_t i = 0; i < replay->d3.telemetry.NumRuns(); ++i) {
    const sim::JobRun& a = replay->d3.telemetry.run(i);
    const sim::JobRun& b = suite_->d3.telemetry.run(i);
    EXPECT_EQ(a.instance_id, b.instance_id);
    EXPECT_DOUBLE_EQ(a.runtime_seconds, b.runtime_seconds);
    EXPECT_EQ(a.machine_faults, b.machine_faults);
  }
}

TEST_F(ChaosPipelineTest, TrackerClampsHostileObservations) {
  const GroupMedians medians =
      GroupMedians::FromTelemetry(suite_->d1.telemetry);
  ShapeLibraryConfig sc;
  sc.num_clusters = 3;
  sc.min_support = 10;
  sc.kmeans.num_restarts = 2;
  auto library = ShapeLibrary::Build(suite_->d1.telemetry, medians, sc);
  ASSERT_TRUE(library.ok());
  auto tracker = OnlineShapeTracker::Make(&*library);
  ASSERT_TRUE(tracker.ok());
  tracker->Observe(1.0);
  tracker->Observe(std::nan(""));
  tracker->Observe(std::numeric_limits<double>::infinity());
  tracker->Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(tracker->num_clamped(), 3);
  for (double ll : tracker->log_likelihood()) {
    EXPECT_TRUE(std::isfinite(ll));
  }
}

}  // namespace
}  // namespace core
}  // namespace rvar
