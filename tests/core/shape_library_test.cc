#include "core/shape_library.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "core/assigner.h"
#include "stats/distance.h"
#include "stats/kll_sketch.h"

namespace rvar {
namespace core {
namespace {

// Builds a telemetry store with three families of groups whose
// ratio-normalized runtime distributions are clearly distinct:
//  - "tight":   runtime ~ median * N(1, 0.03)
//  - "wide":    runtime ~ median * N(1, 0.5) (clipped positive)
//  - "bimodal": median * N(1, 0.05) with 30% of runs at ~3x median.
struct SyntheticReference {
  sim::TelemetryStore store;
  GroupMedians medians;
  std::vector<int> tight_groups, wide_groups, bimodal_groups;
};

SyntheticReference MakeReference(int groups_per_family, int runs_per_group,
                                 uint64_t seed) {
  SyntheticReference ref;
  Rng rng(seed);
  int gid = 0;
  auto add_group = [&](int family) {
    const double median = rng.Uniform(50.0, 500.0);
    for (int i = 0; i < runs_per_group; ++i) {
      double factor = 1.0;
      if (family == 0) {
        factor = std::max(0.1, rng.Normal(1.0, 0.03));
      } else if (family == 1) {
        factor = std::max(0.1, rng.Normal(1.0, 0.5));
      } else {
        factor = rng.Bernoulli(0.3) ? rng.Normal(3.0, 0.1)
                                    : rng.Normal(1.0, 0.05);
        factor = std::max(0.1, factor);
      }
      sim::JobRun run;
      run.group_id = gid;
      run.runtime_seconds = median * factor;
      ref.store.Add(run);
    }
    ref.medians.Set(gid, median);
    if (family == 0) ref.tight_groups.push_back(gid);
    if (family == 1) ref.wide_groups.push_back(gid);
    if (family == 2) ref.bimodal_groups.push_back(gid);
    ++gid;
  };
  for (int g = 0; g < groups_per_family; ++g) {
    add_group(0);
    add_group(1);
    add_group(2);
  }
  return ref;
}

ShapeLibraryConfig SmallConfig(int clusters = 3) {
  ShapeLibraryConfig config;
  config.num_clusters = clusters;
  config.min_support = 10;
  config.kmeans.num_restarts = 5;
  return config;
}

TEST(ShapeLibraryTest, RecoversDistinctFamilies) {
  SyntheticReference ref = MakeReference(12, 60, 1);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  EXPECT_EQ(lib->num_clusters(), 3);
  // All groups of one family land in the same cluster, and the three
  // families get three distinct clusters.
  auto family_cluster = [&](const std::vector<int>& gids) {
    const int c0 = lib->ReferenceAssignment(gids[0]);
    for (int gid : gids) {
      EXPECT_EQ(lib->ReferenceAssignment(gid), c0) << "group " << gid;
    }
    return c0;
  };
  const int ct = family_cluster(ref.tight_groups);
  const int cw = family_cluster(ref.wide_groups);
  const int cb = family_cluster(ref.bimodal_groups);
  EXPECT_NE(ct, cw);
  EXPECT_NE(ct, cb);
  EXPECT_NE(cw, cb);
}

TEST(ShapeLibraryTest, ClustersOrderedByIqr) {
  SyntheticReference ref = MakeReference(12, 60, 2);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  for (int c = 1; c < lib->num_clusters(); ++c) {
    EXPECT_GE(lib->stats(c).iqr, lib->stats(c - 1).iqr);
  }
  // The tight family must be cluster 0 (smallest IQR).
  EXPECT_EQ(lib->ReferenceAssignment(ref.tight_groups[0]), 0);
}

TEST(ShapeLibraryTest, StatsMatchFamilyProperties) {
  SyntheticReference ref = MakeReference(12, 80, 3);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  const int tight = lib->ReferenceAssignment(ref.tight_groups[0]);
  const int bimodal = lib->ReferenceAssignment(ref.bimodal_groups[0]);
  // Tight cluster: tiny IQR around 1.0, p95 close to 1.
  EXPECT_LT(lib->stats(tight).iqr, 0.1);
  EXPECT_NEAR(lib->stats(tight).p95, 1.05, 0.1);
  // Bimodal cluster: p95 reaches the 3x mode.
  EXPECT_GT(lib->stats(bimodal).p95, 2.0);
  // Sample counts and groups add up.
  int64_t samples = 0;
  int groups = 0;
  for (int c = 0; c < lib->num_clusters(); ++c) {
    samples += lib->stats(c).num_samples;
    groups += lib->stats(c).num_groups;
  }
  EXPECT_EQ(samples, static_cast<int64_t>(ref.store.NumRuns()));
  EXPECT_EQ(groups, 36);
}

TEST(ShapeLibraryTest, ShapePmfsNormalized) {
  SyntheticReference ref = MakeReference(10, 50, 4);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  for (int c = 0; c < lib->num_clusters(); ++c) {
    const auto& pmf = lib->shape(c);
    EXPECT_EQ(static_cast<int>(pmf.size()), lib->grid().num_bins());
    EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-9);
    for (double v : pmf) EXPECT_GE(v, 0.0);
  }
}

TEST(ShapeLibraryTest, MinSupportFiltersGroups) {
  SyntheticReference ref = MakeReference(10, 15, 5);  // support 15 < 20
  ShapeLibraryConfig config = SmallConfig();
  config.min_support = 20;
  EXPECT_TRUE(ShapeLibrary::Build(ref.store, ref.medians, config)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ShapeLibraryTest, RejectsBadConfig) {
  SyntheticReference ref = MakeReference(5, 30, 6);
  ShapeLibraryConfig config = SmallConfig();
  config.num_clusters = 0;
  EXPECT_FALSE(ShapeLibrary::Build(ref.store, ref.medians, config).ok());
  config = SmallConfig();
  config.num_bins = 1;
  EXPECT_FALSE(ShapeLibrary::Build(ref.store, ref.medians, config).ok());
  config = SmallConfig();
  config.smoothing_radius = -1;
  EXPECT_FALSE(ShapeLibrary::Build(ref.store, ref.medians, config).ok());
}

TEST(ShapeLibraryTest, DeltaNormalizationWorks) {
  SyntheticReference ref = MakeReference(12, 60, 7);
  ShapeLibraryConfig config = SmallConfig();
  config.normalization = Normalization::kDelta;
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, config);
  ASSERT_TRUE(lib.ok());
  EXPECT_DOUBLE_EQ(lib->grid().lo(), -900.0);
  // Delta IQRs are in seconds.
  EXPECT_GT(lib->stats(lib->num_clusters() - 1).iqr, 1.0);
}

TEST(ShapeLibraryTest, ObservationPmfSmoothedAndNormalized) {
  SyntheticReference ref = MakeReference(10, 50, 8);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  const auto pmf = lib->ObservationPmf({1.0, 1.0, 1.01, 0.99});
  EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-9);
  // Smoothing spreads mass over neighboring bins.
  int nonzero = 0;
  for (double v : pmf) nonzero += (v > 0.0);
  EXPECT_GT(nonzero, 2);
}

TEST(PosteriorAssignerTest, AssignsObservationsToOwnFamily) {
  SyntheticReference ref = MakeReference(12, 60, 9);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  PosteriorAssigner assigner(&*lib);

  Rng rng(10);
  // Fresh observations from each family (only 10 samples, like the paper's
  // Figure 6 example) must map to the family's cluster.
  auto draw_tight = [&] { return std::max(0.1, rng.Normal(1.0, 0.03)); };
  auto draw_bimodal = [&] {
    return rng.Bernoulli(0.3) ? rng.Normal(3.0, 0.1)
                              : rng.Normal(1.0, 0.05);
  };
  std::vector<double> tight_obs, bimodal_obs;
  for (int i = 0; i < 10; ++i) {
    tight_obs.push_back(draw_tight());
    bimodal_obs.push_back(draw_bimodal());
  }
  auto tight_cluster = assigner.Assign(tight_obs);
  ASSERT_TRUE(tight_cluster.ok());
  EXPECT_EQ(*tight_cluster, lib->ReferenceAssignment(ref.tight_groups[0]));
  auto bimodal_cluster = assigner.Assign(bimodal_obs);
  ASSERT_TRUE(bimodal_cluster.ok());
  EXPECT_EQ(*bimodal_cluster,
            lib->ReferenceAssignment(ref.bimodal_groups[0]));
}

TEST(PosteriorAssignerTest, LikelihoodRanksSimilarShapesHigher) {
  SyntheticReference ref = MakeReference(12, 60, 11);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  PosteriorAssigner assigner(&*lib);
  std::vector<double> obs(20, 1.0);  // spike at the median
  auto lls = assigner.LogLikelihoods(obs);
  ASSERT_TRUE(lls.ok());
  ASSERT_EQ(lls->size(), 3u);
  const int tight = lib->ReferenceAssignment(ref.tight_groups[0]);
  for (const ClusterLikelihood& cl : *lls) {
    if (cl.cluster != tight) {
      EXPECT_GT((*lls)[static_cast<size_t>(tight)].log_likelihood,
                cl.log_likelihood);
    }
  }
  ClusterLikelihood best;
  ASSERT_TRUE(assigner.Assign(obs, &best).ok());
  EXPECT_EQ(best.cluster, tight);
  EXPECT_LE(best.log_likelihood, 0.0);
}

TEST(PosteriorAssignerTest, LikelihoodScalesWithSampleSize) {
  // Equation 3: doubling the observations doubles the log-likelihood.
  SyntheticReference ref = MakeReference(10, 50, 12);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  PosteriorAssigner assigner(&*lib);
  std::vector<double> once = {0.9, 1.0, 1.1, 3.0};
  std::vector<double> twice = once;
  twice.insert(twice.end(), once.begin(), once.end());
  auto ll1 = assigner.LogLikelihoods(once);
  auto ll2 = assigner.LogLikelihoods(twice);
  ASSERT_TRUE(ll1.ok() && ll2.ok());
  for (size_t c = 0; c < ll1->size(); ++c) {
    EXPECT_NEAR((*ll2)[c].log_likelihood, 2.0 * (*ll1)[c].log_likelihood,
                1e-9);
  }
}

TEST(PosteriorAssignerTest, EmptyObservationsRejected) {
  SyntheticReference ref = MakeReference(10, 50, 13);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  PosteriorAssigner assigner(&*lib);
  EXPECT_TRUE(assigner.Assign({}).status().IsInvalidArgument());
}

// The sketch-vs-dense equivalence property (ISSUE 10 acceptance): the same
// reference store built with bounded per-group sketches and with dense
// per-group buffers must produce the same reference assignments and
// centroids/stats within the KLL rank-error tolerance. While groups stay
// under k observations the sketch is exact, so the match is bit-level up
// to double→float value rounding.
TEST(ShapeLibraryTest, SketchBuildMatchesDenseBuildExactModeGroups) {
  SyntheticReference ref = MakeReference(12, 60, 21);  // 60 < k: exact
  ShapeLibraryConfig dense_config = SmallConfig();
  dense_config.use_sketches = false;
  ShapeLibraryConfig sketch_config = SmallConfig();
  sketch_config.use_sketches = true;
  auto dense = ShapeLibrary::Build(ref.store, ref.medians, dense_config);
  auto sketch = ShapeLibrary::Build(ref.store, ref.medians, sketch_config);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  ASSERT_EQ(dense->num_clusters(), sketch->num_clusters());
  for (int gid : ref.store.GroupIds()) {
    EXPECT_EQ(dense->ReferenceAssignment(gid),
              sketch->ReferenceAssignment(gid))
        << "group " << gid;
  }
  for (int c = 0; c < dense->num_clusters(); ++c) {
    const auto& dp = dense->shape(c);
    const auto& sp = sketch->shape(c);
    ASSERT_EQ(dp.size(), sp.size());
    double l1 = 0.0;
    for (size_t h = 0; h < dp.size(); ++h) l1 += std::abs(dp[h] - sp[h]);
    // Exact mode: the only divergence is double→float rounding of raw
    // values near bin edges.
    EXPECT_LT(l1, 1e-3) << "cluster " << c;
    EXPECT_EQ(dense->stats(c).num_samples, sketch->stats(c).num_samples);
    EXPECT_EQ(dense->stats(c).num_groups, sketch->stats(c).num_groups);
    EXPECT_NEAR(dense->stats(c).iqr, sketch->stats(c).iqr, 0.05);
    EXPECT_NEAR(dense->stats(c).p95, sketch->stats(c).p95, 0.05);
    EXPECT_NEAR(dense->stats(c).outlier_probability,
                sketch->stats(c).outlier_probability, 1e-9);
  }
}

// Beyond k observations per group the sketch compacts; assignments and
// Ratio metrics must stay within the KLL tolerance of the dense build.
TEST(ShapeLibraryTest, SketchBuildMatchesDenseBuildBeyondExactMode) {
  SyntheticReference ref = MakeReference(6, 1500, 22);  // 1500 >> k = 200
  ShapeLibraryConfig dense_config = SmallConfig();
  dense_config.use_sketches = false;
  ShapeLibraryConfig sketch_config = SmallConfig();
  sketch_config.use_sketches = true;
  auto dense = ShapeLibrary::Build(ref.store, ref.medians, dense_config);
  auto sketch = ShapeLibrary::Build(ref.store, ref.medians, sketch_config);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  for (int gid : ref.store.GroupIds()) {
    EXPECT_EQ(dense->ReferenceAssignment(gid),
              sketch->ReferenceAssignment(gid))
        << "group " << gid;
  }
  const double eps =
      KllSketch::NormalizedRankErrorBound(sketch_config.sketch_k);
  for (int c = 0; c < dense->num_clusters(); ++c) {
    // A quantile off by ε in rank moves by at most ε·n worth of mass;
    // on these distributions that is well under 4·ε in value.
    EXPECT_NEAR(dense->stats(c).iqr, sketch->stats(c).iqr, 4.0 * eps * 4.0);
    EXPECT_NEAR(dense->stats(c).p95, sketch->stats(c).p95, 4.0 * eps * 4.0);
    EXPECT_EQ(dense->stats(c).num_samples, sketch->stats(c).num_samples);
    // Outlier probability and moments are tracked exactly alongside the
    // sketch, not reconstructed from it.
    EXPECT_NEAR(dense->stats(c).outlier_probability,
                sketch->stats(c).outlier_probability, 1e-12);
    EXPECT_NEAR(dense->stats(c).stddev, sketch->stats(c).stddev, 1e-9);
  }
}

TEST(ShapeLibraryTest, SketchConfigValidation) {
  SyntheticReference ref = MakeReference(5, 30, 23);
  ShapeLibraryConfig config = SmallConfig();
  config.use_sketches = true;
  config.sketch_k = KllSketch::kMinK - 1;
  EXPECT_TRUE(ShapeLibrary::Build(ref.store, ref.medians, config)
                  .status()
                  .IsInvalidArgument());
  config.sketch_k = KllSketch::kMaxK + 1;
  EXPECT_TRUE(ShapeLibrary::Build(ref.store, ref.medians, config)
                  .status()
                  .IsInvalidArgument());
}

// ObservationPmfInto is the allocation-free spine of ObservationPmf: same
// bits, reusable buffer, and it reports how many observations were binned.
TEST(ShapeLibraryTest, ObservationPmfIntoMatchesAllocatingPath) {
  SyntheticReference ref = MakeReference(10, 50, 24);
  auto lib = ShapeLibrary::Build(ref.store, ref.medians, SmallConfig());
  ASSERT_TRUE(lib.ok());
  const std::vector<double> obs = {0.9, 1.0, 1.0, 1.1, 2.5,
                                   std::nan(""), 0.7};
  const std::vector<double> expected = lib->ObservationPmf(obs);
  std::vector<double> reused(7, 123.0);  // wrong size and dirty: both fixed
  const int64_t binned = lib->ObservationPmfInto(
      obs, lib->config().smoothing_radius, &reused);
  EXPECT_EQ(binned, 6);  // NaN skipped
  ASSERT_EQ(reused.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(reused[i], expected[i]) << "bin " << i;
  }
  // All-NaN input: zero binned, all-zero PMF.
  std::vector<double> empty_pmf;
  EXPECT_EQ(lib->ObservationPmfInto({std::nan("")}, 0, &empty_pmf), 0);
  for (double v : empty_pmf) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace rvar
