#include "core/rebalance.h"

#include <gtest/gtest.h>

namespace rvar {
namespace core {
namespace {

sim::JobRun RunOn(int sku, double tokens, double runtime, size_t num_skus) {
  sim::JobRun run;
  run.group_id = 0;
  run.avg_tokens_used = tokens;
  run.runtime_seconds = runtime;
  run.sku_vertex_fraction.assign(num_skus, 0.0);
  run.sku_vertex_fraction[static_cast<size_t>(sku)] = 1.0;
  run.sku_cpu_util.assign(num_skus, 0.5);
  return run;
}

class RebalanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = sim::SkuCatalog::Default();
    // All load on Gen3.5 (index 1): 100 tokens x 1000 s.
    store_.Add(RunOn(1, 100.0, 1000.0, catalog_.NumSkus()));
  }

  sim::SkuCatalog catalog_;
  sim::TelemetryStore store_;
};

TEST_F(RebalanceTest, EstimatesCapacityShares) {
  auto model = RebalanceModel::Estimate(store_, catalog_, 1000.0);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // Gen3.5: 260 machines x 16 tokens = 4160 capacity; share = 100/4160.
  EXPECT_NEAR(model->SkuLoad(1), 100.0 / 4160.0, 1e-9);
  EXPECT_EQ(model->SkuLoad(0), 0.0);
  EXPECT_EQ(model->SkuLoad(5), 0.0);
}

TEST_F(RebalanceTest, ShiftConservesAndScalesWork) {
  auto model = RebalanceModel::Estimate(store_, catalog_, 1000.0);
  ASSERT_TRUE(model.ok());
  auto delta = model->UtilizationShift(1, 5, 1.0);  // Gen3.5 -> Gen5.2
  ASSERT_TRUE(delta.ok());
  // Source drops by its full share.
  EXPECT_NEAR((*delta)[1], -100.0 / 4160.0, 1e-9);
  // Destination absorbs the token-seconds against its own capacity,
  // scaled down by the speed ratio (faster machines finish sooner).
  const double to_capacity = 380.0 * 32.0;
  const double expected =
      (100.0 / 4160.0) * (4160.0 / to_capacity) * (0.78 / 1.06);
  EXPECT_NEAR((*delta)[5], expected, 1e-9);
  // No other SKU moves.
  for (int s : {0, 2, 3, 4, 6}) EXPECT_EQ((*delta)[static_cast<size_t>(s)], 0.0);
}

TEST_F(RebalanceTest, PartialFractionScalesLinearly) {
  auto model = RebalanceModel::Estimate(store_, catalog_, 1000.0);
  ASSERT_TRUE(model.ok());
  auto full = model->UtilizationShift(1, 5, 1.0);
  auto half = model->UtilizationShift(1, 5, 0.5);
  ASSERT_TRUE(full.ok() && half.ok());
  EXPECT_NEAR((*half)[1], 0.5 * (*full)[1], 1e-12);
  EXPECT_NEAR((*half)[5], 0.5 * (*full)[5], 1e-12);
}

TEST_F(RebalanceTest, RejectsBadArguments) {
  sim::TelemetryStore empty;
  EXPECT_FALSE(RebalanceModel::Estimate(empty, catalog_, 1000.0).ok());
  EXPECT_FALSE(RebalanceModel::Estimate(store_, catalog_, 0.0).ok());
  auto model = RebalanceModel::Estimate(store_, catalog_, 1000.0);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->UtilizationShift(1, 1, 0.5).ok());
  EXPECT_FALSE(model->UtilizationShift(-1, 2, 0.5).ok());
  EXPECT_FALSE(model->UtilizationShift(1, 99, 0.5).ok());
  EXPECT_FALSE(model->UtilizationShift(1, 2, 1.5).ok());
  EXPECT_FALSE(model->DynamicSkuShift("Gen99", "Gen5.2").ok());
}

TEST_F(RebalanceTest, DynamicTransformMovesFracAndUtil) {
  auto model = RebalanceModel::Estimate(store_, catalog_, 1000.0);
  ASSERT_TRUE(model.ok());
  auto transform = model->DynamicSkuShift("Gen3.5", "Gen5.2");
  ASSERT_TRUE(transform.ok());

  std::vector<sim::JobGroupSpec> groups;
  Featurizer featurizer(&groups, &catalog_);
  std::vector<double> x(featurizer.FeatureNames().size(), 0.0);
  auto set = [&](const char* name, double v) {
    x[static_cast<size_t>(featurizer.IndexOf(name))] = v;
  };
  auto get = [&](const char* name) {
    return x[static_cast<size_t>(featurizer.IndexOf(name))];
  };
  set("hist_sku_frac_Gen3.5", 0.9);
  set("sku_util_Gen3.5", 0.7);
  set("sku_util_Gen5.2", 0.45);
  set("cpu_util_mean", 0.68);

  (*transform)(featurizer, &x);
  EXPECT_DOUBLE_EQ(get("hist_sku_frac_Gen3.5"), 0.0);
  EXPECT_DOUBLE_EQ(get("hist_sku_frac_Gen5.2"), 0.9);
  // Source SKU cools down, destination warms up.
  EXPECT_LT(get("sku_util_Gen3.5"), 0.7);
  EXPECT_GT(get("sku_util_Gen5.2"), 0.45);
  // The job's own machines follow to the (post-shift) destination util.
  EXPECT_LT(get("cpu_util_mean"), 0.68);
}

}  // namespace
}  // namespace core
}  // namespace rvar
