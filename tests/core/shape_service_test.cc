// ShapeService tests: single-threaded API behavior plus seeded
// multi-threaded stress. The disjoint-groups stress asserts exact
// equality against a serial tracker replay (per-group observation order
// is deterministic when one thread owns the group); the contended-group
// stress asserts observation accounting, and under -DRVAR_SANITIZE=thread
// doubles as the data-race probe for the stripe locking.

#include "core/shape_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/normalization.h"
#include "core/online.h"
#include "core/shape_library.h"

namespace rvar {
namespace core {
namespace {

// Library with two clearly distinct Ratio shapes: tight around 1 and
// bimodal {1, 3}.
class ShapeServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TelemetryStore store;
    GroupMedians medians;
    Rng rng(41);
    int gid = 0;
    for (int family = 0; family < 2; ++family) {
      for (int g = 0; g < 8; ++g) {
        const double median = rng.Uniform(100.0, 300.0);
        for (int i = 0; i < 60; ++i) {
          const double factor =
              family == 0 ? std::max(0.2, rng.Normal(1.0, 0.04))
                          : (rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                                : rng.Normal(1.0, 0.05));
          sim::JobRun run;
          run.group_id = gid;
          run.runtime_seconds = median * std::max(0.05, factor);
          store.Add(run);
        }
        medians.Set(gid, median);
        ++gid;
      }
    }
    ShapeLibraryConfig config;
    config.num_clusters = 2;
    config.min_support = 20;
    config.kmeans.num_restarts = 6;
    auto lib = ShapeLibrary::Build(store, medians, config);
    ASSERT_TRUE(lib.ok()) << lib.status().ToString();
    library_ = new ShapeLibrary(std::move(*lib));
  }
  static void TearDownTestSuite() {
    delete library_;
    library_ = nullptr;
  }

  // Deterministic per-group observation stream: a function of the group id
  // only, so a serial replay reproduces it exactly.
  static std::vector<double> StreamFor(int group_id, int n) {
    Rng rng(1000 + static_cast<uint64_t>(group_id));
    std::vector<double> xs;
    xs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const bool bimodal = group_id % 2 == 1;
      xs.push_back(bimodal ? (rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                                 : rng.Normal(1.0, 0.05))
                           : std::max(0.2, rng.Normal(1.0, 0.04)));
    }
    return xs;
  }

  static ShapeLibrary* library_;
};

ShapeLibrary* ShapeServiceTest::library_ = nullptr;

TEST_F(ShapeServiceTest, MakeRejectsBadArguments) {
  EXPECT_FALSE(ShapeService::Make(nullptr).ok());
  ShapeService::Options bad;
  bad.decay = 0.0;
  EXPECT_FALSE(ShapeService::Make(library_, bad).ok());
  bad.decay = 1.0;
  bad.pmf_floor = -1.0;
  EXPECT_FALSE(ShapeService::Make(library_, bad).ok());
}

TEST_F(ShapeServiceTest, UnknownGroupsAnswerFromUniformPrior) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  const int k = library_->num_clusters();
  EXPECT_EQ((*service)->MostLikely(123), -1);
  EXPECT_EQ((*service)->GroupCount(123), 0);
  EXPECT_EQ((*service)->NumGroups(), 0u);
  EXPECT_EQ((*service)->TotalObservations(), 0);
  const std::vector<double> p = (*service)->Posterior(123);
  ASSERT_EQ(static_cast<int>(p.size()), k);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 1.0 / k);
  EXPECT_DOUBLE_EQ((*service)->ProbabilityOf(123, 0), 1.0 / k);
}

TEST_F(ShapeServiceTest, ObserveRoutesToPerGroupTrackers) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE((*service)->Observe(-1, 1.0).ok());
  for (int gid : {3, 10, 17}) {
    for (double x : StreamFor(gid, 40)) {
      ASSERT_TRUE((*service)->Observe(gid, x).ok());
    }
  }
  EXPECT_EQ((*service)->NumGroups(), 3u);
  EXPECT_EQ((*service)->TotalObservations(), 120);
  EXPECT_EQ((*service)->TrackedGroups(), (std::vector<int>{3, 10, 17}));
  EXPECT_EQ((*service)->GroupCount(10), 40);
  // Odd groups stream bimodal, even groups tight; they must disagree.
  EXPECT_NE((*service)->MostLikely(3), (*service)->MostLikely(10));
  EXPECT_EQ((*service)->MostLikely(3), (*service)->MostLikely(17));

  EXPECT_TRUE((*service)->Forget(10));
  EXPECT_FALSE((*service)->Forget(10));
  EXPECT_EQ((*service)->NumGroups(), 2u);
  EXPECT_EQ((*service)->MostLikely(10), -1);
}

TEST_F(ShapeServiceTest, ConcurrentDisjointGroupsMatchSerialReplay) {
  constexpr int kThreads = 8;
  constexpr int kGroups = 64;
  constexpr int kObsPerGroup = 30;
  ShapeService::Options options;
  options.decay = 0.95;
  options.num_stripes = 4;  // force stripe sharing across groups
  auto service = ShapeService::Make(library_, options);
  ASSERT_TRUE(service.ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, t] {
      for (int gid = t; gid < kGroups; gid += kThreads) {
        for (double x : StreamFor(gid, kObsPerGroup)) {
          ASSERT_TRUE((*service)->Observe(gid, x).ok());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ((*service)->NumGroups(), static_cast<size_t>(kGroups));
  EXPECT_EQ((*service)->TotalObservations(),
            static_cast<int64_t>(kGroups) * kObsPerGroup);

  // One thread owned each group, so per-group observation order equals the
  // serial replay's and the posteriors must match bit for bit.
  for (int gid = 0; gid < kGroups; ++gid) {
    auto reference =
        OnlineShapeTracker::Make(library_, options.decay, options.pmf_floor);
    ASSERT_TRUE(reference.ok());
    for (double x : StreamFor(gid, kObsPerGroup)) reference->Observe(x);
    EXPECT_EQ((*service)->MostLikely(gid), reference->MostLikely());
    const std::vector<double> got = (*service)->Posterior(gid);
    const std::vector<double> want = reference->Posterior();
    ASSERT_EQ(got.size(), want.size());
    for (size_t c = 0; c < got.size(); ++c) {
      EXPECT_EQ(got[c], want[c]) << "group " << gid << " cluster " << c;
    }
  }
}

TEST_F(ShapeServiceTest, ContendedGroupCountsEveryObservation) {
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 500;
  constexpr int kGroup = 7;
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, t] {
      Rng rng(7000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kObsPerThread; ++i) {
        const double x = rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                            : rng.Normal(1.0, 0.05);
        ASSERT_TRUE((*service)->Observe(kGroup, x).ok());
        // Interleave reads with the writes to stress the stripe lock.
        if (i % 100 == 0) (*service)->Posterior(kGroup);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ((*service)->GroupCount(kGroup),
            static_cast<int64_t>(kThreads) * kObsPerThread);
  EXPECT_EQ((*service)->TotalObservations(),
            static_cast<int64_t>(kThreads) * kObsPerThread);
  EXPECT_EQ((*service)->NumGroups(), 1u);
  // Every thread streamed bimodal data; the merged posterior must too.
  const std::vector<double> p = (*service)->Posterior(kGroup);
  const int best = (*service)->MostLikely(kGroup);
  ASSERT_GE(best, 0);
  EXPECT_GT(p[static_cast<size_t>(best)], 0.9);
  double mass = 0.0;
  for (double v : p) {
    EXPECT_TRUE(std::isfinite(v));
    mass += v;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace rvar
