// ShapeService tests: single-threaded API behavior plus seeded
// multi-threaded stress. The disjoint-groups stress asserts exact
// equality against a serial tracker replay (per-group observation order
// is deterministic when one thread owns the group); the contended-group
// stress asserts observation accounting, and under -DRVAR_SANITIZE=thread
// doubles as the data-race probe for the shard locking.

#include "core/shape_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/normalization.h"
#include "core/online.h"
#include "core/shape_library.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "obs/metrics.h"

namespace rvar {
namespace core {
namespace {

// Library with two clearly distinct Ratio shapes: tight around 1 and
// bimodal {1, 3}.
class ShapeServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TelemetryStore store;
    GroupMedians medians;
    Rng rng(41);
    int gid = 0;
    for (int family = 0; family < 2; ++family) {
      for (int g = 0; g < 8; ++g) {
        const double median = rng.Uniform(100.0, 300.0);
        for (int i = 0; i < 60; ++i) {
          const double factor =
              family == 0 ? std::max(0.2, rng.Normal(1.0, 0.04))
                          : (rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                                : rng.Normal(1.0, 0.05));
          sim::JobRun run;
          run.group_id = gid;
          run.runtime_seconds = median * std::max(0.05, factor);
          store.Add(run);
        }
        medians.Set(gid, median);
        ++gid;
      }
    }
    ShapeLibraryConfig config;
    config.num_clusters = 2;
    config.min_support = 20;
    config.kmeans.num_restarts = 6;
    auto lib = ShapeLibrary::Build(store, medians, config);
    ASSERT_TRUE(lib.ok()) << lib.status().ToString();
    library_ = new ShapeLibrary(std::move(*lib));
  }
  static void TearDownTestSuite() {
    delete library_;
    library_ = nullptr;
  }

  // Deterministic per-group observation stream: a function of the group id
  // only, so a serial replay reproduces it exactly.
  static std::vector<double> StreamFor(int group_id, int n) {
    Rng rng(1000 + static_cast<uint64_t>(group_id));
    std::vector<double> xs;
    xs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const bool bimodal = group_id % 2 == 1;
      xs.push_back(bimodal ? (rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                                 : rng.Normal(1.0, 0.05))
                           : std::max(0.2, rng.Normal(1.0, 0.04)));
    }
    return xs;
  }

  static ShapeLibrary* library_;
};

ShapeLibrary* ShapeServiceTest::library_ = nullptr;

TEST_F(ShapeServiceTest, MakeRejectsBadArguments) {
  EXPECT_FALSE(ShapeService::Make(nullptr).ok());

  // Each rejected option names itself in the message, so misconfiguration
  // reads as "which knob", not a tracker internals error.
  for (double decay : {0.0, -0.5, 1.5,
                       std::numeric_limits<double>::quiet_NaN()}) {
    ShapeService::Options bad;
    bad.decay = decay;
    auto service = ShapeService::Make(library_, bad);
    ASSERT_FALSE(service.ok()) << "decay=" << decay;
    EXPECT_NE(service.status().message().find("options.decay"),
              std::string::npos)
        << service.status().ToString();
  }
  for (double floor : {0.0, -1.0,
                       std::numeric_limits<double>::quiet_NaN()}) {
    ShapeService::Options bad;
    bad.pmf_floor = floor;
    auto service = ShapeService::Make(library_, bad);
    ASSERT_FALSE(service.ok()) << "pmf_floor=" << floor;
    EXPECT_NE(service.status().message().find("options.pmf_floor"),
              std::string::npos)
        << service.status().ToString();
  }
  for (int shards : {0, -4}) {
    ShapeService::Options bad;
    bad.num_shards = shards;
    auto service = ShapeService::Make(library_, bad);
    ASSERT_FALSE(service.ok()) << "num_shards=" << shards;
    EXPECT_NE(service.status().message().find("options.num_shards"),
              std::string::npos)
        << service.status().ToString();
  }
}

TEST_F(ShapeServiceTest, ObserveRejectsNonFiniteRuntimes) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Observe(5, 1.0).ok());

  // Non-finite samples must be refused at the boundary with a status the
  // caller can see — never clamped or silently dropped inside the tracker.
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    const Status status = (*service)->Observe(5, bad);
    ASSERT_FALSE(status.ok()) << "value=" << bad;
    EXPECT_NE(status.message().find("finite"), std::string::npos)
        << status.ToString();
  }
  // Rejected samples touch neither the counts nor the posterior.
  EXPECT_EQ((*service)->GroupCount(5), 1);
  EXPECT_EQ((*service)->TotalObservations(), 1);
}

// Regression (PR 8 satellite): a negative group id used to be able to
// grow a tracker whose exported snapshot RestoreState (ids >= 0) then
// refused to load — a legitimately exported checkpoint failing to
// restore. Negative ids must be refused at Observe, counted in
// shape_service_observe_rejected, and the export must round-trip.
TEST_F(ShapeServiceTest, NegativeGroupIdsAreRejectedCountedAndRestorable) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  obs::Counter* rejected =
      obs::Registry::Default().GetCounter("shape_service_observe_rejected");
  const int64_t rejected_before = rejected->Value();

  ASSERT_TRUE((*service)->Observe(11, 1.0).ok());
  for (int bad_gid : {-1, -7, std::numeric_limits<int>::min()}) {
    const Status status = (*service)->Observe(bad_gid, 1.0);
    ASSERT_FALSE(status.ok()) << "group_id=" << bad_gid;
    EXPECT_NE(status.message().find("group_id"), std::string::npos)
        << status.ToString();
  }
  // Counted, and no tracker was created for any rejected id.
  EXPECT_EQ(rejected->Value(), rejected_before + 3);
  EXPECT_EQ((*service)->NumGroups(), 1u);
  EXPECT_EQ((*service)->TotalObservations(), 1);

  // The round trip the bug used to break: everything Observe accepted
  // exports, and the export restores cleanly.
  const std::vector<ShapeService::GroupState> states =
      (*service)->ExportState();
  ASSERT_EQ(states.size(), 1u);
  auto restored = ShapeService::Make(library_);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->RestoreState(states).ok());
  EXPECT_EQ((*restored)->GroupCount(11), 1);
  EXPECT_EQ((*restored)->Posterior(11), (*service)->Posterior(11));
}

TEST_F(ShapeServiceTest, GlobalPriorShapeIsAValidCluster) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  const int prior = (*service)->GlobalPriorShape();
  ASSERT_GE(prior, 0);
  ASSERT_LT(prior, library_->num_clusters());
  // The argmax of pooled reference mass: no cluster holds more samples.
  for (int k = 0; k < library_->num_clusters(); ++k) {
    EXPECT_LE(library_->stats(k).num_samples,
              library_->stats(prior).num_samples);
  }
}

TEST_F(ShapeServiceTest, UnknownGroupsAnswerFromUniformPrior) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  const int k = library_->num_clusters();
  EXPECT_EQ((*service)->MostLikely(123), -1);
  EXPECT_EQ((*service)->GroupCount(123), 0);
  EXPECT_EQ((*service)->NumGroups(), 0u);
  EXPECT_EQ((*service)->TotalObservations(), 0);
  const std::vector<double> p = (*service)->Posterior(123);
  ASSERT_EQ(static_cast<int>(p.size()), k);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 1.0 / k);
  EXPECT_DOUBLE_EQ((*service)->ProbabilityOf(123, 0), 1.0 / k);
}

TEST_F(ShapeServiceTest, ObserveRoutesToPerGroupTrackers) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE((*service)->Observe(-1, 1.0).ok());
  for (int gid : {3, 10, 17}) {
    for (double x : StreamFor(gid, 40)) {
      ASSERT_TRUE((*service)->Observe(gid, x).ok());
    }
  }
  EXPECT_EQ((*service)->NumGroups(), 3u);
  EXPECT_EQ((*service)->TotalObservations(), 120);
  EXPECT_EQ((*service)->TrackedGroups(), (std::vector<int>{3, 10, 17}));
  EXPECT_EQ((*service)->GroupCount(10), 40);
  // Odd groups stream bimodal, even groups tight; they must disagree.
  EXPECT_NE((*service)->MostLikely(3), (*service)->MostLikely(10));
  EXPECT_EQ((*service)->MostLikely(3), (*service)->MostLikely(17));

  EXPECT_TRUE((*service)->Forget(10));
  EXPECT_FALSE((*service)->Forget(10));
  EXPECT_EQ((*service)->NumGroups(), 2u);
  EXPECT_EQ((*service)->MostLikely(10), -1);
}

TEST_F(ShapeServiceTest, ConcurrentDisjointGroupsMatchSerialReplay) {
  constexpr int kThreads = 8;
  constexpr int kGroups = 64;
  constexpr int kObsPerGroup = 30;
  ShapeService::Options options;
  options.decay = 0.95;
  options.num_shards = 4;  // force shard sharing across groups
  auto service = ShapeService::Make(library_, options);
  ASSERT_TRUE(service.ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, t] {
      for (int gid = t; gid < kGroups; gid += kThreads) {
        for (double x : StreamFor(gid, kObsPerGroup)) {
          ASSERT_TRUE((*service)->Observe(gid, x).ok());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ((*service)->NumGroups(), static_cast<size_t>(kGroups));
  EXPECT_EQ((*service)->TotalObservations(),
            static_cast<int64_t>(kGroups) * kObsPerGroup);

  // One thread owned each group, so per-group observation order equals the
  // serial replay's and the posteriors must match bit for bit.
  for (int gid = 0; gid < kGroups; ++gid) {
    auto reference =
        OnlineShapeTracker::Make(library_, options.decay, options.pmf_floor);
    ASSERT_TRUE(reference.ok());
    for (double x : StreamFor(gid, kObsPerGroup)) reference->Observe(x);
    EXPECT_EQ((*service)->MostLikely(gid), reference->MostLikely());
    const std::vector<double> got = (*service)->Posterior(gid);
    const std::vector<double> want = reference->Posterior();
    ASSERT_EQ(got.size(), want.size());
    for (size_t c = 0; c < got.size(); ++c) {
      EXPECT_EQ(got[c], want[c]) << "group " << gid << " cluster " << c;
    }
  }
}

TEST_F(ShapeServiceTest, ContendedGroupCountsEveryObservation) {
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 500;
  constexpr int kGroup = 7;
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, t] {
      Rng rng(7000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kObsPerThread; ++i) {
        const double x = rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                            : rng.Normal(1.0, 0.05);
        ASSERT_TRUE((*service)->Observe(kGroup, x).ok());
        // Interleave reads with the writes to stress the shard lock.
        if (i % 100 == 0) (*service)->Posterior(kGroup);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ((*service)->GroupCount(kGroup),
            static_cast<int64_t>(kThreads) * kObsPerThread);
  EXPECT_EQ((*service)->TotalObservations(),
            static_cast<int64_t>(kThreads) * kObsPerThread);
  EXPECT_EQ((*service)->NumGroups(), 1u);
  // Every thread streamed bimodal data; the merged posterior must too.
  const std::vector<double> p = (*service)->Posterior(kGroup);
  const int best = (*service)->MostLikely(kGroup);
  ASSERT_GE(best, 0);
  EXPECT_GT(p[static_cast<size_t>(best)], 0.9);
  double mass = 0.0;
  for (double v : p) {
    EXPECT_TRUE(std::isfinite(v));
    mass += v;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST_F(ShapeServiceTest, StateRoundTripsThroughExportRestore) {
  ShapeService::Options options;
  options.decay = 0.9;
  auto service = ShapeService::Make(library_, options);
  ASSERT_TRUE(service.ok());
  for (int gid : {1, 4, 9}) {
    for (double x : StreamFor(gid, 25)) {
      ASSERT_TRUE((*service)->Observe(gid, x).ok());
    }
  }

  const std::vector<ShapeService::GroupState> states =
      (*service)->ExportState();
  ASSERT_EQ(states.size(), 3u);

  auto restored = ShapeService::Make(library_, options);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->RestoreState(states).ok());
  EXPECT_EQ((*restored)->NumGroups(), 3u);
  for (int gid : {1, 4, 9}) {
    EXPECT_EQ((*restored)->GroupCount(gid), 25);
    EXPECT_EQ((*restored)->MostLikely(gid), (*service)->MostLikely(gid));
    EXPECT_EQ((*restored)->Posterior(gid), (*service)->Posterior(gid));
  }

  // Restore is all-or-nothing: a malformed state leaves the target as-is.
  std::vector<ShapeService::GroupState> bad = states;
  bad[1].group_id = -3;
  auto target = ShapeService::Make(library_, options);
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE((*target)->Observe(2, 1.0).ok());
  EXPECT_FALSE((*target)->RestoreState(bad).ok());
  EXPECT_EQ((*target)->NumGroups(), 1u);
  EXPECT_EQ((*target)->GroupCount(2), 1);
}

// The serving prior rung (ISSUE 10): PriorShape answers from the group's
// sketch-reconstructed PMF scored against the shared log theta table, and
// falls back to the global prior for unknown or empty groups.
TEST_F(ShapeServiceTest, PriorShapeScoresReconstructedPmf) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  // Unknown group: the global prior, always a valid cluster.
  EXPECT_EQ((*service)->PriorShape(404), (*service)->GlobalPriorShape());
  for (int gid : {0, 1, 6, 7}) {
    for (double x : StreamFor(gid, 50)) {
      ASSERT_TRUE((*service)->Observe(gid, x).ok());
    }
  }
  // With decay 1 (no forgetting), the Eq. 9 argmax over the reconstructed
  // counts agrees with the tracker's running argmax: same tallies, same
  // table, different summation order.
  for (int gid : {0, 1, 6, 7}) {
    const int prior = (*service)->PriorShape(gid);
    EXPECT_GE(prior, 0);
    EXPECT_LT(prior, library_->num_clusters());
    EXPECT_EQ(prior, (*service)->MostLikely(gid)) << "group " << gid;
  }
}

TEST_F(ShapeServiceTest, ReconstructPmfMatchesObservationPmf) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  const std::vector<double> xs = StreamFor(3, 80);  // < k: sketch is exact
  for (double x : xs) ASSERT_TRUE((*service)->Observe(3, x).ok());
  std::vector<double> reconstructed;
  ASSERT_TRUE((*service)->ReconstructPmf(3, &reconstructed));
  // Exact-mode reconstruction equals the library's dense ObservationPmf of
  // the same stream, up to double→float value rounding.
  const std::vector<double> dense = library_->ObservationPmf(xs);
  ASSERT_EQ(reconstructed.size(), dense.size());
  double l1 = 0.0;
  for (size_t i = 0; i < dense.size(); ++i) {
    l1 += std::abs(reconstructed[i] - dense[i]);
  }
  EXPECT_LT(l1, 1e-6);
  // Unknown group: false, and the output is cleared.
  std::vector<double> none = {1.0, 2.0};
  EXPECT_FALSE((*service)->ReconstructPmf(999, &none));
  EXPECT_TRUE(none.empty());
}

// The reconstruction cache is a pure memo: hits and misses answer
// identically, entries invalidate on observe and on Forget, and
// pmf_cache_entries = 0 disables residency without changing answers.
TEST_F(ShapeServiceTest, PmfCacheNeverChangesAnswersAndCountsHits) {
  ShapeService::Options cached;
  cached.pmf_cache_entries = 64;
  ShapeService::Options uncached;
  uncached.pmf_cache_entries = 0;
  auto a = ShapeService::Make(library_, cached);
  auto b = ShapeService::Make(library_, uncached);
  ASSERT_TRUE(a.ok() && b.ok());
  obs::Counter* hits =
      obs::Registry::Default().GetCounter("shape_service_pmf_cache_hits");
  const int64_t hits_before = hits->Value();
  for (int gid = 0; gid < 8; ++gid) {
    for (double x : StreamFor(gid, 30)) {
      ASSERT_TRUE((*a)->Observe(gid, x).ok());
      ASSERT_TRUE((*b)->Observe(gid, x).ok());
    }
  }
  for (int round = 0; round < 3; ++round) {
    for (int gid = 0; gid < 8; ++gid) {
      EXPECT_EQ((*a)->PriorShape(gid), (*b)->PriorShape(gid))
          << "group " << gid;
      std::vector<double> pa, pb;
      ASSERT_TRUE((*a)->ReconstructPmf(gid, &pa));
      ASSERT_TRUE((*b)->ReconstructPmf(gid, &pb));
      EXPECT_EQ(pa, pb) << "group " << gid;
    }
  }
  // Rounds 2 and 3 (and the ReconstructPmf calls sharing round 1's
  // entries) must have hit the cache.
  EXPECT_GT(hits->Value(), hits_before);
  // An observation invalidates: the next prior recomputes, still correct.
  ASSERT_TRUE((*a)->Observe(0, 1.0).ok());
  ASSERT_TRUE((*b)->Observe(0, 1.0).ok());
  EXPECT_EQ((*a)->PriorShape(0), (*b)->PriorShape(0));
  // Forget drops the cache entry along with the group.
  EXPECT_TRUE((*a)->Forget(0));
  EXPECT_EQ((*a)->PriorShape(0), (*a)->GlobalPriorShape());
}

// Restore requires the bounded sketch: states without one, with a
// mismatched k, or with a sample count disagreeing with the tracker's are
// refused whole.
TEST_F(ShapeServiceTest, RestoreValidatesSketches) {
  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  for (double x : StreamFor(5, 20)) {
    ASSERT_TRUE((*service)->Observe(5, x).ok());
  }
  const std::vector<ShapeService::GroupState> states =
      (*service)->ExportState();
  ASSERT_EQ(states.size(), 1u);
  ASSERT_TRUE(states[0].sketch.has_value());
  EXPECT_EQ(states[0].sketch->n(), states[0].count);

  auto target = ShapeService::Make(library_);
  ASSERT_TRUE(target.ok());
  {
    std::vector<ShapeService::GroupState> bad = states;
    bad[0].sketch.reset();
    auto status = (*target)->RestoreState(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("sketch"), std::string::npos);
  }
  {
    std::vector<ShapeService::GroupState> bad = states;
    auto small = KllSketch::Make(KllSketch::kMinK);
    ASSERT_TRUE(small.ok());
    for (int i = 0; i < 20; ++i) small->Update(1.0);
    bad[0].sketch.emplace(*std::move(small));  // right n, wrong k
    EXPECT_FALSE((*target)->RestoreState(bad).ok());
  }
  {
    std::vector<ShapeService::GroupState> bad = states;
    bad[0].count += 1;  // sketch.n() no longer matches
    EXPECT_FALSE((*target)->RestoreState(bad).ok());
  }
  EXPECT_EQ((*target)->NumGroups(), 0u);  // every rejection left it empty
  ASSERT_TRUE((*target)->RestoreState(states).ok());
  EXPECT_EQ((*target)->PriorShape(5), (*service)->PriorShape(5));
}

TEST_F(ShapeServiceTest, MakeRejectsBadSketchOptions) {
  for (int k : {0, KllSketch::kMinK - 1, KllSketch::kMaxK + 1}) {
    ShapeService::Options bad;
    bad.sketch_k = k;
    auto service = ShapeService::Make(library_, bad);
    ASSERT_FALSE(service.ok()) << "sketch_k=" << k;
    EXPECT_NE(service.status().message().find("options.sketch_k"),
              std::string::npos)
        << service.status().ToString();
  }
  ShapeService::Options bad;
  bad.pmf_cache_entries = -1;
  auto service = ShapeService::Make(library_, bad);
  ASSERT_FALSE(service.ok());
  EXPECT_NE(service.status().message().find("options.pmf_cache_entries"),
            std::string::npos)
      << service.status().ToString();
}

// Satellite stress for the lifecycle hot swap: one writer flips the model
// slot between two fitted GBDTs while readers snapshot + score and other
// writers stream observations. Under -DRVAR_SANITIZE=thread this is the
// data-race probe for the epoch swap; in any build it asserts every
// reader saw a fully-published model (never a mix, never a torn pointer).
TEST_F(ShapeServiceTest, ModelSwapUnderConcurrentLoad) {
  ml::Dataset train;
  train.feature_names = {"x0", "x1"};
  Rng data_rng(83);
  const double centers[2][2] = {{0.0, 0.0}, {3.0, 3.0}};
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 80; ++i) {
      train.x.push_back({data_rng.Normal(centers[c][0], 0.5),
                         data_rng.Normal(centers[c][1], 0.5)});
      train.y.push_back(c);
      train.target.push_back(0.0);
    }
  }
  ml::GbdtConfig config_a;
  config_a.num_rounds = 6;
  config_a.max_leaves = 4;
  ml::GbdtConfig config_b = config_a;
  config_b.num_rounds = 10;
  auto model_a = std::make_shared<ml::GbdtClassifier>(config_a);
  auto model_b = std::make_shared<ml::GbdtClassifier>(config_b);
  ASSERT_TRUE(model_a->Fit(train).ok());
  ASSERT_TRUE(model_b->Fit(train).ok());

  auto service = ShapeService::Make(library_);
  ASSERT_TRUE(service.ok());
  (*service)->SwapModel(model_a);

  constexpr int kSwaps = 400;
  constexpr int kReaders = 4;
  constexpr int kObservers = 2;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // writer
    for (int i = 0; i < kSwaps; ++i) {
      (*service)->SwapModel(i % 2 == 0 ? model_b : model_a);
    }
    stop.store(true, std::memory_order_release);
  });
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + static_cast<uint64_t>(t));
      std::vector<double> proba;
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ml::GbdtClassifier> snapshot =
            (*service)->ModelSnapshot();
        if (snapshot != model_a && snapshot != model_b) {
          torn.fetch_add(1);
          continue;
        }
        // The snapshot pins the epoch: scoring stays valid even if the
        // writer swaps mid-batch.
        const std::vector<double> row = {rng.Normal(1.5, 1.0),
                                         rng.Normal(1.5, 1.0)};
        snapshot->PredictProbaInto(row, &proba);
        if (proba.size() != 2u) torn.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kObservers; ++t) {
    threads.emplace_back([&, t] {
      int gid = t;
      while (!stop.load(std::memory_order_acquire)) {
        for (double x : StreamFor(gid, 10)) {
          ASSERT_TRUE((*service)->Observe(gid, x).ok());
        }
        gid = (gid + kObservers) % 16;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0);
  const std::shared_ptr<const ml::GbdtClassifier> last =
      (*service)->ModelSnapshot();
  EXPECT_TRUE(last == model_a || last == model_b);
}

}  // namespace
}  // namespace core
}  // namespace rvar
