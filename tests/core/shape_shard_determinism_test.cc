// Shard-count byte-identity suite for the share-nothing ShapeService
// (DESIGN.md §13): the same observation streams fed to services running
// 1, 4, and 16 shards — from concurrent writers — must export the exact
// same bytes through the io kShapeServiceState codec and answer every
// query identically. Also the kill-and-restore chaos case over that
// codec: a snapshot saved by one shard count reloads into any other,
// reproduces every answer, and a corrupted snapshot is refused whole,
// leaving the target service untouched. Runs under both the TSan
// (`-L concurrency`) and ASan (`-L chaos`) presets.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/shape_library.h"
#include "core/shape_service.h"
#include "io/serialize.h"
#include "sim/faults.h"

namespace rvar {
namespace core {
namespace {

class ShapeShardDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TelemetryStore store;
    GroupMedians medians;
    Rng rng(59);
    for (int gid = 0; gid < 12; ++gid) {
      const double median = rng.Uniform(100.0, 300.0);
      for (int i = 0; i < 50; ++i) {
        const double factor =
            gid % 2 == 0 ? std::max(0.2, rng.Normal(1.0, 0.04))
                         : (rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                               : rng.Normal(1.0, 0.05));
        sim::JobRun run;
        run.group_id = gid;
        run.runtime_seconds = median * std::max(0.05, factor);
        store.Add(run);
      }
      medians.Set(gid, median);
    }
    ShapeLibraryConfig config;
    config.num_clusters = 2;
    config.min_support = 20;
    auto lib = ShapeLibrary::Build(store, medians, config);
    ASSERT_TRUE(lib.ok()) << lib.status().ToString();
    library_ = new ShapeLibrary(std::move(*lib));
  }
  static void TearDownTestSuite() {
    delete library_;
    library_ = nullptr;
  }

  // Deterministic per-group stream, a function of the group id only.
  static std::vector<double> StreamFor(int group_id, int n) {
    Rng rng(9000 + static_cast<uint64_t>(group_id));
    std::vector<double> xs;
    xs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      xs.push_back(group_id % 2 == 1
                       ? (rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                             : rng.Normal(1.0, 0.05))
                       : std::max(0.2, rng.Normal(1.0, 0.04)));
    }
    return xs;
  }

  // Feeds every group's stream from `threads` concurrent writers, each
  // owning a disjoint group set, so per-group observation order is
  // deterministic while shard locking is genuinely exercised in parallel.
  static std::unique_ptr<ShapeService> BuildService(int num_shards,
                                                    int num_groups,
                                                    int obs_per_group,
                                                    int threads) {
    ShapeService::Options options;
    options.decay = 0.95;
    options.num_shards = num_shards;
    auto service = ShapeService::Make(library_, options);
    EXPECT_TRUE(service.ok());
    std::vector<std::thread> writers;
    for (int t = 0; t < threads; ++t) {
      writers.emplace_back([&service, t, num_groups, obs_per_group,
                            threads] {
        for (int gid = t; gid < num_groups; gid += threads) {
          for (double x : StreamFor(gid, obs_per_group)) {
            ASSERT_TRUE((*service)->Observe(gid, x).ok());
          }
        }
      });
    }
    for (std::thread& t : writers) t.join();
    return std::move(*service);
  }

  static ShapeLibrary* library_;
};

ShapeLibrary* ShapeShardDeterminismTest::library_ = nullptr;

TEST_F(ShapeShardDeterminismTest, ExportBytesIdenticalAcrossShardCounts) {
  constexpr int kGroups = 48;
  constexpr int kObs = 25;
  constexpr int kThreads = 4;

  auto one = BuildService(1, kGroups, kObs, kThreads);
  auto four = BuildService(4, kGroups, kObs, kThreads);
  auto sixteen = BuildService(16, kGroups, kObs, kThreads);

  const std::string image_one = io::EncodeShapeServiceState(*one);
  const std::string image_four = io::EncodeShapeServiceState(*four);
  const std::string image_sixteen = io::EncodeShapeServiceState(*sixteen);
  ASSERT_FALSE(image_one.empty());
  EXPECT_EQ(image_four, image_one) << "4-shard image diverged";
  EXPECT_EQ(image_sixteen, image_one) << "16-shard image diverged";

  // Every query surface answers identically at every shard count.
  EXPECT_EQ(four->TotalObservations(), one->TotalObservations());
  EXPECT_EQ(sixteen->TotalObservations(), one->TotalObservations());
  EXPECT_EQ(four->NumGroups(), one->NumGroups());
  EXPECT_EQ(sixteen->TrackedGroups(), one->TrackedGroups());
  for (int gid = 0; gid < kGroups + 4; ++gid) {  // includes unknown groups
    EXPECT_EQ(four->MostLikely(gid), one->MostLikely(gid)) << gid;
    EXPECT_EQ(sixteen->MostLikely(gid), one->MostLikely(gid)) << gid;
    EXPECT_EQ(four->GroupCount(gid), one->GroupCount(gid)) << gid;
    EXPECT_EQ(sixteen->Posterior(gid), one->Posterior(gid)) << gid;
    EXPECT_EQ(four->Posterior(gid), one->Posterior(gid)) << gid;
  }
  EXPECT_EQ(four->GlobalPriorShape(), one->GlobalPriorShape());
  EXPECT_EQ(sixteen->GlobalPriorShape(), one->GlobalPriorShape());
}

// Kill-and-restore over the sharded codec: snapshot a 16-shard service
// (the "kill"), reload the file into 1- and 4-shard services (the
// differently-provisioned restart), and require bit-identical re-exports
// and answers. A bit-flipped snapshot must be refused whole.
TEST_F(ShapeShardDeterminismTest, KillAndRestoreAcrossShardCounts) {
  constexpr int kGroups = 32;
  constexpr int kObs = 20;
  auto origin = BuildService(16, kGroups, kObs, /*threads=*/4);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rvar_shard_restore_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "shape_service.snap").string();
  ASSERT_TRUE(io::SaveShapeServiceState(*origin, path).ok());

  const std::string image = io::EncodeShapeServiceState(*origin);
  for (int shards : {1, 4}) {
    ShapeService::Options options;
    options.decay = 0.95;
    options.num_shards = shards;
    auto revived = ShapeService::Make(library_, options);
    ASSERT_TRUE(revived.ok());
    auto states = io::LoadShapeServiceState(path);
    ASSERT_TRUE(states.ok()) << states.status().ToString();
    ASSERT_TRUE((*revived)->RestoreState(*states).ok());

    EXPECT_EQ(io::EncodeShapeServiceState(**revived), image)
        << shards << "-shard revival re-export diverged";
    EXPECT_EQ((*revived)->TotalObservations(), origin->TotalObservations());
    for (int gid = 0; gid < kGroups; ++gid) {
      EXPECT_EQ((*revived)->Posterior(gid), origin->Posterior(gid)) << gid;
      EXPECT_EQ((*revived)->MostLikely(gid), origin->MostLikely(gid)) << gid;
    }
  }

  // Corruption is refused whole: the target keeps its pre-restore state.
  const sim::StorageFaultPlan faults(1234);
  ShapeService::Options options;
  options.num_shards = 4;
  auto target = ShapeService::Make(library_, options);
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE((*target)->Observe(3, 1.0).ok());
  int refused = 0;
  for (int trial = 0; trial < 8; ++trial) {
    auto states = io::DecodeShapeServiceState(
        faults.FlipBits(image, 1 + trial % 3, 71 + trial));
    if (!states.ok()) {
      ++refused;
      continue;
    }
    // A flip the checksum cannot catch is astronomically unlikely, but if
    // decode succeeds the restore path still validates strictly.
    if (!(*target)->RestoreState(*states).ok()) ++refused;
  }
  EXPECT_GT(refused, 0);
  EXPECT_EQ((*target)->NumGroups(), 1u);
  EXPECT_EQ((*target)->GroupCount(3), 1);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Sketch-focused determinism (ISSUE 10): with enough observations per
// group to force compactions, the per-group sketches — and every answer
// reconstructed from them — must still be identical at any shard count.
// A group lives on exactly one shard, so its sketch sees its full stream
// in order regardless of the partitioning; seed-free parity compaction
// does the rest.
TEST_F(ShapeShardDeterminismTest, SketchesIdenticalAcrossShardCounts) {
  constexpr int kGroups = 16;
  constexpr int kObs = 600;  // 3x the default k: several compactions deep
  constexpr int kThreads = 4;
  auto one = BuildService(1, kGroups, kObs, kThreads);
  auto sixteen = BuildService(16, kGroups, kObs, kThreads);

  const std::vector<ShapeService::GroupState> a = one->ExportState();
  const std::vector<ShapeService::GroupState> b = sixteen->ExportState();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].group_id, b[i].group_id);
    ASSERT_TRUE(a[i].sketch.has_value());
    ASSERT_TRUE(b[i].sketch.has_value());
    EXPECT_EQ(a[i].sketch->items(), b[i].sketch->items())
        << "group " << a[i].group_id;
    EXPECT_EQ(a[i].sketch->level_sizes(), b[i].sketch->level_sizes());
    EXPECT_EQ(a[i].sketch->compaction_parity(),
              b[i].sketch->compaction_parity());
    EXPECT_EQ(a[i].sketch->n(), b[i].sketch->n());
    // Bounded state: the acceptance bound at the default k = 200.
    EXPECT_LE(a[i].sketch->MemoryBytes(), 2048u);
  }
  for (int gid = 0; gid < kGroups + 2; ++gid) {
    EXPECT_EQ(sixteen->PriorShape(gid), one->PriorShape(gid)) << gid;
    std::vector<double> pmf_one, pmf_sixteen;
    const bool known_one = one->ReconstructPmf(gid, &pmf_one);
    ASSERT_EQ(sixteen->ReconstructPmf(gid, &pmf_sixteen), known_one) << gid;
    EXPECT_EQ(pmf_sixteen, pmf_one) << gid;
  }
  EXPECT_EQ(io::EncodeShapeServiceState(*sixteen),
            io::EncodeShapeServiceState(*one));
}

}  // namespace
}  // namespace core
}  // namespace rvar
