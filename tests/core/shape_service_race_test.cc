// Lifecycle-vs-traffic races on ShapeService: Forget and RestoreState
// concurrent with Observe/Posterior/MostLikely readers and writers. In a
// plain build this asserts the service stays internally consistent (counts
// never negative, posteriors always normalized, no crash); under
// -DRVAR_SANITIZE=thread it is the data-race probe for the shard locking
// on the mutating admin paths, which the original stress tests never
// exercised concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/shape_library.h"
#include "core/shape_service.h"

namespace rvar {
namespace core {
namespace {

class ShapeServiceRaceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TelemetryStore store;
    GroupMedians medians;
    Rng rng(97);
    for (int gid = 0; gid < 12; ++gid) {
      const double median = rng.Uniform(100.0, 300.0);
      for (int i = 0; i < 50; ++i) {
        const double factor =
            gid % 2 == 0 ? std::max(0.2, rng.Normal(1.0, 0.04))
                         : (rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                               : rng.Normal(1.0, 0.05));
        sim::JobRun run;
        run.group_id = gid;
        run.runtime_seconds = median * std::max(0.05, factor);
        store.Add(run);
      }
      medians.Set(gid, median);
    }
    ShapeLibraryConfig config;
    config.num_clusters = 2;
    config.min_support = 20;
    auto lib = ShapeLibrary::Build(store, medians, config);
    ASSERT_TRUE(lib.ok()) << lib.status().ToString();
    library_ = new ShapeLibrary(std::move(*lib));
  }
  static void TearDownTestSuite() {
    delete library_;
    library_ = nullptr;
  }

  static ShapeLibrary* library_;
};

ShapeLibrary* ShapeServiceRaceTest::library_ = nullptr;

TEST_F(ShapeServiceRaceTest, ForgetAndRestoreRaceObserveAndPosterior) {
  constexpr int kGroups = 16;
  constexpr int kObservers = 3;
  constexpr int kReaders = 3;
  constexpr int kAdminRounds = 200;

  ShapeService::Options options;
  options.num_shards = 4;  // force cross-group shard sharing
  auto service = ShapeService::Make(library_, options);
  ASSERT_TRUE(service.ok());

  // Seed a few groups so ExportState has something to snapshot from the
  // start, then capture a donor state to restore from repeatedly.
  for (int gid = 0; gid < kGroups; ++gid) {
    ASSERT_TRUE((*service)->Observe(gid, 1.0).ok());
  }
  const std::vector<ShapeService::GroupState> donor =
      (*service)->ExportState();
  ASSERT_EQ(donor.size(), static_cast<size_t>(kGroups));

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int t = 0; t < kObservers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(4000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const int gid = static_cast<int>(rng.UniformInt(0, kGroups - 1));
        const double x = rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                            : rng.Normal(1.0, 0.05);
        ASSERT_TRUE((*service)->Observe(gid, x).ok());
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(5000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const int gid = static_cast<int>(rng.UniformInt(0, kGroups - 1));
        const std::vector<double> p = (*service)->Posterior(gid);
        double mass = 0.0;
        for (double v : p) {
          ASSERT_TRUE(std::isfinite(v));
          mass += v;
        }
        ASSERT_NEAR(mass, 1.0, 1e-9);
        ASSERT_GE((*service)->GroupCount(gid), 0);
        (*service)->MostLikely(gid);
      }
    });
  }
  threads.emplace_back([&] {  // admin: Forget sweeps racing full restores
    Rng rng(6000);
    for (int round = 0; round < kAdminRounds; ++round) {
      if (round % 3 == 2) {
        ASSERT_TRUE((*service)->RestoreState(donor).ok());
      } else {
        (*service)->Forget(static_cast<int>(rng.UniformInt(0, kGroups - 1)));
      }
      if (round % 10 == 0) (*service)->ExportState();
    }
    stop.store(true, std::memory_order_release);
  });

  for (std::thread& t : threads) t.join();

  // The final restore/forget interleaving is nondeterministic, but the
  // service must still be coherent: every tracked group answers with a
  // normalized posterior and a non-negative count.
  for (int gid : (*service)->TrackedGroups()) {
    const std::vector<double> p = (*service)->Posterior(gid);
    double mass = 0.0;
    for (double v : p) mass += v;
    EXPECT_NEAR(mass, 1.0, 1e-9) << "group " << gid;
    EXPECT_GE((*service)->GroupCount(gid), 0);
  }
}

}  // namespace
}  // namespace core
}  // namespace rvar
