// FullFeatureImportance mapping tests, with feature selection both on and
// off. Regression: a kept_/importance size mismatch used to be silently
// truncated, leaving the remaining features with zero importance instead
// of failing loudly — the mapping invariants below pin the contract.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/predictor.h"

namespace rvar {
namespace core {
namespace {

class FeatureImportanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SuiteConfig config;
    config.num_groups = 40;
    config.d1_days = 3.0;
    config.d2_days = 1.5;
    config.d3_days = 0.5;
    config.d1_support = 12;
    config.seed = 77;
    auto suite = sim::BuildStudySuite(config);
    ASSERT_TRUE(suite.ok()) << suite.status().ToString();
    suite_ = new sim::StudySuite(std::move(*suite));
  }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }

  static std::unique_ptr<VariationPredictor> TrainWithSelection(
      bool apply_feature_selection) {
    PredictorConfig pc;
    pc.shape.num_clusters = 3;
    pc.shape.min_support = 10;
    pc.shape.kmeans.num_restarts = 4;
    pc.gbdt.num_rounds = 20;
    pc.apply_feature_selection = apply_feature_selection;
    auto predictor = VariationPredictor::Train(*suite_, pc);
    EXPECT_TRUE(predictor.ok()) << predictor.status().ToString();
    return predictor.ok() ? std::move(*predictor) : nullptr;
  }

  static void CheckMapping(const VariationPredictor& predictor) {
    const std::vector<double> full = predictor.FullFeatureImportance();
    const std::vector<double>& kept_imp =
        predictor.model().feature_importance();
    const std::vector<size_t>& kept = predictor.kept_features();
    ASSERT_EQ(full.size(), predictor.featurizer().FeatureNames().size());
    ASSERT_EQ(kept.size(), kept_imp.size());
    // Kept features carry exactly the classifier's importance; dropped
    // features carry exactly zero.
    std::vector<bool> is_kept(full.size(), false);
    for (size_t i = 0; i < kept.size(); ++i) {
      ASSERT_LT(kept[i], full.size());
      EXPECT_EQ(full[kept[i]], kept_imp[i]) << "kept slot " << i;
      is_kept[kept[i]] = true;
    }
    for (size_t f = 0; f < full.size(); ++f) {
      if (!is_kept[f]) {
        EXPECT_EQ(full[f], 0.0) << "dropped feature " << f;
      }
    }
    const double total = std::accumulate(full.begin(), full.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-6);
  }

  static sim::StudySuite* suite_;
};

sim::StudySuite* FeatureImportanceTest::suite_ = nullptr;

TEST_F(FeatureImportanceTest, SelectionOnMapsKeptImportancesBack) {
  auto predictor = TrainWithSelection(true);
  ASSERT_NE(predictor, nullptr);
  // Selection dropped at least one correlated feature, so the mapping is
  // a strict embedding.
  EXPECT_LT(predictor->kept_features().size(),
            predictor->featurizer().FeatureNames().size());
  CheckMapping(*predictor);
}

TEST_F(FeatureImportanceTest, SelectionOffIsIdentityMapping) {
  auto predictor = TrainWithSelection(false);
  ASSERT_NE(predictor, nullptr);
  const std::vector<size_t>& kept = predictor->kept_features();
  ASSERT_EQ(kept.size(), predictor->featurizer().FeatureNames().size());
  for (size_t i = 0; i < kept.size(); ++i) EXPECT_EQ(kept[i], i);
  CheckMapping(*predictor);
}

}  // namespace
}  // namespace core
}  // namespace rvar
