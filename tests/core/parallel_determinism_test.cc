// Parallel-vs-serial determinism suite: every parallelized training or
// build path must produce bit-identical artifacts whether it runs inline
// (1 thread) or on the pool (8 threads). Models are compared through the
// canonical snapshot encoders (src/io/serialize.h), so any drift in any
// serialized field — tree structure, split thresholds, centroids, PMFs —
// fails the byte comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/normalization.h"
#include "core/shape_library.h"
#include "io/serialize.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/kmeans.h"

namespace rvar {
namespace core {
namespace {

// Every test restores the automatic thread count on exit so a failing
// EXPECT cannot leak a forced setting into later tests.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ~ParallelDeterminismTest() override { SetParallelThreads(0); }

  // Runs `fn` once at 1 thread and once at 8 threads, returning both
  // artifacts for comparison.
  template <typename Fn>
  static auto AtOneAndEightThreads(Fn fn)
      -> std::pair<decltype(fn()), decltype(fn())> {
    SetParallelThreads(1);
    auto serial = fn();
    SetParallelThreads(8);
    auto parallel = fn();
    SetParallelThreads(0);
    return {std::move(serial), std::move(parallel)};
  }
};

ml::Dataset BlobsDataset(int n_per_class, uint64_t seed) {
  const double centers[3][2] = {{0.0, 0.0}, {4.0, 0.0}, {2.0, 4.0}};
  Rng rng(seed);
  ml::Dataset d;
  d.feature_names = {"x0", "x1", "noise"};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < n_per_class; ++i) {
      d.x.push_back({rng.Normal(centers[c][0], 0.8),
                     rng.Normal(centers[c][1], 0.8), rng.Uniform()});
      d.y.push_back(c);
    }
  }
  return d;
}

TEST_F(ParallelDeterminismTest, GbdtSnapshotIsByteIdentical) {
  const ml::Dataset train = BlobsDataset(120, 31);
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    ml::GbdtConfig config;
    config.num_rounds = 25;
    ml::GbdtClassifier model(config);
    EXPECT_TRUE(model.Fit(train).ok());
    return io::EncodeGbdtClassifier(model);
  });
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST_F(ParallelDeterminismTest, ForestSnapshotIsByteIdentical) {
  const ml::Dataset train = BlobsDataset(120, 32);
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    ml::ForestConfig config;
    config.num_trees = 24;
    ml::RandomForestClassifier model(config);
    EXPECT_TRUE(model.Fit(train).ok());
    return io::EncodeRandomForestClassifier(model);
  });
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST_F(ParallelDeterminismTest, ForestImportanceIsExactlyReproduced) {
  const ml::Dataset train = BlobsDataset(80, 33);
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    ml::ForestConfig config;
    config.num_trees = 16;
    ml::RandomForestClassifier model(config);
    EXPECT_TRUE(model.Fit(train).ok());
    return model.feature_importance();
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "importance " << i;
  }
}

TEST_F(ParallelDeterminismTest, KMeansIsExactlyReproduced) {
  Rng rng(34);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 60; ++i) {
      points.push_back({rng.Normal(3.0 * c, 0.5), rng.Normal(-2.0 * c, 0.5)});
    }
  }
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    ml::KMeansConfig config;
    config.k = 4;
    config.num_restarts = 8;
    auto model = ml::KMeans(points, config);
    EXPECT_TRUE(model.ok());
    return std::move(*model);
  });
  EXPECT_EQ(serial.centroids, parallel.centroids);
  EXPECT_EQ(serial.assignments, parallel.assignments);
  EXPECT_EQ(serial.inertia, parallel.inertia);
  EXPECT_EQ(serial.iterations, parallel.iterations);
}

TEST_F(ParallelDeterminismTest, ShapeLibrarySnapshotIsByteIdentical) {
  sim::TelemetryStore store;
  GroupMedians medians;
  Rng rng(35);
  int gid = 0;
  for (int family = 0; family < 2; ++family) {
    for (int g = 0; g < 8; ++g) {
      const double median = rng.Uniform(100.0, 300.0);
      for (int i = 0; i < 60; ++i) {
        const double factor =
            family == 0 ? std::max(0.2, rng.Normal(1.0, 0.05))
                        : (rng.Bernoulli(0.4) ? rng.Normal(3.0, 0.1)
                                              : rng.Normal(1.0, 0.05));
        sim::JobRun run;
        run.group_id = gid;
        run.runtime_seconds = median * std::max(0.05, factor);
        store.Add(run);
      }
      medians.Set(gid, median);
      ++gid;
    }
  }
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    ShapeLibraryConfig config;
    config.num_clusters = 2;
    config.min_support = 20;
    config.kmeans.num_restarts = 6;
    auto library = ShapeLibrary::Build(store, medians, config);
    EXPECT_TRUE(library.ok());
    return library.ok() ? io::EncodeShapeLibrary(*library) : std::string();
  });
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace core
}  // namespace rvar
