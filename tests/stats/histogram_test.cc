#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace rvar {
namespace {

BinGrid MakeGrid(double lo, double hi, int bins) {
  auto r = BinGrid::Make(lo, hi, bins);
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(BinGridTest, RejectsBadArguments) {
  EXPECT_TRUE(BinGrid::Make(0.0, 10.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(BinGrid::Make(5.0, 5.0, 10).status().IsInvalidArgument());
  EXPECT_TRUE(BinGrid::Make(7.0, 3.0, 10).status().IsInvalidArgument());
  EXPECT_TRUE(BinGrid::Make(0.0, 10.0, 200).ok());
}

TEST(BinGridTest, BinIndexClipsOutliers) {
  // The paper's Ratio grid: [0, 10] with outliers merged into edge bins.
  BinGrid g = MakeGrid(0.0, 10.0, 200);
  EXPECT_EQ(g.BinIndex(-5.0), 0);
  EXPECT_EQ(g.BinIndex(0.0), 0);
  EXPECT_EQ(g.BinIndex(10.0), 199);
  EXPECT_EQ(g.BinIndex(1e9), 199);
  EXPECT_EQ(g.BinIndex(0.049), 0);
  EXPECT_EQ(g.BinIndex(0.051), 1);
}

TEST(BinGridTest, CentersAreMidpoints) {
  BinGrid g = MakeGrid(-900.0, 900.0, 200);
  EXPECT_DOUBLE_EQ(g.bin_width(), 9.0);
  EXPECT_DOUBLE_EQ(g.BinCenter(0), -895.5);
  EXPECT_DOUBLE_EQ(g.BinCenter(199), 895.5);
}

TEST(HistogramTest, CountsAndProbabilities) {
  BinGrid g = MakeGrid(0.0, 10.0, 10);
  Histogram h(g);
  h.AddAll({0.5, 0.5, 5.5, 9.9, 100.0});
  EXPECT_EQ(h.total_count(), 5);
  EXPECT_EQ(h.counts()[0], 2);
  EXPECT_EQ(h.counts()[5], 1);
  EXPECT_EQ(h.counts()[9], 2);  // 9.9 and the clipped 100.0
  const auto p = h.Probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.4);
  EXPECT_DOUBLE_EQ(std::accumulate(p.begin(), p.end(), 0.0), 1.0);
}

TEST(HistogramTest, EmptyHasZeroPmf) {
  Histogram h(MakeGrid(0.0, 1.0, 4));
  for (double v : h.Probabilities()) EXPECT_EQ(v, 0.0);
}

TEST(SmoothPmfTest, RadiusZeroIsIdentity) {
  std::vector<double> pmf = {0.1, 0.7, 0.2};
  EXPECT_EQ(SmoothPmf(pmf, 0), pmf);
}

TEST(SmoothPmfTest, PreservesMassAndSpreadsSpike) {
  std::vector<double> pmf(11, 0.0);
  pmf[5] = 1.0;
  const auto s = SmoothPmf(pmf, 2);
  EXPECT_NEAR(std::accumulate(s.begin(), s.end(), 0.0), 1.0, 1e-12);
  EXPECT_GT(s[4], 0.0);
  EXPECT_GT(s[6], 0.0);
  EXPECT_LT(s[5], 1.0);
  EXPECT_EQ(s[0], 0.0);
}

TEST(SmoothPmfTest, UniformIsFixedPoint) {
  std::vector<double> pmf(8, 0.125);
  const auto s = SmoothPmf(pmf, 3);
  for (double v : s) EXPECT_NEAR(v, 0.125, 1e-12);
}

TEST(SmoothPmfTest, IncreasesAffinityOfShiftedSpikes) {
  // The motivation in Section 4.2: two nearly-identical distributions whose
  // spikes land in adjacent bins should look more similar after smoothing.
  std::vector<double> a(20, 0.0), b(20, 0.0);
  a[9] = 1.0;
  b[10] = 1.0;
  const double raw_dot = 0.0;  // orthogonal
  const auto sa = SmoothPmf(a, 2);
  const auto sb = SmoothPmf(b, 2);
  double smooth_dot = 0.0;
  for (size_t i = 0; i < sa.size(); ++i) smooth_dot += sa[i] * sb[i];
  EXPECT_GT(smooth_dot, raw_dot);
}

// SmoothPmfInPlace promises bit-identity with SmoothPmf (same summation
// order), so the allocation-free hot paths cannot perturb any downstream
// result. Exercise the ring-buffer path (radius <= 64), the heap
// fallback, radius >= length, and tiny inputs, over random PMFs.
TEST(SmoothPmfTest, InPlaceVariantIsBitIdenticalToAllocating) {
  Rng rng(97);
  for (int len : {1, 2, 3, 7, 64, 130, 200}) {
    for (int radius : {0, 1, 2, 63, 64, 65, 199, 500}) {
      std::vector<double> pmf(static_cast<size_t>(len));
      for (double& v : pmf) v = rng.Uniform(0.0, 1.0);
      const std::vector<double> expected = SmoothPmf(pmf, radius);
      std::vector<double> in_place = pmf;
      SmoothPmfInPlace(&in_place, radius);
      ASSERT_EQ(in_place.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        // Exact double equality, not NEAR: same arithmetic, same bits.
        EXPECT_EQ(in_place[i], expected[i])
            << "len=" << len << " radius=" << radius << " bin=" << i;
      }
    }
  }
}

TEST(PmfStatsTest, CdfQuantileMeanStd) {
  BinGrid g = MakeGrid(0.0, 10.0, 10);
  // All mass in bin 3 => values near its center 3.5.
  std::vector<double> pmf(10, 0.0);
  pmf[3] = 1.0;
  EXPECT_DOUBLE_EQ(PmfMean(g, pmf), 3.5);
  EXPECT_DOUBLE_EQ(PmfStdDev(g, pmf), 0.0);
  EXPECT_NEAR(PmfQuantile(g, pmf, 0.5), 3.5, 0.5);
  const auto cdf = PmfToCdf(pmf);
  EXPECT_EQ(cdf[2], 0.0);
  EXPECT_EQ(cdf[3], 1.0);
  EXPECT_EQ(cdf[9], 1.0);
}

TEST(PmfStatsTest, QuantileInterpolatesWithinBin) {
  BinGrid g = MakeGrid(0.0, 1.0, 2);
  std::vector<double> pmf = {0.5, 0.5};
  EXPECT_NEAR(PmfQuantile(g, pmf, 0.25), 0.25, 1e-12);
  EXPECT_NEAR(PmfQuantile(g, pmf, 0.75), 0.75, 1e-12);
}

TEST(PmfStatsTest, ZeroMassPmf) {
  BinGrid g = MakeGrid(0.0, 1.0, 4);
  std::vector<double> pmf(4, 0.0);
  EXPECT_EQ(PmfMean(g, pmf), 0.0);
  EXPECT_EQ(PmfQuantile(g, pmf, 0.5), 0.0);
  EXPECT_EQ(PmfStdDev(g, pmf), 0.0);
}

// Regression: with empty leading bins, q=0 used to return the left edge of
// bin 0 (cdf[0] >= 0 holds vacuously) instead of the left edge of the
// first bin that actually carries mass.
TEST(PmfStatsTest, QuantileZeroSkipsLeadingEmptyBins) {
  BinGrid g = MakeGrid(0.0, 10.0, 10);
  std::vector<double> pmf(10, 0.0);
  pmf[4] = 0.7;
  pmf[6] = 0.3;
  // The support starts at bin 4 => [4, 5).
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 0.0), 4.0);
  // Interior quantiles are untouched by the fix.
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 0.5), 4.0 + (0.5 / 0.7));
}

TEST(PmfStatsTest, QuantileOneStopsAtLastMassyBin) {
  BinGrid g = MakeGrid(0.0, 10.0, 10);
  std::vector<double> pmf(10, 0.0);
  pmf[2] = 0.5;
  pmf[5] = 0.5;
  // The support ends at bin 5 => q=1 is its right edge, not grid.hi().
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 0.0), 2.0);
}

// All three canonical quantiles of a single-massful-bin PMF are the bin
// itself: left edge at q=0, inside at q=0.5, right edge at q=1.
TEST(PmfStatsTest, QuantileEdgesOnSingleMassfulBin) {
  BinGrid g = MakeGrid(0.0, 10.0, 10);
  std::vector<double> pmf(10, 0.0);
  pmf[7] = 1.0;
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 1.0), 8.0);
  // Mass in the last bin: q=1 is the grid's upper edge.
  std::fill(pmf.begin(), pmf.end(), 0.0);
  pmf[9] = 1.0;
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 0.0), 9.0);
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 1.0), 10.0);
}

TEST(PmfStatsTest, QuantileEdgesOnFullSupport) {
  BinGrid g = MakeGrid(0.0, 1.0, 4);
  std::vector<double> pmf(4, 0.25);
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PmfQuantile(g, pmf, 1.0), 1.0);
}

// Empty bins strictly inside the support do not absorb quantile mass: the
// quantile jumps across them.
TEST(PmfStatsTest, QuantileSkipsInteriorEmptyBins) {
  BinGrid g = MakeGrid(0.0, 10.0, 10);
  std::vector<double> pmf(10, 0.0);
  pmf[1] = 0.5;
  pmf[8] = 0.5;
  // q just past the first bin's mass lands in bin 8, not bins 2..7.
  EXPECT_GE(PmfQuantile(g, pmf, 0.51), 8.0);
  EXPECT_LE(PmfQuantile(g, pmf, 0.49), 2.0);
}

TEST(SamplePmfTest, SamplesFallInSupport) {
  BinGrid g = MakeGrid(0.0, 10.0, 10);
  std::vector<double> pmf(10, 0.0);
  pmf[2] = 0.5;
  pmf[7] = 0.5;
  Rng rng(42);
  const auto xs = SamplePmf(g, pmf, 2000, &rng);
  ASSERT_EQ(xs.size(), 2000u);
  int lo_bin = 0, hi_bin = 0;
  for (double x : xs) {
    const int b = g.BinIndex(x);
    EXPECT_TRUE(b == 2 || b == 7);
    (b == 2 ? lo_bin : hi_bin)++;
  }
  EXPECT_NEAR(lo_bin / 2000.0, 0.5, 0.05);
}

TEST(SamplePmfTest, ZeroMassYieldsEmpty) {
  BinGrid g = MakeGrid(0.0, 1.0, 4);
  Rng rng(1);
  EXPECT_TRUE(SamplePmf(g, std::vector<double>(4, 0.0), 10, &rng).empty());
}

// Property: histogram round-trip — sampling from a PMF and re-histogramming
// recovers approximately the same PMF.
class PmfRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PmfRoundTripTest, SampleThenRebin) {
  Rng rng(GetParam());
  BinGrid g = MakeGrid(0.0, 10.0, 20);
  std::vector<double> pmf(20, 0.0);
  // Random sparse PMF.
  for (int k = 0; k < 4; ++k) {
    pmf[static_cast<size_t>(rng.UniformInt(0, 19))] += 0.25;
  }
  Rng sample_rng = rng.Split();
  const auto xs = SamplePmf(g, pmf, 20000, &sample_rng);
  const auto rebinned = Histogram::FromValues(g, xs).Probabilities();
  for (size_t i = 0; i < pmf.size(); ++i) {
    EXPECT_NEAR(rebinned[i], pmf[i], 0.02) << "bin " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmfRoundTripTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace rvar
