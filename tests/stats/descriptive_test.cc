#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace rvar {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.cov(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_EQ(rs.count(), 8);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.sum(), 40.0, 1e-9);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 7.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats b = a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(b);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_EQ(Quantile({5.0}, 0.0), 5.0);
  EXPECT_EQ(Quantile({5.0}, 1.0), 5.0);
}

TEST(QuantileTest, LinearInterpolation) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0 / 3.0), 2.0);
}

TEST(QuantileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Median({9.0, 1.0, 5.0}), 5.0);
}

TEST(DescriptiveTest, MeanAndStdDev) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, CovMatchesDefinition) {
  std::vector<double> v = {10.0, 12.0, 8.0, 10.0};
  EXPECT_NEAR(CoefficientOfVariation(v), StdDev(v) / 10.0, 1e-12);
  EXPECT_EQ(CoefficientOfVariation({5.0}), 0.0);
  EXPECT_EQ(CoefficientOfVariation({-1.0, 1.0}), 0.0);  // zero mean
}

TEST(DescriptiveTest, Iqr) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(InterquartileRange(v), 50.0);
}

// Property: quantile is monotone in q.
class QuantileMonotoneTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuantileMonotoneTest, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> v;
  const int n = static_cast<int>(rng.UniformInt(2, 200));
  for (int i = 0; i < n; ++i) v.push_back(rng.LogNormal(0.0, 1.5));
  std::sort(v.begin(), v.end());
  double prev = QuantileSorted(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = QuantileSorted(v, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.0), v.front());
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0), v.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rvar
