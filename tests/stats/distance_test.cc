#include "stats/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace rvar {
namespace {

TEST(VectorDistanceTest, L2AndDot) {
  std::vector<double> a = {1.0, 2.0, 2.0};
  std::vector<double> b = {1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(SquaredL2(a, b), 8.0);
  EXPECT_DOUBLE_EQ(L2(a, b), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(L2(a, a), 0.0);
}

TEST(KsDistanceTest, IdenticalSamplesZero) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(KsDistance(a, a), 0.0);
}

TEST(KsDistanceTest, DisjointSamplesOne) {
  EXPECT_DOUBLE_EQ(KsDistance({1.0, 2.0}, {10.0, 11.0}), 1.0);
}

TEST(KsDistanceTest, KnownHalfShift) {
  // a = {1,2}, b = {2,3}: at x=1, Fa=0.5, Fb=0 -> D = 0.5.
  EXPECT_DOUBLE_EQ(KsDistance({1.0, 2.0}, {2.0, 3.0}), 0.5);
}

TEST(KsDistanceTest, SymmetricAndBounded) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) a.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 200; ++i) b.push_back(rng.Normal(0.5, 2.0));
  const double dab = KsDistance(a, b);
  const double dba = KsDistance(b, a);
  EXPECT_DOUBLE_EQ(dab, dba);
  EXPECT_GT(dab, 0.0);
  EXPECT_LE(dab, 1.0);
}

TEST(KsDistanceTest, ConvergesForSameDistribution) {
  Rng rng(6);
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) a.push_back(rng.LogNormal(0.0, 1.0));
  for (int i = 0; i < 20000; ++i) b.push_back(rng.LogNormal(0.0, 1.0));
  EXPECT_LT(KsDistance(a, b), 0.03);
}

TEST(KsDistancePmfTest, MatchesManualCdfDifference) {
  std::vector<double> pa = {0.5, 0.5, 0.0};
  std::vector<double> pb = {0.0, 0.5, 0.5};
  // CDFs: a = {.5, 1, 1}, b = {0, .5, 1} -> max diff 0.5.
  EXPECT_DOUBLE_EQ(KsDistancePmf(pa, pb), 0.5);
  EXPECT_DOUBLE_EQ(KsDistancePmf(pa, pa), 0.0);
}

TEST(QqTest, IdenticalSamplesZeroMae) {
  std::vector<double> a = {1.0, 5.0, 9.0, 2.0, 4.0};
  EXPECT_NEAR(QqMeanAbsoluteError(a, a), 0.0, 1e-12);
}

TEST(QqTest, ConstantShiftGivesShiftMae) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.Normal(0.0, 1.0);
    a.push_back(v);
    b.push_back(v + 3.0);
  }
  EXPECT_NEAR(QqMeanAbsoluteError(a, b), 3.0, 1e-9);
}

TEST(QqTest, SeriesIsMonotoneInBothAxes) {
  Rng rng(8);
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(rng.LogNormal(0.0, 1.0));
    b.push_back(rng.LogNormal(0.2, 1.2));
  }
  const auto series = QqSeries(a, b, 19);
  ASSERT_EQ(series.size(), 19u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].actual, series[i - 1].actual);
    EXPECT_GE(series[i].predicted, series[i - 1].predicted);
    EXPECT_GT(series[i].q, series[i - 1].q);
  }
}

TEST(QqTest, DifferentSampleSizesSupported) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  std::vector<double> b = {1.0, 8.0};
  EXPECT_GE(QqMeanAbsoluteError(a, b), 0.0);
}

}  // namespace
}  // namespace rvar
