// Property suite for the deterministic KLL quantile sketch (DESIGN.md
// §15): exactness below k, rank error within NormalizedRankErrorBound
// beyond it (across distributions and insertion orders), exact weight
// preservation through compactions and merges, deterministic merge
// results, the ~2 KB memory bound, and Restore() rejecting every class of
// corrupt state. Labeled `sketch` in ctest so the sanitizer presets can
// run exactly this suite.

#include "stats/kll_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "stats/histogram.h"

namespace rvar {
namespace {

BinGrid MakeGrid() {
  auto grid = BinGrid::Make(0.0, 4.0, 200);
  EXPECT_TRUE(grid.ok());
  return *grid;
}

KllSketch MakeSketch(int k) {
  auto sketch = KllSketch::Make(k);
  EXPECT_TRUE(sketch.ok()) << sketch.status().ToString();
  return *std::move(sketch);
}

/// Exact number of stored (float-rounded) values strictly below t.
int64_t TrueCountLess(const std::vector<float>& values, double t) {
  int64_t count = 0;
  for (float v : values) {
    if (static_cast<double>(v) < t) ++count;
  }
  return count;
}

/// Total weight across levels must equal n after any operation sequence —
/// the invariant Restore() uses to detect tampered bytes.
void ExpectWeightInvariant(const KllSketch& sketch) {
  uint64_t total_weight = 0;
  size_t total_items = 0;
  const std::vector<uint32_t>& sizes = sketch.level_sizes();
  for (size_t h = 0; h < sizes.size(); ++h) {
    total_weight += static_cast<uint64_t>(sizes[h]) << h;
    total_items += sizes[h];
  }
  EXPECT_EQ(total_weight, static_cast<uint64_t>(sketch.n()));
  EXPECT_EQ(total_items, sketch.num_retained());
}

TEST(KllSketchTest, MakeRejectsKOutsideRange) {
  EXPECT_FALSE(KllSketch::Make(KllSketch::kMinK - 1).ok());
  EXPECT_FALSE(KllSketch::Make(0).ok());
  EXPECT_FALSE(KllSketch::Make(-5).ok());
  EXPECT_FALSE(KllSketch::Make(KllSketch::kMaxK + 1).ok());
  EXPECT_TRUE(KllSketch::Make(KllSketch::kMinK).ok());
  EXPECT_TRUE(KllSketch::Make(KllSketch::kMaxK).ok());
}

TEST(KllSketchTest, EmptySketchAnswersNeutrally) {
  KllSketch sketch = MakeSketch(200);
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.n(), 0);
  EXPECT_TRUE(sketch.is_exact());
  EXPECT_EQ(sketch.CountLess(1.0), 0);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.min_value(), std::numeric_limits<float>::infinity());
  EXPECT_EQ(sketch.max_value(), -std::numeric_limits<float>::infinity());
  std::vector<double> counts;
  sketch.BinCountsInto(MakeGrid(), &counts);
  EXPECT_EQ(counts.size(), 200u);
  for (double c : counts) EXPECT_EQ(c, 0.0);
}

TEST(KllSketchTest, ExactModeMatchesOrderStatistics) {
  KllSketch sketch = MakeSketch(200);
  Rng rng(11);
  std::vector<float> values;
  for (int i = 0; i < 150; ++i) {  // below k: no compaction can trigger
    const double x = rng.Uniform(0.1, 3.9);
    sketch.Update(x);
    values.push_back(static_cast<float>(x));
  }
  ASSERT_TRUE(sketch.is_exact());
  ASSERT_EQ(sketch.n(), 150);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(sketch.min_value(), values.front());
  EXPECT_EQ(sketch.max_value(), values.back());
  for (double t : {0.5, 1.0, 2.0, 3.5}) {
    EXPECT_EQ(sketch.CountLess(t), TrueCountLess(values, t)) << "t=" << t;
  }
  // Rank-definition quantile over an exact multiset: the smallest value
  // whose cumulative count reaches ceil(q*n).
  for (double q : {0.25, 0.5, 0.75, 0.95}) {
    const auto target =
        static_cast<size_t>(std::ceil(q * static_cast<double>(values.size())));
    EXPECT_EQ(sketch.Quantile(q), static_cast<double>(values[target - 1]))
        << "q=" << q;
  }
  ExpectWeightInvariant(sketch);
}

TEST(KllSketchTest, ExactModeBinCountsEqualDenseHistogram) {
  const BinGrid grid = MakeGrid();
  KllSketch sketch = MakeSketch(256);
  Histogram dense(grid);
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    // Include out-of-range values: both sides clip into the outlier bins.
    const double x = rng.Uniform(-1.0, 6.0);
    const float stored = static_cast<float>(x);
    sketch.Update(x);
    dense.Add(static_cast<double>(stored));
  }
  ASSERT_TRUE(sketch.is_exact());
  std::vector<double> counts;
  sketch.BinCountsInto(grid, &counts);
  ASSERT_EQ(counts.size(), dense.counts().size());
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], static_cast<double>(dense.counts()[i])) << "bin " << i;
  }
}

TEST(KllSketchTest, RankErrorStaysWithinBoundAcrossDistributionsAndOrders) {
  constexpr int kK = 200;
  constexpr int kN = 50000;
  const double eps = KllSketch::NormalizedRankErrorBound(kK);
  ASSERT_GT(eps, 0.0);
  ASSERT_LT(eps, 0.05);
  for (int dist = 0; dist < 4; ++dist) {
    Rng rng(100 + static_cast<uint64_t>(dist));
    std::vector<double> raw;
    raw.reserve(kN);
    for (int i = 0; i < kN; ++i) {
      switch (dist) {
        case 0:
          raw.push_back(rng.Uniform(0.0, 4.0));
          break;
        case 1:
          raw.push_back(std::abs(rng.Normal(1.0, 0.3)));
          break;
        case 2:
          raw.push_back(rng.LogNormal(0.0, 0.5));
          break;
        default:  // bimodal: straggler-like second mode
          raw.push_back(rng.Bernoulli(0.2) ? rng.Normal(3.0, 0.1)
                                           : rng.Normal(1.0, 0.05));
      }
    }
    for (int order = 0; order < 3; ++order) {
      std::vector<double> stream = raw;
      if (order == 1) std::sort(stream.begin(), stream.end());
      if (order == 2) std::sort(stream.rbegin(), stream.rend());
      KllSketch sketch = MakeSketch(kK);
      std::vector<float> stored;
      stored.reserve(stream.size());
      for (double x : stream) {
        sketch.Update(x);
        stored.push_back(static_cast<float>(x));
      }
      ASSERT_EQ(sketch.n(), kN);
      ExpectWeightInvariant(sketch);
      std::sort(stored.begin(), stored.end());
      int64_t worst = 0;
      for (int i = 1; i < 40; ++i) {
        const double t =
            static_cast<double>(stored[stored.size() * i / 40]);
        worst = std::max(
            worst, std::abs(sketch.CountLess(t) - TrueCountLess(stored, t)));
      }
      EXPECT_LE(static_cast<double>(worst), eps * kN)
          << "dist=" << dist << " order=" << order;
    }
  }
}

TEST(KllSketchTest, UpdateSequenceIsDeterministic) {
  Rng rng(5);
  std::vector<double> stream;
  for (int i = 0; i < 20000; ++i) stream.push_back(rng.Uniform(0.0, 4.0));
  KllSketch a = MakeSketch(128);
  KllSketch b = MakeSketch(128);
  for (double x : stream) a.Update(x);
  for (double x : stream) b.Update(x);
  EXPECT_EQ(a.items(), b.items());
  EXPECT_EQ(a.level_sizes(), b.level_sizes());
  EXPECT_EQ(a.compaction_parity(), b.compaction_parity());
  EXPECT_EQ(a.n(), b.n());
}

TEST(KllSketchTest, MergePreservesWeightAndIsDeterministic) {
  Rng rng(17);
  std::vector<std::vector<double>> parts(4);
  for (int i = 0; i < 40000; ++i) {
    parts[static_cast<size_t>(i % 4)].push_back(rng.LogNormal(0.0, 0.4));
  }
  auto build_merged = [&]() {
    KllSketch merged = MakeSketch(200);
    for (const auto& part : parts) {
      KllSketch shard = MakeSketch(200);
      for (double x : part) shard.Update(x);
      EXPECT_TRUE(merged.Merge(shard).ok());
    }
    return merged;
  };
  KllSketch merged = build_merged();
  KllSketch again = build_merged();
  EXPECT_EQ(merged.n(), 40000);
  ExpectWeightInvariant(merged);
  // Same operands in the same order: bit-identical internal state.
  EXPECT_EQ(merged.items(), again.items());
  EXPECT_EQ(merged.level_sizes(), again.level_sizes());
  EXPECT_EQ(merged.compaction_parity(), again.compaction_parity());

  // The merged estimate stays within the single-sketch bound on this
  // (deterministic) workload.
  std::vector<float> stored;
  for (const auto& part : parts) {
    for (double x : part) stored.push_back(static_cast<float>(x));
  }
  std::sort(stored.begin(), stored.end());
  const double eps = KllSketch::NormalizedRankErrorBound(200);
  for (int i = 1; i < 20; ++i) {
    const double t = static_cast<double>(stored[stored.size() * i / 20]);
    EXPECT_LE(std::abs(merged.CountLess(t) - TrueCountLess(stored, t)),
              eps * 40000)
        << "t=" << t;
  }
}

TEST(KllSketchTest, MergeRejectsMismatchedK) {
  KllSketch a = MakeSketch(128);
  KllSketch b = MakeSketch(200);
  b.Update(1.0);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_EQ(a.n(), 0);
}

TEST(KllSketchTest, MergeWithEmptyOperandsIsIdentity) {
  KllSketch a = MakeSketch(64);
  KllSketch empty = MakeSketch(64);
  for (int i = 0; i < 1000; ++i) a.Update(0.001 * i);
  const std::vector<float> before = a.items();
  ASSERT_TRUE(a.Merge(empty).ok());
  EXPECT_EQ(a.items(), before);
  EXPECT_EQ(a.n(), 1000);
  // Empty absorbing non-empty adopts its whole state.
  ASSERT_TRUE(empty.Merge(a).ok());
  EXPECT_EQ(empty.n(), 1000);
  EXPECT_EQ(empty.min_value(), a.min_value());
  EXPECT_EQ(empty.max_value(), a.max_value());
  ExpectWeightInvariant(empty);
}

TEST(KllSketchTest, MemoryStaysBoundedAtAnyStreamLength) {
  KllSketch sketch = MakeSketch(200);
  Rng rng(3);
  for (int i = 0; i < 1000000; ++i) sketch.Update(rng.Uniform(0.0, 4.0));
  EXPECT_EQ(sketch.n(), 1000000);
  // The ISSUE's bounded-state acceptance: ≤ 2 KB per group at k = 200.
  EXPECT_LE(sketch.MemoryBytes(), 2048u);
  ExpectWeightInvariant(sketch);
}

TEST(KllSketchTest, NanIgnoredInfinityAccepted) {
  KllSketch sketch = MakeSketch(64);
  sketch.Update(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(sketch.n(), 0);
  sketch.Update(std::numeric_limits<double>::infinity());
  sketch.Update(-std::numeric_limits<double>::infinity());
  sketch.Update(1.0);
  EXPECT_EQ(sketch.n(), 3);
  EXPECT_EQ(sketch.min_value(), -std::numeric_limits<float>::infinity());
  EXPECT_EQ(sketch.max_value(), std::numeric_limits<float>::infinity());
  // ±inf clip into the outlier bins, like BinGrid::BinIndex.
  std::vector<double> counts;
  sketch.BinCountsInto(MakeGrid(), &counts);
  EXPECT_EQ(counts.front(), 1.0);
  EXPECT_EQ(counts.back(), 1.0);
}

TEST(KllSketchTest, UpdateClampedMirrorsTrackerSemantics) {
  const BinGrid grid = MakeGrid();
  KllSketch sketch = MakeSketch(64);
  sketch.UpdateClamped(grid, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(sketch.n(), 0);  // NaN dropped, exactly like the tracker
  sketch.UpdateClamped(grid, std::numeric_limits<double>::infinity());
  sketch.UpdateClamped(grid, -7.0);
  sketch.UpdateClamped(grid, 1.5);
  EXPECT_EQ(sketch.n(), 3);
  EXPECT_EQ(sketch.min_value(), static_cast<float>(grid.lo()));
  EXPECT_EQ(sketch.max_value(), static_cast<float>(grid.hi()));
}

TEST(KllSketchTest, QuantileReturnsInsertedValues) {
  KllSketch sketch = MakeSketch(64);
  Rng rng(41);
  std::vector<float> stored;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Uniform(0.0, 4.0);
    sketch.Update(x);
    stored.push_back(static_cast<float>(x));
  }
  std::sort(stored.begin(), stored.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    const double v = sketch.Quantile(q);
    EXPECT_TRUE(std::binary_search(stored.begin(), stored.end(),
                                   static_cast<float>(v)))
        << "q=" << q << " returned " << v << ", never inserted";
  }
}

TEST(KllSketchTest, RestoreRoundTripsExactState) {
  KllSketch sketch = MakeSketch(100);
  Rng rng(53);
  for (int i = 0; i < 30000; ++i) sketch.Update(rng.Normal(1.0, 0.4));
  auto restored = KllSketch::Restore(
      sketch.k(), sketch.n(), sketch.min_value(), sketch.max_value(),
      sketch.level_sizes(), sketch.items(), sketch.compaction_parity());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->items(), sketch.items());
  EXPECT_EQ(restored->level_sizes(), sketch.level_sizes());
  EXPECT_EQ(restored->compaction_parity(), sketch.compaction_parity());
  EXPECT_EQ(restored->n(), sketch.n());
  // A restored sketch keeps updating identically to the original.
  KllSketch continued = *std::move(restored);
  for (int i = 0; i < 5000; ++i) {
    const double x = 0.0001 * i;
    continued.Update(x);
    sketch.Update(x);
  }
  EXPECT_EQ(continued.items(), sketch.items());
  EXPECT_EQ(continued.compaction_parity(), sketch.compaction_parity());
}

TEST(KllSketchTest, RestoreRejectsEveryCorruptionClass) {
  KllSketch sketch = MakeSketch(64);
  for (int i = 0; i < 2000; ++i) sketch.Update(0.002 * i);
  const auto& sizes = sketch.level_sizes();
  const auto& items = sketch.items();
  const float lo = sketch.min_value();
  const float hi = sketch.max_value();
  const uint64_t parity = sketch.compaction_parity();

  // k outside range.
  EXPECT_FALSE(KllSketch::Restore(4, sketch.n(), lo, hi, sizes, items, parity)
                   .ok());
  // Negative n.
  EXPECT_FALSE(KllSketch::Restore(64, -1, lo, hi, sizes, items, parity).ok());
  // Weight sum vs n mismatch (dropped observation).
  EXPECT_FALSE(
      KllSketch::Restore(64, sketch.n() - 1, lo, hi, sizes, items, parity)
          .ok());
  // Level sizes vs item count mismatch (torn buffer).
  {
    std::vector<float> short_items = items;
    short_items.pop_back();
    EXPECT_FALSE(
        KllSketch::Restore(64, sketch.n(), lo, hi, sizes, short_items, parity)
            .ok());
  }
  // Item outside [min, max] (bit flip in the payload).
  {
    std::vector<float> bad = items;
    bad.front() = hi + 1.0f;
    EXPECT_FALSE(
        KllSketch::Restore(64, sketch.n(), lo, hi, sizes, bad, parity).ok());
  }
  // NaN item.
  {
    std::vector<float> bad = items;
    bad.back() = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(
        KllSketch::Restore(64, sketch.n(), lo, hi, sizes, bad, parity).ok());
  }
  // min > max.
  EXPECT_FALSE(
      KllSketch::Restore(64, sketch.n(), hi, lo, sizes, items, parity).ok());
  // Empty top level (non-canonical shape).
  {
    std::vector<uint32_t> bad = sizes;
    bad.push_back(0);
    EXPECT_FALSE(
        KllSketch::Restore(64, sketch.n(), lo, hi, bad, items, parity).ok());
  }
  // Parity bits past the top level.
  EXPECT_FALSE(KllSketch::Restore(64, sketch.n(), lo, hi, sizes, items,
                                  uint64_t{1} << 60)
                   .ok());
  // Empty sketch must carry the ±inf sentinels.
  EXPECT_FALSE(KllSketch::Restore(64, 0, 0.0f, 0.0f, {0}, {}, 0).ok());
  EXPECT_TRUE(KllSketch::Restore(64, 0,
                                 std::numeric_limits<float>::infinity(),
                                 -std::numeric_limits<float>::infinity(), {0},
                                 {}, 0)
                  .ok());
}

TEST(KllSketchTest, BinCountsSumToN) {
  const BinGrid grid = MakeGrid();
  KllSketch sketch = MakeSketch(100);
  Rng rng(71);
  for (int i = 0; i < 123457; ++i) {
    sketch.Update(rng.LogNormal(0.0, 0.6));
  }
  std::vector<double> counts;
  sketch.BinCountsInto(grid, &counts);
  double sum = 0.0;
  for (double c : counts) sum += c;
  EXPECT_EQ(sum, static_cast<double>(sketch.n()));
}

TEST(KllSketchTest, RankErrorBoundTightensWithK) {
  EXPECT_LT(KllSketch::NormalizedRankErrorBound(400),
            KllSketch::NormalizedRankErrorBound(200));
  EXPECT_LT(KllSketch::NormalizedRankErrorBound(200),
            KllSketch::NormalizedRankErrorBound(50));
}

}  // namespace
}  // namespace rvar
