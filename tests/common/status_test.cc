#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace rvar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kAlreadyExists,
      StatusCode::kResourceExhausted,  StatusCode::kInternal,
      StatusCode::kUnimplemented,      StatusCode::kIOError,
  };
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(StatusCodeToString(codes[i]), StatusCodeToString(codes[j]));
    }
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  RVAR_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsOutOfRange());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-7), -7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  RVAR_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(QuarterOf(6).status().IsInvalidArgument());
  EXPECT_TRUE(QuarterOf(7).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 9);
}

}  // namespace
}  // namespace rvar
