#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"

namespace rvar {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedDifferentStream) {
  Rng a(123), b(124);
  int diff = 0;
  for (int i = 0; i < 100; ++i) diff += (a.Next() != b.Next());
  EXPECT_GT(diff, 90);
}

TEST(RngTest, SplitIsIndependent) {
  Rng a(7);
  Rng child = a.Split();
  // The child stream should not trivially equal the parent's continuation.
  int diff = 0;
  for (int i = 0; i < 50; ++i) diff += (a.Next() != child.Next());
  EXPECT_GT(diff, 45);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(4);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(5);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.Add(rng.Exponential(0.5));
  EXPECT_NEAR(rs.mean(), 2.0, 0.1);
}

TEST(RngTest, LogNormalMedianIsExpMu) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.LogNormal(1.0, 0.5));
  EXPECT_NEAR(Median(xs), std::exp(1.0), 0.1);
}

TEST(RngTest, ParetoNeverBelowScale) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, GammaMeanIsShapeTimesScale) {
  Rng rng(8);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.Add(rng.Gamma(3.0, 2.0));
  EXPECT_NEAR(rs.mean(), 6.0, 0.15);
  // Variance = shape * scale^2 = 12.
  EXPECT_NEAR(rs.variance(), 12.0, 1.0);
}

TEST(RngTest, GammaSmallShape) {
  Rng rng(9);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) {
    const double g = rng.Gamma(0.5, 1.0);
    EXPECT_GE(g, 0.0);
    rs.Add(g);
  }
  EXPECT_NEAR(rs.mean(), 0.5, 0.05);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, PoissonMeanAndZero) {
  Rng rng(12);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  RunningStats small, large;
  for (int i = 0; i < 20000; ++i) small.Add(static_cast<double>(rng.Poisson(3.0)));
  for (int i = 0; i < 20000; ++i) large.Add(static_cast<double>(rng.Poisson(100.0)));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 0.5);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(14);
  std::vector<size_t> p = rng.Permutation(100);
  std::sort(p.begin(), p.end());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(p[i], i);
}

TEST(RngTest, PermutationEmptyAndSingle) {
  Rng rng(15);
  EXPECT_TRUE(rng.Permutation(0).empty());
  const auto p = rng.Permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

}  // namespace
}  // namespace rvar
