// Error-path coverage: every Status factory, Result<T> move semantics,
// and error propagation through the core pipeline's entry points.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/assigner.h"
#include "core/online.h"
#include "core/shape_library.h"
#include "sim/telemetry.h"

namespace rvar {
namespace {

TEST(StatusFactoryTest, EveryFactoryMapsToItsCode) {
  const std::pair<Status, StatusCode> cases[] = {
      {Status::OK(), StatusCode::kOk},
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument},
      {Status::NotFound("m"), StatusCode::kNotFound},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted},
      {Status::Internal("m"), StatusCode::kInternal},
      {Status::Unimplemented("m"), StatusCode::kUnimplemented},
      {Status::IOError("m"), StatusCode::kIOError},
  };
  for (const auto& [status, code] : cases) {
    EXPECT_EQ(status.code(), code);
    EXPECT_EQ(status.ok(), code == StatusCode::kOk);
    if (!status.ok()) {
      EXPECT_EQ(status.message(), "m");
      const std::string rendered = status.ToString();
      EXPECT_NE(rendered.find(StatusCodeToString(code)), std::string::npos);
      EXPECT_NE(rendered.find(": m"), std::string::npos);
    }
  }
}

TEST(StatusFactoryTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_FALSE(Status::InvalidArgument("x").IsNotFound());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::OK().IsInternal());
}

TEST(ResultMoveTest, MoveOnlyValueRoundTrips) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  // Lvalue access does not consume the value.
  EXPECT_EQ(**r, 5);
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5);
}

TEST(ResultMoveTest, MoveConstructionPreservesState) {
  Result<std::vector<int>> ok(std::vector<int>{1, 2, 3});
  Result<std::vector<int>> moved = std::move(ok);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->size(), 3u);

  Result<std::vector<int>> err(Status::NotFound("gone"));
  Result<std::vector<int>> moved_err = std::move(err);
  ASSERT_FALSE(moved_err.ok());
  EXPECT_TRUE(moved_err.status().IsNotFound());
  EXPECT_EQ(moved_err.status().message(), "gone");
}

Result<std::unique_ptr<int>> MakeBox(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return std::make_unique<int>(x);
}

Result<int> UnboxDoubled(int x) {
  RVAR_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(x));
  return 2 * *box;
}

TEST(ResultMoveTest, AssignOrReturnMovesThrough) {
  Result<int> ok = UnboxDoubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(UnboxDoubled(-1).status().IsInvalidArgument());
}

TEST(OnlineTrackerErrorTest, MakeRejectsNullLibrary) {
  auto tracker = core::OnlineShapeTracker::Make(nullptr);
  ASSERT_FALSE(tracker.ok());
  EXPECT_TRUE(tracker.status().IsInvalidArgument());
}

TEST(OnlineTrackerErrorTest, MakeRejectsBadDecayAndFloor) {
  // Build a minimal real library to isolate the parameter checks.
  sim::TelemetryStore store;
  for (int g = 0; g < 2; ++g) {
    for (int64_t i = 0; i < 30; ++i) {
      sim::JobRun run;
      run.group_id = g;
      run.instance_id = i;
      run.runtime_seconds = 100.0 + 10.0 * g + static_cast<double>(i % 7);
      store.Add(run);
    }
  }
  const core::GroupMedians medians = core::GroupMedians::FromTelemetry(store);
  core::ShapeLibraryConfig sc;
  sc.num_clusters = 2;
  sc.min_support = 20;
  sc.kmeans.num_restarts = 2;
  auto library = core::ShapeLibrary::Build(store, medians, sc);
  ASSERT_TRUE(library.ok()) << library.status().ToString();

  EXPECT_TRUE(core::OnlineShapeTracker::Make(&*library, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(core::OnlineShapeTracker::Make(&*library, 1.5)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(core::OnlineShapeTracker::Make(&*library, 0.9, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(core::OnlineShapeTracker::Make(&*library, 0.9, -1.0)
                  .status()
                  .IsInvalidArgument());
  // And the happy path still works on the same library.
  auto tracker = core::OnlineShapeTracker::Make(&*library, 0.9);
  ASSERT_TRUE(tracker.ok());
  EXPECT_EQ(tracker->MostLikely(), -1);  // no observations yet

  // Assigner error paths on the same library.
  core::PosteriorAssigner assigner(&*library);
  EXPECT_TRUE(assigner.LogLikelihoods({}).status().IsInvalidArgument());
  EXPECT_TRUE(assigner
                  .LogLikelihoods({std::nan(""), std::nan("")})
                  .status()
                  .IsInvalidArgument());
  auto lls = assigner.LogLikelihoods({1.0, std::nan("")});
  ASSERT_TRUE(lls.ok());  // one finite observation is enough
  EXPECT_EQ(lls->size(), 2u);
}

TEST(OnlineTrackerErrorTest, BuildFailsOnEmptyTelemetry) {
  // An empty store yields no qualifying groups; Build reports why instead
  // of crashing, and the error propagates through RVAR_ASSIGN_OR_RETURN.
  sim::TelemetryStore empty;
  const core::GroupMedians medians =
      core::GroupMedians::FromTelemetry(empty);
  core::ShapeLibraryConfig sc;
  sc.num_clusters = 2;
  auto library = core::ShapeLibrary::Build(empty, medians, sc);
  ASSERT_FALSE(library.ok());
  EXPECT_TRUE(library.status().IsFailedPrecondition());

  const auto chain = [&]() -> Result<int> {
    RVAR_ASSIGN_OR_RETURN(core::ShapeLibrary lib,
                          core::ShapeLibrary::Build(empty, medians, sc));
    return lib.num_clusters();
  };
  EXPECT_TRUE(chain().status().IsFailedPrecondition());
}

}  // namespace
}  // namespace rvar
