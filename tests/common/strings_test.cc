#include "common/strings.h"

#include <gtest/gtest.h>

#include <fstream>

#include "common/csv.h"
#include "common/hash.h"
#include "common/table.h"

namespace rvar {
namespace {

TEST(StringsTest, StrCatMixedTypes) {
  EXPECT_EQ(StrCat("job-", 42, " x", 1.5), "job-42 x1.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(StringsTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.005, 2), "-0.01");
}

TEST(StringsTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.1523), "15.23%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(StringsTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-45000), "-45,000");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("job_group_7", "job_"));
  EXPECT_FALSE(StartsWith("job", "job_"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(HashTest, Fnv1aIsStable) {
  // Known FNV-1a 64-bit value for the empty string and a fixed phrase.
  EXPECT_EQ(Fnv1a(""), kFnvOffsetBasis);
  EXPECT_EQ(Fnv1a("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_NE(Fnv1a("plan-a"), Fnv1a("plan-b"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  const uint64_t h1 = HashCombine(HashCombine(kFnvOffsetBasis, 1), 2);
  const uint64_t h2 = HashCombine(HashCombine(kFnvOffsetBasis, 2), 1);
  EXPECT_NE(h1, h2);
}

TEST(TableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"cid", "outlier"});
  t.AddRow({"0", "1.63"});
  t.AddRow({"10", "0.06"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("cid  outlier"), std::string::npos);
  EXPECT_NE(s.find("10   0.06"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, RaggedRowsTolerated) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3", "4"});
  const std::string s = t.ToString();
  EXPECT_FALSE(s.empty());
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::EscapeCell("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeCell("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeCell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::EscapeCell("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, AccumulatesRows) {
  CsvWriter w;
  w.AddRow({"h1", "h2"});
  w.AddRow({"1", "x,y"});
  EXPECT_EQ(w.contents(), "h1,h2\n1,\"x,y\"\n");
}

TEST(CsvTest, WriteToFileRoundTrip) {
  CsvWriter w;
  w.AddRow({"a", "b"});
  const std::string path = testing::TempDir() + "/rvar_csv_test.csv";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvWriter w;
  w.AddRow({"a"});
  EXPECT_TRUE(w.WriteToFile("/nonexistent_dir_zz/f.csv").IsInternal() ||
              !w.WriteToFile("/nonexistent_dir_zz/f.csv").ok());
}

}  // namespace
}  // namespace rvar
