#include "common/csv.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rvar {
namespace {

using Rows = std::vector<std::vector<std::string>>;

TEST(CsvWriterTest, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::EscapeCell("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeCell("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeCell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::EscapeCell("two\nlines"), "\"two\nlines\"");
}

TEST(ParseCsvTest, RoundTripsThroughWriter) {
  CsvWriter writer;
  writer.AddRow({"name", "value"});
  writer.AddRow({"with,comma", "with \"quotes\""});
  writer.AddRow({"multi\nline", ""});
  auto rows = ParseCsv(writer.contents());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, (Rows{{"name", "value"},
                         {"with,comma", "with \"quotes\""},
                         {"multi\nline", ""}}));
}

TEST(ParseCsvTest, HandlesCrlfAndMissingFinalNewline) {
  auto rows = ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(ParseCsvTest, RejectsMalformedQuoting) {
  auto unterminated = ParseCsv("a,\"never closed");
  EXPECT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("unterminated"),
            std::string::npos);

  auto trailing = ParseCsv("a,\"closed\"junk");
  EXPECT_FALSE(trailing.ok());
  EXPECT_NE(trailing.status().message().find("closing quote"),
            std::string::npos);

  EXPECT_FALSE(ParseCsv("a,b\"c").ok());   // quote inside unquoted cell
  EXPECT_FALSE(ParseCsv("a,b\rc,d").ok()); // bare carriage return
}

TEST(CsvTableTest, ParsesHeaderAndCells) {
  auto table = CsvTable::Parse("x,y\n1,2.5\n3,-4\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_columns(), 2u);
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->ColumnIndex("y"), 1);
  EXPECT_EQ(table->ColumnIndex("missing"), -1);
  EXPECT_EQ(*table->NumericCell(0, 1), 2.5);
  EXPECT_EQ(*table->IntegerCell(1, 0), 3);
  EXPECT_EQ(*table->IntegerCell(1, 1), -4);
}

TEST(CsvTableTest, RejectsRaggedRows) {
  auto table = CsvTable::Parse("a,b,c\n1,2,3\n4,5\n");
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsInvalidArgument());
  // Names the offending 1-based line and both widths.
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos)
      << table.status().ToString();
  EXPECT_NE(table.status().message().find("2 cells"), std::string::npos);
}

TEST(CsvTableTest, RejectsEmptyDocument) {
  EXPECT_FALSE(CsvTable::Parse("").ok());
}

TEST(CsvTableTest, NumericCellRejectsGarbage) {
  auto table = CsvTable::Parse("v\nabc\n\n1e999\nnan\n12x\n");
  // "" row parses as a single empty cell; widths agree (1 column).
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  for (size_t row = 0; row < table->num_rows(); ++row) {
    auto v = table->NumericCell(row, 0);
    EXPECT_FALSE(v.ok()) << "row " << row;
    EXPECT_TRUE(v.status().IsInvalidArgument());
    // The error names the column so the user can find the bad cell.
    EXPECT_NE(v.status().message().find("\"v\""), std::string::npos);
  }
}

TEST(CsvTableTest, IntegerCellRejectsFractionsAndOverflow) {
  auto table = CsvTable::Parse("n\n1.5\n99999999999999999999\nseven\n7\n");
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->IntegerCell(0, 0).ok());  // fractional
  EXPECT_FALSE(table->IntegerCell(1, 0).ok());  // overflow
  EXPECT_FALSE(table->IntegerCell(2, 0).ok());  // not a number
  EXPECT_EQ(*table->IntegerCell(3, 0), 7);
}

}  // namespace
}  // namespace rvar
