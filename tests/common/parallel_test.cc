// Tests for the deterministic parallel layer: exact index coverage,
// bit-identical reductions across thread counts, machine-independent chunk
// boundaries, and nested-region safety.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace rvar {
namespace {

// Restores the default thread count after each test so ordering between
// tests (and other suites in this binary) cannot leak configuration.
class ParallelTest : public ::testing::Test {
 protected:
  ~ParallelTest() override { SetParallelThreads(0); }
};

TEST_F(ParallelTest, ChunkRangesCoverExactlyOnce) {
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (size_t grain : {1u, 3u, 64u, 2000u}) {
      const auto ranges = internal::ChunkRanges(n, grain);
      std::vector<int> seen(n, 0);
      size_t prev_end = 0;
      for (const auto& [begin, end] : ranges) {
        EXPECT_EQ(begin, prev_end);  // ordered, gapless
        EXPECT_LT(begin, end);
        EXPECT_LE(end - begin, grain == 0 ? 1 : grain);
        for (size_t i = begin; i < end; ++i) seen[i]++;
        prev_end = end;
      }
      EXPECT_EQ(prev_end, n);
      for (int c : seen) EXPECT_EQ(c, 1);
    }
  }
}

TEST_F(ParallelTest, ChunkRangesIgnoreThreadCount) {
  SetParallelThreads(1);
  const auto one = internal::ChunkRanges(1000, 64);
  SetParallelThreads(8);
  const auto eight = internal::ChunkRanges(1000, 64);
  EXPECT_EQ(one, eight);
}

TEST_F(ParallelTest, ParallelForVisitsEveryIndexOnce) {
  for (int threads : {1, 2, 8}) {
    SetParallelThreads(threads);
    constexpr size_t kN = 10007;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h = 0;
    ParallelFor(kN, 16, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i]++;
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Non-associative floating-point sum: identical bits require identical
  // chunking AND identical merge order.
  Rng rng(17);
  std::vector<double> xs(12345);
  for (double& x : xs) x = rng.LogNormal(0.0, 2.0);

  auto sum_with = [&](int threads) {
    SetParallelThreads(threads);
    return ParallelReduce<double>(
        xs.size(), 128, 0.0,
        [&](size_t begin, size_t end) {
          double acc = 0.0;
          for (size_t i = begin; i < end; ++i) acc += xs[i];
          return acc;
        },
        [](double acc, double part) { return acc + part; });
  };

  const double serial = sum_with(1);
  for (int threads : {2, 3, 8}) {
    const double parallel = sum_with(threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;  // exact bits
  }
}

TEST_F(ParallelTest, ReduceMergesInIndexOrder) {
  SetParallelThreads(8);
  // Concatenation is order-sensitive; the result must be index order.
  const std::string cat = ParallelReduce<std::string>(
      26, 3, std::string(),
      [](size_t begin, size_t end) {
        std::string s;
        for (size_t i = begin; i < end; ++i) {
          s.push_back(static_cast<char>('a' + i));
        }
        return s;
      },
      [](std::string acc, std::string part) { return acc + part; });
  EXPECT_EQ(cat, "abcdefghijklmnopqrstuvwxyz");
}

TEST_F(ParallelTest, NestedRegionsRunInlineWithoutDeadlock) {
  SetParallelThreads(4);
  std::atomic<int> total{0};
  ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // Nested region: must complete inline on the worker.
      ParallelFor(100, 10, [&](size_t b, size_t e) {
        total += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST_F(ParallelTest, EmptyRangeIsANoOp) {
  SetParallelThreads(4);
  bool called = false;
  ParallelFor(0, 8, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
  const int r = ParallelReduce<int>(
      0, 8, 42, [](size_t, size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, 42);
}

TEST_F(ParallelTest, ThreadCountResolution) {
  SetParallelThreads(3);
  EXPECT_EQ(ParallelThreads(), 3);
  SetParallelThreads(0);
  EXPECT_GE(ParallelThreads(), 1);
}

}  // namespace
}  // namespace rvar
