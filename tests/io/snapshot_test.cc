#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "io/codec.h"
#include "io/crc32.h"

namespace rvar {
namespace io {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("rvar_snapshot_test_") + name))
      .string();
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 (IEEE) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string text = "runtime variation in big data analytics";
  const uint32_t partial = Crc32(text.substr(0, 10));
  EXPECT_EQ(Crc32(text.substr(10), partial), Crc32(text));
}

TEST(Crc32Test, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xCBF43926u, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc32(MaskCrc32(crc)), crc);
    EXPECT_NE(MaskCrc32(crc), crc);  // stored form differs from raw CRC
  }
}

TEST(CodecTest, ScalarsRoundTrip) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(1ull << 60);
  w.PutI32(-42);
  w.PutI64(-(1ll << 50));
  w.PutDouble(3.14159);
  w.PutString("hello");
  w.PutDoubleVector({1.0, -2.5});
  w.PutI32Vector({3, -4, 5});

  BinaryReader r(w.bytes());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEF);
  EXPECT_EQ(*r.ReadU64(), 1ull << 60);
  EXPECT_EQ(*r.ReadI32(), -42);
  EXPECT_EQ(*r.ReadI64(), -(1ll << 50));
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(*r.ReadDoubleVector(), (std::vector<double>{1.0, -2.5}));
  EXPECT_EQ(*r.ReadI32Vector(), (std::vector<int>{3, -4, 5}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, ShortBufferFailsWithoutAdvancing) {
  BinaryReader r("ab");
  auto u32 = r.ReadU32();
  EXPECT_FALSE(u32.ok());
  EXPECT_EQ(r.position(), 0u);  // cursor unchanged on failure
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(CodecTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  BinaryWriter w;
  w.PutU64(~0ull);  // claims ~2^64 bytes follow
  BinaryReader r(w.bytes());
  EXPECT_FALSE(r.ReadString().ok());
  EXPECT_FALSE(BinaryReader(w.bytes()).ReadDoubleVector().ok());
  EXPECT_FALSE(BinaryReader(w.bytes()).ReadI32Vector().ok());
}

TEST(SnapshotTest, RoundTripsRecords) {
  SnapshotWriter writer(PayloadKind::kShapeLibrary);
  writer.AddRecord("first");
  writer.AddRecord("");
  writer.AddRecord(std::string(1000, 'x'));
  const std::string image = writer.Finish();

  auto reader = SnapshotReader::Open(image, PayloadKind::kShapeLibrary);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->num_records(), 3u);
  EXPECT_EQ(*reader->Record(0), "first");
  EXPECT_EQ(*reader->Record(1), "");
  EXPECT_EQ(*reader->Record(2), std::string(1000, 'x'));
  EXPECT_FALSE(reader->Record(3).ok());
}

TEST(SnapshotTest, ClassifiesDefects) {
  SnapshotWriter writer(PayloadKind::kShapeLibrary);
  writer.AddRecord("payload");
  const std::string image = writer.Finish();
  SnapshotDefect defect = SnapshotDefect::kNone;

  // Too short for a header.
  EXPECT_FALSE(SnapshotReader::Open("RV", PayloadKind::kShapeLibrary,
                                    &defect)
                   .ok());
  EXPECT_EQ(defect, SnapshotDefect::kShortHeader);

  // Wrong magic.
  std::string bad = image;
  bad[0] = 'X';
  EXPECT_FALSE(
      SnapshotReader::Open(bad, PayloadKind::kShapeLibrary, &defect).ok());
  EXPECT_EQ(defect, SnapshotDefect::kBadMagic);

  // Unknown future version (header CRC recomputed to isolate the check).
  {
    SnapshotWriter w2(PayloadKind::kShapeLibrary);
    w2.AddRecord("payload");
    std::string future = w2.Finish();
    future[4] = 99;  // version byte
    const uint32_t crc = MaskCrc32(Crc32(std::string_view(future).substr(
        0, 20)));
    for (int i = 0; i < 4; ++i) {
      future[20 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
    }
    EXPECT_FALSE(
        SnapshotReader::Open(future, PayloadKind::kShapeLibrary, &defect)
            .ok());
    EXPECT_EQ(defect, SnapshotDefect::kBadVersion);
  }

  // Corrupted header byte.
  bad = image;
  bad[9] ^= 0x40;
  EXPECT_FALSE(
      SnapshotReader::Open(bad, PayloadKind::kShapeLibrary, &defect).ok());
  EXPECT_EQ(defect, SnapshotDefect::kHeaderCrcMismatch);

  // Intact file, wrong payload kind.
  EXPECT_FALSE(
      SnapshotReader::Open(image, PayloadKind::kTelemetryStore, &defect)
          .ok());
  EXPECT_EQ(defect, SnapshotDefect::kWrongPayloadKind);

  // Flipped payload byte.
  bad = image;
  bad[bad.size() - 2] ^= 0x01;
  EXPECT_FALSE(
      SnapshotReader::Open(bad, PayloadKind::kShapeLibrary, &defect).ok());
  EXPECT_EQ(defect, SnapshotDefect::kRecordCrcMismatch);

  // Truncated mid-record (torn write).
  bad = image.substr(0, image.size() - 3);
  EXPECT_FALSE(
      SnapshotReader::Open(bad, PayloadKind::kShapeLibrary, &defect).ok());
  EXPECT_EQ(defect, SnapshotDefect::kTornRecord);

  // Clean truncation at a record boundary: fewer records than promised.
  bad = image.substr(0, 24);
  EXPECT_FALSE(
      SnapshotReader::Open(bad, PayloadKind::kShapeLibrary, &defect).ok());
  EXPECT_EQ(defect, SnapshotDefect::kRecordCountMismatch);

  // Bytes appended past the promised records.
  bad = image + "zzz";
  EXPECT_FALSE(
      SnapshotReader::Open(bad, PayloadKind::kShapeLibrary, &defect).ok());
  EXPECT_EQ(defect, SnapshotDefect::kTrailingGarbage);
}

TEST(SnapshotTest, DefectNamesAreDistinct) {
  for (int i = 0; i < kNumSnapshotDefects; ++i) {
    for (int j = i + 1; j < kNumSnapshotDefects; ++j) {
      EXPECT_STRNE(SnapshotDefectName(static_cast<SnapshotDefect>(i)),
                   SnapshotDefectName(static_cast<SnapshotDefect>(j)));
    }
  }
}

TEST(AtomicWriteTest, RoundTripsAndReplaces) {
  const std::string path = TempPath("atomic");
  ASSERT_TRUE(AtomicWriteFile(path, "first contents").ok());
  EXPECT_EQ(*ReadFileToString(path), "first contents");
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  EXPECT_EQ(*ReadFileToString(path), "second");
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(AtomicWriteTest, MissingFileIsNotFound) {
  auto missing = ReadFileToString(TempPath("never_written"));
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();
}

TEST(SnapshotTest, WriteFileRoundTrips) {
  const std::string path = TempPath("container");
  SnapshotWriter writer(PayloadKind::kGbdtClassifier);
  writer.AddRecord("abc");
  ASSERT_TRUE(writer.WriteFile(path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  auto reader = SnapshotReader::Open(*bytes, PayloadKind::kGbdtClassifier);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->Record(0), "abc");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace io
}  // namespace rvar
