// Codec robustness for the KLL sketch wire format (ISSUE 10 satellite):
// the standalone PayloadKind::kKllSketch container and the sketch-bearing
// kShapeServiceState image must refuse bit-flipped, truncated, and
// semantically tampered bytes *whole* — with the right SnapshotDefect
// taxonomy for container damage and a clean InvalidArgument (defect
// kNone) when the container is intact but the payload fails
// KllSketch::Restore validation. Labeled `sketch` and `chaos` in ctest.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/shape_library.h"
#include "core/shape_service.h"
#include "io/codec.h"
#include "io/serialize.h"
#include "io/snapshot.h"
#include "sim/faults.h"
#include "sim/telemetry.h"
#include "stats/kll_sketch.h"

namespace rvar {
namespace io {
namespace {

KllSketch BuildSketch(int k, int n, uint64_t seed) {
  auto sketch = KllSketch::Make(k);
  EXPECT_TRUE(sketch.ok());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) sketch->Update(rng.LogNormal(0.0, 0.5));
  return *std::move(sketch);
}

void ExpectSketchesIdentical(const KllSketch& a, const KllSketch& b) {
  EXPECT_EQ(a.k(), b.k());
  EXPECT_EQ(a.n(), b.n());
  EXPECT_EQ(a.min_value(), b.min_value());
  EXPECT_EQ(a.max_value(), b.max_value());
  EXPECT_EQ(a.items(), b.items());
  EXPECT_EQ(a.level_sizes(), b.level_sizes());
  EXPECT_EQ(a.compaction_parity(), b.compaction_parity());
}

TEST(SketchCodecTest, RoundTripsBitIdentically) {
  for (int n : {0, 5, 199, 200, 50000}) {
    const KllSketch sketch = BuildSketch(200, n, 7 + static_cast<uint64_t>(n));
    const std::string image = EncodeKllSketch(sketch);
    auto decoded = DecodeKllSketch(image);
    ASSERT_TRUE(decoded.ok()) << "n=" << n << ": "
                              << decoded.status().ToString();
    ExpectSketchesIdentical(sketch, *decoded);
    // The re-encode is byte-identical: the wire format is canonical.
    EXPECT_EQ(EncodeKllSketch(*decoded), image) << "n=" << n;
  }
}

TEST(SketchCodecTest, EveryBitFlipIsRefusedWithContainerTaxonomy) {
  const KllSketch sketch = BuildSketch(128, 20000, 3);
  const std::string image = EncodeKllSketch(sketch);
  const sim::StorageFaultPlan faults(41);
  int crc_defects = 0;
  for (int trial = 0; trial < 128; ++trial) {
    SnapshotDefect defect = SnapshotDefect::kNone;
    auto mutated = DecodeKllSketch(
        faults.FlipBits(image, /*num_flips=*/1 + trial % 4,
                        static_cast<uint64_t>(trial)),
        &defect);
    ASSERT_FALSE(mutated.ok()) << "trial " << trial;
    // Every flip lands in CRC-covered bytes, so the container itself
    // classifies the damage — decode never reaches Restore.
    EXPECT_NE(defect, SnapshotDefect::kNone) << "trial " << trial;
    crc_defects += (defect == SnapshotDefect::kRecordCrcMismatch ||
                    defect == SnapshotDefect::kHeaderCrcMismatch);
  }
  EXPECT_GT(crc_defects, 0);  // the taxonomy is exercised, not vacuous
}

TEST(SketchCodecTest, EveryTruncationIsRefused) {
  const KllSketch sketch = BuildSketch(200, 30000, 9);
  const std::string image = EncodeKllSketch(sketch);
  const sim::StorageFaultPlan faults(43);
  for (int trial = 0; trial < 64; ++trial) {
    SnapshotDefect defect = SnapshotDefect::kNone;
    auto torn = DecodeKllSketch(
        faults.TruncateTail(image, /*max_fraction=*/0.9,
                            static_cast<uint64_t>(trial)),
        &defect);
    ASSERT_FALSE(torn.ok()) << "trial " << trial;
    EXPECT_NE(defect, SnapshotDefect::kNone) << "trial " << trial;
  }
}

// A container that is perfectly intact but carries tampered sketch fields
// must fail the semantic funnel (KllSketch::Restore) with defect kNone —
// the taxonomy distinguishes "storage damaged it" from "the payload was
// never a valid sketch".
TEST(SketchCodecTest, IntactContainerWithTamperedPayloadFailsSemantically) {
  const KllSketch sketch = BuildSketch(64, 5000, 11);
  auto tampered_image = [&](int64_t n_delta) {
    BinaryWriter w;
    w.PutU32(static_cast<uint32_t>(sketch.k()));
    w.PutI64(sketch.n() + n_delta);  // weight invariant broken when != 0
    uint32_t bits = 0;
    float f = sketch.min_value();
    std::memcpy(&bits, &f, sizeof(bits));
    w.PutU32(bits);
    f = sketch.max_value();
    std::memcpy(&bits, &f, sizeof(bits));
    w.PutU32(bits);
    w.PutU64(sketch.compaction_parity());
    w.PutU32(static_cast<uint32_t>(sketch.level_sizes().size()));
    for (uint32_t s : sketch.level_sizes()) w.PutU32(s);
    for (float item : sketch.items()) {
      std::memcpy(&bits, &item, sizeof(bits));
      w.PutU32(bits);
    }
    SnapshotWriter snap(PayloadKind::kKllSketch);
    snap.AddRecord(w.bytes());
    return snap.Finish();
  };
  {
    SnapshotDefect defect = SnapshotDefect::kRecordCrcMismatch;
    auto ok = DecodeKllSketch(tampered_image(0), &defect);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();  // control: layout right
    EXPECT_EQ(defect, SnapshotDefect::kNone);
  }
  SnapshotDefect defect = SnapshotDefect::kRecordCrcMismatch;
  auto bad = DecodeKllSketch(tampered_image(1), &defect);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument()) << bad.status().ToString();
  EXPECT_EQ(defect, SnapshotDefect::kNone);  // container was intact
}

TEST(SketchCodecTest, WrongPayloadKindIsRefused) {
  const KllSketch sketch = BuildSketch(64, 100, 13);
  BinaryWriter w;
  EncodeKllSketchInto(sketch, &w);
  SnapshotWriter snap(PayloadKind::kTelemetryStore);  // wrong kind on purpose
  snap.AddRecord(w.bytes());
  SnapshotDefect defect = SnapshotDefect::kNone;
  EXPECT_FALSE(DecodeKllSketch(snap.Finish(), &defect).ok());
  EXPECT_EQ(defect, SnapshotDefect::kWrongPayloadKind);
}

// A hostile level count / item count must be rejected before any
// allocation is sized from it (the decoder bounds-checks against the
// remaining bytes).
TEST(SketchCodecTest, HostileLengthsAreRejectedBeforeAllocation) {
  BinaryWriter w;
  w.PutU32(200);                       // k
  w.PutI64(1);                         // n
  w.PutU32(0x3f800000);                // min = 1.0f
  w.PutU32(0x3f800000);                // max = 1.0f
  w.PutU64(0);                         // parity
  w.PutU32(0x7fffffff);                // absurd level count
  SnapshotWriter snap(PayloadKind::kKllSketch);
  snap.AddRecord(w.bytes());
  SnapshotDefect defect = SnapshotDefect::kNone;
  auto hostile = DecodeKllSketch(snap.Finish(), &defect);
  ASSERT_FALSE(hostile.ok());
  EXPECT_TRUE(hostile.status().IsInvalidArgument());
  EXPECT_EQ(defect, SnapshotDefect::kNone);
}

// The sketch-bearing ShapeServiceState image: full round trip, and
// fault-injected images refused whole.
class SketchServiceImageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::TelemetryStore store;
    core::GroupMedians medians;
    Rng rng(19);
    for (int gid = 0; gid < 6; ++gid) {
      const double median = rng.Uniform(100.0, 200.0);
      for (int i = 0; i < 40; ++i) {
        sim::JobRun run;
        run.group_id = gid;
        run.runtime_seconds =
            median * std::max(0.1, rng.Normal(1.0, gid % 2 ? 0.4 : 0.05));
        store.Add(run);
      }
      medians.Set(gid, median);
    }
    core::ShapeLibraryConfig config;
    config.num_clusters = 2;
    config.min_support = 10;
    auto lib = core::ShapeLibrary::Build(store, medians, config);
    ASSERT_TRUE(lib.ok()) << lib.status().ToString();
    library_ = std::make_unique<core::ShapeLibrary>(*std::move(lib));
  }

  std::unique_ptr<core::ShapeLibrary> library_;
};

TEST_F(SketchServiceImageTest, ServiceStateWithSketchesRoundTrips) {
  auto service = core::ShapeService::Make(library_.get());
  ASSERT_TRUE(service.ok());
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        (*service)->Observe(i % 7, rng.LogNormal(0.0, 0.3)).ok());
  }
  const std::string image = EncodeShapeServiceState(**service);
  auto states = DecodeShapeServiceState(image);
  ASSERT_TRUE(states.ok()) << states.status().ToString();
  auto restored = core::ShapeService::Make(library_.get());
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->RestoreState(*states).ok());
  // The restored service re-exports byte-identically: sketches included.
  EXPECT_EQ(EncodeShapeServiceState(**restored), image);
  for (int gid = 0; gid < 7; ++gid) {
    EXPECT_EQ((*restored)->PriorShape(gid), (*service)->PriorShape(gid));
  }
}

TEST_F(SketchServiceImageTest, CorruptedServiceImagesAreRefusedWhole) {
  auto service = core::ShapeService::Make(library_.get());
  ASSERT_TRUE(service.ok());
  Rng rng(29);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE((*service)->Observe(i % 5, rng.Uniform(0.5, 3.0)).ok());
  }
  const std::string image = EncodeShapeServiceState(**service);
  const sim::StorageFaultPlan faults(47);
  for (int trial = 0; trial < 64; ++trial) {
    SnapshotDefect defect = SnapshotDefect::kNone;
    EXPECT_FALSE(DecodeShapeServiceState(
                     faults.FlipBits(image, 1 + trial % 3,
                                     static_cast<uint64_t>(trial)),
                     &defect)
                     .ok())
        << "trial " << trial;
    EXPECT_NE(defect, SnapshotDefect::kNone) << "trial " << trial;
  }
  for (int trial = 0; trial < 32; ++trial) {
    EXPECT_FALSE(DecodeShapeServiceState(
                     faults.TruncateTail(image, 0.8,
                                         static_cast<uint64_t>(100 + trial)))
                     .ok())
        << "trial " << trial;
  }
}

// Pre-sketch group records (the old layout, no trailing sketch bytes)
// fail at decode — never a half-loaded service missing its sketches.
TEST_F(SketchServiceImageTest, LegacyImagesWithoutSketchesAreRefused) {
  SnapshotWriter snap(PayloadKind::kShapeServiceState);
  {
    BinaryWriter w;
    w.PutU64(1);
    snap.AddRecord(w.bytes());
  }
  {
    BinaryWriter w;
    w.PutI32(0);                       // group id
    w.PutI64(4);                       // count
    w.PutI64(0);                       // num_clamped
    w.PutDoubleVector({-1.0, -2.0});   // ll sums, then... nothing
    snap.AddRecord(w.bytes());
  }
  SnapshotDefect defect = SnapshotDefect::kNone;
  auto legacy = DecodeShapeServiceState(snap.Finish(), &defect);
  ASSERT_FALSE(legacy.ok());
  EXPECT_TRUE(legacy.status().IsInvalidArgument() ||
              legacy.status().IsOutOfRange())
      << legacy.status().ToString();
  EXPECT_EQ(defect, SnapshotDefect::kNone);  // container intact, payload not
}

}  // namespace
}  // namespace io
}  // namespace rvar
