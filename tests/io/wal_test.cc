#include "io/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "io/snapshot.h"

namespace rvar {
namespace io {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test: ctest runs each TEST_F as its own process,
    // possibly concurrently, and a shared path would let one test's
    // remove_all delete another's live WAL.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("rvar_wal_test_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/wal-000001";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void AppendRaw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << bytes;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, AppendAndScanRoundTrip) {
  {
    auto writer = WalWriter::Create(path_, 1, /*sync_each_append=*/true);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer->Append("one").ok());
    ASSERT_TRUE(writer->Append("").ok());
    ASSERT_TRUE(writer->Append("three").ok());
    EXPECT_EQ(writer->segment_id(), 1u);
  }
  auto scan = ScanWalFile(path_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->segment_id, 1u);
  EXPECT_EQ(scan->records,
            (std::vector<std::string>{"one", "", "three"}));
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_FALSE(scan->corrupt_record);
  EXPECT_EQ(scan->dropped_bytes, 0u);
  EXPECT_EQ(scan->valid_bytes, std::filesystem::file_size(path_));
}

TEST_F(WalTest, TornTailIsDetectedAndHealed) {
  {
    auto writer = WalWriter::Create(path_, 1, true);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("intact record").ok());
  }
  const uint64_t intact_size = std::filesystem::file_size(path_);
  AppendRaw(std::string("\x20\x00\x00\x00partial", 11));  // crash mid-append

  auto scan = ScanWalFile(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, (std::vector<std::string>{"intact record"}));
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, intact_size);
  EXPECT_EQ(scan->dropped_bytes,
            std::filesystem::file_size(path_) - intact_size);

  // Heal: truncate, then append over the repaired tail.
  ASSERT_TRUE(TruncateFile(path_, scan->valid_bytes).ok());
  auto writer = WalWriter::OpenForAppend(path_, 1, scan->valid_bytes, true);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append("after crash").ok());
  auto rescan = ScanWalFile(path_);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->records,
            (std::vector<std::string>{"intact record", "after crash"}));
  EXPECT_FALSE(rescan->torn_tail);
}

TEST_F(WalTest, OpenForAppendRejectsUnexpectedSize) {
  {
    auto writer = WalWriter::Create(path_, 1, true);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("record").ok());
  }
  auto reopened = WalWriter::OpenForAppend(path_, 1, /*expected_size=*/7,
                                           true);
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsFailedPrecondition())
      << reopened.status().ToString();
}

TEST_F(WalTest, CorruptRecordStopsTheScan) {
  {
    auto writer = WalWriter::Create(path_, 1, true);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("good one").ok());
    ASSERT_TRUE(writer->Append("about to rot").ok());
    ASSERT_TRUE(writer->Append("unreachable").ok());
  }
  // Flip one payload byte of the middle record.
  auto bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  const size_t pos = bytes->find("about");
  ASSERT_NE(pos, std::string::npos);
  std::string mutated = *bytes;
  mutated[pos] ^= 0x04;
  ASSERT_TRUE(AtomicWriteFile(path_, mutated).ok());

  auto scan = ScanWalFile(path_);
  ASSERT_TRUE(scan.ok());
  // RocksDB semantics: everything from the corrupt record on is dropped.
  EXPECT_EQ(scan->records, (std::vector<std::string>{"good one"}));
  EXPECT_TRUE(scan->corrupt_record);
  EXPECT_GT(scan->dropped_bytes, 0u);
}

TEST_F(WalTest, ShortHeaderIsTornEmptySegment) {
  AppendRaw("RVW");  // crash while writing the header itself
  auto scan = ScanWalFile(path_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->records.empty());
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, 0u);
}

TEST_F(WalTest, BadHeaderIsAnError) {
  {
    auto writer = WalWriter::Create(path_, 1, true);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("record").ok());
  }
  auto bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[0] = 'X';  // magic
  ASSERT_TRUE(AtomicWriteFile(path_, mutated).ok());
  EXPECT_FALSE(ScanWalFile(path_).ok());

  mutated = *bytes;
  mutated[9] ^= 0x01;  // segment id byte, breaks the header CRC
  ASSERT_TRUE(AtomicWriteFile(path_, mutated).ok());
  EXPECT_FALSE(ScanWalFile(path_).ok());
}

TEST_F(WalTest, SyncedWriterSurvivesWithoutCleanClose) {
  // Simulates a crash: the writer is leaked-then-closed without any
  // explicit flush beyond the per-append fsync.
  auto writer = WalWriter::Create(path_, 1, true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("durable").ok());
  auto scan = ScanWalFile(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, (std::vector<std::string>{"durable"}));
}

}  // namespace
}  // namespace io
}  // namespace rvar
