#include "io/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/normalization.h"
#include "core/shape_service.h"
#include "ml/dataset.h"
#include "sim/datasets.h"
#include "sim/faults.h"

namespace rvar {
namespace io {
namespace {

// --- Shared fixtures -----------------------------------------------------

// Synthetic reference telemetry: three distinct shape families so the
// library gets meaningfully different clusters.
struct Reference {
  sim::TelemetryStore store;
  core::GroupMedians medians;
};

Reference MakeReference(int groups_per_family, int runs_per_group,
                        uint64_t seed) {
  Reference ref;
  Rng rng(seed);
  int gid = 0;
  for (int g = 0; g < groups_per_family; ++g) {
    for (int family = 0; family < 3; ++family) {
      const double median = rng.Uniform(50.0, 500.0);
      for (int i = 0; i < runs_per_group; ++i) {
        double factor = 1.0;
        if (family == 0) factor = std::max(0.1, rng.Normal(1.0, 0.03));
        if (family == 1) factor = std::max(0.1, rng.Normal(1.0, 0.5));
        if (family == 2) {
          factor = rng.Bernoulli(0.3) ? rng.Normal(3.0, 0.1)
                                      : rng.Normal(1.0, 0.05);
          factor = std::max(0.1, factor);
        }
        sim::JobRun run;
        run.group_id = gid;
        run.runtime_seconds = median * factor;
        ref.store.Add(run);
      }
      ref.medians.Set(gid, median);
      ++gid;
    }
  }
  return ref;
}

core::ShapeLibrary MakeLibrary(uint64_t seed = 7) {
  Reference ref = MakeReference(8, 40, seed);
  core::ShapeLibraryConfig config;
  config.num_clusters = 3;
  config.min_support = 10;
  config.kmeans.num_restarts = 4;
  auto library = core::ShapeLibrary::Build(ref.store, ref.medians, config);
  EXPECT_TRUE(library.ok()) << library.status().ToString();
  return *std::move(library);
}

ml::Dataset Blobs(int n_per_class, uint64_t seed) {
  const double centers[3][2] = {{0.0, 0.0}, {4.0, 0.0}, {2.0, 4.0}};
  Rng rng(seed);
  ml::Dataset d;
  d.feature_names = {"x0", "x1"};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < n_per_class; ++i) {
      d.x.push_back({rng.Normal(centers[c][0], 0.6),
                     rng.Normal(centers[c][1], 0.6)});
      d.y.push_back(c);
      d.target.push_back(centers[c][0] + centers[c][1] +
                         rng.Normal(0.0, 0.1));
    }
  }
  return d;
}

void ExpectLibrariesIdentical(const core::ShapeLibrary& a,
                              const core::ShapeLibrary& b) {
  ASSERT_EQ(a.num_clusters(), b.num_clusters());
  for (int k = 0; k < a.num_clusters(); ++k) {
    EXPECT_EQ(a.shape(k), b.shape(k)) << "cluster " << k;
    EXPECT_EQ(a.stats(k).outlier_probability,
              b.stats(k).outlier_probability);
    EXPECT_EQ(a.stats(k).iqr, b.stats(k).iqr);
    EXPECT_EQ(a.stats(k).p95, b.stats(k).p95);
    EXPECT_EQ(a.stats(k).stddev, b.stats(k).stddev);
    EXPECT_EQ(a.stats(k).num_samples, b.stats(k).num_samples);
    EXPECT_EQ(a.stats(k).num_groups, b.stats(k).num_groups);
  }
  EXPECT_EQ(a.reference_groups(), b.reference_groups());
  for (int gid : a.reference_groups()) {
    EXPECT_EQ(a.ReferenceAssignment(gid), b.ReferenceAssignment(gid));
  }
  EXPECT_EQ(a.inertia(), b.inertia());
  EXPECT_EQ(a.num_skipped_groups(), b.num_skipped_groups());
}

// --- ShapeLibrary --------------------------------------------------------

TEST(SerializeShapeLibraryTest, RoundTripsBitIdentically) {
  core::ShapeLibrary library = MakeLibrary();
  const std::string image = EncodeShapeLibrary(library);
  auto restored = DecodeShapeLibrary(image);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectLibrariesIdentical(library, *restored);
  // The restored library re-encodes to the same bytes: encoding is
  // canonical, which the recovery equivalence test relies on.
  EXPECT_EQ(EncodeShapeLibrary(*restored), image);
}

TEST(SerializeShapeLibraryTest, SaveLoadFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rvar_lib_snapshot")
          .string();
  core::ShapeLibrary library = MakeLibrary();
  ASSERT_TRUE(SaveShapeLibrary(library, path).ok());
  auto restored = LoadShapeLibrary(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectLibrariesIdentical(library, *restored);
  std::filesystem::remove(path);
}

TEST(SerializeShapeLibraryTest, RejectsWrongPayloadKind) {
  core::ShapeLibrary library = MakeLibrary();
  SnapshotDefect defect = SnapshotDefect::kNone;
  auto as_gbdt = DecodeGbdtClassifier(EncodeShapeLibrary(library), &defect);
  EXPECT_FALSE(as_gbdt.ok());
  EXPECT_EQ(defect, SnapshotDefect::kWrongPayloadKind);
}

// --- Models --------------------------------------------------------------

TEST(SerializeGbdtTest, RoundTripPredictsIdentically) {
  ml::Dataset train = Blobs(120, 3);
  ml::GbdtConfig config;
  config.num_rounds = 12;
  config.max_leaves = 8;
  ml::GbdtClassifier model(config);
  ASSERT_TRUE(model.Fit(train).ok());

  auto restored = DecodeGbdtClassifier(EncodeGbdtClassifier(model));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_classes(), model.num_classes());
  EXPECT_EQ(restored->rounds_used(), model.rounds_used());
  EXPECT_EQ(restored->feature_importance(), model.feature_importance());
  for (const auto& row : train.x) {
    EXPECT_EQ(model.PredictRaw(row), restored->PredictRaw(row));
  }
}

TEST(SerializeForestTest, ClassifierRoundTripPredictsIdentically) {
  ml::Dataset train = Blobs(100, 4);
  ml::ForestConfig config;
  config.num_trees = 10;
  ml::RandomForestClassifier model(config);
  ASSERT_TRUE(model.Fit(train).ok());

  auto restored =
      DecodeRandomForestClassifier(EncodeRandomForestClassifier(model));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_classes(), model.num_classes());
  for (const auto& row : train.x) {
    EXPECT_EQ(model.PredictProba(row), restored->PredictProba(row));
  }
}

TEST(SerializeForestTest, RegressorRoundTripPredictsIdentically) {
  ml::Dataset train = Blobs(100, 5);
  ml::ForestConfig config;
  config.num_trees = 10;
  ml::RandomForestRegressor model(config);
  ASSERT_TRUE(model.Fit(train).ok());

  auto restored =
      DecodeRandomForestRegressor(EncodeRandomForestRegressor(model));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const auto& row : train.x) {
    EXPECT_EQ(model.Predict(row), restored->Predict(row));
  }
}

TEST(SerializeGbdtTest, MutatedImageNeverRoundTrips) {
  ml::Dataset train = Blobs(60, 6);
  ml::GbdtConfig config;
  config.num_rounds = 4;
  ml::GbdtClassifier model(config);
  ASSERT_TRUE(model.Fit(train).ok());
  const std::string image = EncodeGbdtClassifier(model);

  const sim::StorageFaultPlan faults(99);
  for (int trial = 0; trial < 64; ++trial) {
    auto mutated = DecodeGbdtClassifier(
        faults.FlipBits(image, /*num_flips=*/1 + trial % 5, trial));
    EXPECT_FALSE(mutated.ok());  // CRC catches every flip
  }
}

// --- Featurizer history --------------------------------------------------

TEST(SerializeFeaturizerTest, HistoryRoundTrips) {
  sim::SuiteConfig config;
  config.num_groups = 30;
  config.d1_days = 2.0;
  config.d2_days = 1.0;
  config.d3_days = 0.5;
  config.d1_support = 5;
  auto suite = sim::BuildStudySuite(config);
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  const sim::SkuCatalog& catalog = suite->cluster->catalog();
  core::Featurizer featurizer(&suite->groups, &catalog);
  featurizer.SetHistory(suite->d1.telemetry);
  ASSERT_FALSE(featurizer.history().empty());

  core::Featurizer restored(&suite->groups, &catalog);
  ASSERT_TRUE(
      DecodeFeaturizerState(EncodeFeaturizerState(featurizer), &restored)
          .ok());
  ASSERT_EQ(restored.history().size(), featurizer.history().size());
  for (const sim::JobRun& run : suite->d2.telemetry.runs()) {
    auto a = featurizer.FeaturesFor(run);
    auto b = restored.FeaturesFor(run);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
}

// --- TelemetryStore ------------------------------------------------------

TEST(SerializeTelemetryTest, RoundTripsRunsAndAudit) {
  sim::TelemetryStore store;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    sim::JobRun run;
    run.group_id = i % 5;
    run.instance_id = i;
    run.runtime_seconds = rng.Uniform(10.0, 100.0);
    run.skyline = {{0.0, 4}, {run.runtime_seconds / 2, 2}};
    run.sku_vertex_fraction = {0.5, 0.5};
    run.sku_cpu_util = {0.4, 0.6};
    (void)store.Ingest(run);
    if (i % 10 == 0) (void)store.Ingest(run);  // duplicate -> quarantined
  }
  sim::JobRun corrupt;
  corrupt.group_id = 1;
  corrupt.instance_id = 999;
  corrupt.runtime_seconds = -5.0;
  (void)store.Ingest(corrupt);

  auto restored = DecodeTelemetryStore(EncodeTelemetryStore(store));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->NumRuns(), store.NumRuns());
  ASSERT_EQ(restored->NumQuarantined(), store.NumQuarantined());
  for (int reason = 0; reason < sim::kNumQuarantineReasons; ++reason) {
    EXPECT_EQ(restored->QuarantineCount(
                  static_cast<sim::QuarantineReason>(reason)),
              store.QuarantineCount(
                  static_cast<sim::QuarantineReason>(reason)));
  }
  for (size_t i = 0; i < store.NumRuns(); ++i) {
    EXPECT_EQ(restored->run(i).instance_id, store.run(i).instance_id);
    EXPECT_EQ(restored->run(i).runtime_seconds,
              store.run(i).runtime_seconds);
    EXPECT_EQ(restored->run(i).skyline, store.run(i).skyline);
  }
  EXPECT_EQ(restored->GroupIds(), store.GroupIds());
}

// --- ShapeService online state -------------------------------------------

TEST(SerializeShapeServiceTest, StateRoundTripsBitIdentically) {
  core::ShapeLibrary library = MakeLibrary();
  auto service = core::ShapeService::Make(&library);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  Rng rng(23);
  for (int gid : {0, 3, 5, 11}) {
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(
          (*service)
              ->Observe(gid, std::max(0.05, rng.Normal(1.0, 0.4)))
              .ok());
    }
  }

  const std::string image = EncodeShapeServiceState(**service);
  auto states = DecodeShapeServiceState(image);
  ASSERT_TRUE(states.ok()) << states.status().ToString();
  ASSERT_EQ(states->size(), 4u);

  auto restored = core::ShapeService::Make(&library);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->RestoreState(*states).ok());
  for (int gid : {0, 3, 5, 11}) {
    EXPECT_EQ((*restored)->GroupCount(gid), (*service)->GroupCount(gid));
    EXPECT_EQ((*restored)->Posterior(gid), (*service)->Posterior(gid));
    EXPECT_EQ((*restored)->MostLikely(gid), (*service)->MostLikely(gid));
  }
  // Canonical encoding: the restored service re-encodes to the same
  // bytes, so recovery equivalence holds transitively.
  EXPECT_EQ(EncodeShapeServiceState(**restored), image);
}

TEST(SerializeShapeServiceTest, SaveLoadFileAndDefects) {
  core::ShapeLibrary library = MakeLibrary();
  auto service = core::ShapeService::Make(&library);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Observe(2, 1.1).ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "rvar_shape_service_state")
          .string();
  ASSERT_TRUE(SaveShapeServiceState(**service, path).ok());
  auto states = LoadShapeServiceState(path);
  ASSERT_TRUE(states.ok()) << states.status().ToString();
  ASSERT_EQ(states->size(), 1u);
  EXPECT_EQ((*states)[0].group_id, 2);
  EXPECT_EQ((*states)[0].count, 1);
  std::filesystem::remove(path);

  // Corruption anywhere in the image is caught by the snapshot CRCs.
  const std::string image = EncodeShapeServiceState(**service);
  const sim::StorageFaultPlan faults(31);
  for (int trial = 0; trial < 32; ++trial) {
    auto mutated =
        DecodeShapeServiceState(faults.FlipBits(image, 1 + trial % 3,
                                                trial));
    EXPECT_FALSE(mutated.ok());
  }
  // Wrong payload kind is rejected before any decode.
  SnapshotDefect defect = SnapshotDefect::kNone;
  auto as_library = DecodeShapeLibrary(image, &defect);
  EXPECT_FALSE(as_library.ok());
  EXPECT_EQ(defect, SnapshotDefect::kWrongPayloadKind);
}

}  // namespace
}  // namespace io
}  // namespace rvar
