// ModelRegistry tests: version numbering, the candidate → active →
// retired / quarantined state machine, CRC verification on artifact
// reads, ACTIVE-pointer reconciliation across reopen, prune retention
// rules, and corrupt-manifest tolerance.

#include "io/model_registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/serialize.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "sim/faults.h"

namespace rvar {
namespace io {
namespace {

class ModelRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("rvar_model_registry_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // A small fitted GBDT encoded through the snapshot codec; `seed` varies
  // the data so distinct versions hold distinct bytes.
  static std::string ModelImage(uint64_t seed) {
    ml::Dataset train;
    train.feature_names = {"x0", "x1"};
    Rng rng(seed);
    for (int c = 0; c < 2; ++c) {
      for (int i = 0; i < 40; ++i) {
        train.x.push_back({rng.Normal(c * 3.0, 0.5),
                           rng.Normal(c * 3.0, 0.5)});
        train.y.push_back(c);
        train.target.push_back(0.0);
      }
    }
    ml::GbdtConfig config;
    config.num_rounds = 4;
    config.max_leaves = 4;
    ml::GbdtClassifier model(config);
    EXPECT_TRUE(model.Fit(train).ok());
    return EncodeGbdtClassifier(model);
  }

  static ModelManifest Candidate(uint64_t seed) {
    ModelManifest m;
    m.seed = seed;
    m.window_begin = 100 * seed;
    m.window_end = 100 * seed + 50;
    m.num_rows = 80;
    return m;
  }

  std::string dir_;
};

TEST_F(ModelRegistryTest, FreshDirectoryStartsEmpty) {
  auto registry = ModelRegistry::Open(dir_);
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();
  EXPECT_EQ(registry->active_version(), -1);
  EXPECT_EQ(registry->next_version(), 1);
  EXPECT_TRUE(registry->Versions().empty());
  EXPECT_EQ(registry->num_corrupt_manifests(), 0);
  EXPECT_FALSE(registry->Manifest(1).ok());
  EXPECT_FALSE(registry->LoadModelBytes(1).ok());
}

TEST_F(ModelRegistryTest, PutCandidateAssignsMonotonicVersions) {
  auto registry = ModelRegistry::Open(dir_);
  ASSERT_TRUE(registry.ok());
  auto v1 = registry->PutCandidate(Candidate(1), ModelImage(1));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1);
  auto v2 = registry->PutCandidate(Candidate(2), ModelImage(2));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2);
  EXPECT_EQ(registry->next_version(), 3);
  EXPECT_EQ(registry->Versions(), (std::vector<int64_t>{1, 2}));

  auto m1 = registry->Manifest(1);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->state, ModelState::kCandidate);
  EXPECT_EQ(m1->seed, 1u);
  EXPECT_EQ(m1->model_size, ModelImage(1).size());

  // Empty artifacts and stale version numbers are refused.
  EXPECT_FALSE(registry->PutCandidate(Candidate(9), "").ok());
  ModelManifest stale = Candidate(9);
  stale.version = 1;
  EXPECT_FALSE(registry->PutCandidate(stale, ModelImage(9)).ok());
}

TEST_F(ModelRegistryTest, LoadModelBytesVerifiesCrc) {
  auto registry = ModelRegistry::Open(dir_);
  ASSERT_TRUE(registry.ok());
  const std::string image = ModelImage(7);
  ASSERT_TRUE(registry->PutCandidate(Candidate(7), image).ok());
  auto bytes = registry->LoadModelBytes(1);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, image);
  auto model = registry->LoadModel(1);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->num_classes(), 2);

  // Bit rot in the artifact is caught by the manifest CRC before decode.
  const sim::StorageFaultPlan faults(13);
  ASSERT_TRUE(faults.CorruptFile(registry->ModelPath(1), /*num_flips=*/3,
                                 /*truncate_fraction=*/0.0)
                  .ok());
  auto corrupt = registry->LoadModelBytes(1);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(registry->LoadModel(1).ok());
}

TEST_F(ModelRegistryTest, ActivateRetiresPreviousAndSurvivesReopen) {
  auto registry = ModelRegistry::Open(dir_);
  ASSERT_TRUE(registry.ok());
  ASSERT_TRUE(registry->PutCandidate(Candidate(1), ModelImage(1)).ok());
  ASSERT_TRUE(registry->PutCandidate(Candidate(2), ModelImage(2)).ok());

  ASSERT_TRUE(registry->Activate(1).ok());
  EXPECT_EQ(registry->active_version(), 1);
  ASSERT_TRUE(registry->Activate(2).ok());
  EXPECT_EQ(registry->active_version(), 2);
  EXPECT_EQ(registry->Manifest(1)->state, ModelState::kRetired);
  EXPECT_EQ(registry->Manifest(2)->state, ModelState::kActive);

  // Rollback: re-activating a retired version retires the current one.
  ASSERT_TRUE(registry->Activate(1).ok());
  EXPECT_EQ(registry->active_version(), 1);
  EXPECT_EQ(registry->Manifest(2)->state, ModelState::kRetired);

  // Reopen restores the same picture from disk.
  auto reopened = ModelRegistry::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->active_version(), 1);
  EXPECT_EQ(reopened->next_version(), 3);
  EXPECT_EQ(reopened->Manifest(1)->state, ModelState::kActive);
  EXPECT_EQ(reopened->Manifest(2)->state, ModelState::kRetired);
}

TEST_F(ModelRegistryTest, DeactivateClearsServingAndSurvivesReopen) {
  auto registry = ModelRegistry::Open(dir_);
  ASSERT_TRUE(registry.ok());
  // Nothing active: Deactivate is a no-op, not an error.
  EXPECT_TRUE(registry->Deactivate().ok());
  EXPECT_EQ(registry->active_version(), -1);

  ASSERT_TRUE(registry->PutCandidate(Candidate(1), ModelImage(1)).ok());
  ASSERT_TRUE(registry->Activate(1).ok());
  ASSERT_TRUE(std::filesystem::exists(registry->ActivePath()));

  ASSERT_TRUE(registry->Deactivate().ok());
  EXPECT_EQ(registry->active_version(), -1);
  EXPECT_FALSE(std::filesystem::exists(registry->ActivePath()));
  EXPECT_EQ(registry->Manifest(1)->state, ModelState::kRetired);
  // Deactivation unblocks quarantining the ex-live version — the kill
  // switch sequence the lifecycle runs.
  EXPECT_TRUE(registry->Quarantine(1, "kill switch").ok());

  // Reopen sees an empty serving slot, and the retired-then-quarantined
  // manifest, from disk alone.
  auto reopened = ModelRegistry::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->active_version(), -1);
  EXPECT_EQ(reopened->Manifest(1)->state, ModelState::kQuarantined);
  EXPECT_EQ(reopened->next_version(), 2);
}

TEST_F(ModelRegistryTest, QuarantineBlocksActivationAndServing) {
  auto registry = ModelRegistry::Open(dir_);
  ASSERT_TRUE(registry.ok());
  ASSERT_TRUE(registry->PutCandidate(Candidate(1), ModelImage(1)).ok());
  ASSERT_TRUE(registry->PutCandidate(Candidate(2), ModelImage(2)).ok());
  ASSERT_TRUE(registry->Activate(1).ok());

  ASSERT_TRUE(registry->Quarantine(2, "agreement: too low").ok());
  EXPECT_EQ(registry->Manifest(2)->state, ModelState::kQuarantined);
  EXPECT_EQ(registry->Manifest(2)->reason, "agreement: too low");
  EXPECT_FALSE(registry->Activate(2).ok());

  // The active version cannot be quarantined out from under serving.
  EXPECT_FALSE(registry->Quarantine(1, "nope").ok());
  EXPECT_EQ(registry->Manifest(1)->state, ModelState::kActive);

  // Reopen keeps the quarantine reason and never resurrects the version.
  auto reopened = ModelRegistry::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->active_version(), 1);
  EXPECT_EQ(reopened->Manifest(2)->state, ModelState::kQuarantined);
  EXPECT_EQ(reopened->Manifest(2)->reason, "agreement: too low");
}

TEST_F(ModelRegistryTest, RecordValidationPersists) {
  auto registry = ModelRegistry::Open(dir_);
  ASSERT_TRUE(registry.ok());
  ASSERT_TRUE(registry->PutCandidate(Candidate(1), ModelImage(1)).ok());
  ASSERT_TRUE(registry->RecordValidation(1, 0.25, 0.97).ok());
  auto reopened = ModelRegistry::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_DOUBLE_EQ(reopened->Manifest(1)->holdout_logloss, 0.25);
  EXPECT_DOUBLE_EQ(reopened->Manifest(1)->agreement, 0.97);
}

TEST_F(ModelRegistryTest, PruneKeepsNewestRetiredActiveAndTombstones) {
  auto registry = ModelRegistry::Open(dir_);
  ASSERT_TRUE(registry.ok());
  for (uint64_t v = 1; v <= 6; ++v) {
    ASSERT_TRUE(registry->PutCandidate(Candidate(v), ModelImage(v)).ok());
    ASSERT_TRUE(registry->Activate(static_cast<int64_t>(v)).ok());
  }
  // States now: 1..5 retired, 6 active.
  auto pruned = registry->Prune(/*keep_retired=*/2);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(*pruned, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(registry->Versions(), (std::vector<int64_t>{4, 5, 6}));
  EXPECT_FALSE(std::filesystem::exists(registry->ModelPath(1)));
  EXPECT_TRUE(std::filesystem::exists(registry->ModelPath(4)));

  // Ids are never reused after pruning.
  EXPECT_EQ(registry->next_version(), 7);
  auto reopened = ModelRegistry::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->next_version(), 7);

  // Quarantined tombstones survive pruning.
  ASSERT_TRUE(reopened->Quarantine(4, "holdout-logloss: too high").ok());
  auto pruned2 = reopened->Prune(/*keep_retired=*/0);
  ASSERT_TRUE(pruned2.ok());
  EXPECT_EQ(*pruned2, (std::vector<int64_t>{5}));
  EXPECT_EQ(reopened->Versions(), (std::vector<int64_t>{4, 6}));
  EXPECT_EQ(reopened->Manifest(4)->state, ModelState::kQuarantined);
}

TEST_F(ModelRegistryTest, CorruptManifestIsSkippedButPinsVersionCounter) {
  {
    auto registry = ModelRegistry::Open(dir_);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry->PutCandidate(Candidate(1), ModelImage(1)).ok());
    ASSERT_TRUE(registry->PutCandidate(Candidate(2), ModelImage(2)).ok());
    ASSERT_TRUE(registry->Activate(1).ok());
  }
  // Rot the *manifest* of version 2 (not its artifact).
  const sim::StorageFaultPlan faults(29);
  {
    auto registry = ModelRegistry::Open(dir_);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(
        faults.CorruptFile(registry->ManifestPath(2), 4, 0.0).ok());
  }
  auto reopened = ModelRegistry::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_corrupt_manifests(), 1);
  EXPECT_EQ(reopened->Versions(), (std::vector<int64_t>{1}));
  EXPECT_EQ(reopened->active_version(), 1);
  // Version 2's id stays burned even though its manifest is unreadable.
  EXPECT_EQ(reopened->next_version(), 3);
}

TEST_F(ModelRegistryTest, ActivePointerWinsStateDisputes) {
  {
    auto registry = ModelRegistry::Open(dir_);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry->PutCandidate(Candidate(1), ModelImage(1)).ok());
    ASSERT_TRUE(registry->PutCandidate(Candidate(2), ModelImage(2)).ok());
    ASSERT_TRUE(registry->Activate(1).ok());
    ASSERT_TRUE(registry->Activate(2).ok());
  }
  // Simulate a crash between the manifest writes and the pointer write by
  // pointing ACTIVE back at version 1 out-of-band.
  {
    auto registry = ModelRegistry::Open(dir_);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry->Activate(1).ok());
  }
  auto reopened = ModelRegistry::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->active_version(), 1);
  EXPECT_EQ(reopened->Manifest(1)->state, ModelState::kActive);
  EXPECT_EQ(reopened->Manifest(2)->state, ModelState::kRetired);

  // A missing pointer file means nothing serves, whatever manifests say.
  std::filesystem::remove(reopened->ActivePath());
  auto cold = ModelRegistry::Open(dir_);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->active_version(), -1);
}

}  // namespace
}  // namespace io
}  // namespace rvar
