// Kill-and-restart chaos test (the PR's acceptance criterion): run a
// serving pipeline, checkpoint mid-stream, "crash" it, corrupt the WAL
// tail and the newest snapshot generation, then Recover() and require the
// rebuilt state to be bit-identical to a twin pipeline that never crashed.
// Labeled `chaos` in ctest; intended to also run under -DRVAR_SANITIZE=ON.

#include "io/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/normalization.h"
#include "core/shape_library.h"
#include "io/codec.h"
#include "io/serialize.h"
#include "io/snapshot.h"
#include "io/wal.h"
#include "sim/faults.h"
#include "sim/telemetry.h"

namespace rvar {
namespace io {
namespace {

core::ShapeLibrary MakeLibrary(uint64_t seed) {
  sim::TelemetryStore store;
  core::GroupMedians medians;
  Rng rng(seed);
  int gid = 0;
  for (int g = 0; g < 6; ++g) {
    for (int family = 0; family < 3; ++family) {
      const double median = rng.Uniform(50.0, 500.0);
      for (int i = 0; i < 30; ++i) {
        const double sigma = family == 0 ? 0.03 : (family == 1 ? 0.5 : 0.2);
        sim::JobRun run;
        run.group_id = gid;
        run.runtime_seconds =
            median * std::max(0.1, rng.Normal(1.0, sigma));
        store.Add(run);
      }
      medians.Set(gid, median);
      ++gid;
    }
  }
  core::ShapeLibraryConfig config;
  config.num_clusters = 3;
  config.min_support = 10;
  auto library = core::ShapeLibrary::Build(store, medians, config);
  EXPECT_TRUE(library.ok()) << library.status().ToString();
  return *std::move(library);
}

struct Observation {
  int group_id;
  double value;
};

// The full observation stream both pipelines see, in order. Seq i+1 is
// stream[i].
std::vector<Observation> MakeStream(int n, uint64_t seed) {
  std::vector<Observation> stream;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    stream.push_back({static_cast<int>(rng.UniformInt(0, 9)),
                      rng.Uniform(0.2, 5.0)});
  }
  return stream;
}

// WAL payload framing must match recovery.cc's EncodeObservation.
std::string FrameObservation(uint64_t seq, const Observation& obs) {
  BinaryWriter w;
  w.PutU64(seq);
  w.PutI32(obs.group_id);
  w.PutDouble(obs.value);
  return w.TakeBytes();
}

void ExpectStatesBitIdentical(const ServingState& reference,
                              const ServingState& recovered) {
  ASSERT_NE(reference.library, nullptr);
  ASSERT_NE(recovered.library, nullptr);
  EXPECT_EQ(EncodeShapeLibrary(*reference.library),
            EncodeShapeLibrary(*recovered.library))
      << "recovered library differs from the never-crashed run";
  ASSERT_EQ(recovered.trackers.size(), reference.trackers.size());
  for (const auto& [gid, tracker] : reference.trackers) {
    auto it = recovered.trackers.find(gid);
    ASSERT_NE(it, recovered.trackers.end()) << "group " << gid;
    EXPECT_EQ(it->second.count(), tracker.count()) << "group " << gid;
    EXPECT_EQ(it->second.num_clamped(), tracker.num_clamped());
    // Exact double equality: replay must reproduce the arithmetic, not
    // approximate it.
    EXPECT_EQ(it->second.log_likelihood(), tracker.log_likelihood())
        << "group " << gid;
    EXPECT_EQ(it->second.MostLikely(), tracker.MostLikely());
  }
  // The per-group quantile sketches must survive the crash bit-for-bit
  // too: identical wire encodings, not merely close quantiles.
  ASSERT_EQ(recovered.sketches.size(), reference.sketches.size());
  for (const auto& [gid, sketch] : reference.sketches) {
    auto it = recovered.sketches.find(gid);
    ASSERT_NE(it, recovered.sketches.end()) << "group " << gid;
    EXPECT_EQ(EncodeKllSketch(it->second), EncodeKllSketch(sketch))
        << "group " << gid << " sketch diverged across recovery";
    EXPECT_EQ(it->second.n(), sketch.n()) << "group " << gid;
  }
}

class RecoveryChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() / "rvar_chaos_test")
                .string();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
};

TEST_F(RecoveryChaosTest, KillAndRestartMatchesNeverCrashedRun) {
  constexpr int kObservations = 40;  // logged before the crash
  const core::ShapeLibrary library = MakeLibrary(7);
  const std::vector<Observation> stream =
      MakeStream(kObservations + 2, 13);
  RecoveryManager::Options options;
  options.keep_snapshots = 2;

  // --- Reference pipeline: never crashes, sees the whole stream. -----------
  auto reference = RecoveryManager::Open(root_ + "/reference", options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->Bootstrap(library).ok());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(
        reference->Observe(stream[i].group_id, stream[i].value).ok());
    if (i + 1 == kObservations / 2) {
      ASSERT_TRUE(reference->Checkpoint().ok());
    }
  }

  // --- Victim pipeline: same library, same stream prefix, then killed. ----
  const std::string dir = root_ + "/victim";
  uint64_t live_segment = 0;
  {
    auto victim = RecoveryManager::Open(dir, options);
    ASSERT_TRUE(victim.ok()) << victim.status().ToString();
    ASSERT_TRUE(victim->Bootstrap(library).ok());
    for (int i = 0; i < kObservations; ++i) {
      ASSERT_TRUE(
          victim->Observe(stream[i].group_id, stream[i].value).ok());
      if (i + 1 == kObservations / 2) {
        ASSERT_TRUE(victim->Checkpoint().ok());
      }
    }
    live_segment = 2;  // Bootstrap -> seg 1, mid-stream Checkpoint -> seg 2
    EXPECT_EQ(victim->generation(), 2);
    // The victim goes out of scope here with no clean shutdown: every
    // Append already hit fsync, which is all the durability it gets.
  }

  const std::string wal_path = dir + "/wal-000002";
  const std::string snap_path = dir + "/snapshot-000002";
  ASSERT_TRUE(std::filesystem::exists(wal_path));
  ASSERT_TRUE(std::filesystem::exists(snap_path));

  // --- Corruption: a hostile filesystem finishes the crash. ---------------
  // 1. The last two observations reach the WAL out of order, and one
  //    earlier record is delivered twice.
  {
    const uint64_t size = std::filesystem::file_size(wal_path);
    auto writer =
        WalWriter::OpenForAppend(wal_path, live_segment, size, true);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(
        writer
            ->Append(FrameObservation(kObservations + 2,
                                      stream[kObservations + 1]))
            .ok());
    ASSERT_TRUE(
        writer
            ->Append(FrameObservation(kObservations + 1,
                                      stream[kObservations]))
            .ok());
    ASSERT_TRUE(writer
                    ->Append(FrameObservation(kObservations,
                                              stream[kObservations - 1]))
                    .ok());  // duplicate of the last pre-crash record
  }
  // 2. A torn half-written record at the tail.
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out << std::string("\x40\x00\x00\x00torn", 8);
  }
  // 3. The newest snapshot generation takes a bit flip.
  {
    auto bytes = ReadFileToString(snap_path);
    ASSERT_TRUE(bytes.ok());
    const sim::StorageFaultPlan faults(99);
    ASSERT_TRUE(
        AtomicWriteFile(snap_path, faults.FlipBits(*bytes, 3)).ok());
  }

  // --- Restart and recover. -----------------------------------------------
  auto revived = RecoveryManager::Open(dir, options);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  ASSERT_TRUE(revived->HasState());
  auto report = revived->Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Exact per-reason accounting of everything the recovery repaired.
  EXPECT_EQ(report->snapshot_generation, 1);  // gen 2 was corrupt
  EXPECT_EQ(report->num_snapshots_discarded, 1);
  EXPECT_EQ(report->Count(RecoveryReason::kSnapshotCorrupt), 1);
  EXPECT_EQ(report->Count(RecoveryReason::kWalReordered), 1);
  EXPECT_EQ(report->Count(RecoveryReason::kWalDuplicate), 1);
  EXPECT_EQ(report->Count(RecoveryReason::kWalTornTail), 1);
  EXPECT_EQ(report->Count(RecoveryReason::kWalStale), 0);
  EXPECT_EQ(report->Count(RecoveryReason::kWalBadPayload), 0);
  EXPECT_EQ(report->wal_records_applied, kObservations + 2);
  EXPECT_GT(report->wal_bytes_truncated, 0);
  EXPECT_EQ(revived->last_sequence(),
            static_cast<uint64_t>(kObservations + 2));

  ExpectStatesBitIdentical(reference->state(), revived->state());

  // The revived pipeline keeps working: observe, checkpoint, recover again.
  ASSERT_TRUE(revived->Observe(3, 1.25).ok());
  ASSERT_TRUE(revived->Checkpoint().ok());
  auto reopened = RecoveryManager::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  auto clean = reopened->Recover();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->num_snapshots_discarded, 0);
  ExpectStatesBitIdentical(revived->state(), reopened->state());
}

TEST_F(RecoveryChaosTest, AllSnapshotsCorruptIsAnErrorNotACrash) {
  const std::string dir = root_ + "/doomed";
  {
    auto manager = RecoveryManager::Open(dir);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(manager->Bootstrap(MakeLibrary(3)).ok());
  }
  const std::string snap = dir + "/snapshot-000001";
  auto bytes = ReadFileToString(snap);
  ASSERT_TRUE(bytes.ok());
  const sim::StorageFaultPlan faults(5);
  ASSERT_TRUE(AtomicWriteFile(snap, faults.FlipBits(*bytes, 5)).ok());

  auto revived = RecoveryManager::Open(dir);
  ASSERT_TRUE(revived.ok());
  auto report = revived->Recover();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIOError)
      << report.status().ToString();
}

TEST_F(RecoveryChaosTest, EmptyDirectoryRecoverIsNotFound) {
  auto manager = RecoveryManager::Open(root_ + "/fresh");
  ASSERT_TRUE(manager.ok());
  EXPECT_FALSE(manager->HasState());
  auto report = manager->Recover();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsNotFound());
}

TEST_F(RecoveryChaosTest, PruningKeepsOnlyConfiguredGenerations) {
  RecoveryManager::Options options;
  options.keep_snapshots = 2;
  const std::string dir = root_ + "/pruned";
  auto manager = RecoveryManager::Open(dir, options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(manager->Bootstrap(MakeLibrary(9)).ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(manager->Observe(i, 1.0 + 0.1 * i).ok());
    }
    ASSERT_TRUE(manager->Checkpoint().ok());
  }
  EXPECT_EQ(manager->generation(), 5);
  int snapshots = 0;
  int segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    snapshots += name.rfind("snapshot-", 0) == 0 ? 1 : 0;
    segments += name.rfind("wal-", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(snapshots, 2);  // generations 4 and 5
  EXPECT_LE(segments, 2);   // live segment + at most one replay segment
  // The retained files still recover to the live state.
  auto reopened = RecoveryManager::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened->Recover().ok());
  ExpectStatesBitIdentical(manager->state(), reopened->state());
}

}  // namespace
}  // namespace io
}  // namespace rvar
