// Fuzz-style robustness tests: the snapshot reader and every decoder must
// survive arbitrary hostile bytes — random strings, mutated valid images,
// truncations — without crashing, leaking, or reading out of bounds, and
// must always return a descriptive Status. Run under -DRVAR_SANITIZE=ON
// (ASan/UBSan) to make memory errors fatal; labeled `chaos` in ctest.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/shape_library.h"
#include "io/serialize.h"
#include "io/snapshot.h"
#include "sim/faults.h"
#include "sim/telemetry.h"

namespace rvar {
namespace io {
namespace {

// A valid ShapeLibrary image to mutate: built from three synthetic shape
// families, same recipe as serialize_test.
std::string ValidLibraryImage() {
  sim::TelemetryStore store;
  core::GroupMedians medians;
  Rng rng(17);
  int gid = 0;
  for (int g = 0; g < 6; ++g) {
    for (int family = 0; family < 3; ++family) {
      const double median = rng.Uniform(50.0, 500.0);
      for (int i = 0; i < 30; ++i) {
        const double sigma = family == 0 ? 0.03 : (family == 1 ? 0.5 : 0.2);
        sim::JobRun run;
        run.group_id = gid;
        run.runtime_seconds =
            median * std::max(0.1, rng.Normal(1.0, sigma));
        store.Add(run);
      }
      medians.Set(gid, median);
      ++gid;
    }
  }
  core::ShapeLibraryConfig config;
  config.num_clusters = 3;
  config.min_support = 10;
  auto library = core::ShapeLibrary::Build(store, medians, config);
  EXPECT_TRUE(library.ok()) << library.status().ToString();
  return EncodeShapeLibrary(*library);
}

// Every decoder in io/serialize.h, driven over the same hostile input.
// None may crash; each must return a non-OK Status with a message.
void ExpectAllDecodersReject(const std::string& bytes) {
  {
    auto r = DecodeShapeLibrary(bytes);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
  {
    auto r = DecodeGbdtClassifier(bytes);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
  {
    auto r = DecodeRandomForestClassifier(bytes);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
  {
    auto r = DecodeRandomForestRegressor(bytes);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
  {
    auto r = DecodeTelemetryStore(bytes);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
  {
    SnapshotDefect defect = SnapshotDefect::kNone;
    auto r = SnapshotReader::Open(bytes, PayloadKind::kShapeLibrary,
                                  &defect);
    if (!r.ok()) {
      EXPECT_NE(defect, SnapshotDefect::kNone);
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

TEST(SnapshotFuzzTest, RandomBytesNeverCrash) {
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const int size = static_cast<int>(rng.UniformInt(0, 512));
    std::string bytes(static_cast<size_t>(size), '\0');
    for (char& b : bytes) {
      b = static_cast<char>(rng.UniformInt(0, 255));
    }
    ExpectAllDecodersReject(bytes);
  }
}

TEST(SnapshotFuzzTest, RandomBytesWithValidMagicNeverCrash) {
  // Start past the magic check so the record-walking code gets exercised.
  Rng rng(4052);
  for (int trial = 0; trial < 200; ++trial) {
    const int size = static_cast<int>(rng.UniformInt(4, 512));
    std::string bytes = "RVSN";
    for (int i = 4; i < size; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    ExpectAllDecodersReject(bytes);
  }
}

TEST(SnapshotFuzzTest, MutatedValidImagesNeverCrash) {
  const std::string image = ValidLibraryImage();
  const sim::StorageFaultPlan faults(31);
  for (int trial = 0; trial < 256; ++trial) {
    std::string mutated =
        faults.FlipBits(image, /*num_flips=*/1 + trial % 8, trial);
    ExpectAllDecodersReject(mutated);
    // A mutated image must never decode back to a library: either the CRC
    // catches the flip, or (flips that cancel) it equals the original.
    auto decoded = DecodeShapeLibrary(mutated);
    if (decoded.ok()) {
      EXPECT_EQ(EncodeShapeLibrary(*decoded), image)
          << "mutated image decoded to different state, trial " << trial;
    }
  }
}

TEST(SnapshotFuzzTest, TruncatedValidImagesNeverCrash) {
  const std::string image = ValidLibraryImage();
  const sim::StorageFaultPlan faults(63);
  for (int trial = 0; trial < 128; ++trial) {
    const std::string torn =
        faults.TruncateTail(image, /*max_fraction=*/0.9, trial);
    ASSERT_LT(torn.size(), image.size());
    SnapshotDefect defect = SnapshotDefect::kNone;
    auto decoded = DecodeShapeLibrary(torn, &defect);
    EXPECT_FALSE(decoded.ok());
    EXPECT_NE(defect, SnapshotDefect::kNone);
  }
  // Every prefix of the header region, byte by byte.
  for (size_t len = 0; len < 32 && len < image.size(); ++len) {
    EXPECT_FALSE(DecodeShapeLibrary(image.substr(0, len)).ok());
  }
}

TEST(SnapshotFuzzTest, SplicedRecordsNeverCrash) {
  // Concatenations and interleavings of two valid images: framing survives
  // and the decoder reports trailing garbage / CRC mismatches.
  const std::string image = ValidLibraryImage();
  ExpectAllDecodersReject(image + image);
  ExpectAllDecodersReject(image.substr(0, image.size() / 2) + image);
  std::string swapped = image;
  if (swapped.size() > 64) {
    std::swap(swapped[40], swapped[50]);
  }
  ExpectAllDecodersReject(swapped);
  EXPECT_FALSE(DecodeShapeLibrary(image + image).ok());
}

}  // namespace
}  // namespace io
}  // namespace rvar
