# Applies multi-label lists to gtest suites after test discovery.
#
# gtest_discover_tests(... PROPERTIES LABELS "a;b") silently drops every
# label after the first: the list re-expands unquoted inside the
# generated set_tests_properties() call, so only "a" binds as LABELS and
# the rest parse as a bogus property/value pair. No amount of semicolon
# escaping survives the module's cmake_parse_arguments round-trips
# (CMake issue #20128). Instead, each discovery pass publishes its test
# names in <target>_TESTS, and this file — appended to the directory's
# TEST_INCLUDE_FILES *after* the discovery includes — sets the full
# label list by name. Unbuilt targets leave their list variable unset,
# so the foreach bodies are safely empty.

foreach(_t IN LISTS shape_shard_test_TESTS)
  set_tests_properties("${_t}" PROPERTIES LABELS "chaos;concurrency;sketch")
endforeach()

foreach(_t IN LISTS overload_chaos_test_TESTS)
  set_tests_properties("${_t}" PROPERTIES LABELS "chaos;concurrency")
endforeach()

foreach(_t IN LISTS sketch_codec_test_TESTS)
  set_tests_properties("${_t}" PROPERTIES LABELS "sketch;chaos")
endforeach()
