// Overload chaos: the serving front-end is driven through a 10x open-loop
// spike while the live model is force-quarantined out from under it, then
// through recovery. Proves the ISSUE's SLO contract: every request
// resolves (served or shed with a labeled reason — never an error, never
// an unbounded block), degraded answers are labeled with their ladder
// rung, and steady-state latency recovers after the spike. Labeled both
// `chaos` (ASan/UBSan CI job) and `concurrency` (TSan CI job).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_lifecycle.h"
#include "core/predictor.h"
#include "core/shape_service.h"
#include "ml/dataset.h"
#include "serve/frontend.h"
#include "sim/datasets.h"

namespace rvar {
namespace serve {
namespace {

using std::chrono::steady_clock;

class OverloadChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SuiteConfig config;
    config.num_groups = 40;
    config.d1_days = 3.0;
    config.d2_days = 1.5;
    config.d3_days = 0.5;
    config.d1_support = 12;
    config.seed = 977;
    auto suite = sim::BuildStudySuite(config);
    ASSERT_TRUE(suite.ok()) << suite.status().ToString();
    suite_ = new sim::StudySuite(std::move(*suite));

    core::PredictorConfig pc;
    pc.shape.num_clusters = 3;
    pc.shape.min_support = 12;
    pc.shape.kmeans.num_restarts = 3;
    pc.gbdt.num_rounds = 15;
    auto predictor = core::VariationPredictor::Train(*suite_, pc);
    ASSERT_TRUE(predictor.ok()) << predictor.status().ToString();
    predictor_ = predictor->release();
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete suite_;
    predictor_ = nullptr;
    suite_ = nullptr;
  }

  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("rvar_serve_chaos_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // A lifecycle-compatible retrain window: the predictor's own kept
  // features with its predicted shapes as labels. Every class 0..K-1 is
  // guaranteed present (rows are re-labeled round-robin at the tail), so
  // the trained candidate's class count always matches the shape library.
  ml::Dataset Window(uint64_t salt) const {
    const std::vector<size_t>& kept = predictor_->kept_features();
    ml::Dataset window;
    for (size_t f = 0; f < kept.size(); ++f) {
      window.feature_names.push_back(
          predictor_->featurizer().FeatureNames()[kept[f]]);
    }
    const int k = predictor_->shapes().num_clusters();
    const auto& runs = suite_->d2.telemetry.runs();
    int forced = 0;
    for (size_t i = salt % 7; i < runs.size(); i += 3) {
      auto full = predictor_->featurizer().FeaturesFor(runs[i]);
      if (!full.ok()) continue;
      auto shape = predictor_->PredictShape(runs[i]);
      if (!shape.ok()) continue;
      std::vector<double> projected;
      projected.reserve(kept.size());
      for (size_t f : kept) projected.push_back((*full)[f]);
      window.x.push_back(std::move(projected));
      // Re-label the first 3*k rows round-robin so every class appears.
      window.y.push_back(forced < 3 * k ? forced % k : *shape);
      ++forced;
      window.target.push_back(0.0);
    }
    return window;
  }

  static sim::StudySuite* suite_;
  static core::VariationPredictor* predictor_;
  std::string dir_;
};

sim::StudySuite* OverloadChaosTest::suite_ = nullptr;
core::VariationPredictor* OverloadChaosTest::predictor_ = nullptr;

TEST_F(OverloadChaosTest, SpikeWithForcedQuarantineMeetsSlos) {
  // --- Topology: lifecycle -> shape service -> front-end ---------------
  auto service = core::ShapeService::Make(&predictor_->shapes());
  ASSERT_TRUE(service.ok());
  const auto& runs = suite_->d3.telemetry.runs();
  ASSERT_GE(runs.size(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE((*service)->Observe(runs[i].group_id, 1.0).ok());
  }

  core::ModelLifecycleOptions lopts;
  lopts.dir = dir_;
  lopts.gbdt.num_rounds = 8;
  lopts.gbdt.max_leaves = 8;
  lopts.seed = 29;
  auto lifecycle = core::ModelLifecycle::Open(lopts);
  ASSERT_TRUE(lifecycle.ok()) << lifecycle.status().ToString();
  (*lifecycle)->AttachShapeService(service->get());
  const ml::Dataset window = Window(1);
  ASSERT_GE(window.NumRows(), 30u);
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(window, 0, 100).ok());
  ASSERT_EQ((*lifecycle)->live_version(), 1);
  ASSERT_NE((*service)->ModelSnapshot(), nullptr);

  FrontendOptions fopts;
  fopts.max_batch = 32;
  fopts.batch_linger = std::chrono::microseconds(0);
  fopts.default_deadline = std::chrono::milliseconds(2000);
  fopts.num_workers = 2;
  fopts.admission.queue_capacity = 256;
  fopts.admission.best_effort_watermark = 64;
  fopts.admission.standard_watermark = 192;
  fopts.admission.bucket.rate_per_second = 200000.0;
  fopts.admission.bucket.burst = 4000.0;
  fopts.breaker.failure_threshold = 2;
  fopts.breaker.cooldown_seconds = 0.02;
  fopts.health_probe = ServingFrontend::LifecycleHealthProbe(lifecycle->get());
  auto frontend =
      ServingFrontend::Make(service->get(), predictor_, fopts);
  ASSERT_TRUE(frontend.ok()) << frontend.status().ToString();

  // --- Phase A: closed-loop steady state -------------------------------
  std::vector<double> steady_latency;
  for (int i = 0; i < 200; ++i) {
    const PredictResponse response = (*frontend)->Predict(
        runs[static_cast<size_t>(i) % runs.size()], Priority::kStandard,
        std::chrono::seconds(5));
    ASSERT_TRUE(response.served()) << ShedReasonName(response.shed);
    EXPECT_EQ(response.level, DegradationLevel::kFullModel);
    steady_latency.push_back(response.latency_seconds);
  }
  EXPECT_EQ((*frontend)->breaker_state(), BreakerState::kClosed);

  // --- Phase B: 10x open-loop spike + forced quarantine mid-spike ------
  constexpr int kSpikeThreads = 8;
  constexpr int kPerThread = 400;
  const auto spike_budget = std::chrono::milliseconds(50);
  std::vector<std::vector<std::future<PredictResponse>>> futures(
      kSpikeThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> generators;
  for (int t = 0; t < kSpikeThreads; ++t) {
    futures[t].reserve(kPerThread);
    generators.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        PredictRequest request;
        request.run = &runs[static_cast<size_t>(t * kPerThread + i) %
                            runs.size()];
        request.priority = static_cast<Priority>((t + i) % kNumPriorities);
        request.deadline = steady_clock::now() + spike_budget;
        futures[t].push_back((*frontend)->Submit(request));
      }
    });
  }
  // Kill the live model, then release the spike against the quarantined
  // lifecycle. v1 has no retired fallback, so serving drops to nothing:
  // live_version() == -1, null epoch mirrored into the service, the
  // breaker trips on the first post-quarantine batches, and the ladder
  // answers the whole spike from the pinned stale epoch (or the prior).
  ASSERT_TRUE((*lifecycle)->QuarantineLive("chaos: operator kill switch").ok());
  EXPECT_EQ((*lifecycle)->live_version(), -1);
  EXPECT_EQ((*service)->ModelSnapshot(), nullptr);
  go.store(true, std::memory_order_release);
  for (std::thread& g : generators) g.join();

  int served = 0, shed = 0, degraded = 0;
  for (auto& lane : futures) {
    for (auto& future : lane) {
      // The SLO: nothing blocks unboundedly. Every future must resolve
      // well inside this generous sanitizer-tolerant bound.
      ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "a request blocked past its deadline";
      const PredictResponse response = future.get();
      if (response.served()) {
        ++served;
        if (response.level != DegradationLevel::kFullModel) ++degraded;
      } else {
        // Shed responses are labeled with a real reason and carry no shape.
        EXPECT_NE(response.shed, ShedReason::kNone);
        EXPECT_EQ(response.shape, -1);
        ++shed;
      }
      // Nothing is served (or shed) long after its budget: queue wait is
      // bounded by the deadline pass, inference by the batch size. The
      // slack absorbs sanitizer scheduling noise.
      EXPECT_LE(response.latency_seconds, 10.0);
    }
  }
  EXPECT_EQ(served + shed, kSpikeThreads * kPerThread);
  // A 10x spike against a 256-deep queue must shed, and with the model
  // quarantined EVERY served answer is a labeled degraded one — the full
  // model is gone, yet nothing errored.
  EXPECT_GT(shed, 0);
  EXPECT_GT(served, 0);
  EXPECT_EQ(degraded, served);

  // Post-quarantine closed-loop traffic serves from the stale rung — the
  // outage degrades answers, it never errors them.
  const PredictResponse stale = (*frontend)->Predict(
      runs[0], Priority::kInteractive, std::chrono::seconds(5));
  ASSERT_TRUE(stale.served()) << ShedReasonName(stale.shed);
  EXPECT_EQ(stale.level, DegradationLevel::kStaleModel);

  // The quarantined version is a tombstone on disk with the reason.
  auto manifest = (*lifecycle)->registry().Manifest(1);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->state, io::ModelState::kQuarantined);
  EXPECT_NE(manifest->reason.find("chaos"), std::string::npos);

  // --- Phase C: recovery ----------------------------------------------
  ASSERT_TRUE((*lifecycle)->RetrainAndSwap(Window(2), 100, 200).ok());
  EXPECT_GE((*lifecycle)->live_version(), 2);
  ASSERT_NE((*service)->ModelSnapshot(), nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<double> recovered_latency;
  int full_model_tail = 0;
  for (int i = 0; i < 100; ++i) {
    const PredictResponse response = (*frontend)->Predict(
        runs[static_cast<size_t>(i) % runs.size()], Priority::kStandard,
        std::chrono::seconds(5));
    ASSERT_TRUE(response.served()) << ShedReasonName(response.shed);
    recovered_latency.push_back(response.latency_seconds);
    if (i >= 50 && response.level == DegradationLevel::kFullModel) {
      ++full_model_tail;
    }
  }
  // The breaker re-closed through its half-open probe and the tail of the
  // recovery traffic is back on the full model.
  EXPECT_EQ((*frontend)->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(full_model_tail, 50);

  // Steady-state p99 recovers: the post-spike tail is the same order as
  // the pre-spike tail, far under the spike's deadline chaos.
  auto p99 = [](std::vector<double> xs) {
    std::sort(xs.begin(), xs.end());
    return xs[static_cast<size_t>(0.99 * static_cast<double>(xs.size() - 1))];
  };
  EXPECT_LT(p99(recovered_latency), 1.0);
  EXPECT_LT(p99(recovered_latency), 50.0 * std::max(p99(steady_latency),
                                                    0.005));
}

// The admission controller and deadline pass alone (no quarantine): an
// open-loop burst against a tiny queue sheds by tier, and interactive
// traffic survives at a higher rate than best-effort.
TEST_F(OverloadChaosTest, BurstShedsLowerTiersFirst) {
  auto service = core::ShapeService::Make(&predictor_->shapes());
  ASSERT_TRUE(service.ok());
  (*service)->SwapModel(predictor_->ModelSnapshot());

  FrontendOptions fopts;
  fopts.max_batch = 16;
  fopts.batch_linger = std::chrono::microseconds(500);
  fopts.default_deadline = std::chrono::milliseconds(2000);
  fopts.num_workers = 1;
  fopts.admission.queue_capacity = 64;
  fopts.admission.best_effort_watermark = 8;
  fopts.admission.standard_watermark = 32;
  auto frontend =
      ServingFrontend::Make(service->get(), predictor_, fopts);
  ASSERT_TRUE(frontend.ok());

  const auto& runs = suite_->d3.telemetry.runs();
  constexpr int kPerTier = 600;
  std::vector<std::future<PredictResponse>> interactive, best_effort;
  for (int i = 0; i < kPerTier; ++i) {
    PredictRequest request;
    request.run = &runs[static_cast<size_t>(i) % runs.size()];
    request.priority = Priority::kBestEffort;
    best_effort.push_back((*frontend)->Submit(request));
    request.priority = Priority::kInteractive;
    interactive.push_back((*frontend)->Submit(request));
  }
  int interactive_served = 0, best_effort_served = 0;
  int watermark_sheds = 0;
  for (auto& f : interactive) {
    const PredictResponse r = f.get();
    interactive_served += r.served();
    EXPECT_NE(r.shed, ShedReason::kWatermark)
        << "interactive traffic has no watermark";
  }
  for (auto& f : best_effort) {
    const PredictResponse r = f.get();
    best_effort_served += r.served();
    watermark_sheds += (r.shed == ShedReason::kWatermark);
  }
  // The burst overwhelms the queue: best-effort pays first and most.
  EXPECT_GT(watermark_sheds, 0);
  EXPECT_GT(interactive_served, best_effort_served);
}

}  // namespace
}  // namespace serve
}  // namespace rvar
