// Serving front-end unit tests: token bucket and admission shed order
// under synthetic time, the circuit breaker state machine, option
// validation, and the degradation ladder's exact fallback order
// (full model -> pinned stale epoch -> library-prior posterior).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "core/shape_service.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/frontend.h"
#include "sim/datasets.h"

namespace rvar {
namespace serve {
namespace {

using std::chrono::steady_clock;

steady_clock::time_point At(double seconds) {
  return steady_clock::time_point{} +
         std::chrono::duration_cast<steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

TEST(TokenBucketTest, RefillsAtRateUpToBurst) {
  TokenBucketOptions options;
  options.rate_per_second = 1.0;
  options.burst = 2.0;
  TokenBucket bucket(options);

  // Starts full: two tokens, then dry.
  EXPECT_TRUE(bucket.TryAcquire(At(10.0)));
  EXPECT_TRUE(bucket.TryAcquire(At(10.0)));
  EXPECT_FALSE(bucket.TryAcquire(At(10.0)));

  // Half a second refills half a token — still dry.
  EXPECT_FALSE(bucket.TryAcquire(At(10.5)));
  // A full second from the last refill point buys one token.
  EXPECT_TRUE(bucket.TryAcquire(At(11.5)));
  EXPECT_FALSE(bucket.TryAcquire(At(11.5)));

  // A long idle stretch caps at burst, not rate * elapsed.
  EXPECT_NEAR(bucket.AvailableAt(At(100.0)), 2.0, 1e-9);
  EXPECT_TRUE(bucket.TryAcquire(At(100.0)));
  EXPECT_TRUE(bucket.TryAcquire(At(100.0)));
  EXPECT_FALSE(bucket.TryAcquire(At(100.0)));

  // A stale timestamp refills nothing (and never goes negative).
  EXPECT_FALSE(bucket.TryAcquire(At(50.0)));
}

TEST(AdmissionTest, ValidateOptionsRejectsBadKnobs) {
  AdmissionOptions ok;
  EXPECT_TRUE(AdmissionController::ValidateOptions(ok).ok());

  AdmissionOptions bad = ok;
  bad.bucket.rate_per_second = 0.0;
  EXPECT_FALSE(AdmissionController::ValidateOptions(bad).ok());
  bad = ok;
  bad.bucket.burst = 0.5;
  EXPECT_FALSE(AdmissionController::ValidateOptions(bad).ok());
  bad = ok;
  bad.queue_capacity = 0;
  EXPECT_FALSE(AdmissionController::ValidateOptions(bad).ok());
  bad = ok;
  bad.best_effort_watermark = 10;
  bad.standard_watermark = 5;
  EXPECT_FALSE(AdmissionController::ValidateOptions(bad).ok());
  bad = ok;
  bad.standard_watermark = ok.queue_capacity + 1;
  EXPECT_FALSE(AdmissionController::ValidateOptions(bad).ok());
}

TEST(AdmissionTest, ShedsByTierBeforeTheQueueFills) {
  AdmissionOptions options;
  options.bucket.rate_per_second = 1000.0;
  options.bucket.burst = 1000.0;
  options.queue_capacity = 10;
  options.best_effort_watermark = 2;
  options.standard_watermark = 6;
  AdmissionController admission(options);

  // Under the watermarks everyone is admitted.
  EXPECT_EQ(admission.Admit(Priority::kBestEffort, 1, At(0.0)),
            ShedReason::kNone);
  EXPECT_EQ(admission.Admit(Priority::kStandard, 1, At(0.0)),
            ShedReason::kNone);
  EXPECT_EQ(admission.Admit(Priority::kInteractive, 1, At(0.0)),
            ShedReason::kNone);

  // Best-effort sheds first, standard later, interactive only at capacity.
  EXPECT_EQ(admission.Admit(Priority::kBestEffort, 2, At(0.0)),
            ShedReason::kWatermark);
  EXPECT_EQ(admission.Admit(Priority::kStandard, 2, At(0.0)),
            ShedReason::kNone);
  EXPECT_EQ(admission.Admit(Priority::kStandard, 6, At(0.0)),
            ShedReason::kWatermark);
  EXPECT_EQ(admission.Admit(Priority::kInteractive, 9, At(0.0)),
            ShedReason::kNone);
  EXPECT_EQ(admission.Admit(Priority::kInteractive, 10, At(0.0)),
            ShedReason::kQueueFull);
  EXPECT_EQ(admission.Admit(Priority::kBestEffort, 10, At(0.0)),
            ShedReason::kQueueFull);
}

TEST(AdmissionTest, TokenBucketCapsLowerTiersButNeverInteractive) {
  AdmissionOptions options;
  options.bucket.rate_per_second = 1.0;
  options.bucket.burst = 2.0;
  options.queue_capacity = 100;
  options.best_effort_watermark = 100;
  options.standard_watermark = 100;
  AdmissionController admission(options);

  EXPECT_EQ(admission.Admit(Priority::kStandard, 0, At(1.0)),
            ShedReason::kNone);
  EXPECT_EQ(admission.Admit(Priority::kBestEffort, 0, At(1.0)),
            ShedReason::kNone);
  EXPECT_EQ(admission.Admit(Priority::kStandard, 0, At(1.0)),
            ShedReason::kTokens);
  // Interactive traffic never pays tokens: a drained bucket is invisible.
  EXPECT_EQ(admission.Admit(Priority::kInteractive, 0, At(1.0)),
            ShedReason::kNone);
  // Refill restores the lower tiers.
  EXPECT_EQ(admission.Admit(Priority::kStandard, 0, At(2.5)),
            ShedReason::kNone);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndProbesClosed) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown_seconds = 1.0;
  options.close_threshold = 1;
  ASSERT_TRUE(CircuitBreaker::ValidateOptions(options).ok());
  CircuitBreaker breaker(options);

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(At(0.0));
  breaker.RecordFailure(At(0.1));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // A success resets the streak.
  breaker.RecordSuccess();
  breaker.RecordFailure(At(0.2));
  breaker.RecordFailure(At(0.3));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(At(0.4));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  // Open fails fast until the cooldown elapses.
  EXPECT_FALSE(breaker.AllowRequest(At(0.9)));
  EXPECT_TRUE(breaker.AllowRequest(At(1.5)));  // the half-open probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // Only one probe at a time.
  EXPECT_FALSE(breaker.AllowRequest(At(1.5)));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, FailedProbeReopensWithFreshCooldown) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_seconds = 1.0;
  CircuitBreaker breaker(options);

  breaker.RecordFailure(At(0.0));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.AllowRequest(At(1.1)));
  breaker.RecordFailure(At(1.1));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // The cooldown restarted at the probe failure, not the original trip.
  EXPECT_FALSE(breaker.AllowRequest(At(1.9)));
  EXPECT_TRUE(breaker.AllowRequest(At(2.2)));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

// Shared trained predictor + shape service (expensive to build).
class FrontendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SuiteConfig config;
    config.num_groups = 40;
    config.d1_days = 3.0;
    config.d2_days = 1.5;
    config.d3_days = 0.5;
    config.d1_support = 12;
    config.seed = 311;
    auto suite = sim::BuildStudySuite(config);
    ASSERT_TRUE(suite.ok()) << suite.status().ToString();
    suite_ = new sim::StudySuite(std::move(*suite));

    core::PredictorConfig pc;
    pc.shape.num_clusters = 3;
    pc.shape.min_support = 12;
    pc.shape.kmeans.num_restarts = 3;
    pc.gbdt.num_rounds = 15;
    auto predictor = core::VariationPredictor::Train(*suite_, pc);
    ASSERT_TRUE(predictor.ok()) << predictor.status().ToString();
    predictor_ = predictor->release();
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete suite_;
    predictor_ = nullptr;
    suite_ = nullptr;
  }

  // A service over the predictor's library, with the predictor's model
  // published in the slot (the topology AttachShapeService produces).
  static std::unique_ptr<core::ShapeService> MakeService(bool with_model) {
    auto service = core::ShapeService::Make(&predictor_->shapes());
    EXPECT_TRUE(service.ok());
    if (with_model) (*service)->SwapModel(predictor_->ModelSnapshot());
    return std::move(*service);
  }

  static const sim::JobRun& SomeRun() {
    return suite_->d3.telemetry.runs().front();
  }

  static FrontendOptions FastOptions() {
    FrontendOptions options;
    options.max_batch = 8;
    options.batch_linger = std::chrono::microseconds(0);
    options.default_deadline = std::chrono::milliseconds(5000);
    options.breaker.failure_threshold = 1;
    options.breaker.cooldown_seconds = 0.01;
    return options;
  }

  static sim::StudySuite* suite_;
  static core::VariationPredictor* predictor_;
};

sim::StudySuite* FrontendTest::suite_ = nullptr;
core::VariationPredictor* FrontendTest::predictor_ = nullptr;

TEST_F(FrontendTest, MakeValidatesOptions) {
  auto service = MakeService(true);
  FrontendOptions bad = FastOptions();
  bad.max_batch = 0;
  EXPECT_FALSE(ServingFrontend::Make(service.get(), predictor_, bad).ok());
  bad = FastOptions();
  bad.num_workers = 0;
  EXPECT_FALSE(ServingFrontend::Make(service.get(), predictor_, bad).ok());
  bad = FastOptions();
  bad.default_deadline = std::chrono::milliseconds(0);
  EXPECT_FALSE(ServingFrontend::Make(service.get(), predictor_, bad).ok());
  bad = FastOptions();
  bad.admission.queue_capacity = 0;
  EXPECT_FALSE(ServingFrontend::Make(service.get(), predictor_, bad).ok());
  EXPECT_FALSE(
      ServingFrontend::Make(nullptr, predictor_, FastOptions()).ok());
}

TEST_F(FrontendTest, ServesFullModelMatchingDirectPrediction) {
  auto service = MakeService(true);
  auto frontend =
      ServingFrontend::Make(service.get(), predictor_, FastOptions());
  ASSERT_TRUE(frontend.ok()) << frontend.status().ToString();

  const sim::JobRun& run = SomeRun();
  const PredictResponse response = (*frontend)->Predict(
      run, Priority::kStandard, std::chrono::seconds(10));
  ASSERT_TRUE(response.served()) << ShedReasonName(response.shed);
  EXPECT_EQ(response.level, DegradationLevel::kFullModel);
  auto direct = predictor_->PredictShape(run);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response.shape, *direct);
  EXPECT_GE(response.latency_seconds, 0.0);
  EXPECT_EQ((*frontend)->breaker_state(), BreakerState::kClosed);
}

// The satellite's exact-order assertion: the ladder degrades one rung at a
// time as the model supply is taken away, and never turns into an error.
TEST_F(FrontendTest, DegradationLadderFallsInExactOrder) {
  auto service = MakeService(true);
  // Give the prior rung something to answer with for this run's group.
  const sim::JobRun& run = SomeRun();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service->Observe(run.group_id, 1.0).ok());
  }

  auto frontend =
      ServingFrontend::Make(service.get(), predictor_, FastOptions());
  ASSERT_TRUE(frontend.ok());

  // Rung 1: live model serves at full fidelity (and pins the stale epoch).
  PredictResponse response = (*frontend)->Predict(
      run, Priority::kStandard, std::chrono::seconds(10));
  ASSERT_TRUE(response.served());
  ASSERT_EQ(response.level, DegradationLevel::kFullModel);
  const int full_shape = response.shape;

  // Quarantine the live model (null epoch published): rung 2 must answer
  // from the pinned stale epoch — same model bytes, so the same shape.
  service->SwapModel(nullptr);
  response = (*frontend)->Predict(run, Priority::kStandard,
                                  std::chrono::seconds(10));
  ASSERT_TRUE(response.served());
  ASSERT_EQ(response.level, DegradationLevel::kStaleModel);
  EXPECT_EQ(response.shape, full_shape);
  EXPECT_EQ((*frontend)->breaker_state(), BreakerState::kOpen);

  // Rung 3: a fresh front-end that never saw a model has no stale epoch to
  // pin, so the same outage degrades it all the way to the prior.
  auto cold = ServingFrontend::Make(service.get(), predictor_, FastOptions());
  ASSERT_TRUE(cold.ok());
  response = (*cold)->Predict(run, Priority::kStandard,
                              std::chrono::seconds(10));
  ASSERT_TRUE(response.served());
  EXPECT_EQ(response.level, DegradationLevel::kPrior);
  EXPECT_EQ(response.shape, service->PriorShape(run.group_id));
  EXPECT_GE(response.shape, 0);

  // Restoring the model heals the first front-end back to rung 1 through
  // the breaker's half-open probe.
  service->SwapModel(predictor_->ModelSnapshot());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  response = (*frontend)->Predict(run, Priority::kStandard,
                                  std::chrono::seconds(10));
  ASSERT_TRUE(response.served());
  EXPECT_EQ(response.level, DegradationLevel::kFullModel);
  EXPECT_EQ(response.shape, full_shape);
  EXPECT_EQ((*frontend)->breaker_state(), BreakerState::kClosed);
}

// Regression (PR 8 satellite): the prior rung used to emit MostLikely's
// -1 sentinel for never-observed groups as if it were a shape. A served
// response must always carry a real cluster — the library's global-prior
// argmax — and stay labeled kPrior (degraded), never -1-as-data.
TEST_F(FrontendTest, PriorRungAnswersUnknownGroupsWithGlobalPrior) {
  auto service = MakeService(false);
  auto frontend =
      ServingFrontend::Make(service.get(), /*predictor=*/nullptr,
                            FastOptions());
  ASSERT_TRUE(frontend.ok());
  sim::JobRun unknown = SomeRun();
  unknown.group_id = 999999;
  ASSERT_EQ(service->MostLikely(unknown.group_id), -1);  // the sentinel
  const PredictResponse response = (*frontend)->Predict(
      unknown, Priority::kStandard, std::chrono::seconds(10));
  ASSERT_TRUE(response.served());
  EXPECT_EQ(response.level, DegradationLevel::kPrior);
  EXPECT_EQ(response.shape, service->GlobalPriorShape());
  EXPECT_GE(response.shape, 0);
  EXPECT_LT(response.shape, predictor_->shapes().num_clusters());
}

TEST(AdmissionTest, ShardSliceDividesTheBudgetAndStaysValid) {
  AdmissionOptions options;
  options.bucket.rate_per_second = 1000.0;
  options.bucket.burst = 40.0;
  options.queue_capacity = 100;
  options.best_effort_watermark = 25;
  options.standard_watermark = 75;

  // One shard: the slice is the original budget.
  AdmissionOptions whole = options.ShardSlice(1);
  EXPECT_EQ(whole.queue_capacity, options.queue_capacity);
  EXPECT_EQ(whole.standard_watermark, options.standard_watermark);
  EXPECT_DOUBLE_EQ(whole.bucket.rate_per_second,
                   options.bucket.rate_per_second);

  AdmissionOptions quarter = options.ShardSlice(4);
  EXPECT_TRUE(AdmissionController::ValidateOptions(quarter).ok());
  EXPECT_EQ(quarter.queue_capacity, 25u);
  EXPECT_EQ(quarter.best_effort_watermark, 7u);
  EXPECT_EQ(quarter.standard_watermark, 19u);
  EXPECT_DOUBLE_EQ(quarter.bucket.rate_per_second, 250.0);
  EXPECT_DOUBLE_EQ(quarter.bucket.burst, 10.0);

  // Degenerate budgets still slice into something valid: capacity never
  // reaches 0, burst never drops below one token, a 0 watermark stays 0.
  AdmissionOptions tiny;
  tiny.queue_capacity = 1;
  tiny.best_effort_watermark = 0;
  tiny.standard_watermark = 1;
  tiny.bucket.burst = 1.0;
  AdmissionOptions sliced = tiny.ShardSlice(16);
  EXPECT_TRUE(AdmissionController::ValidateOptions(sliced).ok());
  EXPECT_EQ(sliced.queue_capacity, 1u);
  EXPECT_EQ(sliced.best_effort_watermark, 0u);
  EXPECT_DOUBLE_EQ(sliced.bucket.burst, 1.0);
}

// Per-shard routing: a multi-shard service behind a multi-worker
// front-end must answer exactly what the predictor answers for runs
// landing on every shard, and the depth surfaces must agree.
TEST_F(FrontendTest, ShardRoutedQueuesServeEveryShardCorrectly) {
  core::ShapeService::Options sopts;
  sopts.num_shards = 8;
  auto service = core::ShapeService::Make(&predictor_->shapes(), sopts);
  ASSERT_TRUE(service.ok());
  (*service)->SwapModel(predictor_->ModelSnapshot());

  FrontendOptions fopts = FastOptions();
  fopts.num_workers = 3;  // shards split unevenly across workers
  auto frontend =
      ServingFrontend::Make(service->get(), predictor_, fopts);
  ASSERT_TRUE(frontend.ok());
  EXPECT_EQ((*frontend)->num_shards(), 8u);

  const auto& runs = suite_->d3.telemetry.runs();
  std::vector<bool> shard_seen(8, false);
  size_t served = 0;
  for (size_t i = 0; i < runs.size() && served < 64; ++i) {
    const sim::JobRun& run = runs[i];
    shard_seen[(*service)->ShardIndexFor(run.group_id)] = true;
    const PredictResponse response = (*frontend)->Predict(
        run, Priority::kStandard, std::chrono::seconds(10));
    ASSERT_TRUE(response.served()) << ShedReasonName(response.shed);
    EXPECT_EQ(response.level, DegradationLevel::kFullModel);
    auto direct = predictor_->PredictShape(run);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(response.shape, *direct) << "run " << i;
    ++served;
  }
  // The traffic genuinely spread over multiple shards (the group hash
  // would have to be pathological to pin 40 groups onto one shard).
  int hit = 0;
  for (bool seen : shard_seen) hit += seen ? 1 : 0;
  EXPECT_GT(hit, 1);

  EXPECT_EQ((*frontend)->queue_depth(), 0u);
  for (size_t s = 0; s < (*frontend)->num_shards(); ++s) {
    EXPECT_EQ((*frontend)->shard_queue_depth(s), 0u);
  }
}

TEST_F(FrontendTest, ExpiredDeadlineIsShedNotServedLate) {
  auto service = MakeService(true);
  auto frontend =
      ServingFrontend::Make(service.get(), predictor_, FastOptions());
  ASSERT_TRUE(frontend.ok());

  PredictRequest request;
  const sim::JobRun& run = SomeRun();
  request.run = &run;
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const PredictResponse response = (*frontend)->Submit(request).get();
  EXPECT_FALSE(response.served());
  EXPECT_EQ(response.shed, ShedReason::kDeadline);
  EXPECT_EQ(response.shape, -1);
}

TEST_F(FrontendTest, InvalidAndPostShutdownRequestsAreLabeled) {
  auto service = MakeService(true);
  auto frontend =
      ServingFrontend::Make(service.get(), predictor_, FastOptions());
  ASSERT_TRUE(frontend.ok());

  PredictRequest null_run;
  EXPECT_EQ((*frontend)->Submit(null_run).get().shed, ShedReason::kInvalid);

  (*frontend)->Shutdown();
  PredictRequest after;
  const sim::JobRun& run = SomeRun();
  after.run = &run;
  EXPECT_EQ((*frontend)->Submit(after).get().shed, ShedReason::kShutdown);
  (*frontend)->Shutdown();  // idempotent
}

}  // namespace
}  // namespace serve
}  // namespace rvar
