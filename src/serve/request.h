// Copyright 2026 The rvar Authors.
//
// Request/response currency of the overload-resilient serving front-end
// (DESIGN.md §12). Every request carries a deadline budget and a priority
// tier; every response is labeled with what happened to it — served (and
// at which degradation level) or shed (and why) — so overload behavior is
// observable per-request, not just in aggregate counters.

#ifndef RVAR_SERVE_REQUEST_H_
#define RVAR_SERVE_REQUEST_H_

#include <chrono>

#include "sim/scheduler.h"

namespace rvar {
namespace serve {

/// \brief Shedding order under overload: higher tiers are shed first.
/// kInteractive is bounded only by queue capacity; kStandard and
/// kBestEffort additionally sit behind the token bucket and their
/// queue-depth watermarks.
enum class Priority : int {
  kInteractive = 0,  ///< user-facing, shed last
  kStandard = 1,     ///< normal traffic
  kBestEffort = 2,   ///< speculative / batch, shed first
};
inline constexpr int kNumPriorities = 3;
const char* PriorityName(Priority priority);

/// \brief How an answer was produced — the degradation ladder, best rung
/// first. A sick or mid-swap model moves responses *down* the ladder;
/// it never turns them into errors.
enum class DegradationLevel : int {
  kFullModel = 0,  ///< shard-local replica of the live classifier epoch
  kStaleModel = 1, ///< shard's pinned last-known-good epoch (breaker open)
  /// Tracker posterior, no model at all. Never-observed groups answer
  /// with the library's global-prior argmax — the -1 sentinel MostLikely
  /// returns for them is never emitted as data.
  kPrior = 2,
};
inline constexpr int kNumDegradationLevels = 3;
const char* DegradationLevelName(DegradationLevel level);

/// \brief Why a request was shed instead of served.
enum class ShedReason : int {
  kNone = 0,       ///< not shed — the request was served
  kQueueFull = 1,  ///< bounded queue at capacity
  kWatermark = 2,  ///< queue depth above the tier's watermark
  kTokens = 3,     ///< token bucket empty (non-interactive tiers only)
  kDeadline = 4,   ///< deadline expired before the request was served
  kShutdown = 5,   ///< front-end stopped with the request still queued
  kInvalid = 6,    ///< malformed request (null run)
};
inline constexpr int kNumShedReasons = 7;
const char* ShedReasonName(ShedReason reason);

/// \brief One shape-prediction request. `run` must stay valid until the
/// response future resolves.
struct PredictRequest {
  const sim::JobRun* run = nullptr;
  Priority priority = Priority::kStandard;
  /// Absolute deadline; a default-constructed time_point means "apply the
  /// front-end's default budget at submit time".
  std::chrono::steady_clock::time_point deadline{};
};

/// \brief The labeled outcome of one request.
struct PredictResponse {
  /// kNone when served; otherwise the request was shed and `shape` is -1.
  ShedReason shed = ShedReason::kNone;
  /// Predicted (or degraded) shape. -1 only when shed: every served
  /// response carries a real cluster index, falling back to the library's
  /// global-prior argmax for groups nothing has ever observed.
  int shape = -1;
  /// Which ladder rung produced the answer; meaningful when served.
  DegradationLevel level = DegradationLevel::kFullModel;
  /// Submit-to-response wall clock, seconds.
  double latency_seconds = 0.0;

  bool served() const { return shed == ShedReason::kNone; }
};

}  // namespace serve
}  // namespace rvar

#endif  // RVAR_SERVE_REQUEST_H_
