// Copyright 2026 The rvar Authors.
//
// Admission control for the serving front-end (DESIGN.md §12): a token
// bucket caps the aggregate rate the lower tiers may inject, and
// queue-depth watermarks shed by priority tier *before* the bounded queue
// grows into its deadline budget. Shedding early keeps queue wait — the
// dominant tail-latency term under overload ("Runtime Variation in Big
// Data Analytics" §5–6 frames exactly this contention-driven tail) —
// bounded and predictable instead of letting every request time out.
//
// All decisions take the clock as an argument, so unit tests drive the
// controller with synthetic time and the decisions stay deterministic.

#ifndef RVAR_SERVE_ADMISSION_H_
#define RVAR_SERVE_ADMISSION_H_

#include <chrono>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "serve/request.h"

namespace rvar {
namespace serve {

/// \brief Classic token bucket: refills continuously at `rate_per_second`
/// up to `burst` tokens; each admission costs one token. Thread-safe.
struct TokenBucketOptions {
  double rate_per_second = 50000.0;
  double burst = 1000.0;
};

class TokenBucket {
 public:
  explicit TokenBucket(TokenBucketOptions options);

  /// Takes one token if available at `now`; false when the bucket is dry.
  /// Monotonic `now` values are expected; a stale `now` simply refills
  /// nothing.
  bool TryAcquire(std::chrono::steady_clock::time_point now);

  /// Tokens available at `now` (refilled but not taken).
  double AvailableAt(std::chrono::steady_clock::time_point now) const;

  const TokenBucketOptions& options() const { return options_; }

 private:
  void RefillLocked(std::chrono::steady_clock::time_point now) const;

  TokenBucketOptions options_;
  mutable std::mutex mu_;
  mutable double tokens_;
  mutable std::chrono::steady_clock::time_point last_;
  mutable bool primed_ = false;  ///< last_ is valid after the first call
};

/// \brief Shed-by-tier policy: queue-depth watermarks plus the bucket.
///
/// The options describe the front-end's *total* admission budget. A
/// sharded front-end (one bounded queue per ShapeService shard) divides
/// the budget with ShardSlice so the aggregate capacity, watermarks, and
/// token rate stay comparable at any shard count.
struct AdmissionOptions {
  TokenBucketOptions bucket;
  /// Bounded queue capacity; every tier is shed at this depth.
  size_t queue_capacity = 1024;
  /// kBestEffort is shed once the queue reaches this depth.
  size_t best_effort_watermark = 256;
  /// kStandard is shed once the queue reaches this depth.
  size_t standard_watermark = 768;

  /// This budget divided across `num_shards` share-nothing queues:
  /// capacity and watermarks split evenly (rounded up, so capacity never
  /// hits 0 and a 1-shard slice equals the original), and the token
  /// bucket's rate and burst split so the aggregate refill rate is
  /// unchanged. Requires num_shards >= 1. The result always satisfies
  /// ValidateOptions when this does.
  AdmissionOptions ShardSlice(int num_shards) const;
};

/// \brief Decides admit-or-shed for one request. Stateless apart from the
/// token bucket; the caller passes the current queue depth so the decision
/// and the enqueue can happen under one lock.
///
/// Holds a token bucket (and therefore a mutex), so it is constructed in
/// place: call ValidateOptions first; the constructor checks it.
class AdmissionController {
 public:
  /// Positive rate, burst >= 1, capacity >= 1, and
  /// best_effort_watermark <= standard_watermark <= queue_capacity.
  static Status ValidateOptions(const AdmissionOptions& options);

  /// Requires ValidateOptions(options).ok().
  explicit AdmissionController(AdmissionOptions options);

  /// kNone = admit. Shed order: queue-full (all tiers), then the tier's
  /// watermark, then the token bucket (kInteractive never pays tokens —
  /// its headroom is exactly what the bucket preserves).
  ShedReason Admit(Priority priority, size_t queue_depth,
                   std::chrono::steady_clock::time_point now);

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  TokenBucket bucket_;

  // Metrics (obs/metrics.h): write-only, never consulted for decisions.
  std::vector<obs::Counter*> admitted_total_;  ///< indexed by Priority
  std::vector<obs::Counter*> shed_total_;      ///< indexed by ShedReason
};

}  // namespace serve
}  // namespace rvar

#endif  // RVAR_SERVE_ADMISSION_H_
