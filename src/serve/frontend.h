// Copyright 2026 The rvar Authors.
//
// Overload-resilient serving front-end (DESIGN.md §12) in front of
// core::ShapeService + core::VariationPredictor. Every request carries a
// deadline budget and a priority tier; an admission controller (token
// bucket + queue-depth watermarks, serve/admission.h) sheds load by tier
// *before* the bounded queue grows; worker threads drain the queue in
// micro-batches so GBDT inference amortizes over the flattened forest the
// way PredictShapeBatch already allows; and a circuit breaker
// (serve/circuit_breaker.h) wired to model-lifecycle health drives an
// explicit degradation ladder:
//
//   full model  ->  pinned stale model epoch  ->  library-prior posterior
//
// so a sick, quarantined, or mid-swap model yields *degraded answers,
// never errors or blocking*. Expired requests are shed with a labeled
// response instead of being served late. Every admission decision, shed,
// breaker transition, and degradation level lands on the obs metrics
// surfaces (serve_* counters/histograms/gauges).

#ifndef RVAR_SERVE_FRONTEND_H_
#define RVAR_SERVE_FRONTEND_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/model_lifecycle.h"
#include "core/predictor.h"
#include "core/shape_service.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/request.h"

namespace rvar {
namespace serve {

/// \brief Front-end knobs.
struct FrontendOptions {
  AdmissionOptions admission;
  CircuitBreakerOptions breaker;
  /// Requests scored per predictor call; queue drains in batches of up to
  /// this many.
  int max_batch = 64;
  /// How long a worker waits for the batch to fill before serving a
  /// partial one. Zero serves whatever is queued immediately.
  std::chrono::microseconds batch_linger{200};
  /// Deadline budget applied when a request does not set its own.
  std::chrono::milliseconds default_deadline{50};
  int num_workers = 1;
  /// Optional extra model-health signal ANDed with "the service's model
  /// slot is non-null" — see LifecycleHealthProbe. Must be thread-safe;
  /// called once per batch.
  std::function<bool()> health_probe;
};

/// \brief Deadline-aware, admission-controlled, micro-batching front-end.
///
/// Thread-safe: Submit/Predict may be called from any number of threads.
/// The full-model rung scores batches against the ShapeService's published
/// model epoch (the slot ModelLifecycle::AttachShapeService feeds), so a
/// lifecycle swap, rollback, or quarantine is picked up on the next batch
/// without any front-end involvement.
class ServingFrontend {
 public:
  /// `service` must outlive the front-end. `predictor` (used for
  /// featurization and epoch-pinned scoring) may be null, in which case
  /// every answer comes from the prior rung. Validates all options.
  static Result<std::unique_ptr<ServingFrontend>> Make(
      const core::ShapeService* service,
      const core::VariationPredictor* predictor, FrontendOptions options);

  ~ServingFrontend();

  ServingFrontend(const ServingFrontend&) = delete;
  ServingFrontend& operator=(const ServingFrontend&) = delete;

  /// Admission-checks and enqueues one request. The future always
  /// resolves: served, shed (labeled with the reason), or shut down —
  /// a request is never silently dropped and never blocks indefinitely.
  std::future<PredictResponse> Submit(PredictRequest request);

  /// Submit + wait, with the deadline derived from `budget`. The wait is
  /// bounded: the worker sheds expired requests instead of serving them
  /// late.
  PredictResponse Predict(const sim::JobRun& run, Priority priority,
                          std::chrono::steady_clock::duration budget);

  /// Stops the workers; queued requests resolve as shed(kShutdown).
  /// Idempotent; also run by the destructor.
  void Shutdown();

  size_t queue_depth() const;
  BreakerState breaker_state() const;
  const FrontendOptions& options() const { return options_; }

  /// Health probe bound to a model lifecycle: healthy while some version
  /// serves (live_version() >= 0). A forced quarantine with no rollback
  /// target clears the live version, which trips the breaker here and
  /// drops the front-end onto the stale rung. `lifecycle` must outlive
  /// the returned function.
  static std::function<bool()> LifecycleHealthProbe(
      const core::ModelLifecycle* lifecycle);

 private:
  struct Pending {
    PredictRequest request;
    std::promise<PredictResponse> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  ServingFrontend(const core::ShapeService* service,
                  const core::VariationPredictor* predictor,
                  FrontendOptions options);

  void WorkerLoop();
  /// Blocks for work; false when stopping and the queue is drained.
  bool PopBatch(std::vector<Pending>* batch);
  void ServeBatch(std::vector<Pending>* batch);
  /// Scores `batch` against one model epoch; false on batch-level
  /// incompatibility (nothing responded, next rung takes over). Per-run
  /// featurization failures degrade that run to the prior rung.
  bool TryServeWithModel(const ml::GbdtClassifier& model,
                         std::vector<Pending>* batch,
                         DegradationLevel level);
  void RespondPrior(Pending* pending);
  void RespondShed(Pending* pending, ShedReason reason);
  void Respond(Pending* pending, PredictResponse response);

  const core::ShapeService* service_;
  const core::VariationPredictor* predictor_;
  FrontendOptions options_;

  AdmissionController admission_;
  CircuitBreaker breaker_;

  mutable std::mutex mu_;  ///< guards queue_ and stop_
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;

  /// Last epoch that served a full-model batch successfully; the stale
  /// rung of the ladder. Never reset — stale answers beat no answers.
  mutable std::mutex stale_mu_;
  std::shared_ptr<const ml::GbdtClassifier> stale_;

  std::vector<std::thread> workers_;

  // Metrics (obs/metrics.h): write-only, never consulted for results.
  obs::Counter* requests_total_;
  std::vector<obs::Counter*> served_total_;  ///< indexed by DegradationLevel
  std::vector<obs::Counter*> shed_total_;    ///< indexed by ShedReason
  obs::Histogram* latency_;     ///< submit -> response wall clock
  obs::Histogram* queue_wait_;  ///< submit -> dequeue wall clock
  obs::Histogram* batch_size_;
  obs::Gauge* depth_gauge_;
};

}  // namespace serve
}  // namespace rvar

#endif  // RVAR_SERVE_FRONTEND_H_
