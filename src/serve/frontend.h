// Copyright 2026 The rvar Authors.
//
// Overload-resilient serving front-end (DESIGN.md §12–13) in front of
// core::ShapeService + core::VariationPredictor. Every request carries a
// deadline budget and a priority tier, and is routed — by the same
// group-id hash the ShapeService uses to partition its tracker state —
// to one bounded queue per service shard. Admission control (token
// bucket + queue-depth watermarks, serve/admission.h, sliced per shard
// from one aggregate budget) sheds load by tier *before* a shard queue
// grows; each shard's owning worker drains its queue in micro-batches so
// GBDT inference amortizes over the flattened forest the way
// PredictShapeBatch already allows, scoring against the shard-local model
// replica; and a circuit breaker (serve/circuit_breaker.h) wired to
// model-lifecycle health drives an explicit degradation ladder, applied
// per shard:
//
//   full model  ->  pinned stale model epoch (per shard)  ->  prior
//
// so a sick, quarantined, or mid-swap model yields *degraded answers,
// never errors or blocking* — and the prior rung never leaks the
// MostLikely() -1 sentinel as data: never-observed groups answer with
// the library's global-prior argmax, still labeled kPrior. Expired
// requests are shed with a labeled response instead of being served
// late. Every admission decision, shed, breaker transition, and
// degradation level lands on the obs metrics surfaces (serve_*
// counters/histograms/gauges; queue depth is per shard).

#ifndef RVAR_SERVE_FRONTEND_H_
#define RVAR_SERVE_FRONTEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/model_lifecycle.h"
#include "core/predictor.h"
#include "core/shape_service.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/request.h"

namespace rvar {
namespace serve {

/// \brief Front-end knobs.
struct FrontendOptions {
  /// Aggregate admission budget; divided across the service's shards with
  /// AdmissionOptions::ShardSlice, so per-shard queues keep the same total
  /// capacity, watermarks, and token rate at any shard count.
  AdmissionOptions admission;
  CircuitBreakerOptions breaker;
  /// Requests scored per predictor call; a shard queue drains in batches
  /// of up to this many.
  int max_batch = 64;
  /// How long a worker waits for the batch to fill before serving a
  /// partial one. Zero serves whatever is queued immediately.
  std::chrono::microseconds batch_linger{200};
  /// Deadline budget applied when a request does not set its own.
  std::chrono::milliseconds default_deadline{50};
  /// Worker threads; shards are assigned round-robin, and each shard is
  /// drained by exactly one worker (effective workers = min(num_workers,
  /// service shards)).
  int num_workers = 1;
  /// Optional extra model-health signal ANDed with "the service's model
  /// slot is non-null" — see LifecycleHealthProbe. Must be thread-safe;
  /// called once per batch.
  std::function<bool()> health_probe;
};

/// \brief Deadline-aware, admission-controlled, shard-routed,
/// micro-batching front-end.
///
/// Thread-safe: Submit/Predict may be called from any number of threads.
/// The full-model rung scores each shard's batches against that shard's
/// published model replica (the slot ModelLifecycle::AttachShapeService
/// feeds via ShapeService::SwapModel), so a lifecycle swap, rollback, or
/// quarantine is picked up on the next batch without any front-end
/// involvement.
class ServingFrontend {
 public:
  /// `service` must outlive the front-end; its shard count fixes the
  /// queue topology. `predictor` (used for featurization and epoch-pinned
  /// scoring) may be null, in which case every answer comes from the
  /// prior rung. Validates all options.
  static Result<std::unique_ptr<ServingFrontend>> Make(
      const core::ShapeService* service,
      const core::VariationPredictor* predictor, FrontendOptions options);

  ~ServingFrontend();

  ServingFrontend(const ServingFrontend&) = delete;
  ServingFrontend& operator=(const ServingFrontend&) = delete;

  /// Admission-checks (against the owning shard's queue) and enqueues one
  /// request. The future always resolves: served, shed (labeled with the
  /// reason), or shut down — a request is never silently dropped and
  /// never blocks indefinitely.
  std::future<PredictResponse> Submit(PredictRequest request);

  /// Submit + wait, with the deadline derived from `budget`. The wait is
  /// bounded: the worker sheds expired requests instead of serving them
  /// late.
  PredictResponse Predict(const sim::JobRun& run, Priority priority,
                          std::chrono::steady_clock::duration budget);

  /// Stops the workers; queued requests resolve as shed(kShutdown).
  /// Idempotent; also run by the destructor.
  void Shutdown();

  /// Total depth across all shard queues.
  size_t queue_depth() const;
  /// Depth of one shard's queue.
  size_t shard_queue_depth(size_t shard_index) const;
  size_t num_shards() const { return shards_.size(); }
  BreakerState breaker_state() const;
  const FrontendOptions& options() const { return options_; }

  /// Health probe bound to a model lifecycle: healthy while some version
  /// serves (live_version() >= 0). A forced quarantine with no rollback
  /// target clears the live version, which trips the breaker here and
  /// drops the front-end onto the stale rung. `lifecycle` must outlive
  /// the returned function.
  static std::function<bool()> LifecycleHealthProbe(
      const core::ModelLifecycle* lifecycle);

 private:
  struct Pending {
    PredictRequest request;
    std::promise<PredictResponse> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  /// One bounded queue, mirroring one ShapeService shard. Guarded by the
  /// owning worker's mutex — submitters lock that worker; only the owning
  /// worker drains. `stale` (the pinned last-known-good epoch for this
  /// shard's ladder) is touched exclusively by the owning worker thread.
  struct ShardQueue {
    std::deque<Pending> queue;
    std::unique_ptr<AdmissionController> admission;  ///< per-shard slice
    obs::Gauge* depth_gauge = nullptr;
    /// Last epoch that served this shard a full-model batch; the stale
    /// rung. Never reset — stale answers beat no answers. Worker-only.
    std::shared_ptr<const ml::GbdtClassifier> stale;
  };

  /// One worker thread plus the synchronization for the shard queues it
  /// owns. A shard belongs to exactly one worker (shard % num workers).
  struct Worker {
    mutable std::mutex mu;  ///< guards the queues of owned shards
    std::condition_variable cv;
    std::vector<size_t> shards;  ///< owned shard indices
    size_t cursor = 0;           ///< round-robin scan start (worker-only)
    std::thread thread;
  };

  ServingFrontend(const core::ShapeService* service,
                  const core::VariationPredictor* predictor,
                  FrontendOptions options);

  void WorkerLoop(size_t worker_index);
  /// Blocks for work on any of the worker's shards; picks the next
  /// non-empty shard round-robin and moves up to max_batch requests out.
  /// False when stopping and every owned queue is drained.
  bool PopBatch(Worker* worker, size_t* shard_index,
                std::vector<Pending>* batch);
  void ServeBatch(size_t shard_index, std::vector<Pending>* batch);
  /// Scores `batch` against one model epoch into `shapes`/`run_status`;
  /// false on batch-level incompatibility (nothing responded, next rung
  /// takes over). Responding is a separate step (RespondModelBatch) so
  /// the caller can settle breaker state *before* any promise resolves —
  /// a client that observes its future must also observe the breaker
  /// transition its request caused.
  bool PredictBatch(const ml::GbdtClassifier& model,
                    const std::vector<Pending>& batch,
                    std::vector<int>* shapes, std::vector<Status>* run_status);
  /// Resolves every request in `batch` from a PredictBatch result. Per-run
  /// featurization failures degrade that run to the prior rung.
  void RespondModelBatch(std::vector<Pending>* batch,
                         const std::vector<int>& shapes,
                         const std::vector<Status>& run_status,
                         DegradationLevel level);
  void RespondPrior(Pending* pending);
  void RespondShed(Pending* pending, ShedReason reason);
  void Respond(Pending* pending, PredictResponse response);

  const core::ShapeService* service_;
  const core::VariationPredictor* predictor_;
  FrontendOptions options_;

  CircuitBreaker breaker_;  ///< model health is global, not per shard

  std::vector<ShardQueue> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<size_t> shard_to_worker_;
  std::atomic<bool> stop_{false};

  // Metrics (obs/metrics.h): write-only, never consulted for results.
  obs::Counter* requests_total_;
  std::vector<obs::Counter*> served_total_;  ///< indexed by DegradationLevel
  std::vector<obs::Counter*> shed_total_;    ///< indexed by ShedReason
  obs::Histogram* latency_;     ///< submit -> response wall clock
  obs::Histogram* queue_wait_;  ///< submit -> dequeue wall clock
  obs::Histogram* batch_size_;
};

}  // namespace serve
}  // namespace rvar

#endif  // RVAR_SERVE_FRONTEND_H_
