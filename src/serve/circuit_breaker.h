// Copyright 2026 The rvar Authors.
//
// Circuit breaker for the predictor path (DESIGN.md §12). The classic
// three-state machine: kClosed passes traffic and counts consecutive
// failures; crossing the threshold trips to kOpen, which fails fast (the
// front-end drops to the next degradation rung) for a cooldown; after the
// cooldown one probe is let through (kHalfOpen) — success closes the
// breaker, failure re-opens it with a fresh cooldown. Health failures of
// the model lifecycle (quarantined / mid-swap / never-trained epochs)
// feed RecordFailure, so a sick model stops being *asked* instead of
// timing every request out against it.
//
// The clock is always an argument: tests drive transitions with synthetic
// time, and the front-end passes one timestamp per batch.

#ifndef RVAR_SERVE_CIRCUIT_BREAKER_H_
#define RVAR_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <mutex>

#include "common/result.h"
#include "obs/metrics.h"

namespace rvar {
namespace serve {

enum class BreakerState : int {
  kClosed = 0,    ///< healthy: requests flow to the full model
  kOpen = 1,      ///< tripped: fail fast until the cooldown elapses
  kHalfOpen = 2,  ///< probing: one request tests the model
};
const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Consecutive failures that trip kClosed -> kOpen.
  int failure_threshold = 3;
  /// Seconds in kOpen before a probe is allowed.
  double cooldown_seconds = 0.5;
  /// Consecutive probe successes that close the breaker again.
  int close_threshold = 1;
};

/// \brief Thread-safe breaker; all transitions are recorded in the
/// serve_breaker_transitions_total{to=...} counter.
///
/// Holds a mutex, so it is constructed in place (no Result<CircuitBreaker>
/// factory): call ValidateOptions first; the constructor checks it.
class CircuitBreaker {
 public:
  /// Thresholds must be >= 1 and the cooldown positive and finite.
  static Status ValidateOptions(const CircuitBreakerOptions& options);

  /// Requires ValidateOptions(options).ok().
  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// True when a request may try the full-model rung at `now`. In kOpen,
  /// flips to kHalfOpen (and returns true) once the cooldown has elapsed;
  /// while kHalfOpen only one caller at a time holds the probe slot.
  bool AllowRequest(std::chrono::steady_clock::time_point now);

  /// The guarded call succeeded. Closes a half-open breaker after
  /// close_threshold successes; resets the failure streak when closed.
  void RecordSuccess();

  /// The guarded call failed (predict error or model health probe down).
  /// Trips a closed breaker at failure_threshold; re-opens a half-open
  /// breaker immediately.
  void RecordFailure(std::chrono::steady_clock::time_point now);

  BreakerState state() const;
  const CircuitBreakerOptions& options() const { return options_; }

 private:
  void TransitionLocked(BreakerState to);

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};

  // Metrics (obs/metrics.h): write-only.
  obs::Counter* transitions_to_[3] = {nullptr, nullptr, nullptr};
  obs::Gauge* state_gauge_;  ///< numeric BreakerState for dashboards
};

}  // namespace serve
}  // namespace rvar

#endif  // RVAR_SERVE_CIRCUIT_BREAKER_H_
