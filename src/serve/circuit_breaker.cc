#include "serve/circuit_breaker.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace rvar {
namespace serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

Status CircuitBreaker::ValidateOptions(const CircuitBreakerOptions& options) {
  if (options.failure_threshold < 1) {
    return Status::InvalidArgument(
        StrCat("breaker failure_threshold must be >= 1, got ",
               options.failure_threshold));
  }
  if (options.close_threshold < 1) {
    return Status::InvalidArgument(
        StrCat("breaker close_threshold must be >= 1, got ",
               options.close_threshold));
  }
  if (!(options.cooldown_seconds > 0.0) ||
      !std::isfinite(options.cooldown_seconds)) {
    return Status::InvalidArgument(
        StrCat("breaker cooldown_seconds must be positive and finite, got ",
               options.cooldown_seconds));
  }
  return Status::OK();
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  RVAR_CHECK(ValidateOptions(options_).ok());
  obs::Registry& registry = obs::Registry::Default();
  for (int s = 0; s < 3; ++s) {
    transitions_to_[s] =
        registry.GetCounter("serve_breaker_transitions_total", "to",
                            BreakerStateName(static_cast<BreakerState>(s)));
  }
  state_gauge_ = registry.GetGauge("serve_breaker_state");
}

void CircuitBreaker::TransitionLocked(BreakerState to) {
  state_ = to;
  transitions_to_[static_cast<size_t>(to)]->Increment();
  state_gauge_->Set(static_cast<double>(to));
}

bool CircuitBreaker::AllowRequest(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const double open_for =
          std::chrono::duration<double>(now - opened_at_).count();
      if (open_for < options_.cooldown_seconds) return false;
      TransitionLocked(BreakerState::kHalfOpen);
      half_open_successes_ = 0;
      probe_in_flight_ = true;
      return true;
    }
    case BreakerState::kHalfOpen:
      // One probe at a time: concurrent callers fail fast until the probe
      // reports back through RecordSuccess/RecordFailure.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      return;
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= options_.close_threshold) {
        TransitionLocked(BreakerState::kClosed);
        consecutive_failures_ = 0;
      }
      return;
    case BreakerState::kOpen:
      // A straggler from before the trip; the cooldown still applies.
      return;
  }
}

void CircuitBreaker::RecordFailure(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionLocked(BreakerState::kOpen);
        opened_at_ = now;
      }
      return;
    case BreakerState::kHalfOpen:
      // The probe failed: back to open with a fresh cooldown.
      probe_in_flight_ = false;
      TransitionLocked(BreakerState::kOpen);
      opened_at_ = now;
      return;
    case BreakerState::kOpen:
      return;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

}  // namespace serve
}  // namespace rvar
