#include "serve/frontend.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace rvar {
namespace serve {

ServingFrontend::ServingFrontend(const core::ShapeService* service,
                                 const core::VariationPredictor* predictor,
                                 FrontendOptions options)
    : service_(service),
      predictor_(predictor),
      options_(std::move(options)),
      breaker_(options_.breaker) {
  obs::Registry& registry = obs::Registry::Default();
  requests_total_ = registry.GetCounter("serve_requests_total");
  served_total_.reserve(kNumDegradationLevels);
  for (int level = 0; level < kNumDegradationLevels; ++level) {
    served_total_.push_back(registry.GetCounter(
        "serve_served_total", "level",
        DegradationLevelName(static_cast<DegradationLevel>(level))));
  }
  shed_total_.reserve(kNumShedReasons);
  for (int reason = 0; reason < kNumShedReasons; ++reason) {
    shed_total_.push_back(
        registry.GetCounter("serve_shed_total", "reason",
                            ShedReasonName(static_cast<ShedReason>(reason))));
  }
  latency_ = registry.GetHistogram("serve_request_latency_seconds");
  queue_wait_ = registry.GetHistogram("serve_queue_wait_seconds");
  batch_size_ = registry.GetHistogram("serve_batch_size");

  // One bounded queue per service shard, each with its slice of the
  // aggregate admission budget, each owned by exactly one worker.
  const size_t num_shards = static_cast<size_t>(service_->num_shards());
  const size_t num_workers =
      std::min(static_cast<size_t>(options_.num_workers), num_shards);
  const AdmissionOptions slice =
      options_.admission.ShardSlice(static_cast<int>(num_shards));
  shards_ = std::vector<ShardQueue>(num_shards);
  shard_to_worker_.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_[s].admission = std::make_unique<AdmissionController>(slice);
    shards_[s].depth_gauge =
        registry.GetGauge("serve_queue_depth", "shard", StrCat(s));
    shard_to_worker_[s] = s % num_workers;
  }
  workers_.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t s = 0; s < num_shards; ++s) {
    workers_[shard_to_worker_[s]]->shards.push_back(s);
  }
  for (size_t w = 0; w < num_workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

Result<std::unique_ptr<ServingFrontend>> ServingFrontend::Make(
    const core::ShapeService* service,
    const core::VariationPredictor* predictor, FrontendOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("null shape service");
  }
  RVAR_RETURN_NOT_OK(AdmissionController::ValidateOptions(options.admission));
  // The per-shard slice must validate too (it does whenever the aggregate
  // does — checked here so a future slicing change cannot silently break
  // the invariant).
  RVAR_RETURN_NOT_OK(AdmissionController::ValidateOptions(
      options.admission.ShardSlice(service->num_shards())));
  RVAR_RETURN_NOT_OK(CircuitBreaker::ValidateOptions(options.breaker));
  if (options.max_batch < 1) {
    return Status::InvalidArgument(
        StrCat("max_batch must be >= 1, got ", options.max_batch));
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument(
        StrCat("num_workers must be >= 1, got ", options.num_workers));
  }
  if (options.batch_linger.count() < 0) {
    return Status::InvalidArgument("batch_linger must be >= 0");
  }
  if (options.default_deadline.count() <= 0) {
    return Status::InvalidArgument("default_deadline must be > 0");
  }
  return std::unique_ptr<ServingFrontend>(
      new ServingFrontend(service, predictor, std::move(options)));
}

ServingFrontend::~ServingFrontend() { Shutdown(); }

std::function<bool()> ServingFrontend::LifecycleHealthProbe(
    const core::ModelLifecycle* lifecycle) {
  RVAR_CHECK(lifecycle != nullptr);
  return [lifecycle] { return lifecycle->live_version() >= 0; };
}

std::future<PredictResponse> ServingFrontend::Submit(PredictRequest request) {
  const auto now = std::chrono::steady_clock::now();
  requests_total_->Increment();

  Pending pending;
  pending.submitted = now;
  std::future<PredictResponse> future = pending.promise.get_future();

  if (request.run == nullptr) {
    shed_total_[static_cast<size_t>(ShedReason::kInvalid)]->Increment();
    RespondShed(&pending, ShedReason::kInvalid);
    return future;
  }
  if (request.deadline == std::chrono::steady_clock::time_point{}) {
    request.deadline = now + options_.default_deadline;
  }
  pending.request = request;

  // Route by the service's own group hash, so a request lands on the
  // worker that owns the shard holding its tracker state and model
  // replica.
  const size_t shard_index = service_->ShardIndexFor(request.run->group_id);
  ShardQueue& shard = shards_[shard_index];
  Worker& worker = *workers_[shard_to_worker_[shard_index]];
  {
    std::unique_lock<std::mutex> lock(worker.mu);
    if (stop_.load(std::memory_order_relaxed)) {
      lock.unlock();
      shed_total_[static_cast<size_t>(ShedReason::kShutdown)]->Increment();
      RespondShed(&pending, ShedReason::kShutdown);
      return future;
    }
    // Admission under the owning worker's lock: the depth the decision
    // saw is the depth the enqueue extends, so watermarks are exact, not
    // racy — and the decision only ever consults this shard's queue.
    const ShedReason verdict =
        shard.admission->Admit(request.priority, shard.queue.size(), now);
    if (verdict != ShedReason::kNone) {
      lock.unlock();
      // The admission controller already counted this shed.
      RespondShed(&pending, verdict);
      return future;
    }
    shard.queue.push_back(std::move(pending));
    shard.depth_gauge->Set(static_cast<double>(shard.queue.size()));
  }
  worker.cv.notify_one();
  return future;
}

PredictResponse ServingFrontend::Predict(
    const sim::JobRun& run, Priority priority,
    std::chrono::steady_clock::duration budget) {
  PredictRequest request;
  request.run = &run;
  request.priority = priority;
  request.deadline = std::chrono::steady_clock::now() + budget;
  return Submit(request).get();
}

void ServingFrontend::Shutdown() {
  if (stop_.exchange(true)) return;
  // Lock each worker's mutex once so no submitter is mid-enqueue when the
  // wakeup lands (the classic lost-notify guard), then join.
  for (auto& worker : workers_) {
    { std::lock_guard<std::mutex> lock(worker->mu); }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Anything still queued (workers shed on drain, but be exhaustive).
  for (auto& worker : workers_) {
    std::deque<Pending> leftover;
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      for (size_t s : worker->shards) {
        for (Pending& pending : shards_[s].queue) {
          leftover.push_back(std::move(pending));
        }
        shards_[s].queue.clear();
        shards_[s].depth_gauge->Set(0.0);
      }
    }
    for (Pending& pending : leftover) {
      shed_total_[static_cast<size_t>(ShedReason::kShutdown)]->Increment();
      RespondShed(&pending, ShedReason::kShutdown);
    }
  }
}

size_t ServingFrontend::queue_depth() const {
  size_t total = 0;
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    for (size_t s : worker->shards) total += shards_[s].queue.size();
  }
  return total;
}

size_t ServingFrontend::shard_queue_depth(size_t shard_index) const {
  RVAR_CHECK(shard_index < shards_.size());
  const Worker& worker = *workers_[shard_to_worker_[shard_index]];
  std::lock_guard<std::mutex> lock(worker.mu);
  return shards_[shard_index].queue.size();
}

BreakerState ServingFrontend::breaker_state() const {
  return breaker_.state();
}

void ServingFrontend::WorkerLoop(size_t worker_index) {
  Worker& worker = *workers_[worker_index];
  std::vector<Pending> batch;
  size_t shard_index = 0;
  while (PopBatch(&worker, &shard_index, &batch)) {
    ServeBatch(shard_index, &batch);
    batch.clear();
  }
}

bool ServingFrontend::PopBatch(Worker* worker, size_t* shard_index,
                               std::vector<Pending>* batch) {
  std::unique_lock<std::mutex> lock(worker->mu);
  const auto any_work = [this, worker] {
    if (stop_.load(std::memory_order_relaxed)) return true;
    for (size_t s : worker->shards) {
      if (!shards_[s].queue.empty()) return true;
    }
    return false;
  };
  worker->cv.wait(lock, any_work);

  // Round-robin across owned shards so a hot shard cannot starve its
  // siblings on a shared worker.
  const size_t owned = worker->shards.size();
  size_t picked = owned;
  for (size_t i = 0; i < owned; ++i) {
    const size_t candidate = worker->shards[(worker->cursor + i) % owned];
    if (!shards_[candidate].queue.empty()) {
      picked = (worker->cursor + i) % owned;
      break;
    }
  }
  if (picked == owned) return false;  // stopping and every queue drained
  worker->cursor = (picked + 1) % owned;
  const size_t s = worker->shards[picked];
  ShardQueue& shard = shards_[s];

  const size_t max_batch = static_cast<size_t>(options_.max_batch);
  if (!stop_.load(std::memory_order_relaxed) &&
      options_.batch_linger.count() > 0 && shard.queue.size() < max_batch) {
    // Linger briefly so light traffic still amortizes inference; under
    // overload the shard queue is already >= max_batch and this never
    // waits.
    const auto linger_until =
        std::chrono::steady_clock::now() + options_.batch_linger;
    worker->cv.wait_until(lock, linger_until, [this, &shard, max_batch] {
      return stop_.load(std::memory_order_relaxed) ||
             shard.queue.size() >= max_batch;
    });
  }
  const size_t take = std::min(shard.queue.size(), max_batch);
  batch->reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch->push_back(std::move(shard.queue.front()));
    shard.queue.pop_front();
  }
  shard.depth_gauge->Set(static_cast<double>(shard.queue.size()));
  *shard_index = s;
  return true;
}

void ServingFrontend::ServeBatch(size_t shard_index,
                                 std::vector<Pending>* batch) {
  obs::ScopedSpan span("serve/batch");
  batch_size_->Observe(static_cast<double>(batch->size()));
  const auto now = std::chrono::steady_clock::now();
  for (Pending& pending : *batch) {
    queue_wait_->Observe(
        std::chrono::duration<double>(now - pending.submitted).count());
  }

  const bool stopping = stop_.load(std::memory_order_relaxed);

  // Deadline pass: expired (or shutdown-drained) requests are shed with a
  // labeled response — never served late, never silently dropped.
  std::vector<Pending> live;
  live.reserve(batch->size());
  for (Pending& pending : *batch) {
    if (stopping) {
      shed_total_[static_cast<size_t>(ShedReason::kShutdown)]->Increment();
      RespondShed(&pending, ShedReason::kShutdown);
    } else if (now >= pending.request.deadline) {
      shed_total_[static_cast<size_t>(ShedReason::kDeadline)]->Increment();
      RespondShed(&pending, ShedReason::kDeadline);
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  ShardQueue& shard = shards_[shard_index];

  // Rung 1: this shard's replica of the live model epoch (the slot the
  // model lifecycle feeds through ShapeService::SwapModel). Unavailable
  // or probe-failed epochs count as breaker failures so recovery goes
  // through the half-open probe.
  std::shared_ptr<const ml::GbdtClassifier> live_model =
      service_->ModelSnapshotForShard(shard_index);
  const bool healthy =
      predictor_ != nullptr && live_model != nullptr &&
      (options_.health_probe == nullptr || options_.health_probe());
  std::vector<int> shapes;
  std::vector<Status> run_status;
  if (healthy) {
    if (breaker_.AllowRequest(now)) {
      if (PredictBatch(*live_model, live, &shapes, &run_status)) {
        // Settle breaker state and the stale pin before resolving any
        // promise: a client that sees its response must also see the
        // breaker transition its request caused.
        breaker_.RecordSuccess();
        // Pin per shard; only this worker thread touches shard.stale.
        shard.stale = std::move(live_model);
        RespondModelBatch(&live, shapes, run_status,
                          DegradationLevel::kFullModel);
        return;
      }
      breaker_.RecordFailure(now);
    }
  } else {
    breaker_.RecordFailure(now);
  }

  // Rung 2: this shard's pinned last-known-good epoch.
  if (predictor_ != nullptr && shard.stale != nullptr &&
      PredictBatch(*shard.stale, live, &shapes, &run_status)) {
    RespondModelBatch(&live, shapes, run_status,
                      DegradationLevel::kStaleModel);
    return;
  }

  // Rung 3: the sketch-reconstructed prior (global argmax for unknown
  // groups).
  for (Pending& pending : live) RespondPrior(&pending);
}

bool ServingFrontend::PredictBatch(const ml::GbdtClassifier& model,
                                   const std::vector<Pending>& batch,
                                   std::vector<int>* shapes,
                                   std::vector<Status>* run_status) {
  std::vector<const sim::JobRun*> runs;
  runs.reserve(batch.size());
  for (const Pending& pending : batch) runs.push_back(pending.request.run);
  // Batch-level incompatibility: false, the next rung serves everyone.
  return predictor_->PredictShapeBatchInto(model, runs, shapes, run_status)
      .ok();
}

void ServingFrontend::RespondModelBatch(std::vector<Pending>* batch,
                                        const std::vector<int>& shapes,
                                        const std::vector<Status>& run_status,
                                        DegradationLevel level) {
  for (size_t i = 0; i < batch->size(); ++i) {
    Pending& pending = (*batch)[i];
    if (run_status[i].ok()) {
      PredictResponse response;
      response.shape = shapes[i];
      response.level = level;
      Respond(&pending, response);
    } else {
      // A run the featurizer rejects still gets a degraded answer.
      RespondPrior(&pending);
    }
  }
}

void ServingFrontend::RespondPrior(Pending* pending) {
  PredictResponse response;
  // PriorShape scores the group's reconstructed observation PMF (rebuilt
  // from its quantile sketch) against the shared log theta table, and
  // already substitutes the global-prior argmax for unknown groups — so
  // the answer is always a valid shape, still labeled kPrior so the
  // caller sees a degraded — but real — answer.
  response.shape = service_->PriorShape(pending->request.run->group_id);
  response.level = DegradationLevel::kPrior;
  Respond(pending, response);
}

void ServingFrontend::RespondShed(Pending* pending, ShedReason reason) {
  PredictResponse response;
  response.shed = reason;
  response.shape = -1;
  Respond(pending, std::move(response));
}

void ServingFrontend::Respond(Pending* pending, PredictResponse response) {
  response.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending->submitted)
          .count();
  if (response.served()) {
    served_total_[static_cast<size_t>(response.level)]->Increment();
  }
  latency_->Observe(response.latency_seconds);
  pending->promise.set_value(std::move(response));
}

}  // namespace serve
}  // namespace rvar
