#include "serve/frontend.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace rvar {
namespace serve {

ServingFrontend::ServingFrontend(const core::ShapeService* service,
                                 const core::VariationPredictor* predictor,
                                 FrontendOptions options)
    : service_(service),
      predictor_(predictor),
      options_(std::move(options)),
      admission_(options_.admission),
      breaker_(options_.breaker) {
  obs::Registry& registry = obs::Registry::Default();
  requests_total_ = registry.GetCounter("serve_requests_total");
  served_total_.reserve(kNumDegradationLevels);
  for (int level = 0; level < kNumDegradationLevels; ++level) {
    served_total_.push_back(registry.GetCounter(
        "serve_served_total", "level",
        DegradationLevelName(static_cast<DegradationLevel>(level))));
  }
  shed_total_.reserve(kNumShedReasons);
  for (int reason = 0; reason < kNumShedReasons; ++reason) {
    shed_total_.push_back(
        registry.GetCounter("serve_shed_total", "reason",
                            ShedReasonName(static_cast<ShedReason>(reason))));
  }
  latency_ = registry.GetHistogram("serve_request_latency_seconds");
  queue_wait_ = registry.GetHistogram("serve_queue_wait_seconds");
  batch_size_ = registry.GetHistogram("serve_batch_size");
  depth_gauge_ = registry.GetGauge("serve_queue_depth");

  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Result<std::unique_ptr<ServingFrontend>> ServingFrontend::Make(
    const core::ShapeService* service,
    const core::VariationPredictor* predictor, FrontendOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("null shape service");
  }
  RVAR_RETURN_NOT_OK(AdmissionController::ValidateOptions(options.admission));
  RVAR_RETURN_NOT_OK(CircuitBreaker::ValidateOptions(options.breaker));
  if (options.max_batch < 1) {
    return Status::InvalidArgument(
        StrCat("max_batch must be >= 1, got ", options.max_batch));
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument(
        StrCat("num_workers must be >= 1, got ", options.num_workers));
  }
  if (options.batch_linger.count() < 0) {
    return Status::InvalidArgument("batch_linger must be >= 0");
  }
  if (options.default_deadline.count() <= 0) {
    return Status::InvalidArgument("default_deadline must be > 0");
  }
  return std::unique_ptr<ServingFrontend>(
      new ServingFrontend(service, predictor, std::move(options)));
}

ServingFrontend::~ServingFrontend() { Shutdown(); }

std::function<bool()> ServingFrontend::LifecycleHealthProbe(
    const core::ModelLifecycle* lifecycle) {
  RVAR_CHECK(lifecycle != nullptr);
  return [lifecycle] { return lifecycle->live_version() >= 0; };
}

std::future<PredictResponse> ServingFrontend::Submit(PredictRequest request) {
  const auto now = std::chrono::steady_clock::now();
  requests_total_->Increment();

  Pending pending;
  pending.submitted = now;
  std::future<PredictResponse> future = pending.promise.get_future();

  if (request.run == nullptr) {
    shed_total_[static_cast<size_t>(ShedReason::kInvalid)]->Increment();
    RespondShed(&pending, ShedReason::kInvalid);
    return future;
  }
  if (request.deadline == std::chrono::steady_clock::time_point{}) {
    request.deadline = now + options_.default_deadline;
  }
  pending.request = request;

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      lock.unlock();
      shed_total_[static_cast<size_t>(ShedReason::kShutdown)]->Increment();
      RespondShed(&pending, ShedReason::kShutdown);
      return future;
    }
    // Admission under the queue lock: the depth the decision saw is the
    // depth the enqueue extends, so watermarks are exact, not racy.
    const ShedReason verdict =
        admission_.Admit(request.priority, queue_.size(), now);
    if (verdict != ShedReason::kNone) {
      lock.unlock();
      // The admission controller already counted this shed.
      RespondShed(&pending, verdict);
      return future;
    }
    queue_.push_back(std::move(pending));
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

PredictResponse ServingFrontend::Predict(
    const sim::JobRun& run, Priority priority,
    std::chrono::steady_clock::duration budget) {
  PredictRequest request;
  request.run = &run;
  request.priority = priority;
  request.deadline = std::chrono::steady_clock::now() + budget;
  return Submit(request).get();
}

void ServingFrontend::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Anything still queued (workers shed on drain, but be exhaustive).
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    depth_gauge_->Set(0.0);
  }
  for (Pending& pending : leftover) {
    shed_total_[static_cast<size_t>(ShedReason::kShutdown)]->Increment();
    RespondShed(&pending, ShedReason::kShutdown);
  }
}

size_t ServingFrontend::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

BreakerState ServingFrontend::breaker_state() const {
  return breaker_.state();
}

void ServingFrontend::WorkerLoop() {
  std::vector<Pending> batch;
  while (PopBatch(&batch)) {
    ServeBatch(&batch);
    batch.clear();
  }
}

bool ServingFrontend::PopBatch(std::vector<Pending>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stopping and drained
  const size_t max_batch = static_cast<size_t>(options_.max_batch);
  if (!stop_ && options_.batch_linger.count() > 0 &&
      queue_.size() < max_batch) {
    // Linger briefly so light traffic still amortizes inference; under
    // overload the queue is already >= max_batch and this never waits.
    const auto linger_until =
        std::chrono::steady_clock::now() + options_.batch_linger;
    cv_.wait_until(lock, linger_until, [this, max_batch] {
      return stop_ || queue_.size() >= max_batch;
    });
  }
  const size_t take = std::min(queue_.size(), max_batch);
  batch->reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  depth_gauge_->Set(static_cast<double>(queue_.size()));
  if (stop_ && !queue_.empty()) cv_.notify_one();  // let peers drain too
  return true;
}

void ServingFrontend::ServeBatch(std::vector<Pending>* batch) {
  obs::ScopedSpan span("serve/batch");
  batch_size_->Observe(static_cast<double>(batch->size()));
  const auto now = std::chrono::steady_clock::now();
  for (Pending& pending : *batch) {
    queue_wait_->Observe(
        std::chrono::duration<double>(now - pending.submitted).count());
  }

  bool stopping;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping = stop_;
  }

  // Deadline pass: expired (or shutdown-drained) requests are shed with a
  // labeled response — never served late, never silently dropped.
  std::vector<Pending> live;
  live.reserve(batch->size());
  for (Pending& pending : *batch) {
    if (stopping) {
      shed_total_[static_cast<size_t>(ShedReason::kShutdown)]->Increment();
      RespondShed(&pending, ShedReason::kShutdown);
    } else if (now >= pending.request.deadline) {
      shed_total_[static_cast<size_t>(ShedReason::kDeadline)]->Increment();
      RespondShed(&pending, ShedReason::kDeadline);
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  // Rung 1: the live model epoch published on the ShapeService (the slot
  // the model lifecycle feeds). Unavailable or probe-failed epochs count
  // as breaker failures so recovery goes through the half-open probe.
  std::shared_ptr<const ml::GbdtClassifier> live_model =
      service_->ModelSnapshot();
  const bool healthy =
      predictor_ != nullptr && live_model != nullptr &&
      (options_.health_probe == nullptr || options_.health_probe());
  if (healthy) {
    if (breaker_.AllowRequest(now)) {
      if (TryServeWithModel(*live_model, &live,
                            DegradationLevel::kFullModel)) {
        breaker_.RecordSuccess();
        std::lock_guard<std::mutex> lock(stale_mu_);
        stale_ = std::move(live_model);
        return;
      }
      breaker_.RecordFailure(now);
    }
  } else {
    breaker_.RecordFailure(now);
  }

  // Rung 2: the pinned last-known-good epoch.
  std::shared_ptr<const ml::GbdtClassifier> stale;
  {
    std::lock_guard<std::mutex> lock(stale_mu_);
    stale = stale_;
  }
  if (predictor_ != nullptr && stale != nullptr &&
      TryServeWithModel(*stale, &live, DegradationLevel::kStaleModel)) {
    return;
  }

  // Rung 3: the tracker posterior (uniform prior for unknown groups).
  for (Pending& pending : live) RespondPrior(&pending);
}

bool ServingFrontend::TryServeWithModel(const ml::GbdtClassifier& model,
                                        std::vector<Pending>* batch,
                                        DegradationLevel level) {
  std::vector<const sim::JobRun*> runs;
  runs.reserve(batch->size());
  for (const Pending& pending : *batch) runs.push_back(pending.request.run);
  std::vector<int> shapes;
  std::vector<Status> run_status;
  if (!predictor_->PredictShapeBatchInto(model, runs, &shapes, &run_status)
           .ok()) {
    return false;  // batch-level incompatibility: next rung serves everyone
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    Pending& pending = (*batch)[i];
    if (run_status[i].ok()) {
      PredictResponse response;
      response.shape = shapes[i];
      response.level = level;
      Respond(&pending, response);
    } else {
      // A run the featurizer rejects still gets a degraded answer.
      RespondPrior(&pending);
    }
  }
  return true;
}

void ServingFrontend::RespondPrior(Pending* pending) {
  PredictResponse response;
  // MostLikely is the posterior argmax; -1 for never-observed groups,
  // where even the prior carries no information.
  response.shape = service_->MostLikely(pending->request.run->group_id);
  response.level = DegradationLevel::kPrior;
  Respond(pending, response);
}

void ServingFrontend::RespondShed(Pending* pending, ShedReason reason) {
  PredictResponse response;
  response.shed = reason;
  response.shape = -1;
  Respond(pending, std::move(response));
}

void ServingFrontend::Respond(Pending* pending, PredictResponse response) {
  response.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending->submitted)
          .count();
  if (response.served()) {
    served_total_[static_cast<size_t>(response.level)]->Increment();
  }
  latency_->Observe(response.latency_seconds);
  pending->promise.set_value(std::move(response));
}

}  // namespace serve
}  // namespace rvar
