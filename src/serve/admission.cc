#include "serve/admission.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace rvar {
namespace serve {

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kStandard:
      return "standard";
    case Priority::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFullModel:
      return "full-model";
    case DegradationLevel::kStaleModel:
      return "stale-model";
    case DegradationLevel::kPrior:
      return "prior";
  }
  return "unknown";
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue-full";
    case ShedReason::kWatermark:
      return "watermark";
    case ShedReason::kTokens:
      return "tokens";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kShutdown:
      return "shutdown";
    case ShedReason::kInvalid:
      return "invalid";
  }
  return "unknown";
}

TokenBucket::TokenBucket(TokenBucketOptions options)
    : options_(options), tokens_(options.burst) {}

void TokenBucket::RefillLocked(
    std::chrono::steady_clock::time_point now) const {
  if (!primed_) {
    last_ = now;
    primed_ = true;
    return;
  }
  const double elapsed = std::chrono::duration<double>(now - last_).count();
  if (elapsed <= 0.0) return;  // stale or equal timestamp: refill nothing
  tokens_ = std::min(options_.burst,
                     tokens_ + elapsed * options_.rate_per_second);
  last_ = now;
}

bool TokenBucket::TryAcquire(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::AvailableAt(
    std::chrono::steady_clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now);
  return tokens_;
}

AdmissionOptions AdmissionOptions::ShardSlice(int num_shards) const {
  RVAR_CHECK(num_shards >= 1);
  const size_t shards = static_cast<size_t>(num_shards);
  auto split = [shards](size_t total) { return (total + shards - 1) / shards; };
  AdmissionOptions slice = *this;
  slice.queue_capacity = split(queue_capacity);
  // Watermarks split the same way, then clamp into the sliced capacity so
  // the slice always validates (a watermark of 0 stays 0: "shed always"
  // survives slicing).
  slice.best_effort_watermark =
      std::min(split(best_effort_watermark), slice.queue_capacity);
  slice.standard_watermark =
      std::min(split(standard_watermark), slice.queue_capacity);
  if (slice.best_effort_watermark > slice.standard_watermark) {
    slice.best_effort_watermark = slice.standard_watermark;
  }
  // The buckets refill independently, so dividing the rate keeps the
  // aggregate admission rate at the configured total. Burst never drops
  // below one token or TryAcquire could not admit anything.
  slice.bucket.rate_per_second =
      bucket.rate_per_second / static_cast<double>(shards);
  slice.bucket.burst =
      std::max(1.0, bucket.burst / static_cast<double>(shards));
  return slice;
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options), bucket_(options.bucket) {
  RVAR_CHECK(ValidateOptions(options_).ok());
  obs::Registry& registry = obs::Registry::Default();
  admitted_total_.reserve(kNumPriorities);
  for (int p = 0; p < kNumPriorities; ++p) {
    admitted_total_.push_back(
        registry.GetCounter("serve_admitted_total", "priority",
                            PriorityName(static_cast<Priority>(p))));
  }
  shed_total_.reserve(kNumShedReasons);
  for (int r = 0; r < kNumShedReasons; ++r) {
    shed_total_.push_back(
        registry.GetCounter("serve_shed_total", "reason",
                            ShedReasonName(static_cast<ShedReason>(r))));
  }
}

Status AdmissionController::ValidateOptions(const AdmissionOptions& options) {
  if (!(options.bucket.rate_per_second > 0.0)) {
    return Status::InvalidArgument(
        StrCat("token bucket rate_per_second must be > 0, got ",
               options.bucket.rate_per_second));
  }
  if (!(options.bucket.burst >= 1.0)) {
    return Status::InvalidArgument(
        StrCat("token bucket burst must be >= 1, got ",
               options.bucket.burst));
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.best_effort_watermark > options.standard_watermark) {
    return Status::InvalidArgument(
        StrCat("best_effort_watermark (", options.best_effort_watermark,
               ") must be <= standard_watermark (",
               options.standard_watermark, ")"));
  }
  if (options.standard_watermark > options.queue_capacity) {
    return Status::InvalidArgument(
        StrCat("standard_watermark (", options.standard_watermark,
               ") must be <= queue_capacity (", options.queue_capacity,
               ")"));
  }
  return Status::OK();
}

ShedReason AdmissionController::Admit(
    Priority priority, size_t queue_depth,
    std::chrono::steady_clock::time_point now) {
  ShedReason verdict = ShedReason::kNone;
  if (queue_depth >= options_.queue_capacity) {
    verdict = ShedReason::kQueueFull;
  } else if (priority == Priority::kBestEffort &&
             queue_depth >= options_.best_effort_watermark) {
    verdict = ShedReason::kWatermark;
  } else if (priority == Priority::kStandard &&
             queue_depth >= options_.standard_watermark) {
    verdict = ShedReason::kWatermark;
  } else if (priority != Priority::kInteractive && !bucket_.TryAcquire(now)) {
    // Interactive traffic never pays tokens: the bucket's purpose is to
    // cap the lower tiers so interactive headroom survives a spike.
    verdict = ShedReason::kTokens;
  }
  if (verdict == ShedReason::kNone) {
    admitted_total_[static_cast<size_t>(priority)]->Increment();
  } else {
    shed_total_[static_cast<size_t>(verdict)]->Increment();
  }
  return verdict;
}

}  // namespace serve
}  // namespace rvar
