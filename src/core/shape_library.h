// Copyright 2026 The rvar Authors.
//
// The shape library (Section 4.2): canonical runtime-distribution shapes
// discovered by clustering the smoothed PMFs of high-support job groups in
// the historic dataset (D1). Each shape carries the Table 2 statistics
// (outlier probability, 25-75th gap, 95th percentile, stddev), computed
// from the raw pooled normalized runtimes of its member groups. Clusters
// are relabeled in increasing 25-75th-gap order, matching the paper's
// ranking.

#ifndef RVAR_CORE_SHAPE_LIBRARY_H_
#define RVAR_CORE_SHAPE_LIBRARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/normalization.h"
#include "ml/kmeans.h"

namespace rvar {
namespace core {

/// \brief Knobs for shape discovery.
struct ShapeLibraryConfig {
  Normalization normalization = Normalization::kRatio;
  int num_bins = 200;
  /// Moving-average half-width applied to group PMFs before clustering
  /// (Section 4.2's smoothing step); 0 disables.
  int smoothing_radius = 3;
  /// Minimum runs per group to enter the clustering (the paper uses 20).
  int min_support = 20;
  int num_clusters = 8;
  ml::KMeansConfig kmeans;  ///< k is overridden by num_clusters
  /// Summarize per-group observations with a mergeable KLL quantile sketch
  /// instead of retaining every raw sample (DESIGN.md §15). Bounds Build's
  /// per-group state at ~2 KB; Table 2 quantiles then carry the sketch's
  /// rank-error bound instead of being exact. `false` restores the dense
  /// raw-sample path.
  bool use_sketches = true;
  /// Sketch accuracy knob (top-level capacity); larger = more accurate and
  /// more memory. Must lie in [KllSketch::kMinK, KllSketch::kMaxK].
  int sketch_k = 200;
};

/// \brief One Table 2 row.
struct ShapeStats {
  double outlier_probability = 0.0;  ///< P(normalized >= outlier threshold)
  double iqr = 0.0;                  ///< 75th - 25th percentile
  double p95 = 0.0;
  double stddev = 0.0;
  int64_t num_samples = 0;
  int num_groups = 0;
};

/// \brief The discovered canonical shapes.
class ShapeLibrary {
 public:
  /// Clusters the group PMFs of `reference` (typically D1). Fails if fewer
  /// qualifying groups than clusters, or on invalid config. Degenerate
  /// groups — unknown/non-finite/non-positive median, or fewer than
  /// min_support finite observations — are skipped rather than failing the
  /// whole build; num_skipped_groups() reports how many.
  static Result<ShapeLibrary> Build(const sim::TelemetryStore& reference,
                                    const GroupMedians& medians,
                                    const ShapeLibraryConfig& config);

  /// Reassembles a library from persisted parts (io/serialize.h). Every
  /// invariant Build guarantees is re-validated — PMF lengths match the
  /// grid, values are finite, assignments point at real clusters — so a
  /// decoded-from-hostile-bytes library either equals a built one or the
  /// load fails with InvalidArgument; it never produces a library that
  /// crashes later.
  static Result<ShapeLibrary> Restore(
      const ShapeLibraryConfig& config,
      std::vector<std::vector<double>> shapes, std::vector<ShapeStats> stats,
      std::vector<int> reference_groups,
      std::unordered_map<int, int> reference_assignment, double inertia,
      int num_skipped_groups);

  const ShapeLibraryConfig& config() const { return config_; }
  Normalization normalization() const { return config_.normalization; }
  const BinGrid& grid() const { return grid_; }
  int num_clusters() const { return static_cast<int>(shapes_.size()); }

  /// Canonical PMF of cluster `k` (length num_bins, sums to 1).
  const std::vector<double>& shape(int k) const;

  /// Raw-sample statistics of cluster `k` (the Table 2 row).
  const ShapeStats& stats(int k) const;

  /// Cluster assigned (by k-means) to a reference group, or -1 if the
  /// group did not qualify.
  int ReferenceAssignment(int group_id) const;

  /// Groups that entered the clustering.
  const std::vector<int>& reference_groups() const {
    return reference_groups_;
  }

  /// Qualifying groups rejected as degenerate during Build.
  int num_skipped_groups() const { return num_skipped_groups_; }

  /// K-means inertia of the final clustering.
  double inertia() const { return inertia_; }

  /// The smoothed, normalized PMF of an arbitrary observation vector on
  /// this library's grid — the representation clustering and assignment
  /// operate on.
  std::vector<double> ObservationPmf(
      const std::vector<double>& normalized_runtimes) const;

  /// ObservationPmf without the per-call allocations: `pmf` is resized to
  /// the grid and overwritten (capacity is reused across calls), and the
  /// smoothing half-width is explicit instead of taken from the config.
  /// Returns the number of observations binned (NaN skipped, ±inf clipped
  /// into the outlier bins); the PMF is all-zero when that is 0. With
  /// `radius == config().smoothing_radius` the result is bit-identical to
  /// ObservationPmf.
  int64_t ObservationPmfInto(const std::vector<double>& normalized_runtimes,
                             int radius, std::vector<double>* pmf) const;

  /// Turns per-bin observation *counts* (e.g. KllSketch::BinCountsInto
  /// output) into the smoothed, normalized observation PMF, in place.
  /// Applying this to a dense Histogram's counts reproduces
  /// ObservationPmf bit-for-bit.
  static void FinishObservationPmfInPlace(std::vector<double>* counts,
                                          int radius);

 private:
  ShapeLibrary() : grid_(CanonicalGrid(Normalization::kRatio)) {}

  ShapeLibraryConfig config_;
  BinGrid grid_;
  std::vector<std::vector<double>> shapes_;  ///< [cluster][bin]
  std::vector<ShapeStats> stats_;
  std::vector<int> reference_groups_;
  std::unordered_map<int, int> reference_assignment_;
  double inertia_ = 0.0;
  int num_skipped_groups_ = 0;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_SHAPE_LIBRARY_H_
