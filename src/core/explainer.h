// Copyright 2026 The rvar Authors.
//
// Model explanation (Section 6): Shapley values of the trained shape
// predictor, aggregated into the Figure 9 views — per-feature SHAP value
// distributions for a target shape, and the feature-value-vs-SHAP trend
// (e.g. "jobs with large input reads push toward Cluster 6").

#ifndef RVAR_CORE_EXPLAINER_H_
#define RVAR_CORE_EXPLAINER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/predictor.h"
#include "ml/shap.h"

namespace rvar {
namespace core {

/// \brief SHAP values of one run, mapped back to full feature names.
struct RunExplanation {
  int group_id = 0;
  /// phi[k][f] in raw-score space, f indexes the FULL feature list
  /// (dropped features get 0).
  std::vector<std::vector<double>> phi;
  std::vector<double> feature_values;  ///< full feature vector
};

/// \brief Feature-level summary for one target shape.
struct FeatureShapSummary {
  std::string feature;
  double mean_abs_shap = 0.0;
  /// Pearson correlation between the feature's value and its SHAP value
  /// for the target shape — the direction of Figure 9's trend.
  double value_shap_correlation = 0.0;
  /// Mean SHAP among runs in the lowest / highest feature-value terciles.
  double mean_shap_low_value = 0.0;
  double mean_shap_high_value = 0.0;
};

/// \brief Computes and aggregates SHAP explanations of a trained predictor.
class Explainer {
 public:
  /// \param predictor must outlive the explainer.
  explicit Explainer(const VariationPredictor* predictor);

  /// Exact TreeSHAP for one run (raw-score space, per shape).
  Result<RunExplanation> Explain(const sim::JobRun& run) const;

  /// Explains up to `max_runs` runs of a slice (uniform stride sampling).
  Result<std::vector<RunExplanation>> ExplainSlice(
      const sim::TelemetryStore& slice, int max_runs) const;

  /// Per-feature summaries for shape `k`, sorted by mean |SHAP| descending.
  Result<std::vector<FeatureShapSummary>> SummarizeForShape(
      const std::vector<RunExplanation>& explanations, int k) const;

 private:
  const VariationPredictor* predictor_;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_EXPLAINER_H_
