#include "core/baseline.h"

#include <cmath>

#include "common/strings.h"

namespace rvar {
namespace core {

Result<std::unique_ptr<RegressionBaseline>> RegressionBaseline::Train(
    const sim::StudySuite& suite, const VariationPredictor& predictor,
    ml::ForestConfig config) {
  auto baseline =
      std::unique_ptr<RegressionBaseline>(new RegressionBaseline());
  baseline->featurizer_ = &predictor.featurizer();
  RVAR_ASSIGN_OR_RETURN(
      ml::Dataset train,
      baseline->featurizer_->BuildRegressionDataset(suite.d2.telemetry));
  if (train.NumRows() == 0) {
    return Status::FailedPrecondition("no training rows for baseline");
  }
  // Log targets: runtimes span orders of magnitude.
  for (double& t : train.target) t = std::log(std::max(t, 1e-3));
  baseline->forest_ =
      std::make_unique<ml::RandomForestRegressor>(config);
  RVAR_RETURN_NOT_OK(baseline->forest_->Fit(train));
  return baseline;
}

Result<double> RegressionBaseline::PredictRuntime(
    const sim::JobRun& run) const {
  RVAR_ASSIGN_OR_RETURN(std::vector<double> x,
                        featurizer_->FeaturesFor(run));
  return std::exp(forest_->Predict(x));
}

double ReconstructionComparison::KsReductionPercent() const {
  if (regression_ks <= 0.0) return 0.0;
  return 100.0 * (regression_ks - proposed_ks) / regression_ks;
}

Result<ReconstructionComparison> CompareReconstruction(
    const sim::TelemetryStore& test_slice,
    const VariationPredictor& predictor, const RegressionBaseline& baseline,
    Rng* rng, int num_quantiles) {
  RVAR_CHECK(rng != nullptr);
  const Normalization norm =
      predictor.shapes().normalization();
  std::vector<double> actual, from_regression, from_proposed;
  for (const sim::JobRun& run : test_slice.runs()) {
    if (!predictor.medians().Has(run.group_id)) continue;
    RVAR_ASSIGN_OR_RETURN(double median,
                          predictor.medians().Of(run.group_id));
    if (norm == Normalization::kRatio && median <= 0.0) continue;

    actual.push_back(
        NormalizeRuntime(norm, run.runtime_seconds, median));

    RVAR_ASSIGN_OR_RETURN(double predicted_runtime,
                          baseline.PredictRuntime(run));
    from_regression.push_back(
        NormalizeRuntime(norm, predicted_runtime, median));

    RVAR_ASSIGN_OR_RETURN(int shape, predictor.PredictShape(run));
    const std::vector<double> draw =
        predictor.SampleNormalized(shape, 1, rng);
    // A zero-mass shape cannot be sampled; fall back to the median point.
    from_proposed.push_back(draw.empty() ? (norm == Normalization::kRatio
                                                ? 1.0
                                                : 0.0)
                                         : draw[0]);
  }
  if (actual.empty()) {
    return Status::FailedPrecondition(
        "no test runs with known historic medians");
  }

  ReconstructionComparison cmp;
  cmp.num_runs = static_cast<int>(actual.size());
  cmp.regression_qq = QqSeries(actual, from_regression, num_quantiles);
  cmp.proposed_qq = QqSeries(actual, from_proposed, num_quantiles);
  cmp.regression_qq_mae =
      QqMeanAbsoluteError(actual, from_regression, num_quantiles);
  cmp.proposed_qq_mae =
      QqMeanAbsoluteError(actual, from_proposed, num_quantiles);
  cmp.regression_ks = KsDistance(actual, from_regression);
  cmp.proposed_ks = KsDistance(actual, from_proposed);
  return cmp;
}

}  // namespace core
}  // namespace rvar
