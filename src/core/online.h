// Copyright 2026 The rvar Authors.
//
// Online (incremental) shape tracking. The posterior log-likelihood of
// Section 5.2 factorizes over observations, so a group's cluster
// membership can be maintained as a running sum — one bin lookup per new
// run — which turns the assigner into a streaming drift detector: as soon
// as recent runs stop looking like the group's historic shape, the
// posterior flips.

#ifndef RVAR_CORE_ONLINE_H_
#define RVAR_CORE_ONLINE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/assigner.h"

namespace rvar {
namespace core {

/// \brief Streaming posterior over canonical shapes for one job group.
///
/// Maintains per-cluster log-likelihood sums with optional exponential
/// decay, so old observations fade and the tracker follows the *current*
/// behavior of the group.
class OnlineShapeTracker {
 public:
  /// \param library must outlive the tracker.
  /// \param decay per-observation multiplier on past log-likelihood mass
  ///        in (0, 1]; 1 = never forget, 0.99 ≈ a ~100-run memory.
  /// \param pmf_floor probability floor before taking logs.
  static Result<OnlineShapeTracker> Make(const ShapeLibrary* library,
                                         double decay = 1.0,
                                         double pmf_floor = 1e-6);

  /// Make with a prebuilt, shared log table (one ~13 KB ClusterLogPmf can
  /// serve millions of trackers; the per-tracker state is then just the k
  /// running sums). The table must have been built from `library`.
  static Result<OnlineShapeTracker> Make(
      const ShapeLibrary* library,
      std::shared_ptr<const ClusterLogPmf> log_pmf, double decay = 1.0);

  /// Incorporates one normalized runtime observation. Non-finite inputs
  /// degrade gracefully instead of poisoning the sums: NaN is ignored,
  /// ±inf is clamped to the nearest grid edge; both are tallied in
  /// num_clamped().
  void Observe(double normalized_runtime);

  /// Number of observations incorporated (undiscounted count).
  int64_t count() const { return count_; }

  /// Non-finite observations seen so far (NaN dropped, ±inf clamped).
  int64_t num_clamped() const { return num_clamped_; }

  /// Most likely cluster so far; -1 before any observation.
  int MostLikely() const;

  /// Posterior probabilities over clusters (uniform prior). Uniform
  /// before any observation.
  std::vector<double> Posterior() const;

  /// log-likelihood sums per cluster (the discounted Eq. 3 sums).
  const std::vector<double>& log_likelihood() const { return ll_; }

  /// Posterior probability that the group is still in `cluster` — a
  /// drift score: low values mean recent runs look like another shape.
  double ProbabilityOf(int cluster) const;

  /// Forgets everything.
  void Reset();

  double decay() const { return decay_; }
  double pmf_floor() const { return log_pmf_->pmf_floor(); }

  /// Reinstalls checkpointed sums (io/recovery.h): the discounted
  /// log-likelihoods plus the observation counters. Validates sizes and
  /// finiteness so a corrupt snapshot cannot poison the posterior.
  Status RestoreState(const std::vector<double>& log_likelihood,
                      int64_t count, int64_t num_clamped);

 private:
  OnlineShapeTracker(const ShapeLibrary* library,
                     std::shared_ptr<const ClusterLogPmf> log_pmf,
                     double decay);

  const ShapeLibrary* library_;
  double decay_;
  /// Shared immutable log theta table — NOT per-tracker state.
  std::shared_ptr<const ClusterLogPmf> log_pmf_;
  std::vector<double> ll_;
  int64_t count_ = 0;
  int64_t num_clamped_ = 0;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_ONLINE_H_
