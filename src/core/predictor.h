// Copyright 2026 The rvar Authors.
//
// The paper's 2-step variation predictor (Section 5): (1) canonical shapes
// are discovered on the historic dataset and every job group is labeled
// with its most-likely shape via posterior likelihood; (2) a multiclass
// GBDT learns to predict the shape from compile/submit-time features.
// Includes the evaluation protocol of Figure 7 (confusion matrix, accuracy
// vs. historic occurrences).

#ifndef RVAR_CORE_PREDICTOR_H_
#define RVAR_CORE_PREDICTOR_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/assigner.h"
#include "core/featurizer.h"
#include "core/shape_library.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"

namespace rvar {
namespace core {

/// \brief End-to-end training knobs.
struct PredictorConfig {
  ShapeLibraryConfig shape;
  ml::GbdtConfig gbdt;
  /// Drop highly correlated features before fitting (the paper's
  /// importance-guided passive-aggressive selection).
  bool apply_feature_selection = true;
  double max_abs_correlation = 0.98;
  /// Groups need this many observations in a slice to receive a label.
  int min_label_support = 3;
  /// Probability floor for posterior likelihoods.
  double pmf_floor = 1e-6;
};

/// \brief Figure 7's evaluation artifacts.
struct PredictorEvaluation {
  double accuracy = 0.0;
  ml::ConfusionMatrix confusion;
  /// Accuracy bucketed by the group's number of historic occurrences.
  struct SupportBucket {
    int lo = 0, hi = 0;  ///< inclusive occurrence range
    int num_groups = 0;
    int num_runs = 0;
    double accuracy = 0.0;
  };
  std::vector<SupportBucket> by_support;
};

/// \brief Reusable buffers for the scratch-based prediction overloads.
/// Hot batch loops keep one instance per thread and reuse it across rows,
/// so projection and softmax scoring allocate nothing in steady state.
struct PredictScratch {
  std::vector<double> projected;
  std::vector<double> proba;
};

/// \brief The trained 2-step model.
class VariationPredictor {
 public:
  /// Trains on a study suite: shapes from D1, labels and classifier from
  /// D2. Fails if D1 lacks qualifying groups or D2 yields fewer than two
  /// distinct labels.
  static Result<std::unique_ptr<VariationPredictor>> Train(
      const sim::StudySuite& suite, PredictorConfig config);

  const PredictorConfig& config() const { return config_; }
  const ShapeLibrary& shapes() const { return *shapes_; }
  const Featurizer& featurizer() const { return *featurizer_; }
  const PosteriorAssigner& assigner() const { return *assigner_; }
  /// The current classifier. Stable only while no concurrent SwapModel;
  /// threaded readers take ModelSnapshot() instead.
  const ml::GbdtClassifier& model() const { return *model_; }
  const GroupMedians& medians() const { return medians_; }

  /// Atomically replaces the classifier epoch (RCU-style): the pointer
  /// copy happens under a micro-mutex, in-flight batches finish on the
  /// snapshot they took, and the displaced model is released outside the
  /// lock. The replacement must be fitted and shape-compatible (same
  /// class count as the shape library, same feature count as the kept
  /// projection); InvalidArgument otherwise, with serving untouched.
  Status SwapModel(std::shared_ptr<const ml::GbdtClassifier> model);

  /// The classifier epoch readers hold across a whole batch; never blocks
  /// on more than the pointer copy.
  std::shared_ptr<const ml::GbdtClassifier> ModelSnapshot() const;

  /// Feature indices (into the featurizer's full vector) kept after
  /// selection; identity when selection is disabled.
  const std::vector<size_t>& kept_features() const { return kept_; }

  /// Importance of each *full* feature (zero for dropped ones).
  std::vector<double> FullFeatureImportance() const;

  /// Labels every group of `slice` with >= min_support runs by posterior
  /// likelihood (the ground-truth protocol).
  Result<std::unordered_map<int, int>> LabelGroups(
      const sim::TelemetryStore& slice, int min_support) const;

  /// Predicted shape for one run.
  Result<int> PredictShape(const sim::JobRun& run) const;

  /// Predicted shapes for a batch of runs, in order. Runs are featurized
  /// and scored in parallel (common/parallel.h); the result is identical
  /// to a serial PredictShape loop at any thread count.
  Result<std::vector<int>> PredictShapeBatch(
      const std::vector<const sim::JobRun*>& runs) const;

  /// Epoch-pinned batch variant for serving: scores every run against
  /// `model` (a snapshot the caller pinned, possibly a stale epoch the
  /// predictor no longer holds) and reports per-run outcomes instead of
  /// folding them into one batch error. Returns non-OK only for
  /// batch-level incompatibility (model/shape-library class-count or
  /// feature-count mismatch), in which case no output is written. On OK,
  /// shapes[i] is the prediction (-1 when run_status[i] is non-OK, e.g. a
  /// featurization failure for that run alone).
  Status PredictShapeBatchInto(const ml::GbdtClassifier& model,
                               const std::vector<const sim::JobRun*>& runs,
                               std::vector<int>* shapes,
                               std::vector<Status>* run_status) const;

  /// Predicted shape probabilities from a FULL feature vector (the
  /// featurizer's layout; projection happens internally).
  Result<std::vector<double>> PredictProbaFromFeatures(
      const std::vector<double>& full_features) const;

  /// Allocation-free variant: probabilities land in scratch->proba.
  Status PredictProbaFromFeatures(const std::vector<double>& full_features,
                                  PredictScratch* scratch) const;

  /// Predicted shape from a FULL feature vector.
  Result<int> PredictFromFeatures(
      const std::vector<double>& full_features) const;

  /// Allocation-free variant reusing `scratch` across calls.
  Result<int> PredictFromFeatures(const std::vector<double>& full_features,
                                  PredictScratch* scratch) const;

  /// Epoch-pinned variant: scores against `model` (a snapshot the caller
  /// took once for the batch), so a concurrent SwapModel cannot split a
  /// batch across model versions.
  Result<int> PredictFromFeatures(const ml::GbdtClassifier& model,
                                  const std::vector<double>& full_features,
                                  PredictScratch* scratch) const;

  /// Figure 7 evaluation on a test slice.
  Result<PredictorEvaluation> Evaluate(
      const sim::TelemetryStore& test_slice) const;

  /// Draws `n` normalized-runtime samples from a shape's PMF.
  std::vector<double> SampleNormalized(int cluster, int n, Rng* rng) const;

  /// Number of historic runs backing a group in the training history.
  int HistorySupport(int group_id) const;

 private:
  VariationPredictor() = default;

  /// Projection + softmax scoring against an explicit model epoch.
  Status PredictProbaWithModel(const ml::GbdtClassifier& model,
                               const std::vector<double>& full_features,
                               PredictScratch* scratch) const;

  PredictorConfig config_;
  // Owned copies so the featurizer's pointers stay valid.
  std::vector<sim::JobGroupSpec> groups_;
  sim::SkuCatalog catalog_;
  GroupMedians medians_;
  std::unique_ptr<ShapeLibrary> shapes_;
  std::unique_ptr<PosteriorAssigner> assigner_;
  std::unique_ptr<Featurizer> featurizer_;
  /// Serving epoch: immutable once published; replaced whole by SwapModel.
  mutable std::mutex model_mu_;  ///< guards the pointer copy only
  std::shared_ptr<const ml::GbdtClassifier> model_;
  std::vector<size_t> kept_;
  std::unordered_map<int, int> history_support_;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_PREDICTOR_H_
