#include "core/shape_library.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/parallel.h"
#include "common/strings.h"
#include "stats/descriptive.h"
#include "stats/kll_sketch.h"

namespace rvar {
namespace core {

namespace {

Status ValidateConfig(const ShapeLibraryConfig& config) {
  if (config.num_clusters < 1) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (config.num_bins < 2) {
    return Status::InvalidArgument("num_bins must be >= 2");
  }
  if (config.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (config.smoothing_radius < 0) {
    return Status::InvalidArgument("smoothing_radius must be >= 0");
  }
  if (config.use_sketches &&
      (config.sketch_k < KllSketch::kMinK ||
       config.sketch_k > KllSketch::kMaxK)) {
    return Status::InvalidArgument(
        StrCat("sketch_k must be in [", KllSketch::kMinK, ", ",
               KllSketch::kMaxK, "], got ", config.sketch_k));
  }
  return Status::OK();
}

}  // namespace

Result<ShapeLibrary> ShapeLibrary::Build(
    const sim::TelemetryStore& reference, const GroupMedians& medians,
    const ShapeLibraryConfig& config) {
  RVAR_RETURN_NOT_OK(ValidateConfig(config));

  ShapeLibrary lib;
  lib.config_ = config;
  lib.grid_ = CanonicalGrid(config.normalization, config.num_bins);
  const double outlier_at = OutlierThreshold(config.normalization);

  // One smoothed PMF per qualifying group. Degenerate groups — no usable
  // median, or too few finite observations once corrupt values are
  // excluded — are skipped so one bad group cannot fail the whole build.
  const std::vector<int> candidates =
      reference.GroupsWithSupport(config.min_support);
  // Per-group normalization + PMF construction only reads the telemetry
  // store and medians, so candidates build concurrently into indexed slots;
  // the compaction below walks them in candidate order, preserving the
  // serial group ordering and skip counts.
  struct BuiltGroup {
    bool usable = false;
    std::vector<double> pmf;
    std::vector<double> finite;       // dense mode: raw normalized runtimes
    std::optional<KllSketch> sketch;  // sketch mode: bounded summary
    RunningStats moments;             // sketch mode: exact moment sums
    int64_t outliers = 0;             // sketch mode: count >= threshold
  };
  std::vector<BuiltGroup> built(candidates.size());
  ParallelFor(candidates.size(), /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t g = begin; g < end; ++g) {
      Result<std::vector<double>> normalized = NormalizedGroupRuntimes(
          reference, candidates[g], medians, config.normalization);
      if (!normalized.ok()) continue;
      BuiltGroup& out = built[g];
      if (config.use_sketches) {
        // Stream every finite observation into bounded state instead of
        // retaining the raw vector: the sketch reconstructs the PMF and
        // the Table 2 quantiles, the moment accumulator keeps the stddev
        // exact, and the outlier tally is an exact counter.
        KllSketch sketch = *KllSketch::Make(config.sketch_k);
        for (double x : *normalized) {
          if (!std::isfinite(x)) continue;
          sketch.Update(x);
          out.moments.Add(x);
          out.outliers += (x >= outlier_at);
        }
        if (sketch.n() < config.min_support) continue;
        sketch.BinCountsInto(lib.grid_, &out.pmf);
        FinishObservationPmfInPlace(&out.pmf, config.smoothing_radius);
        out.sketch.emplace(std::move(sketch));
      } else {
        out.finite.reserve(normalized->size());
        for (double x : *normalized) {
          if (std::isfinite(x)) out.finite.push_back(x);
        }
        if (static_cast<int>(out.finite.size()) < config.min_support) {
          out.finite.clear();
          continue;
        }
        out.pmf = lib.ObservationPmf(out.finite);
      }
      out.usable = true;
    }
  });

  std::vector<int> groups;
  std::vector<std::vector<double>> pmfs;
  std::vector<std::vector<double>> raw;            // dense mode
  std::vector<std::optional<KllSketch>> sketches;  // sketch mode
  std::vector<RunningStats> moments;
  std::vector<int64_t> outlier_counts;
  groups.reserve(candidates.size());
  pmfs.reserve(candidates.size());
  for (size_t g = 0; g < candidates.size(); ++g) {
    if (!built[g].usable) {
      ++lib.num_skipped_groups_;
      continue;
    }
    groups.push_back(candidates[g]);
    pmfs.push_back(std::move(built[g].pmf));
    if (config.use_sketches) {
      sketches.push_back(std::move(built[g].sketch));
      moments.push_back(built[g].moments);
      outlier_counts.push_back(built[g].outliers);
    } else {
      raw.push_back(std::move(built[g].finite));
    }
  }
  if (static_cast<int>(groups.size()) < config.num_clusters) {
    return Status::FailedPrecondition(
        StrCat("only ", groups.size(), " usable groups with support >= ",
               config.min_support, " (", lib.num_skipped_groups_,
               " degenerate) but ", config.num_clusters,
               " clusters requested"));
  }

  // Cluster the PMFs.
  ml::KMeansConfig kconfig = config.kmeans;
  kconfig.k = config.num_clusters;
  RVAR_ASSIGN_OR_RETURN(ml::KMeansModel model, ml::KMeans(pmfs, kconfig));
  lib.inertia_ = model.inertia;

  // Pool member groups per cluster; compute Table 2 stats.
  const int k = config.num_clusters;
  struct Entry {
    std::vector<double> pmf;
    ShapeStats stats;
  };
  std::vector<Entry> entries(static_cast<size_t>(k));
  std::vector<int> group_count(static_cast<size_t>(k), 0);
  for (int c = 0; c < k; ++c) {
    // Renormalize the centroid (k-means means of PMFs already ~sum to 1).
    Entry& e = entries[static_cast<size_t>(c)];
    e.pmf = model.centroids[static_cast<size_t>(c)];
    double mass = std::accumulate(e.pmf.begin(), e.pmf.end(), 0.0);
    if (mass > 0.0) {
      for (double& v : e.pmf) v /= mass;
    }
  }

  if (config.use_sketches) {
    // Per-cluster aggregates: member sketches merge in ascending group
    // order, so the pooled quantiles are a deterministic function of the
    // cluster membership alone. Quantiles carry the sketch's rank-error
    // bound; sample count, outlier probability and stddev stay exact.
    std::vector<std::optional<KllSketch>> pooled(static_cast<size_t>(k));
    std::vector<RunningStats> pooled_moments(static_cast<size_t>(k));
    std::vector<int64_t> pooled_outliers(static_cast<size_t>(k), 0);
    for (size_t g = 0; g < groups.size(); ++g) {
      const size_t c = static_cast<size_t>(model.assignments[g]);
      if (!pooled[c].has_value()) {
        pooled[c].emplace(*KllSketch::Make(config.sketch_k));
      }
      RVAR_RETURN_NOT_OK(pooled[c]->Merge(*sketches[g]));
      pooled_moments[c].Merge(moments[g]);
      pooled_outliers[c] += outlier_counts[g];
      group_count[c]++;
    }
    for (int c = 0; c < k; ++c) {
      Entry& e = entries[static_cast<size_t>(c)];
      e.stats.num_groups = group_count[static_cast<size_t>(c)];
      const std::optional<KllSketch>& sk = pooled[static_cast<size_t>(c)];
      if (sk.has_value() && !sk->empty()) {
        e.stats.num_samples = sk->n();
        e.stats.outlier_probability =
            static_cast<double>(pooled_outliers[static_cast<size_t>(c)]) /
            static_cast<double>(sk->n());
        e.stats.iqr = sk->Quantile(0.75) - sk->Quantile(0.25);
        e.stats.p95 = sk->Quantile(0.95);
        e.stats.stddev = pooled_moments[static_cast<size_t>(c)].stddev();
      }
    }
  } else {
    std::vector<std::vector<double>> pooled(static_cast<size_t>(k));
    for (size_t g = 0; g < groups.size(); ++g) {
      const size_t c = static_cast<size_t>(model.assignments[g]);
      pooled[c].insert(pooled[c].end(), raw[g].begin(), raw[g].end());
      group_count[c]++;
    }
    for (int c = 0; c < k; ++c) {
      Entry& e = entries[static_cast<size_t>(c)];
      std::vector<double>& samples = pooled[static_cast<size_t>(c)];
      e.stats.num_samples = static_cast<int64_t>(samples.size());
      e.stats.num_groups = group_count[static_cast<size_t>(c)];
      if (!samples.empty()) {
        int64_t outliers = 0;
        for (double v : samples) outliers += (v >= outlier_at);
        e.stats.outlier_probability =
            static_cast<double>(outliers) /
            static_cast<double>(samples.size());
        std::sort(samples.begin(), samples.end());
        e.stats.iqr = QuantileSorted(samples, 0.75) -
                      QuantileSorted(samples, 0.25);
        e.stats.p95 = QuantileSorted(samples, 0.95);
        e.stats.stddev = StdDev(samples);
      }
    }
  }

  // Rank clusters by increasing 25-75th gap (the paper's ordering).
  std::vector<int> order(static_cast<size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return entries[static_cast<size_t>(a)].stats.iqr <
           entries[static_cast<size_t>(b)].stats.iqr;
  });
  std::vector<int> relabel(static_cast<size_t>(k));
  for (int new_id = 0; new_id < k; ++new_id) {
    relabel[static_cast<size_t>(order[static_cast<size_t>(new_id)])] = new_id;
  }

  lib.shapes_.resize(static_cast<size_t>(k));
  lib.stats_.resize(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    const int new_id = relabel[static_cast<size_t>(c)];
    lib.shapes_[static_cast<size_t>(new_id)] =
        std::move(entries[static_cast<size_t>(c)].pmf);
    lib.stats_[static_cast<size_t>(new_id)] =
        entries[static_cast<size_t>(c)].stats;
  }
  lib.reference_groups_ = groups;
  for (size_t g = 0; g < groups.size(); ++g) {
    lib.reference_assignment_[groups[g]] =
        relabel[static_cast<size_t>(model.assignments[g])];
  }
  return lib;
}

Result<ShapeLibrary> ShapeLibrary::Restore(
    const ShapeLibraryConfig& config,
    std::vector<std::vector<double>> shapes, std::vector<ShapeStats> stats,
    std::vector<int> reference_groups,
    std::unordered_map<int, int> reference_assignment, double inertia,
    int num_skipped_groups) {
  RVAR_RETURN_NOT_OK(ValidateConfig(config));
  const size_t k = static_cast<size_t>(config.num_clusters);
  if (shapes.size() != k || stats.size() != k) {
    return Status::InvalidArgument(
        StrCat("restore holds ", shapes.size(), " shapes and ", stats.size(),
               " stats rows for ", k, " clusters"));
  }
  for (size_t c = 0; c < k; ++c) {
    if (shapes[c].size() != static_cast<size_t>(config.num_bins)) {
      return Status::InvalidArgument(
          StrCat("cluster ", c, " PMF has ", shapes[c].size(),
                 " bins, grid has ", config.num_bins));
    }
    for (double v : shapes[c]) {
      if (!std::isfinite(v) || v < 0.0) {
        return Status::InvalidArgument(
            StrCat("cluster ", c, " PMF holds a non-finite or negative mass"));
      }
    }
    const ShapeStats& s = stats[c];
    if (!std::isfinite(s.outlier_probability) || !std::isfinite(s.iqr) ||
        !std::isfinite(s.p95) || !std::isfinite(s.stddev) ||
        s.num_samples < 0 || s.num_groups < 0) {
      return Status::InvalidArgument(
          StrCat("cluster ", c, " stats are corrupt"));
    }
  }
  if (!std::isfinite(inertia) || inertia < 0.0) {
    return Status::InvalidArgument("inertia must be finite and >= 0");
  }
  if (num_skipped_groups < 0) {
    return Status::InvalidArgument("num_skipped_groups must be >= 0");
  }
  for (const auto& [gid, cluster] : reference_assignment) {
    if (cluster < 0 || static_cast<size_t>(cluster) >= k) {
      return Status::InvalidArgument(
          StrCat("group ", gid, " assigned to unknown cluster ", cluster));
    }
  }

  ShapeLibrary lib;
  lib.config_ = config;
  lib.grid_ = CanonicalGrid(config.normalization, config.num_bins);
  lib.shapes_ = std::move(shapes);
  lib.stats_ = std::move(stats);
  lib.reference_groups_ = std::move(reference_groups);
  lib.reference_assignment_ = std::move(reference_assignment);
  lib.inertia_ = inertia;
  lib.num_skipped_groups_ = num_skipped_groups;
  return lib;
}

const std::vector<double>& ShapeLibrary::shape(int k) const {
  RVAR_CHECK(k >= 0 && static_cast<size_t>(k) < shapes_.size());
  return shapes_[static_cast<size_t>(k)];
}

const ShapeStats& ShapeLibrary::stats(int k) const {
  RVAR_CHECK(k >= 0 && static_cast<size_t>(k) < stats_.size());
  return stats_[static_cast<size_t>(k)];
}

int ShapeLibrary::ReferenceAssignment(int group_id) const {
  const auto it = reference_assignment_.find(group_id);
  return it == reference_assignment_.end() ? -1 : it->second;
}

std::vector<double> ShapeLibrary::ObservationPmf(
    const std::vector<double>& normalized_runtimes) const {
  std::vector<double> pmf;
  ObservationPmfInto(normalized_runtimes, config_.smoothing_radius, &pmf);
  return pmf;
}

int64_t ShapeLibrary::ObservationPmfInto(
    const std::vector<double>& normalized_runtimes, int radius,
    std::vector<double>* pmf) const {
  RVAR_CHECK(pmf != nullptr);
  // NaN carries no shape information and must not be counted as a
  // low-outlier observation; infinities clip to the outlier bins.
  pmf->assign(static_cast<size_t>(grid_.num_bins()), 0.0);
  int64_t binned = 0;
  for (double x : normalized_runtimes) {
    if (std::isnan(x)) continue;
    (*pmf)[static_cast<size_t>(grid_.BinIndex(x))] += 1.0;
    ++binned;
  }
  FinishObservationPmfInPlace(pmf, radius);
  return binned;
}

void ShapeLibrary::FinishObservationPmfInPlace(std::vector<double>* counts,
                                               int radius) {
  RVAR_CHECK(counts != nullptr);
  double total = 0.0;
  for (double v : *counts) total += v;
  if (total > 0.0) {
    const double inv = 1.0 / total;
    for (double& v : *counts) v *= inv;
  }
  SmoothPmfInPlace(counts, radius);
}

}  // namespace core
}  // namespace rvar
