#include "core/rebalance.h"

#include <algorithm>

#include "common/strings.h"

namespace rvar {
namespace core {

RebalanceModel::RebalanceModel(sim::SkuCatalog catalog,
                               std::vector<double> load,
                               double total_token_seconds)
    : catalog_(std::move(catalog)),
      load_(std::move(load)),
      total_token_seconds_(total_token_seconds) {}

Result<RebalanceModel> RebalanceModel::Estimate(
    const sim::TelemetryStore& window, const sim::SkuCatalog& catalog,
    double window_seconds) {
  if (window.NumRuns() == 0) {
    return Status::InvalidArgument("empty telemetry window");
  }
  if (window_seconds <= 0.0) {
    return Status::InvalidArgument("window_seconds must be positive");
  }
  const size_t num_skus = catalog.NumSkus();
  std::vector<double> token_seconds(num_skus, 0.0);
  double total = 0.0;
  for (const sim::JobRun& run : window.runs()) {
    if (run.sku_vertex_fraction.size() != num_skus) {
      return Status::InvalidArgument(
          "telemetry SKU dimensions do not match the catalog");
    }
    const double ts = run.avg_tokens_used * run.runtime_seconds;
    total += ts;
    for (size_t s = 0; s < num_skus; ++s) {
      token_seconds[s] += ts * run.sku_vertex_fraction[s];
    }
  }
  // Capacity share: token-seconds against tokens*window per SKU.
  std::vector<double> load(num_skus, 0.0);
  for (size_t s = 0; s < num_skus; ++s) {
    const double capacity =
        static_cast<double>(catalog.sku(s).machine_count) *
        catalog.sku(s).tokens_per_machine * window_seconds;
    load[s] = capacity > 0.0 ? token_seconds[s] / capacity : 0.0;
  }
  return RebalanceModel(catalog, std::move(load), total);
}

double RebalanceModel::SkuLoad(int sku_index) const {
  RVAR_CHECK(sku_index >= 0 &&
             static_cast<size_t>(sku_index) < load_.size());
  return load_[static_cast<size_t>(sku_index)];
}

Result<std::vector<double>> RebalanceModel::UtilizationShift(
    int from_sku, int to_sku, double fraction) const {
  const int n = static_cast<int>(load_.size());
  if (from_sku < 0 || from_sku >= n || to_sku < 0 || to_sku >= n) {
    return Status::OutOfRange("SKU index outside the catalog");
  }
  if (from_sku == to_sku) {
    return Status::InvalidArgument("from_sku == to_sku");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument(
        StrCat("fraction must be in [0,1], got ", fraction));
  }
  // Moved work, in capacity units of each side. Work executes faster on
  // faster SKUs, so the destination absorbs the token-seconds scaled by
  // the speed ratio.
  const double moved_share =
      fraction * load_[static_cast<size_t>(from_sku)];
  const double from_capacity =
      static_cast<double>(catalog_.sku(static_cast<size_t>(from_sku))
                              .machine_count) *
      catalog_.sku(static_cast<size_t>(from_sku)).tokens_per_machine;
  const double to_capacity =
      static_cast<double>(catalog_.sku(static_cast<size_t>(to_sku))
                              .machine_count) *
      catalog_.sku(static_cast<size_t>(to_sku)).tokens_per_machine;
  const double speed_ratio =
      catalog_.sku(static_cast<size_t>(from_sku)).speed /
      catalog_.sku(static_cast<size_t>(to_sku)).speed;

  std::vector<double> delta(load_.size(), 0.0);
  delta[static_cast<size_t>(from_sku)] = -moved_share;
  delta[static_cast<size_t>(to_sku)] =
      moved_share * (from_capacity / std::max(to_capacity, 1e-9)) *
      speed_ratio;
  return delta;
}

Result<FeatureTransform> RebalanceModel::DynamicSkuShift(
    const std::string& from_sku, const std::string& to_sku) const {
  const int from = catalog_.IndexOf(from_sku);
  const int to = catalog_.IndexOf(to_sku);
  if (from < 0 || to < 0) {
    return Status::NotFound(
        StrCat("unknown SKU in shift ", from_sku, " -> ", to_sku));
  }
  // The whole observed share of from_sku migrates (fraction 1.0), which
  // matches the paper's "shifting all the vertices" scenario.
  RVAR_ASSIGN_OR_RETURN(std::vector<double> delta,
                        UtilizationShift(from, to, 1.0));
  // Precompute the per-SKU feature names once.
  std::vector<std::string> util_names;
  for (size_t s = 0; s < catalog_.NumSkus(); ++s) {
    util_names.push_back(StrCat("sku_util_", catalog_.sku(s).name));
  }
  const std::string from_frac = StrCat("hist_sku_frac_", from_sku);
  const std::string to_frac = StrCat("hist_sku_frac_", to_sku);
  const std::string from_util = StrCat("sku_util_", from_sku);
  const std::string to_util = StrCat("sku_util_", to_sku);

  return FeatureTransform(
      [delta, util_names, from_frac, to_frac, from_util, to_util](
          const Featurizer& featurizer, std::vector<double>* x) {
        auto get = [&](const std::string& name) {
          const int idx = featurizer.IndexOf(name);
          return idx >= 0 ? (*x)[static_cast<size_t>(idx)] : 0.0;
        };
        auto add = [&](const std::string& name, double v) {
          const int idx = featurizer.IndexOf(name);
          if (idx >= 0) (*x)[static_cast<size_t>(idx)] += v;
        };
        auto set = [&](const std::string& name, double v) {
          const int idx = featurizer.IndexOf(name);
          if (idx >= 0) (*x)[static_cast<size_t>(idx)] = v;
        };
        // 1. The job's own vertices move.
        const double moved = get(from_frac);
        set(from_frac, 0.0);
        add(to_frac, moved);
        // 2. Cluster-level utilizations shift per the rebalance model.
        for (size_t s = 0; s < util_names.size(); ++s) {
          add(util_names[s], delta[s]);
        }
        // 3. The job's machines now are the destination SKU's, at its
        //    post-rebalance utilization.
        const double util_from = get(from_util);
        const double util_to = get(to_util);  // already shifted above
        const double util_mean = get("cpu_util_mean");
        set("cpu_util_mean", util_mean + moved * (util_to - util_from));
      });
}

}  // namespace core
}  // namespace rvar
