#include "core/normalization.h"

#include <cmath>

#include "common/strings.h"
#include "stats/descriptive.h"

namespace rvar {
namespace core {

const char* NormalizationName(Normalization norm) {
  return norm == Normalization::kRatio ? "Ratio" : "Delta";
}

double NormalizeRuntime(Normalization norm, double runtime_seconds,
                        double median_seconds) {
  if (norm == Normalization::kRatio) {
    RVAR_CHECK_GT(median_seconds, 0.0);
    return runtime_seconds / median_seconds;
  }
  return runtime_seconds - median_seconds;
}

BinGrid CanonicalGrid(Normalization norm, int num_bins) {
  auto grid = norm == Normalization::kRatio
                  ? BinGrid::Make(0.0, 10.0, num_bins)
                  : BinGrid::Make(-900.0, 900.0, num_bins);
  return *grid;  // canonical ranges are always valid
}

double OutlierThreshold(Normalization norm) {
  return norm == Normalization::kRatio ? 10.0 : 900.0;
}

GroupMedians GroupMedians::FromTelemetry(
    const sim::TelemetryStore& reference) {
  GroupMedians medians;
  for (int gid : reference.GroupIds()) {
    // Non-finite runtimes (possible on the trusted Add() path) would make
    // the median NaN and poison every downstream normalization; groups
    // with no finite runtime at all get no median (NotFound downstream).
    std::vector<double> runtimes;
    for (double r : reference.GroupRuntimes(gid)) {
      if (std::isfinite(r)) runtimes.push_back(r);
    }
    if (runtimes.empty()) continue;
    medians.medians_[gid] = Median(std::move(runtimes));
  }
  return medians;
}

bool GroupMedians::Has(int group_id) const {
  return medians_.count(group_id) > 0;
}

Result<double> GroupMedians::Of(int group_id) const {
  const auto it = medians_.find(group_id);
  if (it == medians_.end()) {
    return Status::NotFound(
        StrCat("no historic median for group ", group_id));
  }
  return it->second;
}

void GroupMedians::Set(int group_id, double median_seconds) {
  medians_[group_id] = median_seconds;
}

Result<std::vector<double>> NormalizedGroupRuntimes(
    const sim::TelemetryStore& store, int group_id,
    const GroupMedians& medians, Normalization norm) {
  RVAR_ASSIGN_OR_RETURN(double median, medians.Of(group_id));
  // A NaN/inf median would flow into every normalized value (and NaN
  // compares false against <= 0, slipping past the sign check).
  if (!std::isfinite(median)) {
    return Status::InvalidArgument(
        StrCat("group ", group_id, " has non-finite median"));
  }
  if (norm == Normalization::kRatio && median <= 0.0) {
    return Status::FailedPrecondition(
        StrCat("group ", group_id, " has non-positive median ", median));
  }
  std::vector<double> out;
  for (double runtime : store.GroupRuntimes(group_id)) {
    out.push_back(NormalizeRuntime(norm, runtime, median));
  }
  return out;
}

}  // namespace core
}  // namespace rvar
