#include "core/normalization.h"

#include "common/strings.h"
#include "stats/descriptive.h"

namespace rvar {
namespace core {

const char* NormalizationName(Normalization norm) {
  return norm == Normalization::kRatio ? "Ratio" : "Delta";
}

double NormalizeRuntime(Normalization norm, double runtime_seconds,
                        double median_seconds) {
  if (norm == Normalization::kRatio) {
    RVAR_CHECK_GT(median_seconds, 0.0);
    return runtime_seconds / median_seconds;
  }
  return runtime_seconds - median_seconds;
}

BinGrid CanonicalGrid(Normalization norm, int num_bins) {
  auto grid = norm == Normalization::kRatio
                  ? BinGrid::Make(0.0, 10.0, num_bins)
                  : BinGrid::Make(-900.0, 900.0, num_bins);
  return *grid;  // canonical ranges are always valid
}

double OutlierThreshold(Normalization norm) {
  return norm == Normalization::kRatio ? 10.0 : 900.0;
}

GroupMedians GroupMedians::FromTelemetry(
    const sim::TelemetryStore& reference) {
  GroupMedians medians;
  for (int gid : reference.GroupIds()) {
    medians.medians_[gid] = Median(reference.GroupRuntimes(gid));
  }
  return medians;
}

bool GroupMedians::Has(int group_id) const {
  return medians_.count(group_id) > 0;
}

Result<double> GroupMedians::Of(int group_id) const {
  const auto it = medians_.find(group_id);
  if (it == medians_.end()) {
    return Status::NotFound(
        StrCat("no historic median for group ", group_id));
  }
  return it->second;
}

void GroupMedians::Set(int group_id, double median_seconds) {
  medians_[group_id] = median_seconds;
}

Result<std::vector<double>> NormalizedGroupRuntimes(
    const sim::TelemetryStore& store, int group_id,
    const GroupMedians& medians, Normalization norm) {
  RVAR_ASSIGN_OR_RETURN(double median, medians.Of(group_id));
  if (norm == Normalization::kRatio && median <= 0.0) {
    return Status::FailedPrecondition(
        StrCat("group ", group_id, " has non-positive median ", median));
  }
  std::vector<double> out;
  for (double runtime : store.GroupRuntimes(group_id)) {
    out.push_back(NormalizeRuntime(norm, runtime, median));
  }
  return out;
}

}  // namespace core
}  // namespace rvar
