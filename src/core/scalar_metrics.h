// Copyright 2026 The rvar Authors.
//
// Scalar-metric diagnostics (Section 4.1): the analyses behind Figure 4
// showing why medians and COV cannot characterize runtime variation — a
// rare "stalagmite" of slow runs the median cannot anticipate, and the
// instability of COV between observation windows.

#ifndef RVAR_CORE_SCALAR_METRICS_H_
#define RVAR_CORE_SCALAR_METRICS_H_

#include <vector>

#include "common/result.h"
#include "core/normalization.h"

namespace rvar {
namespace core {

/// \brief Figure 4a: how instance runtimes relate to the historic median.
struct StalagmiteAnalysis {
  int64_t total_runs = 0;
  int64_t diagonal_runs = 0;    ///< runtime < diagonal_limit x median
  int64_t mild_runs = 0;        ///< in [diagonal_limit, stalagmite_limit)
  int64_t stalagmite_runs = 0;  ///< >= stalagmite_limit x median
  /// Pearson correlation of log(median) vs log(runtime).
  double log_correlation = 0.0;

  double DiagonalShare() const;
  double StalagmiteShare() const;
};

/// Classifies every run of `slice` whose group has a median in `medians`.
/// Thresholds are multiples of the historic median. Fails if no run
/// qualifies or thresholds are not 1 < diagonal < stalagmite.
Result<StalagmiteAnalysis> AnalyzeStalagmite(
    const sim::TelemetryStore& slice, const GroupMedians& medians,
    double diagonal_limit = 1.5, double stalagmite_limit = 3.0);

/// \brief Figure 4b: stability of COV between two observation windows.
struct CovStability {
  int num_groups = 0;
  /// Pearson correlation between historic and new COV across groups.
  double correlation = 0.0;
  /// Per-bucket dispersion: groups whose historic COV fell in
  /// [bucket_lo, bucket_hi) and the spread of their newly observed COV.
  struct Bucket {
    double lo = 0.0, hi = 0.0;
    int num_groups = 0;
    double new_cov_p10 = 0.0;
    double new_cov_median = 0.0;
    double new_cov_p90 = 0.0;
  };
  std::vector<Bucket> buckets;
};

/// Compares per-group COV between `historic` and `recent` windows over
/// groups with at least `min_support` runs in each. Fails if fewer than
/// two groups qualify.
Result<CovStability> AnalyzeCovStability(
    const sim::TelemetryStore& historic, const sim::TelemetryStore& recent,
    int min_support = 3,
    std::vector<std::pair<double, double>> bucket_edges = {
        {0.0, 0.1}, {0.1, 0.3}, {0.3, 0.7}, {0.7, 1e9}});

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_SCALAR_METRICS_H_
