#include "core/model_lifecycle.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/strings.h"
#include "io/serialize.h"
#include "obs/export.h"

namespace rvar {
namespace core {
namespace {

/// Mean multiclass logloss of `model` over `d`. Labels outside the
/// model's class range (possible across model generations) score the
/// probability floor instead of crashing.
double MeanLogloss(const ml::GbdtClassifier& model, const ml::Dataset& d) {
  const size_t kc = static_cast<size_t>(model.num_classes());
  std::vector<double> proba;
  model.PredictProbaBatchInto(d.x, &proba);
  double sum = 0.0;
  for (size_t i = 0; i < d.NumRows(); ++i) {
    const size_t label = static_cast<size_t>(d.y[i]);
    const double p =
        label < kc ? std::max(proba[i * kc + label], 1e-12) : 1e-12;
    sum -= std::log(p);
  }
  return sum / static_cast<double>(d.NumRows());
}

int Argmax(const double* p, size_t kc) {
  int best = 0;
  for (size_t k = 1; k < kc; ++k) {
    if (p[k] > p[static_cast<size_t>(best)]) best = static_cast<int>(k);
  }
  return best;
}

/// Fraction of rows where both models pick the same shape. The two
/// models may disagree on class count (across generations), so each
/// argmax runs over its own stride.
double ShapeAgreement(const ml::GbdtClassifier& a, const ml::GbdtClassifier& b,
                      const ml::Dataset& d) {
  const size_t ka = static_cast<size_t>(a.num_classes());
  const size_t kb = static_cast<size_t>(b.num_classes());
  std::vector<double> pa, pb;
  a.PredictProbaBatchInto(d.x, &pa);
  b.PredictProbaBatchInto(d.x, &pb);
  size_t hits = 0;
  for (size_t i = 0; i < d.NumRows(); ++i) {
    hits += (Argmax(pa.data() + i * ka, ka) == Argmax(pb.data() + i * kb, kb));
  }
  return static_cast<double>(hits) / static_cast<double>(d.NumRows());
}

uint64_t CandidateSeed(uint64_t base, int64_t version) {
  uint64_t h = kFnvOffsetBasis;
  h = HashCombine(h, base);
  h = HashCombine(h, static_cast<uint64_t>(version));
  return h;
}

}  // namespace

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kHoldoutLogloss:
      return "holdout-logloss";
    case RejectReason::kLoglossRegression:
      return "logloss-regression";
    case RejectReason::kAgreement:
      return "agreement";
    case RejectReason::kArtifactCorrupt:
      return "artifact-corrupt";
    case RejectReason::kOrphaned:
      return "orphaned";
  }
  return "unknown";
}

ModelLifecycle::ModelLifecycle(ModelLifecycleOptions options,
                               io::ModelRegistry registry)
    : options_(std::move(options)), registry_(std::move(registry)) {
  obs::Registry& r = obs::Registry::Default();
  swaps_total_ = r.GetCounter("lifecycle_swaps_total");
  rollbacks_total_ = r.GetCounter("lifecycle_rollbacks_total");
  candidates_total_ = r.GetCounter("lifecycle_candidates_total");
  forced_quarantines_total_ =
      r.GetCounter("lifecycle_forced_quarantines_total");
  rejected_total_.reserve(kNumRejectReasons);
  for (int reason = 0; reason < kNumRejectReasons; ++reason) {
    rejected_total_.push_back(
        r.GetCounter("lifecycle_candidates_rejected_total", "reason",
                     RejectReasonName(static_cast<RejectReason>(reason))));
  }
  retrain_latency_ = r.GetHistogram("lifecycle_retrain_latency_seconds");
  swap_latency_ = r.GetHistogram("lifecycle_swap_latency_seconds");
}

Result<std::unique_ptr<ModelLifecycle>> ModelLifecycle::Open(
    ModelLifecycleOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("lifecycle registry dir must be set");
  }
  if (!(options.holdout_fraction > 0.0) || options.holdout_fraction >= 1.0) {
    return Status::InvalidArgument(
        StrCat("holdout_fraction must be in (0, 1), got ",
               options.holdout_fraction));
  }
  if (!std::isfinite(options.max_holdout_logloss) ||
      !std::isfinite(options.max_logloss_regression)) {
    return Status::InvalidArgument("logloss gates must be finite");
  }
  if (!(options.min_agreement >= 0.0) || options.min_agreement > 1.0) {
    return Status::InvalidArgument(
        StrCat("min_agreement must be in [0, 1], got ",
               options.min_agreement));
  }
  if (options.keep_retired < 0) {
    return Status::InvalidArgument("keep_retired must be >= 0");
  }

  RVAR_ASSIGN_OR_RETURN(io::ModelRegistry registry,
                        io::ModelRegistry::Open(options.dir));
  auto lifecycle = std::unique_ptr<ModelLifecycle>(
      new ModelLifecycle(std::move(options), std::move(registry)));

  // A candidate on disk means a retrain crashed between training and the
  // gate; it never passed validation, so it must never serve. Quarantine
  // keeps the artifact for forensics while making the state terminal.
  for (int64_t v : lifecycle->registry_.Versions()) {
    RVAR_ASSIGN_OR_RETURN(io::ModelManifest manifest,
                          lifecycle->registry_.Manifest(v));
    if (manifest.state == io::ModelState::kCandidate) {
      lifecycle->rejected_total_[static_cast<size_t>(RejectReason::kOrphaned)]
          ->Increment();
      RVAR_RETURN_NOT_OK(lifecycle->registry_.Quarantine(
          v, StrCat(RejectReasonName(RejectReason::kOrphaned),
                    ": crash during retrain left an unvalidated candidate")));
    }
  }

  // Restore serving from the ACTIVE pointer; a corrupt active artifact
  // falls back to the newest loadable retired version.
  const int64_t active = lifecycle->registry_.active_version();
  if (active >= 0) {
    Result<ml::GbdtClassifier> model = lifecycle->registry_.LoadModel(active);
    if (model.ok()) {
      lifecycle->Publish(active, std::make_shared<const ml::GbdtClassifier>(
                                     std::move(*model)));
    } else {
      std::vector<int64_t> versions = lifecycle->registry_.Versions();
      for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
        if (*it == active) continue;
        RVAR_ASSIGN_OR_RETURN(io::ModelManifest manifest,
                              lifecycle->registry_.Manifest(*it));
        if (manifest.state != io::ModelState::kRetired) continue;
        Result<ml::GbdtClassifier> fallback =
            lifecycle->registry_.LoadModel(*it);
        if (!fallback.ok()) continue;
        RVAR_RETURN_NOT_OK(lifecycle->registry_.Activate(*it));
        RVAR_RETURN_NOT_OK(lifecycle->registry_.Quarantine(
            active, StrCat("artifact-corrupt: ", model.status().message())));
        lifecycle->rejected_total_[static_cast<size_t>(
                                       RejectReason::kArtifactCorrupt)]
            ->Increment();
        lifecycle->Publish(*it, std::make_shared<const ml::GbdtClassifier>(
                                    std::move(*fallback)));
        break;
      }
      // No loadable fallback: nothing serves (live_version() == -1); the
      // corrupt version stays pointed-at until the next successful swap
      // retires it. Callers observe the gap through live_version().
    }
  }
  return lifecycle;
}

std::shared_ptr<const ml::GbdtClassifier> ModelLifecycle::LiveModel() const {
  return std::atomic_load(&live_);
}

int64_t ModelLifecycle::live_version() const {
  return live_version_.load(std::memory_order_acquire);
}

void ModelLifecycle::AttachShapeService(ShapeService* service) {
  shape_service_ = service;
  if (service != nullptr) {
    service->SwapModel(LiveModel());
  }
}

void ModelLifecycle::Publish(
    int64_t version, std::shared_ptr<const ml::GbdtClassifier> model) {
  // Version first, then the epoch, both lock-free: a reader pairing the
  // two calls can transiently see the new version with the old epoch —
  // the same benign window the old mutex had between separate LiveModel()
  // and live_version() calls. The attached ShapeService fans the epoch
  // out to every shard's replica (ShapeService::SwapModel), so serving
  // front-ends pick the swap up shard-locally on their next batch.
  live_version_.store(version, std::memory_order_release);
  std::atomic_store(&live_, model);
  if (shape_service_ != nullptr) {
    shape_service_->SwapModel(std::move(model));
  }
}

Status ModelLifecycle::Reject(int64_t version, RejectReason reason,
                              std::string detail) {
  rejected_total_[static_cast<size_t>(reason)]->Increment();
  std::string full = StrCat(RejectReasonName(reason), ": ", detail);
  RVAR_RETURN_NOT_OK(registry_.Quarantine(version, full));
  return Status::FailedPrecondition(
      StrCat("candidate v", version, " rejected (", full, ")"));
}

void ModelLifecycle::SplitWindow(const ml::Dataset& window, int64_t version,
                                 ml::Dataset* train,
                                 ml::Dataset* holdout) const {
  const size_t n = window.NumRows();
  RVAR_CHECK_GE(n, 2u);
  size_t num_holdout = static_cast<size_t>(
      options_.holdout_fraction * static_cast<double>(n));
  num_holdout = std::clamp<size_t>(num_holdout, 1, n - 1);
  // The permutation is keyed by (seed, version) only — both phases and
  // every thread count derive the identical split.
  Rng rng(CandidateSeed(options_.seed, version));
  const std::vector<size_t> perm = rng.Permutation(n);
  std::vector<size_t> holdout_idx(perm.begin(),
                                  perm.begin() + static_cast<ptrdiff_t>(
                                                     num_holdout));
  std::vector<size_t> train_idx(perm.begin() + static_cast<ptrdiff_t>(
                                                   num_holdout),
                                perm.end());
  // Sorted subsets keep row order stable, so training sees rows in window
  // order regardless of the permutation's internal layout.
  std::sort(holdout_idx.begin(), holdout_idx.end());
  std::sort(train_idx.begin(), train_idx.end());
  *holdout = window.Subset(holdout_idx);
  *train = window.Subset(train_idx);
}

Result<int64_t> ModelLifecycle::TrainCandidate(const ml::Dataset& window,
                                               uint64_t window_begin,
                                               uint64_t window_end) {
  obs::ScopedSpan span("lifecycle/train_candidate");
  obs::ScopedLatencyTimer timer(retrain_latency_);
  RVAR_RETURN_NOT_OK(window.Validate());
  if (window.NumRows() < 2) {
    return Status::InvalidArgument(
        StrCat("retrain window holds ", window.NumRows(),
               " rows; need >= 2 for a holdout split"));
  }
  if (window_end < window_begin) {
    return Status::InvalidArgument("window_end must be >= window_begin");
  }
  const int64_t version = registry_.next_version();

  ml::Dataset train, holdout;
  SplitWindow(window, version, &train, &holdout);

  ml::GbdtConfig config = options_.gbdt;
  config.seed = CandidateSeed(options_.seed, version);
  ml::GbdtClassifier candidate(config);
  const std::shared_ptr<const ml::GbdtClassifier> parent = LiveModel();
  if (parent != nullptr) {
    RVAR_RETURN_NOT_OK(candidate.FitWarmStart(train, *parent));
  } else {
    RVAR_RETURN_NOT_OK(candidate.Fit(train));
  }

  io::ModelManifest manifest;
  manifest.version = version;
  manifest.parent_version = parent != nullptr ? live_version() : -1;
  manifest.seed = config.seed;
  manifest.window_begin = window_begin;
  manifest.window_end = window_end;
  manifest.num_rows = window.NumRows();
  RVAR_ASSIGN_OR_RETURN(
      const int64_t assigned,
      registry_.PutCandidate(std::move(manifest),
                             io::EncodeGbdtClassifier(candidate)));
  candidates_total_->Increment();
  return assigned;
}

Status ModelLifecycle::ValidateAndSwap(int64_t version,
                                       const ml::Dataset& window) {
  obs::ScopedSpan span("lifecycle/validate_and_swap");
  RVAR_ASSIGN_OR_RETURN(io::ModelManifest manifest,
                        registry_.Manifest(version));
  if (manifest.state != io::ModelState::kCandidate) {
    return Status::FailedPrecondition(
        StrCat("version ", version, " is ", io::ModelStateName(manifest.state),
               ", only candidates pass the gate"));
  }
  if (manifest.num_rows != window.NumRows()) {
    return Status::InvalidArgument(
        StrCat("validation window holds ", window.NumRows(),
               " rows, candidate was trained on ", manifest.num_rows));
  }

  // Re-read from disk through the CRC + decode path: corruption that
  // landed after training (torn write, bit rot, an injected fault) is
  // caught here, before the gate even runs.
  Result<ml::GbdtClassifier> loaded = registry_.LoadModel(version);
  if (!loaded.ok()) {
    return Reject(version, RejectReason::kArtifactCorrupt,
                  loaded.status().message());
  }

  ml::Dataset train, holdout;
  SplitWindow(window, version, &train, &holdout);

  const double logloss = MeanLogloss(*loaded, holdout);
  const std::shared_ptr<const ml::GbdtClassifier> live = LiveModel();
  double agreement = 1.0;
  if (logloss > options_.max_holdout_logloss) {
    return Reject(version, RejectReason::kHoldoutLogloss,
                  StrCat("holdout logloss ", logloss, " above gate ",
                         options_.max_holdout_logloss));
  }
  if (live != nullptr) {
    const double live_logloss = MeanLogloss(*live, holdout);
    if (logloss > live_logloss + options_.max_logloss_regression) {
      RVAR_RETURN_NOT_OK(
          registry_.RecordValidation(version, logloss, agreement));
      return Reject(version, RejectReason::kLoglossRegression,
                    StrCat("holdout logloss ", logloss, " regresses live ",
                           live_logloss, " beyond budget ",
                           options_.max_logloss_regression));
    }
    agreement = ShapeAgreement(*loaded, *live, holdout);
    if (agreement < options_.min_agreement) {
      RVAR_RETURN_NOT_OK(
          registry_.RecordValidation(version, logloss, agreement));
      return Reject(version, RejectReason::kAgreement,
                    StrCat("shape agreement ", agreement, " below gate ",
                           options_.min_agreement));
    }
  }
  RVAR_RETURN_NOT_OK(registry_.RecordValidation(version, logloss, agreement));

  // The swap itself: activate on disk (ACTIVE pointer last), then publish
  // the epoch. Readers snapshotting mid-swap get either the old or the
  // new version, never a mix.
  {
    obs::ScopedLatencyTimer timer(swap_latency_);
    RVAR_RETURN_NOT_OK(registry_.Activate(version));
    Publish(version,
            std::make_shared<const ml::GbdtClassifier>(std::move(*loaded)));
  }
  swaps_total_->Increment();
  RVAR_RETURN_NOT_OK(registry_.Prune(options_.keep_retired).status());
  return Status::OK();
}

Status ModelLifecycle::RetrainAndSwap(const ml::Dataset& window,
                                      uint64_t window_begin,
                                      uint64_t window_end) {
  RVAR_ASSIGN_OR_RETURN(const int64_t version,
                        TrainCandidate(window, window_begin, window_end));
  return ValidateAndSwap(version, window);
}

Status ModelLifecycle::Rollback(int64_t version) {
  obs::ScopedSpan span("lifecycle/rollback");
  RVAR_ASSIGN_OR_RETURN(io::ModelManifest manifest,
                        registry_.Manifest(version));
  if (version == live_version()) return Status::OK();
  if (manifest.state != io::ModelState::kRetired) {
    return Status::FailedPrecondition(
        StrCat("version ", version, " is ", io::ModelStateName(manifest.state),
               "; only retired versions can be rolled back to"));
  }
  // Load before touching any registry state: a rollback target that fails
  // its CRC must leave serving exactly where it is.
  RVAR_ASSIGN_OR_RETURN(ml::GbdtClassifier model,
                        registry_.LoadModel(version));
  {
    obs::ScopedLatencyTimer timer(swap_latency_);
    RVAR_RETURN_NOT_OK(registry_.Activate(version));
    Publish(version,
            std::make_shared<const ml::GbdtClassifier>(std::move(model)));
  }
  rollbacks_total_->Increment();
  return Status::OK();
}

Status ModelLifecycle::QuarantineLive(std::string reason) {
  obs::ScopedSpan span("lifecycle/quarantine_live");
  const int64_t version = live_version();
  if (version < 0) {
    return Status::FailedPrecondition(
        "no live model to quarantine (live_version() == -1)");
  }
  // Prefer rolling back onto the newest loadable retired version, so the
  // kill switch degrades serving by one epoch rather than to nothing.
  std::vector<int64_t> versions = registry_.Versions();
  int64_t fallback_version = -1;
  ml::GbdtClassifier fallback_model;
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (*it == version) continue;
    RVAR_ASSIGN_OR_RETURN(io::ModelManifest manifest,
                          registry_.Manifest(*it));
    if (manifest.state != io::ModelState::kRetired) continue;
    Result<ml::GbdtClassifier> loaded = registry_.LoadModel(*it);
    if (!loaded.ok()) continue;  // CRC-bad rollback target: keep looking
    fallback_version = *it;
    fallback_model = std::move(*loaded);
    break;
  }
  if (fallback_version >= 0) {
    // Activate retires the displaced version, which unblocks Quarantine
    // (an active version can never be quarantined directly).
    RVAR_RETURN_NOT_OK(registry_.Activate(fallback_version));
    RVAR_RETURN_NOT_OK(registry_.Quarantine(version, std::move(reason)));
    Publish(fallback_version, std::make_shared<const ml::GbdtClassifier>(
                                  std::move(fallback_model)));
  } else {
    // Nothing to fall back to: clear serving entirely. Publishing the null
    // epoch mirrors into the attached ShapeService, so serving front-ends
    // drop down their degradation ladder instead of scoring a sick model.
    RVAR_RETURN_NOT_OK(registry_.Deactivate());
    RVAR_RETURN_NOT_OK(registry_.Quarantine(version, std::move(reason)));
    Publish(-1, nullptr);
  }
  forced_quarantines_total_->Increment();
  return Status::OK();
}

BackgroundRetrainer::~BackgroundRetrainer() {
  if (worker_.joinable()) worker_.join();
}

bool BackgroundRetrainer::StartCycle(ml::Dataset window,
                                     uint64_t window_begin,
                                     uint64_t window_end) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return false;
  if (worker_.joinable()) worker_.join();  // reap the finished cycle
  running_ = true;
  worker_ = std::thread([this, window = std::move(window), window_begin,
                         window_end]() mutable {
    Status status =
        lifecycle_->RetrainAndSwap(window, window_begin, window_end);
    std::lock_guard<std::mutex> inner(mu_);
    last_ = std::move(status);
    running_ = false;
  });
  return true;
}

bool BackgroundRetrainer::busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

Status BackgroundRetrainer::Wait() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker = std::move(worker_);
  }
  if (worker.joinable()) worker.join();
  std::lock_guard<std::mutex> lock(mu_);
  Status status = last_;
  last_ = Status::OK();
  return status;
}

}  // namespace core
}  // namespace rvar
