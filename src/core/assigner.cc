#include "core/assigner.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rvar {
namespace core {

Result<ClusterLogPmf> ClusterLogPmf::Make(const ShapeLibrary& library,
                                          double pmf_floor) {
  if (pmf_floor <= 0.0) {
    return Status::InvalidArgument(
        StrCat("pmf_floor must be positive, got ", pmf_floor));
  }
  ClusterLogPmf table;
  table.num_clusters_ = library.num_clusters();
  table.num_bins_ = library.grid().num_bins();
  table.pmf_floor_ = pmf_floor;
  table.log_pmf_.resize(static_cast<size_t>(table.num_clusters_) *
                        static_cast<size_t>(table.num_bins_));
  for (int c = 0; c < table.num_clusters_; ++c) {
    std::vector<double> floored = library.shape(c);
    double mass = 0.0;
    for (double& v : floored) {
      v = std::max(v, pmf_floor);
      mass += v;
    }
    double* lp = table.log_pmf_.data() +
                 static_cast<size_t>(c) * table.num_bins_;
    for (int h = 0; h < table.num_bins_; ++h) {
      lp[h] = std::log(floored[static_cast<size_t>(h)] / mass);
    }
  }
  return table;
}

Result<std::shared_ptr<const ClusterLogPmf>> ClusterLogPmf::MakeShared(
    const ShapeLibrary& library, double pmf_floor) {
  RVAR_ASSIGN_OR_RETURN(ClusterLogPmf table, Make(library, pmf_floor));
  return std::shared_ptr<const ClusterLogPmf>(
      std::make_shared<ClusterLogPmf>(std::move(table)));
}

PosteriorAssigner::PosteriorAssigner(const ShapeLibrary* library,
                                     double pmf_floor)
    : library_(library) {
  RVAR_CHECK(library != nullptr);
  Result<std::shared_ptr<const ClusterLogPmf>> table =
      ClusterLogPmf::MakeShared(*library, pmf_floor);
  RVAR_CHECK(table.ok());
  log_pmf_ = std::move(*table);
}

PosteriorAssigner::PosteriorAssigner(
    const ShapeLibrary* library, std::shared_ptr<const ClusterLogPmf> log_pmf)
    : library_(library), log_pmf_(std::move(log_pmf)) {
  RVAR_CHECK(library_ != nullptr);
  RVAR_CHECK(log_pmf_ != nullptr);
  RVAR_CHECK_EQ(log_pmf_->num_clusters(), library_->num_clusters());
  RVAR_CHECK_EQ(log_pmf_->num_bins(), library_->grid().num_bins());
}

Status PosteriorAssigner::LogLikelihoodsInto(
    const std::vector<double>& normalized_runtimes,
    std::vector<ClusterLikelihood>* out,
    std::vector<double>* pmf_scratch) const {
  RVAR_CHECK(out != nullptr);
  RVAR_CHECK(pmf_scratch != nullptr);
  if (normalized_runtimes.empty()) {
    return Status::InvalidArgument(
        "cannot compute likelihoods for zero observations");
  }
  // The observation PMF phi of Equation 8, unsmoothed (radius 0) so that
  // N * phi_h is exactly the bin count n_h. NaN carries no shape
  // information and is skipped by the PMF path; if nothing binnable
  // remains there is no likelihood to compute.
  const int64_t num_binned =
      library_->ObservationPmfInto(normalized_runtimes, /*radius=*/0,
                                   pmf_scratch);
  if (num_binned == 0) {
    return Status::InvalidArgument(
        "all observations are NaN; cannot compute likelihoods");
  }
  const double n = static_cast<double>(num_binned);
  const size_t num_bins = pmf_scratch->size();
  out->clear();
  out->reserve(static_cast<size_t>(log_pmf_->num_clusters()));
  const double* pmf = pmf_scratch->data();
  for (int c = 0; c < log_pmf_->num_clusters(); ++c) {
    const double* lp = log_pmf_->row(c);
    double dot = 0.0;
    for (size_t h = 0; h < num_bins; ++h) {
      if (pmf[h] > 0.0) dot += pmf[h] * lp[h];
    }
    out->push_back({c, n * dot});
  }
  return Status::OK();
}

Result<std::vector<ClusterLikelihood>> PosteriorAssigner::LogLikelihoods(
    const std::vector<double>& normalized_runtimes) const {
  std::vector<ClusterLikelihood> out;
  std::vector<double> scratch;
  RVAR_RETURN_NOT_OK(LogLikelihoodsInto(normalized_runtimes, &out, &scratch));
  return out;
}

Result<int> PosteriorAssigner::Assign(
    const std::vector<double>& normalized_runtimes,
    ClusterLikelihood* best) const {
  RVAR_ASSIGN_OR_RETURN(std::vector<ClusterLikelihood> lls,
                        LogLikelihoods(normalized_runtimes));
  size_t best_idx = 0;
  for (size_t c = 1; c < lls.size(); ++c) {
    if (lls[c].log_likelihood > lls[best_idx].log_likelihood) {
      best_idx = c;
    }
  }
  if (best != nullptr) *best = lls[best_idx];
  return lls[best_idx].cluster;
}

}  // namespace core
}  // namespace rvar
