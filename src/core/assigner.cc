#include "core/assigner.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rvar {
namespace core {

PosteriorAssigner::PosteriorAssigner(const ShapeLibrary* library,
                                     double pmf_floor)
    : library_(library) {
  RVAR_CHECK(library != nullptr);
  RVAR_CHECK_GT(pmf_floor, 0.0);
  num_clusters_ = static_cast<size_t>(library->num_clusters());
  num_bins_ = static_cast<size_t>(library->grid().num_bins());
  log_pmf_.resize(num_clusters_ * num_bins_);
  for (size_t c = 0; c < num_clusters_; ++c) {
    std::vector<double> floored = library->shape(static_cast<int>(c));
    double mass = 0.0;
    for (double& v : floored) {
      v = std::max(v, pmf_floor);
      mass += v;
    }
    double* lp = log_pmf_.data() + c * num_bins_;
    for (size_t h = 0; h < num_bins_; ++h) {
      lp[h] = std::log(floored[h] / mass);
    }
  }
}

Result<std::vector<ClusterLikelihood>> PosteriorAssigner::LogLikelihoods(
    const std::vector<double>& normalized_runtimes) const {
  if (normalized_runtimes.empty()) {
    return Status::InvalidArgument(
        "cannot compute likelihoods for zero observations");
  }
  // Bin counts n_h of the observations (Equation 8). Non-finite values
  // carry no shape information and are skipped; if nothing finite
  // remains there is no likelihood to compute.
  const BinGrid& grid = library_->grid();
  std::vector<int64_t> counts(static_cast<size_t>(grid.num_bins()), 0);
  int64_t num_finite = 0;
  for (double x : normalized_runtimes) {
    if (!std::isfinite(x)) continue;
    counts[static_cast<size_t>(grid.BinIndex(x))]++;
    ++num_finite;
  }
  if (num_finite == 0) {
    return Status::InvalidArgument(
        "all observations are non-finite; cannot compute likelihoods");
  }
  std::vector<ClusterLikelihood> out;
  out.reserve(num_clusters_);
  for (size_t c = 0; c < num_clusters_; ++c) {
    const double* lp = log_pmf_.data() + c * num_bins_;
    double ll = 0.0;
    for (size_t h = 0; h < counts.size(); ++h) {
      if (counts[h] > 0) {
        ll += static_cast<double>(counts[h]) * lp[h];
      }
    }
    out.push_back({static_cast<int>(c), ll});
  }
  return out;
}

Result<int> PosteriorAssigner::Assign(
    const std::vector<double>& normalized_runtimes,
    ClusterLikelihood* best) const {
  RVAR_ASSIGN_OR_RETURN(std::vector<ClusterLikelihood> lls,
                        LogLikelihoods(normalized_runtimes));
  size_t best_idx = 0;
  for (size_t c = 1; c < lls.size(); ++c) {
    if (lls[c].log_likelihood > lls[best_idx].log_likelihood) {
      best_idx = c;
    }
  }
  if (best != nullptr) *best = lls[best_idx];
  return lls[best_idx].cluster;
}

}  // namespace core
}  // namespace rvar
