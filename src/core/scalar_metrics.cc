#include "core/scalar_metrics.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "ml/feature_select.h"
#include "stats/descriptive.h"

namespace rvar {
namespace core {

double StalagmiteAnalysis::DiagonalShare() const {
  return total_runs > 0
             ? static_cast<double>(diagonal_runs) / total_runs
             : 0.0;
}

double StalagmiteAnalysis::StalagmiteShare() const {
  return total_runs > 0
             ? static_cast<double>(stalagmite_runs) / total_runs
             : 0.0;
}

Result<StalagmiteAnalysis> AnalyzeStalagmite(
    const sim::TelemetryStore& slice, const GroupMedians& medians,
    double diagonal_limit, double stalagmite_limit) {
  if (!(1.0 < diagonal_limit && diagonal_limit < stalagmite_limit)) {
    return Status::InvalidArgument(
        "need 1 < diagonal_limit < stalagmite_limit");
  }
  StalagmiteAnalysis out;
  std::vector<double> log_median, log_runtime;
  for (const sim::JobRun& run : slice.runs()) {
    if (!medians.Has(run.group_id)) continue;
    const double median = *medians.Of(run.group_id);
    if (median <= 0.0 || run.runtime_seconds <= 0.0) continue;
    const double ratio = run.runtime_seconds / median;
    ++out.total_runs;
    if (ratio < diagonal_limit) {
      ++out.diagonal_runs;
    } else if (ratio < stalagmite_limit) {
      ++out.mild_runs;
    } else {
      ++out.stalagmite_runs;
    }
    log_median.push_back(std::log(median));
    log_runtime.push_back(std::log(run.runtime_seconds));
  }
  if (out.total_runs == 0) {
    return Status::FailedPrecondition(
        "no runs with known historic medians");
  }
  out.log_correlation = ml::PearsonCorrelation(log_median, log_runtime);
  return out;
}

Result<CovStability> AnalyzeCovStability(
    const sim::TelemetryStore& historic, const sim::TelemetryStore& recent,
    int min_support,
    std::vector<std::pair<double, double>> bucket_edges) {
  std::vector<double> cov_hist, cov_new;
  for (int gid : recent.GroupsWithSupport(min_support)) {
    if (historic.Support(gid) < min_support) continue;
    cov_hist.push_back(
        CoefficientOfVariation(historic.GroupRuntimes(gid)));
    cov_new.push_back(CoefficientOfVariation(recent.GroupRuntimes(gid)));
  }
  if (cov_hist.size() < 2) {
    return Status::FailedPrecondition(
        StrCat("only ", cov_hist.size(),
               " groups meet the support threshold in both windows"));
  }
  CovStability out;
  out.num_groups = static_cast<int>(cov_hist.size());
  out.correlation = ml::PearsonCorrelation(cov_hist, cov_new);
  for (const auto& [lo, hi] : bucket_edges) {
    std::vector<double> in_bucket;
    for (size_t i = 0; i < cov_hist.size(); ++i) {
      if (cov_hist[i] >= lo && cov_hist[i] < hi) {
        in_bucket.push_back(cov_new[i]);
      }
    }
    if (in_bucket.empty()) continue;
    std::sort(in_bucket.begin(), in_bucket.end());
    CovStability::Bucket b;
    b.lo = lo;
    b.hi = hi;
    b.num_groups = static_cast<int>(in_bucket.size());
    b.new_cov_p10 = QuantileSorted(in_bucket, 0.1);
    b.new_cov_median = QuantileSorted(in_bucket, 0.5);
    b.new_cov_p90 = QuantileSorted(in_bucket, 0.9);
    out.buckets.push_back(b);
  }
  return out;
}

}  // namespace core
}  // namespace rvar
