// Copyright 2026 The rvar Authors.
//
// Feature extraction for the prediction model (Section 5.1). Three feature
// classes, all available at compile/submit time:
//  - intrinsic: the compiled plan (operator counts, optimizer estimates);
//  - historic resource use: per-group aggregates over a historic reference
//    store (data read, temp data, vertices, token skyline stats, spare
//    tokens, per-SKU vertex fractions);
//  - environment: machine/cluster status at the submission instant
//    (per-SKU CPU utilization, load spread, spare-token availability).

#ifndef RVAR_CORE_FEATURIZER_H_
#define RVAR_CORE_FEATURIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "sim/datasets.h"

namespace rvar {
namespace core {

/// \brief Builds feature vectors for job runs.
class Featurizer {
 public:
  /// \brief Per-group historic aggregates (the expensive part of
  /// SetHistory). Public so io/serialize can persist and restore them —
  /// recomputing history needs the full reference telemetry, which a
  /// restarted server may no longer hold.
  struct GroupHistory {
    int support = 0;
    double input_mean = 0.0, input_std = 0.0;
    double temp_mean = 0.0;
    double vertices_mean = 0.0;
    double max_tokens_mean = 0.0, max_tokens_std = 0.0;
    double avg_tokens_mean = 0.0;
    double spare_tokens_mean = 0.0;
    /// Historic runtime scale (Section 5.1's historic runtime statistics;
    /// shape-proxy statistics are excluded to keep what-if transforms
    /// counterfactually consistent).
    double runtime_median = 0.0;
    std::vector<double> sku_frac;
  };

  /// \param groups group specs indexed by group_id (groups[i].group_id==i);
  ///        must outlive the featurizer.
  /// \param catalog the cluster's SKU catalog; must outlive the featurizer.
  Featurizer(const std::vector<sim::JobGroupSpec>* groups,
             const sim::SkuCatalog* catalog);

  /// Computes per-group historic aggregates from `history` (the paper uses
  /// D1 plus all runs before the one being featurized; we use the whole
  /// reference slice). Groups absent from history fall back to the current
  /// run's own telemetry at featurization time.
  void SetHistory(const sim::TelemetryStore& history);

  /// The current per-group aggregates (what SetHistory computed or
  /// RestoreHistory installed).
  const std::unordered_map<int, GroupHistory>& history() const {
    return history_;
  }

  /// Reinstalls checkpointed aggregates (io/serialize.h). Validates
  /// finiteness and per-SKU vector lengths against the live catalog, so a
  /// snapshot from a differently-shaped cluster is rejected instead of
  /// silently misfeaturizing.
  Status RestoreHistory(std::unordered_map<int, GroupHistory> history);

  /// Ordered feature names; stable across calls.
  const std::vector<std::string>& FeatureNames() const { return names_; }

  /// Index of a feature name, or -1.
  int IndexOf(const std::string& name) const;

  /// Feature vector for one run (length FeatureNames().size()).
  Result<std::vector<double>> FeaturesFor(const sim::JobRun& run) const;

  /// Feature vectors for a batch of runs, in order. Rows are built in
  /// parallel (common/parallel.h) with output identical to calling
  /// FeaturesFor in a loop; fails with the first failing row's status.
  Result<std::vector<std::vector<double>>> FeaturesForAll(
      const std::vector<const sim::JobRun*>& runs) const;

  /// Features + labels for every run of `slice` whose group appears in
  /// `group_labels`; runs of unlabeled groups are skipped.
  Result<ml::Dataset> BuildDataset(
      const sim::TelemetryStore& slice,
      const std::unordered_map<int, int>& group_labels) const;

  /// Features + runtime-seconds regression targets for every run (used by
  /// the Griffon-style baseline).
  Result<ml::Dataset> BuildRegressionDataset(
      const sim::TelemetryStore& slice) const;

 private:
  GroupHistory HistoryFor(const sim::JobRun& run) const;

  const std::vector<sim::JobGroupSpec>* groups_;
  const sim::SkuCatalog* catalog_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> name_index_;
  std::unordered_map<int, GroupHistory> history_;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_FEATURIZER_H_
