#include "core/shape_service.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace rvar {
namespace core {

ShapeService::ShapeService(const ShapeLibrary* library, Options options)
    : library_(library),
      options_(options),
      num_shards_(static_cast<size_t>(std::max(1, options.num_shards))) {
  options_.num_shards = static_cast<int>(num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  obs::Registry& registry = obs::Registry::Default();
  observe_latency_ =
      registry.GetHistogram("shape_service_observe_latency_seconds");
  query_latency_ =
      registry.GetHistogram("shape_service_query_latency_seconds");
  observe_total_ = registry.GetCounter("shape_service_observe_total");
  observe_rejected_ = registry.GetCounter("shape_service_observe_rejected");
  model_swaps_total_ = registry.GetCounter("shape_service_model_swaps_total");
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].observe_total = registry.GetCounter(
        "shape_service_shard_observe_total", "shard", StrCat(s));
    shards_[s].contention = registry.GetCounter(
        "shape_service_shard_contention_total", "shard", StrCat(s));
  }
  // Global prior: the cluster with the most pooled reference samples.
  // Ties (and all-zero stats, e.g. a synthetic library) resolve to the
  // lowest index, so the answer is always a valid cluster.
  int64_t best_mass = -1;
  for (int k = 0; k < library_->num_clusters(); ++k) {
    if (library_->stats(k).num_samples > best_mass) {
      best_mass = library_->stats(k).num_samples;
      global_prior_shape_ = k;
    }
  }
}

Result<std::unique_ptr<ShapeService>> ShapeService::Make(
    const ShapeLibrary* library, Options options) {
  if (library == nullptr) {
    return Status::InvalidArgument("null shape library");
  }
  if (library->num_clusters() < 1) {
    return Status::InvalidArgument("shape library holds no clusters");
  }
  // Explicit option validation (mirrors OnlineShapeTracker::Make) so the
  // error names the service option, not a tracker internals message.
  if (!(options.decay > 0.0) || options.decay > 1.0) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.decay must be in (0, 1], got ",
               options.decay));
  }
  if (!(options.pmf_floor > 0.0)) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.pmf_floor must be > 0, got ",
               options.pmf_floor));
  }
  if (options.num_shards < 1) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.num_shards must be >= 1, got ",
               options.num_shards));
  }
  // Validate the tracker parameters once, up front, so per-group tracker
  // creation inside Observe can never fail.
  RVAR_RETURN_NOT_OK(
      OnlineShapeTracker::Make(library, options.decay, options.pmf_floor)
          .status());
  return std::unique_ptr<ShapeService>(
      new ShapeService(library, options));
}

size_t ShapeService::ShardIndexFor(int group_id) const {
  // Spread consecutive group ids across shards; the multiplicative mix
  // avoids pinning id ranges (gid % shards would shard-collide every
  // `num_shards`-th group of a sequential id space onto one shard).
  const uint64_t h =
      static_cast<uint64_t>(group_id) * 0x9E3779B97F4A7C15ULL;
  return (h >> 32) % num_shards_;
}

ShapeService::Shard& ShapeService::ShardFor(int group_id) const {
  return shards_[ShardIndexFor(group_id)];
}

std::unique_lock<std::mutex> ShapeService::LockShard(
    size_t shard_index) const {
  std::unique_lock<std::mutex> lock(shards_[shard_index].mu,
                                    std::try_to_lock);
  if (!lock.owns_lock()) {
    shards_[shard_index].contention->Increment();
    lock.lock();
  }
  return lock;
}

Status ShapeService::Observe(int group_id, double normalized_runtime) {
  obs::ScopedLatencyTimer timer(observe_latency_);
  if (group_id < 0) {
    // Reject at the boundary and count it: a tracker keyed by a negative
    // id would export a snapshot RestoreState (ids >= 0) refuses to load,
    // turning a legitimate checkpoint into a restore failure.
    observe_rejected_->Increment();
    return Status::InvalidArgument(
        StrCat("group_id must be >= 0, got ", group_id));
  }
  if (!std::isfinite(normalized_runtime)) {
    // Reject at the service boundary: the tracker would clamp or drop the
    // sample silently while the caller saw OK, hiding a corrupt feed.
    observe_rejected_->Increment();
    return Status::InvalidArgument(
        StrCat("normalized_runtime must be finite, got ",
               normalized_runtime));
  }
  observe_total_->Increment();
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  shard.observe_total->Increment();
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  auto it = shard.trackers.find(group_id);
  if (it == shard.trackers.end()) {
    it = shard.trackers
             .emplace(group_id,
                      *OnlineShapeTracker::Make(library_, options_.decay,
                                                options_.pmf_floor))
             .first;
  }
  it->second.Observe(normalized_runtime);
  ++shard.total_observations;
  return Status::OK();
}

std::vector<double> ShapeService::Posterior(int group_id) const {
  obs::ScopedLatencyTimer timer(query_latency_);
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.trackers.find(group_id);
  if (it == shard.trackers.end()) {
    const size_t k = static_cast<size_t>(library_->num_clusters());
    return std::vector<double>(k, 1.0 / static_cast<double>(k));
  }
  return it->second.Posterior();
}

int ShapeService::MostLikely(int group_id) const {
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.trackers.find(group_id);
  return it == shard.trackers.end() ? -1 : it->second.MostLikely();
}

double ShapeService::ProbabilityOf(int group_id, int cluster) const {
  RVAR_CHECK(cluster >= 0 && cluster < library_->num_clusters());
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.trackers.find(group_id);
  if (it == shard.trackers.end()) {
    return 1.0 / static_cast<double>(library_->num_clusters());
  }
  return it->second.ProbabilityOf(cluster);
}

int64_t ShapeService::GroupCount(int group_id) const {
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.trackers.find(group_id);
  return it == shard.trackers.end() ? 0 : it->second.count();
}

int64_t ShapeService::TotalObservations() const {
  // Per-shard snapshot merged in shard-index order. Each shard maintains
  // its running total under its own mutex, so this is O(shards), not
  // O(groups) — and a maintenance read, so no contention counting.
  int64_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].total_observations;
  }
  return total;
}

size_t ShapeService::NumGroups() const {
  size_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].trackers.size();
  }
  return total;
}

std::vector<int> ShapeService::TrackedGroups() const {
  std::vector<int> groups;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    for (const auto& [gid, tracker] : shards_[s].trackers) {
      groups.push_back(gid);
    }
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

bool ShapeService::Forget(int group_id) {
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.trackers.find(group_id);
  if (it == shard.trackers.end()) return false;
  shard.total_observations -= it->second.count();
  shard.trackers.erase(it);
  return true;
}

void ShapeService::SwapModel(
    std::shared_ptr<const ml::GbdtClassifier> model) {
  // Global slot first, then every shard's replica in shard-index order —
  // all plain atomic stores, no lock. Readers pinned to an old epoch keep
  // it alive through their shared_ptr; shard replicas may briefly trail
  // the global slot, but each shard-local batch still sees one epoch.
  std::atomic_store(&model_, model);
  for (size_t s = 0; s < num_shards_; ++s) {
    std::atomic_store(&shards_[s].model, model);
  }
  model_swaps_total_->Increment();
}

std::shared_ptr<const ml::GbdtClassifier> ShapeService::ModelSnapshot()
    const {
  return std::atomic_load(&model_);
}

std::shared_ptr<const ml::GbdtClassifier> ShapeService::ModelSnapshotForShard(
    size_t shard_index) const {
  RVAR_CHECK(shard_index < num_shards_);
  return std::atomic_load(&shards_[shard_index].model);
}

std::vector<ShapeService::GroupState> ShapeService::ExportState() const {
  // Lock every shard (in index order, the only order used) so the export
  // is a point-in-time cut: no concurrent Observe lands halfway. Plain
  // locks — maintenance traffic must not pollute the contention counters
  // that size the serving hot path.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    locks.emplace_back(shards_[s].mu);
  }
  // Per-shard snapshots merged in shard-index order, then sorted by group
  // id: group ids are unique, so the result — and the serialized image
  // built from it — is byte-identical at any shard count.
  std::vector<GroupState> states;
  for (size_t s = 0; s < num_shards_; ++s) {
    for (const auto& [gid, tracker] : shards_[s].trackers) {
      GroupState state;
      state.group_id = gid;
      state.log_likelihood = tracker.log_likelihood();
      state.count = tracker.count();
      state.num_clamped = tracker.num_clamped();
      states.push_back(std::move(state));
    }
  }
  std::sort(states.begin(), states.end(),
            [](const GroupState& a, const GroupState& b) {
              return a.group_id < b.group_id;
            });
  return states;
}

Status ShapeService::RestoreState(const std::vector<GroupState>& states) {
  // Validate and build every tracker before touching the live shards, so
  // a corrupt entry leaves the service exactly as it was.
  std::vector<std::pair<int, OnlineShapeTracker>> restored;
  restored.reserve(states.size());
  for (const GroupState& state : states) {
    if (state.group_id < 0) {
      return Status::InvalidArgument(
          StrCat("restored group_id must be >= 0, got ", state.group_id));
    }
    auto tracker =
        OnlineShapeTracker::Make(library_, options_.decay, options_.pmf_floor);
    RVAR_RETURN_NOT_OK(tracker.status());
    RVAR_RETURN_NOT_OK(tracker->RestoreState(state.log_likelihood,
                                             state.count, state.num_clamped));
    restored.emplace_back(state.group_id, std::move(*tracker));
  }
  for (size_t i = 1; i < restored.size(); ++i) {
    if (restored[i].first <= restored[i - 1].first) {
      return Status::InvalidArgument(
          "restored group states must be strictly ascending by group id");
    }
  }
  // Plain locks in shard-index order: maintenance traffic stays out of
  // the contention counters.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    locks.emplace_back(shards_[s].mu);
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].trackers.clear();
    shards_[s].total_observations = 0;
  }
  for (auto& [gid, tracker] : restored) {
    Shard& shard = shards_[ShardIndexFor(gid)];
    shard.total_observations += tracker.count();
    shard.trackers.emplace(gid, std::move(tracker));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rvar
