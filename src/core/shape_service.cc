#include "core/shape_service.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace rvar {
namespace core {

ShapeService::ShapeService(const ShapeLibrary* library, Options options,
                           std::shared_ptr<const ClusterLogPmf> log_pmf)
    : library_(library),
      options_(options),
      log_pmf_(std::move(log_pmf)),
      num_shards_(static_cast<size_t>(std::max(1, options.num_shards))) {
  options_.num_shards = static_cast<int>(num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  obs::Registry& registry = obs::Registry::Default();
  observe_latency_ =
      registry.GetHistogram("shape_service_observe_latency_seconds");
  query_latency_ =
      registry.GetHistogram("shape_service_query_latency_seconds");
  observe_total_ = registry.GetCounter("shape_service_observe_total");
  observe_rejected_ = registry.GetCounter("shape_service_observe_rejected");
  model_swaps_total_ = registry.GetCounter("shape_service_model_swaps_total");
  pmf_cache_hits_ = registry.GetCounter("shape_service_pmf_cache_hits");
  pmf_cache_misses_ = registry.GetCounter("shape_service_pmf_cache_misses");
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].observe_total = registry.GetCounter(
        "shape_service_shard_observe_total", "shard", StrCat(s));
    shards_[s].contention = registry.GetCounter(
        "shape_service_shard_contention_total", "shard", StrCat(s));
  }
  // Global prior: the cluster with the most pooled reference samples.
  // Ties (and all-zero stats, e.g. a synthetic library) resolve to the
  // lowest index, so the answer is always a valid cluster.
  int64_t best_mass = -1;
  for (int k = 0; k < library_->num_clusters(); ++k) {
    if (library_->stats(k).num_samples > best_mass) {
      best_mass = library_->stats(k).num_samples;
      global_prior_shape_ = k;
    }
  }
}

Result<std::unique_ptr<ShapeService>> ShapeService::Make(
    const ShapeLibrary* library, Options options) {
  if (library == nullptr) {
    return Status::InvalidArgument("null shape library");
  }
  if (library->num_clusters() < 1) {
    return Status::InvalidArgument("shape library holds no clusters");
  }
  // Explicit option validation (mirrors OnlineShapeTracker::Make) so the
  // error names the service option, not a tracker internals message.
  if (!(options.decay > 0.0) || options.decay > 1.0) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.decay must be in (0, 1], got ",
               options.decay));
  }
  if (!(options.pmf_floor > 0.0)) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.pmf_floor must be > 0, got ",
               options.pmf_floor));
  }
  if (options.num_shards < 1) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.num_shards must be >= 1, got ",
               options.num_shards));
  }
  if (options.sketch_k < KllSketch::kMinK ||
      options.sketch_k > KllSketch::kMaxK) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.sketch_k must be in [", KllSketch::kMinK,
               ", ", KllSketch::kMaxK, "], got ", options.sketch_k));
  }
  if (options.pmf_cache_entries < 0) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.pmf_cache_entries must be >= 0, got ",
               options.pmf_cache_entries));
  }
  // Build the shared log theta table once; every per-group tracker (and
  // the Eq. 9 prior scorer) reference it instead of holding a copy, so
  // per-group creation inside Observe can never fail.
  RVAR_ASSIGN_OR_RETURN(
      std::shared_ptr<const ClusterLogPmf> table,
      ClusterLogPmf::MakeShared(*library, options.pmf_floor));
  RVAR_RETURN_NOT_OK(
      OnlineShapeTracker::Make(library, table, options.decay).status());
  return std::unique_ptr<ShapeService>(
      new ShapeService(library, options, std::move(table)));
}

size_t ShapeService::ShardIndexFor(int group_id) const {
  // Spread consecutive group ids across shards; the multiplicative mix
  // avoids pinning id ranges (gid % shards would shard-collide every
  // `num_shards`-th group of a sequential id space onto one shard).
  const uint64_t h =
      static_cast<uint64_t>(group_id) * 0x9E3779B97F4A7C15ULL;
  return (h >> 32) % num_shards_;
}

ShapeService::Shard& ShapeService::ShardFor(int group_id) const {
  return shards_[ShardIndexFor(group_id)];
}

std::unique_lock<std::mutex> ShapeService::LockShard(
    size_t shard_index) const {
  std::unique_lock<std::mutex> lock(shards_[shard_index].mu,
                                    std::try_to_lock);
  if (!lock.owns_lock()) {
    shards_[shard_index].contention->Increment();
    lock.lock();
  }
  return lock;
}

Status ShapeService::Observe(int group_id, double normalized_runtime) {
  obs::ScopedLatencyTimer timer(observe_latency_);
  if (group_id < 0) {
    // Reject at the boundary and count it: a tracker keyed by a negative
    // id would export a snapshot RestoreState (ids >= 0) refuses to load,
    // turning a legitimate checkpoint into a restore failure.
    observe_rejected_->Increment();
    return Status::InvalidArgument(
        StrCat("group_id must be >= 0, got ", group_id));
  }
  if (!std::isfinite(normalized_runtime)) {
    // Reject at the service boundary: the tracker would clamp or drop the
    // sample silently while the caller saw OK, hiding a corrupt feed.
    observe_rejected_->Increment();
    return Status::InvalidArgument(
        StrCat("normalized_runtime must be finite, got ",
               normalized_runtime));
  }
  observe_total_->Increment();
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  shard.observe_total->Increment();
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  auto it = shard.groups.find(group_id);
  if (it == shard.groups.end()) {
    it = shard.groups
             .emplace(group_id,
                      GroupEntry(*OnlineShapeTracker::Make(
                                     library_, log_pmf_, options_.decay),
                                 *KllSketch::Make(options_.sketch_k)))
             .first;
  }
  GroupEntry& entry = it->second;
  entry.tracker.Observe(normalized_runtime);
  entry.sketch.UpdateClamped(library_->grid(), normalized_runtime);
  ++entry.version;  // invalidates any cached reconstruction
  ++shard.total_observations;
  return Status::OK();
}

std::vector<double> ShapeService::Posterior(int group_id) const {
  obs::ScopedLatencyTimer timer(query_latency_);
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.groups.find(group_id);
  if (it == shard.groups.end()) {
    const size_t k = static_cast<size_t>(library_->num_clusters());
    return std::vector<double>(k, 1.0 / static_cast<double>(k));
  }
  return it->second.tracker.Posterior();
}

int ShapeService::MostLikely(int group_id) const {
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.groups.find(group_id);
  return it == shard.groups.end() ? -1 : it->second.tracker.MostLikely();
}

const ShapeService::CacheEntry& ShapeService::ReconstructLocked(
    Shard& shard, int group_id, const GroupEntry& entry) const {
  if (options_.pmf_cache_entries > 0) {
    const auto it = shard.pmf_cache.find(group_id);
    if (it != shard.pmf_cache.end() && it->second.version == entry.version) {
      pmf_cache_hits_->Increment();
      return it->second;
    }
  }
  pmf_cache_misses_->Increment();
  CacheEntry* slot;
  if (options_.pmf_cache_entries > 0) {
    if (shard.pmf_cache.size() >=
            static_cast<size_t>(options_.pmf_cache_entries) &&
        shard.pmf_cache.find(group_id) == shard.pmf_cache.end()) {
      // Overflow clears the whole shard cache: cheap, deterministic, and
      // correctness never depends on what stays resident.
      shard.pmf_cache.clear();
    }
    slot = &shard.pmf_cache[group_id];
  } else {
    slot = &shard.reconstruct_scratch;
  }
  slot->version = entry.version;
  entry.sketch.BinCountsInto(library_->grid(), &slot->counts);
  // Equation 9 over the reconstructed counts: argmax_c sum_h n_h log
  // theta_h^c. With decay 1 and an exact-mode sketch this recovers the
  // tracker's running-sum argmax — the counts are the same tallies the
  // tracker accumulated one observation at a time.
  int best = 0;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < log_pmf_->num_clusters(); ++c) {
    const double* lp = log_pmf_->row(c);
    double ll = 0.0;
    for (size_t h = 0; h < slot->counts.size(); ++h) {
      if (slot->counts[h] > 0.0) ll += slot->counts[h] * lp[h];
    }
    if (ll > best_ll) {
      best_ll = ll;
      best = c;
    }
  }
  slot->shape = best;
  return *slot;
}

int ShapeService::PriorShape(int group_id) const {
  obs::ScopedLatencyTimer timer(query_latency_);
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.groups.find(group_id);
  if (it == shard.groups.end() || it->second.sketch.empty()) {
    return global_prior_shape_;
  }
  return ReconstructLocked(shard, group_id, it->second).shape;
}

bool ShapeService::ReconstructPmf(int group_id,
                                  std::vector<double>* pmf) const {
  RVAR_CHECK(pmf != nullptr);
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.groups.find(group_id);
  if (it == shard.groups.end()) {
    pmf->clear();
    return false;
  }
  *pmf = ReconstructLocked(shard, group_id, it->second).counts;
  lock.unlock();
  // Normalize + smooth outside the lock: the copy is ours now.
  ShapeLibrary::FinishObservationPmfInPlace(
      pmf, library_->config().smoothing_radius);
  return true;
}

double ShapeService::ProbabilityOf(int group_id, int cluster) const {
  RVAR_CHECK(cluster >= 0 && cluster < library_->num_clusters());
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.groups.find(group_id);
  if (it == shard.groups.end()) {
    return 1.0 / static_cast<double>(library_->num_clusters());
  }
  return it->second.tracker.ProbabilityOf(cluster);
}

int64_t ShapeService::GroupCount(int group_id) const {
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.groups.find(group_id);
  return it == shard.groups.end() ? 0 : it->second.tracker.count();
}

int64_t ShapeService::TotalObservations() const {
  // Per-shard snapshot merged in shard-index order. Each shard maintains
  // its running total under its own mutex, so this is O(shards), not
  // O(groups) — and a maintenance read, so no contention counting.
  int64_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].total_observations;
  }
  return total;
}

size_t ShapeService::NumGroups() const {
  size_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].groups.size();
  }
  return total;
}

std::vector<int> ShapeService::TrackedGroups() const {
  std::vector<int> groups;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    for (const auto& [gid, entry] : shards_[s].groups) {
      groups.push_back(gid);
    }
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

bool ShapeService::Forget(int group_id) {
  const size_t shard_index = ShardIndexFor(group_id);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lock = LockShard(shard_index);
  const auto it = shard.groups.find(group_id);
  if (it == shard.groups.end()) return false;
  shard.total_observations -= it->second.tracker.count();
  shard.groups.erase(it);
  // A later group with the same id restarts its version stamp at 0, so
  // the cached reconstruction must go with the state.
  shard.pmf_cache.erase(group_id);
  return true;
}

void ShapeService::SwapModel(
    std::shared_ptr<const ml::GbdtClassifier> model) {
  // Global slot first, then every shard's replica in shard-index order —
  // all plain atomic stores, no lock. Readers pinned to an old epoch keep
  // it alive through their shared_ptr; shard replicas may briefly trail
  // the global slot, but each shard-local batch still sees one epoch.
  std::atomic_store(&model_, model);
  for (size_t s = 0; s < num_shards_; ++s) {
    std::atomic_store(&shards_[s].model, model);
  }
  model_swaps_total_->Increment();
}

std::shared_ptr<const ml::GbdtClassifier> ShapeService::ModelSnapshot()
    const {
  return std::atomic_load(&model_);
}

std::shared_ptr<const ml::GbdtClassifier> ShapeService::ModelSnapshotForShard(
    size_t shard_index) const {
  RVAR_CHECK(shard_index < num_shards_);
  return std::atomic_load(&shards_[shard_index].model);
}

std::vector<ShapeService::GroupState> ShapeService::ExportState() const {
  // Lock every shard (in index order, the only order used) so the export
  // is a point-in-time cut: no concurrent Observe lands halfway. Plain
  // locks — maintenance traffic must not pollute the contention counters
  // that size the serving hot path.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    locks.emplace_back(shards_[s].mu);
  }
  // Per-shard snapshots merged in shard-index order, then sorted by group
  // id: group ids are unique, so the result — and the serialized image
  // built from it — is byte-identical at any shard count. The sketches
  // themselves are shard-count independent too: each is a deterministic
  // function of its group's observation sequence alone.
  std::vector<GroupState> states;
  for (size_t s = 0; s < num_shards_; ++s) {
    for (const auto& [gid, entry] : shards_[s].groups) {
      GroupState state;
      state.group_id = gid;
      state.log_likelihood = entry.tracker.log_likelihood();
      state.count = entry.tracker.count();
      state.num_clamped = entry.tracker.num_clamped();
      state.sketch.emplace(entry.sketch);
      states.push_back(std::move(state));
    }
  }
  std::sort(states.begin(), states.end(),
            [](const GroupState& a, const GroupState& b) {
              return a.group_id < b.group_id;
            });
  return states;
}

Status ShapeService::RestoreState(const std::vector<GroupState>& states) {
  // Validate and build every group before touching the live shards, so a
  // corrupt entry leaves the service exactly as it was.
  std::vector<std::pair<int, GroupEntry>> restored;
  restored.reserve(states.size());
  for (const GroupState& state : states) {
    if (state.group_id < 0) {
      return Status::InvalidArgument(
          StrCat("restored group_id must be >= 0, got ", state.group_id));
    }
    if (!state.sketch.has_value()) {
      return Status::InvalidArgument(
          StrCat("restored group ", state.group_id,
                 " carries no quantile sketch"));
    }
    if (state.sketch->k() != options_.sketch_k) {
      return Status::InvalidArgument(
          StrCat("restored group ", state.group_id, " sketch has k=",
                 state.sketch->k(), ", service expects k=",
                 options_.sketch_k));
    }
    if (state.sketch->n() != state.count) {
      // Observe feeds every accepted sample to both the tracker and the
      // sketch, so a divergent pair cannot have come from ExportState.
      return Status::InvalidArgument(
          StrCat("restored group ", state.group_id, " sketch holds ",
                 state.sketch->n(), " observations but tracker count is ",
                 state.count));
    }
    auto tracker = OnlineShapeTracker::Make(library_, log_pmf_,
                                            options_.decay);
    RVAR_RETURN_NOT_OK(tracker.status());
    RVAR_RETURN_NOT_OK(tracker->RestoreState(state.log_likelihood,
                                             state.count, state.num_clamped));
    restored.emplace_back(
        state.group_id,
        GroupEntry(std::move(*tracker), KllSketch(*state.sketch)));
  }
  for (size_t i = 1; i < restored.size(); ++i) {
    if (restored[i].first <= restored[i - 1].first) {
      return Status::InvalidArgument(
          "restored group states must be strictly ascending by group id");
    }
  }
  // Plain locks in shard-index order: maintenance traffic stays out of
  // the contention counters.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    locks.emplace_back(shards_[s].mu);
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].groups.clear();
    // Version stamps restart at 0 with the replaced state, so every
    // cached reconstruction is stale by construction.
    shards_[s].pmf_cache.clear();
    shards_[s].total_observations = 0;
  }
  for (auto& [gid, entry] : restored) {
    Shard& shard = shards_[ShardIndexFor(gid)];
    shard.total_observations += entry.tracker.count();
    shard.groups.emplace(gid, std::move(entry));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rvar
