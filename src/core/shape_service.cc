#include "core/shape_service.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace rvar {
namespace core {

ShapeService::ShapeService(const ShapeLibrary* library, Options options)
    : library_(library),
      options_(options),
      num_stripes_(static_cast<size_t>(std::max(1, options.num_stripes))) {
  options_.num_stripes = static_cast<int>(num_stripes_);
  stripes_ = std::make_unique<Stripe[]>(num_stripes_);
  obs::Registry& registry = obs::Registry::Default();
  observe_latency_ =
      registry.GetHistogram("shape_service_observe_latency_seconds");
  query_latency_ =
      registry.GetHistogram("shape_service_query_latency_seconds");
  observe_total_ = registry.GetCounter("shape_service_observe_total");
  observe_rejected_ = registry.GetCounter("shape_service_observe_rejected");
  model_swaps_total_ = registry.GetCounter("shape_service_model_swaps_total");
  stripe_contention_.reserve(num_stripes_);
  for (size_t s = 0; s < num_stripes_; ++s) {
    stripe_contention_.push_back(registry.GetCounter(
        "shape_service_stripe_contention_total", "stripe", StrCat(s)));
  }
}

Result<std::unique_ptr<ShapeService>> ShapeService::Make(
    const ShapeLibrary* library, Options options) {
  if (library == nullptr) {
    return Status::InvalidArgument("null shape library");
  }
  if (library->num_clusters() < 1) {
    return Status::InvalidArgument("shape library holds no clusters");
  }
  // Explicit option validation (mirrors OnlineShapeTracker::Make) so the
  // error names the service option, not a tracker internals message.
  if (!(options.decay > 0.0) || options.decay > 1.0) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.decay must be in (0, 1], got ",
               options.decay));
  }
  if (!(options.pmf_floor > 0.0)) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.pmf_floor must be > 0, got ",
               options.pmf_floor));
  }
  if (options.num_stripes < 1) {
    return Status::InvalidArgument(
        StrCat("ShapeService options.num_stripes must be >= 1, got ",
               options.num_stripes));
  }
  // Validate the tracker parameters once, up front, so per-group tracker
  // creation inside Observe can never fail.
  RVAR_RETURN_NOT_OK(
      OnlineShapeTracker::Make(library, options.decay, options.pmf_floor)
          .status());
  return std::unique_ptr<ShapeService>(
      new ShapeService(library, options));
}

size_t ShapeService::StripeIndexFor(int group_id) const {
  // Spread consecutive group ids across stripes; the multiplicative mix
  // avoids pinning id ranges (gid % stripes would stripe-collide every
  // `num_stripes`-th group of a sequential id space onto one lock).
  const uint64_t h =
      static_cast<uint64_t>(group_id) * 0x9E3779B97F4A7C15ULL;
  return (h >> 32) % num_stripes_;
}

ShapeService::Stripe& ShapeService::StripeFor(int group_id) const {
  return stripes_[StripeIndexFor(group_id)];
}

std::unique_lock<std::mutex> ShapeService::LockStripe(
    size_t stripe_index) const {
  std::unique_lock<std::mutex> lock(stripes_[stripe_index].mu,
                                    std::try_to_lock);
  if (!lock.owns_lock()) {
    stripe_contention_[stripe_index]->Increment();
    lock.lock();
  }
  return lock;
}

Status ShapeService::Observe(int group_id, double normalized_runtime) {
  obs::ScopedLatencyTimer timer(observe_latency_);
  if (group_id < 0) {
    return Status::InvalidArgument(
        StrCat("group_id must be >= 0, got ", group_id));
  }
  if (!std::isfinite(normalized_runtime)) {
    // Reject at the service boundary: the tracker would clamp or drop the
    // sample silently while the caller saw OK, hiding a corrupt feed.
    observe_rejected_->Increment();
    return Status::InvalidArgument(
        StrCat("normalized_runtime must be finite, got ",
               normalized_runtime));
  }
  observe_total_->Increment();
  const size_t stripe_index = StripeIndexFor(group_id);
  Stripe& stripe = stripes_[stripe_index];
  std::unique_lock<std::mutex> lock = LockStripe(stripe_index);
  auto it = stripe.trackers.find(group_id);
  if (it == stripe.trackers.end()) {
    it = stripe.trackers
             .emplace(group_id,
                      *OnlineShapeTracker::Make(library_, options_.decay,
                                                options_.pmf_floor))
             .first;
  }
  it->second.Observe(normalized_runtime);
  return Status::OK();
}

std::vector<double> ShapeService::Posterior(int group_id) const {
  obs::ScopedLatencyTimer timer(query_latency_);
  const size_t stripe_index = StripeIndexFor(group_id);
  Stripe& stripe = stripes_[stripe_index];
  std::unique_lock<std::mutex> lock = LockStripe(stripe_index);
  const auto it = stripe.trackers.find(group_id);
  if (it == stripe.trackers.end()) {
    const size_t k = static_cast<size_t>(library_->num_clusters());
    return std::vector<double>(k, 1.0 / static_cast<double>(k));
  }
  return it->second.Posterior();
}

int ShapeService::MostLikely(int group_id) const {
  Stripe& stripe = StripeFor(group_id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.trackers.find(group_id);
  return it == stripe.trackers.end() ? -1 : it->second.MostLikely();
}

double ShapeService::ProbabilityOf(int group_id, int cluster) const {
  RVAR_CHECK(cluster >= 0 && cluster < library_->num_clusters());
  Stripe& stripe = StripeFor(group_id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.trackers.find(group_id);
  if (it == stripe.trackers.end()) {
    return 1.0 / static_cast<double>(library_->num_clusters());
  }
  return it->second.ProbabilityOf(cluster);
}

int64_t ShapeService::GroupCount(int group_id) const {
  Stripe& stripe = StripeFor(group_id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.trackers.find(group_id);
  return it == stripe.trackers.end() ? 0 : it->second.count();
}

int64_t ShapeService::TotalObservations() const {
  int64_t total = 0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (const auto& [gid, tracker] : stripes_[s].trackers) {
      total += tracker.count();
    }
  }
  return total;
}

size_t ShapeService::NumGroups() const {
  size_t total = 0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    total += stripes_[s].trackers.size();
  }
  return total;
}

std::vector<int> ShapeService::TrackedGroups() const {
  std::vector<int> groups;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (const auto& [gid, tracker] : stripes_[s].trackers) {
      groups.push_back(gid);
    }
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

bool ShapeService::Forget(int group_id) {
  Stripe& stripe = StripeFor(group_id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.trackers.erase(group_id) > 0;
}

void ShapeService::SwapModel(
    std::shared_ptr<const ml::GbdtClassifier> model) {
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    model_.swap(model);
  }
  // The displaced version is released outside the lock: if this thread
  // holds the last reference, the destructor runs without stalling
  // readers trying to snapshot.
  model_swaps_total_->Increment();
}

std::shared_ptr<const ml::GbdtClassifier> ShapeService::ModelSnapshot()
    const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

std::vector<ShapeService::GroupState> ShapeService::ExportState() const {
  // Lock every stripe (in index order, the only order used) so the export
  // is a point-in-time cut: no concurrent Observe lands halfway.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_stripes_);
  for (size_t s = 0; s < num_stripes_; ++s) {
    locks.push_back(LockStripe(s));
  }
  std::vector<GroupState> states;
  for (size_t s = 0; s < num_stripes_; ++s) {
    for (const auto& [gid, tracker] : stripes_[s].trackers) {
      GroupState state;
      state.group_id = gid;
      state.log_likelihood = tracker.log_likelihood();
      state.count = tracker.count();
      state.num_clamped = tracker.num_clamped();
      states.push_back(std::move(state));
    }
  }
  std::sort(states.begin(), states.end(),
            [](const GroupState& a, const GroupState& b) {
              return a.group_id < b.group_id;
            });
  return states;
}

Status ShapeService::RestoreState(const std::vector<GroupState>& states) {
  // Validate and build every tracker before touching the live stripes, so
  // a corrupt entry leaves the service exactly as it was.
  std::vector<std::pair<int, OnlineShapeTracker>> restored;
  restored.reserve(states.size());
  for (const GroupState& state : states) {
    if (state.group_id < 0) {
      return Status::InvalidArgument(
          StrCat("restored group_id must be >= 0, got ", state.group_id));
    }
    auto tracker =
        OnlineShapeTracker::Make(library_, options_.decay, options_.pmf_floor);
    RVAR_RETURN_NOT_OK(tracker.status());
    RVAR_RETURN_NOT_OK(tracker->RestoreState(state.log_likelihood,
                                             state.count, state.num_clamped));
    restored.emplace_back(state.group_id, std::move(*tracker));
  }
  for (size_t i = 1; i < restored.size(); ++i) {
    if (restored[i].first <= restored[i - 1].first) {
      return Status::InvalidArgument(
          "restored group states must be strictly ascending by group id");
    }
  }
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_stripes_);
  for (size_t s = 0; s < num_stripes_; ++s) {
    locks.push_back(LockStripe(s));
  }
  for (size_t s = 0; s < num_stripes_; ++s) {
    stripes_[s].trackers.clear();
  }
  for (auto& [gid, tracker] : restored) {
    stripes_[StripeIndexFor(gid)].trackers.emplace(gid, std::move(tracker));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rvar
