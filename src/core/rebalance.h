// Copyright 2026 The rvar Authors.
//
// KEA-style workload rebalancing model — the integration the paper names
// as the missing piece of Scenario 2 (Section 7.2): "our model doesn't
// capture the compounding of changes due to workload re-balancing, such
// as the changes of CPU utilization levels. Models that can predict the
// utilization levels given different workload distributions can be easily
// integrated, such as in KEA."
//
// The model estimates each SKU's job-driven load from telemetry
// (token-seconds per SKU over the observation window against the SKU's
// token capacity) and predicts how per-SKU utilizations shift when a
// fraction of the workload migrates between SKUs. Combined with the
// what-if engine it yields a *dynamic* SKU-shift transform that also
// moves the destination's (and source's) utilization.

#ifndef RVAR_CORE_REBALANCE_H_
#define RVAR_CORE_REBALANCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/whatif.h"
#include "sim/cluster.h"
#include "sim/telemetry.h"

namespace rvar {
namespace core {

/// \brief Per-SKU load accounting and utilization-shift prediction.
class RebalanceModel {
 public:
  /// Estimates per-SKU job-driven load from a telemetry window: each
  /// run's token-seconds are attributed to SKUs by its vertex fractions
  /// and divided by the SKU's token capacity and the window length.
  /// Fails on an empty window.
  static Result<RebalanceModel> Estimate(const sim::TelemetryStore& window,
                                         const sim::SkuCatalog& catalog,
                                         double window_seconds);

  /// Job-driven utilization share of SKU `s` (fraction of its capacity
  /// occupied by the observed workload).
  double SkuLoad(int sku_index) const;

  /// Predicted change of each SKU's utilization if `fraction` of the
  /// total observed workload moves from `from_sku` to `to_sku`
  /// (capacity-normalized: the destination absorbs the moved
  /// token-seconds against its own capacity). Entries are deltas to add
  /// to current utilizations.
  Result<std::vector<double>> UtilizationShift(int from_sku, int to_sku,
                                               double fraction) const;

  /// A Section 7.2 transform with the rebalancing feedback: moves the
  /// vertex fractions from `from_sku` to `to_sku` AND updates every
  /// `sku_util_*` feature (and the job's own `cpu_util_mean`) with the
  /// predicted utilization shift of moving that workload share.
  Result<FeatureTransform> DynamicSkuShift(const std::string& from_sku,
                                           const std::string& to_sku) const;

  const sim::SkuCatalog& catalog() const { return catalog_; }

 private:
  RebalanceModel(sim::SkuCatalog catalog, std::vector<double> load,
                 double total_token_seconds);

  sim::SkuCatalog catalog_;
  /// Per-SKU job-driven capacity share in [0, inf).
  std::vector<double> load_;
  double total_token_seconds_;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_REBALANCE_H_
