// Copyright 2026 The rvar Authors.
//
// Report formatting: renders the library's analysis artifacts as the
// paper-style text tables the bench harness prints (Table 1, Table 2,
// Figure 7 confusion matrix / accuracy buckets, scenario migrations).

#ifndef RVAR_CORE_REPORT_H_
#define RVAR_CORE_REPORT_H_

#include <string>

#include "core/baseline.h"
#include "core/predictor.h"
#include "core/shape_library.h"
#include "core/whatif.h"
#include "sim/datasets.h"

namespace rvar {
namespace core {

/// Table 1-style dataset summary (interval, groups, instances, support).
std::string RenderDatasetSummary(const sim::StudySuite& suite);

/// Table 2-style per-cluster statistics for one shape library.
std::string RenderShapeStats(const ShapeLibrary& library);

/// Figure 7b-style accuracy-by-occurrences table.
std::string RenderSupportBuckets(const PredictorEvaluation& eval);

/// Figure 8-style method comparison.
std::string RenderReconstruction(const ReconstructionComparison& cmp);

/// Section 7-style scenario migration summary (top `max_rows` moves).
std::string RenderScenario(const ScenarioResult& result,
                           const ShapeLibrary& library, int max_rows = 5);

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_REPORT_H_
