// Copyright 2026 The rvar Authors.
//
// The comparison baseline of Section 5 / Figure 8: a Griffon-style [65]
// random-forest *regression* model extended with the same optimizer and
// near-real-time machine-status features, predicting job runtime directly.
// Both methods then reconstruct the distribution of normalized runtimes on
// the test set; the paper compares them by QQ-plot MAE and KS distance.

#ifndef RVAR_CORE_BASELINE_H_
#define RVAR_CORE_BASELINE_H_

#include <memory>

#include "common/result.h"
#include "core/predictor.h"
#include "ml/forest.h"
#include "stats/distance.h"

namespace rvar {
namespace core {

/// \brief Griffon-extended runtime regressor.
class RegressionBaseline {
 public:
  /// Trains a random-forest regressor on D2 runs (features from the
  /// predictor's featurizer, targets = log runtime).
  static Result<std::unique_ptr<RegressionBaseline>> Train(
      const sim::StudySuite& suite, const VariationPredictor& predictor,
      ml::ForestConfig config);

  /// Predicted runtime (seconds) for one run's features.
  Result<double> PredictRuntime(const sim::JobRun& run) const;

 private:
  RegressionBaseline() = default;
  const Featurizer* featurizer_ = nullptr;  // owned by the predictor
  std::unique_ptr<ml::RandomForestRegressor> forest_;
};

/// \brief Figure 8's comparison: how well each method reconstructs the
/// test set's normalized-runtime distribution.
struct ReconstructionComparison {
  double regression_qq_mae = 0.0;
  double proposed_qq_mae = 0.0;
  double regression_ks = 0.0;
  double proposed_ks = 0.0;
  /// QQ series (actual vs predicted quantiles) for both methods.
  std::vector<QqPoint> regression_qq;
  std::vector<QqPoint> proposed_qq;
  int num_runs = 0;

  /// Relative KS reduction of the proposed method (paper: 9.2%).
  double KsReductionPercent() const;
};

/// Reconstructs the normalized-runtime distribution of `test_slice` with
/// (a) the regression baseline (predicted runtime, normalized by the
/// historic median) and (b) the proposed 2-step method (one draw from the
/// predicted shape per run), and compares both against the actual
/// distribution.
Result<ReconstructionComparison> CompareReconstruction(
    const sim::TelemetryStore& test_slice,
    const VariationPredictor& predictor, const RegressionBaseline& baseline,
    Rng* rng, int num_quantiles = 99);

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_BASELINE_H_
