#include "core/predictor.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "ml/feature_select.h"
#include "obs/export.h"

namespace rvar {
namespace core {

namespace {

/// Cached handles into the process registry (obs/metrics.h); magic-static
/// initialization keeps first use thread-safe.
struct PredictorMetrics {
  obs::Counter* train_total;
  obs::Counter* train_rounds_total;
  obs::Counter* predictions_total;
  obs::Counter* model_swaps_total;
  obs::Histogram* train_rows;
  obs::Histogram* predict_batch_size;
  obs::Histogram* train_latency;

  static const PredictorMetrics& Get() {
    static const PredictorMetrics metrics = [] {
      obs::Registry& r = obs::Registry::Default();
      // Row/batch-size histograms span counts, not seconds.
      const obs::HistogramOptions sizes{1.0, 1e7, 35};
      return PredictorMetrics{
          r.GetCounter("predictor_train_total"),
          r.GetCounter("predictor_train_rounds_total"),
          r.GetCounter("predictor_predictions_total"),
          r.GetCounter("predictor_model_swaps_total"),
          r.GetHistogram("predictor_train_rows", sizes),
          r.GetHistogram("predictor_predict_batch_size", sizes),
          r.GetHistogram("predictor_train_latency_seconds")};
    }();
    return metrics;
  }
};

}  // namespace

Result<std::unique_ptr<VariationPredictor>> VariationPredictor::Train(
    const sim::StudySuite& suite, PredictorConfig config) {
  obs::ScopedSpan span("predictor/train");
  obs::ScopedLatencyTimer timer(PredictorMetrics::Get().train_latency);
  auto predictor = std::unique_ptr<VariationPredictor>(
      new VariationPredictor());
  predictor->config_ = config;
  predictor->groups_ = suite.groups;
  predictor->catalog_ = suite.cluster->catalog();

  // Step 0: historic medians and shape library from D1.
  predictor->medians_ =
      GroupMedians::FromTelemetry(suite.d1.telemetry);
  {
    obs::ScopedSpan phase("predictor/build_shape_library");
    RVAR_ASSIGN_OR_RETURN(
        ShapeLibrary shapes,
        ShapeLibrary::Build(suite.d1.telemetry, predictor->medians_,
                            config.shape));
    predictor->shapes_ = std::make_unique<ShapeLibrary>(std::move(shapes));
  }
  predictor->assigner_ = std::make_unique<PosteriorAssigner>(
      predictor->shapes_.get(), config.pmf_floor);

  // Step 1: label D2 groups by posterior likelihood.
  RVAR_ASSIGN_OR_RETURN(auto labels, [&] {
    obs::ScopedSpan phase("predictor/label_groups");
    return predictor->LabelGroups(suite.d2.telemetry,
                                  config.min_label_support);
  }());
  std::set<int> distinct;
  for (const auto& [gid, label] : labels) distinct.insert(label);
  if (distinct.size() < 2) {
    return Status::FailedPrecondition(
        StrCat("training labels collapse to ", distinct.size(),
               " distinct shapes"));
  }

  // Step 2: features from compile/submit-time information, with history
  // taken from D1.
  predictor->featurizer_ = std::make_unique<Featurizer>(
      &predictor->groups_, &predictor->catalog_);
  predictor->featurizer_->SetHistory(suite.d1.telemetry);
  for (int gid : suite.d1.telemetry.GroupIds()) {
    predictor->history_support_[gid] = suite.d1.telemetry.Support(gid);
  }
  RVAR_ASSIGN_OR_RETURN(ml::Dataset train, [&] {
    obs::ScopedSpan phase("predictor/featurize");
    return predictor->featurizer_->BuildDataset(suite.d2.telemetry, labels);
  }());
  if (train.NumRows() == 0) {
    return Status::FailedPrecondition("no labeled training rows");
  }

  // Force the label space to cover all shapes (GBDT sizes its output by
  // max label + 1; the paper's label space is the K shapes).
  const int num_shapes = predictor->shapes_->num_clusters();

  // Optional importance-guided correlation filtering.
  predictor->kept_.resize(train.NumFeatures());
  for (size_t f = 0; f < train.NumFeatures(); ++f) {
    predictor->kept_[f] = f;
  }
  if (config.apply_feature_selection) {
    ml::GbdtConfig probe_config = config.gbdt;
    probe_config.num_rounds = std::min(config.gbdt.num_rounds, 15);
    ml::GbdtClassifier probe(probe_config);
    RVAR_RETURN_NOT_OK(probe.Fit(train));
    RVAR_ASSIGN_OR_RETURN(
        ml::FeatureSelection selection,
        ml::SelectUncorrelatedFeatures(train, probe.feature_importance(),
                                       config.max_abs_correlation));
    std::sort(selection.kept.begin(), selection.kept.end());
    predictor->kept_ = std::move(selection.kept);
    train = ml::ProjectFeatures(train, predictor->kept_);
  }

  // Pad the training set with the class range: GBDT must know all K
  // classes even if a shape is missing from D2 labels. We add no fake rows;
  // instead we validate the labels fit in [0, K).
  for (int label : train.y) {
    if (label < 0 || label >= num_shapes) {
      return Status::Internal(StrCat("label ", label, " outside shape range"));
    }
  }

  auto model = std::make_shared<ml::GbdtClassifier>(config.gbdt);
  {
    obs::ScopedSpan phase("predictor/fit_gbdt");
    RVAR_RETURN_NOT_OK(model->Fit(train));
  }
  predictor->model_ = std::move(model);
  const PredictorMetrics& metrics = PredictorMetrics::Get();
  metrics.train_total->Increment();
  metrics.train_rounds_total->Increment(config.gbdt.num_rounds);
  metrics.train_rows->Observe(static_cast<double>(train.NumRows()));
  return predictor;
}

Status VariationPredictor::SwapModel(
    std::shared_ptr<const ml::GbdtClassifier> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("SwapModel requires a non-null model");
  }
  if (model->num_classes() != shapes_->num_clusters()) {
    return Status::InvalidArgument(
        StrCat("replacement model predicts ", model->num_classes(),
               " classes but the shape library has ",
               shapes_->num_clusters()));
  }
  if (model->feature_importance().size() != kept_.size()) {
    return Status::InvalidArgument(
        StrCat("replacement model expects ",
               model->feature_importance().size(), " features but ",
               kept_.size(), " are kept after selection"));
  }
  std::shared_ptr<const ml::GbdtClassifier> displaced;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    displaced = std::move(model_);
    model_ = std::move(model);
  }
  // `displaced` releases outside the lock: if this thread holds the last
  // reference, the forest's destructor must not run under model_mu_.
  PredictorMetrics::Get().model_swaps_total->Increment();
  return Status::OK();
}

std::shared_ptr<const ml::GbdtClassifier> VariationPredictor::ModelSnapshot()
    const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

std::vector<double> VariationPredictor::FullFeatureImportance() const {
  const std::shared_ptr<const ml::GbdtClassifier> model = ModelSnapshot();
  const std::vector<double>& kept_imp = model->feature_importance();
  // The model is fit on exactly the kept columns, so a length mismatch
  // means the selection bookkeeping and the model disagree — a programmer
  // error that must not silently drop importances.
  RVAR_CHECK_EQ(kept_.size(), kept_imp.size());
  std::vector<double> full(featurizer_->FeatureNames().size(), 0.0);
  for (size_t i = 0; i < kept_.size(); ++i) {
    full[kept_[i]] = kept_imp[i];
  }
  return full;
}

Result<std::unordered_map<int, int>> VariationPredictor::LabelGroups(
    const sim::TelemetryStore& slice, int min_support) const {
  std::unordered_map<int, int> labels;
  for (int gid : slice.GroupsWithSupport(min_support)) {
    if (!medians_.Has(gid)) continue;  // no historic median -> skip
    auto normalized = NormalizedGroupRuntimes(
        slice, gid, medians_, config_.shape.normalization);
    if (!normalized.ok()) continue;
    RVAR_ASSIGN_OR_RETURN(int label, assigner_->Assign(*normalized));
    labels[gid] = label;
  }
  return labels;
}

Result<int> VariationPredictor::PredictShape(const sim::JobRun& run) const {
  PredictorMetrics::Get().predictions_total->Increment();
  RVAR_ASSIGN_OR_RETURN(std::vector<double> x,
                        featurizer_->FeaturesFor(run));
  return PredictFromFeatures(x);
}

Result<std::vector<int>> VariationPredictor::PredictShapeBatch(
    const std::vector<const sim::JobRun*>& runs) const {
  obs::ScopedSpan span("predictor/predict_batch");
  PredictorMetrics::Get().predict_batch_size->Observe(
      static_cast<double>(runs.size()));
  // Featurization and GBDT inference are pure reads of the trained state;
  // each run lands in its own output slot, so the batch result matches a
  // serial PredictShape loop exactly at any thread count. Each chunk keeps
  // one PredictScratch, so inference over the flattened forest allocates
  // only the per-run feature vector.
  std::vector<int> predicted;
  std::vector<Status> run_status;
  // Pin the model epoch once for the whole batch: a concurrent SwapModel
  // cannot split the batch across versions, and no chunk ever touches the
  // model slot again.
  const std::shared_ptr<const ml::GbdtClassifier> model = ModelSnapshot();
  RVAR_RETURN_NOT_OK(
      PredictShapeBatchInto(*model, runs, &predicted, &run_status));
  for (const Status& st : run_status) RVAR_RETURN_NOT_OK(st);
  return predicted;
}

Status VariationPredictor::PredictShapeBatchInto(
    const ml::GbdtClassifier& model,
    const std::vector<const sim::JobRun*>& runs, std::vector<int>* shapes,
    std::vector<Status>* run_status) const {
  // Batch-level compatibility first: a wrong-shaped epoch (e.g. a stale
  // snapshot trained against an older library) must fail the whole batch
  // before any per-run work, so the caller can fall to the next rung.
  if (model.num_classes() != shapes_->num_clusters()) {
    return Status::InvalidArgument(
        StrCat("model predicts ", model.num_classes(),
               " classes but the shape library has ",
               shapes_->num_clusters()));
  }
  if (model.feature_importance().size() != kept_.size()) {
    return Status::InvalidArgument(
        StrCat("model expects ", model.feature_importance().size(),
               " features but ", kept_.size(),
               " are kept after selection"));
  }
  shapes->assign(runs.size(), -1);
  run_status->assign(runs.size(), Status::OK());
  obs::Counter* predictions = PredictorMetrics::Get().predictions_total;
  ParallelFor(runs.size(), /*grain=*/32, [&](size_t begin, size_t end) {
    PredictScratch scratch;
    for (size_t i = begin; i < end; ++i) {
      predictions->Increment();
      if (runs[i] == nullptr) {
        (*run_status)[i] = Status::InvalidArgument("null run in batch");
        continue;
      }
      Result<std::vector<double>> x = featurizer_->FeaturesFor(*runs[i]);
      if (!x.ok()) {
        (*run_status)[i] = x.status();
        continue;
      }
      Result<int> shape = PredictFromFeatures(model, *x, &scratch);
      if (shape.ok()) {
        (*shapes)[i] = *shape;
      } else {
        (*run_status)[i] = shape.status();
      }
    }
  });
  return Status::OK();
}

Status VariationPredictor::PredictProbaFromFeatures(
    const std::vector<double>& full_features, PredictScratch* scratch) const {
  const std::shared_ptr<const ml::GbdtClassifier> model = ModelSnapshot();
  return PredictProbaWithModel(*model, full_features, scratch);
}

Status VariationPredictor::PredictProbaWithModel(
    const ml::GbdtClassifier& model,
    const std::vector<double>& full_features, PredictScratch* scratch) const {
  if (full_features.size() != featurizer_->FeatureNames().size()) {
    return Status::InvalidArgument(
        StrCat("expected ", featurizer_->FeatureNames().size(),
               " features, got ", full_features.size()));
  }
  scratch->projected.clear();
  scratch->projected.reserve(kept_.size());
  for (size_t f : kept_) scratch->projected.push_back(full_features[f]);
  model.PredictProbaInto(scratch->projected, &scratch->proba);
  return Status::OK();
}

Result<std::vector<double>> VariationPredictor::PredictProbaFromFeatures(
    const std::vector<double>& full_features) const {
  PredictScratch scratch;
  RVAR_RETURN_NOT_OK(PredictProbaFromFeatures(full_features, &scratch));
  return std::move(scratch.proba);
}

Result<int> VariationPredictor::PredictFromFeatures(
    const std::vector<double>& full_features, PredictScratch* scratch) const {
  const std::shared_ptr<const ml::GbdtClassifier> model = ModelSnapshot();
  return PredictFromFeatures(*model, full_features, scratch);
}

Result<int> VariationPredictor::PredictFromFeatures(
    const ml::GbdtClassifier& model, const std::vector<double>& full_features,
    PredictScratch* scratch) const {
  RVAR_RETURN_NOT_OK(PredictProbaWithModel(model, full_features, scratch));
  const std::vector<double>& proba = scratch->proba;
  int best = 0;
  for (size_t k = 1; k < proba.size(); ++k) {
    if (proba[k] > proba[static_cast<size_t>(best)]) {
      best = static_cast<int>(k);
    }
  }
  return best;
}

Result<int> VariationPredictor::PredictFromFeatures(
    const std::vector<double>& full_features) const {
  PredictScratch scratch;
  return PredictFromFeatures(full_features, &scratch);
}

Result<PredictorEvaluation> VariationPredictor::Evaluate(
    const sim::TelemetryStore& test_slice) const {
  using GroupLabels = std::unordered_map<int, int>;
  RVAR_ASSIGN_OR_RETURN(
      GroupLabels truth,
      LabelGroups(test_slice, config_.min_label_support));
  if (truth.empty()) {
    return Status::FailedPrecondition("no labelable groups in test slice");
  }

  // Collect the labelable runs, predict them as one parallel batch, then
  // aggregate serially in run order.
  std::vector<const sim::JobRun*> selected;
  std::vector<int> y_true;
  for (const sim::JobRun& run : test_slice.runs()) {
    const auto it = truth.find(run.group_id);
    if (it == truth.end()) continue;
    selected.push_back(&run);
    y_true.push_back(it->second);
  }
  RVAR_ASSIGN_OR_RETURN(std::vector<int> y_pred,
                        PredictShapeBatch(selected));

  struct PerGroup {
    int support = 0;
    int runs = 0;
    int hits = 0;
  };
  std::unordered_map<int, PerGroup> per_group;
  for (size_t i = 0; i < selected.size(); ++i) {
    PerGroup& pg = per_group[selected[i]->group_id];
    pg.support = HistorySupport(selected[i]->group_id);
    pg.runs++;
    pg.hits += (y_pred[i] == y_true[i]);
  }

  PredictorEvaluation eval;
  RVAR_ASSIGN_OR_RETURN(eval.accuracy, ml::Accuracy(y_true, y_pred));
  RVAR_ASSIGN_OR_RETURN(
      eval.confusion,
      ml::BuildConfusionMatrix(y_true, y_pred, shapes_->num_clusters()));

  // Figure 7b buckets by historic occurrences.
  const std::vector<std::pair<int, int>> buckets = {
      {1, 5}, {6, 10}, {11, 15}, {16, 50}, {51, 200}, {201, 1 << 30}};
  for (const auto& [lo, hi] : buckets) {
    PredictorEvaluation::SupportBucket b;
    b.lo = lo;
    b.hi = hi;
    int hits = 0;
    for (const auto& [gid, pg] : per_group) {
      if (pg.support >= lo && pg.support <= hi) {
        b.num_groups++;
        b.num_runs += pg.runs;
        hits += pg.hits;
      }
    }
    b.accuracy = b.num_runs > 0
                     ? static_cast<double>(hits) / b.num_runs
                     : 0.0;
    eval.by_support.push_back(b);
  }
  return eval;
}

std::vector<double> VariationPredictor::SampleNormalized(int cluster, int n,
                                                         Rng* rng) const {
  return SamplePmf(shapes_->grid(), shapes_->shape(cluster), n, rng);
}

int VariationPredictor::HistorySupport(int group_id) const {
  const auto it = history_support_.find(group_id);
  return it == history_support_.end() ? 0 : it->second;
}

}  // namespace core
}  // namespace rvar
