// Copyright 2026 The rvar Authors.
//
// Thread-safe serving facade over per-group OnlineShapeTracker state
// (DESIGN.md §13). The serving pipeline observes normalized runtimes for
// many job groups from many client threads at once. State is partitioned
// into share-nothing shards by a multiplicative hash of the group id:
// each shard owns its tracker map, its own observation totals, its own
// obs counters, and its own replica of the published classifier epoch —
// so the observe/query hot path never takes a lock shared with another
// shard, and a model swap publishes shard-locally without a global lock.
// Observations for one group serialize on that group's shard, preserving
// the tracker's (deterministic) per-group observation order semantics.
//
// Snapshot semantics are shard-count independent: ExportState merges
// per-shard snapshots deterministically (shard-index order, then a global
// sort by group id), so the exported state — and therefore the
// io/serialize.h kShapeServiceState image — is byte-identical whether the
// service runs 1 shard or 64.

#ifndef RVAR_CORE_SHAPE_SERVICE_H_
#define RVAR_CORE_SHAPE_SERVICE_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/online.h"
#include "core/shape_library.h"
#include "ml/gbdt.h"
#include "obs/metrics.h"

namespace rvar {
namespace core {

/// \brief Concurrent per-group shape tracking over a fixed library.
///
/// All methods are safe to call from any number of threads. Group state is
/// created on first Observe; queries for never-observed groups answer from
/// the uniform prior (the same answer a fresh tracker gives).
class ShapeService {
 public:
  struct Options {
    /// Per-observation decay on past log-likelihood mass (OnlineShapeTracker).
    double decay = 1.0;
    /// Probability floor before taking logs.
    double pmf_floor = 1e-6;
    /// Share-nothing shards; more shards = less cross-group contention.
    /// Must be >= 1. Exported state and every query answer are identical
    /// at any shard count.
    int num_shards = 16;
  };

  /// \param library must outlive the service. Rejects decay outside
  /// (0, 1], non-positive pmf_floor, and num_shards < 1 up front, so
  /// per-group tracker creation inside Observe can never fail.
  static Result<std::unique_ptr<ShapeService>> Make(const ShapeLibrary* library,
                                                    Options options);
  static Result<std::unique_ptr<ShapeService>> Make(
      const ShapeLibrary* library) {
    return Make(library, Options());
  }

  /// Incorporates one normalized runtime for `group_id`, creating the
  /// group's tracker on first contact. Never blocks on other shards.
  /// Negative group ids and non-finite runtimes are rejected with
  /// InvalidArgument (and counted in shape_service_observe_rejected)
  /// rather than clamped or dropped: a negative id would create a tracker
  /// that RestoreState — which requires ids >= 0 — could never reload.
  Status Observe(int group_id, double normalized_runtime);

  /// Posterior over shapes for the group; uniform for unknown groups.
  std::vector<double> Posterior(int group_id) const;

  /// Most likely shape for the group; -1 for unknown / unobserved groups.
  /// Callers serving this as data should substitute GlobalPriorShape()
  /// for the -1 sentinel (see serve/frontend.cc).
  int MostLikely(int group_id) const;

  /// Argmax of the library's global prior: the cluster holding the most
  /// pooled reference samples (lowest index wins ties). Always a valid
  /// cluster in [0, num_clusters) — the fallback answer for groups no
  /// tracker has ever seen.
  int GlobalPriorShape() const { return global_prior_shape_; }

  /// Drift score: posterior probability the group still follows `cluster`.
  /// 1/K for unknown groups (uniform prior).
  double ProbabilityOf(int group_id, int cluster) const;

  /// Observations incorporated for the group (0 if unknown).
  int64_t GroupCount(int group_id) const;

  /// Total observations across all groups: per-shard counts merged in
  /// shard-index order (each shard maintains its total, so this never
  /// walks the tracker maps).
  int64_t TotalObservations() const;

  /// Number of groups with a tracker.
  size_t NumGroups() const;

  /// All tracked group ids, ascending.
  std::vector<int> TrackedGroups() const;

  /// Drops one group's state (e.g. after a group is decommissioned).
  /// Returns true if the group had a tracker.
  bool Forget(int group_id);

  /// Number of share-nothing shards.
  int num_shards() const { return static_cast<int>(num_shards_); }

  /// The shard that owns `group_id` — the routing hash serving front-ends
  /// use to build per-shard queues that match the service's partitioning.
  size_t ShardIndexFor(int group_id) const;

  /// Atomically publishes `model` as the serving classifier: the global
  /// slot first, then every shard's replica in shard-index order, all via
  /// atomic shared_ptr stores (RCU: readers holding a snapshot keep the
  /// previous version alive until they drop it, so a swap never blocks or
  /// invalidates an in-flight prediction, and no global lock is taken).
  /// Null clears the slot. Thread-safe.
  void SwapModel(std::shared_ptr<const ml::GbdtClassifier> model);

  /// The currently published model; null until the first SwapModel. The
  /// returned pointer is an immutable epoch — callers score a whole batch
  /// against one snapshot for version consistency. Lock-free.
  std::shared_ptr<const ml::GbdtClassifier> ModelSnapshot() const;

  /// The shard-local replica of the published model. During a swap,
  /// replicas update in shard-index order, so two shards may briefly
  /// serve different epochs — each shard-local batch is still scored
  /// against exactly one epoch. Lock-free.
  std::shared_ptr<const ml::GbdtClassifier> ModelSnapshotForShard(
      size_t shard_index) const;

  /// One tracker's checkpointable state (io/serialize.h codec).
  struct GroupState {
    int group_id = 0;
    std::vector<double> log_likelihood;  ///< per-cluster discounted sums
    int64_t count = 0;
    int64_t num_clamped = 0;
  };

  /// Point-in-time snapshot of every tracker, ascending by group id (all
  /// shards locked together, so concurrent Observes land entirely before
  /// or entirely after the export). Byte-identical at any shard count.
  /// Maintenance path: does not touch the contention counters.
  std::vector<GroupState> ExportState() const;

  /// Replaces all tracker state with `states` (the restart path). Fully
  /// validated before anything is touched: on error the service is
  /// unchanged. Maintenance path: does not touch the contention counters.
  Status RestoreState(const std::vector<GroupState>& states);

  const ShapeLibrary& library() const { return *library_; }
  const Options& options() const { return options_; }

 private:
  /// One share-nothing partition: tracker map, observation total, obs
  /// counters, and a replica of the published model epoch. Nothing in a
  /// shard is ever touched under another shard's mutex.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<int, OnlineShapeTracker> trackers;
    int64_t total_observations = 0;  ///< guarded by mu
    /// Shard-local epoch replica; atomic shared_ptr access only.
    std::shared_ptr<const ml::GbdtClassifier> model;
    obs::Counter* observe_total = nullptr;  ///< this shard's observes
    obs::Counter* contention = nullptr;     ///< contended hot-path locks
  };

  ShapeService(const ShapeLibrary* library, Options options);

  Shard& ShardFor(int group_id) const;
  /// Locks the shard for the observe/query hot path, counting the
  /// acquisition in the shard's contention counter when another thread
  /// already holds it. Snapshot/maintenance paths lock directly instead,
  /// so contention metrics only ever reflect serving traffic.
  std::unique_lock<std::mutex> LockShard(size_t shard_index) const;

  const ShapeLibrary* library_;
  Options options_;
  std::unique_ptr<Shard[]> shards_;
  size_t num_shards_;
  int global_prior_shape_ = 0;

  // The published classifier (global slot mirrored into every shard's
  // replica). Atomic shared_ptr access only — no mutex anywhere on the
  // model path.
  std::shared_ptr<const ml::GbdtClassifier> model_;

  // Metrics (obs/metrics.h): write-only, never consulted for results.
  obs::Histogram* observe_latency_;               ///< Observe() wall clock
  obs::Histogram* query_latency_;                 ///< Posterior() wall clock
  obs::Counter* observe_total_;
  obs::Counter* observe_rejected_;  ///< negative ids / non-finite samples
  obs::Counter* model_swaps_total_;               ///< SwapModel() calls
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_SHAPE_SERVICE_H_
