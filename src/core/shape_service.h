// Copyright 2026 The rvar Authors.
//
// Thread-safe serving facade over per-group OnlineShapeTracker state
// (DESIGN.md §8). The serving pipeline observes normalized runtimes for
// many job groups from many client threads at once; trackers are sharded
// across mutex stripes by group id, so observations for different groups
// rarely contend and observations for one group serialize — preserving
// the tracker's (deterministic) per-group observation order semantics.

#ifndef RVAR_CORE_SHAPE_SERVICE_H_
#define RVAR_CORE_SHAPE_SERVICE_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/online.h"
#include "core/shape_library.h"
#include "ml/gbdt.h"
#include "obs/metrics.h"

namespace rvar {
namespace core {

/// \brief Concurrent per-group shape tracking over a fixed library.
///
/// All methods are safe to call from any number of threads. Group state is
/// created on first Observe; queries for never-observed groups answer from
/// the uniform prior (the same answer a fresh tracker gives).
class ShapeService {
 public:
  struct Options {
    /// Per-observation decay on past log-likelihood mass (OnlineShapeTracker).
    double decay = 1.0;
    /// Probability floor before taking logs.
    double pmf_floor = 1e-6;
    /// Mutex stripes; more stripes = less cross-group contention. Must be
    /// >= 1.
    int num_stripes = 16;
  };

  /// \param library must outlive the service. Rejects decay outside
  /// (0, 1], non-positive pmf_floor, and num_stripes < 1 up front, so
  /// per-group tracker creation inside Observe can never fail.
  static Result<std::unique_ptr<ShapeService>> Make(const ShapeLibrary* library,
                                                    Options options);
  static Result<std::unique_ptr<ShapeService>> Make(
      const ShapeLibrary* library) {
    return Make(library, Options());
  }

  /// Incorporates one normalized runtime for `group_id`, creating the
  /// group's tracker on first contact. Never blocks on other stripes.
  /// Non-finite runtimes are rejected with InvalidArgument (and counted in
  /// shape_service_observe_rejected) rather than clamped or dropped.
  Status Observe(int group_id, double normalized_runtime);

  /// Posterior over shapes for the group; uniform for unknown groups.
  std::vector<double> Posterior(int group_id) const;

  /// Most likely shape for the group; -1 for unknown / unobserved groups.
  int MostLikely(int group_id) const;

  /// Drift score: posterior probability the group still follows `cluster`.
  /// 1/K for unknown groups (uniform prior).
  double ProbabilityOf(int group_id, int cluster) const;

  /// Observations incorporated for the group (0 if unknown).
  int64_t GroupCount(int group_id) const;

  /// Total observations across all groups.
  int64_t TotalObservations() const;

  /// Number of groups with a tracker.
  size_t NumGroups() const;

  /// All tracked group ids, ascending.
  std::vector<int> TrackedGroups() const;

  /// Drops one group's state (e.g. after a group is decommissioned).
  /// Returns true if the group had a tracker.
  bool Forget(int group_id);

  /// Atomically publishes `model` as the serving classifier (RCU via
  /// shared_ptr: readers holding a snapshot keep the previous version
  /// alive until they drop it, so a swap never blocks or invalidates an
  /// in-flight prediction). Null clears the slot. Thread-safe.
  void SwapModel(std::shared_ptr<const ml::GbdtClassifier> model);

  /// The currently published model; null until the first SwapModel. The
  /// returned pointer is an immutable epoch — callers score a whole batch
  /// against one snapshot for version consistency.
  std::shared_ptr<const ml::GbdtClassifier> ModelSnapshot() const;

  /// One tracker's checkpointable state (io/serialize.h codec).
  struct GroupState {
    int group_id = 0;
    std::vector<double> log_likelihood;  ///< per-cluster discounted sums
    int64_t count = 0;
    int64_t num_clamped = 0;
  };

  /// Point-in-time snapshot of every tracker, ascending by group id (all
  /// stripes locked together, so concurrent Observes land entirely before
  /// or entirely after the export).
  std::vector<GroupState> ExportState() const;

  /// Replaces all tracker state with `states` (the restart path). Fully
  /// validated before anything is touched: on error the service is
  /// unchanged.
  Status RestoreState(const std::vector<GroupState>& states);

  const ShapeLibrary& library() const { return *library_; }
  const Options& options() const { return options_; }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<int, OnlineShapeTracker> trackers;
  };

  ShapeService(const ShapeLibrary* library, Options options);

  size_t StripeIndexFor(int group_id) const;
  Stripe& StripeFor(int group_id) const;
  /// Locks the stripe, counting the acquisition in the stripe's contention
  /// counter when another thread already holds it.
  std::unique_lock<std::mutex> LockStripe(size_t stripe_index) const;

  const ShapeLibrary* library_;
  Options options_;
  std::unique_ptr<Stripe[]> stripes_;
  size_t num_stripes_;

  // The published classifier. The mutex guards only the pointer copy
  // (nanoseconds); the pointee is immutable, so readers work lock-free
  // after the snapshot.
  mutable std::mutex model_mu_;
  std::shared_ptr<const ml::GbdtClassifier> model_;

  // Metrics (obs/metrics.h): write-only, never consulted for results.
  obs::Histogram* observe_latency_;               ///< Observe() wall clock
  obs::Histogram* query_latency_;                 ///< Posterior() wall clock
  obs::Counter* observe_total_;
  obs::Counter* observe_rejected_;  ///< non-finite samples refused
  obs::Counter* model_swaps_total_;               ///< SwapModel() calls
  std::vector<obs::Counter*> stripe_contention_;  ///< contended lock grabs
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_SHAPE_SERVICE_H_
