// Copyright 2026 The rvar Authors.
//
// Thread-safe serving facade over per-group OnlineShapeTracker state
// (DESIGN.md §13). The serving pipeline observes normalized runtimes for
// many job groups from many client threads at once. State is partitioned
// into share-nothing shards by a multiplicative hash of the group id:
// each shard owns its tracker map, its own observation totals, its own
// obs counters, and its own replica of the published classifier epoch —
// so the observe/query hot path never takes a lock shared with another
// shard, and a model swap publishes shard-locally without a global lock.
// Observations for one group serialize on that group's shard, preserving
// the tracker's (deterministic) per-group observation order semantics.
//
// Snapshot semantics are shard-count independent: ExportState merges
// per-shard snapshots deterministically (shard-index order, then a global
// sort by group id), so the exported state — and therefore the
// io/serialize.h kShapeServiceState image — is byte-identical whether the
// service runs 1 shard or 64.

#ifndef RVAR_CORE_SHAPE_SERVICE_H_
#define RVAR_CORE_SHAPE_SERVICE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/online.h"
#include "core/shape_library.h"
#include "ml/gbdt.h"
#include "obs/metrics.h"
#include "stats/kll_sketch.h"

namespace rvar {
namespace core {

/// \brief Concurrent per-group shape tracking over a fixed library.
///
/// All methods are safe to call from any number of threads. Group state is
/// created on first Observe; queries for never-observed groups answer from
/// the uniform prior (the same answer a fresh tracker gives).
class ShapeService {
 public:
  struct Options {
    /// Per-observation decay on past log-likelihood mass (OnlineShapeTracker).
    double decay = 1.0;
    /// Probability floor before taking logs.
    double pmf_floor = 1e-6;
    /// Share-nothing shards; more shards = less cross-group contention.
    /// Must be >= 1. Exported state and every query answer are identical
    /// at any shard count.
    int num_shards = 16;
    /// Accuracy knob of the per-group quantile sketch (KllSketch top-level
    /// capacity): larger = tighter rank error, more memory. Bounded state
    /// per group is ~2 KB at the default. Must lie in [KllSketch::kMinK,
    /// KllSketch::kMaxK]; snapshots restore only into a service with the
    /// same value.
    int sketch_k = 200;
    /// Per-shard capacity of the reconstructed-PMF cache serving
    /// PriorShape/ReconstructPmf (entries, not bytes; a 200-bin entry is
    /// ~1.7 KB). 0 disables caching. The cache never changes an answer —
    /// entries are invalidated by a per-group version stamp bumped on
    /// every state change.
    int pmf_cache_entries = 1024;
  };

  /// \param library must outlive the service. Rejects decay outside
  /// (0, 1], non-positive pmf_floor, and num_shards < 1 up front, so
  /// per-group tracker creation inside Observe can never fail.
  static Result<std::unique_ptr<ShapeService>> Make(const ShapeLibrary* library,
                                                    Options options);
  static Result<std::unique_ptr<ShapeService>> Make(
      const ShapeLibrary* library) {
    return Make(library, Options());
  }

  /// Incorporates one normalized runtime for `group_id`, creating the
  /// group's tracker on first contact. Never blocks on other shards.
  /// Negative group ids and non-finite runtimes are rejected with
  /// InvalidArgument (and counted in shape_service_observe_rejected)
  /// rather than clamped or dropped: a negative id would create a tracker
  /// that RestoreState — which requires ids >= 0 — could never reload.
  Status Observe(int group_id, double normalized_runtime);

  /// Posterior over shapes for the group; uniform for unknown groups.
  std::vector<double> Posterior(int group_id) const;

  /// Most likely shape for the group; -1 for unknown / unobserved groups.
  /// Callers serving this as data should substitute GlobalPriorShape()
  /// for the -1 sentinel (see serve/frontend.cc).
  int MostLikely(int group_id) const;

  /// Argmax of the library's global prior: the cluster holding the most
  /// pooled reference samples (lowest index wins ties). Always a valid
  /// cluster in [0, num_clusters) — the fallback answer for groups no
  /// tracker has ever seen.
  int GlobalPriorShape() const { return global_prior_shape_; }

  /// The serving prior rung's answer (serve/frontend.cc): the Eq. 9
  /// posterior argmax over the group's *reconstructed* observation PMF —
  /// per-bin counts rebuilt on demand from the group's quantile sketch
  /// and scored against the shared log theta table — falling back to
  /// GlobalPriorShape() for unknown (or empty) groups. Always a valid
  /// cluster. Reconstructions are memoized in a per-shard cache keyed by
  /// the group's version stamp, so repeated prior queries between
  /// observations cost one map lookup.
  int PriorShape(int group_id) const;

  /// Reconstructs the group's smoothed, normalized observation PMF (the
  /// ShapeLibrary::ObservationPmf representation) from its sketch into
  /// `pmf`. Returns false (and clears `pmf`) for unknown groups. Shares
  /// the PriorShape reconstruction cache.
  bool ReconstructPmf(int group_id, std::vector<double>* pmf) const;

  /// Drift score: posterior probability the group still follows `cluster`.
  /// 1/K for unknown groups (uniform prior).
  double ProbabilityOf(int group_id, int cluster) const;

  /// Observations incorporated for the group (0 if unknown).
  int64_t GroupCount(int group_id) const;

  /// Total observations across all groups: per-shard counts merged in
  /// shard-index order (each shard maintains its total, so this never
  /// walks the tracker maps).
  int64_t TotalObservations() const;

  /// Number of groups with a tracker.
  size_t NumGroups() const;

  /// All tracked group ids, ascending.
  std::vector<int> TrackedGroups() const;

  /// Drops one group's state (e.g. after a group is decommissioned).
  /// Returns true if the group had a tracker.
  bool Forget(int group_id);

  /// Number of share-nothing shards.
  int num_shards() const { return static_cast<int>(num_shards_); }

  /// The shard that owns `group_id` — the routing hash serving front-ends
  /// use to build per-shard queues that match the service's partitioning.
  size_t ShardIndexFor(int group_id) const;

  /// Atomically publishes `model` as the serving classifier: the global
  /// slot first, then every shard's replica in shard-index order, all via
  /// atomic shared_ptr stores (RCU: readers holding a snapshot keep the
  /// previous version alive until they drop it, so a swap never blocks or
  /// invalidates an in-flight prediction, and no global lock is taken).
  /// Null clears the slot. Thread-safe.
  void SwapModel(std::shared_ptr<const ml::GbdtClassifier> model);

  /// The currently published model; null until the first SwapModel. The
  /// returned pointer is an immutable epoch — callers score a whole batch
  /// against one snapshot for version consistency. Lock-free.
  std::shared_ptr<const ml::GbdtClassifier> ModelSnapshot() const;

  /// The shard-local replica of the published model. During a swap,
  /// replicas update in shard-index order, so two shards may briefly
  /// serve different epochs — each shard-local batch is still scored
  /// against exactly one epoch. Lock-free.
  std::shared_ptr<const ml::GbdtClassifier> ModelSnapshotForShard(
      size_t shard_index) const;

  /// One group's checkpointable state (io/serialize.h codec): the
  /// tracker's discounted sums plus the bounded quantile sketch. The
  /// sketch is mandatory on restore — RestoreState refuses states without
  /// one (pre-sketch images fail at decode, not half-load).
  struct GroupState {
    int group_id = 0;
    std::vector<double> log_likelihood;  ///< per-cluster discounted sums
    int64_t count = 0;
    int64_t num_clamped = 0;
    std::optional<KllSketch> sketch;  ///< bounded per-group summary
  };

  /// Point-in-time snapshot of every tracker, ascending by group id (all
  /// shards locked together, so concurrent Observes land entirely before
  /// or entirely after the export). Byte-identical at any shard count.
  /// Maintenance path: does not touch the contention counters.
  std::vector<GroupState> ExportState() const;

  /// Replaces all tracker state with `states` (the restart path). Fully
  /// validated before anything is touched: on error the service is
  /// unchanged. Maintenance path: does not touch the contention counters.
  Status RestoreState(const std::vector<GroupState>& states);

  const ShapeLibrary& library() const { return *library_; }
  const Options& options() const { return options_; }

 private:
  /// One tracked group: the running posterior, the bounded quantile
  /// sketch, and a version stamp bumped on every mutation (the
  /// reconstruction cache's invalidation key).
  struct GroupEntry {
    GroupEntry(OnlineShapeTracker tracker_in, KllSketch sketch_in)
        : tracker(std::move(tracker_in)), sketch(std::move(sketch_in)) {}
    OnlineShapeTracker tracker;
    KllSketch sketch;
    uint64_t version = 0;
  };

  /// One cached PMF reconstruction: valid while the group's version stamp
  /// still matches. `counts` is the raw BinCountsInto output (unsmoothed,
  /// unnormalized) so both the Eq. 9 scorer and ReconstructPmf can reuse
  /// it.
  struct CacheEntry {
    uint64_t version = 0;
    int shape = 0;
    std::vector<double> counts;
  };

  /// One share-nothing partition: group map, observation total, obs
  /// counters, reconstruction cache, and a replica of the published model
  /// epoch. Nothing in a shard is ever touched under another shard's
  /// mutex.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<int, GroupEntry> groups;
    /// PMF reconstruction memo; guarded by mu. Bounded at
    /// options.pmf_cache_entries — overflow clears the whole map (cheap,
    /// deterministic, and correctness never depends on residency).
    mutable std::unordered_map<int, CacheEntry> pmf_cache;
    /// Reconstruction target when caching is disabled (entries = 0);
    /// guarded by mu like the cache it substitutes for.
    mutable CacheEntry reconstruct_scratch;
    int64_t total_observations = 0;  ///< guarded by mu
    /// Shard-local epoch replica; atomic shared_ptr access only.
    std::shared_ptr<const ml::GbdtClassifier> model;
    obs::Counter* observe_total = nullptr;  ///< this shard's observes
    obs::Counter* contention = nullptr;     ///< contended hot-path locks
  };

  ShapeService(const ShapeLibrary* library, Options options,
               std::shared_ptr<const ClusterLogPmf> log_pmf);

  Shard& ShardFor(int group_id) const;
  /// Locks the shard for the observe/query hot path, counting the
  /// acquisition in the shard's contention counter when another thread
  /// already holds it. Snapshot/maintenance paths lock directly instead,
  /// so contention metrics only ever reflect serving traffic.
  std::unique_lock<std::mutex> LockShard(size_t shard_index) const;

  /// Looks up (or rebuilds) the group's cached reconstruction. Caller
  /// holds the shard lock; returns the up-to-date entry for `entry`.
  const CacheEntry& ReconstructLocked(Shard& shard, int group_id,
                                      const GroupEntry& entry) const;

  const ShapeLibrary* library_;
  Options options_;
  /// Shared log theta table (ClusterLogPmf): one copy serves every
  /// tracker in every shard plus the Eq. 9 prior scorer.
  std::shared_ptr<const ClusterLogPmf> log_pmf_;
  std::unique_ptr<Shard[]> shards_;
  size_t num_shards_;
  int global_prior_shape_ = 0;

  // The published classifier (global slot mirrored into every shard's
  // replica). Atomic shared_ptr access only — no mutex anywhere on the
  // model path.
  std::shared_ptr<const ml::GbdtClassifier> model_;

  // Metrics (obs/metrics.h): write-only, never consulted for results.
  obs::Histogram* observe_latency_;               ///< Observe() wall clock
  obs::Histogram* query_latency_;                 ///< Posterior() wall clock
  obs::Counter* observe_total_;
  obs::Counter* observe_rejected_;  ///< negative ids / non-finite samples
  obs::Counter* model_swaps_total_;               ///< SwapModel() calls
  obs::Counter* pmf_cache_hits_;    ///< reconstruction served from cache
  obs::Counter* pmf_cache_misses_;  ///< reconstruction recomputed
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_SHAPE_SERVICE_H_
