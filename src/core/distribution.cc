#include "core/distribution.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace rvar {
namespace core {

RuntimeDistribution::RuntimeDistribution(const BinGrid& grid,
                                         std::vector<double> pmf,
                                         Normalization norm, int cluster,
                                         double median)
    : grid_(grid),
      pmf_(std::move(pmf)),
      norm_(norm),
      cluster_(cluster),
      median_seconds_(median) {}

Result<RuntimeDistribution> RuntimeDistribution::Make(
    const ShapeLibrary& library, int cluster, double median_seconds) {
  if (cluster < 0 || cluster >= library.num_clusters()) {
    return Status::OutOfRange(StrCat("cluster ", cluster, " outside [0,",
                                     library.num_clusters(), ")"));
  }
  // NaN slips past a plain sign check (it compares false to everything),
  // so the median must be explicitly finite before use.
  if (!std::isfinite(median_seconds)) {
    return Status::InvalidArgument("median must be finite");
  }
  if (library.normalization() == Normalization::kRatio &&
      median_seconds <= 0.0) {
    return Status::InvalidArgument(
        "Ratio normalization needs a positive median");
  }
  std::vector<double> pmf = library.shape(cluster);
  const double mass = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  if (!std::isfinite(mass) || mass <= 0.0) {
    return Status::FailedPrecondition(
        StrCat("shape ", cluster, " has zero or non-finite mass"));
  }
  for (double& v : pmf) v /= mass;
  return RuntimeDistribution(library.grid(), std::move(pmf),
                             library.normalization(), cluster,
                             median_seconds);
}

double RuntimeDistribution::Denormalize(double normalized) const {
  return norm_ == Normalization::kRatio
             ? normalized * median_seconds_
             : normalized + median_seconds_;
}

double RuntimeDistribution::Normalize(double t_seconds) const {
  return NormalizeRuntime(norm_, t_seconds, median_seconds_);
}

double RuntimeDistribution::QuantileSeconds(double q) const {
  return Denormalize(PmfQuantile(grid_, pmf_, q));
}

double RuntimeDistribution::ExceedanceProbability(double t_seconds) const {
  const double x = Normalize(t_seconds);
  if (x <= grid_.lo()) return 1.0;
  double tail = 0.0;
  const int from = grid_.BinIndex(x);
  for (int b = from; b < grid_.num_bins(); ++b) {
    tail += pmf_[static_cast<size_t>(b)];
  }
  // Within-bin linear correction for the partial first bin.
  if (from < grid_.num_bins() - 1) {
    const double left = grid_.lo() + grid_.bin_width() * from;
    const double frac =
        std::clamp((x - left) / grid_.bin_width(), 0.0, 1.0);
    tail -= frac * pmf_[static_cast<size_t>(from)];
  }
  return std::clamp(tail, 0.0, 1.0);
}

double RuntimeDistribution::OutlierProbability() const {
  return pmf_.back();
}

double RuntimeDistribution::MeanSeconds() const {
  return Denormalize(PmfMean(grid_, pmf_));
}

std::vector<double> RuntimeDistribution::Sample(int n, Rng* rng) const {
  std::vector<double> xs = SamplePmf(grid_, pmf_, n, rng);
  for (double& x : xs) x = Denormalize(x);
  return xs;
}

}  // namespace core
}  // namespace rvar
