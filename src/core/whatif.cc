#include "core/whatif.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/strings.h"

namespace rvar {
namespace core {

WhatIfEngine::WhatIfEngine(const VariationPredictor* predictor)
    : predictor_(predictor) {
  RVAR_CHECK(predictor != nullptr);
}

Result<ScenarioResult> WhatIfEngine::Run(
    const sim::TelemetryStore& slice, const std::string& name,
    const FeatureTransform& transform) const {
  if (!transform) {
    return Status::InvalidArgument("scenario transform is empty");
  }
  const int k = predictor_->shapes().num_clusters();
  ScenarioResult result;
  result.name = name;
  result.transition_counts.assign(static_cast<size_t>(k),
                                  std::vector<int>(static_cast<size_t>(k), 0));

  // Each run's before/after prediction is independent; per-chunk count
  // matrices merge in chunk order (integer sums, so the totals are exact).
  const Featurizer& featurizer = predictor_->featurizer();
  const std::vector<sim::JobRun>& runs = slice.runs();
  struct Counts {
    std::vector<std::vector<int>> transitions;
    int num_runs = 0;
    int num_changed = 0;
    Status status = Status::OK();
  };
  Counts identity;
  identity.transitions.assign(static_cast<size_t>(k),
                              std::vector<int>(static_cast<size_t>(k), 0));
  Counts merged = ParallelReduce<Counts>(
      runs.size(), /*grain=*/32, std::move(identity),
      [&](size_t begin, size_t end) {
        Counts local;
        local.transitions.assign(
            static_cast<size_t>(k),
            std::vector<int>(static_cast<size_t>(k), 0));
        // One scratch per chunk: both re-predictions of every run in the
        // chunk reuse the same projection/softmax buffers.
        PredictScratch scratch;
        for (size_t i = begin; i < end; ++i) {
          Result<std::vector<double>> features =
              featurizer.FeaturesFor(runs[i]);
          if (!features.ok()) {
            local.status = features.status();
            return local;
          }
          Result<int> before =
              predictor_->PredictFromFeatures(*features, &scratch);
          if (!before.ok()) {
            local.status = before.status();
            return local;
          }
          transform(featurizer, &*features);
          Result<int> after =
              predictor_->PredictFromFeatures(*features, &scratch);
          if (!after.ok()) {
            local.status = after.status();
            return local;
          }
          local.transitions[static_cast<size_t>(*before)]
                           [static_cast<size_t>(*after)]++;
          local.num_runs++;
          if (*before != *after) local.num_changed++;
        }
        return local;
      },
      [&](Counts acc, Counts part) {
        if (!acc.status.ok()) return acc;
        if (!part.status.ok()) return part;
        for (int f = 0; f < k; ++f) {
          for (int t = 0; t < k; ++t) {
            acc.transitions[static_cast<size_t>(f)][static_cast<size_t>(t)] +=
                part.transitions[static_cast<size_t>(f)]
                                [static_cast<size_t>(t)];
          }
        }
        acc.num_runs += part.num_runs;
        acc.num_changed += part.num_changed;
        return acc;
      });
  RVAR_RETURN_NOT_OK(merged.status);
  result.transition_counts = std::move(merged.transitions);
  result.num_runs = merged.num_runs;
  result.num_changed = merged.num_changed;

  // Row totals for per-source fractions.
  std::vector<int> from_totals(static_cast<size_t>(k), 0);
  for (int f = 0; f < k; ++f) {
    for (int t = 0; t < k; ++t) {
      from_totals[static_cast<size_t>(f)] +=
          result.transition_counts[static_cast<size_t>(f)]
                                  [static_cast<size_t>(t)];
    }
  }
  for (int f = 0; f < k; ++f) {
    for (int t = 0; t < k; ++t) {
      if (f == t) continue;
      const int count = result.transition_counts[static_cast<size_t>(f)]
                                                [static_cast<size_t>(t)];
      if (count == 0) continue;
      Migration m;
      m.from = f;
      m.to = t;
      m.count = count;
      m.fraction_of_total =
          result.num_runs > 0
              ? static_cast<double>(count) / result.num_runs
              : 0.0;
      m.fraction_of_from =
          from_totals[static_cast<size_t>(f)] > 0
              ? static_cast<double>(count) /
                    from_totals[static_cast<size_t>(f)]
              : 0.0;
      result.top_migrations.push_back(m);
    }
  }
  std::sort(result.top_migrations.begin(), result.top_migrations.end(),
            [](const Migration& a, const Migration& b) {
              return a.count > b.count;
            });
  return result;
}

namespace {

// Sets feature `name` to `value` if present; missing names are ignored so
// transforms compose across featurizer versions.
void SetFeature(const Featurizer& featurizer, std::vector<double>* x,
                const std::string& name, double value) {
  const int idx = featurizer.IndexOf(name);
  if (idx >= 0) (*x)[static_cast<size_t>(idx)] = value;
}

double GetFeature(const Featurizer& featurizer, const std::vector<double>& x,
                  const std::string& name) {
  const int idx = featurizer.IndexOf(name);
  return idx >= 0 ? x[static_cast<size_t>(idx)] : 0.0;
}

}  // namespace

FeatureTransform WhatIfEngine::DisableSpareTokens() {
  return [](const Featurizer& featurizer, std::vector<double>* x) {
    // The counterfactual world has no spare tokens anywhere, so every
    // token statistic collapses onto the guaranteed allocation.
    const double allocation = GetFeature(featurizer, *x, "allocated_tokens");
    SetFeature(featurizer, x, "hist_spare_tokens_mean", 0.0);
    SetFeature(featurizer, x, "spare_availability", 0.0);
    const double max_mean =
        GetFeature(featurizer, *x, "hist_max_tokens_mean");
    SetFeature(featurizer, x, "hist_max_tokens_mean",
               std::min(max_mean, allocation));
    const double avg_mean =
        GetFeature(featurizer, *x, "hist_avg_tokens_mean");
    SetFeature(featurizer, x, "hist_avg_tokens_mean",
               std::min(avg_mean, allocation));
    // Token-usage spread came from the fluctuating spare supply.
    if (max_mean > allocation) {
      SetFeature(featurizer, x, "hist_max_tokens_std", 0.0);
    }
  };
}

FeatureTransform WhatIfEngine::ShiftSkuVertices(const std::string& from_sku,
                                                const std::string& to_sku) {
  return [from_sku, to_sku](const Featurizer& featurizer,
                            std::vector<double>* x) {
    const std::string from_name = StrCat("hist_sku_frac_", from_sku);
    const std::string to_name = StrCat("hist_sku_frac_", to_sku);
    const double moved = GetFeature(featurizer, *x, from_name);
    SetFeature(featurizer, x, from_name, 0.0);
    SetFeature(featurizer, x, to_name,
               GetFeature(featurizer, *x, to_name) + moved);
    // The moved vertices now experience the destination SKU's machine
    // utilization instead of the source's.
    const double util_from =
        GetFeature(featurizer, *x, StrCat("sku_util_", from_sku));
    const double util_to =
        GetFeature(featurizer, *x, StrCat("sku_util_", to_sku));
    const double util_mean = GetFeature(featurizer, *x, "cpu_util_mean");
    SetFeature(featurizer, x, "cpu_util_mean",
               util_mean + moved * (util_to - util_from));
  };
}

FeatureTransform WhatIfEngine::EqualizeLoad() {
  return [](const Featurizer& featurizer, std::vector<double>* x) {
    SetFeature(featurizer, x, "cpu_util_std", 0.0);
    // Collapse per-SKU utilizations onto their mean, and pull the job's
    // own machines to that mean too (equal load on all machines means no
    // job sits in a hot pocket).
    std::vector<int> sku_idx;
    double mean = 0.0;
    for (size_t f = 0; f < featurizer.FeatureNames().size(); ++f) {
      const std::string& name = featurizer.FeatureNames()[f];
      if (StartsWith(name, "sku_util_")) {
        sku_idx.push_back(static_cast<int>(f));
        mean += (*x)[f];
      }
    }
    if (!sku_idx.empty()) {
      mean /= static_cast<double>(sku_idx.size());
      for (int f : sku_idx) (*x)[static_cast<size_t>(f)] = mean;
      SetFeature(featurizer, x, "cpu_util_mean", mean);
    }
  };
}

}  // namespace core
}  // namespace rvar
