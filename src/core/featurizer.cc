#include "core/featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/strings.h"
#include "stats/descriptive.h"

namespace rvar {
namespace core {

Featurizer::Featurizer(const std::vector<sim::JobGroupSpec>* groups,
                       const sim::SkuCatalog* catalog)
    : groups_(groups), catalog_(catalog) {
  RVAR_CHECK(groups != nullptr && catalog != nullptr);
  // Intrinsic plan features.
  names_ = {"log_est_cardinality", "log_est_cost", "num_stages",
            "total_cost_factor", "num_operators"};
  for (int op = 0; op < sim::kNumOperatorTypes; ++op) {
    names_.push_back(StrCat(
        "op_", sim::OperatorTypeName(static_cast<sim::OperatorType>(op))));
  }
  // Historic group aggregates.
  for (const char* n :
       {"hist_input_gb_mean", "hist_input_gb_std", "hist_temp_gb_mean",
        "hist_vertices_mean", "hist_max_tokens_mean", "hist_max_tokens_std",
        "hist_avg_tokens_mean", "hist_spare_tokens_mean",
        "hist_runtime_median"}) {
    names_.push_back(n);
  }
  for (size_t s = 0; s < catalog_->NumSkus(); ++s) {
    names_.push_back(StrCat("hist_sku_frac_", catalog_->sku(s).name));
  }
  // Allocation.
  names_.push_back("allocated_tokens");
  // Environment at submit.
  for (size_t s = 0; s < catalog_->NumSkus(); ++s) {
    names_.push_back(StrCat("sku_util_", catalog_->sku(s).name));
  }
  for (const char* n : {"cpu_util_mean", "cpu_util_std",
                        "cluster_baseline_util", "spare_availability",
                        "tod_sin", "tod_cos"}) {
    names_.push_back(n);
  }
  for (size_t i = 0; i < names_.size(); ++i) {
    name_index_[names_[i]] = static_cast<int>(i);
  }
}

void Featurizer::SetHistory(const sim::TelemetryStore& history) {
  history_.clear();
  const size_t num_skus = catalog_->NumSkus();
  for (int gid : history.GroupIds()) {
    GroupHistory h;
    RunningStats input, max_tokens;
    double temp = 0.0, vertices = 0.0, avg_tokens = 0.0, spare = 0.0;
    std::vector<double> sku_frac(num_skus, 0.0);
    const std::vector<size_t>& idx = history.RunsOfGroup(gid);
    for (size_t i : idx) {
      const sim::JobRun& run = history.run(i);
      input.Add(run.input_gb);
      max_tokens.Add(static_cast<double>(run.max_tokens_used));
      temp += run.temp_data_gb;
      vertices += run.total_vertices;
      avg_tokens += run.avg_tokens_used;
      spare += run.avg_spare_tokens;
      for (size_t s = 0; s < num_skus && s < run.sku_vertex_fraction.size();
           ++s) {
        sku_frac[s] += run.sku_vertex_fraction[s];
      }
    }
    // Historic runtime scale. Shape statistics of the historic runtimes
    // (COV, tail ratios) are deliberately NOT features: they are proxies
    // of the label itself and would break the counterfactual consistency
    // of the Section 7 what-if transforms.
    h.runtime_median = Median(history.GroupRuntimes(gid));
    const double n = static_cast<double>(idx.size());
    h.support = static_cast<int>(idx.size());
    h.input_mean = input.mean();
    h.input_std = input.stddev();
    h.temp_mean = temp / n;
    h.vertices_mean = vertices / n;
    h.max_tokens_mean = max_tokens.mean();
    h.max_tokens_std = max_tokens.stddev();
    h.avg_tokens_mean = avg_tokens / n;
    h.spare_tokens_mean = spare / n;
    for (double& f : sku_frac) f /= n;
    h.sku_frac = std::move(sku_frac);
    history_[gid] = std::move(h);
  }
}

Status Featurizer::RestoreHistory(
    std::unordered_map<int, GroupHistory> history) {
  const size_t num_skus = catalog_->NumSkus();
  for (const auto& [gid, h] : history) {
    if (h.sku_frac.size() != num_skus) {
      return Status::InvalidArgument(
          StrCat("group ", gid, " history holds ", h.sku_frac.size(),
                 " SKU fractions, catalog has ", num_skus));
    }
    const double fields[] = {h.input_mean,      h.input_std,
                             h.temp_mean,       h.vertices_mean,
                             h.max_tokens_mean, h.max_tokens_std,
                             h.avg_tokens_mean, h.spare_tokens_mean,
                             h.runtime_median};
    for (double v : fields) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StrCat("group ", gid, " history holds a non-finite aggregate"));
      }
    }
    for (double f : h.sku_frac) {
      if (!std::isfinite(f)) {
        return Status::InvalidArgument(StrCat(
            "group ", gid, " history holds a non-finite SKU fraction"));
      }
    }
    if (h.support < 0) {
      return Status::InvalidArgument(
          StrCat("group ", gid, " history support must be >= 0"));
    }
  }
  history_ = std::move(history);
  return Status::OK();
}

Featurizer::GroupHistory Featurizer::HistoryFor(
    const sim::JobRun& run) const {
  const auto it = history_.find(run.group_id);
  if (it != history_.end()) return it->second;
  // Cold start: the run's own telemetry stands in for group history.
  GroupHistory h;
  h.support = 0;
  h.input_mean = run.input_gb;
  h.input_std = 0.0;
  h.temp_mean = run.temp_data_gb;
  h.vertices_mean = run.total_vertices;
  h.max_tokens_mean = run.max_tokens_used;
  h.max_tokens_std = 0.0;
  h.avg_tokens_mean = run.avg_tokens_used;
  h.spare_tokens_mean = run.avg_spare_tokens;
  h.runtime_median = run.runtime_seconds;
  h.sku_frac = run.sku_vertex_fraction;
  h.sku_frac.resize(catalog_->NumSkus(), 0.0);
  return h;
}

int Featurizer::IndexOf(const std::string& name) const {
  const auto it = name_index_.find(name);
  return it == name_index_.end() ? -1 : it->second;
}

Result<std::vector<double>> Featurizer::FeaturesFor(
    const sim::JobRun& run) const {
  if (run.group_id < 0 ||
      static_cast<size_t>(run.group_id) >= groups_->size()) {
    return Status::OutOfRange(
        StrCat("run references unknown group ", run.group_id));
  }
  const sim::JobGroupSpec& group =
      (*groups_)[static_cast<size_t>(run.group_id)];
  const GroupHistory h = HistoryFor(run);
  const size_t num_skus = catalog_->NumSkus();

  std::vector<double> x;
  x.reserve(names_.size());
  // Intrinsic.
  x.push_back(std::log(std::max(group.plan.estimated_cardinality, 1.0)));
  x.push_back(std::log(std::max(group.plan.estimated_cost, 1.0)));
  x.push_back(group.plan.num_stages);
  x.push_back(group.plan.TotalCostFactor());
  x.push_back(static_cast<double>(group.plan.nodes.size()));
  for (int count : group.plan.OperatorCounts()) {
    x.push_back(count);
  }
  // Historic aggregates.
  x.push_back(h.input_mean);
  x.push_back(h.input_std);
  x.push_back(h.temp_mean);
  x.push_back(h.vertices_mean);
  x.push_back(h.max_tokens_mean);
  x.push_back(h.max_tokens_std);
  x.push_back(h.avg_tokens_mean);
  x.push_back(h.spare_tokens_mean);
  x.push_back(h.runtime_median);
  for (size_t s = 0; s < num_skus; ++s) {
    x.push_back(s < h.sku_frac.size() ? h.sku_frac[s] : 0.0);
  }
  // Allocation.
  x.push_back(run.allocated_tokens);
  // Environment at submit.
  for (size_t s = 0; s < num_skus; ++s) {
    x.push_back(s < run.sku_cpu_util.size() ? run.sku_cpu_util[s] : 0.0);
  }
  x.push_back(run.cpu_util_mean);
  x.push_back(run.cpu_util_std);
  x.push_back(run.cluster_baseline_util);
  x.push_back(run.spare_availability);
  const double day_frac =
      std::fmod(run.submit_time, 86400.0) / 86400.0;
  x.push_back(std::sin(2.0 * M_PI * day_frac));
  x.push_back(std::cos(2.0 * M_PI * day_frac));

  RVAR_CHECK_EQ(x.size(), names_.size());
  return x;
}

Result<std::vector<std::vector<double>>> Featurizer::FeaturesForAll(
    const std::vector<const sim::JobRun*>& runs) const {
  // FeaturesFor only reads the group/catalog specs and the frozen history
  // map, so rows build concurrently into indexed slots — identical output
  // to the serial loop at every thread count.
  std::vector<std::vector<double>> rows(runs.size());
  std::vector<Status> row_status(runs.size(), Status::OK());
  ParallelFor(runs.size(), /*grain=*/64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Result<std::vector<double>> x = FeaturesFor(*runs[i]);
      if (x.ok()) {
        rows[i] = std::move(*x);
      } else {
        row_status[i] = x.status();
      }
    }
  });
  for (const Status& st : row_status) RVAR_RETURN_NOT_OK(st);
  return rows;
}

Result<ml::Dataset> Featurizer::BuildDataset(
    const sim::TelemetryStore& slice,
    const std::unordered_map<int, int>& group_labels) const {
  ml::Dataset d;
  d.feature_names = names_;
  std::vector<const sim::JobRun*> selected;
  for (const sim::JobRun& run : slice.runs()) {
    const auto it = group_labels.find(run.group_id);
    if (it == group_labels.end()) continue;
    selected.push_back(&run);
    d.y.push_back(it->second);
  }
  RVAR_ASSIGN_OR_RETURN(d.x, FeaturesForAll(selected));
  RVAR_RETURN_NOT_OK(d.Validate());
  return d;
}

Result<ml::Dataset> Featurizer::BuildRegressionDataset(
    const sim::TelemetryStore& slice) const {
  ml::Dataset d;
  d.feature_names = names_;
  std::vector<const sim::JobRun*> selected;
  for (const sim::JobRun& run : slice.runs()) {
    selected.push_back(&run);
    d.target.push_back(run.runtime_seconds);
  }
  RVAR_ASSIGN_OR_RETURN(d.x, FeaturesForAll(selected));
  RVAR_RETURN_NOT_OK(d.Validate());
  return d;
}

}  // namespace core
}  // namespace rvar
