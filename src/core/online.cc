#include "core/online.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace rvar {
namespace core {

OnlineShapeTracker::OnlineShapeTracker(
    const ShapeLibrary* library, std::shared_ptr<const ClusterLogPmf> log_pmf,
    double decay)
    : library_(library), decay_(decay), log_pmf_(std::move(log_pmf)) {
  ll_.assign(static_cast<size_t>(log_pmf_->num_clusters()), 0.0);
}

Result<OnlineShapeTracker> OnlineShapeTracker::Make(
    const ShapeLibrary* library, double decay, double pmf_floor) {
  if (library == nullptr) {
    return Status::InvalidArgument("null shape library");
  }
  RVAR_ASSIGN_OR_RETURN(std::shared_ptr<const ClusterLogPmf> table,
                        ClusterLogPmf::MakeShared(*library, pmf_floor));
  return Make(library, std::move(table), decay);
}

Result<OnlineShapeTracker> OnlineShapeTracker::Make(
    const ShapeLibrary* library, std::shared_ptr<const ClusterLogPmf> log_pmf,
    double decay) {
  if (library == nullptr) {
    return Status::InvalidArgument("null shape library");
  }
  if (log_pmf == nullptr) {
    return Status::InvalidArgument("null cluster log-PMF table");
  }
  if (log_pmf->num_clusters() != library->num_clusters() ||
      log_pmf->num_bins() != library->grid().num_bins()) {
    return Status::InvalidArgument(
        StrCat("log-PMF table shape (", log_pmf->num_clusters(), " x ",
               log_pmf->num_bins(), ") does not match library (",
               library->num_clusters(), " x ", library->grid().num_bins(),
               ")"));
  }
  if (decay <= 0.0 || decay > 1.0) {
    return Status::InvalidArgument(
        StrCat("decay must be in (0,1], got ", decay));
  }
  return OnlineShapeTracker(library, std::move(log_pmf), decay);
}

void OnlineShapeTracker::Observe(double normalized_runtime) {
  if (!std::isfinite(normalized_runtime)) {
    ++num_clamped_;
    if (std::isnan(normalized_runtime)) return;  // no information at all
    normalized_runtime = normalized_runtime > 0.0 ? library_->grid().hi()
                                                  : library_->grid().lo();
  }
  const int bin = library_->grid().BinIndex(normalized_runtime);
  for (size_t c = 0; c < ll_.size(); ++c) {
    ll_[c] = decay_ * ll_[c] + log_pmf_->row(static_cast<int>(c))[bin];
  }
  ++count_;
}

int OnlineShapeTracker::MostLikely() const {
  if (count_ == 0) return -1;
  return static_cast<int>(
      std::max_element(ll_.begin(), ll_.end()) - ll_.begin());
}

std::vector<double> OnlineShapeTracker::Posterior() const {
  std::vector<double> p(ll_.size(), 1.0 / static_cast<double>(ll_.size()));
  if (count_ == 0) return p;
  double mx = -std::numeric_limits<double>::infinity();
  for (double v : ll_) mx = std::max(mx, v);
  double sum = 0.0;
  for (size_t c = 0; c < ll_.size(); ++c) {
    p[c] = std::exp(ll_[c] - mx);
    sum += p[c];
  }
  for (double& v : p) v /= sum;
  return p;
}

double OnlineShapeTracker::ProbabilityOf(int cluster) const {
  RVAR_CHECK(cluster >= 0 &&
             static_cast<size_t>(cluster) < ll_.size());
  return Posterior()[static_cast<size_t>(cluster)];
}

Status OnlineShapeTracker::RestoreState(
    const std::vector<double>& log_likelihood, int64_t count,
    int64_t num_clamped) {
  if (log_likelihood.size() != ll_.size()) {
    return Status::InvalidArgument(
        StrCat("restore holds ", log_likelihood.size(),
               " log-likelihood sums, library has ", ll_.size(),
               " clusters"));
  }
  for (double v : log_likelihood) {
    if (std::isnan(v) || v > 0.0) {
      // Sums of log-probabilities are <= 0; -inf (all mass at the floor)
      // is possible under extreme decay so only NaN and positives reject.
      return Status::InvalidArgument(
          "restored log-likelihood sums must be non-positive");
    }
  }
  if (count < 0 || num_clamped < 0) {
    return Status::InvalidArgument("restored counters must be >= 0");
  }
  ll_ = log_likelihood;
  count_ = count;
  num_clamped_ = num_clamped;
  return Status::OK();
}

void OnlineShapeTracker::Reset() {
  std::fill(ll_.begin(), ll_.end(), 0.0);
  count_ = 0;
  num_clamped_ = 0;
}

}  // namespace core
}  // namespace rvar
