#include "core/report.h"

#include "common/strings.h"
#include "common/table.h"

namespace rvar {
namespace core {

std::string RenderDatasetSummary(const sim::StudySuite& suite) {
  TextTable table;
  table.SetHeader(
      {"Dataset", "Interval", "Job Groups", "Job Instances", "Support"});
  for (const sim::DatasetSlice* slice :
       {&suite.d1, &suite.d2, &suite.d3}) {
    table.AddRow({slice->name,
                  StrCat(FormatDouble(slice->interval_days, 1), " days"),
                  FormatCount(slice->NumQualifyingGroups()),
                  FormatCount(slice->NumQualifyingInstances()),
                  StrCat(slice->min_support)});
  }
  return table.ToString();
}

std::string RenderShapeStats(const ShapeLibrary& library) {
  const bool ratio =
      library.normalization() == Normalization::kRatio;
  const char* unit = ratio ? "" : " (s)";
  TextTable table;
  table.SetHeader({"cid", "outlier (%)", StrCat("25-75th", unit),
                   StrCat("95th", unit), StrCat("std", unit), "groups",
                   "samples"});
  for (int c = 0; c < library.num_clusters(); ++c) {
    const ShapeStats& s = library.stats(c);
    const int digits = ratio ? 2 : 0;
    table.AddRow({StrCat(c),
                  FormatDouble(100.0 * s.outlier_probability, 2),
                  FormatDouble(s.iqr, digits), FormatDouble(s.p95, digits),
                  FormatDouble(s.stddev, digits), StrCat(s.num_groups),
                  FormatCount(s.num_samples)});
  }
  return table.ToString();
}

std::string RenderSupportBuckets(const PredictorEvaluation& eval) {
  TextTable table;
  table.SetHeader({"occurrences", "groups", "runs", "accuracy"});
  for (const auto& b : eval.by_support) {
    if (b.num_runs == 0) continue;
    const std::string range = b.hi >= (1 << 29)
                                  ? StrCat(b.lo, "+")
                                  : StrCat(b.lo, "-", b.hi);
    table.AddRow({range, StrCat(b.num_groups), FormatCount(b.num_runs),
                  FormatPercent(b.accuracy)});
  }
  return table.ToString();
}

std::string RenderReconstruction(const ReconstructionComparison& cmp) {
  TextTable table;
  table.SetHeader({"method", "QQ-MAE", "KS distance"});
  table.AddRow({"regression (Griffon-ext)",
                FormatDouble(cmp.regression_qq_mae, 4),
                FormatDouble(cmp.regression_ks, 4)});
  table.AddRow({"proposed (2-step)", FormatDouble(cmp.proposed_qq_mae, 4),
                FormatDouble(cmp.proposed_ks, 4)});
  std::string out = table.ToString();
  out += StrCat("KS distance reduction: ",
                FormatDouble(cmp.KsReductionPercent(), 1), "% over ",
                cmp.num_runs, " runs\n");
  return out;
}

std::string RenderScenario(const ScenarioResult& result,
                           const ShapeLibrary& library, int max_rows) {
  std::string out =
      StrCat("Scenario: ", result.name, " — ", result.num_changed, "/",
             result.num_runs, " runs change shape (",
             FormatPercent(result.ChangedFraction()), ")\n");
  TextTable table;
  table.SetHeader({"from", "to", "runs", "% of source", "% of all",
                   "IQR from->to", "outlier%% from->to"});
  int rows = 0;
  for (const Migration& m : result.top_migrations) {
    if (rows++ >= max_rows) break;
    const ShapeStats& sf = library.stats(m.from);
    const ShapeStats& st = library.stats(m.to);
    table.AddRow(
        {StrCat("C", m.from), StrCat("C", m.to), FormatCount(m.count),
         FormatPercent(m.fraction_of_from), FormatPercent(m.fraction_of_total),
         StrCat(FormatDouble(sf.iqr, 2), " -> ", FormatDouble(st.iqr, 2)),
         StrCat(FormatDouble(100.0 * sf.outlier_probability, 2), " -> ",
                FormatDouble(100.0 * st.outlier_probability, 2))});
  }
  out += table.ToString();
  return out;
}

}  // namespace core
}  // namespace rvar
