#include "core/explainer.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "ml/feature_select.h"
#include "stats/descriptive.h"

namespace rvar {
namespace core {

Explainer::Explainer(const VariationPredictor* predictor)
    : predictor_(predictor) {
  RVAR_CHECK(predictor != nullptr);
}

Result<RunExplanation> Explainer::Explain(const sim::JobRun& run) const {
  RVAR_ASSIGN_OR_RETURN(std::vector<double> full,
                        predictor_->featurizer().FeaturesFor(run));
  // Project onto the model's kept features for TreeSHAP, then scatter the
  // attributions back onto the full feature list.
  const std::vector<size_t>& kept = predictor_->kept_features();
  std::vector<double> projected;
  projected.reserve(kept.size());
  for (size_t f : kept) projected.push_back(full[f]);

  RVAR_ASSIGN_OR_RETURN(
      ml::ShapExplanation shap,
      ml::ShapForGbdt(predictor_->model(), projected, kept.size()));

  RunExplanation out;
  out.group_id = run.group_id;
  out.feature_values = std::move(full);
  const size_t num_full = predictor_->featurizer().FeatureNames().size();
  out.phi.assign(shap.phi.size(), std::vector<double>(num_full, 0.0));
  for (size_t k = 0; k < shap.phi.size(); ++k) {
    for (size_t i = 0; i < kept.size(); ++i) {
      out.phi[k][kept[i]] = shap.phi[k][i];
    }
  }
  return out;
}

Result<std::vector<RunExplanation>> Explainer::ExplainSlice(
    const sim::TelemetryStore& slice, int max_runs) const {
  if (max_runs <= 0) {
    return Status::InvalidArgument("max_runs must be positive");
  }
  std::vector<RunExplanation> out;
  const size_t n = slice.NumRuns();
  if (n == 0) return out;
  const size_t stride = std::max<size_t>(1, n / static_cast<size_t>(max_runs));
  for (size_t i = 0; i < n && out.size() < static_cast<size_t>(max_runs);
       i += stride) {
    RVAR_ASSIGN_OR_RETURN(RunExplanation e, Explain(slice.run(i)));
    out.push_back(std::move(e));
  }
  return out;
}

Result<std::vector<FeatureShapSummary>> Explainer::SummarizeForShape(
    const std::vector<RunExplanation>& explanations, int k) const {
  if (explanations.empty()) {
    return Status::InvalidArgument("no explanations to summarize");
  }
  const std::vector<std::string>& names =
      predictor_->featurizer().FeatureNames();
  if (k < 0 || static_cast<size_t>(k) >= explanations[0].phi.size()) {
    return Status::OutOfRange(StrCat("shape ", k, " out of range"));
  }

  std::vector<FeatureShapSummary> summaries;
  for (size_t f = 0; f < names.size(); ++f) {
    FeatureShapSummary s;
    s.feature = names[f];
    std::vector<double> values, shaps;
    for (const RunExplanation& e : explanations) {
      values.push_back(e.feature_values[f]);
      const double phi = e.phi[static_cast<size_t>(k)][f];
      shaps.push_back(phi);
      s.mean_abs_shap += std::fabs(phi);
    }
    s.mean_abs_shap /= static_cast<double>(explanations.size());
    s.value_shap_correlation = ml::PearsonCorrelation(values, shaps);

    // Tercile means: SHAP among low-value vs high-value runs.
    std::vector<size_t> order(values.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    const size_t tercile = std::max<size_t>(1, order.size() / 3);
    double low = 0.0, high = 0.0;
    for (size_t i = 0; i < tercile; ++i) {
      low += shaps[order[i]];
      high += shaps[order[order.size() - 1 - i]];
    }
    s.mean_shap_low_value = low / static_cast<double>(tercile);
    s.mean_shap_high_value = high / static_cast<double>(tercile);
    summaries.push_back(std::move(s));
  }
  std::stable_sort(summaries.begin(), summaries.end(),
                   [](const FeatureShapSummary& a,
                      const FeatureShapSummary& b) {
                     return a.mean_abs_shap > b.mean_abs_shap;
                   });
  return summaries;
}

}  // namespace core
}  // namespace rvar
