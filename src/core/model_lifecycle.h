// Copyright 2026 The rvar Authors.
//
// Fail-safe online model lifecycle (DESIGN.md §11): the streaming-ingest →
// background-retrain → atomic-hot-swap loop of ROADMAP item 2. A
// ModelLifecycle owns a versioned on-disk registry (io/model_registry.h)
// and the in-memory serving epoch: an immutable shared_ptr to the live
// GBDT that readers snapshot without ever blocking on retraining. Every
// candidate is trained deterministically (same window + seed ⇒
// byte-identical artifact at any thread count), persisted as a candidate
// first, then re-read through the CRC path and pushed through a validation
// gate (holdout logloss + shape-assignment agreement vs the live model)
// before it can serve; failures are quarantined on disk with a reason.
// Rollback re-activates any retained version atomically. Crash anywhere —
// mid-train, mid-validate, or with a corrupted candidate — leaves serving
// on the last good version, which the lifecycle chaos tests prove by
// killing and reopening the registry at every phase boundary.

#ifndef RVAR_CORE_MODEL_LIFECYCLE_H_
#define RVAR_CORE_MODEL_LIFECYCLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/shape_service.h"
#include "io/model_registry.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "obs/metrics.h"

namespace rvar {
namespace core {

/// \brief Gate thresholds and training knobs of the lifecycle.
struct ModelLifecycleOptions {
  /// Registry directory (created if missing).
  std::string dir;
  /// Base GBDT config for candidates. The per-candidate seed is derived as
  /// HashCombine(seed, version), so each version trains differently but
  /// reproducibly; config.seed itself is ignored.
  ml::GbdtConfig gbdt;
  /// Base seed for candidate training and the holdout split.
  uint64_t seed = 17;
  /// Fraction of the window held out for the validation gate, in (0, 1).
  double holdout_fraction = 0.2;
  /// Absolute gate: candidate holdout logloss must be <= this.
  double max_holdout_logloss = 10.0;
  /// Regression gate: candidate holdout logloss may exceed the live
  /// model's by at most this much (ignored for the first model).
  double max_logloss_regression = 0.05;
  /// Agreement gate: fraction of holdout rows where the candidate's
  /// argmax shape matches the live model's must be >= this (ignored for
  /// the first model).
  double min_agreement = 0.5;
  /// Retired versions kept for rollback; older ones are pruned after each
  /// successful swap.
  int keep_retired = 4;
};

/// \brief Why a candidate was rejected; mirrored into the quarantine
/// reason on disk and the per-reason rejection counter.
enum class RejectReason : int {
  kHoldoutLogloss = 0,  ///< absolute holdout logloss above the gate
  kLoglossRegression,   ///< worse than the live model beyond the budget
  kAgreement,           ///< disagrees with the live model too often
  kArtifactCorrupt,     ///< candidate bytes failed CRC / decode on re-read
  kOrphaned,            ///< candidate left behind by a crashed retrain
};
inline constexpr int kNumRejectReasons = 5;
const char* RejectReasonName(RejectReason reason);

/// \brief Owns the serving model epoch and drives retrain → gate → swap.
///
/// Thread-safety: LiveModel()/live_version() may be called from any
/// thread and never block on training; the mutating calls (TrainCandidate,
/// ValidateAndSwap, Rollback, Prune) must be externally serialized — the
/// intended topology is one retrain loop (see BackgroundRetrainer) plus
/// any number of serving readers.
class ModelLifecycle {
 public:
  /// Opens (or creates) the registry and restores serving state:
  /// - the ACTIVE version's artifact is loaded through the CRC path and
  ///   published as the live epoch;
  /// - if the active artifact is corrupt, serving falls back to the
  ///   newest loadable retired version (re-activated atomically) and the
  ///   corrupt version is quarantined;
  /// - candidates left behind by a crashed retrain are quarantined.
  /// A fresh directory starts with no live model (live_version() == -1).
  static Result<std::unique_ptr<ModelLifecycle>> Open(
      ModelLifecycleOptions options);

  /// The serving model epoch: an immutable snapshot readers hold across a
  /// whole batch. Null when nothing has been activated yet.
  std::shared_ptr<const ml::GbdtClassifier> LiveModel() const;

  /// Version backing LiveModel(); -1 when nothing serves.
  int64_t live_version() const;

  /// Phase 1: trains a candidate on `window` (warm-started from the live
  /// model when one exists), writes it to the registry as kCandidate, and
  /// returns its version. Deterministic: the candidate's bytes are a pure
  /// function of (window, options.seed, version) — identical at any
  /// thread count. [window_begin, window_end) is provenance recorded in
  /// the manifest. Does NOT touch serving.
  Result<int64_t> TrainCandidate(const ml::Dataset& window,
                                 uint64_t window_begin, uint64_t window_end);

  /// Phase 2: re-reads the candidate's artifact from disk (CRC-verified —
  /// corruption between the phases is caught here), evaluates the
  /// validation gate on the deterministic holdout split of `window`, and
  /// either activates + publishes the candidate or quarantines it with
  /// the failing gate as the reason. Returns FailedPrecondition on gate
  /// rejection (serving is untouched). Retired versions beyond
  /// keep_retired are pruned after a successful swap.
  Status ValidateAndSwap(int64_t version, const ml::Dataset& window);

  /// TrainCandidate + ValidateAndSwap in one call — the retrain loop body.
  Status RetrainAndSwap(const ml::Dataset& window, uint64_t window_begin,
                        uint64_t window_end);

  /// Re-activates a retained (retired) version atomically and publishes
  /// it as the serving epoch. The displaced version is retired and stays
  /// eligible for rollback. Quarantined versions are refused.
  Status Rollback(int64_t version);

  /// Operator kill switch: quarantines the LIVE version with `reason`.
  /// Falls back to the newest loadable retired version when one exists;
  /// otherwise clears serving entirely (live_version() == -1, null epoch
  /// published — an attached ShapeService sees its model slot go null and
  /// serving front-ends degrade to their prior rung). FailedPrecondition
  /// when nothing is live. Counted in
  /// lifecycle_forced_quarantines_total.
  Status QuarantineLive(std::string reason);

  /// Registry access for inspection (manifests, versions, paths).
  const io::ModelRegistry& registry() const { return registry_; }

  /// When set, every publish (swap, rollback, restore) also installs the
  /// epoch into the service's model slot, so ShapeService readers follow
  /// the lifecycle. `service` must outlive the lifecycle.
  void AttachShapeService(ShapeService* service);

  const ModelLifecycleOptions& options() const { return options_; }

 private:
  ModelLifecycle(ModelLifecycleOptions options, io::ModelRegistry registry);

  /// Deterministic holdout split of `window`: a seeded permutation keyed
  /// by (options.seed, version), so phase 2 re-derives exactly the split
  /// phase 1 trained against.
  void SplitWindow(const ml::Dataset& window, int64_t version,
                   ml::Dataset* train, ml::Dataset* holdout) const;

  /// Installs `model` as the serving epoch (and mirrors it into the
  /// attached ShapeService, which fans it out to every shard replica).
  void Publish(int64_t version,
               std::shared_ptr<const ml::GbdtClassifier> model);

  /// Quarantines `version` and bumps the per-reason rejection counter.
  Status Reject(int64_t version, RejectReason reason, std::string detail);

  ModelLifecycleOptions options_;
  io::ModelRegistry registry_;
  ShapeService* shape_service_ = nullptr;

  // Serving epoch: atomic shared_ptr access only — LiveModel() readers
  // never take a lock, matching the lock-free model slot in ShapeService.
  std::shared_ptr<const ml::GbdtClassifier> live_;
  std::atomic<int64_t> live_version_{-1};

  // Metrics (obs/metrics.h).
  obs::Counter* swaps_total_;
  obs::Counter* rollbacks_total_;
  obs::Counter* candidates_total_;
  obs::Counter* forced_quarantines_total_;  ///< QuarantineLive successes
  std::vector<obs::Counter*> rejected_total_;  ///< indexed by RejectReason
  obs::Histogram* retrain_latency_;
  obs::Histogram* swap_latency_;
};

/// \brief Runs one retrain → gate → swap cycle on a worker thread, so the
/// serving path never waits on training. At most one cycle in flight; the
/// destructor joins.
class BackgroundRetrainer {
 public:
  explicit BackgroundRetrainer(ModelLifecycle* lifecycle)
      : lifecycle_(lifecycle) {}
  ~BackgroundRetrainer();

  BackgroundRetrainer(const BackgroundRetrainer&) = delete;
  BackgroundRetrainer& operator=(const BackgroundRetrainer&) = delete;

  /// Starts a cycle over `window`; false if one is already running.
  bool StartCycle(ml::Dataset window, uint64_t window_begin,
                  uint64_t window_end);

  /// True while a cycle is in flight.
  bool busy() const;

  /// Joins the in-flight cycle (if any) and returns its Status; OK when
  /// no cycle ran since the last Wait.
  Status Wait();

 private:
  ModelLifecycle* lifecycle_;
  mutable std::mutex mu_;
  std::thread worker_;
  bool running_ = false;
  Status last_ = Status::OK();
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_MODEL_LIFECYCLE_H_
