// Copyright 2026 The rvar Authors.
//
// Posterior-likelihood cluster membership (Section 5.2, Equations 1-9):
// given N normalized runtime observations of a job group, the posterior
// log-likelihood of cluster i is (up to a constant) the dot product of the
// observation PMF with the log of the cluster PMF:
//   log p(z_i | x_1..x_N) ~ sum_h phi_h log(theta_h^i)
// scaled by N when working with raw counts. The assigner labels a group
// with the most likely shape — this is how training/test labels are made.

#ifndef RVAR_CORE_ASSIGNER_H_
#define RVAR_CORE_ASSIGNER_H_

#include <vector>

#include "common/result.h"
#include "core/shape_library.h"

namespace rvar {
namespace core {

/// \brief One cluster's likelihood score.
struct ClusterLikelihood {
  int cluster = 0;
  double log_likelihood = 0.0;
};

/// \brief Assigns observation sets to canonical shapes by posterior
/// likelihood.
class PosteriorAssigner {
 public:
  /// \param library must outlive the assigner.
  /// \param pmf_floor probability floor applied to cluster PMF bins before
  ///        taking logs, so unobserved bins don't yield -inf.
  explicit PosteriorAssigner(const ShapeLibrary* library,
                             double pmf_floor = 1e-6);

  /// Log-likelihood per cluster (Equation 3: sum_n log theta_{h(x_n)});
  /// fails on empty observations.
  Result<std::vector<ClusterLikelihood>> LogLikelihoods(
      const std::vector<double>& normalized_runtimes) const;

  /// Most likely cluster; ties break to the smaller id. If `best` is
  /// non-null, receives the winning entry.
  Result<int> Assign(const std::vector<double>& normalized_runtimes,
                     ClusterLikelihood* best = nullptr) const;

 private:
  const ShapeLibrary* library_;
  /// log of floored+renormalized cluster PMFs, flattened row-major as
  /// [cluster * num_bins_ + bin] so Equation 9's per-cluster score is one
  /// contiguous dot product over the counts.
  std::vector<double> log_pmf_;
  size_t num_clusters_ = 0;
  size_t num_bins_ = 0;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_ASSIGNER_H_
