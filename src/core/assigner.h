// Copyright 2026 The rvar Authors.
//
// Posterior-likelihood cluster membership (Section 5.2, Equations 1-9):
// given N normalized runtime observations of a job group, the posterior
// log-likelihood of cluster i is (up to a constant) the dot product of the
// observation PMF with the log of the cluster PMF:
//   log p(z_i | x_1..x_N) ~ sum_h phi_h log(theta_h^i)
// scaled by N when working with raw counts. The assigner labels a group
// with the most likely shape — this is how training/test labels are made.
//
// The floored log theta table itself lives in ClusterLogPmf so one
// immutable copy can be shared by every consumer (assigner, per-group
// online trackers, the sharded serving service): at 200 bins x 8 clusters
// the table is ~13 KB, which used to be duplicated per tracked group.

#ifndef RVAR_CORE_ASSIGNER_H_
#define RVAR_CORE_ASSIGNER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/shape_library.h"

namespace rvar {
namespace core {

/// \brief Immutable log of the floored, renormalized cluster PMFs.
///
/// Each row c holds log(theta_h^c) where theta was floored at `pmf_floor`
/// and renormalized, flattened row-major as [cluster * num_bins + bin] so
/// Equation 9's per-cluster score is one contiguous dot product.
class ClusterLogPmf {
 public:
  /// Fails on a non-positive floor. `library` is only read during Make.
  static Result<ClusterLogPmf> Make(const ShapeLibrary& library,
                                    double pmf_floor = 1e-6);

  /// Make, boxed for sharing across trackers/shards.
  static Result<std::shared_ptr<const ClusterLogPmf>> MakeShared(
      const ShapeLibrary& library, double pmf_floor = 1e-6);

  int num_clusters() const { return num_clusters_; }
  int num_bins() const { return num_bins_; }
  double pmf_floor() const { return pmf_floor_; }

  /// Row of cluster `c` (length num_bins()).
  const double* row(int c) const {
    RVAR_CHECK(c >= 0 && c < num_clusters_);
    return log_pmf_.data() + static_cast<size_t>(c) * num_bins_;
  }

 private:
  ClusterLogPmf() = default;

  std::vector<double> log_pmf_;
  int num_clusters_ = 0;
  int num_bins_ = 0;
  double pmf_floor_ = 0.0;
};

/// \brief One cluster's likelihood score.
struct ClusterLikelihood {
  int cluster = 0;
  double log_likelihood = 0.0;
};

/// \brief Assigns observation sets to canonical shapes by posterior
/// likelihood.
class PosteriorAssigner {
 public:
  /// \param library must outlive the assigner.
  /// \param pmf_floor probability floor applied to cluster PMF bins before
  ///        taking logs, so unobserved bins don't yield -inf.
  explicit PosteriorAssigner(const ShapeLibrary* library,
                             double pmf_floor = 1e-6);

  /// Shares a prebuilt log table instead of building one; the table must
  /// have been built from `library`.
  PosteriorAssigner(const ShapeLibrary* library,
                    std::shared_ptr<const ClusterLogPmf> log_pmf);

  /// Log-likelihood per cluster (Equation 3: sum_n log theta_{h(x_n)});
  /// fails on empty observations. Routed through the library's
  /// observation-PMF path: NaN observations are skipped (and it is an
  /// error if nothing else remains), +-inf clips into the outlier bins.
  Result<std::vector<ClusterLikelihood>> LogLikelihoods(
      const std::vector<double>& normalized_runtimes) const;

  /// LogLikelihoods without the per-call allocations: `out` is overwritten
  /// with one entry per cluster and `pmf_scratch` is reused as the
  /// observation-PMF buffer. Both keep their capacity across calls.
  Status LogLikelihoodsInto(const std::vector<double>& normalized_runtimes,
                            std::vector<ClusterLikelihood>* out,
                            std::vector<double>* pmf_scratch) const;

  /// Most likely cluster; ties break to the smaller id. If `best` is
  /// non-null, receives the winning entry.
  Result<int> Assign(const std::vector<double>& normalized_runtimes,
                     ClusterLikelihood* best = nullptr) const;

 private:
  const ShapeLibrary* library_;
  std::shared_ptr<const ClusterLogPmf> log_pmf_;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_ASSIGNER_H_
