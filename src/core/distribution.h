// Copyright 2026 The rvar Authors.
//
// RuntimeDistribution: the user-facing answer object. A predicted shape is
// a distribution over *normalized* runtime; combined with the group's
// historic median it becomes a distribution over runtime in seconds, from
// which SLO questions are answered directly (exceedance probabilities,
// quantiles, sampling) — the "rich information regarding variation" the
// paper argues users need (Section 2).

#ifndef RVAR_CORE_DISTRIBUTION_H_
#define RVAR_CORE_DISTRIBUTION_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/shape_library.h"

namespace rvar {
namespace core {

/// \brief A runtime distribution in seconds, backed by a canonical shape
/// PMF and a historic median.
class RuntimeDistribution {
 public:
  /// Binds shape `cluster` of `library` to a group's historic median.
  /// Fails on an unknown cluster, a non-positive median under Ratio
  /// normalization, or an empty (zero-mass) shape.
  static Result<RuntimeDistribution> Make(const ShapeLibrary& library,
                                          int cluster,
                                          double median_seconds);

  int cluster() const { return cluster_; }
  double median_seconds() const { return median_seconds_; }

  /// Quantile q of runtime, in seconds.
  double QuantileSeconds(double q) const;

  /// P(runtime >= t). Values beyond the grid's clip resolve to the
  /// outlier bin's mass (t above the denormalized grid maximum yields the
  /// mass at the clip, i.e. an upper bound becomes the outlier bin).
  double ExceedanceProbability(double t_seconds) const;

  /// The paper's outlier probability: P(normalized >= 10x median /
  /// >= +900 s), i.e. the clipped upper bin's mass plus anything at the
  /// threshold.
  double OutlierProbability() const;

  /// Mean runtime implied by the shape, in seconds.
  double MeanSeconds() const;

  /// Draws `n` runtimes in seconds.
  std::vector<double> Sample(int n, Rng* rng) const;

  /// Converts a normalized value to seconds under this distribution's
  /// normalization and median.
  double Denormalize(double normalized) const;

  /// Converts seconds to the normalized domain.
  double Normalize(double t_seconds) const;

 private:
  RuntimeDistribution(const BinGrid& grid, std::vector<double> pmf,
                      Normalization norm, int cluster, double median);

  BinGrid grid_;
  std::vector<double> pmf_;
  Normalization norm_;
  int cluster_;
  double median_seconds_;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_DISTRIBUTION_H_
