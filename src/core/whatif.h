// Copyright 2026 The rvar Authors.
//
// What-if analysis (Section 7): re-run the trained predictor on perturbed
// features and measure how jobs migrate between shapes. Canned transforms
// implement the paper's three scenarios — disabling spare tokens (7.1),
// shifting vertices to a newer SKU generation (7.2), and equalizing
// machine load (7.3).

#ifndef RVAR_CORE_WHATIF_H_
#define RVAR_CORE_WHATIF_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/predictor.h"

namespace rvar {
namespace core {

/// \brief Mutates a FULL feature vector in place. The featurizer resolves
/// feature names to indices. Scenario re-prediction runs in parallel
/// (common/parallel.h), so transforms must be safe to invoke concurrently
/// on distinct vectors — pure functions of their inputs, like the built-in
/// scenarios below.
using FeatureTransform =
    std::function<void(const Featurizer&, std::vector<double>*)>;

/// \brief One cell of the migration summary.
struct Migration {
  int from = 0;
  int to = 0;
  int count = 0;
  /// Fraction of all evaluated runs making this move.
  double fraction_of_total = 0.0;
  /// Fraction of the runs originally predicted `from` that moved to `to`
  /// (the paper's "15% of jobs in Cluster 2 are now in Cluster 1").
  double fraction_of_from = 0.0;
};

/// \brief Outcome of one scenario.
struct ScenarioResult {
  std::string name;
  int num_runs = 0;
  int num_changed = 0;
  /// counts[from][to] over all evaluated runs.
  std::vector<std::vector<int>> transition_counts;
  /// Off-diagonal migrations sorted by count descending.
  std::vector<Migration> top_migrations;

  double ChangedFraction() const {
    return num_runs > 0 ? static_cast<double>(num_changed) / num_runs : 0.0;
  }
};

/// \brief Applies feature transforms and summarizes shape migrations.
class WhatIfEngine {
 public:
  /// \param predictor must outlive the engine.
  explicit WhatIfEngine(const VariationPredictor* predictor);

  /// Predicts every run of `slice` before and after `transform`.
  Result<ScenarioResult> Run(const sim::TelemetryStore& slice,
                             const std::string& name,
                             const FeatureTransform& transform) const;

  // --- The paper's scenarios ---

  /// Section 7.1: no spare tokens (historic spare usage and current spare
  /// availability zeroed).
  static FeatureTransform DisableSpareTokens();

  /// Section 7.2: move all historic vertex share from one SKU to another
  /// (e.g. "Gen3.5" -> "Gen5.2").
  static FeatureTransform ShiftSkuVertices(const std::string& from_sku,
                                           const std::string& to_sku);

  /// Section 7.3: perfectly balanced load — the load-spread feature drops
  /// to zero and every per-SKU utilization collapses to their mean.
  static FeatureTransform EqualizeLoad();

 private:
  const VariationPredictor* predictor_;
};

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_WHATIF_H_
