// Copyright 2026 The rvar Authors.
//
// Runtime normalization (Definition 4.1): Ratio-normalization divides a
// runtime by the group's historic median; Delta-normalization subtracts it.
// Both are computed against medians from a *historic* reference store (the
// paper uses D1), and each has a canonical bin grid with outlier-merging
// edge bins ([0,10] for Ratio, [-900, 900] seconds for Delta, 200 bins).

#ifndef RVAR_CORE_NORMALIZATION_H_
#define RVAR_CORE_NORMALIZATION_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sim/telemetry.h"
#include "stats/histogram.h"

namespace rvar {
namespace core {

/// \brief Which normalization transforms runtimes (Definition 4.1).
enum class Normalization {
  kRatio,  ///< runtime / median
  kDelta,  ///< runtime - median, seconds
};

const char* NormalizationName(Normalization norm);

/// Normalized value of one runtime given the group's historic median.
/// The median must be positive for Ratio.
double NormalizeRuntime(Normalization norm, double runtime_seconds,
                        double median_seconds);

/// The paper's bin grid for a normalization: Ratio [0, 10], Delta
/// [-900, 900] s, both with `num_bins` bins and clipped outlier edge bins.
BinGrid CanonicalGrid(Normalization norm, int num_bins = 200);

/// Values at/above the grid's upper clip are the paper's "outliers"
/// (>= 10x or >= 900 s slower than median).
double OutlierThreshold(Normalization norm);

/// \brief Per-group historic median runtimes.
class GroupMedians {
 public:
  /// Medians of every group in `reference` (any support).
  static GroupMedians FromTelemetry(const sim::TelemetryStore& reference);

  /// Whether a median is known for the group.
  bool Has(int group_id) const;

  /// The group's median; fails if unknown.
  Result<double> Of(int group_id) const;

  void Set(int group_id, double median_seconds);

  size_t size() const { return medians_.size(); }

 private:
  std::unordered_map<int, double> medians_;
};

/// Normalized runtimes of one group's runs in `store`, using `medians` as
/// the historic reference. Fails if the group's median is unknown (or
/// non-positive for Ratio).
Result<std::vector<double>> NormalizedGroupRuntimes(
    const sim::TelemetryStore& store, int group_id,
    const GroupMedians& medians, Normalization norm);

}  // namespace core
}  // namespace rvar

#endif  // RVAR_CORE_NORMALIZATION_H_
