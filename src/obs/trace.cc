#include "obs/trace.h"

#include "common/check.h"

namespace rvar {
namespace obs {

namespace {

/// Ids of the spans open on this thread, outermost first. Plain ids (not
/// frames): ScopedSpan itself carries the timing state, so nesting only
/// needs to know who the parent is.
thread_local std::vector<uint64_t> tls_span_stack;

}  // namespace

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[first_] = span;
    first_ = (first_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(first_ + i) % ring_.size()]);
  }
  return out;
}

int64_t Tracer::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

int64_t Tracer::Dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - static_cast<int64_t>(ring_.size());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  first_ = 0;
  total_ = 0;
}

ScopedSpan::ScopedSpan(const char* name, Tracer* tracer)
    : tracer_(tracer), name_(name), active_(SamplingEnabled()) {
  if (!active_) return;
  span_id_ = tracer_->NextId();
  if (!tls_span_stack.empty()) {
    parent_id_ = tls_span_stack.back();
    depth_ = static_cast<int>(tls_span_stack.size());
  }
  tls_span_stack.push_back(span_id_);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  RVAR_CHECK(!tls_span_stack.empty() && tls_span_stack.back() == span_id_)
      << "span stack corrupted: ScopedSpans must strictly nest";
  tls_span_stack.pop_back();
  SpanRecord record;
  record.name = name_;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.depth = depth_;
  record.start_seconds =
      std::chrono::duration<double>(start_ - tracer_->epoch()).count();
  record.duration_seconds =
      std::chrono::duration<double>(end - start_).count();
  tracer_->Record(record);
}

}  // namespace obs
}  // namespace rvar
