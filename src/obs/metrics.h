// Copyright 2026 The rvar Authors.
//
// Lock-cheap metrics for the serving stack (DESIGN.md §9): monotonic
// counters, gauges, and fixed-bucket latency histograms, held in a
// process-wide Registry. Handles returned by the registry are stable for
// its lifetime and updated with relaxed atomics, so the hot paths
// (ShapeService::Observe, WAL appends, telemetry ingestion) pay one atomic
// add per event and never take a lock after registration.
//
// Instrumentation is deterministic-safe by construction: metric values are
// write-only from the instrumented code's point of view — nothing in the
// library reads a metric to make a decision, so enabling or disabling
// observability cannot change any computed result (guarded by
// tests/obs/instrumentation_guard_test.cc).

#ifndef RVAR_OBS_METRICS_H_
#define RVAR_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.h"

namespace rvar {
namespace obs {

/// Global switch for the *timing* side of observability (ScopedLatencyTimer
/// and trace spans). When off they skip the clock reads and record nothing,
/// costing one relaxed atomic load. Counter/gauge updates stay live either
/// way — a relaxed add is already near-zero cost.
void SetSampling(bool enabled);
bool SamplingEnabled();

/// \brief A monotonically increasing counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<int64_t> value_{0};
};

/// \brief A settable instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram with log-spaced buckets.
///
/// Buckets are uniform in log10 space over [min_value, max_value]; values
/// outside the range are clipped into the first/last bucket (stats::BinGrid
/// semantics). Quantile extraction reuses the stats code's PmfQuantile over
/// the log grid, so one interpolation routine serves both the paper's
/// runtime PMFs and the serving latency distributions.
struct HistogramOptions {
  double min_value = 1e-7;  ///< seconds; first bucket's upper range start
  double max_value = 1e3;
  int num_buckets = 50;  ///< 5 per decade over the default range
};

class Histogram {
 public:
  void Observe(double value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const BinGrid& log_grid() const { return grid_; }

  /// Upper bound of bucket `i` in value (not log) space; the last bucket
  /// additionally absorbs everything above max_value (+Inf in exports).
  double BucketUpperBound(int i) const;

  /// Quantile q of the observed distribution (PmfQuantile over the log
  /// grid, exponentiated back to value space). min_value when empty.
  double Quantile(double q) const;

  /// Relaxed-atomic snapshot of the bucket counts.
  std::vector<int64_t> BucketCounts() const;

 private:
  friend class Registry;
  explicit Histogram(const HistogramOptions& options);

  HistogramOptions options_;
  BinGrid grid_;  ///< over [log10(min_value), log10(max_value)]
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief RAII wall-clock timer recording seconds into a Histogram.
/// Inactive (no clock reads) when sampling is off or `h` is null.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* h)
      : histogram_(h), active_(h != nullptr && SamplingEnabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatencyTimer() {
    if (active_) {
      histogram_->Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Owns every metric of one process (or one test).
///
/// Metrics are keyed by name plus an optional single label pair; the full
/// key renders in Prometheus form (`name{key="value"}`). Re-registering an
/// existing key returns the same handle, so call sites can cache pointers
/// in function-local statics. All lookups lock; all updates through the
/// returned handles are lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the library's instrumentation reports to.
  static Registry& Default();

  Counter* GetCounter(std::string_view name);
  Counter* GetCounter(std::string_view name, std::string_view label_key,
                      std::string_view label_value);
  Gauge* GetGauge(std::string_view name);
  Gauge* GetGauge(std::string_view name, std::string_view label_key,
                  std::string_view label_value);
  Histogram* GetHistogram(std::string_view name,
                          const HistogramOptions& options = {});
  Histogram* GetHistogram(std::string_view name, std::string_view label_key,
                          std::string_view label_value,
                          const HistogramOptions& options = {});

  /// \brief Point-in-time copy of every registered metric, keys ascending.
  struct CounterValue {
    std::string key;   ///< full key, e.g. `a_total{reason="duplicate"}`
    std::string name;  ///< base name, e.g. `a_total`
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string key;
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string key;
    std::string name;
    std::string label;  ///< `key="value"` or empty; exporters splice `le`
    std::vector<double> upper_bounds;  ///< per bucket, value space
    std::vector<int64_t> counts;
    int64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };
  struct Snapshot {
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
  };
  Snapshot Snap() const;

  /// Zeroes every registered metric (handles stay valid). Test-only: live
  /// concurrent writers may interleave with the reset.
  void ResetForTest();

 private:
  struct HistogramEntry {
    std::string name;
    std::string label;
    std::unique_ptr<Histogram> histogram;
  };

  template <typename T>
  T* GetIn(std::map<std::string, std::pair<std::string, std::unique_ptr<T>>>*
               metrics,
           std::string_view name, std::string_view label_key,
           std::string_view label_value);

  mutable std::mutex mu_;
  /// key -> (base name, metric); std::map for deterministic export order.
  std::map<std::string, std::pair<std::string, std::unique_ptr<Counter>>>
      counters_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Gauge>>>
      gauges_;
  std::map<std::string, HistogramEntry> histograms_;
};

}  // namespace obs
}  // namespace rvar

#endif  // RVAR_OBS_METRICS_H_
