// Copyright 2026 The rvar Authors.
//
// Lightweight trace spans (DESIGN.md §9): RAII ScopedSpan measures a region
// with the steady clock, parent/child nesting comes from a thread-local
// span stack, and completed spans land in a bounded in-memory ring buffer
// (oldest spans are overwritten, never reallocated). Span names must be
// string literals (static storage) — the records store the pointer.
//
// When sampling is off (obs::SetSampling(false)) a ScopedSpan costs one
// relaxed atomic load and records nothing.

#ifndef RVAR_OBS_TRACE_H_
#define RVAR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace rvar {
namespace obs {

/// \brief One completed span.
struct SpanRecord {
  const char* name = "";
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 for root spans
  int depth = 0;           ///< 0 for root spans
  double start_seconds = 0.0;  ///< steady-clock offset from the tracer epoch
  double duration_seconds = 0.0;
};

/// \brief Bounded sink of completed spans.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);

  /// The process-wide tracer the library's spans report to.
  static Tracer& Default();

  void Record(const SpanRecord& span);

  /// Retained spans, oldest first (at most `capacity`, in completion
  /// order — a child span completes before its parent).
  std::vector<SpanRecord> Snapshot() const;

  /// Spans recorded over the tracer's lifetime, including overwritten ones.
  int64_t TotalRecorded() const;
  /// Spans lost to ring overwrite.
  int64_t Dropped() const;
  size_t capacity() const { return capacity_; }

  /// Empties the ring and zeroes the drop accounting (ids keep rising).
  void Clear();

  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  ///< ring_[ (first_ + i) % capacity_ ]
  size_t first_ = 0;
  int64_t total_ = 0;
};

/// \brief RAII span: times its scope and records on destruction.
class ScopedSpan {
 public:
  /// `name` must have static storage duration (string literal).
  explicit ScopedSpan(const char* name, Tracer* tracer = &Tracer::Default());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  uint64_t span_id() const { return span_id_; }

 private:
  Tracer* tracer_;
  const char* name_;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

}  // namespace obs
}  // namespace rvar

#endif  // RVAR_OBS_TRACE_H_
