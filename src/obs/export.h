// Copyright 2026 The rvar Authors.
//
// Exporters for the obs registry and tracer: Prometheus text exposition
// format (for scraping) and JSON (for tests, benches, and CI artifacts).
// Both render a Registry::Snapshot, so one consistent point-in-time view
// feeds every sink; output order is deterministic (keys ascending,
// spans in completion order).

#ifndef RVAR_OBS_EXPORT_H_
#define RVAR_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rvar {
namespace obs {

/// Prometheus text exposition format: `# TYPE` comments, `_bucket{le=...}`
/// cumulative histogram series, `_sum`/`_count` companions.
std::string ToPrometheusText(const Registry::Snapshot& snapshot);

/// JSON object with "counters", "gauges", and "histograms" sections;
/// histograms carry bucket bounds/counts plus p50/p90/p99.
std::string ToJson(const Registry::Snapshot& snapshot);

/// JSON array of span objects (name, ids, depth, start, duration).
std::string SpansToJson(const std::vector<SpanRecord>& spans);

/// Convenience dumps of the process-wide registry / tracer.
std::string DumpPrometheusText();
std::string DumpJson();
std::string DumpSpansJson();

}  // namespace obs
}  // namespace rvar

#endif  // RVAR_OBS_EXPORT_H_
