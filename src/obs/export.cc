#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace rvar {
namespace obs {

namespace {

/// Shortest-ish deterministic rendering of a double ("%.9g"): integers
/// print without a decimal point, which keeps counter-like values exact in
/// goldens while bucket bounds stay compact.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string Num(int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

/// `name{existing,le="x"}` or `name{le="x"}`.
std::string BucketSeries(const Registry::HistogramValue& h,
                         const std::string& le) {
  std::string out = h.name;
  out += "_bucket{";
  if (!h.label.empty()) {
    out += h.label;
    out += ",";
  }
  out += "le=\"";
  out += le;
  out += "\"}";
  return out;
}

/// JSON string escaping for metric keys (quotes and backslashes only;
/// metric names are ASCII by construction).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ToPrometheusText(const Registry::Snapshot& snapshot) {
  std::string out;
  std::string last_typed;
  auto type_line = [&](const std::string& name, const char* type) {
    if (name == last_typed) return;  // one TYPE comment per family
    out += "# TYPE ";
    out += name;
    out += " ";
    out += type;
    out += "\n";
    last_typed = name;
  };

  for (const auto& c : snapshot.counters) {
    type_line(c.name, "counter");
    out += c.key;
    out += " ";
    out += Num(c.value);
    out += "\n";
  }
  for (const auto& g : snapshot.gauges) {
    type_line(g.name, "gauge");
    out += g.key;
    out += " ";
    out += Num(g.value);
    out += "\n";
  }
  for (const auto& h : snapshot.histograms) {
    type_line(h.name, "histogram");
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      // The last bucket already absorbs every overflow observation, so it
      // renders as the +Inf bucket rather than its finite bound.
      const std::string le = i + 1 == h.counts.size()
                                 ? std::string("+Inf")
                                 : Num(h.upper_bounds[i]);
      out += BucketSeries(h, le);
      out += " ";
      out += Num(cumulative);
      out += "\n";
    }
    out += h.name;
    out += "_sum";
    if (!h.label.empty()) out += "{" + h.label + "}";
    out += " ";
    out += Num(h.sum);
    out += "\n";
    out += h.name;
    out += "_count";
    if (!h.label.empty()) out += "{" + h.label + "}";
    out += " ";
    out += Num(h.count);
    out += "\n";
  }
  return out;
}

std::string ToJson(const Registry::Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(snapshot.counters[i].key) +
           "\": " + Num(snapshot.counters[i].value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(snapshot.gauges[i].key) +
           "\": " + Num(snapshot.gauges[i].value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(h.key) + "\": {";
    out += "\"count\": " + Num(h.count);
    out += ", \"sum\": " + Num(h.sum);
    out += ", \"p50\": " + Num(h.p50);
    out += ", \"p90\": " + Num(h.p90);
    out += ", \"p99\": " + Num(h.p99);
    // Only occupied buckets are listed; a 50-bucket histogram with three
    // occupied buckets exports three entries.
    out += ", \"buckets\": [";
    bool first = true;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "{\"le\": " + Num(h.upper_bounds[b]) +
             ", \"count\": " + Num(h.counts[b]) + "}";
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string SpansToJson(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"" + JsonEscape(s.name) + "\"";
    out += ", \"span_id\": " + Num(static_cast<int64_t>(s.span_id));
    out += ", \"parent_id\": " + Num(static_cast<int64_t>(s.parent_id));
    out += ", \"depth\": " + Num(static_cast<int64_t>(s.depth));
    out += ", \"start_seconds\": " + Num(s.start_seconds);
    out += ", \"duration_seconds\": " + Num(s.duration_seconds);
    out += "}";
  }
  out += spans.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string DumpPrometheusText() {
  return ToPrometheusText(Registry::Default().Snap());
}

std::string DumpJson() { return ToJson(Registry::Default().Snap()); }

std::string DumpSpansJson() {
  return SpansToJson(Tracer::Default().Snapshot());
}

}  // namespace obs
}  // namespace rvar
