#include "obs/metrics.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace rvar {
namespace obs {

namespace {

std::atomic<bool> g_sampling{true};

/// Full metric key: `name` or `name{key="value"}`.
std::string MetricKey(std::string_view name, std::string_view label_key,
                      std::string_view label_value) {
  if (label_key.empty()) return std::string(name);
  return StrCat(name, "{", label_key, "=\"", label_value, "\"}");
}

BinGrid MakeLogGrid(const HistogramOptions& options) {
  RVAR_CHECK(options.min_value > 0.0 && options.max_value > options.min_value)
      << "histogram range must satisfy 0 < min < max";
  return *BinGrid::Make(std::log10(options.min_value),
                        std::log10(options.max_value), options.num_buckets);
}

}  // namespace

void SetSampling(bool enabled) {
  g_sampling.store(enabled, std::memory_order_relaxed);
}

bool SamplingEnabled() {
  return g_sampling.load(std::memory_order_relaxed);
}

Histogram::Histogram(const HistogramOptions& options)
    : options_(options),
      grid_(MakeLogGrid(options)),
      buckets_(static_cast<size_t>(options.num_buckets)) {}

void Histogram::Observe(double value) {
  // log10 of zero/negative is -inf/NaN; BinGrid clips both into bucket 0,
  // so degenerate values are counted rather than dropped.
  const int bin = grid_.BinIndex(std::log10(value));
  buckets_[static_cast<size_t>(bin)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double clamped = std::isfinite(value) ? value : 0.0;
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + clamped,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::BucketUpperBound(int i) const {
  RVAR_CHECK(i >= 0 && i < grid_.num_bins());
  return std::pow(10.0, grid_.lo() + grid_.bin_width() * (i + 1));
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  const std::vector<int64_t> counts = BucketCounts();
  std::vector<double> pmf(counts.size());
  double total = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    pmf[i] = static_cast<double>(counts[i]);
    total += pmf[i];
  }
  if (total <= 0.0) return options_.min_value;
  return std::pow(10.0, PmfQuantile(grid_, pmf, q));
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

template <typename T>
T* Registry::GetIn(
    std::map<std::string, std::pair<std::string, std::unique_ptr<T>>>* metrics,
    std::string_view name, std::string_view label_key,
    std::string_view label_value) {
  const std::string key = MetricKey(name, label_key, label_value);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics->find(key);
  if (it == metrics->end()) {
    it = metrics
             ->emplace(key, std::make_pair(std::string(name),
                                           std::unique_ptr<T>(new T())))
             .first;
  }
  return it->second.second.get();
}

Counter* Registry::GetCounter(std::string_view name) {
  return GetCounter(name, "", "");
}

Counter* Registry::GetCounter(std::string_view name,
                              std::string_view label_key,
                              std::string_view label_value) {
  return GetIn(&counters_, name, label_key, label_value);
}

Gauge* Registry::GetGauge(std::string_view name) {
  return GetGauge(name, "", "");
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view label_key,
                          std::string_view label_value) {
  return GetIn(&gauges_, name, label_key, label_value);
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  const HistogramOptions& options) {
  return GetHistogram(name, "", "", options);
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view label_key,
                                  std::string_view label_value,
                                  const HistogramOptions& options) {
  const std::string key = MetricKey(name, label_key, label_value);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    HistogramEntry entry;
    entry.name = std::string(name);
    entry.label = label_key.empty()
                      ? std::string()
                      : StrCat(label_key, "=\"", label_value, "\"");
    entry.histogram.reset(new Histogram(options));
    it = histograms_.emplace(key, std::move(entry)).first;
  }
  return it->second.histogram.get();
}

Registry::Snapshot Registry::Snap() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : counters_) {
    snap.counters.push_back({key, entry.first, entry.second->Value()});
  }
  for (const auto& [key, entry] : gauges_) {
    snap.gauges.push_back({key, entry.first, entry.second->Value()});
  }
  for (const auto& [key, entry] : histograms_) {
    const Histogram& h = *entry.histogram;
    HistogramValue hv;
    hv.key = key;
    hv.name = entry.name;
    hv.label = entry.label;
    hv.counts = h.BucketCounts();
    hv.upper_bounds.reserve(hv.counts.size());
    for (int i = 0; i < static_cast<int>(hv.counts.size()); ++i) {
      hv.upper_bounds.push_back(h.BucketUpperBound(i));
    }
    hv.count = h.Count();
    hv.sum = h.Sum();
    hv.p50 = h.Quantile(0.50);
    hv.p90 = h.Quantile(0.90);
    hv.p99 = h.Quantile(0.99);
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : counters_) {
    entry.second->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [key, entry] : gauges_) {
    entry.second->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [key, entry] : histograms_) {
    Histogram& h = *entry.histogram;
    for (auto& bucket : h.buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace rvar
