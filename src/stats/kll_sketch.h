// Copyright 2026 The rvar Authors.
//
// A mergeable KLL quantile sketch (Karnin-Lang-Liberty) holding bounded
// per-group state in place of dense per-group PMFs (DESIGN.md §15). Items
// are stored as floats in a single flat buffer partitioned into weighted
// levels: an item at level h stands for 2^h original observations. When
// the buffer reaches its capacity bound the lowest over-full level is
// sorted and every other item is promoted one level up, halving the
// retained count while preserving total weight exactly.
//
// This implementation is deliberately *deterministic*: instead of the
// randomized odd/even pick of the original paper, each level carries a
// parity bit that flips on every compaction of that level. The sketch
// state is therefore a pure function of the update/merge sequence, which
// is what lets sharded ShapeService snapshots stay byte-identical at any
// shard count. The alternation also cancels the systematic rank bias a
// fixed pick would introduce, so the empirical rank error stays within
// the classic KLL bound (property-tested against the dense path).

#ifndef RVAR_STATS_KLL_SKETCH_H_
#define RVAR_STATS_KLL_SKETCH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "stats/histogram.h"

namespace rvar {

/// \brief Deterministic mergeable quantile sketch over float items.
///
/// `k` is the capacity of the top level; lower levels halve geometrically
/// (floor 8 items), so total retained state is < 2.5k items ≈ 2 KB at the
/// default k = 200. The sketch is *exact* — every observation retained at
/// weight 1 — until n reaches k, which covers typical per-group support in
/// the reference datasets; beyond that, rank queries degrade gracefully to
/// within NormalizedRankErrorBound(k).
class KllSketch {
 public:
  static constexpr int kMinK = 8;
  static constexpr int kMaxK = 1 << 16;
  static constexpr int kMinLevelCapacity = 8;
  /// More levels than this cannot arise before n overflows int64.
  static constexpr int kMaxLevels = 56;

  /// Fails on k outside [kMinK, kMaxK].
  static Result<KllSketch> Make(int k);

  /// Incorporates one observation. NaN carries no rank information and is
  /// ignored; ±inf is accepted (it clips into the outlier bins, like
  /// BinGrid::BinIndex). Note the value is stored as a float.
  void Update(double x);

  /// Update with the ShapeService clamp rule: NaN ignored, everything
  /// else clamped into [grid.lo(), grid.hi()]. Clamping never changes the
  /// target bin (BinIndex clips identically) but keeps retained items
  /// finite and quantiles inside the grid. Keeps n() equal to
  /// OnlineShapeTracker::count() for the same observation sequence.
  void UpdateClamped(const BinGrid& grid, double x);

  /// Merges `other` into this sketch; total weight adds exactly. The
  /// result is a deterministic function of (this state, other state,
  /// operand order) — callers needing reproducible aggregates merge in a
  /// fixed order. Fails if the sketches were built with different k.
  Status Merge(const KllSketch& other);

  /// Exact number of observations incorporated (NaN excluded).
  int64_t n() const { return n_; }
  bool empty() const { return n_ == 0; }
  int k() const { return k_; }
  /// True while every observation is still retained at weight 1; rank
  /// queries and bin counts are then exact (modulo double→float rounding).
  bool is_exact() const { return level_sizes_.size() == 1; }

  int num_levels() const { return static_cast<int>(level_sizes_.size()); }
  size_t num_retained() const { return items_.size(); }

  /// Smallest / largest value ever inserted (exact, tracked outside the
  /// compaction). +inf / -inf respectively while empty.
  float min_value() const { return min_; }
  float max_value() const { return max_; }

  /// Estimated number of observations strictly less than `t`.
  int64_t CountLess(double t) const;

  /// Estimated quantile q in [0, 1]; min/max at the extremes, 0 when
  /// empty. Returns an actually-inserted value (no interpolation).
  double Quantile(double q) const;

  /// Reconstructs weighted per-bin observation counts on `grid`, exactly
  /// mirroring BinGrid::BinIndex clipping. `counts` is resized to the
  /// grid and overwritten; entries sum to n(). In exact mode this equals
  /// the dense Histogram of the inserted values.
  void BinCountsInto(const BinGrid& grid, std::vector<double>* counts) const;

  /// Heap + inline footprint of this sketch in bytes. Buffer capacities
  /// are kept tight against the level-capacity bound, so this is ≤ ~2 KB
  /// at k = 200 regardless of n.
  size_t MemoryBytes() const;

  /// Normalized rank error bound ε(k): |est_rank - true_rank| ≤ ε·n. The
  /// standard single-sketch KLL constant (Apache DataSketches); the
  /// property suite verifies the deterministic variant stays inside it.
  static double NormalizedRankErrorBound(int k);

  // --- codec surface (io/serialize.h) -----------------------------------
  /// Retained items in storage order: highest level first, level 0 last.
  const std::vector<float>& items() const { return items_; }
  /// Retained item count per level, indexed by level (0 = weight 1).
  const std::vector<uint32_t>& level_sizes() const { return level_sizes_; }
  /// One pending-parity bit per level (bit h = level h's next pick).
  uint64_t compaction_parity() const { return parity_; }

  /// Rebuilds a sketch from codec fields, re-validating every structural
  /// invariant (level weights sum to n, items inside [min, max], no NaN,
  /// canonical level shape) so hostile bytes cannot produce a sketch that
  /// misbehaves later.
  static Result<KllSketch> Restore(int k, int64_t n, float min_value,
                                   float max_value,
                                   std::vector<uint32_t> level_sizes,
                                   std::vector<float> items, uint64_t parity);

 private:
  explicit KllSketch(int k);

  /// Offset of `level`'s first item in items_ (levels stored top-down).
  size_t LevelOffset(int level) const;
  /// Capacity of `level` when the sketch holds `num_levels` levels.
  int LevelCapacity(int level, int num_levels) const;
  size_t ComputeTotalCapacity() const;
  /// Sorts the lowest over-full level and promotes half of it one level
  /// up. Returns false if nothing could be compacted (defensive; cannot
  /// happen while the capacity invariant holds).
  bool CompactOnce();
  /// Reallocates buffers whose capacity drifted above the bound.
  void TightenCapacity();

  int k_;
  int64_t n_ = 0;
  float min_ = std::numeric_limits<float>::infinity();
  float max_ = -std::numeric_limits<float>::infinity();
  uint64_t parity_ = 0;
  size_t total_capacity_ = 0;  ///< cached sum of level capacities
  std::vector<uint32_t> level_sizes_;  ///< by level; level 0 = weight 1
  std::vector<float> items_;  ///< flat, highest level first
};

}  // namespace rvar

#endif  // RVAR_STATS_KLL_SKETCH_H_
