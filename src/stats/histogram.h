// Copyright 2026 The rvar Authors.
//
// Empirical PMFs over a fixed bin grid — the paper's representation of a job
// group's normalized-runtime distribution (Section 4.2). Values outside the
// configured range are merged into the first/last bin ("outlier bins"), and a
// smoothing pass can be applied so that clustering treats adjacent bins as
// correlated.

#ifndef RVAR_STATS_HISTOGRAM_H_
#define RVAR_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rvar {

/// \brief Immutable description of a uniform bin grid over [lo, hi] with
/// clipping: values < lo land in bin 0, values > hi in the last bin.
class BinGrid {
 public:
  /// Creates a grid of `num_bins` equal-width bins spanning [lo, hi].
  /// Fails if num_bins < 2 or lo >= hi.
  static Result<BinGrid> Make(double lo, double hi, int num_bins);

  int num_bins() const { return num_bins_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }

  /// Index of the bin containing `x` (clipped to [0, num_bins-1]).
  /// NaN maps to bin 0 rather than invoking UB; callers that must not
  /// count NaN observations filter them before binning.
  int BinIndex(double x) const;

  /// Center of bin `i`.
  double BinCenter(int i) const;

 private:
  BinGrid(double lo, double hi, int num_bins)
      : lo_(lo),
        hi_(hi),
        num_bins_(num_bins),
        width_((hi - lo) / num_bins) {}

  double lo_;
  double hi_;
  int num_bins_;
  double width_;
};

/// \brief An empirical probability mass function over a BinGrid.
///
/// Counts are accumulated with Add(); probabilities() returns the normalized
/// vector. A Histogram with zero observations has an all-zero PMF.
class Histogram {
 public:
  explicit Histogram(BinGrid grid);

  const BinGrid& grid() const { return grid_; }

  /// Accumulates one observation.
  void Add(double x);

  /// Accumulates many observations.
  void AddAll(const std::vector<double>& xs);

  int64_t total_count() const { return total_; }
  const std::vector<int64_t>& counts() const { return counts_; }

  /// Normalized bin probabilities (sums to 1 when total_count() > 0).
  std::vector<double> Probabilities() const;

  /// Builds a histogram of `values` over `grid` in one call.
  static Histogram FromValues(const BinGrid& grid,
                              const std::vector<double>& values);

 private:
  BinGrid grid_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Smooths a PMF with a symmetric moving-average window of half-width
/// `radius` (window size 2*radius+1, truncated at the edges). The result
/// still sums to the input's sum. radius == 0 returns the input unchanged.
std::vector<double> SmoothPmf(const std::vector<double>& pmf, int radius);

/// SmoothPmf without the output allocation: overwrites `pmf` with its
/// smoothed self, buffering the trailing window originals in a small ring.
/// Bit-identical to SmoothPmf (same summation order), so hot paths can
/// switch to it without perturbing any downstream result.
void SmoothPmfInPlace(std::vector<double>* pmf, int radius);

/// Cumulative distribution of a PMF (same length; last element equals the
/// PMF's sum).
std::vector<double> PmfToCdf(const std::vector<double>& pmf);

/// Mean of a PMF over the grid's bin centers.
double PmfMean(const BinGrid& grid, const std::vector<double>& pmf);

/// Quantile q of a distribution given by a PMF over `grid`, read from the
/// CDF with within-bin linear interpolation.
double PmfQuantile(const BinGrid& grid, const std::vector<double>& pmf,
                   double q);

/// Standard deviation of a PMF over the grid's bin centers.
double PmfStdDev(const BinGrid& grid, const std::vector<double>& pmf);

/// Draws `n` samples distributed per `pmf` over `grid` bin centers, with
/// uniform jitter inside each bin. Used to reconstruct runtime distributions
/// from predicted shapes. `rng_uniform` supplies U(0,1) draws.
class Rng;  // from common/rng.h
std::vector<double> SamplePmf(const BinGrid& grid,
                              const std::vector<double>& pmf, int n,
                              Rng* rng);

}  // namespace rvar

#endif  // RVAR_STATS_HISTOGRAM_H_
