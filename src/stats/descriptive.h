// Copyright 2026 The rvar Authors.
//
// Descriptive statistics used throughout the paper's analyses: running
// moments, quantiles, and the scalar variation metrics (COV) that Section 4.1
// shows to be insufficient — we implement them both as features and as the
// strawmen they are compared against.

#ifndef RVAR_STATS_DESCRIPTIVE_H_
#define RVAR_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace rvar {

/// \brief Single-pass accumulation of count/mean/variance/min/max
/// (Welford's algorithm; numerically stable).
class RunningStats {
 public:
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Coefficient of variation = stddev / mean; 0 if mean is 0.
  double cov() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile of `sorted` (ascending) at q in [0,1], with linear interpolation
/// between order statistics (type-7, the numpy default). Requires non-empty.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Quantile of arbitrary `values` (copies and sorts). Requires non-empty.
double Quantile(std::vector<double> values, double q);

/// Median shorthand. Requires non-empty.
double Median(std::vector<double> values);

/// Mean of `values`; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1); 0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

/// Coefficient of variation = stddev/mean; 0 if the mean is 0 or input has
/// fewer than 2 values.
double CoefficientOfVariation(const std::vector<double>& values);

/// Interquartile range: Q(0.75) - Q(0.25). Requires non-empty.
double InterquartileRange(std::vector<double> values);

}  // namespace rvar

#endif  // RVAR_STATS_DESCRIPTIVE_H_
