#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rvar {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cov() const {
  if (count_ < 2 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  RVAR_CHECK(!sorted.empty());
  RVAR_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  RunningStats rs;
  for (double v : values) rs.Add(v);
  return rs.stddev();
}

double CoefficientOfVariation(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = Mean(values);
  if (m == 0.0) return 0.0;
  return StdDev(values) / m;
}

double InterquartileRange(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, 0.75) - QuantileSorted(values, 0.25);
}

}  // namespace rvar
