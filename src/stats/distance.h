// Copyright 2026 The rvar Authors.
//
// Distances between distributions: the evaluation metrics of Figure 8
// (QQ-plot mean absolute error, Kolmogorov-Smirnov distance) and the vector
// distances used by the clustering of PMFs.

#ifndef RVAR_STATS_DISTANCE_H_
#define RVAR_STATS_DISTANCE_H_

#include <vector>

namespace rvar {

/// Squared Euclidean distance between equal-length vectors.
double SquaredL2(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance between equal-length vectors.
double L2(const std::vector<double>& a, const std::vector<double>& b);

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Two-sample Kolmogorov-Smirnov distance: the supremum over x of the
/// absolute difference between the two empirical CDFs. Inputs need not be
/// sorted; both must be non-empty.
double KsDistance(std::vector<double> a, std::vector<double> b);

/// KS distance between two PMFs on the same grid: max |CDF_a - CDF_b|.
double KsDistancePmf(const std::vector<double>& pmf_a,
                     const std::vector<double>& pmf_b);

/// Quantile-quantile comparison: evaluates both samples at `num_quantiles`
/// evenly spaced probabilities in (0,1) and returns the mean absolute error
/// between the paired quantiles — the y-axis of the paper's Figure 8.
double QqMeanAbsoluteError(std::vector<double> actual,
                           std::vector<double> predicted,
                           int num_quantiles = 99);

/// The paired (actual, predicted) quantiles themselves, for rendering a
/// QQ plot series.
struct QqPoint {
  double q;          ///< probability level
  double actual;     ///< quantile of the actual sample
  double predicted;  ///< quantile of the predicted sample
};
std::vector<QqPoint> QqSeries(std::vector<double> actual,
                              std::vector<double> predicted,
                              int num_quantiles = 99);

}  // namespace rvar

#endif  // RVAR_STATS_DISTANCE_H_
