#include "stats/kll_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace rvar {

KllSketch::KllSketch(int k) : k_(k) {
  level_sizes_.assign(1, 0);
  total_capacity_ = ComputeTotalCapacity();
}

Result<KllSketch> KllSketch::Make(int k) {
  if (k < kMinK || k > kMaxK) {
    return Status::InvalidArgument(
        StrCat("KllSketch k must be in [", kMinK, ", ", kMaxK, "], got ", k));
  }
  return KllSketch(k);
}

size_t KllSketch::LevelOffset(int level) const {
  size_t off = 0;
  for (size_t g = static_cast<size_t>(level) + 1; g < level_sizes_.size();
       ++g) {
    off += level_sizes_[g];
  }
  return off;
}

int KllSketch::LevelCapacity(int level, int num_levels) const {
  int cap = k_;
  for (int depth = num_levels - 1 - level; depth > 0; --depth) {
    cap = (cap + 1) / 2;
  }
  return std::max(kMinLevelCapacity, cap);
}

size_t KllSketch::ComputeTotalCapacity() const {
  const int num_levels = static_cast<int>(level_sizes_.size());
  size_t total = 0;
  for (int h = 0; h < num_levels; ++h) {
    total += static_cast<size_t>(LevelCapacity(h, num_levels));
  }
  return total;
}

void KllSketch::Update(double x) {
  if (std::isnan(x)) return;  // no rank information at all
  const float v = static_cast<float>(x);
  if (n_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  if (items_.size() == items_.capacity()) {
    // Grow geometrically but never past the capacity bound, so a sketch
    // over a small group stays proportionally small.
    items_.reserve(std::max<size_t>(
        8, std::min(total_capacity_, items_.capacity() * 2)));
  }
  items_.push_back(v);
  ++level_sizes_[0];
  ++n_;
  while (items_.size() >= total_capacity_ && CompactOnce()) {
  }
}

void KllSketch::UpdateClamped(const BinGrid& grid, double x) {
  if (std::isnan(x)) return;
  Update(std::clamp(x, grid.lo(), grid.hi()));
}

bool KllSketch::CompactOnce() {
  int num_levels = static_cast<int>(level_sizes_.size());
  // Lowest level at (or over) its capacity; by pigeonhole one exists
  // whenever the total is at the bound. Fall back to the lowest level
  // with enough items to pair, purely defensively.
  int target = -1;
  for (int h = 0; h < num_levels; ++h) {
    if (level_sizes_[h] >=
        static_cast<uint32_t>(LevelCapacity(h, num_levels))) {
      target = h;
      break;
    }
  }
  if (target < 0 || level_sizes_[static_cast<size_t>(target)] < 2) {
    target = -1;
    for (int h = 0; h < num_levels; ++h) {
      if (level_sizes_[static_cast<size_t>(h)] >= 2) {
        target = h;
        break;
      }
    }
    if (target < 0) return false;
  }
  if (target == num_levels - 1) {
    // Promoting out of the top level: open a new (empty) level above it.
    // Levels are stored top-down so an empty top prepends no items, and
    // the lower-level capacities shrink under the new height.
    RVAR_CHECK(num_levels < kMaxLevels);
    level_sizes_.push_back(0);
    ++num_levels;
    total_capacity_ = ComputeTotalCapacity();
  }

  const size_t off = LevelOffset(target);
  const uint32_t s = level_sizes_[static_cast<size_t>(target)];
  std::sort(items_.begin() + static_cast<ptrdiff_t>(off),
            items_.begin() + static_cast<ptrdiff_t>(off + s));
  const uint32_t pairs = s / 2;
  const uint32_t keep = s % 2;  // odd leftover: the max stays at `target`
  const float leftover = items_[off + s - 1];
  const uint32_t pick =
      static_cast<uint32_t>((parity_ >> target) & 1);
  parity_ ^= (1ull << target);
  // Select every other item of the paired (even-count) prefix. Promoted
  // items land at [off, off + pairs), which is exactly where level
  // target+1's region ends once the sizes are adjusted — adjacency is
  // free in the top-down layout. Writes trail reads, so this is in-place.
  for (uint32_t i = 0; i < pairs; ++i) {
    items_[off + i] = items_[off + pick + 2 * i];
  }
  if (keep != 0) items_[off + pairs] = leftover;
  items_.erase(
      items_.begin() + static_cast<ptrdiff_t>(off + pairs + keep),
      items_.begin() + static_cast<ptrdiff_t>(off + s));
  level_sizes_[static_cast<size_t>(target)] = keep;
  level_sizes_[static_cast<size_t>(target) + 1] += pairs;
  return true;
}

void KllSketch::TightenCapacity() {
  const size_t bound = std::max(items_.size(), total_capacity_);
  if (items_.capacity() > bound) {
    std::vector<float> tight;
    tight.reserve(bound);
    tight.assign(items_.begin(), items_.end());
    items_ = std::move(tight);
  }
}

Status KllSketch::Merge(const KllSketch& other) {
  if (other.k_ != k_) {
    return Status::InvalidArgument(
        StrCat("cannot merge KllSketch with k=", other.k_, " into k=", k_));
  }
  if (other.n_ == 0) return Status::OK();
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  while (level_sizes_.size() < other.level_sizes_.size()) {
    level_sizes_.push_back(0);
  }
  total_capacity_ = ComputeTotalCapacity();
  // Rebuild the flat buffer with the operand's items appended after ours
  // at each level (fixed operand order keeps the result deterministic).
  std::vector<float> merged;
  merged.reserve(items_.size() + other.items_.size());
  for (int h = static_cast<int>(level_sizes_.size()) - 1; h >= 0; --h) {
    const size_t mine = LevelOffset(h);
    merged.insert(merged.end(),
                  items_.begin() + static_cast<ptrdiff_t>(mine),
                  items_.begin() + static_cast<ptrdiff_t>(
                                       mine + level_sizes_[
                                           static_cast<size_t>(h)]));
    if (h < other.num_levels()) {
      const size_t theirs = other.LevelOffset(h);
      merged.insert(
          merged.end(),
          other.items_.begin() + static_cast<ptrdiff_t>(theirs),
          other.items_.begin() +
              static_cast<ptrdiff_t>(
                  theirs + other.level_sizes_[static_cast<size_t>(h)]));
    }
  }
  items_ = std::move(merged);
  for (size_t h = 0; h < other.level_sizes_.size(); ++h) {
    level_sizes_[h] += other.level_sizes_[h];
  }
  n_ += other.n_;
  while (items_.size() >= total_capacity_ && CompactOnce()) {
  }
  TightenCapacity();
  return Status::OK();
}

int64_t KllSketch::CountLess(double t) const {
  int64_t count = 0;
  for (int h = num_levels() - 1; h >= 0; --h) {
    const size_t off = LevelOffset(h);
    const int64_t weight = int64_t{1} << h;
    const uint32_t s = level_sizes_[static_cast<size_t>(h)];
    for (uint32_t i = 0; i < s; ++i) {
      if (static_cast<double>(items_[off + i]) < t) count += weight;
    }
  }
  return count;
}

double KllSketch::Quantile(double q) const {
  RVAR_CHECK(q >= 0.0 && q <= 1.0);
  if (n_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  std::vector<std::pair<float, int64_t>> weighted;
  weighted.reserve(items_.size());
  for (int h = num_levels() - 1; h >= 0; --h) {
    const size_t off = LevelOffset(h);
    const int64_t weight = int64_t{1} << h;
    const uint32_t s = level_sizes_[static_cast<size_t>(h)];
    for (uint32_t i = 0; i < s; ++i) {
      weighted.emplace_back(items_[off + i], weight);
    }
  }
  std::sort(weighted.begin(), weighted.end());
  const double target = q * static_cast<double>(n_);
  double cum = 0.0;
  for (const auto& [value, weight] : weighted) {
    cum += static_cast<double>(weight);
    if (cum >= target) return static_cast<double>(value);
  }
  return static_cast<double>(max_);
}

void KllSketch::BinCountsInto(const BinGrid& grid,
                              std::vector<double>* counts) const {
  RVAR_CHECK(counts != nullptr);
  counts->assign(static_cast<size_t>(grid.num_bins()), 0.0);
  for (int h = num_levels() - 1; h >= 0; --h) {
    const size_t off = LevelOffset(h);
    const double weight = static_cast<double>(int64_t{1} << h);
    const uint32_t s = level_sizes_[static_cast<size_t>(h)];
    for (uint32_t i = 0; i < s; ++i) {
      (*counts)[static_cast<size_t>(
          grid.BinIndex(static_cast<double>(items_[off + i])))] += weight;
    }
  }
}

size_t KllSketch::MemoryBytes() const {
  return sizeof(KllSketch) + items_.capacity() * sizeof(float) +
         level_sizes_.capacity() * sizeof(uint32_t);
}

double KllSketch::NormalizedRankErrorBound(int k) {
  RVAR_CHECK_GE(k, kMinK);
  // The single-sketch KLL constant at 99% confidence (Apache DataSketches
  // kll_sketch); the deterministic parity variant is property-tested to
  // stay inside it on the reference workloads.
  return 2.296 / std::pow(static_cast<double>(k), 0.9);
}

Result<KllSketch> KllSketch::Restore(int k, int64_t n, float min_value,
                                     float max_value,
                                     std::vector<uint32_t> level_sizes,
                                     std::vector<float> items,
                                     uint64_t parity) {
  RVAR_ASSIGN_OR_RETURN(KllSketch sketch, Make(k));
  if (n < 0) {
    return Status::InvalidArgument(StrCat("sketch n must be >= 0, got ", n));
  }
  if (level_sizes.empty() ||
      level_sizes.size() > static_cast<size_t>(kMaxLevels)) {
    return Status::InvalidArgument(
        StrCat("sketch holds ", level_sizes.size(), " levels, want 1..",
               kMaxLevels));
  }
  // Canonical shape: a level above the base exists only because a
  // compaction promoted into it, so the top level is never empty.
  if (level_sizes.size() > 1 && level_sizes.back() == 0) {
    return Status::InvalidArgument("sketch top level is empty");
  }
  if ((parity >> level_sizes.size()) != 0) {
    return Status::InvalidArgument(
        "sketch parity bits extend past the top level");
  }
  size_t total_items = 0;
  uint64_t total_weight = 0;
  for (size_t h = 0; h < level_sizes.size(); ++h) {
    total_items += level_sizes[h];
    total_weight += static_cast<uint64_t>(level_sizes[h]) << h;
  }
  if (total_items != items.size()) {
    return Status::InvalidArgument(
        StrCat("sketch level sizes sum to ", total_items, " items but ",
               items.size(), " are present"));
  }
  if (total_weight != static_cast<uint64_t>(n)) {
    // Weight is preserved exactly by every compaction and merge, so a
    // mismatch means the bytes were tampered with or torn.
    return Status::InvalidArgument(
        StrCat("sketch level weights sum to ", total_weight,
               " observations but n is ", n));
  }
  if (n == 0) {
    if (!(min_value == std::numeric_limits<float>::infinity() &&
          max_value == -std::numeric_limits<float>::infinity())) {
      return Status::InvalidArgument(
          "empty sketch must carry the sentinel min/max");
    }
  } else {
    if (std::isnan(min_value) || std::isnan(max_value) ||
        !(min_value <= max_value)) {
      return Status::InvalidArgument("sketch min/max are corrupt");
    }
    for (float v : items) {
      if (std::isnan(v) || v < min_value || v > max_value) {
        return Status::InvalidArgument(
            "sketch holds an item outside [min, max]");
      }
    }
  }
  sketch.n_ = n;
  sketch.min_ = min_value;
  sketch.max_ = max_value;
  sketch.parity_ = parity;
  sketch.level_sizes_ = std::move(level_sizes);
  sketch.total_capacity_ = sketch.ComputeTotalCapacity();
  sketch.items_.reserve(
      std::max(items.size(), sketch.total_capacity_));
  sketch.items_.assign(items.begin(), items.end());
  sketch.TightenCapacity();
  return sketch;
}

}  // namespace rvar
