#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace rvar {

Result<BinGrid> BinGrid::Make(double lo, double hi, int num_bins) {
  if (num_bins < 2) {
    return Status::InvalidArgument(
        StrCat("BinGrid needs >= 2 bins, got ", num_bins));
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument(
        StrCat("BinGrid needs lo < hi, got [", lo, ", ", hi, "]"));
  }
  return BinGrid(lo, hi, num_bins);
}

int BinGrid::BinIndex(double x) const {
  // NaN compares false against both edges and casting it to int is UB, so
  // it must be caught explicitly; it lands in the low outlier bin.
  if (std::isnan(x)) return 0;
  if (x <= lo_) return 0;
  if (x >= hi_) return num_bins_ - 1;
  int idx = static_cast<int>((x - lo_) / width_);
  return std::clamp(idx, 0, num_bins_ - 1);
}

double BinGrid::BinCenter(int i) const {
  RVAR_CHECK(i >= 0 && i < num_bins_);
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

Histogram::Histogram(BinGrid grid)
    : grid_(grid), counts_(grid.num_bins(), 0) {}

void Histogram::Add(double x) {
  counts_[grid_.BinIndex(x)]++;
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

std::vector<double> Histogram::Probabilities() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) return p;
  const double inv = 1.0 / static_cast<double>(total_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) * inv;
  }
  return p;
}

Histogram Histogram::FromValues(const BinGrid& grid,
                                const std::vector<double>& values) {
  Histogram h(grid);
  h.AddAll(values);
  return h;
}

std::vector<double> SmoothPmf(const std::vector<double>& pmf, int radius) {
  RVAR_CHECK_GE(radius, 0);
  if (radius == 0 || pmf.empty()) return pmf;
  const int n = static_cast<int>(pmf.size());
  double in_sum = 0.0;
  for (double v : pmf) in_sum += v;

  std::vector<double> out(pmf.size(), 0.0);
  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - radius);
    const int hi = std::min(n - 1, i + radius);
    double acc = 0.0;
    for (int j = lo; j <= hi; ++j) acc += pmf[j];
    out[i] = acc / static_cast<double>(hi - lo + 1);
  }
  // Renormalize so truncation at edges does not change the total mass.
  double out_sum = 0.0;
  for (double v : out) out_sum += v;
  if (out_sum > 0.0 && in_sum > 0.0) {
    const double scale = in_sum / out_sum;
    for (double& v : out) v *= scale;
  }
  return out;
}

void SmoothPmfInPlace(std::vector<double>* pmf, int radius) {
  RVAR_CHECK(pmf != nullptr);
  RVAR_CHECK_GE(radius, 0);
  if (radius == 0 || pmf->empty()) return;
  constexpr int kMaxInPlaceRadius = 64;
  if (radius > kMaxInPlaceRadius) {
    *pmf = SmoothPmf(*pmf, radius);
    return;
  }
  std::vector<double>& p = *pmf;
  const int n = static_cast<int>(p.size());
  double in_sum = 0.0;
  for (double v : p) in_sum += v;

  // out[i] needs originals p[i-radius .. i+radius]; entries above i are
  // untouched, entries below are kept in a ring of the last `radius`
  // originals. The window is summed ascending exactly like SmoothPmf, so
  // the result is bit-identical to the allocating version.
  double ring[kMaxInPlaceRadius];
  double out_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - radius);
    const int hi = std::min(n - 1, i + radius);
    double acc = 0.0;
    for (int j = lo; j <= hi; ++j) {
      acc += j < i ? ring[j % radius] : p[j];
    }
    const double smoothed = acc / static_cast<double>(hi - lo + 1);
    ring[i % radius] = p[i];
    p[i] = smoothed;
    out_sum += smoothed;
  }
  if (out_sum > 0.0 && in_sum > 0.0) {
    const double scale = in_sum / out_sum;
    for (double& v : p) v *= scale;
  }
}

std::vector<double> PmfToCdf(const std::vector<double>& pmf) {
  std::vector<double> cdf(pmf.size());
  double acc = 0.0;
  for (size_t i = 0; i < pmf.size(); ++i) {
    acc += pmf[i];
    cdf[i] = acc;
  }
  return cdf;
}

double PmfMean(const BinGrid& grid, const std::vector<double>& pmf) {
  RVAR_CHECK_EQ(static_cast<int>(pmf.size()), grid.num_bins());
  double mean = 0.0, mass = 0.0;
  for (int i = 0; i < grid.num_bins(); ++i) {
    mean += pmf[i] * grid.BinCenter(i);
    mass += pmf[i];
  }
  return mass > 0.0 ? mean / mass : 0.0;
}

double PmfQuantile(const BinGrid& grid, const std::vector<double>& pmf,
                   double q) {
  RVAR_CHECK_EQ(static_cast<int>(pmf.size()), grid.num_bins());
  RVAR_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> cdf = PmfToCdf(pmf);
  const double total = cdf.empty() ? 0.0 : cdf.back();
  if (total <= 0.0) return grid.lo();
  if (q >= 1.0) {
    // Mirror of the q=0 massless-leading-bin guard: the 100th percentile
    // is the upper edge of the last *massful* bin. The CDF scan below can
    // miss it when a tiny trailing mass is absorbed into the running sum
    // (cdf[i] == cdf[i-1] despite pmf[i] > 0), which used to fall through
    // to grid.hi() even with trailing empty bins.
    for (int i = grid.num_bins() - 1; i >= 0; --i) {
      if (pmf[static_cast<size_t>(i)] > 0.0) {
        return i == grid.num_bins() - 1
                   ? grid.hi()
                   : grid.lo() + grid.bin_width() * (i + 1);
      }
    }
    return grid.hi();
  }
  const double target = q * total;
  for (int i = 0; i < grid.num_bins(); ++i) {
    const double prev = i > 0 ? cdf[i - 1] : 0.0;
    const double in_bin = cdf[i] - prev;
    // Only a bin that carries mass can hold the quantile. Without this
    // guard, q=0 (target 0) satisfies cdf[0] >= 0 and lands on the left
    // edge of bin 0 even when the leading bins are empty.
    if (cdf[i] >= target && in_bin > 0.0) {
      const double frac = (target - prev) / in_bin;
      const double left = grid.lo() + grid.bin_width() * i;
      return left + frac * grid.bin_width();
    }
  }
  return grid.hi();
}

double PmfStdDev(const BinGrid& grid, const std::vector<double>& pmf) {
  RVAR_CHECK_EQ(static_cast<int>(pmf.size()), grid.num_bins());
  const double mean = PmfMean(grid, pmf);
  double var = 0.0, mass = 0.0;
  for (int i = 0; i < grid.num_bins(); ++i) {
    const double d = grid.BinCenter(i) - mean;
    var += pmf[i] * d * d;
    mass += pmf[i];
  }
  return mass > 0.0 ? std::sqrt(var / mass) : 0.0;
}

std::vector<double> SamplePmf(const BinGrid& grid,
                              const std::vector<double>& pmf, int n,
                              Rng* rng) {
  RVAR_CHECK(rng != nullptr);
  RVAR_CHECK_EQ(static_cast<int>(pmf.size()), grid.num_bins());
  RVAR_CHECK_GE(n, 0);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  double total = 0.0;
  for (double v : pmf) total += v;
  if (total <= 0.0) return out;
  for (int k = 0; k < n; ++k) {
    const size_t bin = rng->Categorical(pmf);
    const double left = grid.lo() + grid.bin_width() * static_cast<double>(bin);
    out.push_back(left + rng->Uniform() * grid.bin_width());
  }
  return out;
}

}  // namespace rvar
